// TKIP per-packet key mixing (IEEE 802.11i §8.3.2.5/.6).
//
// Phase 1 mixes the temporal key with the transmitter address and the upper
// 32 IV bits into a TTAK (recomputed once per 65536 packets); phase 2 mixes
// the TTAK with the lower 16 IV bits into the 128-bit per-packet RC4 key
// whose first three bytes encode the WEP IV with the weak-key-avoiding
// middle byte.

#ifndef WLANSIM_CRYPTO_TKIP_H_
#define WLANSIM_CRYPTO_TKIP_H_

#include <array>
#include <cstdint>
#include <span>

#include "core/mac_address.h"

namespace wlansim {

class TkipMixer {
 public:
  static constexpr size_t kTkSize = 16;

  using Ttak = std::array<uint16_t, 5>;
  using Rc4Key = std::array<uint8_t, 16>;

  // Phase 1: TTAK = P1(TK, TA, IV32).
  static Ttak Phase1(std::span<const uint8_t, kTkSize> tk, const MacAddress& ta, uint32_t iv32);

  // Phase 2: per-packet RC4 key = P2(TTAK, TK, IV16).
  static Rc4Key Phase2(const Ttak& ttak, std::span<const uint8_t, kTkSize> tk, uint16_t iv16);
};

}  // namespace wlansim

#endif  // WLANSIM_CRYPTO_TKIP_H_
