// Link-layer security encapsulation used by the 802.11 MAC.
//
// Each suite transforms a frame body: a security header (IV / extended IV /
// CCMP header) is prepended and integrity bytes (ICV / MIC) are appended,
// exactly matching the on-air byte overhead of real hardware:
//
//   suite   header  trailer   total extra bytes per MPDU
//   Open       0       0        0
//   WEP        4       4        8   (IV+KeyID, ICV)
//   TKIP       8      12       20   (IV/ExtIV, Michael MIC + ICV)
//   CCMP       8       8       16   (PN/ExtIV, CCM MIC)
//
// The MAC sees only the abstract LinkCipher interface; per-packet CPU cost
// is measured separately by bench_m1_crypto.

#ifndef WLANSIM_CRYPTO_CIPHER_SUITE_H_
#define WLANSIM_CRYPTO_CIPHER_SUITE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/mac_address.h"

namespace wlansim {

enum class CipherSuite : uint8_t {
  kOpen = 0,
  kWep,
  kTkip,
  kCcmp,
};

std::string ToString(CipherSuite suite);

// Bytes prepended to the frame body.
size_t CipherHeaderBytes(CipherSuite suite);
// Bytes appended to the frame body.
size_t CipherTrailerBytes(CipherSuite suite);
inline size_t CipherTotalOverheadBytes(CipherSuite suite) {
  return CipherHeaderBytes(suite) + CipherTrailerBytes(suite);
}

// Addressing context the cipher needs (CCMP AAD/nonce, Michael DA/SA).
struct FrameCryptoContext {
  MacAddress ta;  // transmitter (address 2)
  MacAddress da;  // destination
  MacAddress sa;  // source
  uint8_t priority = 0;
};

// A keyed, stateful (per-packet counters) cipher bound to one link direction.
class LinkCipher {
 public:
  virtual ~LinkCipher() = default;

  virtual CipherSuite suite() const = 0;

  // Encapsulates `body` in place (header + trailer added).
  virtual void Protect(const FrameCryptoContext& ctx, std::vector<uint8_t>& body) = 0;

  // Decapsulates `body` in place. Returns false on integrity/replay failure
  // (body contents are then unspecified).
  virtual bool Unprotect(const FrameCryptoContext& ctx, std::vector<uint8_t>& body) = 0;
};

// Factory. `key` length: WEP 5 or 13 bytes, TKIP 16 (+8 Michael derived
// internally), CCMP 16. Open ignores the key.
std::unique_ptr<LinkCipher> CreateCipher(CipherSuite suite, std::span<const uint8_t> key);

}  // namespace wlansim

#endif  // WLANSIM_CRYPTO_CIPHER_SUITE_H_
