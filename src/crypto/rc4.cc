#include "crypto/rc4.h"

#include <cassert>
#include <utility>

namespace wlansim {

Rc4::Rc4(std::span<const uint8_t> key) {
  assert(!key.empty() && key.size() <= 256);
  for (int i = 0; i < 256; ++i) {
    s_[i] = static_cast<uint8_t>(i);
  }
  uint8_t j = 0;
  for (int i = 0; i < 256; ++i) {
    j = static_cast<uint8_t>(j + s_[i] + key[static_cast<size_t>(i) % key.size()]);
    std::swap(s_[i], s_[j]);
  }
}

uint8_t Rc4::Next() {
  i_ = static_cast<uint8_t>(i_ + 1);
  j_ = static_cast<uint8_t>(j_ + s_[i_]);
  std::swap(s_[i_], s_[j_]);
  return s_[static_cast<uint8_t>(s_[i_] + s_[j_])];
}

void Rc4::Process(std::span<uint8_t> data) {
  for (uint8_t& b : data) {
    b ^= Next();
  }
}

void Rc4::Skip(size_t n) {
  for (size_t k = 0; k < n; ++k) {
    Next();
  }
}

}  // namespace wlansim
