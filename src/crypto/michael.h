// Michael message integrity code (TKIP, IEEE 802.11i).
//
// Michael is a deliberately lightweight 64-bit keyed MIC computable on
// 2002-era access-point CPUs; its weakness is why TKIP pairs it with
// countermeasures. We implement the reference algorithm exactly.

#ifndef WLANSIM_CRYPTO_MICHAEL_H_
#define WLANSIM_CRYPTO_MICHAEL_H_

#include <array>
#include <cstdint>
#include <span>

#include "core/mac_address.h"

namespace wlansim {

class Michael {
 public:
  static constexpr size_t kKeySize = 8;
  static constexpr size_t kMicSize = 8;

  // Computes MIC(key, data) over raw `data` (the form used by the standard's
  // chained test vectors). Padding (0x5a + zeros) is applied internally.
  static std::array<uint8_t, kMicSize> Compute(std::span<const uint8_t, kKeySize> key,
                                               std::span<const uint8_t> data);

  // Computes the MIC over an MSDU the way TKIP does: a pseudo-header
  // DA | SA | priority | 0 0 0 is authenticated ahead of the payload.
  static std::array<uint8_t, kMicSize> ComputeForMsdu(std::span<const uint8_t, kKeySize> key,
                                                      const MacAddress& da, const MacAddress& sa,
                                                      uint8_t priority,
                                                      std::span<const uint8_t> payload);
};

}  // namespace wlansim

#endif  // WLANSIM_CRYPTO_MICHAEL_H_
