// CCM authenticated encryption (RFC 3610): AES-128 in CBC-MAC + counter mode.
//
// Parameterized by M (MIC length, even, 4..16) and L (length-field size,
// 2..8); the nonce is 15-L bytes. CCMP uses M=8, L=2.

#ifndef WLANSIM_CRYPTO_CCM_H_
#define WLANSIM_CRYPTO_CCM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/aes.h"

namespace wlansim {

class Ccm {
 public:
  Ccm(std::span<const uint8_t, Aes128::kKeySize> key, size_t mic_len, size_t length_field_size);

  size_t mic_length() const { return mic_len_; }
  size_t nonce_length() const { return 15 - length_len_; }

  // Encrypts `payload` in place and returns the MIC (mic_length() bytes).
  // `nonce` must be nonce_length() bytes; `aad` is authenticated only.
  std::vector<uint8_t> Encrypt(std::span<const uint8_t> nonce, std::span<const uint8_t> aad,
                               std::span<uint8_t> payload) const;

  // Decrypts `payload` in place and checks `mic`. Returns false (leaving the
  // payload decrypted but untrusted) on MIC mismatch.
  bool Decrypt(std::span<const uint8_t> nonce, std::span<const uint8_t> aad,
               std::span<uint8_t> payload, std::span<const uint8_t> mic) const;

 private:
  // CBC-MAC over B0 | encoded(aad) | payload, per RFC 3610 §2.2.
  void ComputeMac(std::span<const uint8_t> nonce, std::span<const uint8_t> aad,
                  std::span<const uint8_t> payload, uint8_t mac[Aes128::kBlockSize]) const;

  // Counter-mode keystream block A_i for the given nonce.
  void CounterBlock(std::span<const uint8_t> nonce, uint64_t counter,
                    uint8_t out[Aes128::kBlockSize]) const;

  void CtrProcess(std::span<const uint8_t> nonce, std::span<uint8_t> payload) const;

  Aes128 aes_;
  size_t mic_len_;
  size_t length_len_;
};

}  // namespace wlansim

#endif  // WLANSIM_CRYPTO_CCM_H_
