// CRC-32 (IEEE 802.3 polynomial 0x04C11DB7, reflected 0xEDB88320).
//
// Used both as the 802.11 frame check sequence (FCS) and as the WEP
// integrity check value (ICV).

#ifndef WLANSIM_CRYPTO_CRC32_H_
#define WLANSIM_CRYPTO_CRC32_H_

#include <cstdint>
#include <span>

namespace wlansim {

// One-shot CRC-32 of `data` (init 0xFFFFFFFF, final xor 0xFFFFFFFF).
uint32_t Crc32(std::span<const uint8_t> data);

// Incremental interface for multi-buffer frames.
class Crc32Builder {
 public:
  void Update(std::span<const uint8_t> data);
  void Update(uint8_t byte);
  uint32_t Finalize() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace wlansim

#endif  // WLANSIM_CRYPTO_CRC32_H_
