#include "crypto/aes.h"

#include <cstring>

namespace wlansim {
namespace {

// Computes the AES S-box at compile time from the finite-field inverse plus
// the affine transform, avoiding a hand-transcribed table.
constexpr uint8_t GfMul(uint8_t a, uint8_t b) {
  uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) {
      p ^= a;
    }
    const bool hi = (a & 0x80) != 0;
    a = static_cast<uint8_t>(a << 1);
    if (hi) {
      a ^= 0x1B;  // x^8 + x^4 + x^3 + x + 1
    }
    b >>= 1;
  }
  return p;
}

constexpr uint8_t GfInverse(uint8_t a) {
  if (a == 0) {
    return 0;
  }
  // a^(2^8 - 2) = a^254 by square-and-multiply.
  uint8_t result = 1;
  uint8_t base = a;
  int e = 254;
  while (e > 0) {
    if (e & 1) {
      result = GfMul(result, base);
    }
    base = GfMul(base, base);
    e >>= 1;
  }
  return result;
}

constexpr std::array<uint8_t, 256> MakeSbox() {
  std::array<uint8_t, 256> sbox{};
  for (int i = 0; i < 256; ++i) {
    const uint8_t inv = GfInverse(static_cast<uint8_t>(i));
    uint8_t x = inv;
    uint8_t y = inv;
    for (int k = 0; k < 4; ++k) {
      y = static_cast<uint8_t>((y << 1) | (y >> 7));
      x ^= y;
    }
    sbox[i] = x ^ 0x63;
  }
  return sbox;
}

constexpr std::array<uint8_t, 256> kSbox = MakeSbox();

constexpr uint8_t Xtime(uint8_t a) {
  return static_cast<uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1B : 0x00));
}

void SubBytes(uint8_t state[16]) {
  for (int i = 0; i < 16; ++i) {
    state[i] = kSbox[state[i]];
  }
}

// State is column-major: state[4*c + r] is row r, column c.
void ShiftRows(uint8_t state[16]) {
  uint8_t t;
  // Row 1: shift left by 1.
  t = state[1];
  state[1] = state[5];
  state[5] = state[9];
  state[9] = state[13];
  state[13] = t;
  // Row 2: shift left by 2.
  std::swap(state[2], state[10]);
  std::swap(state[6], state[14]);
  // Row 3: shift left by 3 (== right by 1).
  t = state[15];
  state[15] = state[11];
  state[11] = state[7];
  state[7] = state[3];
  state[3] = t;
}

void MixColumns(uint8_t state[16]) {
  for (int c = 0; c < 4; ++c) {
    uint8_t* col = state + 4 * c;
    const uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    const uint8_t all = a0 ^ a1 ^ a2 ^ a3;
    col[0] = static_cast<uint8_t>(a0 ^ all ^ Xtime(a0 ^ a1));
    col[1] = static_cast<uint8_t>(a1 ^ all ^ Xtime(a1 ^ a2));
    col[2] = static_cast<uint8_t>(a2 ^ all ^ Xtime(a2 ^ a3));
    col[3] = static_cast<uint8_t>(a3 ^ all ^ Xtime(a3 ^ a0));
  }
}

void AddRoundKey(uint8_t state[16], const uint8_t* rk) {
  for (int i = 0; i < 16; ++i) {
    state[i] ^= rk[i];
  }
}

}  // namespace

Aes128::Aes128(std::span<const uint8_t, kKeySize> key) {
  std::memcpy(round_keys_.data(), key.data(), kKeySize);
  uint8_t rcon = 0x01;
  for (int i = 16; i < 176; i += 4) {
    uint8_t temp[4];
    std::memcpy(temp, round_keys_.data() + i - 4, 4);
    if (i % 16 == 0) {
      // RotWord + SubWord + Rcon.
      const uint8_t t0 = temp[0];
      temp[0] = static_cast<uint8_t>(kSbox[temp[1]] ^ rcon);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t0];
      rcon = Xtime(rcon);
    }
    for (int k = 0; k < 4; ++k) {
      round_keys_[static_cast<size_t>(i + k)] =
          round_keys_[static_cast<size_t>(i + k - 16)] ^ temp[k];
    }
  }
}

void Aes128::EncryptBlock(std::span<const uint8_t, kBlockSize> in,
                          std::span<uint8_t, kBlockSize> out) const {
  uint8_t state[16];
  std::memcpy(state, in.data(), 16);
  AddRoundKey(state, round_keys_.data());
  for (int round = 1; round <= 9; ++round) {
    SubBytes(state);
    ShiftRows(state);
    MixColumns(state);
    AddRoundKey(state, round_keys_.data() + 16 * round);
  }
  SubBytes(state);
  ShiftRows(state);
  AddRoundKey(state, round_keys_.data() + 160);
  std::memcpy(out.data(), state, 16);
}

}  // namespace wlansim
