#include "crypto/cipher_suite.h"

#include <cassert>
#include <cstring>

#include "crypto/ccm.h"
#include "crypto/crc32.h"
#include "crypto/michael.h"
#include "crypto/rc4.h"
#include "crypto/tkip.h"

namespace wlansim {

std::string ToString(CipherSuite suite) {
  switch (suite) {
    case CipherSuite::kOpen:
      return "open";
    case CipherSuite::kWep:
      return "wep";
    case CipherSuite::kTkip:
      return "tkip";
    case CipherSuite::kCcmp:
      return "ccmp";
  }
  return "?";
}

size_t CipherHeaderBytes(CipherSuite suite) {
  switch (suite) {
    case CipherSuite::kOpen:
      return 0;
    case CipherSuite::kWep:
      return 4;  // IV[3] + KeyID
    case CipherSuite::kTkip:
      return 8;  // TSC1, WEPSeed, TSC0, KeyID|ExtIV, TSC2..TSC5
    case CipherSuite::kCcmp:
      return 8;  // PN0, PN1, rsvd, KeyID|ExtIV, PN2..PN5
  }
  return 0;
}

size_t CipherTrailerBytes(CipherSuite suite) {
  switch (suite) {
    case CipherSuite::kOpen:
      return 0;
    case CipherSuite::kWep:
      return 4;  // ICV
    case CipherSuite::kTkip:
      return 12;  // Michael MIC (8) + ICV (4)
    case CipherSuite::kCcmp:
      return 8;  // CCM MIC
  }
  return 0;
}

namespace {

class OpenCipher final : public LinkCipher {
 public:
  CipherSuite suite() const override { return CipherSuite::kOpen; }
  void Protect(const FrameCryptoContext&, std::vector<uint8_t>&) override {}
  bool Unprotect(const FrameCryptoContext&, std::vector<uint8_t>&) override { return true; }
};

class WepCipher final : public LinkCipher {
 public:
  explicit WepCipher(std::span<const uint8_t> key) : key_(key.begin(), key.end()) {
    assert(key.size() == 5 || key.size() == 13);
  }

  CipherSuite suite() const override { return CipherSuite::kWep; }

  void Protect(const FrameCryptoContext&, std::vector<uint8_t>& body) override {
    // One up-front reservation for the full re-framed MPDU body, so the
    // ICV push_backs and the header insert below never reallocate.
    body.reserve(body.size() + CipherTotalOverheadBytes(CipherSuite::kWep));
    // Header: IV (24-bit counter, the classic weakness) + KeyID byte.
    const uint32_t iv = iv_counter_++ & 0xFFFFFF;
    uint8_t header[4] = {static_cast<uint8_t>(iv >> 16), static_cast<uint8_t>(iv >> 8),
                         static_cast<uint8_t>(iv), 0 /* key id 0 */};

    // Append ICV = CRC32(plaintext), then RC4(IV || key) over payload+ICV.
    const uint32_t icv = Crc32(body);
    body.push_back(static_cast<uint8_t>(icv));
    body.push_back(static_cast<uint8_t>(icv >> 8));
    body.push_back(static_cast<uint8_t>(icv >> 16));
    body.push_back(static_cast<uint8_t>(icv >> 24));

    std::vector<uint8_t> seed(3 + key_.size());
    std::memcpy(seed.data(), header, 3);
    std::memcpy(seed.data() + 3, key_.data(), key_.size());
    Rc4 rc4(seed);
    rc4.Process(body);

    body.insert(body.begin(), header, header + 4);
  }

  bool Unprotect(const FrameCryptoContext&, std::vector<uint8_t>& body) override {
    if (body.size() < 8) {
      return false;
    }
    uint8_t iv[3] = {body[0], body[1], body[2]};
    body.erase(body.begin(), body.begin() + 4);

    std::vector<uint8_t> seed(3 + key_.size());
    std::memcpy(seed.data(), iv, 3);
    std::memcpy(seed.data() + 3, key_.data(), key_.size());
    Rc4 rc4(seed);
    rc4.Process(body);

    const size_t n = body.size() - 4;
    const uint32_t got = static_cast<uint32_t>(body[n]) | (static_cast<uint32_t>(body[n + 1]) << 8) |
                         (static_cast<uint32_t>(body[n + 2]) << 16) |
                         (static_cast<uint32_t>(body[n + 3]) << 24);
    body.resize(n);
    return got == Crc32(body);
  }

 private:
  std::vector<uint8_t> key_;
  uint32_t iv_counter_ = 0;
};

class TkipCipher final : public LinkCipher {
 public:
  explicit TkipCipher(std::span<const uint8_t> key) {
    assert(key.size() == TkipMixer::kTkSize);
    std::copy(key.begin(), key.end(), tk_.begin());
    // Derive the Michael key from the TK so a single 16-byte key configures
    // the suite (a real 802.11i PTK carries independent Michael key bytes;
    // this derivation keeps the simulation self-contained and deterministic).
    for (size_t i = 0; i < Michael::kKeySize; ++i) {
      mic_key_[i] = static_cast<uint8_t>(tk_[i] ^ tk_[i + 8] ^ 0x5a);
    }
  }

  CipherSuite suite() const override { return CipherSuite::kTkip; }

  void Protect(const FrameCryptoContext& ctx, std::vector<uint8_t>& body) override {
    // One up-front reservation for the full re-framed MPDU body (MIC, ICV,
    // TKIP header) so none of the appends/inserts below reallocates.
    body.reserve(body.size() + CipherTotalOverheadBytes(CipherSuite::kTkip));
    // 1. Append Michael MIC over DA|SA|priority|payload.
    const auto mic = Michael::ComputeForMsdu(std::span<const uint8_t, 8>(mic_key_), ctx.da, ctx.sa,
                                             ctx.priority, body);
    body.insert(body.end(), mic.begin(), mic.end());

    // 2. WEP-encapsulate with the mixed per-packet key.
    if (iv16_ == 0) {
      ttak_ = TkipMixer::Phase1(std::span<const uint8_t, 16>(tk_), ctx.ta, iv32_);
    }
    const auto rc4_key = TkipMixer::Phase2(ttak_, std::span<const uint8_t, 16>(tk_), iv16_);

    const uint32_t icv = Crc32(body);
    body.push_back(static_cast<uint8_t>(icv));
    body.push_back(static_cast<uint8_t>(icv >> 8));
    body.push_back(static_cast<uint8_t>(icv >> 16));
    body.push_back(static_cast<uint8_t>(icv >> 24));

    Rc4 rc4(rc4_key);
    rc4.Process(body);

    // 3. Prepend the TKIP header: TSC1, WEPSeed, TSC0, KeyID|ExtIV, TSC2-5.
    uint8_t header[8];
    header[0] = rc4_key[0];
    header[1] = rc4_key[1];
    header[2] = rc4_key[2];
    header[3] = 0x20;  // ExtIV, key id 0
    header[4] = static_cast<uint8_t>(iv32_);
    header[5] = static_cast<uint8_t>(iv32_ >> 8);
    header[6] = static_cast<uint8_t>(iv32_ >> 16);
    header[7] = static_cast<uint8_t>(iv32_ >> 24);
    body.insert(body.begin(), header, header + 8);

    if (++iv16_ == 0) {
      ++iv32_;  // rollover re-runs phase 1 on the next packet
    }
  }

  bool Unprotect(const FrameCryptoContext& ctx, std::vector<uint8_t>& body) override {
    if (body.size() < 8 + 12) {
      return false;
    }
    const uint16_t iv16 = static_cast<uint16_t>((body[0] << 8) | body[2]);
    const uint32_t iv32 = static_cast<uint32_t>(body[4]) | (static_cast<uint32_t>(body[5]) << 8) |
                          (static_cast<uint32_t>(body[6]) << 16) |
                          (static_cast<uint32_t>(body[7]) << 24);
    body.erase(body.begin(), body.begin() + 8);

    const auto ttak = TkipMixer::Phase1(std::span<const uint8_t, 16>(tk_), ctx.ta, iv32);
    const auto rc4_key = TkipMixer::Phase2(ttak, std::span<const uint8_t, 16>(tk_), iv16);
    Rc4 rc4(rc4_key);
    rc4.Process(body);

    // ICV check.
    size_t n = body.size() - 4;
    const uint32_t got = static_cast<uint32_t>(body[n]) | (static_cast<uint32_t>(body[n + 1]) << 8) |
                         (static_cast<uint32_t>(body[n + 2]) << 16) |
                         (static_cast<uint32_t>(body[n + 3]) << 24);
    body.resize(n);
    if (got != Crc32(body)) {
      return false;
    }

    // Michael check.
    n = body.size() - Michael::kMicSize;
    const auto expect = Michael::ComputeForMsdu(std::span<const uint8_t, 8>(mic_key_), ctx.da,
                                                ctx.sa, ctx.priority,
                                                std::span<const uint8_t>(body.data(), n));
    const bool ok = std::equal(expect.begin(), expect.end(), body.begin() + n);
    body.resize(n);
    return ok;
  }

 private:
  std::array<uint8_t, 16> tk_{};
  std::array<uint8_t, 8> mic_key_{};
  TkipMixer::Ttak ttak_{};
  uint16_t iv16_ = 0;
  uint32_t iv32_ = 0;
};

class CcmpCipher final : public LinkCipher {
 public:
  explicit CcmpCipher(std::span<const uint8_t> key)
      : ccm_(std::span<const uint8_t, 16>(key.data(), 16), /*mic_len=*/8,
             /*length_field_size=*/2) {
    assert(key.size() == 16);
  }

  CipherSuite suite() const override { return CipherSuite::kCcmp; }

  void Protect(const FrameCryptoContext& ctx, std::vector<uint8_t>& body) override {
    // One up-front reservation for the full re-framed MPDU body (CCMP
    // header + MIC) so the inserts below never reallocate.
    body.reserve(body.size() + CipherTotalOverheadBytes(CipherSuite::kCcmp));
    const uint64_t pn = ++pn_;

    uint8_t nonce[13];
    BuildNonce(ctx, pn, nonce);
    const auto aad = BuildAad(ctx);

    const auto mic = ccm_.Encrypt(nonce, aad, body);

    uint8_t header[8];
    header[0] = static_cast<uint8_t>(pn);
    header[1] = static_cast<uint8_t>(pn >> 8);
    header[2] = 0;
    header[3] = 0x20;  // ExtIV, key id 0
    header[4] = static_cast<uint8_t>(pn >> 16);
    header[5] = static_cast<uint8_t>(pn >> 24);
    header[6] = static_cast<uint8_t>(pn >> 32);
    header[7] = static_cast<uint8_t>(pn >> 40);
    body.insert(body.begin(), header, header + 8);
    body.insert(body.end(), mic.begin(), mic.end());
  }

  bool Unprotect(const FrameCryptoContext& ctx, std::vector<uint8_t>& body) override {
    if (body.size() < 16) {
      return false;
    }
    const uint64_t pn = static_cast<uint64_t>(body[0]) | (static_cast<uint64_t>(body[1]) << 8) |
                        (static_cast<uint64_t>(body[4]) << 16) |
                        (static_cast<uint64_t>(body[5]) << 24) |
                        (static_cast<uint64_t>(body[6]) << 32) |
                        (static_cast<uint64_t>(body[7]) << 40);
    if (pn <= last_rx_pn_) {
      return false;  // replay
    }
    body.erase(body.begin(), body.begin() + 8);

    uint8_t nonce[13];
    BuildNonce(ctx, pn, nonce);
    const auto aad = BuildAad(ctx);

    const size_t n = body.size() - 8;
    std::vector<uint8_t> mic(body.begin() + static_cast<ptrdiff_t>(n), body.end());
    body.resize(n);
    if (!ccm_.Decrypt(nonce, aad, body, mic)) {
      return false;
    }
    last_rx_pn_ = pn;
    return true;
  }

 private:
  void BuildNonce(const FrameCryptoContext& ctx, uint64_t pn, uint8_t nonce[13]) const {
    nonce[0] = ctx.priority;
    std::copy(ctx.ta.bytes().begin(), ctx.ta.bytes().end(), nonce + 1);
    for (int i = 0; i < 6; ++i) {
      nonce[7 + i] = static_cast<uint8_t>(pn >> (8 * (5 - i)));  // PN big-endian
    }
  }

  std::vector<uint8_t> BuildAad(const FrameCryptoContext& ctx) const {
    // Simplified AAD: the addressing triple + priority. (The full 802.11
    // AAD also masks frame-control/sequence-control bits; the security
    // property exercised here — binding ciphertext to the addresses — is
    // identical.)
    std::vector<uint8_t> aad;
    aad.reserve(19);
    aad.insert(aad.end(), ctx.ta.bytes().begin(), ctx.ta.bytes().end());
    aad.insert(aad.end(), ctx.da.bytes().begin(), ctx.da.bytes().end());
    aad.insert(aad.end(), ctx.sa.bytes().begin(), ctx.sa.bytes().end());
    aad.push_back(ctx.priority);
    return aad;
  }

  Ccm ccm_;
  uint64_t pn_ = 0;
  uint64_t last_rx_pn_ = 0;
};

}  // namespace

std::unique_ptr<LinkCipher> CreateCipher(CipherSuite suite, std::span<const uint8_t> key) {
  switch (suite) {
    case CipherSuite::kOpen:
      return std::make_unique<OpenCipher>();
    case CipherSuite::kWep:
      return std::make_unique<WepCipher>(key);
    case CipherSuite::kTkip:
      return std::make_unique<TkipCipher>(key);
    case CipherSuite::kCcmp:
      return std::make_unique<CcmpCipher>(key);
  }
  return nullptr;
}

}  // namespace wlansim
