// AES-128 block cipher (FIPS-197), encryption direction only — CCM (counter
// mode + CBC-MAC) never needs the inverse cipher.

#ifndef WLANSIM_CRYPTO_AES_H_
#define WLANSIM_CRYPTO_AES_H_

#include <array>
#include <cstdint>
#include <span>

namespace wlansim {

class Aes128 {
 public:
  static constexpr size_t kBlockSize = 16;
  static constexpr size_t kKeySize = 16;

  // Expands the 128-bit `key` into the round-key schedule.
  explicit Aes128(std::span<const uint8_t, kKeySize> key);

  // Encrypts one 16-byte block: out = E_k(in). in/out may alias.
  void EncryptBlock(std::span<const uint8_t, kBlockSize> in,
                    std::span<uint8_t, kBlockSize> out) const;

 private:
  // 11 round keys × 16 bytes.
  std::array<uint8_t, 176> round_keys_;
};

}  // namespace wlansim

#endif  // WLANSIM_CRYPTO_AES_H_
