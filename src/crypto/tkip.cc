#include "crypto/tkip.h"

#include <array>

namespace wlansim {
namespace {

// The TKIP S-box is derived from the AES S-box: for s = aes_sbox[i],
// entry = (xtime(s) << 8) | (xtime(s) ^ s). Computing it at compile time
// avoids transcription errors in a 256-entry table.
constexpr uint8_t GfMulTk(uint8_t a, uint8_t b) {
  uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) {
      p ^= a;
    }
    const bool hi = (a & 0x80) != 0;
    a = static_cast<uint8_t>(a << 1);
    if (hi) {
      a ^= 0x1B;
    }
    b >>= 1;
  }
  return p;
}

constexpr uint8_t GfInverseTk(uint8_t a) {
  if (a == 0) {
    return 0;
  }
  uint8_t result = 1;
  uint8_t base = a;
  int e = 254;
  while (e > 0) {
    if (e & 1) {
      result = GfMulTk(result, base);
    }
    base = GfMulTk(base, base);
    e >>= 1;
  }
  return result;
}

constexpr uint8_t AesSboxEntry(uint8_t i) {
  const uint8_t inv = GfInverseTk(i);
  uint8_t x = inv;
  uint8_t y = inv;
  for (int k = 0; k < 4; ++k) {
    y = static_cast<uint8_t>((y << 1) | (y >> 7));
    x ^= y;
  }
  return x ^ 0x63;
}

constexpr std::array<uint16_t, 256> MakeTkipSbox() {
  std::array<uint16_t, 256> table{};
  for (int i = 0; i < 256; ++i) {
    const uint8_t s = AesSboxEntry(static_cast<uint8_t>(i));
    const uint8_t x2 = static_cast<uint8_t>((s << 1) ^ ((s & 0x80) ? 0x1B : 0x00));
    table[i] = static_cast<uint16_t>((x2 << 8) | (x2 ^ s));
  }
  return table;
}

constexpr std::array<uint16_t, 256> kSbox = MakeTkipSbox();

constexpr uint16_t SwapBytes(uint16_t v) {
  return static_cast<uint16_t>((v << 8) | (v >> 8));
}

// The standard's _S_ function: 16-bit substitution built from two byte
// lookups.
constexpr uint16_t S(uint16_t v) {
  return static_cast<uint16_t>(kSbox[v & 0xFF] ^ SwapBytes(kSbox[v >> 8]));
}

constexpr uint16_t Mk16(uint8_t hi, uint8_t lo) {
  return static_cast<uint16_t>((hi << 8) | lo);
}

constexpr uint16_t RotR1(uint16_t v) {
  return static_cast<uint16_t>((v >> 1) | (v << 15));
}

}  // namespace

TkipMixer::Ttak TkipMixer::Phase1(std::span<const uint8_t, kTkSize> tk, const MacAddress& ta,
                                  uint32_t iv32) {
  const auto& a = ta.bytes();
  Ttak p;
  p[0] = static_cast<uint16_t>(iv32 & 0xFFFF);
  p[1] = static_cast<uint16_t>(iv32 >> 16);
  p[2] = Mk16(a[1], a[0]);
  p[3] = Mk16(a[3], a[2]);
  p[4] = Mk16(a[5], a[4]);

  for (uint16_t i = 0; i < 8; ++i) {
    const size_t j = 2 * (i & 1);
    p[0] = static_cast<uint16_t>(p[0] + S(static_cast<uint16_t>(p[4] ^ Mk16(tk[1 + j], tk[0 + j]))));
    p[1] = static_cast<uint16_t>(p[1] + S(static_cast<uint16_t>(p[0] ^ Mk16(tk[5 + j], tk[4 + j]))));
    p[2] = static_cast<uint16_t>(p[2] + S(static_cast<uint16_t>(p[1] ^ Mk16(tk[9 + j], tk[8 + j]))));
    p[3] = static_cast<uint16_t>(p[3] + S(static_cast<uint16_t>(p[2] ^ Mk16(tk[13 + j], tk[12 + j]))));
    p[4] = static_cast<uint16_t>(p[4] + S(static_cast<uint16_t>(p[3] ^ Mk16(tk[1 + j], tk[0 + j]))) + i);
  }
  return p;
}

TkipMixer::Rc4Key TkipMixer::Phase2(const Ttak& ttak, std::span<const uint8_t, kTkSize> tk,
                                    uint16_t iv16) {
  uint16_t ppk[6];
  for (int i = 0; i < 5; ++i) {
    ppk[i] = ttak[static_cast<size_t>(i)];
  }
  ppk[5] = static_cast<uint16_t>(ttak[4] + iv16);

  ppk[0] = static_cast<uint16_t>(ppk[0] + S(static_cast<uint16_t>(ppk[5] ^ Mk16(tk[1], tk[0]))));
  ppk[1] = static_cast<uint16_t>(ppk[1] + S(static_cast<uint16_t>(ppk[0] ^ Mk16(tk[3], tk[2]))));
  ppk[2] = static_cast<uint16_t>(ppk[2] + S(static_cast<uint16_t>(ppk[1] ^ Mk16(tk[5], tk[4]))));
  ppk[3] = static_cast<uint16_t>(ppk[3] + S(static_cast<uint16_t>(ppk[2] ^ Mk16(tk[7], tk[6]))));
  ppk[4] = static_cast<uint16_t>(ppk[4] + S(static_cast<uint16_t>(ppk[3] ^ Mk16(tk[9], tk[8]))));
  ppk[5] = static_cast<uint16_t>(ppk[5] + S(static_cast<uint16_t>(ppk[4] ^ Mk16(tk[11], tk[10]))));

  ppk[0] = static_cast<uint16_t>(ppk[0] + RotR1(static_cast<uint16_t>(ppk[5] ^ Mk16(tk[13], tk[12]))));
  ppk[1] = static_cast<uint16_t>(ppk[1] + RotR1(static_cast<uint16_t>(ppk[0] ^ Mk16(tk[15], tk[14]))));
  ppk[2] = static_cast<uint16_t>(ppk[2] + RotR1(ppk[1]));
  ppk[3] = static_cast<uint16_t>(ppk[3] + RotR1(ppk[2]));
  ppk[4] = static_cast<uint16_t>(ppk[4] + RotR1(ppk[3]));
  ppk[5] = static_cast<uint16_t>(ppk[5] + RotR1(ppk[4]));

  Rc4Key key;
  key[0] = static_cast<uint8_t>(iv16 >> 8);
  key[1] = static_cast<uint8_t>(((iv16 >> 8) | 0x20) & 0x7F);  // avoids RC4 weak keys
  key[2] = static_cast<uint8_t>(iv16 & 0xFF);
  key[3] = static_cast<uint8_t>((ppk[5] ^ Mk16(tk[1], tk[0])) >> 1);
  for (int i = 0; i < 6; ++i) {
    key[static_cast<size_t>(4 + 2 * i)] = static_cast<uint8_t>(ppk[i] & 0xFF);
    key[static_cast<size_t>(5 + 2 * i)] = static_cast<uint8_t>(ppk[i] >> 8);
  }
  return key;
}

}  // namespace wlansim
