#include "crypto/crc32.h"

#include <array>

namespace wlansim {
namespace {

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

void Crc32Builder::Update(std::span<const uint8_t> data) {
  uint32_t c = state_;
  for (uint8_t b : data) {
    c = kTable[(c ^ b) & 0xFF] ^ (c >> 8);
  }
  state_ = c;
}

void Crc32Builder::Update(uint8_t byte) {
  state_ = kTable[(state_ ^ byte) & 0xFF] ^ (state_ >> 8);
}

uint32_t Crc32(std::span<const uint8_t> data) {
  Crc32Builder builder;
  builder.Update(data);
  return builder.Finalize();
}

}  // namespace wlansim
