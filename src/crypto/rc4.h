// RC4 stream cipher (as used by WEP and TKIP's WEP core).

#ifndef WLANSIM_CRYPTO_RC4_H_
#define WLANSIM_CRYPTO_RC4_H_

#include <cstdint>
#include <span>

namespace wlansim {

class Rc4 {
 public:
  // Initializes the keystream generator with `key` (1..256 bytes).
  explicit Rc4(std::span<const uint8_t> key);

  // Next keystream byte.
  uint8_t Next();

  // XORs `data` in place with the keystream (encrypt == decrypt).
  void Process(std::span<uint8_t> data);

  // Discards `n` keystream bytes (e.g. RC4-drop[n] hardening).
  void Skip(size_t n);

 private:
  uint8_t s_[256];
  uint8_t i_ = 0;
  uint8_t j_ = 0;
};

}  // namespace wlansim

#endif  // WLANSIM_CRYPTO_RC4_H_
