#include "crypto/ccm.h"

#include <cassert>
#include <cstring>

namespace wlansim {

Ccm::Ccm(std::span<const uint8_t, Aes128::kKeySize> key, size_t mic_len, size_t length_field_size)
    : aes_(key), mic_len_(mic_len), length_len_(length_field_size) {
  assert(mic_len_ >= 4 && mic_len_ <= 16 && mic_len_ % 2 == 0);
  assert(length_len_ >= 2 && length_len_ <= 8);
}

void Ccm::ComputeMac(std::span<const uint8_t> nonce, std::span<const uint8_t> aad,
                     std::span<const uint8_t> payload, uint8_t mac[Aes128::kBlockSize]) const {
  assert(nonce.size() == nonce_length());
  uint8_t block[16];

  // B0: flags | nonce | l(m).
  const uint8_t adata = aad.empty() ? 0 : 0x40;
  const uint8_t m_enc = static_cast<uint8_t>(((mic_len_ - 2) / 2) << 3);
  const uint8_t l_enc = static_cast<uint8_t>(length_len_ - 1);
  block[0] = static_cast<uint8_t>(adata | m_enc | l_enc);
  std::memcpy(block + 1, nonce.data(), nonce.size());
  uint64_t len = payload.size();
  for (size_t i = 0; i < length_len_; ++i) {
    block[15 - i] = static_cast<uint8_t>(len & 0xFF);
    len >>= 8;
  }
  assert(len == 0 && "payload too long for length field");

  aes_.EncryptBlock(std::span<const uint8_t, 16>(block, 16), std::span<uint8_t, 16>(mac, 16));

  // AAD: 2-byte length prefix (we only support AAD < 2^16 - 2^8, which covers
  // all 802.11 headers), then the AAD itself, zero-padded to a block.
  if (!aad.empty()) {
    assert(aad.size() < 0xFF00);
    uint8_t chunk[16];
    chunk[0] = static_cast<uint8_t>(aad.size() >> 8);
    chunk[1] = static_cast<uint8_t>(aad.size() & 0xFF);
    size_t fill = 2;
    size_t consumed = 0;
    while (consumed < aad.size()) {
      const size_t n = std::min(aad.size() - consumed, 16 - fill);
      std::memcpy(chunk + fill, aad.data() + consumed, n);
      consumed += n;
      fill += n;
      if (fill == 16 || consumed == aad.size()) {
        std::memset(chunk + fill, 0, 16 - fill);
        for (int i = 0; i < 16; ++i) {
          mac[i] ^= chunk[i];
        }
        aes_.EncryptBlock(std::span<const uint8_t, 16>(mac, 16), std::span<uint8_t, 16>(mac, 16));
        fill = 0;
      }
    }
  }

  // Payload blocks, zero-padded.
  size_t consumed = 0;
  while (consumed < payload.size()) {
    const size_t n = std::min(payload.size() - consumed, size_t{16});
    for (size_t i = 0; i < n; ++i) {
      mac[i] ^= payload[consumed + i];
    }
    aes_.EncryptBlock(std::span<const uint8_t, 16>(mac, 16), std::span<uint8_t, 16>(mac, 16));
    consumed += n;
  }
}

void Ccm::CounterBlock(std::span<const uint8_t> nonce, uint64_t counter,
                       uint8_t out[Aes128::kBlockSize]) const {
  uint8_t block[16];
  block[0] = static_cast<uint8_t>(length_len_ - 1);
  std::memcpy(block + 1, nonce.data(), nonce.size());
  for (size_t i = 0; i < length_len_; ++i) {
    block[15 - i] = static_cast<uint8_t>(counter & 0xFF);
    counter >>= 8;
  }
  aes_.EncryptBlock(std::span<const uint8_t, 16>(block, 16), std::span<uint8_t, 16>(out, 16));
}

void Ccm::CtrProcess(std::span<const uint8_t> nonce, std::span<uint8_t> payload) const {
  uint8_t keystream[16];
  uint64_t counter = 1;
  size_t consumed = 0;
  while (consumed < payload.size()) {
    CounterBlock(nonce, counter++, keystream);
    const size_t n = std::min(payload.size() - consumed, size_t{16});
    for (size_t i = 0; i < n; ++i) {
      payload[consumed + i] ^= keystream[i];
    }
    consumed += n;
  }
}

std::vector<uint8_t> Ccm::Encrypt(std::span<const uint8_t> nonce, std::span<const uint8_t> aad,
                                  std::span<uint8_t> payload) const {
  uint8_t mac[16];
  ComputeMac(nonce, aad, payload, mac);

  // MIC = first M bytes of CBC-MAC, encrypted with counter block A_0.
  uint8_t a0[16];
  CounterBlock(nonce, 0, a0);
  std::vector<uint8_t> mic(mic_len_);
  for (size_t i = 0; i < mic_len_; ++i) {
    mic[i] = mac[i] ^ a0[i];
  }

  CtrProcess(nonce, payload);
  return mic;
}

bool Ccm::Decrypt(std::span<const uint8_t> nonce, std::span<const uint8_t> aad,
                  std::span<uint8_t> payload, std::span<const uint8_t> mic) const {
  if (mic.size() != mic_len_) {
    return false;
  }
  CtrProcess(nonce, payload);  // CTR is an involution

  uint8_t mac[16];
  ComputeMac(nonce, aad, payload, mac);
  uint8_t a0[16];
  CounterBlock(nonce, 0, a0);

  uint8_t diff = 0;
  for (size_t i = 0; i < mic_len_; ++i) {
    diff |= static_cast<uint8_t>((mac[i] ^ a0[i]) ^ mic[i]);
  }
  return diff == 0;
}

}  // namespace wlansim
