#include "crypto/michael.h"

#include <vector>

namespace wlansim {
namespace {

constexpr uint32_t RotL(uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}
constexpr uint32_t RotR(uint32_t x, int k) {
  return (x >> k) | (x << (32 - k));
}
// Swaps the bytes within each 16-bit half.
constexpr uint32_t XSwap(uint32_t x) {
  return ((x & 0xFF00FF00u) >> 8) | ((x & 0x00FF00FFu) << 8);
}

void BlockFunction(uint32_t& l, uint32_t& r) {
  r ^= RotL(l, 17);
  l += r;
  r ^= XSwap(l);
  l += r;
  r ^= RotL(l, 3);
  l += r;
  r ^= RotR(l, 2);
  l += r;
}

uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

std::array<uint8_t, Michael::kMicSize> Run(std::span<const uint8_t, Michael::kKeySize> key,
                                           std::span<const uint8_t> head,
                                           std::span<const uint8_t> tail) {
  uint32_t l = LoadLe32(key.data());
  uint32_t r = LoadLe32(key.data() + 4);

  // Concatenate head|tail|0x5a|zero-pad to a word boundary, then absorb
  // word by word. The padded stream is materialized for clarity; MSDUs are
  // small so this is not a hot path concern.
  std::vector<uint8_t> stream;
  stream.reserve(head.size() + tail.size() + 8);
  stream.insert(stream.end(), head.begin(), head.end());
  stream.insert(stream.end(), tail.begin(), tail.end());
  // Padding per the standard: 0x5a followed by 4 to 7 zero bytes, bringing
  // the stream to a 32-bit word boundary (verified against the 802.11i
  // Annex chained test vectors).
  stream.push_back(0x5a);
  for (int i = 0; i < 4; ++i) {
    stream.push_back(0x00);
  }
  while (stream.size() % 4 != 0) {
    stream.push_back(0x00);
  }
  for (size_t i = 0; i < stream.size(); i += 4) {
    l ^= LoadLe32(stream.data() + i);
    BlockFunction(l, r);
  }

  return {static_cast<uint8_t>(l), static_cast<uint8_t>(l >> 8), static_cast<uint8_t>(l >> 16),
          static_cast<uint8_t>(l >> 24), static_cast<uint8_t>(r), static_cast<uint8_t>(r >> 8),
          static_cast<uint8_t>(r >> 16), static_cast<uint8_t>(r >> 24)};
}

}  // namespace

std::array<uint8_t, Michael::kMicSize> Michael::Compute(std::span<const uint8_t, kKeySize> key,
                                                        std::span<const uint8_t> data) {
  return Run(key, {}, data);
}

std::array<uint8_t, Michael::kMicSize> Michael::ComputeForMsdu(
    std::span<const uint8_t, kKeySize> key, const MacAddress& da, const MacAddress& sa,
    uint8_t priority, std::span<const uint8_t> payload) {
  uint8_t header[16];
  std::copy(da.bytes().begin(), da.bytes().end(), header);
  std::copy(sa.bytes().begin(), sa.bytes().end(), header + 6);
  header[12] = priority;
  header[13] = header[14] = header[15] = 0;
  return Run(key, std::span<const uint8_t>(header, 16), payload);
}

}  // namespace wlansim
