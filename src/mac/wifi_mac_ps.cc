// 802.11 power-save plane of WifiMac.
//
// STA cycle: announce PM=1 with a null-function frame, doze the radio, wake
// just before every listen_interval-th beacon, check the TIM, and either
// doze again or PS-Poll the AP until a frame with more_data=0 drains the
// buffer. Uplink traffic enqueued while dozing wakes the radio immediately
// (the PM bit stays set, so the AP keeps buffering downlink).
//
// AP side: frames addressed to a dozing station are diverted to that
// station's PS buffer, advertised in the beacon TIM, and released one at a
// time in response to PS-Polls with the more_data bit chaining the batch.
//
// Simplifications (documented): the TIM is an explicit AID list rather than
// the partial-virtual-bitmap encoding; a lost PS-Poll is recovered by the
// next beacon rather than a retry; DTIM multicast buffering is out of scope.

#include "mac/wifi_mac.h"

namespace wlansim {
namespace {

// Wake this long before the expected beacon to be listening when it lands.
constexpr Time kWakeGuard = Time::Millis(2);

}  // namespace

void WifiMac::EnterPowerSave() {
  if (config_.role != MacRole::kSta || state_ != StaState::kAssociated) {
    return;
  }
  ps_cycle_active_ = true;
  // Announce PM=1 with a null frame; PsSleep happens once the exchange
  // completes (SequenceComplete → MaybeResumeSleep).
  MacQueue::Item item;
  item.msdu = Packet(0);
  item.dest = bssid_;
  item.src = config_.address;
  item.is_null = true;
  item.pm_bit = true;
  acs_[MgmtAcIndex()].queue.EnqueueFront(std::move(item));
  MaybeRequestAccess();
}

void WifiMac::PsSleep() {
  if (!ps_cycle_active_ || state_ != StaState::kAssociated) {
    return;
  }
  phy_->SetSleep(true);
  // Wake ahead of the next listen-interval beacon. Anchor on the beacon's
  // declared target time (its timestamp field), not its arrival time: the
  // arrival includes DCF queueing jitter, and anchoring on a late beacon
  // would make the station wake after the next (on-time) one has passed.
  const Time interval =
      config_.beacon_interval * static_cast<int64_t>(std::max<uint8_t>(config_.listen_interval, 1));
  const Time anchor = last_tbtt_.IsZero() ? last_beacon_rx_ : last_tbtt_;
  Time wake_at = anchor + interval - kWakeGuard;
  const Time now = sim_->Now();
  while (wake_at <= now) {
    wake_at += interval;
  }
  wake_event_.Cancel();
  wake_event_ = sim_->ScheduleAt(wake_at, [this] { PsWake(); });
}

void WifiMac::PsWake() {
  if (!phy_->IsAsleep()) {
    return;
  }
  wake_event_.Cancel();
  phy_->SetSleep(false);
  // Stay awake until the beacon arrives (HandleBeaconInPowerSave decides),
  // or until the watchdog declares the AP lost. As a fallback, if no beacon
  // arrives within two intervals the watchdog path roams.
  MaybeRequestAccess();
}

void WifiMac::HandleBeaconInPowerSave(const BeaconBody& body) {
  last_tbtt_ = Time::Micros(static_cast<int64_t>(body.timestamp_us));
  if (body.TimContains(aid_)) {
    ps_awaiting_data_ = true;
    SendPsPoll();
    return;
  }
  ps_awaiting_data_ = false;
  MaybeResumeSleep();
}

void WifiMac::SendPsPoll() {
  if (state_ != StaState::kAssociated) {
    return;
  }
  ++counters_.ps_polls;
  MacHeader poll;
  poll.type = FrameType::kControl;
  poll.subtype = FrameSubtype::kPsPoll;
  poll.addr1 = bssid_;
  poll.addr2 = config_.address;
  poll.duration_us = aid_;  // the duration/ID field carries the AID
  // PS-Poll is a control frame: sent directly (SIFS-class response rules
  // are relaxed here; the AP answers through normal DCF access).
  phy_->StartTx(BuildMpdu(poll, {}), MgmtMode());
}

void WifiMac::MaybeResumeSleep() {
  if (config_.role != MacRole::kSta || !ps_cycle_active_ || ps_awaiting_data_) {
    return;
  }
  if (tx_.has_value() || QueueSize() > 0 || phy_->IsAsleep()) {
    return;
  }
  if (state_ != StaState::kAssociated) {
    return;
  }
  PsSleep();
}

bool WifiMac::StaIsDozing(const MacAddress& sta) const {
  auto it = associated_stas_.find(sta);
  return it != associated_stas_.end() && it->second.dozing;
}

void WifiMac::ApBufferForDozing(MacQueue::Item item) {
  auto it = associated_stas_.find(item.dest);
  if (it == associated_stas_.end()) {
    return;  // raced with disassociation: drop
  }
  ++counters_.ps_buffered;
  constexpr size_t kPsBufferLimit = 64;
  if (it->second.ps_buffer.size() >= kPsBufferLimit) {
    it->second.ps_buffer.pop_front();  // oldest-first overflow
  }
  it->second.ps_buffer.push_back(std::move(item));
}

void WifiMac::HandlePsPoll(const MacHeader& header) {
  if (config_.role != MacRole::kAp) {
    return;
  }
  auto it = associated_stas_.find(header.addr2);
  if (it == associated_stas_.end() || it->second.ps_buffer.empty()) {
    return;
  }
  ++counters_.ps_polls;
  MacQueue::Item item = std::move(it->second.ps_buffer.front());
  it->second.ps_buffer.pop_front();
  item.more_data = !it->second.ps_buffer.empty();
  item.ps_release = true;  // the poll authorizes this one frame
  // Release through the normal transmit path at the front of the queue.
  // The station stays awake until it sees more_data == 0; its dozing state
  // at the AP is unchanged (the PS-Poll's PM bit remains set).
  acs_[AcIndexFor(item.priority)].queue.EnqueueFront(std::move(item));
  MaybeRequestAccess();
}

}  // namespace wlansim
