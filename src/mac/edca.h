// 802.11e EDCA access categories and their default parameter sets.
//
// Each AC contends independently with its own AIFS (= SIFS + AIFSN × slot)
// and contention window; smaller AIFSN/CW means statistically earlier
// access. Defaults follow the standard's table (derived from the PHY's
// aCWmin/aCWmax). TXOP bursting is out of scope: each access wins one frame
// exchange, which preserves the prioritization behaviour EDCA experiments
// measure.

#ifndef WLANSIM_MAC_EDCA_H_
#define WLANSIM_MAC_EDCA_H_

#include <cstdint>
#include <string>

#include "phy/wifi_mode.h"

namespace wlansim {

enum class AccessCategory : uint8_t {
  kBackground = 0,  // AC_BK
  kBestEffort = 1,  // AC_BE
  kVideo = 2,       // AC_VI
  kVoice = 3,       // AC_VO
};

constexpr size_t kAccessCategoryCount = 4;

std::string ToString(AccessCategory ac);

// 802.11 user priorities (TIDs 0-7) map onto the four ACs.
AccessCategory AcForPriority(uint8_t priority);

struct EdcaParams {
  uint8_t aifsn;
  uint32_t cw_min;
  uint32_t cw_max;
};

// Standard default parameter set for `ac`, given the PHY's base CW bounds.
EdcaParams DefaultEdcaParams(AccessCategory ac, uint32_t phy_cw_min, uint32_t phy_cw_max);

}  // namespace wlansim

#endif  // WLANSIM_MAC_EDCA_H_
