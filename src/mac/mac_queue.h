// Drop-tail transmit queue holding MSDUs awaiting channel access.

#ifndef WLANSIM_MAC_MAC_QUEUE_H_
#define WLANSIM_MAC_MAC_QUEUE_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "core/mac_address.h"
#include "core/packet.h"

namespace wlansim {

class MacQueue {
 public:
  struct Item {
    Packet msdu;
    MacAddress dest;        // final destination (DA)
    MacAddress src;         // original source (SA); equals own address unless bridged
    uint8_t priority = 0;   // 802.1D user priority (EDCA mapping)
    bool is_management = false;
    // Pre-serialized management body frames carry their header template.
    uint8_t mgmt_subtype = 0;
    bool is_null = false;       // data null-function frame (PS signalling)
    bool pm_bit = false;        // power-management bit to set in the header
    bool more_data = false;     // more frames buffered for this PS receiver
    bool ps_release = false;    // released by a PS-Poll: bypass the doze check
  };

  explicit MacQueue(size_t max_packets = 256) : max_packets_(max_packets) {}

  // Returns false (and drops) when full. Management frames enqueue at the
  // front (beacons/assoc must not starve behind data).
  bool Enqueue(Item item);
  bool EnqueueFront(Item item);

  std::optional<Item> Dequeue();
  const Item* Peek() const;

  bool IsEmpty() const { return items_.empty(); }
  size_t size() const { return items_.size(); }
  size_t max_packets() const { return max_packets_; }
  uint64_t drops() const { return drops_; }

 private:
  std::deque<Item> items_;
  size_t max_packets_;
  uint64_t drops_ = 0;
};

}  // namespace wlansim

#endif  // WLANSIM_MAC_MAC_QUEUE_H_
