#include "mac/mac_queue.h"

namespace wlansim {

bool MacQueue::Enqueue(Item item) {
  if (items_.size() >= max_packets_) {
    ++drops_;
    return false;
  }
  items_.push_back(std::move(item));
  return true;
}

bool MacQueue::EnqueueFront(Item item) {
  if (items_.size() >= max_packets_ + 8) {  // small reserve for management
    ++drops_;
    return false;
  }
  items_.push_front(std::move(item));
  return true;
}

std::optional<MacQueue::Item> MacQueue::Dequeue() {
  if (items_.empty()) {
    return std::nullopt;
  }
  Item item = std::move(items_.front());
  items_.pop_front();
  return item;
}

const MacQueue::Item* MacQueue::Peek() const {
  return items_.empty() ? nullptr : &items_.front();
}

}  // namespace wlansim
