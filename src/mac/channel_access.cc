#include "mac/channel_access.h"

#include <algorithm>
#include <cassert>

namespace wlansim {

ChannelAccessManager::ChannelAccessManager(Simulator* sim, Params params, Rng rng)
    : sim_(sim), params_(params), rng_(rng) {}

Time ChannelAccessManager::BusyEnd() const {
  return std::max(phy_busy_end_, nav_end_);
}

void ChannelAccessManager::RequestAccess(uint32_t cw) {
  if (access_requested_) {
    return;
  }
  access_requested_ = true;
  const uint32_t window = (cw == kUseMin) ? params_.cw_min : std::min(cw, params_.cw_max);
  backoff_slots_drawn_ = DrawBackoffSlots(window);
  backoff_remaining_ = backoff_slots_drawn_;
  Reschedule();
}

void ChannelAccessManager::UpdateNav(Time until) {
  if (until <= nav_end_) {
    return;
  }
  nav_end_ = until;
  Freeze();
  Reschedule();
}

void ChannelAccessManager::NotifyRxStart(Time duration) {
  Freeze();
  phy_busy_end_ = std::max(phy_busy_end_, sim_->Now() + duration);
  Reschedule();
}

void ChannelAccessManager::NotifyRxEnd(bool success) {
  last_rx_failed_ = !success;
  phy_busy_end_ = std::max(phy_busy_end_, sim_->Now());
  Reschedule();
}

void ChannelAccessManager::NotifyTxStart(Time duration) {
  Freeze();
  last_rx_failed_ = false;
  phy_busy_end_ = std::max(phy_busy_end_, sim_->Now() + duration);
  Reschedule();
}

void ChannelAccessManager::NotifyCcaBusyStart(Time duration) {
  Freeze();
  phy_busy_end_ = std::max(phy_busy_end_, sim_->Now() + duration);
  Reschedule();
}

void ChannelAccessManager::Freeze() {
  grant_event_.Cancel();
  if (!counting_down_) {
    return;
  }
  counting_down_ = false;
  const Time now = sim_->Now();
  if (now > countdown_start_) {
    const auto elapsed_slots =
        static_cast<uint32_t>((now - countdown_start_).picos() / params_.slot.picos());
    backoff_remaining_ -= std::min(backoff_remaining_, elapsed_slots);
  }
}

void ChannelAccessManager::Reschedule() {
  if (!access_requested_) {
    return;
  }
  grant_event_.Cancel();
  const Time now = sim_->Now();
  const Time aifs = last_rx_failed_ ? params_.eifs : params_.difs;
  const Time resume = std::max(now, BusyEnd() + aifs);
  countdown_start_ = resume;
  counting_down_ = true;
  const Time grant_at = resume + params_.slot * static_cast<int64_t>(backoff_remaining_);
  grant_event_ = sim_->ScheduleAt(grant_at, [this] { CheckAccess(); });
}

void ChannelAccessManager::CheckAccess() {
  if (!access_requested_ || !counting_down_) {
    return;
  }
  const Time now = sim_->Now();
  const Time due = countdown_start_ + params_.slot * static_cast<int64_t>(backoff_remaining_);
  if (now < due || now < BusyEnd()) {
    Reschedule();
    return;
  }
  access_requested_ = false;
  counting_down_ = false;
  backoff_remaining_ = 0;
  if (granted_cb_) {
    granted_cb_();
  }
}

}  // namespace wlansim
