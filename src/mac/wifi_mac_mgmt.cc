// Management plane of WifiMac: beaconing (AP), passive scanning,
// open-system authentication, association, beacon-loss roaming (STA).

#include <algorithm>
#include <cassert>

#include "core/logging.h"
#include "mac/wifi_mac.h"

namespace wlansim {
namespace {

constexpr Time kMgmtResponseTimeout = Time::Millis(30);
constexpr uint8_t kMgmtMaxAttempts = 4;
constexpr Time kRescanDelay = Time::Millis(200);

}  // namespace

void WifiMac::Start() {
  switch (config_.role) {
    case MacRole::kAp:
      // Stagger the first beacon a little so co-located APs do not collide
      // forever (APs share the deterministic seed otherwise).
      sim_->Schedule(Time::Micros(rng_.UniformInt(0, 2000)), [this] { SendBeacon(); });
      break;
    case MacRole::kSta:
      StartScan();
      break;
    case MacRole::kAdhoc:
      break;  // no management plane in IBSS mode
  }
}

void WifiMac::EnqueueMgmt(const MacAddress& dest, FrameSubtype subtype,
                          std::vector<uint8_t> body) {
  MacQueue::Item item;
  item.msdu = Packet{std::span<const uint8_t>(body)};
  item.dest = dest;
  item.src = config_.address;
  item.is_management = true;
  item.mgmt_subtype = static_cast<uint8_t>(subtype);
  acs_[MgmtAcIndex()].queue.EnqueueFront(std::move(item));
  MaybeRequestAccess();
}

// --- AP side -----------------------------------------------------------------

void WifiMac::SendBeacon() {
  BeaconBody body;
  body.timestamp_us = static_cast<uint64_t>(sim_->Now().micros());
  body.beacon_interval_tu = static_cast<uint16_t>(config_.beacon_interval.micros() / 1024.0);
  body.ssid = config_.ssid;
  body.channel = phy_->channel_number();
  for (const auto& [addr, sta] : associated_stas_) {
    if (!sta.ps_buffer.empty()) {
      body.tim_aids.push_back(sta.aid);
    }
  }
  EnqueueMgmt(MacAddress::Broadcast(), FrameSubtype::kBeacon, body.Serialize());
  ScheduleBeacon();
}

void WifiMac::ScheduleBeacon() {
  sim_->Schedule(config_.beacon_interval, [this] { SendBeacon(); });
}

// --- STA side ----------------------------------------------------------------

void WifiMac::StartScan() {
  state_ = StaState::kScanning;
  scan_results_.clear();
  scan_index_ = 0;
  ScanNextChannel();
}

void WifiMac::ScanNextChannel() {
  if (state_ != StaState::kScanning) {
    return;
  }
  if (scan_index_ >= config_.scan_channels.size()) {
    FinishScan();
    return;
  }
  phy_->SetChannelNumber(config_.scan_channels[scan_index_]);
  ++scan_index_;
  sim_->Schedule(config_.scan_dwell, [this] { ScanNextChannel(); });
}

void WifiMac::FinishScan() {
  // Pick the strongest beacon whose SSID matched (filtered at rx time).
  const ScanResult* best = nullptr;
  for (const ScanResult& r : scan_results_) {
    if (best == nullptr || r.rssi_dbm > best->rssi_dbm) {
      best = &r;
    }
  }
  if (best == nullptr) {
    state_ = StaState::kIdle;
    sim_->Schedule(kRescanDelay, [this] { StartScan(); });
    return;
  }
  phy_->SetChannelNumber(best->channel);
  bssid_ = best->bssid;
  state_ = StaState::kAuthenticating;
  mgmt_attempts_ = 0;
  SendAuthRequest();
}

void WifiMac::SendAuthRequest() {
  if (state_ != StaState::kAuthenticating) {
    return;
  }
  if (++mgmt_attempts_ > kMgmtMaxAttempts) {
    state_ = StaState::kIdle;
    sim_->Schedule(kRescanDelay, [this] { StartScan(); });
    return;
  }
  AuthBody body;
  body.sequence = 1;
  EnqueueMgmt(bssid_, FrameSubtype::kAuthentication, body.Serialize());
  mgmt_timeout_.Cancel();
  mgmt_timeout_ = sim_->Schedule(kMgmtResponseTimeout, [this] { OnMgmtTimeout(); });
}

void WifiMac::SendAssocRequest() {
  if (state_ != StaState::kAssociating) {
    return;
  }
  if (++mgmt_attempts_ > kMgmtMaxAttempts) {
    state_ = StaState::kIdle;
    sim_->Schedule(kRescanDelay, [this] { StartScan(); });
    return;
  }
  AssocRequestBody body;
  body.ssid = config_.ssid;
  if (BaseMode().IsOfdm()) {
    body.capability |= AssocRequestBody::kCapErp;
  }
  EnqueueMgmt(bssid_, FrameSubtype::kAssocRequest, body.Serialize());
  mgmt_timeout_.Cancel();
  mgmt_timeout_ = sim_->Schedule(kMgmtResponseTimeout, [this] { OnMgmtTimeout(); });
}

void WifiMac::OnMgmtTimeout() {
  switch (state_) {
    case StaState::kAuthenticating:
      SendAuthRequest();
      break;
    case StaState::kAssociating:
      SendAssocRequest();
      break;
    default:
      break;
  }
}

void WifiMac::BecomeAssociated(const MacAddress& bssid, uint8_t channel) {
  (void)channel;
  mgmt_timeout_.Cancel();
  state_ = StaState::kAssociated;
  if (previous_bssid_ != MacAddress() && previous_bssid_ != bssid) {
    ++counters_.handoffs;
  }
  previous_bssid_ = bssid;
  bssid_ = bssid;
  last_beacon_rx_ = sim_->Now();
  watchdog_event_.Cancel();
  watchdog_event_ = sim_->Schedule(config_.beacon_interval, [this] { BeaconWatchdog(); });
  if (assoc_cb_) {
    assoc_cb_(true, bssid_);
  }
  MaybeRequestAccess();
  if (config_.power_save) {
    EnterPowerSave();
  }
}

void WifiMac::LoseAssociation() {
  state_ = StaState::kIdle;
  watchdog_event_.Cancel();
  if (assoc_cb_) {
    assoc_cb_(false, bssid_);
  }
  StartScan();
}

void WifiMac::BeaconWatchdog() {
  if (state_ != StaState::kAssociated) {
    return;
  }
  // A power-saving station intentionally skips listen_interval - 1 beacons
  // per cycle; scale the loss budget accordingly.
  const int64_t listen =
      config_.power_save ? std::max<int64_t>(config_.listen_interval, 1) : 1;
  const Time budget =
      config_.beacon_interval * (static_cast<int64_t>(config_.beacon_loss_limit) * listen);
  const Time silence = sim_->Now() - last_beacon_rx_;
  if (silence > budget) {
    LoseAssociation();
    return;
  }
  watchdog_event_ = sim_->Schedule(config_.beacon_interval * listen, [this] { BeaconWatchdog(); });
}

// --- Management frame reception ------------------------------------------------

void WifiMac::HandleManagement(const MacHeader& header, Packet packet, const RxInfo& info) {
  const bool for_me = header.addr1 == config_.address;
  const bool group = header.addr1.IsGroup();
  if (!for_me && !group) {
    return;
  }
  if (for_me) {
    SendAck(header.addr2, info.mode);
    if (IsDuplicate(header)) {
      ++counters_.rx_duplicates;
      return;
    }
  }

  switch (header.subtype) {
    case FrameSubtype::kBeacon: {
      auto body = BeaconBody::Deserialize(packet.bytes());
      if (!body.has_value() || config_.role != MacRole::kSta) {
        return;
      }
      ++counters_.beacons_received;
      if (state_ == StaState::kScanning && body->ssid == config_.ssid) {
        // addr3 is the BSSID in beacons; record the candidate.
        scan_results_.push_back(ScanResult{header.addr3, body->channel, info.rssi_dbm});
      } else if (state_ == StaState::kAssociated && header.addr3 == bssid_) {
        last_beacon_rx_ = sim_->Now();
        if (ps_cycle_active_) {
          HandleBeaconInPowerSave(*body);
        }
      }
      return;
    }
    case FrameSubtype::kAuthentication: {
      auto body = AuthBody::Deserialize(packet.bytes());
      if (!body.has_value()) {
        return;
      }
      if (config_.role == MacRole::kAp && body->sequence == 1) {
        AuthBody reply;
        reply.sequence = 2;
        reply.status = 0;
        EnqueueMgmt(header.addr2, FrameSubtype::kAuthentication, reply.Serialize());
      } else if (config_.role == MacRole::kSta && state_ == StaState::kAuthenticating &&
                 body->sequence == 2 && body->status == 0 && header.addr2 == bssid_) {
        mgmt_timeout_.Cancel();
        state_ = StaState::kAssociating;
        mgmt_attempts_ = 0;
        SendAssocRequest();
      }
      return;
    }
    case FrameSubtype::kAssocRequest: {
      if (config_.role != MacRole::kAp) {
        return;
      }
      auto body = AssocRequestBody::Deserialize(packet.bytes());
      if (!body.has_value() || body->ssid != config_.ssid) {
        return;
      }
      StaInfo info;
      info.aid = next_aid_;
      info.erp = body->IsErp();
      auto [it, inserted] = associated_stas_.try_emplace(header.addr2, std::move(info));
      if (inserted) {
        ++next_aid_;
      }
      AssocResponseBody reply;
      reply.status = 0;
      reply.aid = it->second.aid;
      EnqueueMgmt(header.addr2, FrameSubtype::kAssocResponse, reply.Serialize());
      return;
    }
    case FrameSubtype::kAssocResponse: {
      if (config_.role != MacRole::kSta || state_ != StaState::kAssociating) {
        return;
      }
      auto body = AssocResponseBody::Deserialize(packet.bytes());
      if (!body.has_value() || body->status != 0 || header.addr2 != bssid_) {
        return;
      }
      aid_ = body->aid;
      BecomeAssociated(bssid_, phy_->channel_number());
      return;
    }
    case FrameSubtype::kDeauthentication:
    case FrameSubtype::kDisassociation: {
      if (config_.role == MacRole::kSta && state_ == StaState::kAssociated &&
          header.addr2 == bssid_) {
        LoseAssociation();
      } else if (config_.role == MacRole::kAp) {
        associated_stas_.erase(header.addr2);
      }
      return;
    }
    default:
      return;
  }
}

}  // namespace wlansim
