#include "mac/wifi_mac.h"

#include <algorithm>
#include <cassert>

#include "core/logging.h"

namespace wlansim {
namespace {

// Extra slack on response timeouts beyond the nominal SIFS + response time,
// covering propagation and the receiver's slot-boundary decision.
Time ResponseSlack(const ChannelAccessManager::Params& p) {
  return p.slot * 2 + Time::Micros(1);
}

uint16_t DurationMicrosCeil(Time t) {
  const int64_t us = (t.picos() + 999'999) / 1'000'000;
  return static_cast<uint16_t>(std::min<int64_t>(us, 0x7FFF));
}

}  // namespace

WifiMac::WifiMac(Simulator* sim, WifiPhy* phy, Config config, Rng rng)
    : sim_(sim), phy_(phy), config_(std::move(config)), rng_(rng) {
  const PhyTiming timing =
      TimingFor(phy->config().standard, config_.cts_to_self_protection);
  const Time ack_at_base = AckDuration(BaseModeFor(phy->config().standard));

  base_params_.slot = timing.slot;
  base_params_.sifs = timing.sifs;
  base_params_.difs = timing.Difs();
  base_params_.eifs = timing.Eifs(ack_at_base);
  base_params_.cw_min = timing.cw_min;
  base_params_.cw_max = timing.cw_max;

  auto make_ac = [&](const char* name, Time aifs, uint32_t cw_min, uint32_t cw_max) {
    ChannelAccessManager::Params p = base_params_;
    p.difs = aifs;
    p.eifs = base_params_.sifs + ack_at_base + aifs;
    p.cw_min = cw_min;
    p.cw_max = cw_max;
    acs_.emplace_back(config_.queue_limit,
                      std::make_unique<ChannelAccessManager>(sim, p, rng_.Fork(name)), cw_min,
                      cw_max);
    const size_t index = acs_.size() - 1;
    acs_.back().access->SetAccessGrantedCallback([this, index] { OnAccessGranted(index); });
  };

  if (config_.qos_enabled) {
    // Index order matches AccessCategory values: BK, BE, VI, VO.
    for (size_t i = 0; i < kAccessCategoryCount; ++i) {
      const auto ac = static_cast<AccessCategory>(i);
      const EdcaParams edca = DefaultEdcaParams(ac, timing.cw_min, timing.cw_max);
      const Time aifs = timing.sifs + timing.slot * static_cast<int64_t>(edca.aifsn);
      make_ac(ToString(ac).c_str(), aifs, edca.cw_min, edca.cw_max);
    }
  } else {
    make_ac("dcf", base_params_.difs, timing.cw_min, timing.cw_max);
  }

  phy_->SetListener(this);
  phy_->SetReceiveCallback([this](Packet packet, const RxInfo& info) {
    OnPhyReceive(std::move(packet), info);
  });
}

// --- PhyListener fan-out -------------------------------------------------------

void WifiMac::NotifyRxStart(Time duration) {
  for (auto& ac : acs_) {
    ac.access->NotifyRxStart(duration);
  }
}
void WifiMac::NotifyRxEnd(bool success) {
  for (auto& ac : acs_) {
    ac.access->NotifyRxEnd(success);
  }
}
void WifiMac::NotifyTxStart(Time duration) {
  for (auto& ac : acs_) {
    ac.access->NotifyTxStart(duration);
  }
}
void WifiMac::NotifyCcaBusyStart(Time duration) {
  for (auto& ac : acs_) {
    ac.access->NotifyCcaBusyStart(duration);
  }
}

void WifiMac::UpdateNavAll(Time until) {
  for (auto& ac : acs_) {
    ac.access->UpdateNav(until);
  }
}

Time WifiMac::NavEnd() const {
  return acs_.front().access->nav_end();
}

// --- Modes / crypto helpers ----------------------------------------------------

const WifiMode& WifiMac::MgmtMode() const {
  if (phy_->config().standard == PhyStandard::k80211g) {
    return BaseModeFor(PhyStandard::k80211b);
  }
  return BaseMode();
}

const WifiMode& WifiMac::ProtectionMode() const {
  // CTS-to-self goes out at a rate every legacy (non-ERP) station decodes.
  static const WifiMode& dsss1 = BaseModeFor(PhyStandard::k80211b);
  return dsss1;
}

LinkCipher* WifiMac::CipherFor(const MacAddress& peer) {
  if (config_.cipher == CipherSuite::kOpen) {
    return nullptr;
  }
  auto it = ciphers_.find(peer);
  if (it == ciphers_.end()) {
    it = ciphers_.emplace(peer, CreateCipher(config_.cipher, config_.cipher_key)).first;
  }
  return it->second.get();
}

// --- Queueing --------------------------------------------------------------------

size_t WifiMac::AcIndexFor(uint8_t priority) const {
  if (!config_.qos_enabled) {
    return 0;
  }
  return static_cast<size_t>(AcForPriority(priority));
}

size_t WifiMac::MgmtAcIndex() const {
  // Management frames ride the highest-priority queue under EDCA.
  return config_.qos_enabled ? static_cast<size_t>(AccessCategory::kVoice) : 0;
}

bool WifiMac::Enqueue(Packet msdu, MacAddress dest, uint8_t priority) {
  MacQueue::Item item;
  msdu.meta().priority = priority;
  item.msdu = std::move(msdu);
  item.dest = dest;
  item.src = config_.address;
  item.priority = priority;
  if (!acs_[AcIndexFor(priority)].queue.Enqueue(std::move(item))) {
    return false;
  }
  MaybeRequestAccess();
  return true;
}

size_t WifiMac::QueueSize() const {
  size_t total = 0;
  for (const auto& ac : acs_) {
    total += ac.queue.size();
  }
  return total;
}

size_t WifiMac::QueueSizeForPriority(uint8_t priority) const {
  return acs_[AcIndexFor(priority)].queue.size();
}

uint16_t WifiMac::NextSequence(const MacAddress& dest) {
  uint16_t& counter = sequence_counters_[dest];
  counter = static_cast<uint16_t>((counter + 1) & 0x0FFF);
  return counter;
}

void WifiMac::MaybeRequestAccess() {
  if (phy_->IsAsleep() && QueueSize() > 0) {
    PsWake();
  }
  for (auto& ac : acs_) {
    if (ac.queue.IsEmpty() || ac.access->IsAccessRequested()) {
      continue;
    }
    const MacQueue::Item* next = ac.queue.Peek();
    if (config_.role == MacRole::kSta && !next->is_management &&
        state_ != StaState::kAssociated) {
      continue;  // hold data until associated
    }
    if (state_ == StaState::kScanning && !next->is_management) {
      continue;
    }
    ac.access->RequestAccess();
  }
}

void WifiMac::OnAccessGranted(size_t ac_index) {
  if (tx_.has_value()) {
    if (tx_->ac_index == ac_index) {
      // Retry of the in-flight exchange.
      StartFrameExchange();
      return;
    }
    // EDCA internal collision: another AC owns the transmitter. The loser
    // behaves exactly as after an external collision — double its CW and
    // contend again.
    ++counters_.internal_collisions;
    AcState& loser = acs_[ac_index];
    if (!loser.queue.IsEmpty()) {
      const uint32_t doubled =
          std::min(2 * loser.access->last_backoff_slots() + 1, loser.cw_max);
      loser.access->RequestAccess(std::max(doubled, loser.cw_min));
    }
    return;
  }
  auto item = acs_[ac_index].queue.Dequeue();
  // AP: frames for dozing stations are diverted into their PS buffer and
  // announced via the next beacon's TIM instead of being transmitted.
  while (item.has_value() && config_.role == MacRole::kAp && !item->is_management &&
         !item->ps_release && StaIsDozing(item->dest)) {
    ApBufferForDozing(std::move(*item));
    item = acs_[ac_index].queue.Dequeue();
  }
  if (!item.has_value()) {
    return;
  }

  TxContext tx;
  tx.item = std::move(*item);
  tx.ac_index = ac_index;
  tx.cw = acs_[ac_index].cw_min;
  tx.sequence = NextSequence(tx.item.dest);

  // Fragmentation plan (data only; management frames are small).
  const size_t msdu_size = tx.item.msdu.size();
  size_t cipher_overhead = 0;
  if (!tx.item.is_management && config_.cipher != CipherSuite::kOpen) {
    cipher_overhead = CipherTotalOverheadBytes(config_.cipher);
  }
  const size_t per_fragment_budget =
      config_.frag_threshold > kDataHeaderSize + kFcsSize + cipher_overhead
          ? config_.frag_threshold - kDataHeaderSize - kFcsSize - cipher_overhead
          : 256;
  if (!tx.item.is_management && msdu_size > per_fragment_budget) {
    size_t offset = 0;
    while (offset < msdu_size) {
      const size_t len = std::min(per_fragment_budget, msdu_size - offset);
      tx.fragments.emplace_back(offset, len);
      offset += len;
    }
  } else {
    tx.fragments.emplace_back(0, msdu_size);
  }

  tx_ = std::move(tx);
  StartFrameExchange();
}

void WifiMac::StartFrameExchange() {
  assert(tx_.has_value());
  const auto [offset, length] = tx_->fragments[tx_->current_fragment];
  (void)offset;

  // Select the data mode now so RTS decisions and durations are consistent.
  const bool broadcast = tx_->item.dest.IsGroup();
  if (tx_->item.is_management || broadcast) {
    tx_->data_mode = MgmtMode();
  } else if (rate_ != nullptr) {
    tx_->data_mode = rate_->SelectMode(tx_->item.dest, length, tx_->retries);
  } else {
    tx_->data_mode = BaseMode();
  }
  // An AP must not address a legacy (non-ERP) station with OFDM: clamp to
  // the fastest DSSS rate its radio can demodulate.
  if (config_.role == MacRole::kAp && tx_->data_mode.IsOfdm()) {
    auto it = associated_stas_.find(tx_->item.dest);
    if (it != associated_stas_.end() && !it->second.erp) {
      tx_->data_mode = ModesFor(PhyStandard::k80211b).back();
    }
  }

  size_t cipher_overhead = 0;
  if (!tx_->item.is_management && config_.cipher != CipherSuite::kOpen) {
    cipher_overhead = CipherTotalOverheadBytes(config_.cipher);
  }
  const size_t mpdu_size = kDataHeaderSize + length + cipher_overhead + kFcsSize;

  if (!broadcast && !tx_->item.is_management && mpdu_size > config_.rts_threshold) {
    SendRts();
  } else if (config_.cts_to_self_protection && tx_->data_mode.IsOfdm()) {
    SendCtsToSelf();
  } else {
    SendDataFragment();
  }
}

void WifiMac::SendRts() {
  assert(tx_.has_value());
  const auto [offset, length] = tx_->fragments[tx_->current_fragment];
  (void)offset;
  size_t cipher_overhead =
      config_.cipher != CipherSuite::kOpen ? CipherTotalOverheadBytes(config_.cipher) : 0;
  const size_t mpdu_size = kDataHeaderSize + length + cipher_overhead + kFcsSize;

  const WifiMode& ctl_mode = ControlResponseMode(tx_->data_mode);
  const bool sp = phy_->config().short_preamble;
  const Time data_dur = FrameDuration(tx_->data_mode, mpdu_size, sp);
  const Time ack_dur = AckDuration(ctl_mode, sp);
  const Time cts_dur = CtsDuration(ctl_mode, sp);

  MacHeader rts;
  rts.type = FrameType::kControl;
  rts.subtype = FrameSubtype::kRts;
  rts.addr1 = (config_.role == MacRole::kSta) ? bssid_ : tx_->item.dest;
  rts.addr2 = config_.address;
  rts.duration_us = DurationMicrosCeil(3 * Sifs() + cts_dur + data_dur + ack_dur);

  Packet frame = BuildMpdu(rts, {});
  ++counters_.tx_rts;
  tx_->awaiting_cts = true;
  tx_->awaiting_ack = false;

  const Time rts_dur = RtsDuration(ctl_mode, sp);
  const Time timeout = rts_dur + Sifs() + cts_dur + ResponseSlack(base_params_);
  response_timeout_.Cancel();
  response_timeout_ = sim_->Schedule(timeout, [this] { OnCtsTimeout(); });
  phy_->StartTx(std::move(frame), ctl_mode);
}

void WifiMac::SendCtsToSelf() {
  assert(tx_.has_value());
  const auto [offset, length] = tx_->fragments[tx_->current_fragment];
  (void)offset;
  size_t cipher_overhead =
      config_.cipher != CipherSuite::kOpen && !tx_->item.is_management
          ? CipherTotalOverheadBytes(config_.cipher)
          : 0;
  const size_t mpdu_size = kDataHeaderSize + length + cipher_overhead + kFcsSize;
  const bool sp = phy_->config().short_preamble;
  const Time data_dur = FrameDuration(tx_->data_mode, mpdu_size, sp);
  const Time ack_dur = AckDuration(ControlResponseMode(tx_->data_mode), sp);

  MacHeader cts;
  cts.type = FrameType::kControl;
  cts.subtype = FrameSubtype::kCts;
  cts.addr1 = config_.address;  // to self
  cts.duration_us = DurationMicrosCeil(2 * Sifs() + data_dur + ack_dur);

  Packet frame = BuildMpdu(cts, {});
  ++counters_.tx_cts;
  const Time cts_dur = CtsDuration(ProtectionMode(), sp);
  // Data follows one SIFS after the protection frame.
  sim_->Schedule(cts_dur + Sifs(), [this] {
    if (tx_.has_value()) {
      SendDataFragment();
    }
  });
  phy_->StartTx(std::move(frame), ProtectionMode());
}

void WifiMac::SendDataFragment() {
  assert(tx_.has_value());
  const auto [offset, length] = tx_->fragments[tx_->current_fragment];
  const bool broadcast = tx_->item.dest.IsGroup();
  const bool last_fragment = tx_->current_fragment + 1 == tx_->fragments.size();
  const bool sp = phy_->config().short_preamble;

  MacHeader h;
  if (tx_->item.is_management) {
    h.type = FrameType::kManagement;
    h.subtype = static_cast<FrameSubtype>(tx_->item.mgmt_subtype);
    h.addr1 = tx_->item.dest;
    h.addr2 = config_.address;
    h.addr3 = (config_.role == MacRole::kSta) ? bssid_ : config_.address;
  } else {
    h.type = FrameType::kData;
    h.subtype = tx_->item.is_null ? FrameSubtype::kNullData : FrameSubtype::kData;
    h.power_mgmt = tx_->item.pm_bit;
    h.more_data = tx_->item.more_data;
    switch (config_.role) {
      case MacRole::kAdhoc:
        h.addr1 = tx_->item.dest;
        h.addr2 = config_.address;
        h.addr3 = MacAddress();  // IBSS id (zero in this simulator)
        break;
      case MacRole::kSta:
        h.to_ds = true;
        h.addr1 = bssid_;
        h.addr2 = config_.address;
        h.addr3 = tx_->item.dest;
        break;
      case MacRole::kAp:
        h.from_ds = true;
        h.addr1 = tx_->item.dest;
        h.addr2 = config_.address;
        h.addr3 = tx_->item.src;
        break;
    }
  }
  h.sequence = tx_->sequence;
  h.fragment = static_cast<uint8_t>(tx_->current_fragment);
  h.more_fragments = !last_fragment;
  h.retry = tx_->retries > 0;

  // Body: the fragment's slice, optionally encrypted. Reserving the cipher
  // re-framing overhead up front makes the suite's header/trailer growth
  // realloc-free (Protect's own reserve becomes a no-op).
  auto msdu_bytes = tx_->item.msdu.bytes();
  std::vector<uint8_t> body;
  body.reserve(length + (tx_->item.is_management || config_.cipher == CipherSuite::kOpen
                             ? 0
                             : CipherTotalOverheadBytes(config_.cipher)));
  body.assign(msdu_bytes.begin() + static_cast<ptrdiff_t>(offset),
              msdu_bytes.begin() + static_cast<ptrdiff_t>(offset + length));
  if (!tx_->item.is_management) {
    if (LinkCipher* cipher = CipherFor(tx_->item.dest); cipher != nullptr) {
      FrameCryptoContext ctx;
      ctx.ta = config_.address;
      ctx.da = tx_->item.dest;
      ctx.sa = tx_->item.src;
      ctx.priority = tx_->item.priority;
      cipher->Protect(ctx, body);
      h.protected_frame = true;
    }
  }

  const WifiMode& ctl_mode = ControlResponseMode(tx_->data_mode);
  const Time ack_dur = AckDuration(ctl_mode, sp);
  if (broadcast || (tx_->item.is_management &&
                    static_cast<FrameSubtype>(tx_->item.mgmt_subtype) == FrameSubtype::kBeacon)) {
    h.duration_us = 0;
  } else if (last_fragment) {
    h.duration_us = DurationMicrosCeil(Sifs() + ack_dur);
  } else {
    const auto [next_off, next_len] = tx_->fragments[tx_->current_fragment + 1];
    (void)next_off;
    size_t cipher_overhead =
        config_.cipher != CipherSuite::kOpen ? CipherTotalOverheadBytes(config_.cipher) : 0;
    const Time next_dur =
        FrameDuration(tx_->data_mode, kDataHeaderSize + next_len + cipher_overhead + kFcsSize, sp);
    h.duration_us = DurationMicrosCeil(3 * Sifs() + 2 * ack_dur + next_dur);
  }

  PacketMeta meta = tx_->item.msdu.meta();
  meta.retries = tx_->retries;
  Packet frame = BuildMpdu(h, body, meta);

  ++counters_.tx_data_attempts;
  if (tx_->retries > 0) {
    ++counters_.retries;
  }
  if (tx_->item.is_management &&
      static_cast<FrameSubtype>(tx_->item.mgmt_subtype) == FrameSubtype::kBeacon) {
    ++counters_.tx_beacons;
  }

  if (broadcast) {
    tx_->awaiting_ack = false;
    const Time dur = FrameDuration(tx_->data_mode, frame.size(), sp);
    sim_->Schedule(dur, [this] {
      if (tx_.has_value()) {
        SequenceComplete(true);
      }
    });
  } else {
    tx_->awaiting_ack = true;
    tx_->awaiting_cts = false;
    const Time data_dur = FrameDuration(tx_->data_mode, frame.size(), sp);
    const Time timeout = data_dur + Sifs() + ack_dur + ResponseSlack(base_params_);
    response_timeout_.Cancel();
    response_timeout_ = sim_->Schedule(timeout, [this] { OnAckTimeout(); });
  }
  phy_->StartTx(std::move(frame), tx_->data_mode);
}

void WifiMac::OnCtsTimeout() {
  if (!tx_.has_value() || !tx_->awaiting_cts) {
    return;
  }
  ++counters_.cts_timeouts;
  tx_->awaiting_cts = false;
  TxAttemptFailed();
}

void WifiMac::OnAckTimeout() {
  if (!tx_.has_value() || !tx_->awaiting_ack) {
    return;
  }
  ++counters_.ack_timeouts;
  tx_->awaiting_ack = false;
  if (rate_ != nullptr && !tx_->item.is_management) {
    rate_->OnTxResult(tx_->item.dest, tx_->data_mode, false, sim_->Now());
  }
  TxAttemptFailed();
}

void WifiMac::TxAttemptFailed() {
  assert(tx_.has_value());
  ++tx_->retries;
  if (tx_->retries > config_.retry_limit) {
    if (rate_ != nullptr && !tx_->item.is_management) {
      rate_->OnFinalFailure(tx_->item.dest);
    }
    ++counters_.tx_data_dropped;
    SequenceComplete(false);
    return;
  }
  AcState& ac = acs_[tx_->ac_index];
  tx_->cw = std::min(2 * tx_->cw + 1, ac.cw_max);
  ac.access->RequestAccess(tx_->cw);
}

void WifiMac::FragmentAcked() {
  assert(tx_.has_value());
  if (rate_ != nullptr && !tx_->item.is_management) {
    rate_->OnTxResult(tx_->item.dest, tx_->data_mode, true, sim_->Now());
  }
  tx_->retries = 0;
  ++tx_->current_fragment;
  if (tx_->current_fragment < tx_->fragments.size()) {
    // Fragment burst: the next fragment follows one SIFS after the ACK.
    sim_->Schedule(Sifs(), [this] {
      if (tx_.has_value()) {
        SendDataFragment();
      }
    });
    return;
  }
  SequenceComplete(true);
}

void WifiMac::SequenceComplete(bool success) {
  response_timeout_.Cancel();
  tx_.reset();
  if (success) {
    ++counters_.tx_data_ok;
  }
  if (tx_done_) {
    tx_done_();
  }
  MaybeRequestAccess();
  MaybeResumeSleep();
}

// --- Reception ---------------------------------------------------------------

void WifiMac::OnPhyReceive(Packet packet, const RxInfo& info) {
  if (!info.success) {
    return;  // PHY-corrupt frame; EIFS handled by the access managers
  }
  auto header_opt = ParseMpdu(packet);
  if (!header_opt.has_value()) {
    return;
  }
  const MacHeader& header = *header_opt;

  // Virtual carrier sense: frames not addressed to us set the NAV.
  if (header.addr1 != config_.address && header.duration_us > 0) {
    UpdateNavAll(sim_->Now() + Time::Micros(static_cast<int64_t>(header.duration_us)));
  }

  switch (header.type) {
    case FrameType::kControl:
      if (header.subtype == FrameSubtype::kRts && header.addr1 == config_.address) {
        HandleRts(header, info);
      } else if (header.subtype == FrameSubtype::kPsPoll && header.addr1 == config_.address) {
        HandlePsPoll(header);
      } else if (header.subtype == FrameSubtype::kCts && header.addr1 == config_.address) {
        HandleCts(header);
      } else if (header.subtype == FrameSubtype::kAck && header.addr1 == config_.address) {
        HandleAck(header);
      }
      return;
    case FrameType::kData:
      HandleData(header, std::move(packet), info);
      return;
    case FrameType::kManagement:
      HandleManagement(header, std::move(packet), info);
      return;
  }
}

void WifiMac::HandleRts(const MacHeader& header, const RxInfo& info) {
  // Respond with CTS only if our NAV is idle (protects ongoing exchanges).
  if (NavEnd() > sim_->Now()) {
    return;
  }
  const WifiMode cts_mode = ControlResponseMode(info.mode);
  const Time cts_dur = CtsDuration(cts_mode, phy_->config().short_preamble);
  const uint16_t remaining = header.duration_us;
  const auto cts_and_sifs = DurationMicrosCeil(Sifs() + cts_dur);
  const uint16_t duration =
      remaining > cts_and_sifs ? static_cast<uint16_t>(remaining - cts_and_sifs) : 0;
  const MacAddress to = header.addr2;
  sim_->Schedule(Sifs(), [this, to, duration, cts_mode] { SendCts(to, duration, cts_mode); });
}

void WifiMac::SendCts(const MacAddress& to, uint16_t duration_us, const WifiMode& mode) {
  MacHeader cts;
  cts.type = FrameType::kControl;
  cts.subtype = FrameSubtype::kCts;
  cts.addr1 = to;
  cts.duration_us = duration_us;
  ++counters_.tx_cts;
  phy_->StartTx(BuildMpdu(cts, {}), mode);
}

void WifiMac::HandleCts(const MacHeader&) {
  if (!tx_.has_value() || !tx_->awaiting_cts) {
    return;
  }
  tx_->awaiting_cts = false;
  response_timeout_.Cancel();
  sim_->Schedule(Sifs(), [this] {
    if (tx_.has_value()) {
      SendDataFragment();
    }
  });
}

void WifiMac::HandleAck(const MacHeader&) {
  if (!tx_.has_value() || !tx_->awaiting_ack) {
    return;
  }
  tx_->awaiting_ack = false;
  response_timeout_.Cancel();
  FragmentAcked();
}

void WifiMac::SendAck(const MacAddress& to, const WifiMode& eliciting_mode) {
  MacHeader ack;
  ack.type = FrameType::kControl;
  ack.subtype = FrameSubtype::kAck;
  ack.addr1 = to;
  ack.duration_us = 0;
  ++counters_.tx_acks;
  phy_->StartTx(BuildMpdu(ack, {}), ControlResponseMode(eliciting_mode));
}

bool WifiMac::IsDuplicate(const MacHeader& header) {
  const uint16_t key = static_cast<uint16_t>((header.sequence << 4) | header.fragment);
  auto it = rx_dedup_.find(header.addr2);
  if (it != rx_dedup_.end() && header.retry && it->second == key) {
    return true;
  }
  rx_dedup_[header.addr2] = key;
  return false;
}

void WifiMac::HandleData(const MacHeader& header, Packet packet, const RxInfo& info) {
  const bool for_me = header.addr1 == config_.address;
  const bool group = header.addr1.IsGroup();
  if (!for_me && !group) {
    return;  // NAV already updated
  }
  if (for_me) {
    // ACK after SIFS, even for duplicates (the ACK may have been lost).
    SendAck(header.addr2, info.mode);
  }
  if (for_me && IsDuplicate(header)) {
    ++counters_.rx_duplicates;
    return;
  }
  if (config_.role == MacRole::kAp) {
    // Track the transmitter's power-management announcement.
    auto it = associated_stas_.find(header.addr2);
    if (it != associated_stas_.end()) {
      it->second.dozing = header.power_mgmt;
    }
  }
  if (header.subtype == FrameSubtype::kNullData) {
    return;  // signalling only
  }
  if (config_.role == MacRole::kSta && ps_cycle_active_ && for_me) {
    if (header.more_data) {
      ps_awaiting_data_ = true;
      sim_->Schedule(Time::Micros(1), [this] { SendPsPoll(); });
    } else {
      ps_awaiting_data_ = false;
      MaybeResumeSleep();
    }
  }

  // Work out (SA, DA) by DS bits.
  MacAddress src;
  MacAddress dest;
  if (header.to_ds && !header.from_ds) {  // STA → AP
    src = header.addr2;
    dest = header.addr3;
  } else if (!header.to_ds && header.from_ds) {  // AP → STA
    src = header.addr3;
    dest = header.addr1;
  } else {  // IBSS
    src = header.addr2;
    dest = header.addr1;
  }

  // Decrypt the MPDU body.
  std::vector<uint8_t> body(packet.bytes().begin(), packet.bytes().end());
  if (header.protected_frame) {
    LinkCipher* cipher = CipherFor(header.addr2);
    FrameCryptoContext ctx;
    ctx.ta = header.addr2;
    ctx.da = dest;
    ctx.sa = src;
    ctx.priority = packet.meta().priority;
    if (cipher == nullptr || !cipher->Unprotect(ctx, body)) {
      ++counters_.rx_decrypt_failures;
      return;
    }
  }

  // Defragmentation.
  if (header.fragment == 0 && !header.more_fragments) {
    Packet msdu{std::span<const uint8_t>(body)};
    msdu.meta() = packet.meta();
    ++counters_.rx_data;
    DeliverUp(std::move(msdu), src, dest);
    return;
  }
  Reassembly& r = reassembly_[header.addr2];
  if (header.fragment == 0) {
    r.sequence = header.sequence;
    r.next_fragment = 1;
    r.bytes = std::move(body);
    r.meta = packet.meta();
    r.src = src;
    r.dest = dest;
    return;
  }
  if (r.sequence != header.sequence || r.next_fragment != header.fragment) {
    reassembly_.erase(header.addr2);  // out-of-order: drop the partial MSDU
    return;
  }
  r.bytes.insert(r.bytes.end(), body.begin(), body.end());
  ++r.next_fragment;
  if (!header.more_fragments) {
    Packet msdu{std::span<const uint8_t>(r.bytes)};
    msdu.meta() = r.meta;
    ++counters_.rx_data;
    DeliverUp(std::move(msdu), r.src, r.dest);
    reassembly_.erase(header.addr2);
  }
}

void WifiMac::DeliverUp(Packet msdu, const MacAddress& src, const MacAddress& dest) {
  if (config_.role == MacRole::kAp && dest != config_.address && !dest.IsGroup()) {
    // Bridge: relay toward an associated station.
    if (associated_stas_.contains(dest)) {
      MacQueue::Item item;
      const uint8_t priority = msdu.meta().priority;
      item.msdu = std::move(msdu);
      item.dest = dest;
      item.src = src;
      item.priority = priority;
      if (acs_[AcIndexFor(priority)].queue.Enqueue(std::move(item))) {
        MaybeRequestAccess();
      }
    }
    return;
  }
  if (forward_up_) {
    forward_up_(std::move(msdu), src, dest);
  }
}

}  // namespace wlansim
