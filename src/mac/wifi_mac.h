// IEEE 802.11 DCF/EDCA MAC: transmit sequencing (RTS/CTS/DATA/ACK with SIFS
// spacing, retries with CW doubling, fragmentation bursts), reception
// (duplicate detection, defragmentation, ACK/CTS responses, NAV updates),
// link security encapsulation, and the infrastructure-mode management plane
// (beaconing, passive scanning, authentication, association, roaming).
//
// One WifiMac instance drives one WifiPhy. The role selects behaviour:
//   kAdhoc — IBSS peer-to-peer: data goes directly to the destination.
//   kSta   — infrastructure station: data relays through the associated AP.
//   kAp    — access point: beacons, accepts associations, bridges frames
//            between its stations and delivers local traffic up.
//
// With `qos_enabled`, four EDCA access categories contend independently
// (802.11e): each AC has its own queue, AIFS and contention window; internal
// collisions resolve in favour of the higher AC, the loser doubling its CW
// exactly as for an on-air collision.

#ifndef WLANSIM_MAC_WIFI_MAC_H_
#define WLANSIM_MAC_WIFI_MAC_H_

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/mac_address.h"
#include "core/packet.h"
#include "core/random.h"
#include "core/simulator.h"
#include "crypto/cipher_suite.h"
#include "mac/channel_access.h"
#include "mac/edca.h"
#include "mac/frames.h"
#include "mac/mac_queue.h"
#include "phy/wifi_phy.h"
#include "rate/rate_controller.h"

namespace wlansim {

enum class MacRole : uint8_t { kAdhoc, kSta, kAp };

class WifiMac final : public PhyListener {
 public:
  struct Config {
    MacRole role = MacRole::kAdhoc;
    MacAddress address;
    std::string ssid = "wlansim";
    // MPDUs strictly larger than this are preceded by RTS/CTS (bytes;
    // 2347 disables RTS for every legal frame).
    uint32_t rts_threshold = 2347;
    // MSDUs whose MPDU would exceed this are fragmented (bytes; 2346
    // disables fragmentation).
    uint32_t frag_threshold = 2346;
    uint8_t retry_limit = 7;
    Time beacon_interval = Time::Micros(static_cast<int64_t>(100) * 1024);
    // ERP protection: transmit CTS-to-self at a DSSS rate before each OFDM
    // data frame (b/g coexistence).
    bool cts_to_self_protection = false;
    // 802.11e EDCA: four prioritized access categories instead of one DCF.
    bool qos_enabled = false;
    // 802.11 power-save mode (STA only): doze between beacons, poll the AP
    // for buffered traffic when the TIM indicates any.
    bool power_save = false;
    // Wake for every k-th beacon while in power save.
    uint8_t listen_interval = 1;
    CipherSuite cipher = CipherSuite::kOpen;
    std::vector<uint8_t> cipher_key;
    // STA scanning/roaming.
    std::vector<uint8_t> scan_channels = {1};
    Time scan_dwell = Time::Millis(60);
    uint8_t beacon_loss_limit = 4;
    size_t queue_limit = 256;
  };

  WifiMac(Simulator* sim, WifiPhy* phy, Config config, Rng rng);

  // Wiring.
  void SetRateController(RateController* rate) { rate_ = rate; }
  // Delivered MSDUs: (payload, source, destination).
  using ForwardUpCallback = std::function<void(Packet, MacAddress, MacAddress)>;
  void SetForwardUpCallback(ForwardUpCallback cb) { forward_up_ = std::move(cb); }
  // Association events: (associated, bssid).
  using AssociationCallback = std::function<void(bool, MacAddress)>;
  void SetAssociationCallback(AssociationCallback cb) { assoc_cb_ = std::move(cb); }
  // Fires whenever a transmit sequence finishes (ok or dropped) — used by
  // saturated traffic sources to keep the queue topped up.
  using TxDoneCallback = std::function<void()>;
  void SetTxDoneCallback(TxDoneCallback cb) { tx_done_ = std::move(cb); }

  // Begins operation: AP starts beaconing, STA starts scanning.
  void Start();

  // Upper-layer transmit. `dest` is the final destination (DA); `priority`
  // is the 802.1D user priority (0-7), mapped to an EDCA AC when QoS is on.
  // Returns false if the queue is full.
  bool Enqueue(Packet msdu, MacAddress dest, uint8_t priority = 0);

  const MacAddress& address() const { return config_.address; }
  MacRole role() const { return config_.role; }
  bool IsAssociated() const {
    return state_ == StaState::kAssociated || config_.role != MacRole::kSta;
  }
  MacAddress bssid() const { return bssid_; }
  // Total frames queued across all access categories.
  size_t QueueSize() const;
  // Frames queued in the access category serving `priority`.
  size_t QueueSizeForPriority(uint8_t priority) const;
  WifiPhy* phy() const { return phy_; }

  // PhyListener: medium-state notifications fan out to every AC's access
  // manager.
  void NotifyRxStart(Time duration) override;
  void NotifyRxEnd(bool success) override;
  void NotifyTxStart(Time duration) override;
  void NotifyCcaBusyStart(Time duration) override;

  struct Counters {
    uint64_t tx_data_attempts = 0;
    uint64_t tx_data_ok = 0;        // ACKed (or broadcast sent)
    uint64_t tx_data_dropped = 0;   // retry limit exceeded
    uint64_t tx_rts = 0;
    uint64_t tx_cts = 0;
    uint64_t tx_acks = 0;
    uint64_t tx_beacons = 0;
    uint64_t retries = 0;
    uint64_t internal_collisions = 0;  // EDCA AC-vs-AC grants
    uint64_t rx_data = 0;           // unique data MSDUs accepted
    uint64_t rx_duplicates = 0;
    uint64_t rx_decrypt_failures = 0;
    uint64_t cts_timeouts = 0;
    uint64_t ack_timeouts = 0;
    uint64_t handoffs = 0;          // reassociations to a different AP
    uint64_t beacons_received = 0;
    uint64_t ps_polls = 0;          // PS-Polls sent (STA) or served (AP)
    uint64_t ps_buffered = 0;       // frames buffered for dozing stations (AP)
  };
  const Counters& counters() const { return counters_; }

 private:
  // --- STA association state machine ---
  enum class StaState : uint8_t {
    kIdle,
    kScanning,
    kAuthenticating,
    kAssociating,
    kAssociated,
  };

  struct ScanResult {
    MacAddress bssid;
    uint8_t channel;
    double rssi_dbm;
  };

  // One EDCA access category (or the single legacy DCF entity).
  struct AcState {
    MacQueue queue;
    std::unique_ptr<ChannelAccessManager> access;
    uint32_t cw_min;
    uint32_t cw_max;

    AcState(size_t queue_limit, std::unique_ptr<ChannelAccessManager> mgr, uint32_t min,
            uint32_t max)
        : queue(queue_limit), access(std::move(mgr)), cw_min(min), cw_max(max) {}
  };

  // --- transmit sequencing ---
  struct TxContext {
    MacQueue::Item item;
    size_t ac_index = 0;
    std::vector<std::pair<size_t, size_t>> fragments;  // (offset, length) into msdu
    size_t current_fragment = 0;
    uint8_t retries = 0;
    uint32_t cw = 0;
    uint16_t sequence = 0;
    bool awaiting_cts = false;
    bool awaiting_ack = false;
    WifiMode data_mode{};
  };

  size_t AcIndexFor(uint8_t priority) const;
  size_t MgmtAcIndex() const;
  void OnAccessGranted(size_t ac_index);
  void StartFrameExchange();
  void SendRts();
  void SendCtsToSelf();
  void SendDataFragment();
  void OnCtsTimeout();
  void OnAckTimeout();
  void TxAttemptFailed();
  void FragmentAcked();
  void SequenceComplete(bool success);
  void MaybeRequestAccess();
  uint16_t NextSequence(const MacAddress& dest);

  // --- reception ---
  void OnPhyReceive(Packet packet, const RxInfo& info);
  void HandleRts(const MacHeader& header, const RxInfo& info);
  void HandleCts(const MacHeader& header);
  void HandleAck(const MacHeader& header);
  void HandleData(const MacHeader& header, Packet packet, const RxInfo& info);
  void HandleManagement(const MacHeader& header, Packet packet, const RxInfo& info);
  void SendAck(const MacAddress& to, const WifiMode& eliciting_mode);
  void SendCts(const MacAddress& to, uint16_t duration_us, const WifiMode& eliciting_mode);
  bool IsDuplicate(const MacHeader& header);
  void DeliverUp(Packet msdu, const MacAddress& src, const MacAddress& dest);
  void UpdateNavAll(Time until);
  Time NavEnd() const;

  // --- management plane ---
  void SendBeacon();
  void ScheduleBeacon();
  void StartScan();
  void ScanNextChannel();
  void FinishScan();
  void SendAuthRequest();
  void SendAssocRequest();
  void OnMgmtTimeout();
  void BeaconWatchdog();
  void BecomeAssociated(const MacAddress& bssid, uint8_t channel);
  void LoseAssociation();
  void EnqueueMgmt(const MacAddress& dest, FrameSubtype subtype, std::vector<uint8_t> body);

  // --- power save (wifi_mac_ps.cc) ---
  void EnterPowerSave();
  void PsSleep();
  void PsWake();
  void SendPsPoll();
  void MaybeResumeSleep();
  void HandlePsPoll(const MacHeader& header);
  void HandleBeaconInPowerSave(const BeaconBody& body);
  void ApBufferForDozing(MacQueue::Item item);
  bool StaIsDozing(const MacAddress& sta) const;

  // --- crypto ---
  LinkCipher* CipherFor(const MacAddress& peer);

  const WifiMode& BaseMode() const { return BaseModeFor(phy_->config().standard); }
  // Mode for management/broadcast frames. 2.4 GHz ERP (11g) devices emit
  // these at DSSS 1 Mb/s so legacy 11b stations can receive them.
  const WifiMode& MgmtMode() const;
  const WifiMode& ProtectionMode() const;
  Time Sifs() const { return base_params_.sifs; }

  Simulator* sim_;
  WifiPhy* phy_;
  Config config_;
  Rng rng_;
  ChannelAccessManager::Params base_params_;  // legacy DIFS timing (SIFS/slot source)
  std::vector<AcState> acs_;                  // 1 entry (DCF) or 4 (EDCA)
  RateController* rate_ = nullptr;
  ForwardUpCallback forward_up_;
  AssociationCallback assoc_cb_;
  TxDoneCallback tx_done_;

  std::optional<TxContext> tx_;
  // Slot/generation handle into the event slab; the cancel-and-reschedule
  // idiom below is O(1) tombstoning, and a handle whose event already ran
  // (slot recycled, generation bumped) cancels as a no-op.
  EventId response_timeout_;
  std::unordered_map<MacAddress, uint16_t> sequence_counters_;

  // Duplicate-detection cache: last (sequence<<4|fragment) per transmitter.
  std::unordered_map<MacAddress, uint16_t> rx_dedup_;
  // Defragmentation buffers per transmitter.
  struct Reassembly {
    uint16_t sequence;
    uint8_t next_fragment;
    std::vector<uint8_t> bytes;
    PacketMeta meta;
    MacAddress src;
    MacAddress dest;
  };
  std::unordered_map<MacAddress, Reassembly> reassembly_;

  std::unordered_map<MacAddress, std::unique_ptr<LinkCipher>> ciphers_;

  // STA state.
  StaState state_ = StaState::kIdle;
  MacAddress bssid_;
  MacAddress previous_bssid_;
  std::vector<ScanResult> scan_results_;
  size_t scan_index_ = 0;
  Time last_beacon_rx_;
  EventId mgmt_timeout_;
  EventId watchdog_event_;
  uint8_t mgmt_attempts_ = 0;

  // STA power-save state.
  uint16_t aid_ = 0;
  Time last_tbtt_;  // target beacon tx time from the last beacon's timestamp
  bool ps_cycle_active_ = false;   // the STA announced PM=1 to its AP
  bool ps_awaiting_data_ = false;  // polled; waiting for the buffered frame
  EventId wake_event_;

  // AP state.
  struct StaInfo {
    uint16_t aid = 0;
    bool erp = false;      // peer can decode OFDM
    bool dozing = false;   // last seen power-management bit
    std::deque<MacQueue::Item> ps_buffer;
  };
  std::unordered_map<MacAddress, StaInfo> associated_stas_;
  uint16_t next_aid_ = 1;

  Counters counters_;
};

}  // namespace wlansim

#endif  // WLANSIM_MAC_WIFI_MAC_H_
