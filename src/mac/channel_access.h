// DCF channel access: DIFS deference, slotted binary-exponential backoff
// with freezing, NAV virtual carrier sense, and EIFS after corrupted
// receptions.
//
// The manager observes the PHY through the PhyListener interface and
// maintains "the medium has been continuously idle since T". A backoff of k
// slots is granted at max(T_idle_start + AIFS, request_time) + k*slot, with
// the slot countdown frozen whenever the medium goes busy and resumed one
// AIFS after it frees (EIFS instead when the last reception was corrupt).

#ifndef WLANSIM_MAC_CHANNEL_ACCESS_H_
#define WLANSIM_MAC_CHANNEL_ACCESS_H_

#include <functional>

#include "core/random.h"
#include "core/simulator.h"
#include "phy/wifi_phy.h"

namespace wlansim {

class ChannelAccessManager final : public PhyListener {
 public:
  struct Params {
    Time slot;
    Time sifs;
    Time difs;
    Time eifs;  // SIFS + ACK@base + DIFS
    uint32_t cw_min;
    uint32_t cw_max;
  };

  ChannelAccessManager(Simulator* sim, Params params, Rng rng);

  void SetParams(const Params& params) { params_ = params; }
  const Params& params() const { return params_; }

  // Invoked exactly once per granted access; the MAC then owns the medium
  // for one frame exchange sequence.
  void SetAccessGrantedCallback(std::function<void()> cb) { granted_cb_ = std::move(cb); }

  // Requests channel access with a fresh random backoff drawn from [0, cw].
  // `cw` is the current contention window (kUseMin draws from cw_min).
  // No-op if a request is already outstanding.
  static constexpr uint32_t kUseMin = 0xFFFFFFFF;
  void RequestAccess(uint32_t cw = kUseMin);

  bool IsAccessRequested() const { return access_requested_; }

  // Draws a fresh backoff count in [0, cw]; exposed for the MAC's retry CW
  // handling and for tests.
  uint32_t DrawBackoffSlots(uint32_t cw) { return static_cast<uint32_t>(rng_.UniformInt(0, cw)); }

  // Virtual carrier sense: extends the busy period until `until` (absolute).
  void UpdateNav(Time until);
  Time nav_end() const { return nav_end_; }

  // PhyListener.
  void NotifyRxStart(Time duration) override;
  void NotifyRxEnd(bool success) override;
  void NotifyTxStart(Time duration) override;
  void NotifyCcaBusyStart(Time duration) override;

  // Diagnostics.
  uint32_t last_backoff_slots() const { return backoff_slots_drawn_; }

 private:
  // The medium (physical + virtual) is busy until this instant.
  Time BusyEnd() const;

  // Handles "the medium just went busy at `now`": freeze the countdown.
  void Freeze();

  // (Re)schedules the grant-check event after state changes.
  void Reschedule();

  void CheckAccess();

  Simulator* sim_;
  Params params_;
  Rng rng_;
  std::function<void()> granted_cb_;

  Time phy_busy_end_;           // physical carrier sense (rx/tx/cca)
  Time nav_end_;                // virtual carrier sense
  bool last_rx_failed_ = false;
  Time last_busy_end_;          // when the current/most recent busy period ends

  bool access_requested_ = false;
  uint32_t backoff_remaining_ = 0;
  uint32_t backoff_slots_drawn_ = 0;
  Time countdown_start_;        // when the current countdown segment began
  bool counting_down_ = false;
  EventId grant_event_;
};

}  // namespace wlansim

#endif  // WLANSIM_MAC_CHANNEL_ACCESS_H_
