#include "mac/edca.h"

namespace wlansim {

std::string ToString(AccessCategory ac) {
  switch (ac) {
    case AccessCategory::kBackground:
      return "AC_BK";
    case AccessCategory::kBestEffort:
      return "AC_BE";
    case AccessCategory::kVideo:
      return "AC_VI";
    case AccessCategory::kVoice:
      return "AC_VO";
  }
  return "?";
}

AccessCategory AcForPriority(uint8_t priority) {
  // 802.1D priority → AC mapping per 802.11e.
  switch (priority & 0x7) {
    case 1:
    case 2:
      return AccessCategory::kBackground;
    case 0:
    case 3:
      return AccessCategory::kBestEffort;
    case 4:
    case 5:
      return AccessCategory::kVideo;
    case 6:
    case 7:
      return AccessCategory::kVoice;
  }
  return AccessCategory::kBestEffort;
}

EdcaParams DefaultEdcaParams(AccessCategory ac, uint32_t phy_cw_min, uint32_t phy_cw_max) {
  switch (ac) {
    case AccessCategory::kBackground:
      return {7, phy_cw_min, phy_cw_max};
    case AccessCategory::kBestEffort:
      return {3, phy_cw_min, phy_cw_max};
    case AccessCategory::kVideo:
      return {2, (phy_cw_min + 1) / 2 - 1, phy_cw_min};
    case AccessCategory::kVoice:
      return {2, (phy_cw_min + 1) / 4 - 1, (phy_cw_min + 1) / 2 - 1};
  }
  return {3, phy_cw_min, phy_cw_max};
}

}  // namespace wlansim
