// IEEE 802.11 MAC frame formats (§4.2 of the standard): bit-exact
// little-endian serialization of the MAC header (frame control, duration/ID,
// addresses, sequence control), management frame bodies, and the CRC-32 FCS.
//
// Header sizes: CTS/ACK 10 B, RTS 16 B, management/data 24 B (three-address
// format; the 4-address WDS format is out of scope). Every frame carries a
// 4-byte FCS trailer.

#ifndef WLANSIM_MAC_FRAMES_H_
#define WLANSIM_MAC_FRAMES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/mac_address.h"
#include "core/packet.h"
#include "core/time.h"
#include "phy/wifi_mode.h"

namespace wlansim {

enum class FrameType : uint8_t {
  kManagement = 0,
  kControl = 1,
  kData = 2,
};

// Subtype values follow the standard's 4-bit encodings.
enum class FrameSubtype : uint8_t {
  // Management.
  kAssocRequest = 0,
  kAssocResponse = 1,
  kProbeRequest = 4,
  kProbeResponse = 5,
  kBeacon = 8,
  kDisassociation = 10,
  kAuthentication = 11,
  kDeauthentication = 12,
  // Control.
  kPsPoll = 10,
  kRts = 11,
  kCts = 12,
  kAck = 13,
  // Data.
  kData = 0,
  kNullData = 4,  // no payload; carries the power-management bit
};

struct MacHeader {
  FrameType type = FrameType::kData;
  FrameSubtype subtype = FrameSubtype::kData;
  bool to_ds = false;
  bool from_ds = false;
  bool more_fragments = false;
  bool retry = false;
  bool power_mgmt = false;
  bool more_data = false;
  bool protected_frame = false;
  bool order = false;
  uint16_t duration_us = 0;  // duration/ID field (NAV microseconds)
  MacAddress addr1;          // RA / DA
  MacAddress addr2;          // TA / SA (absent in CTS/ACK)
  MacAddress addr3;          // BSSID / DA / SA (data & management only)
  uint16_t sequence = 0;     // 12-bit sequence number
  uint8_t fragment = 0;      // 4-bit fragment number

  bool IsCtl(FrameSubtype s) const { return type == FrameType::kControl && subtype == s; }
  bool IsMgmt(FrameSubtype s) const { return type == FrameType::kManagement && subtype == s; }
  bool IsData() const { return type == FrameType::kData; }
  bool IsBeacon() const { return IsMgmt(FrameSubtype::kBeacon); }

  // Serialized header length for this frame type/subtype.
  size_t SerializedSize() const;

  void Serialize(std::vector<uint8_t>& out) const;
  static std::optional<MacHeader> Deserialize(std::span<const uint8_t> in);
};

// FCS helpers: the FCS covers header + body.
constexpr size_t kFcsSize = 4;

// Builds the on-air MPDU: header | body | FCS. The result is placed in a
// Packet (preserving `meta`).
Packet BuildMpdu(const MacHeader& header, std::span<const uint8_t> body, PacketMeta meta = {});

// Parses an MPDU: verifies the FCS, extracts the header and strips both
// (leaving the body in `packet`). Returns nullopt on malformed frames.
std::optional<MacHeader> ParseMpdu(Packet& packet);

// Total MPDU size for a given body length (for duration precomputation).
size_t MpduSize(const MacHeader& header, size_t body_bytes);

// --- Management frame bodies -------------------------------------------------

struct BeaconBody {
  uint64_t timestamp_us = 0;
  uint16_t beacon_interval_tu = 100;  // 1 TU = 1024 us
  uint16_t capability = 0x0001;       // ESS
  std::string ssid;
  uint8_t channel = 1;
  // Traffic indication map: association IDs with frames buffered at the AP
  // (serialized as element id 5; a simplified AID list instead of the
  // standard's partial-virtual-bitmap encoding).
  std::vector<uint16_t> tim_aids;

  bool TimContains(uint16_t aid) const {
    for (uint16_t a : tim_aids) {
      if (a == aid) {
        return true;
      }
    }
    return false;
  }

  std::vector<uint8_t> Serialize() const;
  static std::optional<BeaconBody> Deserialize(std::span<const uint8_t> in);
};

struct AssocRequestBody {
  // Capability bit 0x4000 advertises ERP (OFDM) support; stations without it
  // are legacy DSSS-only devices the AP must address at DSSS rates.
  static constexpr uint16_t kCapErp = 0x4000;
  uint16_t capability = 0x0001;
  uint16_t listen_interval = 1;
  std::string ssid;

  bool IsErp() const { return (capability & kCapErp) != 0; }

  std::vector<uint8_t> Serialize() const;
  static std::optional<AssocRequestBody> Deserialize(std::span<const uint8_t> in);
};

struct AssocResponseBody {
  uint16_t capability = 0x0001;
  uint16_t status = 0;  // 0 = success
  uint16_t aid = 0;

  std::vector<uint8_t> Serialize() const;
  static std::optional<AssocResponseBody> Deserialize(std::span<const uint8_t> in);
};

struct AuthBody {
  uint16_t algorithm = 0;  // open system
  uint16_t sequence = 1;
  uint16_t status = 0;

  std::vector<uint8_t> Serialize() const;
  static std::optional<AuthBody> Deserialize(std::span<const uint8_t> in);
};

// --- Control frame sizes ------------------------------------------------------

constexpr size_t kRtsFrameSize = 16 + kFcsSize;
constexpr size_t kCtsFrameSize = 10 + kFcsSize;
constexpr size_t kAckFrameSize = 10 + kFcsSize;
constexpr size_t kDataHeaderSize = 24;

// On-air durations of control frames at `mode`.
Time RtsDuration(const WifiMode& mode, bool short_preamble = false);
Time CtsDuration(const WifiMode& mode, bool short_preamble = false);
Time AckDuration(const WifiMode& mode, bool short_preamble = false);

}  // namespace wlansim

#endif  // WLANSIM_MAC_FRAMES_H_
