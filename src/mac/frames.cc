#include "mac/frames.h"

#include <cassert>
#include <cstring>

#include "crypto/crc32.h"

namespace wlansim {
namespace {

void PutU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v & 0xFF));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutAddress(std::vector<uint8_t>& out, const MacAddress& a) {
  out.insert(out.end(), a.bytes().begin(), a.bytes().end());
}

uint16_t GetU16(std::span<const uint8_t> in, size_t offset) {
  return static_cast<uint16_t>(in[offset] | (in[offset + 1] << 8));
}

uint64_t GetU64(std::span<const uint8_t> in, size_t offset) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | in[offset + static_cast<size_t>(i)];
  }
  return v;
}

MacAddress GetAddress(std::span<const uint8_t> in, size_t offset) {
  std::array<uint8_t, 6> bytes;
  std::memcpy(bytes.data(), in.data() + offset, 6);
  return MacAddress(bytes);
}

}  // namespace

size_t MacHeader::SerializedSize() const {
  if (type == FrameType::kControl) {
    switch (subtype) {
      case FrameSubtype::kCts:
      case FrameSubtype::kAck:
        return 10;  // FC + duration + RA
      default:
        return 16;  // FC + duration + RA + TA (RTS, PS-Poll)
    }
  }
  return 24;  // FC + duration + 3 addresses + sequence control
}

void MacHeader::Serialize(std::vector<uint8_t>& out) const {
  // Frame control, bit layout per the standard (protocol version = 0).
  uint16_t fc = 0;
  fc |= static_cast<uint16_t>(static_cast<uint16_t>(type) << 2);
  fc |= static_cast<uint16_t>(static_cast<uint16_t>(subtype) << 4);
  if (to_ds) fc |= 1u << 8;
  if (from_ds) fc |= 1u << 9;
  if (more_fragments) fc |= 1u << 10;
  if (retry) fc |= 1u << 11;
  if (power_mgmt) fc |= 1u << 12;
  if (more_data) fc |= 1u << 13;
  if (protected_frame) fc |= 1u << 14;
  if (order) fc |= 1u << 15;

  PutU16(out, fc);
  PutU16(out, duration_us);
  PutAddress(out, addr1);
  if (SerializedSize() == 10) {
    return;
  }
  PutAddress(out, addr2);
  if (SerializedSize() == 16) {
    return;
  }
  PutAddress(out, addr3);
  PutU16(out, static_cast<uint16_t>((sequence << 4) | (fragment & 0x0F)));
}

std::optional<MacHeader> MacHeader::Deserialize(std::span<const uint8_t> in) {
  if (in.size() < 10) {
    return std::nullopt;
  }
  const uint16_t fc = GetU16(in, 0);
  MacHeader h;
  if ((fc & 0x3) != 0) {
    return std::nullopt;  // protocol version must be 0
  }
  const auto type_bits = static_cast<uint8_t>((fc >> 2) & 0x3);
  if (type_bits > 2) {
    return std::nullopt;
  }
  h.type = static_cast<FrameType>(type_bits);
  h.subtype = static_cast<FrameSubtype>((fc >> 4) & 0xF);
  h.to_ds = (fc >> 8) & 1;
  h.from_ds = (fc >> 9) & 1;
  h.more_fragments = (fc >> 10) & 1;
  h.retry = (fc >> 11) & 1;
  h.power_mgmt = (fc >> 12) & 1;
  h.more_data = (fc >> 13) & 1;
  h.protected_frame = (fc >> 14) & 1;
  h.order = (fc >> 15) & 1;
  h.duration_us = GetU16(in, 2);
  h.addr1 = GetAddress(in, 4);

  const size_t want = h.SerializedSize();
  if (in.size() < want) {
    return std::nullopt;
  }
  if (want == 10) {
    return h;
  }
  h.addr2 = GetAddress(in, 10);
  if (want == 16) {
    return h;
  }
  h.addr3 = GetAddress(in, 16);
  const uint16_t sc = GetU16(in, 22);
  h.sequence = static_cast<uint16_t>(sc >> 4);
  h.fragment = static_cast<uint8_t>(sc & 0x0F);
  return h;
}

Packet BuildMpdu(const MacHeader& header, std::span<const uint8_t> body, PacketMeta meta) {
  std::vector<uint8_t> bytes;
  bytes.reserve(header.SerializedSize() + body.size() + kFcsSize);
  header.Serialize(bytes);
  bytes.insert(bytes.end(), body.begin(), body.end());
  const uint32_t fcs = Crc32(bytes);
  bytes.push_back(static_cast<uint8_t>(fcs));
  bytes.push_back(static_cast<uint8_t>(fcs >> 8));
  bytes.push_back(static_cast<uint8_t>(fcs >> 16));
  bytes.push_back(static_cast<uint8_t>(fcs >> 24));

  Packet packet{std::span<const uint8_t>(bytes)};
  packet.meta() = meta;
  return packet;
}

// Stripping header and FCS goes through Packet's offset-only Remove ops,
// so parsing a received MPDU never detaches the buffer the channel fan-out
// shares across receivers: the whole decode path down to the body is
// zero-copy.
std::optional<MacHeader> ParseMpdu(Packet& packet) {
  auto bytes = packet.bytes();
  if (bytes.size() < 10 + kFcsSize) {
    return std::nullopt;
  }
  const size_t n = bytes.size() - kFcsSize;
  const uint32_t want = static_cast<uint32_t>(bytes[n]) | (static_cast<uint32_t>(bytes[n + 1]) << 8) |
                        (static_cast<uint32_t>(bytes[n + 2]) << 16) |
                        (static_cast<uint32_t>(bytes[n + 3]) << 24);
  if (Crc32(bytes.subspan(0, n)) != want) {
    return std::nullopt;
  }
  auto header = MacHeader::Deserialize(bytes);
  if (!header.has_value()) {
    return std::nullopt;
  }
  packet.RemoveTrailer(kFcsSize);
  packet.RemoveHeader(header->SerializedSize());
  return header;
}

size_t MpduSize(const MacHeader& header, size_t body_bytes) {
  return header.SerializedSize() + body_bytes + kFcsSize;
}

// --- Management bodies --------------------------------------------------------

std::vector<uint8_t> BeaconBody::Serialize() const {
  std::vector<uint8_t> out;
  PutU64(out, timestamp_us);
  PutU16(out, beacon_interval_tu);
  PutU16(out, capability);
  // SSID element (id 0) + DS parameter set (id 3, channel).
  out.push_back(0);
  out.push_back(static_cast<uint8_t>(ssid.size()));
  out.insert(out.end(), ssid.begin(), ssid.end());
  out.push_back(3);
  out.push_back(1);
  out.push_back(channel);
  if (!tim_aids.empty()) {
    out.push_back(5);  // TIM element
    out.push_back(static_cast<uint8_t>(2 * tim_aids.size()));
    for (uint16_t aid : tim_aids) {
      PutU16(out, aid);
    }
  }
  return out;
}

std::optional<BeaconBody> BeaconBody::Deserialize(std::span<const uint8_t> in) {
  if (in.size() < 12 + 2) {
    return std::nullopt;
  }
  BeaconBody b;
  b.timestamp_us = GetU64(in, 0);
  b.beacon_interval_tu = GetU16(in, 8);
  b.capability = GetU16(in, 10);
  size_t pos = 12;
  while (pos + 2 <= in.size()) {
    const uint8_t id = in[pos];
    const uint8_t len = in[pos + 1];
    if (pos + 2 + len > in.size()) {
      return std::nullopt;
    }
    if (id == 0) {
      b.ssid.assign(in.begin() + static_cast<ptrdiff_t>(pos) + 2,
                    in.begin() + static_cast<ptrdiff_t>(pos) + 2 + len);
    } else if (id == 3 && len == 1) {
      b.channel = in[pos + 2];
    } else if (id == 5 && len % 2 == 0) {
      for (size_t k = 0; k + 1 < len; k += 2) {
        b.tim_aids.push_back(GetU16(in, pos + 2 + k));
      }
    }
    pos += 2 + len;
  }
  return b;
}

std::vector<uint8_t> AssocRequestBody::Serialize() const {
  std::vector<uint8_t> out;
  PutU16(out, capability);
  PutU16(out, listen_interval);
  out.push_back(0);
  out.push_back(static_cast<uint8_t>(ssid.size()));
  out.insert(out.end(), ssid.begin(), ssid.end());
  return out;
}

std::optional<AssocRequestBody> AssocRequestBody::Deserialize(std::span<const uint8_t> in) {
  if (in.size() < 6) {
    return std::nullopt;
  }
  AssocRequestBody b;
  b.capability = GetU16(in, 0);
  b.listen_interval = GetU16(in, 2);
  const uint8_t len = in[5];
  if (in[4] != 0 || in.size() < 6u + len) {
    return std::nullopt;
  }
  b.ssid.assign(in.begin() + 6, in.begin() + 6 + len);
  return b;
}

std::vector<uint8_t> AssocResponseBody::Serialize() const {
  std::vector<uint8_t> out;
  PutU16(out, capability);
  PutU16(out, status);
  PutU16(out, aid);
  return out;
}

std::optional<AssocResponseBody> AssocResponseBody::Deserialize(std::span<const uint8_t> in) {
  if (in.size() < 6) {
    return std::nullopt;
  }
  AssocResponseBody b;
  b.capability = GetU16(in, 0);
  b.status = GetU16(in, 2);
  b.aid = GetU16(in, 4);
  return b;
}

std::vector<uint8_t> AuthBody::Serialize() const {
  std::vector<uint8_t> out;
  PutU16(out, algorithm);
  PutU16(out, sequence);
  PutU16(out, status);
  return out;
}

std::optional<AuthBody> AuthBody::Deserialize(std::span<const uint8_t> in) {
  if (in.size() < 6) {
    return std::nullopt;
  }
  AuthBody b;
  b.algorithm = GetU16(in, 0);
  b.sequence = GetU16(in, 2);
  b.status = GetU16(in, 4);
  return b;
}

Time RtsDuration(const WifiMode& mode, bool short_preamble) {
  return FrameDuration(mode, kRtsFrameSize, short_preamble);
}
Time CtsDuration(const WifiMode& mode, bool short_preamble) {
  return FrameDuration(mode, kCtsFrameSize, short_preamble);
}
Time AckDuration(const WifiMode& mode, bool short_preamble) {
  return FrameDuration(mode, kAckFrameSize, short_preamble);
}

}  // namespace wlansim
