// The query server loop: a Unix-domain stream socket, one accept thread,
// and a fixed worker pool draining accepted connections from a queue. Each
// worker owns a connection for its whole lifetime (requests on one
// connection are answered in order); different connections are served
// concurrently up to the pool size.
//
// The worker count shapes only latency and interleaving, never bytes:
// workers share one immutable catalog and one ExtentCache, and the engine
// they run is a pure function of (catalog, query). That is what lets the
// determinism gate in CI diff the served output of a 1-thread and an
// 8-thread server byte for byte (invariant #8).
//
// The server answers the meta-query STATS itself — cache counters, per-verb
// service latency (LatencyRecorder), queries served — since those are
// properties of the serving layer, not of the data.

#ifndef WLANSIM_QUERY_SERVER_H_
#define WLANSIM_QUERY_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "query/catalog.h"
#include "query/extent_cache.h"
#include "stats/latency_recorder.h"

namespace wlansim {

struct QueryServerOptions {
  std::string socket_path;
  int threads = 2;                          // worker pool size (>= 1)
  size_t cache_bytes = 64u << 20;           // extent cache byte budget
};

class QueryServer {
 public:
  // The catalog is borrowed and must outlive the server; registration must
  // be finished before Start() (the serving path only reads it).
  QueryServer(const Catalog* catalog, QueryServerOptions options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  // Binds the socket (unlinking a stale file first), listens, and spawns
  // the accept thread plus the worker pool. Throws std::runtime_error when
  // the socket cannot be created or bound.
  void Start();

  // Stops accepting, drains the workers, closes every socket, and removes
  // the socket file. Idempotent; also run by the destructor.
  void Stop();

  uint64_t queries_served() const { return queries_served_.load(); }
  ExtentCache& cache() { return cache_; }

  // The STATS response body: queries served, cache counters, latency lines.
  std::string StatsReport() const;

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);

  const Catalog* catalog_;
  QueryServerOptions options_;
  ExtentCache cache_;
  LatencyRecorder latency_;

  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> queries_served_{0};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_fds_;
};

}  // namespace wlansim

#endif  // WLANSIM_QUERY_SERVER_H_
