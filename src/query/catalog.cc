#include "query/catalog.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <stdexcept>

namespace wlansim {
namespace {

std::string KindName(BinaryFileKind kind) {
  return kind == BinaryFileKind::kCampaign ? "campaign" : "sweep";
}

// The schema every member file must share. Campaign files carry it on their
// single group; sweep shards fix it on every group, and ParseBinaryResults
// already guarantees the groups *within* one file agree with each other the
// way the writer framed them, so the first group speaks for the file.
const BinaryGroupHeader& SchemaGroup(const BinaryResultsFile& file) {
  if (file.groups.empty()) {
    throw std::runtime_error("file has no groups");
  }
  return file.groups.front().header;
}

bool SameGeometry(const DistGeometry& a, const DistGeometry& b) {
  return a.lo == b.lo && a.bin_width == b.bin_width && a.n_bins == b.n_bins;
}

// Inserts `name` into a sorted unique vector.
void UnionInsert(std::vector<std::string>& sorted, const std::string& name) {
  auto it = std::lower_bound(sorted.begin(), sorted.end(), name);
  if (it == sorted.end() || *it != name) {
    sorted.insert(it, name);
  }
}

// Folds every group of `file` into the collection's union schema.
void MergeSchema(Collection& collection, const BinaryResultsFile& file) {
  for (const BinaryGroup& group : file.groups) {
    for (const std::string& name : group.header.scalar_names) {
      UnionInsert(collection.scalar_names, name);
    }
    for (size_t d = 0; d < group.header.dist_names.size(); ++d) {
      const std::string& name = group.header.dist_names[d];
      UnionInsert(collection.dist_names, name);
      auto [it, inserted] =
          collection.dist_geometry.emplace(name, group.header.dist_geometries[d]);
      if (!inserted && !SameGeometry(it->second, group.header.dist_geometries[d])) {
        collection.dist_geometry_conflicts.insert(name);
      }
    }
  }
}

}  // namespace

std::vector<GroupRef> Collection::GroupsInOrder() const {
  std::vector<GroupRef> refs;
  if (kind == BinaryFileKind::kSweep) {
    refs.reserve(points.size());
    for (const auto& [index, ref] : points) {
      (void)index;
      refs.push_back(ref);
    }
  } else {
    refs.reserve(files.size());
    for (const CatalogFile* file : files) {
      refs.push_back(GroupRef{file, 0});
    }
  }
  return refs;
}

const CatalogFile& Catalog::RegisterFile(const std::string& path) {
  for (const auto& existing : files_) {
    if (existing->path == path) {
      throw std::runtime_error("'" + path + "' is already registered");
    }
  }

  auto entry = std::make_unique<CatalogFile>();
  entry->path = path;
  entry->file = ReadBinaryResultsFile(path);  // parses + CRC-verifies, throws on damage
  const BinaryResultsFile& file = entry->file;
  const BinaryGroupHeader& schema = SchemaGroup(file);
  if (file.header.kind == BinaryFileKind::kCampaign && file.groups.size() != 1) {
    throw std::runtime_error("'" + path + "' is a campaign file with more than one group");
  }

  const std::string name = file.header.scenario + ":" + KindName(file.header.kind);
  auto existing_it = collections_.find(name);
  if (existing_it != collections_.end()) {
    const Collection& c = existing_it->second;
    if (file.header.param_keys != c.param_keys) {
      throw std::runtime_error("'" + path + "' sweep parameter keys differ from collection '" +
                               name + "'");
    }
    // Campaign drift checks: campaign answers pool the member files into
    // one sample set, so a file with a different schema would silently
    // poison the pool. (Sweep points aggregate per group; their schemas
    // may legitimately differ between grid points.)
    if (file.header.kind == BinaryFileKind::kCampaign) {
      if (schema.scalar_names != c.scalar_names) {
        throw std::runtime_error("'" + path + "' scalar columns differ from collection '" +
                                 name + "'");
      }
      bool dists_match = schema.dist_names == c.dist_names;
      for (size_t d = 0; dists_match && d < schema.dist_names.size(); ++d) {
        dists_match = SameGeometry(schema.dist_geometries[d],
                                   c.dist_geometry.at(schema.dist_names[d]));
      }
      if (!dists_match) {
        throw std::runtime_error("'" + path + "' distribution columns differ from collection '" +
                                 name + "'");
      }
    }
  }
  if (file.header.kind == BinaryFileKind::kSweep) {
    std::set<uint64_t> in_file;
    for (const BinaryGroup& group : file.groups) {
      const uint64_t point = group.header.point_index;
      const bool taken = existing_it != collections_.end() &&
                         existing_it->second.points.count(point) != 0;
      if (taken || !in_file.insert(point).second) {
        throw std::runtime_error("'" + path + "' re-supplies grid point " +
                                 std::to_string(point) + " of collection '" + name + "'");
      }
    }
  }

  // All checks passed: commit. Members stay sorted by path so every answer
  // is registration-order independent (Welford folds are order-sensitive).
  auto [it, created] = collections_.try_emplace(name);
  Collection& collection = it->second;
  if (created) {
    collection.name = name;
    collection.scenario = file.header.scenario;
    collection.kind = file.header.kind;
    collection.param_keys = file.header.param_keys;
  }
  MergeSchema(collection, file);
  const CatalogFile* stored = entry.get();
  files_.push_back(std::move(entry));
  collection.files.insert(
      std::upper_bound(collection.files.begin(), collection.files.end(), stored,
                       [](const CatalogFile* a, const CatalogFile* b) { return a->path < b->path; }),
      stored);
  for (size_t g = 0; g < file.groups.size(); ++g) {
    if (file.header.kind == BinaryFileKind::kSweep) {
      collection.points.emplace(file.groups[g].header.point_index, GroupRef{stored, g});
    }
    collection.total_rows += file.groups[g].header.n_rows;
  }
  return *stored;
}

size_t Catalog::RegisterDirectory(const std::string& path) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& dir_entry : fs::directory_iterator(path, ec)) {
    if (dir_entry.is_regular_file() && dir_entry.path().extension() == ".wlsr") {
      paths.push_back(dir_entry.path().string());
    }
  }
  if (ec) {
    throw std::runtime_error("cannot read directory '" + path + "': " + ec.message());
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& file_path : paths) {
    RegisterFile(file_path);
  }
  return paths.size();
}

std::vector<std::string> Catalog::CollectionNames() const {
  std::vector<std::string> names;
  names.reserve(collections_.size());
  for (const auto& [name, collection] : collections_) {
    (void)collection;
    names.push_back(name);
  }
  return names;
}

const Collection* Catalog::Find(const std::string& name) const {
  auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : &it->second;
}

std::string Catalog::Describe() const {
  std::string text = "collection,kind,files,groups,rows,scalar_columns,dist_columns\n";
  for (const auto& [name, c] : collections_) {
    const size_t groups =
        c.kind == BinaryFileKind::kSweep ? c.points.size() : c.files.size();
    text += name + "," + KindName(c.kind) + "," + std::to_string(c.files.size()) + "," +
            std::to_string(groups) + "," + std::to_string(c.total_rows) + "," +
            std::to_string(c.scalar_names.size()) + "," + std::to_string(c.dist_names.size()) +
            "\n";
  }
  return text;
}

std::string Catalog::DescribeSchema(const std::string& name) const {
  const Collection* c = Find(name);
  if (c == nullptr) {
    throw std::runtime_error("unknown collection '" + name + "'");
  }
  std::string text = "collection " + c->name + " kind=" + KindName(c->kind) +
                     " files=" + std::to_string(c->files.size()) +
                     " rows=" + std::to_string(c->total_rows) + "\n";
  for (const std::string& key : c->param_keys) {
    text += "param " + key + "\n";
  }
  for (const std::string& scalar : c->scalar_names) {
    text += "scalar " + scalar + "\n";
  }
  for (const std::string& dist : c->dist_names) {
    const DistGeometry& geo = c->dist_geometry.at(dist);
    char line[192];
    std::snprintf(line, sizeof(line), "dist %s lo=%g bin_width=%g n_bins=%llu%s\n", dist.c_str(),
                  geo.lo, geo.bin_width, static_cast<unsigned long long>(geo.n_bins),
                  c->dist_geometry_conflicts.count(dist) != 0 ? " (geometry varies)" : "");
    text += line;
  }
  return text;
}

}  // namespace wlansim
