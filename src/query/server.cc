#include "query/server.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "query/engine.h"
#include "query/protocol.h"

namespace wlansim {
namespace {

// Latency tracks exist only for the protocol's verbs; anything else a client
// sends shares one "(invalid)" track so garbage input cannot grow the
// recorder without bound.
const char* LatencyTrackFor(const std::string& verb) {
  static constexpr const char* kVerbs[] = {"LIST",   "SCHEMA", "AGGREGATE",
                                           "SELECT", "HIST",   "STATS"};
  for (const char* known : kVerbs) {
    if (verb == known) {
      return known;
    }
  }
  return "(invalid)";
}

}  // namespace

// Service latencies in microseconds: 50 µs bins over [0, 100 ms); slower
// queries still count exactly in the per-track summary.
QueryServer::QueryServer(const Catalog* catalog, QueryServerOptions options)
    : catalog_(catalog),
      options_(std::move(options)),
      cache_(options_.cache_bytes),
      latency_(0.0, 50.0, 2000) {
  if (options_.threads < 1) {
    throw std::runtime_error("query server needs at least one worker thread");
  }
}

QueryServer::~QueryServer() { Stop(); }

void QueryServer::Start() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path '" + options_.socket_path +
                             "' is empty or too long for a Unix socket");
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(), options_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket() failed: ") + std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());  // a stale file from a dead server
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("cannot listen on '" + options_.socket_path + "': " + reason);
  }

  stopping_.store(false);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<size_t>(options_.threads));
  for (int w = 0; w < options_.threads; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void QueryServer::Stop() {
  if (stopping_.exchange(true)) {
    // Already stopping/stopped; still join if a racing Stop got here first.
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (int fd : pending_fds_) {
      ::close(fd);
    }
    pending_fds_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
}

void QueryServer::AcceptLoop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) {
      continue;  // timeout (re-check the stop flag) or EINTR
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      pending_fds_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void QueryServer::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait_for(lock, std::chrono::milliseconds(100), [this] {
        return stopping_.load() || !pending_fds_.empty();
      });
      if (!pending_fds_.empty()) {
        fd = pending_fds_.front();
        pending_fds_.pop_front();
      } else if (stopping_.load()) {
        return;
      }
    }
    if (fd >= 0) {
      ServeConnection(fd);
      ::close(fd);
    }
  }
}

void QueryServer::ServeConnection(int fd) {
  QueryEngine engine(catalog_, &cache_);
  std::string query;
  try {
    while (!stopping_.load()) {
      // Wait for request bytes in short slices so a worker parked on an
      // idle connection still notices Stop(); only once bytes are ready
      // does ReadFrame block (and then only for the frame in flight).
      pollfd pfd{fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
      if (ready == 0) {
        continue;  // idle; re-check the stop flag
      }
      if (ready < 0) {
        if (errno == EINTR) {
          continue;
        }
        break;
      }
      if (!ReadFrame(fd, &query)) {
        break;  // clean end-of-stream between frames
      }
      const auto start = std::chrono::steady_clock::now();
      std::string response;
      std::string verb = query.substr(0, query.find_first_of(" \t\r\n"));
      try {
        if (query == "STATS") {
          response = EncodeResponse(kStatusOk, StatsReport());
        } else {
          response = EncodeResponse(kStatusOk, engine.Execute(query));
        }
      } catch (const std::exception& error) {
        response = EncodeResponse(kStatusError, std::string(error.what()) + "\n");
      }
      const auto elapsed = std::chrono::steady_clock::now() - start;
      latency_.Record(LatencyTrackFor(verb),
                      std::chrono::duration<double, std::micro>(elapsed).count());
      queries_served_.fetch_add(1);
      WriteFrame(fd, response);
    }
  } catch (const std::exception&) {
    // A torn frame or write to a dead peer ends this connection only.
  }
}

std::string QueryServer::StatsReport() const {
  std::string text = "served=" + std::to_string(queries_served_.load()) + "\n";
  text += cache_.Report();
  text += latency_.Report();
  return text;
}

}  // namespace wlansim
