#include "query/engine.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "results/binary_reader.h"
#include "runner/result_sink.h"

namespace wlansim {
namespace {

std::vector<std::string> Tokenize(const std::string& query) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : query) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    } else {
      current += c;
    }
  }
  if (!current.empty()) {
    tokens.push_back(std::move(current));
  }
  return tokens;
}

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : list) {
    if (c == ',') {
      parts.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(std::move(current));
  for (const std::string& part : parts) {
    if (part.empty()) {
      throw std::runtime_error("malformed list '" + list + "' (empty element)");
    }
  }
  return parts;
}

struct Filter {
  std::vector<std::pair<size_t, std::string>> clauses;  // (param index, value)
};

size_t ParamIndex(const Collection& c, const std::string& key) {
  for (size_t k = 0; k < c.param_keys.size(); ++k) {
    if (c.param_keys[k] == key) {
      return k;
    }
  }
  throw std::runtime_error("unknown sweep parameter '" + key + "' in collection '" + c.name +
                           "'");
}

// Parses `key=value [AND key=value ...]` starting at tokens[pos], stopping
// at end of tokens or the GROUP keyword. Advances pos past what it consumed.
Filter ParseWhere(const Collection& c, const std::vector<std::string>& tokens, size_t& pos) {
  Filter filter;
  while (pos < tokens.size() && tokens[pos] != "GROUP") {
    if (!filter.clauses.empty()) {
      if (tokens[pos] != "AND") {
        throw std::runtime_error("malformed WHERE clause: expected AND before '" + tokens[pos] +
                                 "'");
      }
      ++pos;
      if (pos >= tokens.size()) {
        throw std::runtime_error("malformed WHERE clause: dangling AND");
      }
    }
    const std::string& clause = tokens[pos];
    const size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= clause.size()) {
      throw std::runtime_error("malformed WHERE clause '" + clause + "' (expected key=value)");
    }
    filter.clauses.emplace_back(ParamIndex(c, clause.substr(0, eq)), clause.substr(eq + 1));
    ++pos;
  }
  if (filter.clauses.empty()) {
    throw std::runtime_error("malformed WHERE clause: no conditions");
  }
  return filter;
}

bool Matches(const Filter& filter, const BinaryGroupHeader& header) {
  for (const auto& [index, value] : filter.clauses) {
    if (header.param_values[index] != value) {
      return false;
    }
  }
  return true;
}

const Collection& FindCollection(const Catalog& catalog, const std::string& name) {
  const Collection* c = catalog.Find(name);
  if (c == nullptr) {
    throw std::runtime_error("unknown collection '" + name + "'");
  }
  return *c;
}

// Validates a SELECT metric list against the collection's union schema.
// Returns an empty vector for "*" (caller expands it per bucket, so each
// grid point reports its own schema exactly as the offline aggregate does).
std::vector<std::string> ResolveMetrics(const Collection& c,
                                        const std::vector<std::string>& names) {
  if (names.size() == 1 && names.front() == "*") {
    return {};
  }
  for (const std::string& name : names) {
    if (!std::binary_search(c.scalar_names.begin(), c.scalar_names.end(), name)) {
      throw std::runtime_error("unknown metric '" + name + "' in collection '" + c.name + "'");
    }
  }
  return names;
}

// The scalar column index of `name` in one group's own schema; throws when
// the group does not carry the metric (sweep points may differ in schema).
size_t ColumnIndexIn(const GroupRef& ref, const std::string& name) {
  const std::vector<std::string>& names = ref.group().header.scalar_names;
  auto it = std::find(names.begin(), names.end(), name);
  if (it == names.end()) {
    throw std::runtime_error("metric '" + name + "' is not present at grid point " +
                             std::to_string(ref.group().header.point_index));
  }
  return static_cast<size_t>(it - names.begin());
}

}  // namespace

std::string QueryEngine::Execute(const std::string& query) {
  const std::vector<std::string> tokens = Tokenize(query);
  if (tokens.empty()) {
    throw std::runtime_error("empty query");
  }
  const std::string& verb = tokens.front();

  if (verb == "LIST") {
    if (tokens.size() != 1) {
      throw std::runtime_error("LIST takes no arguments");
    }
    return catalog_->Describe();
  }

  if (verb == "SCHEMA") {
    if (tokens.size() != 2) {
      throw std::runtime_error("usage: SCHEMA <collection>");
    }
    return catalog_->DescribeSchema(tokens[1]);
  }

  if (verb == "AGGREGATE") {
    if (tokens.size() != 2) {
      throw std::runtime_error("usage: AGGREGATE <collection>");
    }
    // AGGREGATE is sugar for the full default SELECT; one code path, one
    // byte stream.
    return Execute("SELECT * FROM " + tokens[1]);
  }

  if (verb == "HIST") {
    if (tokens.size() < 3) {
      throw std::runtime_error("usage: HIST <collection> <dist-column> [WHERE ...]");
    }
    const Collection& c = FindCollection(*catalog_, tokens[1]);
    const std::string& dist_name = tokens[2];
    if (!std::binary_search(c.dist_names.begin(), c.dist_names.end(), dist_name)) {
      throw std::runtime_error("unknown distribution column '" + dist_name +
                               "' in collection '" + c.name + "'");
    }
    if (c.dist_geometry_conflicts.count(dist_name) != 0) {
      throw std::runtime_error("distribution column '" + dist_name +
                               "' has different bin geometries across the collection's groups; "
                               "their bins cannot be merged");
    }
    Filter filter;
    bool filtered = false;
    size_t pos = 3;
    if (pos < tokens.size()) {
      if (tokens[pos] != "WHERE") {
        throw std::runtime_error("unexpected token '" + tokens[pos] + "' after HIST column");
      }
      ++pos;
      filter = ParseWhere(c, tokens, pos);
      filtered = true;
      if (pos != tokens.size()) {
        throw std::runtime_error("unexpected token '" + tokens[pos] + "' after WHERE clause");
      }
    }

    // Merge the selected rows' snapshots in canonical row order: exact
    // integer sums for the counts, min/max over the rows that saw samples,
    // mean weighted by each row's sample count (fold order = row order, so
    // the result is independent of sharding and cache state).
    const DistGeometry& geo = c.dist_geometry.at(dist_name);
    std::vector<uint64_t> bins(geo.n_bins, 0);
    uint64_t underflow = 0, overflow = 0, total = 0;
    double min = 0.0, max = 0.0, weighted_sum = 0.0;
    bool any = false;
    std::vector<DistributionSnapshot> rows;
    for (const GroupRef& ref : c.GroupsInOrder()) {
      if (filtered && !Matches(filter, ref.group().header)) {
        continue;
      }
      const std::vector<std::string>& group_dists = ref.group().header.dist_names;
      auto dist_it = std::find(group_dists.begin(), group_dists.end(), dist_name);
      if (dist_it == group_dists.end()) {
        throw std::runtime_error("distribution column '" + dist_name +
                                 "' is not present at grid point " +
                                 std::to_string(ref.group().header.point_index) +
                                 "; add a WHERE clause to restrict the rows");
      }
      const size_t dist = static_cast<size_t>(dist_it - group_dists.begin());
      ReadDistColumn(ref.group(), dist, &rows);
      for (const DistributionSnapshot& row : rows) {
        for (size_t b = 0; b < bins.size(); ++b) {
          bins[b] += row.bins[b];
        }
        underflow += row.underflow;
        overflow += row.overflow;
        total += row.total;
        weighted_sum += row.mean * static_cast<double>(row.total);
        if (row.total > 0) {
          if (!any || row.min < min) min = row.min;
          if (!any || row.max > max) max = row.max;
          any = true;
        }
      }
    }
    const double mean = total > 0 ? weighted_sum / static_cast<double>(total) : 0.0;
    std::string text = "hist " + dist_name + " count=" + std::to_string(total) +
                       " underflow=" + std::to_string(underflow) +
                       " overflow=" + std::to_string(overflow) + " min=" + CsvNum(min) +
                       " max=" + CsvNum(max) + " mean=" + CsvNum(mean) + "\n";
    text += "bin,lo,count\n";
    for (size_t b = 0; b < bins.size(); ++b) {
      if (bins[b] != 0) {
        text += std::to_string(b) + "," + CsvNum(geo.lo + static_cast<double>(b) * geo.bin_width) +
                "," + std::to_string(bins[b]) + "\n";
      }
    }
    return text;
  }

  if (verb != "SELECT") {
    throw std::runtime_error("unknown query verb '" + verb + "'");
  }

  // SELECT <metrics> FROM <collection> [WHERE ...] [GROUP BY ...]
  size_t from = 1;
  while (from < tokens.size() && tokens[from] != "FROM") {
    ++from;
  }
  if (from == 1 || from + 1 >= tokens.size()) {
    throw std::runtime_error("usage: SELECT <metrics|*> FROM <collection> [WHERE ...] "
                             "[GROUP BY ...]");
  }
  // The metric list may be split across tokens ("a, b"), but adjacent
  // tokens must be joined by a comma — otherwise "SELECT a b FROM c" would
  // silently fuse into the single metric "ab".
  std::string metric_list;
  for (size_t i = 1; i < from; ++i) {
    if (i > 1 && metric_list.back() != ',' && tokens[i].front() != ',') {
      throw std::runtime_error("malformed metric list: '" + tokens[i - 1] + " " + tokens[i] +
                               "' is missing a comma between metrics");
    }
    metric_list += tokens[i];
  }
  const Collection& c = FindCollection(*catalog_, tokens[from + 1]);
  // Empty = "*": every bucket reports its own full schema.
  const std::vector<std::string> metrics = ResolveMetrics(c, SplitCommas(metric_list));

  Filter filter;
  bool filtered = false;
  std::vector<std::string> group_keys;
  bool explicit_group = false;
  size_t pos = from + 2;
  while (pos < tokens.size()) {
    if (tokens[pos] == "WHERE") {
      if (filtered) {
        throw std::runtime_error("duplicate WHERE clause");
      }
      ++pos;
      filter = ParseWhere(c, tokens, pos);
      filtered = true;
    } else if (tokens[pos] == "GROUP") {
      if (explicit_group) {
        throw std::runtime_error("duplicate GROUP BY clause");
      }
      if (pos + 2 >= tokens.size() || tokens[pos + 1] != "BY") {
        throw std::runtime_error("malformed GROUP BY clause");
      }
      group_keys = SplitCommas(tokens[pos + 2]);
      for (const std::string& key : group_keys) {
        ParamIndex(c, key);  // validates
      }
      explicit_group = true;
      pos += 3;
    } else {
      throw std::runtime_error("unexpected token '" + tokens[pos] + "'");
    }
  }

  if (c.kind == BinaryFileKind::kCampaign) {
    if (filtered || explicit_group) {
      throw std::runtime_error("collection '" + c.name +
                               "' is a campaign (no sweep parameters to filter or group by)");
    }
    // One pooled sample set: member files' columns concatenated in path
    // order — the same fold AggregateBinary runs over the same file order.
    // Campaign members share one schema (registration enforces it), so the
    // union IS every member's column list.
    const std::vector<std::string>& names = metrics.empty() ? c.scalar_names : metrics;
    std::vector<MetricAggregate> aggregates;
    aggregates.reserve(names.size());
    std::vector<double> pooled;
    for (const std::string& name : names) {
      pooled.clear();
      for (const GroupRef& ref : c.GroupsInOrder()) {
        const ColumnPtr values = cache_->GetScalarColumn(ref, ColumnIndexIn(ref, name));
        pooled.insert(pooled.end(), values->begin(), values->end());
      }
      aggregates.push_back(AggregateScalarSamples(name, pooled));
    }
    return ResultSink::AggregatesToCsv(aggregates);
  }

  // Sweep: default grouping is every sweep parameter, making the default
  // SELECT row set identical to the offline long-format aggregate.
  if (!explicit_group) {
    group_keys = c.param_keys;
  }
  std::vector<size_t> key_indices;
  key_indices.reserve(group_keys.size());
  for (const std::string& key : group_keys) {
    key_indices.push_back(ParamIndex(c, key));
  }

  // Partition the matching grid points by key tuple. Buckets keep their
  // members in ascending grid-point order (GroupsInOrder already is) and
  // are emitted in order of first appearance — both pure functions of the
  // grid, never of registration order.
  std::vector<std::pair<std::vector<std::string>, std::vector<GroupRef>>> buckets;
  std::map<std::vector<std::string>, size_t> bucket_index;
  for (const GroupRef& ref : c.GroupsInOrder()) {
    if (filtered && !Matches(filter, ref.group().header)) {
      continue;
    }
    std::vector<std::string> key;
    key.reserve(key_indices.size());
    for (size_t k : key_indices) {
      key.push_back(ref.group().header.param_values[k]);
    }
    auto [it2, created] = bucket_index.try_emplace(key, buckets.size());
    if (created) {
      buckets.emplace_back(std::move(key), std::vector<GroupRef>{});
    }
    buckets[it2->second].second.push_back(ref);
  }
  if (buckets.empty()) {
    throw std::runtime_error("no grid points match the WHERE clause");
  }

  std::string csv = ResultSink::SweepLongCsvHeader(group_keys, false);
  std::vector<double> pooled;
  for (const auto& [key, members] : buckets) {
    // "*" expands to the bucket's own schema — exactly the point's column
    // list under the default per-point grouping, which is what keeps the
    // default SELECT byte-identical to the offline aggregate even when
    // sweep points differ in schema. Pooling across members requires them
    // to agree on it.
    const std::vector<std::string>& names =
        metrics.empty() ? members.front().group().header.scalar_names : metrics;
    if (metrics.empty()) {
      for (const GroupRef& ref : members) {
        if (ref.group().header.scalar_names != names) {
          throw std::runtime_error(
              "grid points pooled into one GROUP BY bucket disagree on their metric set; "
              "select explicit metrics instead of *");
        }
      }
    }
    std::vector<MetricAggregate> aggregates;
    aggregates.reserve(names.size());
    for (const std::string& name : names) {
      pooled.clear();
      for (const GroupRef& ref : members) {
        const ColumnPtr values = cache_->GetScalarColumn(ref, ColumnIndexIn(ref, name));
        pooled.insert(pooled.end(), values->begin(), values->end());
      }
      aggregates.push_back(AggregateScalarSamples(name, pooled));
    }
    csv += ResultSink::SweepLongCsvRows(key, aggregates);
  }
  return csv;
}

}  // namespace wlansim
