// The wlansim query wire protocol: length-prefixed frames over a local
// stream socket. A request frame's payload is the query text (one line of
// the engine grammar, no terminator). A response frame's payload is one
// status byte — kStatusOk or kStatusError — followed by the body: the
// query result on success, the error message on failure. One connection
// carries any number of request/response pairs in lockstep; either side
// closing the socket between pairs ends the conversation cleanly.
//
// Framing is a u32 little-endian payload length followed by the payload
// bytes, bounded by kMaxFrameBytes so a corrupt length cannot make a peer
// allocate unbounded memory.

#ifndef WLANSIM_QUERY_PROTOCOL_H_
#define WLANSIM_QUERY_PROTOCOL_H_

#include <cstdint>
#include <string>

namespace wlansim {

inline constexpr uint8_t kStatusOk = 0;
inline constexpr uint8_t kStatusError = 1;
inline constexpr uint32_t kMaxFrameBytes = 256u << 20;

// Reads one frame. Returns false on clean end-of-stream before any byte of
// the frame; throws std::runtime_error on a short read mid-frame, an I/O
// error, or an oversized length prefix.
bool ReadFrame(int fd, std::string* payload);

// Writes one frame, handling short writes. Throws std::runtime_error on an
// I/O error or an oversized payload.
void WriteFrame(int fd, const std::string& payload);

// Response payload helpers: status byte + body.
std::string EncodeResponse(uint8_t status, const std::string& body);
// Splits a response payload; returns the status byte. Throws on an empty
// payload or an unknown status value.
uint8_t DecodeResponse(const std::string& payload, std::string* body);

}  // namespace wlansim

#endif  // WLANSIM_QUERY_PROTOCOL_H_
