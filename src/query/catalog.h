// The query server's catalog: registered WLSR result files grouped into
// logical campaign *collections*.
//
// Registering a file parses and CRC-verifies it in full (a damaged file is
// rejected at the door, not at query time) and files it under the
// collection named `<scenario>:campaign` or `<scenario>:sweep`. Shards of
// one sweep grid land in the same collection; independent campaign runs of
// one scenario pool into one sample set, exactly as `wlansim_results
// aggregate` pools its argument files.
//
// Schema drift is detected at registration: a campaign file whose scalar
// column set, distribution column set or bin geometries disagree with its
// collection throws (campaign answers pool the files into one sample set,
// so a mismatched shard would silently poison the pool), as does any file
// whose sweep parameter keys differ, and a sweep shard that re-supplies an
// already-registered grid point. Sweep *groups* may legitimately differ in
// schema between grid points (a swept parameter can change the metric
// set), so sweep collections carry the union schema and queries resolve
// columns per group.
//
// Determinism: collection member files are kept sorted by path and sweep
// groups are keyed by ascending grid point index, so every query answer is
// independent of registration order. The catalog is immutable once serving
// starts (registration happens during server startup); queries only read.

#ifndef WLANSIM_QUERY_CATALOG_H_
#define WLANSIM_QUERY_CATALOG_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "results/binary_reader.h"

namespace wlansim {

// One registered file, parsed and verified.
struct CatalogFile {
  std::string path;
  BinaryResultsFile file;
};

// A borrowed reference to one group of one registered file.
struct GroupRef {
  const CatalogFile* file = nullptr;
  size_t group_index = 0;

  const BinaryGroup& group() const { return file->file.groups[group_index]; }
};

struct Collection {
  std::string name;  // "<scenario>:campaign" or "<scenario>:sweep"
  std::string scenario;
  BinaryFileKind kind = BinaryFileKind::kCampaign;
  std::vector<std::string> param_keys;      // sweep axis keys; empty for campaigns
  // Union of the member groups' schemas, sorted by name. For campaigns the
  // union IS the shared schema (registration enforces equality); sweep
  // points may each carry a subset.
  std::vector<std::string> scalar_names;
  std::vector<std::string> dist_names;
  // First-seen bin geometry per distribution name. A name that reappears
  // with a different geometry lands in dist_geometry_conflicts: such
  // columns can still be read per group but refuse a cross-group HIST
  // merge (summing bins of unlike geometries would be silent nonsense).
  std::map<std::string, DistGeometry> dist_geometry;
  std::set<std::string> dist_geometry_conflicts;
  std::vector<const CatalogFile*> files;    // sorted by path
  // Sweep: every grid point across the member shards, ascending point
  // index. Campaigns leave this empty (their rows are the files' single
  // groups, concatenated in file order).
  std::map<uint64_t, GroupRef> points;
  uint64_t total_rows = 0;

  // The member groups in canonical row order: ascending point index for
  // sweeps, file (path) order for campaigns.
  std::vector<GroupRef> GroupsInOrder() const;
};

class Catalog {
 public:
  // Registers one WLSR file: reads, parses, CRC-verifies, and files it into
  // its collection. Throws std::runtime_error on an unreadable, truncated
  // or corrupt file, a duplicate path, or schema drift against the
  // collection.
  const CatalogFile& RegisterFile(const std::string& path);

  // Registers every regular file ending in ".wlsr" directly inside `path`
  // (sorted by name, so the resulting catalog is directory-order
  // independent). Returns the number registered; throws on an unreadable
  // directory or any per-file failure.
  size_t RegisterDirectory(const std::string& path);

  // Collection names, sorted.
  std::vector<std::string> CollectionNames() const;

  // nullptr when the name is unknown.
  const Collection* Find(const std::string& name) const;

  size_t file_count() const { return files_.size(); }

  // The LIST response body: one CSV row per collection.
  std::string Describe() const;

  // The SCHEMA response body for one collection; throws on unknown name.
  std::string DescribeSchema(const std::string& name) const;

 private:
  std::vector<std::unique_ptr<CatalogFile>> files_;
  std::map<std::string, Collection> collections_;
};

}  // namespace wlansim

#endif  // WLANSIM_QUERY_CATALOG_H_
