#include "query/protocol.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <sys/socket.h>
#include <unistd.h>

namespace wlansim {
namespace {

// Reads exactly n bytes. Returns false only on end-of-stream before the
// first byte when eof_ok; throws on errors and mid-buffer EOF.
bool ReadExact(int fd, char* buffer, size_t n, bool eof_ok) {
  size_t done = 0;
  while (done < n) {
    const ssize_t got = ::read(fd, buffer + done, n - done);
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw std::runtime_error(std::string("socket read failed: ") + std::strerror(errno));
    }
    if (got == 0) {
      if (done == 0 && eof_ok) {
        return false;
      }
      throw std::runtime_error("socket closed mid-frame");
    }
    done += static_cast<size_t>(got);
  }
  return true;
}

// MSG_NOSIGNAL: a peer that hung up must surface as EPIPE (an exception the
// per-connection loop catches), not as a SIGPIPE that kills the process.
void WriteExact(int fd, const char* buffer, size_t n) {
  size_t done = 0;
  while (done < n) {
    const ssize_t put = ::send(fd, buffer + done, n - done, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw std::runtime_error(std::string("socket write failed: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(put);
  }
}

}  // namespace

bool ReadFrame(int fd, std::string* payload) {
  char prefix[4];
  if (!ReadExact(fd, prefix, sizeof(prefix), /*eof_ok=*/true)) {
    return false;
  }
  const uint32_t length = static_cast<uint32_t>(static_cast<uint8_t>(prefix[0])) |
                          static_cast<uint32_t>(static_cast<uint8_t>(prefix[1])) << 8 |
                          static_cast<uint32_t>(static_cast<uint8_t>(prefix[2])) << 16 |
                          static_cast<uint32_t>(static_cast<uint8_t>(prefix[3])) << 24;
  if (length > kMaxFrameBytes) {
    throw std::runtime_error("frame length " + std::to_string(length) + " exceeds the " +
                             std::to_string(kMaxFrameBytes) + "-byte bound");
  }
  payload->resize(length);
  if (length > 0) {
    ReadExact(fd, payload->data(), length, /*eof_ok=*/false);
  }
  return true;
}

void WriteFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw std::runtime_error("frame payload exceeds the " + std::to_string(kMaxFrameBytes) +
                             "-byte bound");
  }
  const uint32_t length = static_cast<uint32_t>(payload.size());
  const char prefix[4] = {
      static_cast<char>(length & 0xff),
      static_cast<char>((length >> 8) & 0xff),
      static_cast<char>((length >> 16) & 0xff),
      static_cast<char>((length >> 24) & 0xff),
  };
  WriteExact(fd, prefix, sizeof(prefix));
  WriteExact(fd, payload.data(), payload.size());
}

std::string EncodeResponse(uint8_t status, const std::string& body) {
  std::string payload;
  payload.reserve(body.size() + 1);
  payload.push_back(static_cast<char>(status));
  payload += body;
  return payload;
}

uint8_t DecodeResponse(const std::string& payload, std::string* body) {
  if (payload.empty()) {
    throw std::runtime_error("empty response payload");
  }
  const uint8_t status = static_cast<uint8_t>(payload.front());
  if (status != kStatusOk && status != kStatusError) {
    throw std::runtime_error("unknown response status " + std::to_string(status));
  }
  body->assign(payload, 1, payload.size() - 1);
  return status;
}

}  // namespace wlansim
