// Byte-budgeted LRU cache of decoded scalar columns, keyed by
// (file, group, column). The query engine's hot loop is "decode this
// column of this group" — the same extent walk repeated per query — so
// caching the decoded doubles turns a warm repeat of a query into pure
// arithmetic over resident vectors, no varint or extent framing work.
//
// The cache only ever changes *when* work happens, never *what* is
// computed: values are immutable shared snapshots of exactly what
// ReadScalarColumn returns, so answers are bit-identical whether they hit
// or miss (invariant #8 in docs/architecture.md). Eviction is strict LRU
// by byte budget; a single column larger than the whole budget is still
// served (returned to the caller) but not retained.

#ifndef WLANSIM_QUERY_EXTENT_CACHE_H_
#define WLANSIM_QUERY_EXTENT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "query/catalog.h"

namespace wlansim {

using ColumnPtr = std::shared_ptr<const std::vector<double>>;

struct ExtentCacheStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t cached_bytes = 0;
  uint64_t cached_columns = 0;
};

class ExtentCache {
 public:
  explicit ExtentCache(size_t byte_budget) : byte_budget_(byte_budget) {}

  // Returns the decoded scalar column `column` (index into the group's
  // scalar_names) of `ref`'s group, from cache when resident, decoding and
  // inserting it otherwise. Thread-safe; concurrent misses on the same key
  // may decode twice but converge on one cached copy.
  ColumnPtr GetScalarColumn(const GroupRef& ref, size_t column);

  ExtentCacheStats Stats() const;

  // One line per counter, the STATS response body fragment:
  //   cache lookups=.. hits=.. misses=.. evictions=.. bytes=.. columns=..
  std::string Report() const;

  // Drops every cached column (counters are kept — evictions does not
  // count a Clear). Benchmarks use this to measure the cold path.
  void Clear();

  size_t byte_budget() const { return byte_budget_; }

 private:
  // (file identity, group index, column index).
  using Key = std::tuple<const CatalogFile*, size_t, size_t>;

  struct Entry {
    ColumnPtr value;
    size_t bytes = 0;
    std::list<Key>::iterator lru_it;
  };

  void EvictToFitLocked(size_t incoming_bytes);

  size_t byte_budget_;
  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;  // front = most recently used
  ExtentCacheStats stats_;
};

}  // namespace wlansim

#endif  // WLANSIM_QUERY_EXTENT_CACHE_H_
