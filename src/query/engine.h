// The query engine: executes one text query against the catalog, fetching
// decoded columns through the extent cache and aggregating them with the
// exact same arithmetic — and the same CSV formatters — as the offline
// `wlansim_results aggregate` path. That sharing is the determinism
// contract (invariant #8): a served answer is byte-identical to the
// offline answer over the same files, whatever the cache or thread state.
//
// Grammar (keywords are uppercase; names/values are case-sensitive):
//   LIST
//   SCHEMA <collection>
//   AGGREGATE <collection>
//   SELECT <metric[,metric...] | *> FROM <collection>
//       [WHERE key=value [AND key=value ...]] [GROUP BY key[,key...]]
//   HIST <collection> <dist-column> [WHERE key=value [AND key=value ...]]
//
// SELECT over a sweep groups by every sweep parameter by default, so
// `SELECT * FROM <c>` returns exactly the AGGREGATE bytes. WHERE matches
// swept parameter values textually (the stored grid values are strings).
// GROUP BY pools the matching grid points per distinct key tuple, member
// rows folded in ascending grid-point order; buckets are emitted in order
// of their first (lowest) grid point. Campaigns have no parameters, so
// WHERE and GROUP BY on a campaign collection are errors.

#ifndef WLANSIM_QUERY_ENGINE_H_
#define WLANSIM_QUERY_ENGINE_H_

#include <string>

#include "query/catalog.h"
#include "query/extent_cache.h"

namespace wlansim {

class QueryEngine {
 public:
  // Both borrowed; the catalog must be immutable while queries run.
  QueryEngine(const Catalog* catalog, ExtentCache* cache)
      : catalog_(catalog), cache_(cache) {}

  // Executes one query line and returns the response body (CSV or text).
  // Throws std::runtime_error with a client-facing message on a malformed
  // query, unknown collection, unknown column, or empty result set.
  std::string Execute(const std::string& query);

 private:
  const Catalog* catalog_;
  ExtentCache* cache_;
};

}  // namespace wlansim

#endif  // WLANSIM_QUERY_ENGINE_H_
