#include "query/extent_cache.h"

#include <cstdio>

#include "results/binary_reader.h"

namespace wlansim {

ColumnPtr ExtentCache::GetScalarColumn(const GroupRef& ref, size_t column) {
  const Key key{ref.file, ref.group_index, column};
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.lookups;
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.value;
    }
    ++stats_.misses;
  }

  // Decode outside the lock: a miss on a large column must not serialize
  // the other workers behind it.
  auto values = std::make_shared<std::vector<double>>();
  ReadScalarColumn(ref.group(), column, values.get());
  ColumnPtr column_ptr = std::move(values);
  const size_t bytes = column_ptr->size() * sizeof(double);

  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // A concurrent miss beat us to the insert; its copy wins.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.value;
  }
  if (bytes <= byte_budget_) {
    EvictToFitLocked(bytes);
    lru_.push_front(key);
    entries_.emplace(key, Entry{column_ptr, bytes, lru_.begin()});
    stats_.cached_bytes += bytes;
    stats_.cached_columns = entries_.size();
  }
  return column_ptr;
}

void ExtentCache::EvictToFitLocked(size_t incoming_bytes) {
  while (!lru_.empty() && stats_.cached_bytes + incoming_bytes > byte_budget_) {
    auto it = entries_.find(lru_.back());
    stats_.cached_bytes -= it->second.bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.cached_columns = entries_.size();
}

ExtentCacheStats ExtentCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string ExtentCache::Report() const {
  const ExtentCacheStats s = Stats();
  char line[192];
  std::snprintf(line, sizeof(line),
                "cache lookups=%llu hits=%llu misses=%llu evictions=%llu bytes=%llu columns=%llu\n",
                static_cast<unsigned long long>(s.lookups),
                static_cast<unsigned long long>(s.hits),
                static_cast<unsigned long long>(s.misses),
                static_cast<unsigned long long>(s.evictions),
                static_cast<unsigned long long>(s.cached_bytes),
                static_cast<unsigned long long>(s.cached_columns));
  return line;
}

void ExtentCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  stats_.cached_bytes = 0;
  stats_.cached_columns = 0;
}

}  // namespace wlansim
