// Readers and out-of-core operations over WLSR binary result files
// (binary_format.h): parse + CRC-verify, column-at-a-time decoding, shard
// merge, byte-identical CSV export, and exact aggregation. These back the
// wlansim_results CLI and the format's tests.
//
// The operations never materialize the row set: decoding walks one extent
// (kExtentRows rows) or one column at a time, so aggregating a
// 10^6-replication file costs one metric column of memory, not the table.

#ifndef WLANSIM_RESULTS_BINARY_READER_H_
#define WLANSIM_RESULTS_BINARY_READER_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "results/binary_format.h"
#include "runner/metric_recorder.h"
#include "runner/result_sink.h"

namespace wlansim {

// One parsed group: its decoded header plus the raw CRC-covered body bytes
// (kept verbatim so a merge can re-frame groups byte-identically without
// re-encoding them).
struct BinaryGroup {
  BinaryGroupHeader header;
  std::string body;          // full body: encoded header + extents
  size_t extents_offset = 0; // where the extent data starts inside body
};

struct BinaryResultsFile {
  BinaryFileHeader header;
  std::vector<BinaryGroup> groups;  // file order (ascending point_index)
};

// Parses a whole serialized file, verifying the magic, version, per-group
// framing and CRCs. Throws std::runtime_error with a "truncated ..." /
// "corrupt ..." / "not a wlansim binary results file" message on damage.
BinaryResultsFile ParseBinaryResults(const std::string& bytes);

// Reads `path` fully and parses it. Throws std::runtime_error when the file
// cannot be opened.
BinaryResultsFile ReadBinaryResultsFile(const std::string& path);

// Decodes scalar column `column` (index into header.scalar_names) of one
// group: header.n_rows values in replication order.
void ReadScalarColumn(const BinaryGroup& group, size_t column, std::vector<double>* out);

// Decodes distribution column `dist` (index into header.dist_names) of one
// group: header.n_rows full snapshots, exact bin counts included.
void ReadDistColumn(const BinaryGroup& group, size_t dist, std::vector<DistributionSnapshot>* out);

// Calls visit(row_index, values) for every row of the group in replication
// order, decoding extent by extent; `values` is aligned with
// header.scalar_names and reused between calls.
void VisitScalarRows(const BinaryGroup& group,
                     const std::function<void(uint64_t, const std::vector<double>&)>& visit);

// Human-readable schema + group summary (the `inspect` subcommand).
std::string InspectBinary(const BinaryResultsFile& file);

// Merges sweep shard files into one file on `out`, groups ordered by
// ascending grid point index. Inputs must agree on every header field
// except the group count; duplicate point indices and campaign-kind files
// are rejected. When the shards cover the whole grid, the merged bytes are
// identical to the file an unsharded run writes.
void MergeBinaryFiles(const std::vector<std::string>& input_paths, std::ostream& out);

// Exports back to the text formats, byte-identical to what the run itself
// would have written: a campaign file reproduces the per-replication CSV
// (StreamingCsvWriter / ResultSink::ReplicationsToCsv), a sweep file
// reproduces the long-format CSV (SweepResultToCsv), replaying the exact or
// online aggregation according to the header's streamed flag.
std::string ExportBinaryCsv(const BinaryResultsFile& file);

// Aggregates across files without materializing rows: per metric (and per
// grid point for sweeps), a Welford summary plus exact sorted-sample
// quantiles over the concatenated columns, in file order. Output is
// AggregatesToCsv for campaigns and the long-format CSV for sweeps —
// always with exact quantile labels, because the stored records are exact
// whatever aggregation the original run used. Files must share scenario,
// kind, and schema-bearing header fields.
std::string AggregateBinary(const std::vector<BinaryResultsFile>& files);

// The same operation over borrowed files (none may be null). This is the
// overload the query server calls: its catalog owns the parsed files, and
// served answers must be byte-identical to the offline path, so both
// spellings run literally the same code.
std::string AggregateBinary(const std::vector<const BinaryResultsFile*>& files);

// The exact per-column aggregation shared by AggregateBinary, the export
// path and the query engine: Welford mean/stddev/CI over `values` in the
// given order plus exact sorted-sample quantiles. Mirrors
// ResultSink::AggregateReplications for a fully-reported metric column, so
// every downstream CSV byte matches the text writers'.
MetricAggregate AggregateScalarSamples(const std::string& name,
                                       const std::vector<double>& values);

}  // namespace wlansim

#endif  // WLANSIM_RESULTS_BINARY_READER_H_
