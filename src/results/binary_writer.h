// Writers for the WLSR binary columnar result format (binary_format.h).
//
// GroupEncoder turns an ordered stream of ReplicationRecords into one
// encoded group: it buffers kExtentRows rows of column values, flushes each
// full extent as per-column chunks, and finishes into the CRC-framed group
// bytes. Peak memory is one extent of raw columns plus the (compact)
// encoded blob — never the row set.
//
// BinaryCampaignWriter is the ResultConsumer that rides the campaign
// ResultPipeline (next to the streaming CSV writer) and writes a
// single-group campaign file. BinarySweepWriter is the SweepPointSink that
// writes a sweep file: one group per grid point, emitted in grid order by
// the sweep engine's ordered point delivery, so the bytes are identical for
// any --jobs value — and shards concatenate into exactly the unsharded file.

#ifndef WLANSIM_RESULTS_BINARY_WRITER_H_
#define WLANSIM_RESULTS_BINARY_WRITER_H_

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "results/binary_format.h"
#include "runner/metric_recorder.h"
#include "runner/result_consumer.h"
#include "runner/sweep.h"

namespace wlansim {

// Encodes the records of one group (one campaign, or one sweep grid point).
// The schema — scalar names, distribution names, bin geometries — is fixed
// by the first record, exactly the way StreamingCsvWriter fixes its column
// set; a later record that drifts throws std::runtime_error.
class GroupEncoder {
 public:
  // Records must arrive in replication order (the pipeline guarantees it).
  void AddRecord(const ReplicationRecord& record);

  uint64_t n_rows() const { return n_rows_; }

  // Flushes the trailing partial extent and returns the framed group:
  // group magic | body_len | body | crc32(body). The encoder is spent
  // afterwards.
  std::string FinishFramed(uint64_t point_index, uint64_t point_seed,
                           std::vector<std::string> param_values);

 private:
  void FixSchema(const ReplicationRecord& record);
  void CheckSchema(const ReplicationRecord& record) const;
  void FlushExtent();

  bool schema_fixed_ = false;
  std::vector<std::string> scalar_names_;
  std::vector<std::string> dist_names_;
  std::vector<DistGeometry> geometries_;

  uint64_t n_rows_ = 0;
  size_t extent_rows_ = 0;
  std::vector<std::vector<double>> scalar_cols_;
  struct DistColumns {
    std::vector<uint64_t> underflow;
    std::vector<uint64_t> overflow;
    std::vector<uint64_t> total;
    std::vector<double> min;
    std::vector<double> max;
    std::vector<double> mean;
    std::string bins_rle;  // concatenated per-row zero-RLE bin blocks
  };
  std::vector<DistColumns> dist_cols_;
  std::string extents_;  // encoded extents so far
};

// ResultConsumer adapter over a GroupEncoder, for contexts that attach
// consumers to a pipeline (the sweep engine's per-point consumers).
class GroupEncoderConsumer final : public ResultConsumer {
 public:
  void OnRecord(const ReplicationRecord& record) override { encoder_.AddRecord(record); }

  GroupEncoder& encoder() { return encoder_; }

 private:
  GroupEncoder encoder_;
};

// Streams a campaign into one single-group binary file on `out`. `streamed`
// only annotates the header (which aggregation mode the campaign ran); the
// writer always receives and stores every full record.
class BinaryCampaignWriter final : public ResultConsumer {
 public:
  BinaryCampaignWriter(std::ostream& out, bool streamed)
      : out_(out), streamed_(streamed) {}

  // One writer serves one campaign, like StreamingCsvWriter.
  void BeginCampaign(const CampaignManifest& manifest) override;
  void OnRecord(const ReplicationRecord& record) override;
  void EndCampaign() override;

 private:
  std::ostream& out_;
  bool streamed_;
  CampaignManifest manifest_;
  GroupEncoder encoder_;
  bool begun_ = false;
};

// Writes a sweep binary file: header up front (the group count — this
// shard's point count — is known before any point runs), then one framed
// group per grid point as the engine delivers completions in grid order.
class BinarySweepWriter final : public SweepPointSink {
 public:
  explicit BinarySweepWriter(std::ostream& out) : out_(out) {}

  void BeginSweep(const SweepManifest& manifest) override;
  std::unique_ptr<ResultConsumer> MakePointConsumer(const SweepPointInfo& info) override;
  void OnPointDone(const SweepPointInfo& info,
                   const std::vector<MetricAggregate>& aggregates,
                   ResultConsumer* point_consumer) override;
  void EndSweep() override;

 private:
  std::ostream& out_;
  bool begun_ = false;
};

}  // namespace wlansim

#endif  // WLANSIM_RESULTS_BINARY_WRITER_H_
