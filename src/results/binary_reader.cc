#include "results/binary_reader.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <stdexcept>

#include "crypto/crc32.h"
#include "runner/result_consumer.h"
#include "runner/result_sink.h"
#include "stats/summary.h"

namespace wlansim {
namespace {

uint32_t BodyCrc(const std::string& body) {
  return Crc32({reinterpret_cast<const uint8_t*>(body.data()), body.size()});
}

void SkipChunk(ByteReader& reader) {
  reader.GetU8();  // encoding tag
  reader.GetRange(reader.GetVarint());
}

void SkipBinsBlock(ByteReader& reader) {
  reader.GetRange(reader.GetVarint());
}

void SkipDistColumns(ByteReader& reader, size_t n_dists) {
  for (size_t d = 0; d < n_dists; ++d) {
    for (int c = 0; c < 6; ++c) {
      SkipChunk(reader);
    }
    SkipBinsBlock(reader);
  }
}

// Walks the group's extents in order: per_extent(reader, rows) must consume
// exactly one extent's bytes.
void WalkExtents(const BinaryGroup& group,
                 const std::function<void(ByteReader&, size_t)>& per_extent) {
  ByteReader reader(group.body.data() + group.extents_offset,
                    group.body.size() - group.extents_offset);
  uint64_t rows_left = group.header.n_rows;
  while (rows_left > 0) {
    const size_t rows = static_cast<size_t>(std::min<uint64_t>(kExtentRows, rows_left));
    per_extent(reader, rows);
    rows_left -= rows;
  }
  if (reader.remaining() != 0) {
    throw std::runtime_error("corrupt binary results file: trailing bytes after the last extent");
  }
}

// Exact per-point aggregates of one group, column at a time.
std::vector<MetricAggregate> ExactGroupAggregates(const BinaryGroup& group) {
  std::vector<MetricAggregate> aggregates;
  aggregates.reserve(group.header.scalar_names.size());
  std::vector<double> column;
  for (size_t c = 0; c < group.header.scalar_names.size(); ++c) {
    ReadScalarColumn(group, c, &column);
    aggregates.push_back(AggregateScalarSamples(group.header.scalar_names[c], column));
  }
  return aggregates;
}

// Replays the online (Welford + P-square) aggregation over the group's rows
// in replication order — the same record sequence the original streamed
// sweep fed its OnlineAggregator, so the estimates are identical.
std::vector<MetricAggregate> OnlineGroupAggregates(const BinaryGroup& group) {
  OnlineAggregator aggregator;
  ReplicationRecord record;
  VisitScalarRows(group, [&](uint64_t row, const std::vector<double>& values) {
    record.replication = row;
    record.metrics.clear();
    for (size_t c = 0; c < values.size(); ++c) {
      record.metrics.emplace(group.header.scalar_names[c], values[c]);
    }
    aggregator.OnRecord(record);
  });
  return aggregator.Aggregates();
}

void RequireSameSchema(const BinaryFileHeader& a, const BinaryFileHeader& b,
                       const std::string& path) {
  if (a.kind != b.kind || a.scenario != b.scenario || a.base_seed != b.base_seed ||
      a.replications != b.replications || a.streamed != b.streamed ||
      a.param_keys != b.param_keys) {
    throw std::runtime_error("'" + path +
                             "' does not match the first input's campaign header "
                             "(scenario/seed/replications/streamed/param keys must agree)");
  }
}

}  // namespace

// Mirrors ResultSink::AggregateReplications for one fully-reported metric
// column (every row has every column in a binary group, so the two are the
// same math over the same sequence — hence the same bytes downstream).
MetricAggregate AggregateScalarSamples(const std::string& name,
                                       const std::vector<double>& values) {
  Summary summary;
  for (double v : values) {
    summary.Add(v);
  }
  MetricAggregate agg;
  agg.metric = name;
  agg.count = summary.count();
  agg.mean = summary.mean();
  agg.stddev = summary.stddev();
  agg.ci95_half = summary.count() > 1
                      ? StudentT95(summary.count() - 1) * summary.stddev() /
                            std::sqrt(static_cast<double>(summary.count()))
                      : 0.0;
  agg.min = summary.min();
  agg.max = summary.max();
  agg.p50 = ExactQuantile(values, 0.50);
  agg.p95 = ExactQuantile(values, 0.95);
  return agg;
}

BinaryResultsFile ParseBinaryResults(const std::string& bytes) {
  ByteReader reader(bytes);
  BinaryResultsFile file;
  file.header = DecodeFileHeader(reader);
  file.groups.reserve(file.header.n_groups);
  for (uint64_t g = 0; g < file.header.n_groups; ++g) {
    if (reader.GetU32() != kBinaryGroupMagic) {
      throw std::runtime_error("corrupt binary results file: bad group magic at group " +
                               std::to_string(g));
    }
    const uint64_t body_len = reader.GetU64();
    const size_t body_start = reader.pos();
    reader.GetRange(body_len);  // bounds check + advance
    BinaryGroup group;
    group.body = bytes.substr(body_start, body_len);
    const uint32_t stored_crc = reader.GetU32();
    if (BodyCrc(group.body) != stored_crc) {
      throw std::runtime_error("corrupt binary results file: group " + std::to_string(g) +
                               " CRC mismatch (damaged or rewritten bytes)");
    }
    ByteReader body_reader(group.body);
    group.header = DecodeGroupHeader(body_reader);
    group.extents_offset = body_reader.pos();
    if (group.header.param_values.size() != file.header.param_keys.size()) {
      throw std::runtime_error("corrupt binary results file: group " + std::to_string(g) +
                               " carries " + std::to_string(group.header.param_values.size()) +
                               " parameter values for " +
                               std::to_string(file.header.param_keys.size()) + " keys");
    }
    file.groups.push_back(std::move(group));
  }
  if (reader.remaining() != 0) {
    throw std::runtime_error("corrupt binary results file: trailing bytes after the last group");
  }
  return file;
}

BinaryResultsFile ReadBinaryResultsFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open '" + path + "'");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return ParseBinaryResults(bytes);
}

void ReadScalarColumn(const BinaryGroup& group, size_t column, std::vector<double>* out) {
  if (column >= group.header.scalar_names.size()) {
    throw std::out_of_range("scalar column " + std::to_string(column) + " outside schema of " +
                            std::to_string(group.header.scalar_names.size()));
  }
  out->clear();
  out->reserve(group.header.n_rows);
  std::vector<double> extent_values;
  WalkExtents(group, [&](ByteReader& reader, size_t rows) {
    for (size_t c = 0; c < group.header.scalar_names.size(); ++c) {
      if (c == column) {
        DecodeScalarChunk(reader, rows, &extent_values);
        out->insert(out->end(), extent_values.begin(), extent_values.end());
      } else {
        SkipChunk(reader);
      }
    }
    SkipDistColumns(reader, group.header.dist_names.size());
  });
}

void ReadDistColumn(const BinaryGroup& group, size_t dist,
                    std::vector<DistributionSnapshot>* out) {
  if (dist >= group.header.dist_names.size()) {
    throw std::out_of_range("distribution column " + std::to_string(dist) +
                            " outside schema of " +
                            std::to_string(group.header.dist_names.size()));
  }
  const DistGeometry& geometry = group.header.dist_geometries[dist];
  out->clear();
  out->reserve(group.header.n_rows);
  std::vector<uint64_t> underflow, overflow, total;
  std::vector<double> min, max, mean;
  WalkExtents(group, [&](ByteReader& reader, size_t rows) {
    for (size_t c = 0; c < group.header.scalar_names.size(); ++c) {
      SkipChunk(reader);
    }
    for (size_t d = 0; d < group.header.dist_names.size(); ++d) {
      if (d != dist) {
        for (int c = 0; c < 6; ++c) {
          SkipChunk(reader);
        }
        SkipBinsBlock(reader);
        continue;
      }
      DecodeU64Chunk(reader, rows, &underflow);
      DecodeU64Chunk(reader, rows, &overflow);
      DecodeU64Chunk(reader, rows, &total);
      DecodeScalarChunk(reader, rows, &min);
      DecodeScalarChunk(reader, rows, &max);
      DecodeScalarChunk(reader, rows, &mean);
      ByteReader bins = reader.GetRange(reader.GetVarint());
      for (size_t r = 0; r < rows; ++r) {
        DistributionSnapshot snapshot;
        snapshot.lo = geometry.lo;
        snapshot.bin_width = geometry.bin_width;
        DecodeBins(bins, geometry.n_bins, &snapshot.bins);
        snapshot.underflow = underflow[r];
        snapshot.overflow = overflow[r];
        snapshot.total = total[r];
        snapshot.min = min[r];
        snapshot.max = max[r];
        snapshot.mean = mean[r];
        out->push_back(std::move(snapshot));
      }
      if (bins.remaining() != 0) {
        throw std::runtime_error(
            "corrupt binary results file: histogram bin block longer than its rows");
      }
    }
  });
}

void VisitScalarRows(const BinaryGroup& group,
                     const std::function<void(uint64_t, const std::vector<double>&)>& visit) {
  const size_t n_scalars = group.header.scalar_names.size();
  std::vector<std::vector<double>> columns(n_scalars);
  std::vector<double> values(n_scalars);
  uint64_t row_base = 0;
  WalkExtents(group, [&](ByteReader& reader, size_t rows) {
    for (size_t c = 0; c < n_scalars; ++c) {
      DecodeScalarChunk(reader, rows, &columns[c]);
    }
    SkipDistColumns(reader, group.header.dist_names.size());
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < n_scalars; ++c) {
        values[c] = columns[c][r];
      }
      visit(row_base + r, values);
    }
    row_base += rows;
  });
}

std::string InspectBinary(const BinaryResultsFile& file) {
  const bool sweep = file.header.kind == BinaryFileKind::kSweep;
  std::string text = "wlansim binary results, format version " +
                     std::to_string(kBinaryFormatVersion) + "\n";
  text += "kind: " + std::string(sweep ? "sweep" : "campaign") + "\n";
  text += "scenario: " + file.header.scenario + "\n";
  text += "base_seed: " + std::to_string(file.header.base_seed) + "\n";
  text += "replications: " + std::to_string(file.header.replications) +
          (sweep ? " per grid point" : "") + "\n";
  text += "aggregation: " + std::string(file.header.streamed ? "online (streamed)" : "exact") +
          "\n";
  if (sweep) {
    std::string keys;
    for (const std::string& key : file.header.param_keys) {
      keys += (keys.empty() ? "" : ", ") + key;
    }
    text += "param keys: " + (keys.empty() ? "(none)" : keys) + "\n";
  }
  text += "groups: " + std::to_string(file.groups.size()) + "\n";
  if (!file.groups.empty()) {
    const BinaryGroupHeader& schema = file.groups.front().header;
    std::string scalars;
    for (const std::string& name : schema.scalar_names) {
      scalars += (scalars.empty() ? "" : ", ") + name;
    }
    std::string dists;
    for (const std::string& name : schema.dist_names) {
      dists += (dists.empty() ? "" : ", ") + name;
    }
    text += "scalar columns (" + std::to_string(schema.scalar_names.size()) + "): " +
            (scalars.empty() ? "(none)" : scalars) + "\n";
    text += "distribution columns (" + std::to_string(schema.dist_names.size()) + "): " +
            (dists.empty() ? "(none)" : dists) + "\n";
  }
  const size_t shown = std::min<size_t>(file.groups.size(), 20);
  for (size_t g = 0; g < shown; ++g) {
    const BinaryGroupHeader& header = file.groups[g].header;
    text += "group " + std::to_string(g) + ": point_index=" +
            std::to_string(header.point_index) + " seed=" + std::to_string(header.point_seed) +
            " rows=" + std::to_string(header.n_rows);
    for (size_t k = 0; k < header.param_values.size(); ++k) {
      text += " " + file.header.param_keys[k] + "=" + header.param_values[k];
    }
    text += "\n";
  }
  if (file.groups.size() > shown) {
    text += "... (" + std::to_string(file.groups.size() - shown) + " more groups)\n";
  }
  return text;
}

void MergeBinaryFiles(const std::vector<std::string>& input_paths, std::ostream& out) {
  if (input_paths.empty()) {
    throw std::runtime_error("merge needs at least one input file");
  }
  std::vector<BinaryResultsFile> files;
  files.reserve(input_paths.size());
  for (const std::string& path : input_paths) {
    files.push_back(ReadBinaryResultsFile(path));
    if (files.back().header.kind != BinaryFileKind::kSweep) {
      throw std::runtime_error("'" + path +
                               "' is a campaign file; merge joins sweep shards "
                               "(a campaign already has its single group)");
    }
    RequireSameSchema(files.front().header, files.back().header, path);
  }
  // Shard merge is pure reordering: groups are byte-copied in ascending
  // grid-point order under a header whose group count is the sum, which is
  // exactly what an unsharded run would have written.
  std::map<uint64_t, const BinaryGroup*> by_point;
  for (const BinaryResultsFile& file : files) {
    for (const BinaryGroup& group : file.groups) {
      if (!by_point.emplace(group.header.point_index, &group).second) {
        throw std::runtime_error("duplicate grid point " +
                                 std::to_string(group.header.point_index) +
                                 " across the input shards");
      }
    }
  }
  BinaryFileHeader header = files.front().header;
  header.n_groups = by_point.size();
  std::string bytes;
  EncodeFileHeader(bytes, header);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  for (const auto& [point_index, group] : by_point) {
    std::string framed;
    framed.reserve(group->body.size() + 16);
    PutU32(framed, kBinaryGroupMagic);
    PutU64(framed, group->body.size());
    framed += group->body;
    PutU32(framed, BodyCrc(group->body));
    out.write(framed.data(), static_cast<std::streamsize>(framed.size()));
  }
  out.flush();
  if (!out) {
    throw std::runtime_error("binary results write failed");
  }
}

std::string ExportBinaryCsv(const BinaryResultsFile& file) {
  if (file.header.kind == BinaryFileKind::kCampaign) {
    if (file.groups.size() != 1) {
      throw std::runtime_error("corrupt binary results file: campaign file with " +
                               std::to_string(file.groups.size()) + " groups");
    }
    const BinaryGroup& group = file.groups.front();
    // Matches StreamingCsvWriter bytes: no rows, no output (the streaming
    // writer's header goes out with the first record).
    if (group.header.n_rows == 0) {
      return "";
    }
    std::string csv = "replication";
    for (const std::string& name : group.header.scalar_names) {
      csv += ",";
      csv += CsvField(name);
    }
    csv += "\n";
    VisitScalarRows(group, [&](uint64_t row, const std::vector<double>& values) {
      csv += std::to_string(row);
      for (double v : values) {
        csv += ",";
        csv += CsvNum(v);
      }
      csv += "\n";
    });
    return csv;
  }
  std::string csv = ResultSink::SweepLongCsvHeader(file.header.param_keys, file.header.streamed);
  for (const BinaryGroup& group : file.groups) {
    const std::vector<MetricAggregate> aggregates =
        file.header.streamed ? OnlineGroupAggregates(group) : ExactGroupAggregates(group);
    csv += ResultSink::SweepLongCsvRows(group.header.param_values, aggregates);
  }
  return csv;
}

std::string AggregateBinary(const std::vector<BinaryResultsFile>& files) {
  std::vector<const BinaryResultsFile*> borrowed;
  borrowed.reserve(files.size());
  for (const BinaryResultsFile& file : files) {
    borrowed.push_back(&file);
  }
  return AggregateBinary(borrowed);
}

std::string AggregateBinary(const std::vector<const BinaryResultsFile*>& files) {
  if (files.empty()) {
    throw std::runtime_error("aggregate needs at least one input file");
  }
  const BinaryFileHeader& reference = files.front()->header;
  for (const BinaryResultsFile* file : files) {
    if (file->header.kind != reference.kind || file->header.scenario != reference.scenario ||
        file->header.param_keys != reference.param_keys) {
      throw std::runtime_error(
          "aggregate inputs must share kind, scenario, and sweep parameter keys");
    }
  }
  if (reference.kind == BinaryFileKind::kCampaign) {
    // One sample set: the files' columns concatenated in argument order.
    const std::vector<std::string>& names = files.front()->groups.front().header.scalar_names;
    for (const BinaryResultsFile* file : files) {
      if (file->groups.size() != 1 || file->groups.front().header.scalar_names != names) {
        throw std::runtime_error("aggregate inputs must share their scalar column schema");
      }
    }
    std::vector<MetricAggregate> aggregates;
    aggregates.reserve(names.size());
    std::vector<double> column, file_column;
    for (size_t c = 0; c < names.size(); ++c) {
      column.clear();
      for (const BinaryResultsFile* file : files) {
        ReadScalarColumn(file->groups.front(), c, &file_column);
        column.insert(column.end(), file_column.begin(), file_column.end());
      }
      aggregates.push_back(AggregateScalarSamples(names[c], column));
    }
    return ResultSink::AggregatesToCsv(aggregates);
  }
  // Sweep: one block of rows per grid point, ascending, shards disjoint.
  std::map<uint64_t, const BinaryGroup*> by_point;
  for (const BinaryResultsFile* file : files) {
    for (const BinaryGroup& group : file->groups) {
      if (!by_point.emplace(group.header.point_index, &group).second) {
        throw std::runtime_error("duplicate grid point " +
                                 std::to_string(group.header.point_index) +
                                 " across the inputs");
      }
    }
  }
  std::string csv = ResultSink::SweepLongCsvHeader(reference.param_keys, false);
  for (const auto& [point_index, group] : by_point) {
    csv += ResultSink::SweepLongCsvRows(group->header.param_values, ExactGroupAggregates(*group));
  }
  return csv;
}

}  // namespace wlansim
