#include "results/binary_format.h"

#include <bit>
#include <stdexcept>

namespace wlansim {
namespace {

[[noreturn]] void ThrowTruncated(const char* what) {
  throw std::runtime_error(std::string("truncated binary results file: unexpected end of data "
                                       "while reading ") +
                           what);
}

}  // namespace

void PutVarint(std::string& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void PutU16(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void PutU32(std::string& out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void PutU64(std::string& out, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((v >> shift) & 0xFF));
  }
}

void PutF64(std::string& out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

void PutString(std::string& out, const std::string& s) {
  PutVarint(out, s.size());
  out.append(s);
}

const char* ByteReader::Need(size_t n) {
  if (size_ - pos_ < n) {
    ThrowTruncated("a fixed-width field");
  }
  const char* at = data_ + pos_;
  pos_ += n;
  return at;
}

uint64_t ByteReader::GetVarint() {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos_ >= size_) {
      ThrowTruncated("a varint");
    }
    const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      return v;
    }
  }
  throw std::runtime_error("corrupt binary results file: varint longer than 64 bits");
}

uint8_t ByteReader::GetU8() {
  return static_cast<uint8_t>(*Need(1));
}

uint16_t ByteReader::GetU16() {
  const char* p = Need(2);
  return static_cast<uint16_t>(static_cast<uint8_t>(p[0]) |
                               (static_cast<uint16_t>(static_cast<uint8_t>(p[1])) << 8));
}

uint32_t ByteReader::GetU32() {
  const char* p = Need(4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t ByteReader::GetU64() {
  const char* p = Need(8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

double ByteReader::GetF64() {
  return std::bit_cast<double>(GetU64());
}

std::string ByteReader::GetString() {
  const uint64_t n = GetVarint();
  if (size_ - pos_ < n) {
    ThrowTruncated("a string");
  }
  std::string s(data_ + pos_, n);
  pos_ += n;
  return s;
}

ByteReader ByteReader::GetRange(size_t n) {
  if (size_ - pos_ < n) {
    ThrowTruncated("a chunk payload");
  }
  ByteReader range(data_ + pos_, n);
  pos_ += n;
  return range;
}

namespace {

// A double is delta-encodable only when int64 round-trips its exact bit
// pattern: -0.0, NaNs, fractions and >2^53 magnitudes all fail the bitwise
// check and fall back to raw64.
bool IntegralBits(uint64_t bits, int64_t* out) {
  const double v = std::bit_cast<double>(bits);
  if (!(v >= -9007199254740992.0 && v <= 9007199254740992.0)) {
    return false;  // also rejects NaN
  }
  const int64_t i = static_cast<int64_t>(v);
  if (std::bit_cast<uint64_t>(static_cast<double>(i)) != bits) {
    return false;
  }
  *out = i;
  return true;
}

void PutChunk(std::string& out, ChunkEncoding encoding, const std::string& payload) {
  out.push_back(static_cast<char>(encoding));
  PutVarint(out, payload.size());
  out.append(payload);
}

ChunkEncoding GetChunkHeader(ByteReader& in, ByteReader* payload) {
  const uint8_t tag = in.GetU8();
  if (tag > static_cast<uint8_t>(ChunkEncoding::kRaw64)) {
    throw std::runtime_error("corrupt binary results file: unknown chunk encoding " +
                             std::to_string(tag));
  }
  const uint64_t payload_len = in.GetVarint();
  *payload = in.GetRange(payload_len);
  return static_cast<ChunkEncoding>(tag);
}

}  // namespace

void EncodeScalarChunk(std::string& out, const double* values, size_t n) {
  std::vector<uint64_t> bits(n);
  for (size_t i = 0; i < n; ++i) {
    bits[i] = std::bit_cast<uint64_t>(values[i]);
  }
  bool all_equal = n > 0;
  for (size_t i = 1; i < n && all_equal; ++i) {
    all_equal = bits[i] == bits[0];
  }
  std::vector<int64_t> integral(n);
  bool all_integral = true;
  for (size_t i = 0; i < n && all_integral; ++i) {
    all_integral = IntegralBits(bits[i], &integral[i]);
  }

  std::string payload;
  if (all_equal) {
    PutU64(payload, bits[0]);
    PutChunk(out, ChunkEncoding::kConstant, payload);
  } else if (all_integral) {
    int64_t prev = 0;
    for (size_t i = 0; i < n; ++i) {
      PutVarint(payload, ZigzagEncode(integral[i] - prev));
      prev = integral[i];
    }
    PutChunk(out, ChunkEncoding::kIntDelta, payload);
  } else {
    payload.reserve(8 * n);
    for (size_t i = 0; i < n; ++i) {
      PutU64(payload, bits[i]);
    }
    PutChunk(out, ChunkEncoding::kRaw64, payload);
  }
}

void DecodeScalarChunk(ByteReader& in, size_t n, std::vector<double>* out) {
  ByteReader payload(nullptr, 0);
  const ChunkEncoding encoding = GetChunkHeader(in, &payload);
  out->clear();
  out->reserve(n);
  switch (encoding) {
    case ChunkEncoding::kConstant: {
      const double v = payload.GetF64();
      out->assign(n, v);
      break;
    }
    case ChunkEncoding::kIntDelta: {
      int64_t prev = 0;
      for (size_t i = 0; i < n; ++i) {
        prev += ZigzagDecode(payload.GetVarint());
        out->push_back(static_cast<double>(prev));
      }
      break;
    }
    case ChunkEncoding::kRaw64: {
      for (size_t i = 0; i < n; ++i) {
        out->push_back(payload.GetF64());
      }
      break;
    }
  }
  if (payload.remaining() != 0) {
    throw std::runtime_error("corrupt binary results file: chunk payload longer than its "
                             "declared row count");
  }
}

void EncodeU64Chunk(std::string& out, const uint64_t* values, size_t n) {
  // Unsigned counts always fit one of two exact encodings: a constant, or
  // zigzag varints of the wrapping int64 deltas (two's-complement wraparound
  // cancels on decode, so even full-range u64 values round-trip exactly).
  bool all_equal = n > 0;
  for (size_t i = 1; i < n && all_equal; ++i) {
    all_equal = values[i] == values[0];
  }
  std::string payload;
  if (all_equal) {
    PutU64(payload, values[0]);
    PutChunk(out, ChunkEncoding::kConstant, payload);
    return;
  }
  uint64_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    PutVarint(payload, ZigzagEncode(static_cast<int64_t>(values[i] - prev)));
    prev = values[i];
  }
  PutChunk(out, ChunkEncoding::kIntDelta, payload);
}

void DecodeU64Chunk(ByteReader& in, size_t n, std::vector<uint64_t>* out) {
  ByteReader payload(nullptr, 0);
  const ChunkEncoding encoding = GetChunkHeader(in, &payload);
  out->clear();
  out->reserve(n);
  switch (encoding) {
    case ChunkEncoding::kConstant: {
      const uint64_t v = payload.GetU64();
      out->assign(n, v);
      break;
    }
    case ChunkEncoding::kIntDelta: {
      uint64_t prev = 0;
      for (size_t i = 0; i < n; ++i) {
        prev += static_cast<uint64_t>(ZigzagDecode(payload.GetVarint()));
        out->push_back(prev);
      }
      break;
    }
    case ChunkEncoding::kRaw64: {
      for (size_t i = 0; i < n; ++i) {
        out->push_back(payload.GetU64());
      }
      break;
    }
  }
  if (payload.remaining() != 0) {
    throw std::runtime_error("corrupt binary results file: chunk payload longer than its "
                             "declared row count");
  }
}

void EncodeBins(std::string& out, const uint64_t* bins, size_t n) {
  size_t i = 0;
  while (i < n) {
    if (bins[i] == 0) {
      size_t run = 1;
      while (i + run < n && bins[i + run] == 0) {
        ++run;
      }
      out.push_back(0);
      PutVarint(out, run);
      i += run;
    } else {
      PutVarint(out, bins[i]);
      ++i;
    }
  }
}

void DecodeBins(ByteReader& in, size_t n, std::vector<uint64_t>* out) {
  out->clear();
  out->reserve(n);
  while (out->size() < n) {
    const uint64_t v = in.GetVarint();
    if (v == 0) {
      const uint64_t run = in.GetVarint();
      if (run == 0 || out->size() + run > n) {
        throw std::runtime_error("corrupt binary results file: histogram zero-run overruns "
                                 "its bin count");
      }
      out->insert(out->end(), run, 0);
    } else {
      out->push_back(v);
    }
  }
}

void EncodeFileHeader(std::string& out, const BinaryFileHeader& header) {
  PutU32(out, kBinaryFileMagic);
  PutU16(out, kBinaryFormatVersion);
  out.push_back(static_cast<char>(header.kind));
  out.push_back(static_cast<char>(header.streamed ? 1 : 0));
  PutU64(out, header.n_groups);
  PutU64(out, header.base_seed);
  PutU64(out, header.replications);
  PutString(out, header.scenario);
  PutVarint(out, header.param_keys.size());
  for (const std::string& key : header.param_keys) {
    PutString(out, key);
  }
}

BinaryFileHeader DecodeFileHeader(ByteReader& in) {
  if (in.GetU32() != kBinaryFileMagic) {
    throw std::runtime_error("not a wlansim binary results file (bad magic)");
  }
  const uint16_t version = in.GetU16();
  if (version != kBinaryFormatVersion) {
    throw std::runtime_error("unsupported binary results format version " +
                             std::to_string(version) + " (this build reads version " +
                             std::to_string(kBinaryFormatVersion) + ")");
  }
  BinaryFileHeader header;
  const uint8_t kind = in.GetU8();
  if (kind > 1) {
    throw std::runtime_error("corrupt binary results file: unknown file kind " +
                             std::to_string(kind));
  }
  header.kind = static_cast<BinaryFileKind>(kind);
  header.streamed = in.GetU8() != 0;
  header.n_groups = in.GetU64();
  header.base_seed = in.GetU64();
  header.replications = in.GetU64();
  header.scenario = in.GetString();
  const uint64_t n_keys = in.GetVarint();
  header.param_keys.reserve(n_keys);
  for (uint64_t i = 0; i < n_keys; ++i) {
    header.param_keys.push_back(in.GetString());
  }
  return header;
}

void EncodeGroupHeader(std::string& out, const BinaryGroupHeader& header) {
  PutU64(out, header.point_index);
  PutU64(out, header.point_seed);
  PutVarint(out, header.param_values.size());
  for (const std::string& value : header.param_values) {
    PutString(out, value);
  }
  PutU64(out, header.n_rows);
  PutVarint(out, header.scalar_names.size());
  for (const std::string& name : header.scalar_names) {
    PutString(out, name);
  }
  PutVarint(out, header.dist_names.size());
  for (const std::string& name : header.dist_names) {
    PutString(out, name);
  }
  for (const DistGeometry& geometry : header.dist_geometries) {
    PutF64(out, geometry.lo);
    PutF64(out, geometry.bin_width);
    PutU64(out, geometry.n_bins);
  }
}

BinaryGroupHeader DecodeGroupHeader(ByteReader& in) {
  BinaryGroupHeader header;
  header.point_index = in.GetU64();
  header.point_seed = in.GetU64();
  const uint64_t n_params = in.GetVarint();
  header.param_values.reserve(n_params);
  for (uint64_t i = 0; i < n_params; ++i) {
    header.param_values.push_back(in.GetString());
  }
  header.n_rows = in.GetU64();
  const uint64_t n_scalars = in.GetVarint();
  header.scalar_names.reserve(n_scalars);
  for (uint64_t i = 0; i < n_scalars; ++i) {
    header.scalar_names.push_back(in.GetString());
  }
  const uint64_t n_dists = in.GetVarint();
  header.dist_names.reserve(n_dists);
  for (uint64_t i = 0; i < n_dists; ++i) {
    header.dist_names.push_back(in.GetString());
  }
  header.dist_geometries.reserve(n_dists);
  for (uint64_t i = 0; i < n_dists; ++i) {
    DistGeometry geometry;
    geometry.lo = in.GetF64();
    geometry.bin_width = in.GetF64();
    geometry.n_bins = in.GetU64();
    header.dist_geometries.push_back(geometry);
  }
  return header;
}

}  // namespace wlansim
