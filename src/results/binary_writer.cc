#include "results/binary_writer.h"

#include <bit>
#include <stdexcept>

#include "crypto/crc32.h"

namespace wlansim {
namespace {

bool SameGeometry(const DistGeometry& geometry, const DistributionSnapshot& snapshot) {
  // Bitwise comparison: the geometry is schema, and schema equality must be
  // exact (0.0 vs -0.0 bounds would decode into a different histogram).
  return std::bit_cast<uint64_t>(geometry.lo) == std::bit_cast<uint64_t>(snapshot.lo) &&
         std::bit_cast<uint64_t>(geometry.bin_width) ==
             std::bit_cast<uint64_t>(snapshot.bin_width) &&
         geometry.n_bins == snapshot.bins.size();
}

}  // namespace

void GroupEncoder::FixSchema(const ReplicationRecord& record) {
  scalar_names_.reserve(record.metrics.size());
  for (const auto& [name, value] : record.metrics) {
    scalar_names_.push_back(name);
  }
  dist_names_.reserve(record.distributions.size());
  for (const auto& [name, snapshot] : record.distributions) {
    dist_names_.push_back(name);
    DistGeometry geometry;
    geometry.lo = snapshot.lo;
    geometry.bin_width = snapshot.bin_width;
    geometry.n_bins = snapshot.bins.size();
    geometries_.push_back(geometry);
  }
  scalar_cols_.resize(scalar_names_.size());
  for (std::vector<double>& col : scalar_cols_) {
    col.reserve(kExtentRows);
  }
  dist_cols_.resize(dist_names_.size());
  schema_fixed_ = true;
}

void GroupEncoder::CheckSchema(const ReplicationRecord& record) const {
  // Same contract as the streaming CSV writer: the schema went out with the
  // first record, so a drifting metric set cannot be accommodated.
  if (record.metrics.size() != scalar_names_.size() ||
      record.distributions.size() != dist_names_.size()) {
    throw std::runtime_error("replication " + std::to_string(record.replication) + " reports " +
                             std::to_string(record.metrics.size()) + " metrics and " +
                             std::to_string(record.distributions.size()) +
                             " distributions; the binary group schema fixed " +
                             std::to_string(scalar_names_.size()) + " and " +
                             std::to_string(dist_names_.size()));
  }
  size_t i = 0;
  for (const auto& [name, value] : record.metrics) {
    if (name != scalar_names_[i]) {
      throw std::runtime_error("replication " + std::to_string(record.replication) +
                               " reports metric '" + name +
                               "' where the binary group schema has '" + scalar_names_[i] + "'");
    }
    ++i;
  }
  i = 0;
  for (const auto& [name, snapshot] : record.distributions) {
    if (name != dist_names_[i]) {
      throw std::runtime_error("replication " + std::to_string(record.replication) +
                               " reports distribution '" + name +
                               "' where the binary group schema has '" + dist_names_[i] + "'");
    }
    if (!SameGeometry(geometries_[i], snapshot)) {
      throw std::runtime_error("replication " + std::to_string(record.replication) +
                               " changed the bin geometry of distribution '" + name +
                               "'; the binary group schema fixed it at the first record");
    }
    ++i;
  }
}

void GroupEncoder::AddRecord(const ReplicationRecord& record) {
  if (!schema_fixed_) {
    FixSchema(record);
  } else {
    CheckSchema(record);
  }
  size_t i = 0;
  for (const auto& [name, value] : record.metrics) {
    scalar_cols_[i++].push_back(value);
  }
  i = 0;
  for (const auto& [name, snapshot] : record.distributions) {
    DistColumns& cols = dist_cols_[i++];
    cols.underflow.push_back(snapshot.underflow);
    cols.overflow.push_back(snapshot.overflow);
    cols.total.push_back(snapshot.total);
    cols.min.push_back(snapshot.min);
    cols.max.push_back(snapshot.max);
    cols.mean.push_back(snapshot.mean);
    EncodeBins(cols.bins_rle, snapshot.bins.data(), snapshot.bins.size());
  }
  ++n_rows_;
  if (++extent_rows_ == kExtentRows) {
    FlushExtent();
  }
}

void GroupEncoder::FlushExtent() {
  if (extent_rows_ == 0) {
    return;
  }
  for (std::vector<double>& col : scalar_cols_) {
    EncodeScalarChunk(extents_, col.data(), col.size());
    col.clear();
  }
  for (DistColumns& cols : dist_cols_) {
    EncodeU64Chunk(extents_, cols.underflow.data(), cols.underflow.size());
    EncodeU64Chunk(extents_, cols.overflow.data(), cols.overflow.size());
    EncodeU64Chunk(extents_, cols.total.data(), cols.total.size());
    EncodeScalarChunk(extents_, cols.min.data(), cols.min.size());
    EncodeScalarChunk(extents_, cols.max.data(), cols.max.size());
    EncodeScalarChunk(extents_, cols.mean.data(), cols.mean.size());
    // Length prefix lets a reader skip the whole bins block of an extent.
    PutVarint(extents_, cols.bins_rle.size());
    extents_ += cols.bins_rle;
    cols.underflow.clear();
    cols.overflow.clear();
    cols.total.clear();
    cols.min.clear();
    cols.max.clear();
    cols.mean.clear();
    cols.bins_rle.clear();
  }
  extent_rows_ = 0;
}

std::string GroupEncoder::FinishFramed(uint64_t point_index, uint64_t point_seed,
                                       std::vector<std::string> param_values) {
  FlushExtent();
  BinaryGroupHeader header;
  header.point_index = point_index;
  header.point_seed = point_seed;
  header.param_values = std::move(param_values);
  header.n_rows = n_rows_;
  header.scalar_names = scalar_names_;
  header.dist_names = dist_names_;
  header.dist_geometries = geometries_;

  std::string body;
  EncodeGroupHeader(body, header);
  body += extents_;
  extents_.clear();

  std::string framed;
  framed.reserve(body.size() + 16);
  PutU32(framed, kBinaryGroupMagic);
  PutU64(framed, body.size());
  framed += body;
  PutU32(framed, Crc32({reinterpret_cast<const uint8_t*>(body.data()), body.size()}));
  return framed;
}

void BinaryCampaignWriter::BeginCampaign(const CampaignManifest& manifest) {
  if (begun_) {
    throw std::logic_error(
        "BinaryCampaignWriter attached to a second campaign: one writer, one stream");
  }
  begun_ = true;
  manifest_ = manifest;
  BinaryFileHeader header;
  header.kind = BinaryFileKind::kCampaign;
  header.streamed = streamed_;
  header.n_groups = 1;
  header.base_seed = manifest.base_seed;
  header.replications = manifest.replications;
  header.scenario = manifest.scenario;
  std::string bytes;
  EncodeFileHeader(bytes, header);
  out_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void BinaryCampaignWriter::OnRecord(const ReplicationRecord& record) {
  encoder_.AddRecord(record);
}

void BinaryCampaignWriter::EndCampaign() {
  const std::string framed = encoder_.FinishFramed(0, manifest_.base_seed, {});
  out_.write(framed.data(), static_cast<std::streamsize>(framed.size()));
  out_.flush();
  if (!out_) {
    throw std::runtime_error("binary results write failed");
  }
}

void BinarySweepWriter::BeginSweep(const SweepManifest& manifest) {
  if (begun_) {
    throw std::logic_error(
        "BinarySweepWriter attached to a second sweep: one writer, one stream");
  }
  begun_ = true;
  BinaryFileHeader header;
  header.kind = BinaryFileKind::kSweep;
  header.streamed = manifest.streamed;
  header.n_groups = manifest.shard_points;
  header.base_seed = manifest.base_seed;
  header.replications = manifest.replications;
  header.scenario = manifest.scenario;
  header.param_keys = manifest.param_keys;
  std::string bytes;
  EncodeFileHeader(bytes, header);
  out_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::unique_ptr<ResultConsumer> BinarySweepWriter::MakePointConsumer(const SweepPointInfo& info) {
  (void)info;
  return std::make_unique<GroupEncoderConsumer>();
}

void BinarySweepWriter::OnPointDone(const SweepPointInfo& info,
                                    const std::vector<MetricAggregate>& aggregates,
                                    ResultConsumer* point_consumer) {
  (void)aggregates;
  // The engine hands back the consumer MakePointConsumer created, so the
  // cast recovers our own encoder.
  GroupEncoderConsumer& consumer = *static_cast<GroupEncoderConsumer*>(point_consumer);
  std::vector<std::string> param_values;
  param_values.reserve(info.point.size());
  for (const auto& [key, value] : info.point) {
    param_values.push_back(value);
  }
  const std::string framed = consumer.encoder().FinishFramed(info.point_index, info.point_seed,
                                                             std::move(param_values));
  out_.write(framed.data(), static_cast<std::streamsize>(framed.size()));
}

void BinarySweepWriter::EndSweep() {
  out_.flush();
  if (!out_) {
    throw std::runtime_error("binary results write failed");
  }
}

}  // namespace wlansim
