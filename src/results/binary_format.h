// The wlansim binary columnar result format ("WLSR"), the at-scale
// alternative to long-format CSV. A file is a self-describing schema header
// plus one *group* per campaign (campaign files have exactly one group;
// sweep files have one group per grid point, in grid order). Inside a
// group, replication records are split into fixed-size *extents* of
// column chunks: per metric, a typed run of fixed-width values with a
// per-chunk encoding picked by the writer (constant / zigzag-delta varint
// for integral runs / raw little-endian 64-bit), and per histogram the full
// DistributionSnapshot — bins and all — instead of the flattened summary
// columns CSV keeps. Every group is CRC-32 framed and length-prefixed, so
// readers can skip or byte-copy groups without decoding them; that is what
// makes shard merging a pure ordered byte concatenation, byte-identical to
// the unsharded file.
//
// The full specification (layout, versioning rules, merge contract) lives
// in docs/results.md; this header is the single in-tree implementation of
// it. Encoding is platform-independent (explicit little-endian, no struct
// dumps) and deterministic: the bytes are a pure function of the record
// stream, never of thread count, shard split, or write chunking.

#ifndef WLANSIM_RESULTS_BINARY_FORMAT_H_
#define WLANSIM_RESULTS_BINARY_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace wlansim {

// ---- format constants ------------------------------------------------------

// "WLSR" / "GRP0" little-endian.
inline constexpr uint32_t kBinaryFileMagic = 0x52534C57u;
inline constexpr uint32_t kBinaryGroupMagic = 0x30505247u;
inline constexpr uint16_t kBinaryFormatVersion = 1;

// Rows buffered per extent. Chosen so an extent's working set (columns x
// 4096 doubles) stays cache- and memory-friendly while the per-extent
// framing overhead amortizes to well under a byte per row.
inline constexpr uint64_t kExtentRows = 4096;

// FileHeader::kind.
enum class BinaryFileKind : uint8_t {
  kCampaign = 0,  // one group, point_index 0, no parameter columns
  kSweep = 1,     // one group per grid point, ascending point_index
};

// Per-chunk scalar encodings. The writer always picks the smallest
// applicable encoding in this order, so the choice — and therefore the
// bytes — is deterministic.
enum class ChunkEncoding : uint8_t {
  kConstant = 0,     // payload: one 64-bit value; every row is bit-identical
  kIntDelta = 1,     // payload: zigzag(delta) varints; rows are integral
  kRaw64 = 2,        // payload: row_count x 64-bit little-endian
};

// ---- schema structs --------------------------------------------------------

struct BinaryFileHeader {
  BinaryFileKind kind = BinaryFileKind::kCampaign;
  bool streamed = false;  // online (P-square) aggregation campaign/sweep
  uint64_t n_groups = 0;
  uint64_t base_seed = 1;
  uint64_t replications = 0;  // per group
  std::string scenario;
  std::vector<std::string> param_keys;  // sweep axis keys; empty for campaigns
};

// Fixed-bin geometry of one distribution column; identical across the rows
// of a group (the writer enforces this the way the CSV writer enforces a
// fixed column set).
struct DistGeometry {
  double lo = 0.0;
  double bin_width = 1.0;
  uint64_t n_bins = 0;
};

struct BinaryGroupHeader {
  uint64_t point_index = 0;  // global grid index; 0 for campaigns
  uint64_t point_seed = 0;   // the group's campaign seed
  std::vector<std::string> param_values;  // aligned with the file's param_keys
  uint64_t n_rows = 0;
  std::vector<std::string> scalar_names;  // sorted (map order), fixed by row 0
  std::vector<std::string> dist_names;    // sorted (map order), fixed by row 0
  std::vector<DistGeometry> dist_geometries;  // aligned with dist_names
};

// ---- primitive codecs ------------------------------------------------------

// LEB128 varint (7 bits per byte, little groups first).
void PutVarint(std::string& out, uint64_t v);
// Zigzag maps signed deltas onto the varint-friendly unsigneds.
uint64_t ZigzagEncode(int64_t v);
int64_t ZigzagDecode(uint64_t v);

void PutU16(std::string& out, uint16_t v);
void PutU32(std::string& out, uint32_t v);
void PutU64(std::string& out, uint64_t v);
void PutF64(std::string& out, double v);
void PutString(std::string& out, const std::string& s);  // varint length + bytes

// Bounds-checked sequential reader over a byte range. Every getter throws
// std::runtime_error mentioning "truncated" when the range runs out — the
// uniform corruption diagnostic for damaged or cut-off files.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::string& bytes) : ByteReader(bytes.data(), bytes.size()) {}

  uint64_t GetVarint();
  uint8_t GetU8();
  uint16_t GetU16();
  uint32_t GetU32();
  uint64_t GetU64();
  double GetF64();
  std::string GetString();
  // Raw sub-range of `n` bytes (for nested chunk payloads).
  ByteReader GetRange(size_t n);

  size_t remaining() const { return size_ - pos_; }
  size_t pos() const { return pos_; }

 private:
  const char* Need(size_t n);

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

// ---- chunk codecs ----------------------------------------------------------

// Scalar chunk: `n` doubles (or u64 counts reinterpreted) under the
// deterministic encoding choice documented on ChunkEncoding. The payload is
// length-prefixed so a reader can skip columns it does not need.
void EncodeScalarChunk(std::string& out, const double* values, size_t n);
void EncodeU64Chunk(std::string& out, const uint64_t* values, size_t n);
void DecodeScalarChunk(ByteReader& in, size_t n, std::vector<double>* out);
void DecodeU64Chunk(ByteReader& in, size_t n, std::vector<uint64_t>* out);

// Histogram bin block: `n` bin counts with zero-run-length compression —
// a nonzero count is a plain varint, a zero opens a run encoded as
// 0x00 + varint(run length). Latency-style histograms are mostly empty
// bins, so this collapses them to a handful of bytes per row.
void EncodeBins(std::string& out, const uint64_t* bins, size_t n);
void DecodeBins(ByteReader& in, size_t n, std::vector<uint64_t>* out);

// ---- header codecs ---------------------------------------------------------

// File header layout (fixed-width fields first so n_groups sits at a known
// offset, though writers are expected to know the group count upfront):
//   magic u32 | version u16 | kind u8 | streamed u8 | n_groups u64 |
//   base_seed u64 | replications u64 | scenario str | n_param_keys varint |
//   param_key str ...
void EncodeFileHeader(std::string& out, const BinaryFileHeader& header);
// Throws std::runtime_error on a bad magic ("not a wlansim binary results
// file") or an unsupported version.
BinaryFileHeader DecodeFileHeader(ByteReader& in);

// Group body layout (the bytes the CRC covers):
//   point_index u64 | point_seed u64 | n_params varint | value str ... |
//   n_rows u64 | n_scalars varint | name str ... | n_dists varint |
//   name str ... | (lo f64 | bin_width f64 | n_bins u64) per dist |
//   extents ...
// On the wire the body is framed as:
//   group magic u32 | body_len u64 | body | crc32(body) u32
void EncodeGroupHeader(std::string& out, const BinaryGroupHeader& header);
BinaryGroupHeader DecodeGroupHeader(ByteReader& in);

}  // namespace wlansim

#endif  // WLANSIM_RESULTS_BINARY_FORMAT_H_
