#include "runner/scenario.h"

#include <algorithm>
#include <stdexcept>

namespace wlansim {
namespace {

[[noreturn]] void ThrowBadValue(const std::string& key, const std::string& value,
                                const char* expected) {
  throw std::invalid_argument("parameter '" + key + "': cannot parse '" + value + "' as " +
                             expected);
}

}  // namespace

void ScenarioParams::Set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool ScenarioParams::Has(const std::string& key) const {
  return entries_.count(key) != 0;
}

std::string ScenarioParams::GetString(const std::string& key, std::string def) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? std::move(def) : it->second;
}

double ScenarioParams::GetDouble(const std::string& key, double def) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return def;
  }
  try {
    size_t consumed = 0;
    const double v = std::stod(it->second, &consumed);
    if (consumed != it->second.size()) {
      ThrowBadValue(key, it->second, "a number");
    }
    return v;
  } catch (const std::invalid_argument&) {
    ThrowBadValue(key, it->second, "a number");
  } catch (const std::out_of_range&) {
    ThrowBadValue(key, it->second, "a number");
  }
}

int64_t ScenarioParams::GetInt(const std::string& key, int64_t def) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return def;
  }
  try {
    size_t consumed = 0;
    const int64_t v = std::stoll(it->second, &consumed);
    if (consumed != it->second.size()) {
      ThrowBadValue(key, it->second, "an integer");
    }
    return v;
  } catch (const std::invalid_argument&) {
    ThrowBadValue(key, it->second, "an integer");
  } catch (const std::out_of_range&) {
    ThrowBadValue(key, it->second, "an integer");
  }
}

uint64_t ScenarioParams::GetUint(const std::string& key, uint64_t def) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return def;
  }
  const int64_t v = GetInt(key, 0);
  if (v < 0) {
    ThrowBadValue(key, it->second, "a non-negative integer");
  }
  return static_cast<uint64_t>(v);
}

bool ScenarioParams::GetBool(const std::string& key, bool def) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return def;
  }
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "0" || v == "false" || v == "no" || v == "off") {
    return false;
  }
  ThrowBadValue(key, v, "a boolean (true/false)");
}

void Scenario::ValidateParams(const ScenarioParams& params) const {
  const std::vector<ParamSpec> specs = param_specs();
  for (const auto& [key, value] : params.entries()) {
    const bool known = std::any_of(specs.begin(), specs.end(),
                                   [&key](const ParamSpec& s) { return s.name == key; });
    if (!known) {
      std::string msg = "scenario '" + std::string(name()) + "' has no parameter '" + key +
                        "'; known parameters:";
      for (const ParamSpec& s : specs) {
        msg += " " + s.name;
      }
      throw std::invalid_argument(msg);
    }
    (void)value;
  }
}

}  // namespace wlansim
