#include "runner/scenario_registry.h"

#include <stdexcept>
#include <utility>

namespace wlansim {

void ScenarioRegistry::Register(std::unique_ptr<Scenario> scenario) {
  std::string name(scenario->name());
  auto [it, inserted] = scenarios_.emplace(std::move(name), std::move(scenario));
  if (!inserted) {
    throw std::invalid_argument("scenario '" + it->first + "' registered twice");
  }
}

void ScenarioRegistry::Register(std::string name, std::string description,
                                std::vector<ParamSpec> param_specs,
                                FunctionScenario::RunFn fn) {
  Register(std::make_unique<FunctionScenario>(std::move(name), std::move(description),
                                              std::move(param_specs), std::move(fn)));
}

const Scenario* ScenarioRegistry::Find(std::string_view name) const {
  auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ScenarioRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(scenarios_.size());
  for (const auto& [name, scenario] : scenarios_) {
    names.push_back(name);
  }
  return names;
}

ScenarioRegistry& ScenarioRegistry::Global() {
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry();
    RegisterBuiltinScenarios(*r);
    return r;
  }();
  return *registry;
}

}  // namespace wlansim
