#include "runner/sweep.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "core/random.h"
#include "runner/campaign.h"
#include "runner/metric_recorder.h"
#include "runner/result_consumer.h"
#include "runner/scenario_registry.h"

namespace wlansim {
namespace {

// Same fixed "%.9g" convention as the CSV writers, so a range-generated
// value string is identical to what the output file prints.
std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

[[noreturn]] void ThrowBadSpec(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("malformed --sweep spec '" + spec + "': " + why);
}

bool ParseNumber(const std::string& s, double* out) {
  if (s.empty()) {
    return false;
  }
  try {
    size_t consumed = 0;
    *out = std::stod(s, &consumed);
    return consumed == s.size();
  } catch (const std::exception&) {
    return false;
  }
}

// KEY=lo:hi:step, inclusive of hi when it lands on the lattice (within half
// a ULP-ish tolerance so 0.1 steps behave).
std::vector<std::string> ExpandRange(const std::string& spec, const std::string& body) {
  const size_t c1 = body.find(':');
  const size_t c2 = body.find(':', c1 + 1);
  if (c2 == std::string::npos || body.find(':', c2 + 1) != std::string::npos) {
    ThrowBadSpec(spec, "range syntax is lo:hi:step");
  }
  double lo = 0, hi = 0, step = 0;
  if (!ParseNumber(body.substr(0, c1), &lo) ||
      !ParseNumber(body.substr(c1 + 1, c2 - c1 - 1), &hi) ||
      !ParseNumber(body.substr(c2 + 1), &step)) {
    ThrowBadSpec(spec, "range bounds and step must be numbers");
  }
  if (step <= 0) {
    ThrowBadSpec(spec, "range step must be > 0");
  }
  if (hi < lo) {
    ThrowBadSpec(spec, "range needs lo <= hi");
  }
  std::vector<std::string> values;
  const double tolerance = step * 1e-9;
  for (uint64_t i = 0;; ++i) {
    const double v = lo + static_cast<double>(i) * step;
    if (v > hi + tolerance) {
      break;
    }
    values.push_back(Num(v));
    if (values.size() > 1000000) {
      ThrowBadSpec(spec, "range expands to more than 10^6 values");
    }
  }
  return values;
}

}  // namespace

SweepAxis ParseSweepAxis(const std::string& spec) {
  const size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    ThrowBadSpec(spec, "expected KEY=v1,v2,... or KEY=lo:hi:step");
  }
  SweepAxis axis;
  axis.key = spec.substr(0, eq);
  const std::string body = spec.substr(eq + 1);
  if (body.empty()) {
    ThrowBadSpec(spec, "empty value list");
  }
  if (body.find(':') != std::string::npos && body.find(',') == std::string::npos) {
    axis.values = ExpandRange(spec, body);
    return axis;
  }
  size_t start = 0;
  while (true) {
    const size_t comma = body.find(',', start);
    const std::string value = body.substr(start, comma - start);
    if (value.empty()) {
      ThrowBadSpec(spec, "empty value in list");
    }
    axis.values.push_back(value);
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return axis;
}

void SweepGrid::AddAxis(SweepAxis axis) {
  if (axis.values.empty()) {
    throw std::invalid_argument("sweep axis '" + axis.key + "' has no values");
  }
  for (const SweepAxis& existing : axes_) {
    if (existing.key == axis.key) {
      throw std::invalid_argument("duplicate sweep key '" + axis.key + "'");
    }
  }
  axes_.push_back(std::move(axis));
}

size_t SweepGrid::NumPoints() const {
  size_t n = 1;
  for (const SweepAxis& axis : axes_) {
    n *= axis.values.size();
  }
  return n;
}

std::vector<std::string> SweepGrid::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(axes_.size());
  for (const SweepAxis& axis : axes_) {
    keys.push_back(axis.key);
  }
  return keys;
}

std::vector<std::pair<std::string, std::string>> SweepGrid::Point(size_t index) const {
  std::vector<std::pair<std::string, std::string>> point(axes_.size());
  // Row-major: the last axis is the fastest-varying digit.
  for (size_t a = axes_.size(); a-- > 0;) {
    const std::vector<std::string>& values = axes_[a].values;
    point[a] = {axes_[a].key, values[index % values.size()]};
    index /= values.size();
  }
  return point;
}

std::pair<size_t, size_t> ShardRange(size_t total, unsigned index, unsigned count) {
  if (count == 0 || index >= count) {
    throw std::invalid_argument("shard must be i/n with 0 <= i < n");
  }
  const size_t begin = total * index / count;
  const size_t end = total * (index + 1) / count;
  return {begin, end};
}

void StreamingSweepCsvWriter::BeginSweep(const SweepManifest& manifest) {
  if (begun_) {
    throw std::logic_error(
        "StreamingSweepCsvWriter attached to a second sweep: one writer, one stream");
  }
  begun_ = true;
  streamed_ = manifest.streamed;
  out_ << ResultSink::SweepLongCsvHeader(manifest.param_keys, streamed_);
}

void StreamingSweepCsvWriter::OnPointDone(const SweepPointInfo& info,
                                          const std::vector<MetricAggregate>& aggregates,
                                          ResultConsumer* point_consumer) {
  (void)point_consumer;
  std::vector<std::string> values;
  values.reserve(info.point.size());
  for (const auto& [key, value] : info.point) {
    values.push_back(value);
  }
  out_ << ResultSink::SweepLongCsvRows(values, aggregates);
}

void StreamingSweepCsvWriter::EndSweep() {
  out_.flush();
  if (!out_) {
    throw std::runtime_error("streaming sweep CSV write failed");
  }
}

uint64_t SweepPointSeed(uint64_t base_seed,
                        const std::vector<std::pair<std::string, std::string>>& point) {
  // Key the substream by the sorted parameter assignment: the seed is a pure
  // function of (base_seed, what the point sets), never of grid index, shard
  // layout, or the order axes were declared in. Keys and values are
  // length-prefixed so the encoding is injective — no two distinct
  // assignments serialize to the same stream name, whatever characters the
  // values contain.
  std::vector<std::pair<std::string, std::string>> sorted = point;
  std::sort(sorted.begin(), sorted.end());
  std::string stream = "sweep";
  for (const auto& [key, value] : sorted) {
    stream += "|";
    stream += std::to_string(key.size());
    stream += ",";
    stream += std::to_string(value.size());
    stream += ":";
    stream += key;
    stream += "=";
    stream += value;
  }
  return SubstreamSeed(base_seed, stream, 0);
}

SweepResult RunSweepCampaign(const SweepOptions& options) {
  for (const SweepAxis& axis : options.grid.axes()) {
    if (options.base_params.Has(axis.key)) {
      throw std::invalid_argument("parameter '" + axis.key +
                                  "' given both as --param and --sweep");
    }
  }

  const size_t total = options.grid.NumPoints();
  const auto [begin, end] = ShardRange(total, options.shard_index, options.shard_count);

  // Validate the whole grid's keys up front (all points share them), so an
  // unknown parameter fails fast even when this shard's slice is empty.
  const Scenario* scenario_ptr = ScenarioRegistry::Global().Find(options.scenario);
  {
    CampaignOptions probe;
    probe.scenario = options.scenario;
    probe.params = options.base_params;
    for (const auto& [key, value] : options.grid.Point(0)) {
      probe.params.Set(key, value);
    }
    if (scenario_ptr == nullptr) {
      // Reuse RunCampaign's unknown-scenario message (lists what exists);
      // zero replications so the throw is the only effect.
      probe.replications = 0;
      RunCampaign(probe);
      throw std::invalid_argument("unknown scenario '" + options.scenario + "'");  // unreachable
    }
    scenario_ptr->ValidateParams(probe.params);
  }

  SweepResult result;
  result.scenario = options.scenario;
  result.base_seed = options.base_seed;
  result.replications = options.replications;
  result.param_keys = options.grid.Keys();

  result.streamed = options.stream;

  // One global (point, rep) work queue: with per-point parallelism alone,
  // reps < jobs leaves workers idle at every grid point; flattening the
  // whole shard's task space keeps the pool saturated. Replication seeds
  // stay keyed by (point assignment, rep), never by which thread or in what
  // order a task runs, so the CSV is byte-identical for any --jobs value.
  const size_t n_points = end - begin;
  const uint64_t reps = options.replications;
  const Scenario& scenario = *scenario_ptr;

  // Each grid point owns a result pipeline with one aggregation consumer:
  // exact in-memory by default, online (O(metrics) memory) when streaming.
  // The worker that finishes a point's last rep aggregates it and frees the
  // collector, so exact-mode peak memory stays O(reps) per in-flight point
  // — and streaming mode is O(metrics) per point outright.
  struct PointCollector {
    explicit PointCollector(CampaignManifest manifest) : pipeline(std::move(manifest)) {}
    ResultPipeline pipeline;
    InMemoryConsumer memory;
    OnlineAggregator online;
  };

  // Announce the sweep to the point sinks before any point is set up, so
  // MakePointConsumer always runs on a sink that has seen its manifest.
  SweepManifest sweep_manifest;
  sweep_manifest.scenario = options.scenario;
  sweep_manifest.base_seed = options.base_seed;
  sweep_manifest.replications = reps;
  sweep_manifest.streamed = options.stream;
  sweep_manifest.param_keys = result.param_keys;
  sweep_manifest.shard_points = n_points;
  sweep_manifest.total_points = total;
  for (SweepPointSink* sink : options.point_sinks) {
    sink->BeginSweep(sweep_manifest);
  }

  std::vector<SweepPointInfo> point_infos(n_points);
  std::vector<ScenarioParams> point_params(n_points);
  std::vector<std::unique_ptr<PointCollector>> collectors(n_points);
  // Per point, one optional consumer per sink (parallel to point_sinks).
  std::vector<std::vector<std::unique_ptr<ResultConsumer>>> point_consumers(n_points);
  std::vector<std::atomic<uint64_t>> completed(n_points);
  for (size_t p = 0; p < n_points; ++p) {
    SweepPointInfo& info = point_infos[p];
    info.point_index = begin + p;
    info.point = options.grid.Point(begin + p);
    point_params[p] = options.base_params;
    for (const auto& [key, value] : info.point) {
      point_params[p].Set(key, value);
    }
    info.point_seed = SweepPointSeed(options.base_seed, info.point);
    CampaignManifest manifest;
    manifest.scenario = options.scenario;
    manifest.base_seed = info.point_seed;
    manifest.replications = reps;
    collectors[p] = std::make_unique<PointCollector>(std::move(manifest));
    collectors[p]->pipeline.AddConsumer(options.stream
                                            ? static_cast<ResultConsumer*>(&collectors[p]->online)
                                            : &collectors[p]->memory);
    point_consumers[p].reserve(options.point_sinks.size());
    for (SweepPointSink* sink : options.point_sinks) {
      std::unique_ptr<ResultConsumer> consumer = sink->MakePointConsumer(info);
      if (consumer != nullptr) {
        collectors[p]->pipeline.AddConsumer(consumer.get());
      }
      point_consumers[p].push_back(std::move(consumer));
    }
    collectors[p]->pipeline.Begin();
  }
  if (options.retain_points) {
    result.points.resize(n_points);
    for (size_t p = 0; p < n_points; ++p) {
      result.points[p].point_index = point_infos[p].point_index;
      result.points[p].point = point_infos[p].point;
    }
  }

  // Points complete in worker order, but sinks see them in grid order:
  // a completed point parks its aggregates here until every earlier point
  // is done, then the in-order prefix flushes under the lock — the same
  // reorder-buffer shape ResultPipeline uses per replication. Depth is
  // bounded by the pool's completion skew, never by the grid size.
  std::mutex sink_mu;
  size_t next_point = 0;
  std::map<size_t, std::vector<MetricAggregate>> pending_done;

  RunTaskPool(options.jobs, static_cast<uint64_t>(n_points) * reps, [&](uint64_t task) {
    const size_t p = static_cast<size_t>(task / reps);
    const uint64_t rep = task % reps;
    ReplicationContext ctx;
    ctx.replication = rep;
    ctx.seed = SubstreamSeed(point_infos[p].point_seed, scenario.name(), rep);
    MetricRecorder recorder;
    ctx.recorder = &recorder;
    const ReplicationResult returned = scenario.Run(point_params[p], ctx);
    PointCollector& collector = *collectors[p];
    collector.pipeline.Deliver(recorder.Finish(rep, returned));
    if (completed[p].fetch_add(1, std::memory_order_acq_rel) + 1 == reps) {
      collector.pipeline.End();
      std::vector<MetricAggregate> aggregates =
          options.stream ? collector.online.Aggregates()
                         : ResultSink::AggregateReplications(
                               collector.memory.ToReplicationResults());
      collectors[p].reset();
      if (options.retain_points) {
        result.points[p].aggregates = aggregates;
      }
      std::lock_guard<std::mutex> lock(sink_mu);
      pending_done.emplace(p, std::move(aggregates));
      while (!pending_done.empty() && pending_done.begin()->first == next_point) {
        const size_t q = pending_done.begin()->first;
        for (size_t s = 0; s < options.point_sinks.size(); ++s) {
          options.point_sinks[s]->OnPointDone(point_infos[q], pending_done.begin()->second,
                                              point_consumers[q][s].get());
        }
        point_consumers[q].clear();
        pending_done.erase(pending_done.begin());
        ++next_point;
      }
    }
  });

  for (SweepPointSink* sink : options.point_sinks) {
    sink->EndSweep();
  }
  return result;
}

std::string SweepResultToCsv(const SweepResult& result) {
  std::vector<SweepRow> rows;
  rows.reserve(result.points.size());
  for (const SweepPointResult& point : result.points) {
    SweepRow row;
    row.param_values.reserve(point.point.size());
    for (const auto& [key, value] : point.point) {
      row.param_values.push_back(value);
    }
    row.aggregates = point.aggregates;
    rows.push_back(std::move(row));
  }
  return ResultSink::SweepLongCsv(result.param_keys, rows, result.streamed);
}

}  // namespace wlansim
