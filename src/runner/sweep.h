// Parameter-sweep campaigns: expand a cartesian grid of scenario parameters,
// feed every (grid point, replication) pair of this shard through one global
// worker pool, and aggregate everything into one long-format table. The
// flattened task queue keeps the pool saturated even when replications <
// jobs (per-point batching would idle the spare workers at every point).
// Replication seeds are derived from the *parameter assignment* of each
// point (not its grid index, shard, or worker), so results are
// byte-identical for any --jobs value, any --shard=i/n split, and even any
// axis ordering.

#ifndef WLANSIM_RUNNER_SWEEP_H_
#define WLANSIM_RUNNER_SWEEP_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "runner/result_consumer.h"
#include "runner/result_sink.h"
#include "runner/scenario.h"

namespace wlansim {

// One swept parameter: a key and its ordered value list.
struct SweepAxis {
  std::string key;
  std::vector<std::string> values;
};

// Parses one "--sweep" spec into an axis. Two forms:
//   KEY=v1,v2,v3       explicit value list
//   KEY=lo:hi:step     inclusive numeric range (step > 0, lo <= hi)
// Values are kept as strings so they round-trip unchanged through
// ScenarioParams and the output CSV; range endpoints are formatted with the
// same fixed "%.9g" convention the CSV writers use. Throws
// std::invalid_argument on a malformed spec (missing '=', empty key, empty
// value list, empty list element, non-numeric or non-advancing range).
SweepAxis ParseSweepAxis(const std::string& spec);

// An ordered list of axes defining a cartesian parameter grid. Point i
// enumerates the grid with the FIRST axis varying slowest and the last axis
// fastest (row-major), so the combined CSV reads like nested loops.
class SweepGrid {
 public:
  // Throws std::invalid_argument when the axis key duplicates an existing
  // axis or the axis has no values.
  void AddAxis(SweepAxis axis);

  bool empty() const { return axes_.empty(); }
  size_t NumPoints() const;  // product of axis sizes; 1 for an empty grid

  // Axis keys in axis order: the parameter columns of the long-format CSV.
  std::vector<std::string> Keys() const;

  // Grid point `index` as ordered (key, value) pairs, one per axis.
  std::vector<std::pair<std::string, std::string>> Point(size_t index) const;

  const std::vector<SweepAxis>& axes() const { return axes_; }

 private:
  std::vector<SweepAxis> axes_;
};

// Contiguous [begin, end) slice of `total` grid points owned by shard
// `index` of `count`. Slices are disjoint, cover every point exactly once,
// and are stable: concatenating the slices for shards 0..count-1 in order
// reproduces 0..total exactly, which is what lets shard CSVs be merged
// byte-for-byte into the unsharded output. Throws std::invalid_argument when
// count == 0 or index >= count.
std::pair<size_t, size_t> ShardRange(size_t total, unsigned index, unsigned count);

// What a point sink knows about the sweep before the first point.
struct SweepManifest {
  std::string scenario;
  uint64_t base_seed = 1;
  uint64_t replications = 0;  // per grid point
  bool streamed = false;      // per-point aggregation is online (P-square)
  std::vector<std::string> param_keys;  // axis keys, axis order
  size_t shard_points = 0;  // grid points this shard runs
  size_t total_points = 0;  // whole grid
};

// Identity of one grid point, as handed to point sinks.
struct SweepPointInfo {
  size_t point_index = 0;  // global grid index, not shard-local
  uint64_t point_seed = 0;
  std::vector<std::pair<std::string, std::string>> point;  // (key, value), axis order
};

// A sweep-wide consumer of per-point completions. Points finish in
// completion order on the worker pool, but the engine re-orders them
// (reorder buffer keyed by grid index, the same trick ResultPipeline plays
// per replication) so OnPointDone always fires in ascending grid order,
// serialized — sinks need no synchronization and can stream ordered output
// while later points are still running.
class SweepPointSink {
 public:
  virtual ~SweepPointSink() = default;

  // Called once, before any point runs.
  virtual void BeginSweep(const SweepManifest& manifest) { (void)manifest; }

  // A sink may request a per-point ResultConsumer, attached to that point's
  // result pipeline (records arrive in replication order, serialized). The
  // engine owns the consumer and hands it back in OnPointDone so the sink
  // can harvest whatever it accumulated. Return nullptr (the default) when
  // the per-point aggregates suffice. Called serially during sweep setup,
  // in grid order, before any replication runs.
  virtual std::unique_ptr<ResultConsumer> MakePointConsumer(const SweepPointInfo& info) {
    (void)info;
    return nullptr;
  }

  // Called once per grid point, in grid order. `point_consumer` is the
  // consumer MakePointConsumer returned for this point (nullptr otherwise)
  // and dies when OnPointDone returns.
  virtual void OnPointDone(const SweepPointInfo& info,
                           const std::vector<MetricAggregate>& aggregates,
                           ResultConsumer* point_consumer) = 0;

  // Called once, after the last point.
  virtual void EndSweep() {}
};

// Streams the long-format sweep CSV (header + one row per point and metric)
// to `out` as points complete, byte-identical to SweepResultToCsv over the
// same sweep — the header is a pure function of the manifest and each
// point's rows are a pure function of its aggregates, so nothing needs to
// wait for the sweep to end.
class StreamingSweepCsvWriter final : public SweepPointSink {
 public:
  explicit StreamingSweepCsvWriter(std::ostream& out) : out_(out) {}

  void BeginSweep(const SweepManifest& manifest) override;
  void OnPointDone(const SweepPointInfo& info,
                   const std::vector<MetricAggregate>& aggregates,
                   ResultConsumer* point_consumer) override;
  void EndSweep() override;

 private:
  std::ostream& out_;
  bool streamed_ = false;
  bool begun_ = false;
};

struct SweepOptions {
  std::string scenario;
  // Applied to every grid point. A key may not be both a base param and a
  // sweep axis: RunSweepCampaign rejects the ambiguity.
  ScenarioParams base_params;
  SweepGrid grid;
  uint64_t base_seed = 1;
  uint64_t replications = 1;
  // Worker threads for the shard's whole (point, replication) task queue
  // (0 = hardware concurrency, same meaning as CampaignOptions::jobs).
  unsigned jobs = 1;
  // This process runs the grid points in ShardRange(n, shard_index, shard_count).
  unsigned shard_index = 0;
  unsigned shard_count = 1;
  // Streaming mode: each grid point aggregates online (Welford + P-square
  // quantiles) instead of buffering its replication rows, so per-point peak
  // memory is O(metrics) however many replications run. The long CSV's
  // quantile columns are then labeled p50_approx/p95_approx. Off by
  // default: exact aggregation keeps sweep CSVs byte-identical to the batch
  // collector.
  bool stream = false;
  // Per-point completion sinks (not owned, must outlive RunSweepCampaign).
  // Each receives every point in grid order; see SweepPointSink.
  std::vector<SweepPointSink*> point_sinks;
  // When false, SweepResult::points stays empty — the sinks are the only
  // output, and peak memory no longer grows with the shard's point count.
  // (Aggregates are still computed per point and handed to the sinks.)
  bool retain_points = true;
};

// Aggregates for one grid point.
struct SweepPointResult {
  size_t point_index = 0;  // global grid index, not shard-local
  std::vector<std::pair<std::string, std::string>> point;  // (key, value), axis order
  std::vector<MetricAggregate> aggregates;                 // ordered by metric name
};

struct SweepResult {
  std::string scenario;
  uint64_t base_seed = 1;
  uint64_t replications = 1;
  bool streamed = false;  // aggregates' p50/p95 are P-square estimates
  std::vector<std::string> param_keys;   // axis keys, axis order
  std::vector<SweepPointResult> points;  // this shard's slice, grid order
};

// The base seed for one grid point's replication batch: a substream of
// `base_seed` keyed by the point's sorted key=value assignment. Exposed so
// tests can assert shard/order independence directly.
uint64_t SweepPointSeed(uint64_t base_seed,
                        const std::vector<std::pair<std::string, std::string>>& point);

// Expands the grid, takes this shard's slice, and runs one Campaign
// (options.replications replications on options.jobs threads) per grid
// point. Throws std::invalid_argument for an unknown scenario, an unknown or
// ambiguous parameter, or an invalid shard spec.
SweepResult RunSweepCampaign(const SweepOptions& options);

// The long-format combined CSV for a sweep (header + one row per point and
// metric), emitted via ResultSink::SweepLongCsv.
std::string SweepResultToCsv(const SweepResult& result);

}  // namespace wlansim

#endif  // WLANSIM_RUNNER_SWEEP_H_
