// Canonical experiment topologies, extracted from the bench binaries so the
// campaign runner, the benches and the examples all execute the exact same
// scenario code. Each builder is a pure function of its params struct: it
// constructs a private Network, runs it, and returns plain numbers.

#ifndef WLANSIM_RUNNER_BUILDERS_H_
#define WLANSIM_RUNNER_BUILDERS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/random.h"
#include "core/time.h"
#include "crypto/cipher_suite.h"
#include "phy/wifi_mode.h"

namespace wlansim {

class RateController;
class Rng;

// Creates the requested rate controller by name ("arf", "aarf", "onoe",
// "samplerate", "minstrel"); nullptr for unknown names (callers treat the
// empty name as "fixed rate" before calling this).
std::unique_ptr<RateController> MakeRateController(const std::string& name,
                                                   PhyStandard standard, Rng rng);

// Result of one scenario run (the common scalar set).
struct RunResult {
  double goodput_mbps = 0.0;
  double loss_rate = 0.0;
  double mean_delay_ms = 0.0;
  uint64_t retries = 0;
  uint64_t tx_attempts = 0;
  uint64_t rx_ok = 0;
  uint64_t handoffs = 0;
};

// Saturated uplink BSS: `n_stas` stations at `distance` m from the AP, all
// backlogged toward the AP with `payload` bytes. Returns aggregate results.
struct SaturationParams {
  PhyStandard standard = PhyStandard::k80211b;
  size_t n_stas = 1;
  size_t payload = 1500;
  double distance = 10.0;
  uint32_t rts_threshold = 65535;  // off by default
  Time sim_time = Time::Seconds(6);
  Time warmup = Time::Seconds(1);
  uint64_t seed = 1;
  CipherSuite cipher = CipherSuite::kOpen;
  // Fixed rate index into ModesFor(standard); SIZE_MAX = highest.
  size_t rate_index = SIZE_MAX;
};
RunResult RunSaturationScenario(const SaturationParams& p);

// Two senders sharing one receiver; `hidden` removes the sender-sender link
// from the loss matrix so physical carrier sense never defers.
struct HiddenTerminalParams {
  bool hidden = true;
  bool rtscts = false;
  size_t payload = 1500;
  Time sim_time = Time::Seconds(6);
  uint64_t seed = 42;
};
struct HiddenTerminalResult {
  double goodput_mbps = 0.0;
  double retry_rate = 0.0;  // fraction of tx attempts that were retries
  double drop_rate = 0.0;   // fraction of tx attempts dropped at retry limit
  uint64_t cts_timeouts = 0;
  uint64_t drops = 0;
};
HiddenTerminalResult RunHiddenTerminalScenario(const HiddenTerminalParams& p);

// A VoIP flow (AC_VO) sharing a BSS with `bulk_stations` saturating bulk
// uploaders (AC_BK), with 802.11e QoS on or off.
struct EdcaQosParams {
  bool qos = true;
  size_t bulk_stations = 3;
  Time sim_time = Time::Seconds(6);
  uint64_t seed = 500;
};
struct EdcaQosResult {
  double voice_delay_ms = 0.0;
  double voice_jitter_ms = 0.0;
  double voice_loss = 0.0;
  double bulk_mbps = 0.0;
  uint64_t voice_delivered = 0;  // voice packets at the sink (bench item count)
};
EdcaQosResult RunEdcaScenario(const EdcaQosParams& p);

// Single saturated link at `distance` with either a fixed rate (index into
// ModesFor) or a named rate-control algorithm, optionally under Rayleigh
// block fading (the F9 rate-adaptation shoot-out configuration).
struct LinkParams {
  PhyStandard standard = PhyStandard::k80211b;
  double distance = 10.0;
  size_t rate_index = 0;    // used when controller is empty
  std::string controller;   // "", "arf", "aarf", "onoe", "samplerate", "minstrel"
  bool rayleigh_fading = false;
  size_t payload = 1200;
  Time sim_time = Time::Seconds(4);
  uint64_t seed = 7;
};
RunResult RunLinkScenario(const LinkParams& p);

// Dense co-channel multi-BSS deployment: `n_bss` infrastructure BSSs on a
// square grid (`bss_spacing` metres apart, all on channel 1), each with
// `stas_per_bss` saturated uplink stations on a circle of `sta_radius`
// around their AP. Every BSS hears its neighbours, so the per-receiver
// interference tracker sees tens of concurrent signals — the workload the
// sweep-line SINR chunking exists for. Returns aggregates over all flows.
struct DenseMultiBssParams {
  PhyStandard standard = PhyStandard::k80211b;
  size_t n_bss = 3;
  size_t stas_per_bss = 4;
  double bss_spacing = 25.0;
  double sta_radius = 8.0;
  size_t payload = 1000;
  Time sim_time = Time::Seconds(4);
  Time warmup = Time::Seconds(1);
  uint64_t seed = 1;
};
struct DenseMultiBssResult {
  RunResult run;  // aggregates over all flows, as before
  // Uplink goodput of every station, in station creation order (BSS by BSS,
  // station by station). Means hide starvation in a dense co-channel grid;
  // this is the raw material for the per-station fairness histogram.
  std::vector<double> per_sta_mbps;
};
DenseMultiBssResult RunDenseMultiBssScenario(const DenseMultiBssParams& p);

// City-scale co-channel deployment: like dense_multi_bss but sized for
// thousands of nodes spread far beyond one interference radius, the
// workload the channel's spatial receiver index exists for. Log-distance
// loss without shadowing (the index needs a bounded radius), a finite
// reception cutoff active on both the dense and indexed paths, and the
// index itself opt-in — with identical results either way, which is what
// the differential CI gate checks.
struct CityGridParams {
  PhyStandard standard = PhyStandard::k80211b;
  size_t n_bss = 9;
  size_t stas_per_bss = 2;
  double bss_spacing = 120.0;
  double sta_radius = 10.0;
  // Reception cutoff in dBm; applied on both paths, so it is a scenario
  // semantic, not an optimisation toggle.
  double cutoff_dbm = -100.0;
  // Turns the spatial index on. Leaving it false keeps the channel under
  // the WLANSIM_SPATIAL_INDEX environment override, which is how CI A/Bs
  // the two paths without touching the scenario's parameter set.
  bool spatial = false;
  size_t payload = 1000;
  Time sim_time = Time::Seconds(2);
  Time warmup = Time::Seconds(1);
  uint64_t seed = 1;
};
struct CityGridResult {
  RunResult run;
  // Path-invariant channel totals (identical dense vs indexed; safe as CSV
  // metrics and asserted equal by the differential tests).
  uint64_t channel_sends = 0;
  uint64_t channel_offers = 0;
  // Path-dependent work counters (how much each path did; never CSV).
  uint64_t candidates_visited = 0;
  uint64_t cutoff_suppressed = 0;
  uint64_t grid_queries = 0;
  uint64_t grid_rebuilds = 0;
};
CityGridResult RunCityGridScenario(const CityGridParams& p);

// A saturated 12 m link sharing the band with a microwave oven at
// `oven_distance` m from the receiver (0 = no oven). 802.11a moves to
// channel 36 and is immune by construction.
struct IsmParams {
  PhyStandard standard = PhyStandard::k80211b;
  double oven_distance = 3.0;
  Time sim_time = Time::Seconds(6);
  uint64_t seed = 77;
};
RunResult RunIsmInterferenceScenario(const IsmParams& p);

// Heterogeneous coexistence on one 2.4 GHz channel: an infrastructure WiFi
// BSS (`n_stas` saturated uplink stations at `sta_distance`), a cluster of
// `n_sensors` 802.15.4-style sensor radios on a circle of `sensor_radius`
// around a silent sink sensor at `cluster_offset`, and optionally a
// duty-cycled LoRa-like jammer — three radio technologies behind one
// RadioDevice seam. WiFi sees the sensors and jammer as foreign-protocol
// energy (CCA deferral + SINR degradation) and vice versa.
struct SensorCoexistenceParams {
  PhyStandard standard = PhyStandard::k80211b;
  size_t n_stas = 1;
  double sta_distance = 10.0;
  size_t n_sensors = 4;
  double sensor_radius = 6.0;
  double cluster_offset = 5.0;  // sink's x-offset from the AP
  Time report_interval = Time::Millis(25);
  bool with_jammer = false;     // add the LoRa-like interferer
  double jammer_duty_pct = 5.0;
  size_t payload = 1000;
  Time sim_time = Time::Seconds(4);
  Time warmup = Time::Seconds(1);
  uint64_t seed = 1;
};
struct SensorCoexistenceResult {
  RunResult wifi;  // the BSS's aggregate uplink results
  uint64_t sensor_reports_sent = 0;
  uint64_t sensor_rx_ok = 0;        // reports the sink received intact
  uint64_t sensor_rx_lost_sinr = 0; // locked at the sink but degraded
  uint64_t sensor_csma_deferrals = 0;
  uint64_t sensor_csma_drops = 0;
  double sensor_delivery_ratio = 0.0;  // sink rx_ok / reports sent
  uint64_t jammer_chirps = 0;
};
SensorCoexistenceResult RunSensorCoexistenceScenario(const SensorCoexistenceParams& p);

// A saturated WiFi link sharing the channel with one duty-cycled LoRa-like
// interferer at `jammer_distance` from the receiver: the minimal quantified
// look at what long-airtime narrowband duty cycles do to 802.11.
struct LoraCoexistenceParams {
  PhyStandard standard = PhyStandard::k80211b;
  double jammer_distance = 5.0;
  double duty_pct = 1.0;
  Time airtime = Time::Millis(60);
  Time sim_time = Time::Seconds(6);
  uint64_t seed = 19;
};
struct LoraCoexistenceResult {
  RunResult wifi;
  uint64_t jammer_chirps = 0;
  double jammer_airtime_share = 0.0;  // chirp airtime / measured time
};
LoraCoexistenceResult RunLoraCoexistenceScenario(const LoraCoexistenceParams& p);

// n_pairs CBR flows either peer-to-peer (IBSS) or relayed through an AP.
struct AdhocInfraParams {
  bool adhoc = true;
  size_t n_pairs = 2;
  Time sim_time = Time::Seconds(8);
  uint64_t seed = 55;
};
struct AdhocInfraResult {
  double offered_mbps = 0.0;
  double delivered_mbps = 0.0;
  double delay_ms = 0.0;
};
AdhocInfraResult RunAdhocInfraScenario(const AdhocInfraParams& p);

// 802.11b/g coexistence: a saturated g STA, optionally joined by a far-away
// legacy b STA, with or without CTS-to-self protection.
struct CoexistenceParams {
  bool with_b_sta = true;
  bool protection = false;
  Time sim_time = Time::Seconds(6);
  uint64_t seed = 23;
};
struct CoexistenceResult {
  double g_mbps = 0.0;
  double b_mbps = 0.0;
};
CoexistenceResult RunCoexistenceScenario(const CoexistenceParams& p);

// Fragmentation threshold under an optional hidden Poisson burst jammer.
struct FragmentationParams {
  bool jammed = true;
  uint32_t frag_threshold = 1024;
  Time sim_time = Time::Seconds(8);
  uint64_t seed = 31;
};
HiddenTerminalResult RunFragmentationScenario(const FragmentationParams& p);

// ESS roaming: `n_aps` access points `spacing` m apart on channels 1/6/11,
// a station walking past them at `speed` m/s with a CBR uplink addressed to
// the serving BSSID.
struct RoamingParams {
  size_t n_aps = 2;
  double spacing = 160.0;
  double speed = 10.0;
  double path_loss_exponent = 3.2;
  double start_x = 10.0;
  size_t payload = 500;
  Time pump_interval = Time::Millis(10);
  Time scan_dwell = Time::Zero();  // zero = MAC default
  Time sim_time = Time::Seconds(20);
  uint64_t seed = 77;
  bool use_arf = false;
  bool log_associations = false;
};
struct RoamingResult {
  uint64_t handoffs = 0;
  double loss_rate = 0.0;
  double mean_delivered_kbps = 0.0;
  // Delivered bytes per bucket: (bucket start seconds, bytes).
  std::vector<std::pair<double, double>> delivered_buckets;
  double bucket_seconds = 0.5;
};
RoamingResult RunRoamingScenario(const RoamingParams& p);

}  // namespace wlansim

#endif  // WLANSIM_RUNNER_BUILDERS_H_
