#include "runner/result_sink.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <set>
#include <stdexcept>

#include "stats/summary.h"

namespace wlansim {
namespace {

// Local alias for the shared formatter; kept terse because every writer
// line uses it.
std::string Num(double v) { return CsvNum(v); }

// The quantile column names under exact (sorted-sample) and approximate
// (P-square) aggregation. Streamed campaigns must never present an estimate
// as an exact percentile, so the approximate path renames the columns.
const char* P50Label(bool approx) { return approx ? "p50_approx" : "p50"; }
const char* P95Label(bool approx) { return approx ? "p95_approx" : "p95"; }

}  // namespace

// Fixed-width, locale-independent number formatting so identical campaigns
// produce byte-identical files.
std::string CsvNum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string CsvField(const std::string& field) {
  if (field.find_first_of(",\"\r\n") == std::string::npos) {
    return field;
  }
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') {
      quoted += '"';
    }
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

double StudentT95(uint64_t df) {
  // Two-sided 95 % critical values; exact to three decimals for df <= 30,
  // then the standard interpolation anchors. Campaigns with one replication
  // have no variance estimate: return infinity so the CI is honest.
  static const double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) {
    return std::numeric_limits<double>::infinity();
  }
  if (df <= 30) {
    return kTable[df - 1];
  }
  if (df <= 40) {
    return 2.021;
  }
  if (df <= 60) {
    return 2.000;
  }
  if (df <= 120) {
    return 1.980;
  }
  return 1.960;
}

namespace {

// ExactQuantile on an already-sorted sample, so Aggregate can sort each
// metric once and read several quantiles off it.
double QuantileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double h = static_cast<double>(sorted.size() - 1) * q;
  const size_t lo = static_cast<size_t>(h);
  if (lo + 1 >= sorted.size()) {
    return sorted.back();
  }
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

}  // namespace

double ExactQuantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return QuantileSorted(values, q);
}

ResultSink::ResultSink(size_t replications)
    : replications_(replications), stored_(replications, false) {}

void ResultSink::Store(size_t replication, ReplicationResult result) {
  std::lock_guard<std::mutex> lock(mu_);
  if (replication >= replications_.size()) {
    throw std::out_of_range("replication index " + std::to_string(replication) +
                            " outside sink of " + std::to_string(replications_.size()));
  }
  if (stored_[replication]) {
    throw std::logic_error("replication " + std::to_string(replication) +
                           " stored twice (double-set replication index)");
  }
  stored_[replication] = true;
  replications_[replication] = std::move(result);
}

std::vector<MetricAggregate> ResultSink::Aggregate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return AggregateReplications(replications_);
}

std::vector<MetricAggregate> ResultSink::AggregateReplications(
    const std::vector<ReplicationResult>& replications) {
  // The rows are all in memory, so quantiles are exact: collect each
  // metric's values alongside its running summary.
  std::map<std::string, std::pair<Summary, std::vector<double>>> by_metric;
  for (const ReplicationResult& rep : replications) {
    for (const auto& [name, value] : rep.metrics) {
      auto& [summary, values] = by_metric[name];
      summary.Add(value);
      values.push_back(value);
    }
  }
  std::vector<MetricAggregate> out;
  out.reserve(by_metric.size());
  for (auto& [name, entry] : by_metric) {
    auto& [summary, values] = entry;
    MetricAggregate agg;
    agg.metric = name;
    agg.count = summary.count();
    agg.mean = summary.mean();
    agg.stddev = summary.stddev();
    agg.ci95_half = summary.count() > 1
                        ? StudentT95(summary.count() - 1) * summary.stddev() /
                              std::sqrt(static_cast<double>(summary.count()))
                        : 0.0;
    agg.min = summary.min();
    agg.max = summary.max();
    std::sort(values.begin(), values.end());
    agg.p50 = QuantileSorted(values, 0.50);
    agg.p95 = QuantileSorted(values, 0.95);
    out.push_back(std::move(agg));
  }
  return out;
}

std::string ResultSink::ReplicationsToCsv(const std::vector<ReplicationResult>& replications) {
  std::set<std::string> columns;
  for (const ReplicationResult& rep : replications) {
    for (const auto& [name, value] : rep.metrics) {
      columns.insert(name);
    }
  }
  std::string csv = "replication";
  for (const std::string& c : columns) {
    csv += ",";
    csv += CsvField(c);
  }
  csv += "\n";
  for (size_t i = 0; i < replications.size(); ++i) {
    csv += std::to_string(i);
    for (const std::string& c : columns) {
      auto it = replications[i].metrics.find(c);
      csv += ",";
      if (it != replications[i].metrics.end()) {
        csv += Num(it->second);
      }
    }
    csv += "\n";
  }
  return csv;
}

std::string ResultSink::AggregatesToCsv(const std::vector<MetricAggregate>& aggregates,
                                        bool approx_quantiles) {
  std::string csv = "metric,count,mean,stddev,ci95_half,min,max," +
                    std::string(P50Label(approx_quantiles)) + "," +
                    P95Label(approx_quantiles) + "\n";
  for (const MetricAggregate& a : aggregates) {
    csv += CsvField(a.metric) + "," + std::to_string(a.count) + "," + Num(a.mean) + "," +
           Num(a.stddev) + "," + Num(a.ci95_half) + "," + Num(a.min) + "," + Num(a.max) + "," +
           Num(a.p50) + "," + Num(a.p95) + "\n";
  }
  return csv;
}

std::string ResultSink::SweepLongCsvHeader(const std::vector<std::string>& param_keys,
                                           bool approx_quantiles) {
  std::string csv;
  for (const std::string& key : param_keys) {
    csv += CsvField(key) + ",";
  }
  csv += "metric,count,mean,stddev,ci95_half,min,max," +
         std::string(P50Label(approx_quantiles)) + "," + P95Label(approx_quantiles) + "\n";
  return csv;
}

std::string ResultSink::SweepLongCsvRows(const std::vector<std::string>& param_values,
                                         const std::vector<MetricAggregate>& aggregates) {
  std::string prefix;
  for (const std::string& value : param_values) {
    prefix += CsvField(value) + ",";
  }
  std::string csv;
  for (const MetricAggregate& a : aggregates) {
    csv += prefix + CsvField(a.metric) + "," + std::to_string(a.count) + "," + Num(a.mean) + "," +
           Num(a.stddev) + "," + Num(a.ci95_half) + "," + Num(a.min) + "," + Num(a.max) + "," +
           Num(a.p50) + "," + Num(a.p95) + "\n";
  }
  return csv;
}

std::string ResultSink::SweepLongCsv(const std::vector<std::string>& param_keys,
                                     const std::vector<SweepRow>& rows,
                                     bool approx_quantiles) {
  std::string csv = SweepLongCsvHeader(param_keys, approx_quantiles);
  for (const SweepRow& row : rows) {
    assert(row.param_values.size() == param_keys.size());
    csv += SweepLongCsvRows(row.param_values, row.aggregates);
  }
  return csv;
}

std::string ResultSink::AggregatesToJson(const std::string& scenario_name,
                                         uint64_t replications,
                                         const std::vector<MetricAggregate>& aggregates,
                                         bool approx_quantiles) {
  std::string json = "{\n  \"scenario\": \"" + scenario_name + "\",\n  \"replications\": " +
                     std::to_string(replications) + ",\n  \"metrics\": {";
  bool first = true;
  for (const MetricAggregate& a : aggregates) {
    json += first ? "\n" : ",\n";
    first = false;
    json += "    \"" + a.metric + "\": {\"count\": " + std::to_string(a.count) +
            ", \"mean\": " + Num(a.mean) + ", \"stddev\": " + Num(a.stddev) +
            ", \"ci95_half\": " + Num(a.ci95_half) + ", \"min\": " + Num(a.min) +
            ", \"max\": " + Num(a.max) + ", \"" + P50Label(approx_quantiles) +
            "\": " + Num(a.p50) + ", \"" + P95Label(approx_quantiles) + "\": " + Num(a.p95) + "}";
  }
  json += "\n  }\n}\n";
  return json;
}

}  // namespace wlansim
