// Name → Scenario registry. The global registry is populated with the
// built-in scenario table on first use (an explicit call into scenarios.cc,
// so static-library linking cannot drop the registrations), and examples or
// tests can add their own entries at runtime.

#ifndef WLANSIM_RUNNER_SCENARIO_REGISTRY_H_
#define WLANSIM_RUNNER_SCENARIO_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "runner/scenario.h"

namespace wlansim {

class ScenarioRegistry {
 public:
  // Registers a scenario; throws std::invalid_argument on a duplicate name.
  void Register(std::unique_ptr<Scenario> scenario);

  // Terse registration of a function-backed scenario.
  void Register(std::string name, std::string description, std::vector<ParamSpec> param_specs,
                FunctionScenario::RunFn fn);

  // nullptr when unknown.
  const Scenario* Find(std::string_view name) const;

  // Sorted scenario names.
  std::vector<std::string> Names() const;

  // The process-wide registry, pre-populated with the built-in scenarios.
  static ScenarioRegistry& Global();

 private:
  std::map<std::string, std::unique_ptr<Scenario>, std::less<>> scenarios_;
};

// Implemented in scenarios.cc: registers every built-in scenario.
void RegisterBuiltinScenarios(ScenarioRegistry& registry);

}  // namespace wlansim

#endif  // WLANSIM_RUNNER_SCENARIO_REGISTRY_H_
