// wlansim_run — the campaign CLI. Runs N independent replications of any
// registered scenario across a worker pool and prints (or writes) the
// aggregated results. With one or more --sweep axes it runs a whole
// parameter grid as per-point replication batches and emits one long-format
// table; --shard=i/n partitions the grid across processes or hosts without
// changing any result.
//
//   wlansim_run --list
//   wlansim_run --describe=saturation
//   wlansim_run --scenario=saturation --reps=8 --jobs=4 --param n_stas=10
//   wlansim_run --scenario=edca --reps=16 --jobs=0 --csv=agg.csv --json=agg.json
//   wlansim_run --scenario=rate_vs_distance --sweep distance=10:100:10 --reps=8 --csv=f1.csv
//   wlansim_run --scenario=saturation --sweep n_stas=1,5,10 --shard=0/2 --csv=half0.csv

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/hotpath_stats.h"
#include "core/version.h"
#include "results/binary_writer.h"
#include "runner/campaign.h"
#include "runner/result_consumer.h"
#include "runner/scenario_registry.h"
#include "runner/sweep.h"
#include "stats/table.h"

namespace wlansim {
namespace {

// Replication count at which the CLI switches to the streaming pipeline on
// its own: beyond this, buffering every row is the memory hazard the
// streaming path exists to avoid. --stream forces it earlier, --no-stream
// forces exact batch aggregation regardless of size.
constexpr uint64_t kAutoStreamReplications = 10000;

void PrintUsage() {
  std::printf(
      "usage: wlansim_run --scenario=NAME [options]\n"
      "\n"
      "options:\n"
      "  --scenario=NAME     registered scenario to run (see --list)\n"
      "  --reps=N            independent replications (default 1)\n"
      "  --jobs=N            worker threads; 0 = all hardware threads (default 1)\n"
      "  --seed=N            campaign base seed (default 1)\n"
      "  --param KEY=VALUE   scenario parameter (repeatable; also --param=KEY=VALUE)\n"
      "  --sweep KEY=SPEC    sweep a parameter over a value grid (repeatable);\n"
      "                      SPEC is v1,v2,... or an inclusive range lo:hi:step.\n"
      "                      Multiple --sweep axes form a cartesian grid, run as\n"
      "                      one replication batch per point.\n"
      "  --shard=I/N         run only this process's slice of the sweep grid\n"
      "                      (contiguous, disjoint, exhaustive across shards);\n"
      "                      results are identical for any shard split\n"
      "  --csv=FILE          write the aggregate table as CSV (long format when\n"
      "                      sweeping: params...,metric,count,mean,stddev,...)\n"
      "  --json=FILE         write the aggregate table as JSON (no sweep mode)\n"
      "  --reps-csv=FILE     write one CSV row per replication (no sweep mode);\n"
      "                      in stream mode rows are appended as replications\n"
      "                      complete instead of buffered\n"
      "  --binary-out=FILE   write the full per-replication record stream\n"
      "                      (metrics plus histogram snapshots) as a WLSR\n"
      "                      binary columnar file, in campaign and sweep mode\n"
      "                      alike; wlansim_results can inspect/merge/export/\n"
      "                      aggregate it. Output bytes are identical for any\n"
      "                      --jobs value, and sweep shard files merge into\n"
      "                      exactly the unsharded file\n"
      "  --stream            stream results instead of buffering them: rows go\n"
      "                      to --reps-csv as they complete and aggregates use\n"
      "                      online Welford + P-square quantiles in O(metrics)\n"
      "                      memory (columns become p50_approx/p95_approx).\n"
      "                      In sweep mode the long-format --csv streams too,\n"
      "                      one grid point at a time, byte-identical to the\n"
      "                      batch writer.\n"
      "                      Auto-enabled at >= %llu replications; --no-stream\n"
      "                      forces exact batch aggregation back on\n"
      "  --list              list registered scenarios\n"
      "  --version           print the build version and exit\n"
      "  --describe=NAME     show a scenario's parameters and defaults\n"
      "  --quiet             suppress the stdout table\n"
      "  --verbose           after the run, print hot-path diagnostic counters\n"
      "                      (packet bytes deep-copied in channel fan-out,\n"
      "                      event closures that missed the slab's inline\n"
      "                      buffer); stdout only, never in any result file\n",
      static_cast<unsigned long long>(kAutoStreamReplications));
}

int ListScenarios() {
  const ScenarioRegistry& registry = ScenarioRegistry::Global();
  Table table({"scenario", "description"});
  for (const std::string& name : registry.Names()) {
    table.AddRow({name, std::string(registry.Find(name)->description())});
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

int DescribeScenario(const std::string& name) {
  const Scenario* scenario = ScenarioRegistry::Global().Find(name);
  if (scenario == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s'; run --list\n", name.c_str());
    return 1;
  }
  std::printf("%s — %s\n\n", name.c_str(), std::string(scenario->description()).c_str());
  Table table({"parameter", "default", "help"});
  for (const ParamSpec& spec : scenario->param_specs()) {
    table.AddRow({spec.name, spec.default_value, spec.help});
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

// The --verbose footer: process-wide hot-path counters, folded into
// HotPathStats as each replication's Channel and EventQueue are destroyed.
// Both should read 0 on the steady-state zero-copy fan-out; a nonzero value
// is a performance regression signal, not an error. Diagnostic stdout only —
// result artifacts never include it, so --verbose cannot perturb a CSV.
void PrintHotPathStats() {
  std::printf("hot-path: bytes_copied=%llu event_heap_fallbacks=%llu\n",
              static_cast<unsigned long long>(
                  HotPathStats::channel_bytes_copied.load(std::memory_order_relaxed)),
              static_cast<unsigned long long>(
                  HotPathStats::event_heap_fallbacks.load(std::memory_order_relaxed)));
}

bool WriteFileOrComplain(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

// Parses "I/N" into (index, count); false on anything else.
bool ParseShard(const std::string& spec, unsigned* index, unsigned* count) {
  const size_t slash = spec.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= spec.size()) {
    return false;
  }
  const std::string i = spec.substr(0, slash);
  const std::string n = spec.substr(slash + 1);
  if (i.find_first_not_of("0123456789") != std::string::npos ||
      n.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  try {
    const unsigned long iv = std::stoul(i);
    const unsigned long nv = std::stoul(n);
    if (nv == 0 || iv >= nv) {
      return false;
    }
    *index = static_cast<unsigned>(iv);
    *count = static_cast<unsigned>(nv);
    return true;
  } catch (const std::out_of_range&) {
    return false;
  }
}

int RunSweep(const CampaignOptions& base, const std::vector<std::string>& sweep_specs,
             unsigned shard_index, unsigned shard_count, const std::string& csv_path,
             const std::string& binary_out_path, bool quiet, bool verbose) {
  SweepOptions options;
  options.scenario = base.scenario;
  options.base_params = base.params;
  options.base_seed = base.base_seed;
  options.replications = base.replications;
  options.jobs = base.jobs;
  options.shard_index = shard_index;
  options.shard_count = shard_count;
  options.stream = base.stream;

  // In stream mode the long CSV goes out through an ordered point sink, one
  // grid point at a time, instead of assembling at sweep end — byte-identical
  // to the batch writer below.
  std::ofstream streamed_csv_out;
  std::unique_ptr<StreamingSweepCsvWriter> streamed_csv_writer;
  if (options.stream && !csv_path.empty()) {
    streamed_csv_out.open(csv_path, std::ios::binary);
    if (!streamed_csv_out) {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      return 1;
    }
    streamed_csv_writer = std::make_unique<StreamingSweepCsvWriter>(streamed_csv_out);
    options.point_sinks.push_back(streamed_csv_writer.get());
  }
  std::ofstream binary_out;
  std::unique_ptr<BinarySweepWriter> binary_writer;
  if (!binary_out_path.empty()) {
    binary_out.open(binary_out_path, std::ios::binary);
    if (!binary_out) {
      std::fprintf(stderr, "cannot write %s\n", binary_out_path.c_str());
      return 1;
    }
    binary_writer = std::make_unique<BinarySweepWriter>(binary_out);
    options.point_sinks.push_back(binary_writer.get());
  }
  // Per-point aggregates only need buffering for the stdout table and the
  // batch CSV path; a quiet streamed sweep runs with O(in-flight) memory.
  options.retain_points = !quiet || (!csv_path.empty() && !options.stream);

  SweepResult result;
  try {
    for (const std::string& spec : sweep_specs) {
      options.grid.AddAxis(ParseSweepAxis(spec));
    }
    result = RunSweepCampaign(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (!quiet) {
    std::printf("=== %s sweep: %zu/%zu grid point(s) [shard %u/%u], %llu replication(s)/point, "
                "base seed %llu ===\n",
                result.scenario.c_str(), result.points.size(), options.grid.NumPoints(),
                shard_index, shard_count, static_cast<unsigned long long>(result.replications),
                static_cast<unsigned long long>(result.base_seed));
    std::vector<std::string> header = result.param_keys;
    for (const char* col : {"metric", "count", "mean", "stddev", "ci95_half", "min", "max"}) {
      header.emplace_back(col);
    }
    header.emplace_back(result.streamed ? "p50_approx" : "p50");
    header.emplace_back(result.streamed ? "p95_approx" : "p95");
    Table table(header);
    for (const SweepPointResult& point : result.points) {
      for (const MetricAggregate& a : point.aggregates) {
        std::vector<std::string> row;
        for (const auto& [key, value] : point.point) {
          row.push_back(value);
        }
        row.push_back(a.metric);
        row.push_back(std::to_string(a.count));
        for (double v : {a.mean, a.stddev, a.ci95_half, a.min, a.max, a.p50, a.p95}) {
          row.push_back(Table::Num(v, 4));
        }
        table.AddRow(row);
      }
    }
    std::fputs(table.ToString().c_str(), stdout);
  }
  if (!csv_path.empty() && streamed_csv_writer == nullptr &&
      !WriteFileOrComplain(csv_path, SweepResultToCsv(result))) {
    return 1;
  }
  if (verbose) {
    PrintHotPathStats();
  }
  return 0;
}

int Main(int argc, char** argv) {
  CampaignOptions options;
  std::vector<std::string> sweep_specs;
  std::string shard_spec;
  std::string csv_path;
  std::string json_path;
  std::string reps_csv_path;
  std::string binary_out_path;
  std::vector<std::string> param_keys_seen;
  bool quiet = false;
  bool verbose = false;
  bool stream = false;
  bool no_stream = false;

  auto value_of = [](const char* arg, const char* flag) -> const char* {
    const size_t n = std::strlen(flag);
    return std::strncmp(arg, flag, n) == 0 && arg[n] == '=' ? arg + n + 1 : nullptr;
  };
  // Digits-only parse: stoull would accept "-1" (wrapping to 2^64-1) and
  // terminate the process on "abc"; a flag typo deserves a usage error.
  bool parse_failed = false;
  auto parse_u64 = [&parse_failed](const char* flag, const char* v) -> uint64_t {
    if (*v == '\0' || std::strspn(v, "0123456789") != std::strlen(v)) {
      std::fprintf(stderr, "%s expects a non-negative integer, got '%s'\n", flag, v);
      parse_failed = true;
      return 0;
    }
    try {
      return std::stoull(v);
    } catch (const std::out_of_range&) {
      std::fprintf(stderr, "%s value '%s' is out of range\n", flag, v);
      parse_failed = true;
      return 0;
    }
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* v = nullptr;
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintUsage();
      return 0;
    } else if (std::strcmp(arg, "--version") == 0) {
      std::fputs(VersionLine("wlansim_run").c_str(), stdout);
      return 0;
    } else if (std::strcmp(arg, "--list") == 0) {
      return ListScenarios();
    } else if ((v = value_of(arg, "--describe")) != nullptr) {
      return DescribeScenario(v);
    } else if ((v = value_of(arg, "--scenario")) != nullptr) {
      options.scenario = v;
    } else if ((v = value_of(arg, "--reps")) != nullptr) {
      options.replications = parse_u64("--reps", v);
    } else if ((v = value_of(arg, "--jobs")) != nullptr) {
      options.jobs = static_cast<unsigned>(parse_u64("--jobs", v));
    } else if ((v = value_of(arg, "--seed")) != nullptr) {
      options.base_seed = parse_u64("--seed", v);
    } else if ((v = value_of(arg, "--param")) != nullptr ||
               (std::strcmp(arg, "--param") == 0 && i + 1 < argc && (v = argv[++i]) != nullptr)) {
      const char* eq = std::strchr(v, '=');
      if (eq == nullptr || eq == v) {
        std::fprintf(stderr, "--param expects KEY=VALUE, got '%s'\n", v);
        return 1;
      }
      std::string key(v, eq);
      for (const std::string& seen : param_keys_seen) {
        if (seen == key) {
          std::fprintf(stderr,
                       "--param %s given twice; the second value would silently win\n",
                       key.c_str());
          return 1;
        }
      }
      param_keys_seen.push_back(key);
      options.params.Set(key, std::string(eq + 1));
    } else if ((v = value_of(arg, "--sweep")) != nullptr ||
               (std::strcmp(arg, "--sweep") == 0 && i + 1 < argc && (v = argv[++i]) != nullptr)) {
      sweep_specs.emplace_back(v);
    } else if ((v = value_of(arg, "--shard")) != nullptr) {
      shard_spec = v;
    } else if ((v = value_of(arg, "--csv")) != nullptr) {
      csv_path = v;
    } else if ((v = value_of(arg, "--json")) != nullptr) {
      json_path = v;
    } else if ((v = value_of(arg, "--reps-csv")) != nullptr) {
      reps_csv_path = v;
    } else if ((v = value_of(arg, "--binary-out")) != nullptr) {
      binary_out_path = v;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      verbose = true;
    } else if (std::strcmp(arg, "--stream") == 0) {
      stream = true;
    } else if (std::strcmp(arg, "--no-stream") == 0) {
      no_stream = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n\n", arg);
      PrintUsage();
      return 1;
    }
  }

  if (parse_failed) {
    return 1;
  }
  if (options.scenario.empty()) {
    PrintUsage();
    return 1;
  }
  if (options.replications == 0) {
    std::fprintf(stderr, "--reps must be at least 1\n");
    return 1;
  }
  if (stream && no_stream) {
    std::fprintf(stderr, "--stream and --no-stream are mutually exclusive\n");
    return 1;
  }
  if (!binary_out_path.empty() && no_stream &&
      options.replications >= kAutoStreamReplications) {
    std::fprintf(stderr,
                 "--binary-out with --no-stream at >= %llu replications would buffer every "
                 "row for the exact aggregates while the binary file streams; drop "
                 "--no-stream (the binary records are exact either way)\n",
                 static_cast<unsigned long long>(kAutoStreamReplications));
    return 1;
  }
  // Each output flag owns its file; two flags aimed at one path would just
  // overwrite each other in flag order.
  {
    const std::pair<const char*, const std::string*> outputs[] = {
        {"--csv", &csv_path},
        {"--json", &json_path},
        {"--reps-csv", &reps_csv_path},
        {"--binary-out", &binary_out_path},
    };
    for (size_t a = 0; a < std::size(outputs); ++a) {
      for (size_t b = a + 1; b < std::size(outputs); ++b) {
        if (!outputs[a].second->empty() && *outputs[a].second == *outputs[b].second) {
          std::fprintf(stderr, "%s and %s both point at '%s'; each output needs its own file\n",
                       outputs[a].first, outputs[b].first, outputs[a].second->c_str());
          return 1;
        }
      }
    }
  }
  options.stream =
      !no_stream && (stream || options.replications >= kAutoStreamReplications);

  unsigned shard_index = 0;
  unsigned shard_count = 1;
  if (!shard_spec.empty() && !ParseShard(shard_spec, &shard_index, &shard_count)) {
    std::fprintf(stderr, "--shard expects I/N with 0 <= I < N, got '%s'\n", shard_spec.c_str());
    return 1;
  }
  if (!sweep_specs.empty()) {
    if (!json_path.empty() || !reps_csv_path.empty()) {
      std::fprintf(stderr, "--json/--reps-csv are not supported in sweep mode; use --csv\n");
      return 1;
    }
    return RunSweep(options, sweep_specs, shard_index, shard_count, csv_path, binary_out_path,
                    quiet, verbose);
  }
  if (!shard_spec.empty()) {
    std::fprintf(stderr, "--shard requires at least one --sweep axis\n");
    return 1;
  }

  // In stream mode the per-replication CSV is written by a pipeline
  // consumer while the campaign runs, so rows hit the disk as replications
  // complete and are never all in memory at once.
  std::ofstream streamed_reps_out;
  std::unique_ptr<StreamingCsvWriter> streamed_reps_writer;
  if (options.stream && !reps_csv_path.empty()) {
    streamed_reps_out.open(reps_csv_path, std::ios::binary);
    if (!streamed_reps_out) {
      std::fprintf(stderr, "cannot write %s\n", reps_csv_path.c_str());
      return 1;
    }
    streamed_reps_writer = std::make_unique<StreamingCsvWriter>(streamed_reps_out);
    options.consumers.push_back(streamed_reps_writer.get());
  }

  // The binary record stream rides the same pipeline in both modes: every
  // record is stored whole whether the aggregates are exact or online.
  std::ofstream binary_out;
  std::unique_ptr<BinaryCampaignWriter> binary_writer;
  if (!binary_out_path.empty()) {
    binary_out.open(binary_out_path, std::ios::binary);
    if (!binary_out) {
      std::fprintf(stderr, "cannot write %s\n", binary_out_path.c_str());
      return 1;
    }
    binary_writer = std::make_unique<BinaryCampaignWriter>(binary_out, options.stream);
    options.consumers.push_back(binary_writer.get());
  }

  CampaignResult result;
  try {
    result = RunCampaign(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  const std::string agg_csv = ResultSink::AggregatesToCsv(result.aggregates, result.streamed);
  if (!quiet) {
    std::printf("=== %s: %llu replication(s), base seed %llu%s ===\n", result.scenario.c_str(),
                static_cast<unsigned long long>(result.replication_count),
                static_cast<unsigned long long>(result.base_seed),
                result.streamed ? ", streamed" : "");
    Table table({"metric", "count", "mean", "stddev", "ci95_half", "min", "max",
                 result.streamed ? "p50_approx" : "p50", result.streamed ? "p95_approx" : "p95"});
    for (const MetricAggregate& a : result.aggregates) {
      table.AddRow({a.metric, std::to_string(a.count), Table::Num(a.mean, 4),
                    Table::Num(a.stddev, 4), Table::Num(a.ci95_half, 4), Table::Num(a.min, 4),
                    Table::Num(a.max, 4), Table::Num(a.p50, 4), Table::Num(a.p95, 4)});
    }
    std::fputs(table.ToString().c_str(), stdout);
  }
  if (!csv_path.empty() && !WriteFileOrComplain(csv_path, agg_csv)) {
    return 1;
  }
  if (!json_path.empty() &&
      !WriteFileOrComplain(json_path, ResultSink::AggregatesToJson(result.scenario,
                                                                   result.replication_count,
                                                                   result.aggregates,
                                                                   result.streamed))) {
    return 1;
  }
  if (!reps_csv_path.empty() && !result.streamed &&
      !WriteFileOrComplain(reps_csv_path, ResultSink::ReplicationsToCsv(result.replications))) {
    return 1;
  }
  if (verbose) {
    PrintHotPathStats();
  }
  return 0;
}

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  return wlansim::Main(argc, argv);
}
