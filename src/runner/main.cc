// wlansim_run — the campaign CLI. Runs N independent replications of any
// registered scenario across a worker pool and prints (or writes) the
// aggregated results.
//
//   wlansim_run --list
//   wlansim_run --describe=saturation
//   wlansim_run --scenario=saturation --reps=8 --jobs=4 --param n_stas=10
//   wlansim_run --scenario=edca --reps=16 --jobs=0 --csv=agg.csv --json=agg.json

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>

#include "runner/campaign.h"
#include "runner/scenario_registry.h"
#include "stats/table.h"

namespace wlansim {
namespace {

void PrintUsage() {
  std::printf(
      "usage: wlansim_run --scenario=NAME [options]\n"
      "\n"
      "options:\n"
      "  --scenario=NAME     registered scenario to run (see --list)\n"
      "  --reps=N            independent replications (default 1)\n"
      "  --jobs=N            worker threads; 0 = all hardware threads (default 1)\n"
      "  --seed=N            campaign base seed (default 1)\n"
      "  --param KEY=VALUE   scenario parameter (repeatable; also --param=KEY=VALUE)\n"
      "  --csv=FILE          write the aggregate table as CSV\n"
      "  --json=FILE         write the aggregate table as JSON\n"
      "  --reps-csv=FILE     write one CSV row per replication\n"
      "  --list              list registered scenarios\n"
      "  --describe=NAME     show a scenario's parameters and defaults\n"
      "  --quiet             suppress the stdout table\n");
}

int ListScenarios() {
  const ScenarioRegistry& registry = ScenarioRegistry::Global();
  Table table({"scenario", "description"});
  for (const std::string& name : registry.Names()) {
    table.AddRow({name, std::string(registry.Find(name)->description())});
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

int DescribeScenario(const std::string& name) {
  const Scenario* scenario = ScenarioRegistry::Global().Find(name);
  if (scenario == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s'; run --list\n", name.c_str());
    return 1;
  }
  std::printf("%s — %s\n\n", name.c_str(), std::string(scenario->description()).c_str());
  Table table({"parameter", "default", "help"});
  for (const ParamSpec& spec : scenario->param_specs()) {
    table.AddRow({spec.name, spec.default_value, spec.help});
  }
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

bool WriteFileOrComplain(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

int Main(int argc, char** argv) {
  CampaignOptions options;
  std::string csv_path;
  std::string json_path;
  std::string reps_csv_path;
  bool quiet = false;

  auto value_of = [](const char* arg, const char* flag) -> const char* {
    const size_t n = std::strlen(flag);
    return std::strncmp(arg, flag, n) == 0 && arg[n] == '=' ? arg + n + 1 : nullptr;
  };
  // Digits-only parse: stoull would accept "-1" (wrapping to 2^64-1) and
  // terminate the process on "abc"; a flag typo deserves a usage error.
  bool parse_failed = false;
  auto parse_u64 = [&parse_failed](const char* flag, const char* v) -> uint64_t {
    if (*v == '\0' || std::strspn(v, "0123456789") != std::strlen(v)) {
      std::fprintf(stderr, "%s expects a non-negative integer, got '%s'\n", flag, v);
      parse_failed = true;
      return 0;
    }
    try {
      return std::stoull(v);
    } catch (const std::out_of_range&) {
      std::fprintf(stderr, "%s value '%s' is out of range\n", flag, v);
      parse_failed = true;
      return 0;
    }
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* v = nullptr;
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintUsage();
      return 0;
    } else if (std::strcmp(arg, "--list") == 0) {
      return ListScenarios();
    } else if ((v = value_of(arg, "--describe")) != nullptr) {
      return DescribeScenario(v);
    } else if ((v = value_of(arg, "--scenario")) != nullptr) {
      options.scenario = v;
    } else if ((v = value_of(arg, "--reps")) != nullptr) {
      options.replications = parse_u64("--reps", v);
    } else if ((v = value_of(arg, "--jobs")) != nullptr) {
      options.jobs = static_cast<unsigned>(parse_u64("--jobs", v));
    } else if ((v = value_of(arg, "--seed")) != nullptr) {
      options.base_seed = parse_u64("--seed", v);
    } else if ((v = value_of(arg, "--param")) != nullptr ||
               (std::strcmp(arg, "--param") == 0 && i + 1 < argc && (v = argv[++i]) != nullptr)) {
      const char* eq = std::strchr(v, '=');
      if (eq == nullptr || eq == v) {
        std::fprintf(stderr, "--param expects KEY=VALUE, got '%s'\n", v);
        return 1;
      }
      options.params.Set(std::string(v, eq), std::string(eq + 1));
    } else if ((v = value_of(arg, "--csv")) != nullptr) {
      csv_path = v;
    } else if ((v = value_of(arg, "--json")) != nullptr) {
      json_path = v;
    } else if ((v = value_of(arg, "--reps-csv")) != nullptr) {
      reps_csv_path = v;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n\n", arg);
      PrintUsage();
      return 1;
    }
  }

  if (parse_failed) {
    return 1;
  }
  if (options.scenario.empty()) {
    PrintUsage();
    return 1;
  }
  if (options.replications == 0) {
    std::fprintf(stderr, "--reps must be at least 1\n");
    return 1;
  }

  CampaignResult result;
  try {
    result = RunCampaign(options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  const std::string agg_csv = ResultSink::AggregatesToCsv(result.aggregates);
  if (!quiet) {
    std::printf("=== %s: %llu replication(s), base seed %llu ===\n", result.scenario.c_str(),
                static_cast<unsigned long long>(result.replications.size()),
                static_cast<unsigned long long>(result.base_seed));
    Table table({"metric", "count", "mean", "stddev", "ci95_half", "min", "max"});
    for (const MetricAggregate& a : result.aggregates) {
      table.AddRow({a.metric, std::to_string(a.count), Table::Num(a.mean, 4),
                    Table::Num(a.stddev, 4), Table::Num(a.ci95_half, 4), Table::Num(a.min, 4),
                    Table::Num(a.max, 4)});
    }
    std::fputs(table.ToString().c_str(), stdout);
  }
  if (!csv_path.empty() && !WriteFileOrComplain(csv_path, agg_csv)) {
    return 1;
  }
  if (!json_path.empty() &&
      !WriteFileOrComplain(json_path,
                           ResultSink::AggregatesToJson(
                               result.scenario, result.replications.size(), result.aggregates))) {
    return 1;
  }
  if (!reps_csv_path.empty() &&
      !WriteFileOrComplain(reps_csv_path, ResultSink::ReplicationsToCsv(result.replications))) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  return wlansim::Main(argc, argv);
}
