// The consumption half of the results pipeline: replication records flow
// from the campaign worker pool through a ResultPipeline, which re-orders
// them into replication order (workers finish out of order) and fans each
// record out to every attached ResultConsumer. This replaces ResultSink's
// buffer-everything model: a consumer only sees one record at a time, so a
// 10^4..10^6-replication campaign can stream rows to disk and aggregate
// online with peak memory independent of the replication count.
//
// Built-in consumers:
//   - StreamingCsvWriter  appends one CSV row per replication as records
//     arrive; byte-identical to ResultSink::ReplicationsToCsv when every
//     replication reports the same metric set.
//   - OnlineAggregator    Welford summaries + P-square p50/p95 per metric,
//     O(metrics) memory; the --stream aggregation path.
//   - InMemoryConsumer    buffers whole records; exact aggregation for the
//     default (batch-equivalent) path and for tests.

#ifndef WLANSIM_RUNNER_RESULT_CONSUMER_H_
#define WLANSIM_RUNNER_RESULT_CONSUMER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "runner/metric_recorder.h"
#include "runner/result_sink.h"
#include "stats/p2_quantile.h"
#include "stats/summary.h"

namespace wlansim {

// What a consumer knows about the campaign before the first record.
struct CampaignManifest {
  std::string scenario;
  uint64_t base_seed = 1;
  uint64_t replications = 0;
};

// Interface every result consumer implements. The pipeline serializes all
// calls (they happen under its delivery lock, in replication order), so
// consumers need no synchronization of their own.
class ResultConsumer {
 public:
  virtual ~ResultConsumer() = default;

  // Called once, before any record.
  virtual void BeginCampaign(const CampaignManifest& manifest) { (void)manifest; }

  // Called once per replication, in strict replication order 0..N-1.
  virtual void OnRecord(const ReplicationRecord& record) = 0;

  // Called once, after the last record.
  virtual void EndCampaign() {}
};

// Thread-safe fan-out with a reorder buffer. Workers deliver records in
// completion order; the pipeline holds records that arrive early in a map
// keyed by replication index and flushes the in-order prefix to every
// consumer. The buffer stays small in practice — its depth is bounded by
// the completion skew of the worker pool (~jobs records), never by the
// campaign size.
class ResultPipeline {
 public:
  explicit ResultPipeline(CampaignManifest manifest);

  // Consumers are not owned and must outlive the pipeline. Must be called
  // before Begin().
  void AddConsumer(ResultConsumer* consumer);

  // Announces the campaign to every consumer.
  void Begin();

  // Thread-safe. Throws std::out_of_range when record.replication >= the
  // manifest's replication count, and std::logic_error when that index was
  // already delivered (double-set replication: a seeding or scheduling bug
  // that previously would have silently overwritten a row).
  void Deliver(ReplicationRecord record);

  // Verifies every replication arrived (std::logic_error otherwise) and
  // tells every consumer the campaign is over.
  void End();

  // High-water mark of the reorder buffer, for tests and memory accounting.
  size_t max_reorder_depth() const;

 private:
  CampaignManifest manifest_;
  std::vector<ResultConsumer*> consumers_;

  mutable std::mutex mu_;
  uint64_t next_ = 0;  // lowest replication index not yet dispatched
  std::map<uint64_t, ReplicationRecord> pending_;
  size_t max_pending_ = 0;
};

// Streams one CSV row per replication to `out` as records arrive. The
// column set is fixed by the first record (metric names, sorted); a later
// record with a different metric set throws std::runtime_error, because the
// already-written header can no longer be amended. Output is byte-identical
// to ResultSink::ReplicationsToCsv over the same rows.
class StreamingCsvWriter final : public ResultConsumer {
 public:
  explicit StreamingCsvWriter(std::ostream& out) : out_(out) {}

  // One writer serves one campaign: a second BeginCampaign throws, because
  // appending a second campaign's rows (restarting at replication 0, no new
  // header) to the same stream would corrupt it silently.
  void BeginCampaign(const CampaignManifest& manifest) override;
  void OnRecord(const ReplicationRecord& record) override;
  void EndCampaign() override;

 private:
  std::ostream& out_;
  std::vector<std::string> columns_;
  bool begun_ = false;
  bool wrote_header_ = false;
};

// Online aggregation: one Welford summary plus two P-square marker sets per
// metric — O(metrics) memory however many replications stream through.
// Aggregates() reports the same fields as exact aggregation, with p50/p95
// replaced by their P-square estimates (label the columns approximate!).
class OnlineAggregator final : public ResultConsumer {
 public:
  void OnRecord(const ReplicationRecord& record) override;

  std::vector<MetricAggregate> Aggregates() const;

 private:
  struct MetricState {
    Summary summary;
    P2Quantile p50{0.50};
    P2Quantile p95{0.95};
  };
  std::map<std::string, MetricState> metrics_;
};

// Buffers every record whole (scalars + distributions). This is the exact
// aggregation path — identical numbers, hence identical CSV/JSON bytes, to
// the historical ResultSink — and the natural consumer for tests.
class InMemoryConsumer final : public ResultConsumer {
 public:
  void OnRecord(const ReplicationRecord& record) override { records_.push_back(record); }

  const std::vector<ReplicationRecord>& records() const { return records_; }

  // The records' scalar maps, as the legacy per-replication row vector.
  std::vector<ReplicationResult> ToReplicationResults() const;

  // Exact aggregates (sorted-sample quantiles), byte-identical to
  // ResultSink::Aggregate over the same rows.
  std::vector<MetricAggregate> Aggregates() const;

 private:
  std::vector<ReplicationRecord> records_;
};

}  // namespace wlansim

#endif  // WLANSIM_RUNNER_RESULT_CONSUMER_H_
