// The recording half of the results pipeline. A MetricRecorder is handed to
// Scenario::Run through ReplicationContext so a scenario can emit metrics
// *during* a replication — counters, last-value scalars, streamed gauge
// samples, and fixed-bin histograms — instead of being limited to the
// scalar map Run() returns. When the replication finishes, Finish() folds
// everything recorded (plus the scalars Run() returned, which keeps every
// pre-recorder scenario working unmodified) into one ReplicationRecord, the
// unit the ResultConsumer pipeline streams.

#ifndef WLANSIM_RUNNER_METRIC_RECORDER_H_
#define WLANSIM_RUNNER_METRIC_RECORDER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "runner/scenario.h"
#include "stats/histogram.h"
#include "stats/summary.h"

namespace wlansim {

// A recorded distribution: the histogram bins plus the exact streaming
// summary of every sample added (including values outside the bin range).
struct DistributionSnapshot {
  double lo = 0.0;
  double bin_width = 1.0;
  std::vector<uint64_t> bins;
  uint64_t underflow = 0;
  uint64_t overflow = 0;
  uint64_t total = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

// Everything one replication produced: the scalar metric map (what the
// legacy ReplicationResult carried) plus any recorded distributions.
// Consumers receive records in replication order.
struct ReplicationRecord {
  uint64_t replication = 0;
  std::map<std::string, double> metrics;
  std::map<std::string, DistributionSnapshot> distributions;
};

// Single-replication metric collector. Not thread-safe: each replication
// owns its recorder, so recording never synchronizes — the pipeline's
// ordered delivery is the only cross-thread point.
//
// Flush rules (applied by Finish, documented here because the CSV column
// set follows from them):
//   - counters and scalars become metrics under their own name;
//   - a gauge named G becomes G_count / G_mean / G_min / G_max;
//   - a histogram named H becomes H_p10 / H_p50 / H_p90 (interpolated bin
//     quantiles) plus H_mean / H_min / H_max, and its full bin vector rides
//     along in ReplicationRecord::distributions;
//   - the scalars Run() returned are merged last.
// Any name collision between those sources throws std::logic_error: a
// silently overwritten metric is a campaign-correctness bug.
class MetricRecorder {
 public:
  // Accumulating counter (created at zero on first use).
  void AddCount(const std::string& name, double delta = 1.0);

  // Last-value scalar; overwriting via SetScalar is allowed (that is the
  // point of a gauge-style scalar), colliding with another source is not.
  void SetScalar(const std::string& name, double value);

  // Streamed gauge sample: O(1) memory per gauge (Welford summary).
  void AddSample(const std::string& name, double value);

  // Declares a fixed-bin histogram; throws std::logic_error when the name
  // was already declared or bin_count is zero.
  void DeclareHistogram(const std::string& name, double lo, double bin_width, size_t bin_count);

  // Adds to a declared histogram; throws std::logic_error when undeclared.
  void AddHistogramSample(const std::string& name, double value);

  bool empty() const {
    return counters_.empty() && scalars_.empty() && gauges_.empty() && histograms_.empty();
  }

  // Folds everything recorded plus `returned` into the replication's record.
  // Throws std::logic_error on any metric-name collision.
  ReplicationRecord Finish(uint64_t replication, const ReplicationResult& returned) const;

 private:
  struct HistogramState {
    Histogram histogram;
    Summary summary;
  };

  std::map<std::string, double> counters_;
  std::map<std::string, double> scalars_;
  std::map<std::string, Summary> gauges_;
  std::map<std::string, HistogramState> histograms_;
};

}  // namespace wlansim

#endif  // WLANSIM_RUNNER_METRIC_RECORDER_H_
