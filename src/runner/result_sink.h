// Collects per-replication metric rows and aggregates them into
// mean / stddev / 95 % confidence intervals, with CSV and JSON writers.

#ifndef WLANSIM_RUNNER_RESULT_SINK_H_
#define WLANSIM_RUNNER_RESULT_SINK_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "runner/scenario.h"

namespace wlansim {

// Aggregate of one metric across replications.
struct MetricAggregate {
  std::string metric;
  uint64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;    // sample standard deviation
  double ci95_half = 0.0; // Student-t 95 % confidence half-width on the mean
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;  // exact median over the stored replications
  double p95 = 0.0;  // exact 95th percentile over the stored replications
};

// Exact sample quantile with linear interpolation between order statistics
// (the R type-7 / NumPy default): for n values, rank h = (n-1)q, result is
// v[floor(h)] + (h - floor(h)) * (v[floor(h)+1] - v[floor(h)]). `values`
// need not be sorted; it is copied. Returns 0 for an empty sample. Exposed
// for the quantile-math tests.
double ExactQuantile(std::vector<double> values, double q);

// Two-sided 95 % Student-t critical value for `df` degrees of freedom
// (asymptotically 1.960). Exposed for the aggregation test.
double StudentT95(uint64_t df);

// RFC 4180 field quoting: fields containing a comma, double quote, CR or LF
// are wrapped in double quotes with embedded quotes doubled; everything else
// passes through unchanged. Applied to every name/value the CSV writers
// emit, so a scenario, metric or parameter name can contain any character
// without corrupting rows.
std::string CsvField(const std::string& field);

// The fixed-width, locale-independent "%.9g" number format every CSV/JSON
// writer uses — shared so the streaming row writer is byte-identical to the
// batch one.
std::string CsvNum(double v);

// One row of a long-format sweep CSV: the swept parameter values (parallel
// to the key list handed to SweepLongCsv) plus that point's aggregates.
struct SweepRow {
  std::vector<std::string> param_values;
  std::vector<MetricAggregate> aggregates;
};

// Batch (buffer-everything) replication collector. The campaign runner now
// streams results through ResultPipeline/ResultConsumer instead; ResultSink
// remains the exact-aggregation building block for bounded collections (the
// perf harness, tests) and the home of the shared CSV/JSON formatters.
class ResultSink {
 public:
  // Sized upfront so workers can store results by replication index; the
  // aggregate therefore never depends on completion order.
  explicit ResultSink(size_t replications);

  // Thread-safe; each index must be set exactly once. Throws
  // std::out_of_range for an index beyond the sized capacity and
  // std::logic_error when the index was already stored — a double-set
  // replication is a seeding/scheduling bug, not a row to overwrite.
  void Store(size_t replication, ReplicationResult result);

  const std::vector<ReplicationResult>& replications() const { return replications_; }

  // Per-metric aggregates over every stored replication, ordered by metric
  // name. Metrics absent from some replications aggregate over the
  // replications that do report them.
  std::vector<MetricAggregate> Aggregate() const;

  // The exact aggregation underlying Aggregate(), over any row vector; the
  // in-memory pipeline consumer shares it so batch and exact-streamed
  // aggregates are the same numbers, hence the same bytes.
  static std::vector<MetricAggregate> AggregateReplications(
      const std::vector<ReplicationResult>& replications);

  // One CSV row per replication: replication,<metric columns sorted by name>.
  static std::string ReplicationsToCsv(const std::vector<ReplicationResult>& replications);

  // One CSV row per metric: metric,count,mean,stddev,ci95_half,min,max,p50,p95.
  // When `approx_quantiles` is set (online P-square aggregation), the
  // quantile columns are labeled p50_approx/p95_approx so downstream tooling
  // can never mistake an estimate for an exact sample quantile.
  static std::string AggregatesToCsv(const std::vector<MetricAggregate>& aggregates,
                                     bool approx_quantiles = false);

  // {"scenario": ..., "replications": N, "metrics": {name: {...}, ...}}
  // Approximate quantiles are keyed p50_approx/p95_approx, as in the CSV.
  static std::string AggregatesToJson(const std::string& scenario_name, uint64_t replications,
                                      const std::vector<MetricAggregate>& aggregates,
                                      bool approx_quantiles = false);

  // Long-format sweep CSV: header `<param_keys...>,metric,count,mean,stddev,
  // ci95_half,min,max,p50,p95`, then one row per (grid point, metric). Rows from a
  // shard slice concatenate under a single header into exactly the unsharded
  // output. `approx_quantiles` relabels the quantile columns as above.
  static std::string SweepLongCsv(const std::vector<std::string>& param_keys,
                                  const std::vector<SweepRow>& rows,
                                  bool approx_quantiles = false);

  // The pieces SweepLongCsv is assembled from, shared with the streaming
  // sweep writer and the binary-export path so their bytes cannot drift:
  // the header line, and one grid point's block of per-metric rows.
  static std::string SweepLongCsvHeader(const std::vector<std::string>& param_keys,
                                        bool approx_quantiles);
  static std::string SweepLongCsvRows(const std::vector<std::string>& param_values,
                                      const std::vector<MetricAggregate>& aggregates);

 private:
  mutable std::mutex mu_;
  std::vector<ReplicationResult> replications_;
  std::vector<bool> stored_;
};

}  // namespace wlansim

#endif  // WLANSIM_RUNNER_RESULT_SINK_H_
