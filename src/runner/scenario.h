// The Scenario abstraction: a named, parameterised experiment that runs one
// independent replication and returns scalar metrics. Scenarios are pure
// functions of (params, seed) — they build their own Network/Simulator, so
// many replications can run concurrently on different threads.

#ifndef WLANSIM_RUNNER_SCENARIO_H_
#define WLANSIM_RUNNER_SCENARIO_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace wlansim {

// Typed view over "--param key=value" pairs. Values are kept as strings and
// parsed on access; a malformed value throws std::invalid_argument naming the
// key so the CLI can report it.
class ScenarioParams {
 public:
  void Set(std::string key, std::string value);
  bool Has(const std::string& key) const;

  std::string GetString(const std::string& key, std::string def) const;
  double GetDouble(const std::string& key, double def) const;
  int64_t GetInt(const std::string& key, int64_t def) const;
  // Like GetInt but rejects negative values (counts, sizes, thresholds):
  // without this, a typo'd "-1" would silently become 2^64-1 of something.
  uint64_t GetUint(const std::string& key, uint64_t def) const;
  bool GetBool(const std::string& key, bool def) const;

  const std::map<std::string, std::string>& entries() const { return entries_; }

 private:
  std::map<std::string, std::string> entries_;
};

// Scalar metrics from one replication, keyed by metric name. std::map keeps
// iteration (and therefore aggregation and CSV/JSON column order)
// deterministic.
struct ReplicationResult {
  std::map<std::string, double> metrics;
};

class MetricRecorder;

// Per-replication context handed to Scenario::Run. The seed is derived via
// Rng::Substream(base_seed, scenario_name, replication), so it does not
// depend on which thread executes the replication.
struct ReplicationContext {
  uint64_t seed = 1;
  uint64_t replication = 0;
  // Richer-than-scalar metric channel (counters, gauge samples, histograms),
  // owned by the campaign runner. Null when the caller only collects the
  // Run() return value (direct builder/bench invocations), so scenarios must
  // guard uses: `if (ctx.recorder != nullptr) ...`.
  MetricRecorder* recorder = nullptr;
};

// One documented parameter of a scenario.
struct ParamSpec {
  std::string name;
  std::string default_value;
  std::string help;
};

class Scenario {
 public:
  virtual ~Scenario() = default;

  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;
  virtual std::vector<ParamSpec> param_specs() const { return {}; }

  // Runs one replication. Must not touch global mutable state: the campaign
  // runner calls this from multiple threads at once.
  virtual ReplicationResult Run(const ScenarioParams& params,
                                const ReplicationContext& ctx) const = 0;

  // Rejects parameters that are not in param_specs() (catches typos before a
  // campaign silently runs the default configuration N times).
  void ValidateParams(const ScenarioParams& params) const;
};

// Function-backed scenario, the terse registration form used by the built-in
// scenario table and by examples.
class FunctionScenario final : public Scenario {
 public:
  using RunFn =
      std::function<ReplicationResult(const ScenarioParams&, const ReplicationContext&)>;

  FunctionScenario(std::string name, std::string description,
                   std::vector<ParamSpec> param_specs, RunFn fn)
      : name_(std::move(name)),
        description_(std::move(description)),
        param_specs_(std::move(param_specs)),
        fn_(std::move(fn)) {}

  std::string_view name() const override { return name_; }
  std::string_view description() const override { return description_; }
  std::vector<ParamSpec> param_specs() const override { return param_specs_; }
  ReplicationResult Run(const ScenarioParams& params,
                        const ReplicationContext& ctx) const override {
    return fn_(params, ctx);
  }

 private:
  std::string name_;
  std::string description_;
  std::vector<ParamSpec> param_specs_;
  RunFn fn_;
};

}  // namespace wlansim

#endif  // WLANSIM_RUNNER_SCENARIO_H_
