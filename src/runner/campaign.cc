#include "runner/campaign.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "core/random.h"
#include "runner/metric_recorder.h"
#include "runner/result_consumer.h"
#include "runner/scenario_registry.h"

namespace wlansim {

void RunTaskPool(unsigned jobs, uint64_t total, const std::function<void(uint64_t)>& task) {
  if (total == 0) {
    return;
  }
  if (jobs == 0) {
    jobs = std::thread::hardware_concurrency();
    if (jobs == 0) {
      jobs = 1;
    }
  }
  if (total < jobs) {
    jobs = static_cast<unsigned>(total);
  }

  std::atomic<uint64_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&]() {
    for (uint64_t i = next.fetch_add(1); i < total; i = next.fetch_add(1)) {
      if (failed.load(std::memory_order_relaxed)) {
        return;  // a task already threw; don't burn the remaining work
      }
      try {
        task(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) {
          first_error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  if (jobs == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

CampaignResult Campaign::Run(const CampaignOptions& options) const {
  const uint64_t reps = options.replications;

  CampaignManifest manifest;
  manifest.scenario = std::string(scenario_.name());
  manifest.base_seed = options.base_seed;
  manifest.replications = reps;

  ResultPipeline pipeline(manifest);
  // Exactly one built-in aggregation consumer rides the pipeline: the
  // in-memory exact one (default — byte-identical output to the batch
  // collector it replaced), or the online one (streaming — O(metrics)
  // memory, approximate quantiles).
  InMemoryConsumer memory;
  OnlineAggregator online;
  if (options.stream) {
    pipeline.AddConsumer(&online);
  } else {
    pipeline.AddConsumer(&memory);
  }
  for (ResultConsumer* consumer : options.consumers) {
    pipeline.AddConsumer(consumer);
  }
  pipeline.Begin();

  RunTaskPool(options.jobs, reps, [&](uint64_t i) {
    ReplicationContext ctx;
    ctx.replication = i;
    ctx.seed = SubstreamSeed(options.base_seed, scenario_.name(), i);
    MetricRecorder recorder;
    ctx.recorder = &recorder;
    const ReplicationResult returned = scenario_.Run(options.params, ctx);
    pipeline.Deliver(recorder.Finish(i, returned));
  });
  pipeline.End();

  CampaignResult result;
  result.scenario = manifest.scenario;
  result.base_seed = options.base_seed;
  result.replication_count = reps;
  result.streamed = options.stream;
  if (options.stream) {
    result.aggregates = online.Aggregates();
  } else {
    result.replications = memory.ToReplicationResults();
    result.aggregates = ResultSink::AggregateReplications(result.replications);
  }
  return result;
}

CampaignResult RunCampaign(const CampaignOptions& options) {
  const Scenario* scenario = ScenarioRegistry::Global().Find(options.scenario);
  if (scenario == nullptr) {
    std::string msg = "unknown scenario '" + options.scenario + "'; available:";
    for (const std::string& name : ScenarioRegistry::Global().Names()) {
      msg += " " + name;
    }
    throw std::invalid_argument(msg);
  }
  scenario->ValidateParams(options.params);
  return Campaign(*scenario).Run(options);
}

}  // namespace wlansim
