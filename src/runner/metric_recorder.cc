#include "runner/metric_recorder.h"

#include <stdexcept>
#include <utility>

namespace wlansim {
namespace {

// All flushed names funnel through here so a collision between any two
// sources (counter vs returned scalar, gauge-derived vs histogram-derived,
// ...) is caught instead of silently overwriting one of them.
void EmitMetric(std::map<std::string, double>& metrics, const std::string& name, double value) {
  if (!metrics.emplace(name, value).second) {
    throw std::logic_error("metric '" + name + "' recorded more than once in one replication");
  }
}

}  // namespace

void MetricRecorder::AddCount(const std::string& name, double delta) {
  counters_[name] += delta;
}

void MetricRecorder::SetScalar(const std::string& name, double value) {
  scalars_[name] = value;
}

void MetricRecorder::AddSample(const std::string& name, double value) {
  gauges_[name].Add(value);
}

void MetricRecorder::DeclareHistogram(const std::string& name, double lo, double bin_width,
                                      size_t bin_count) {
  if (bin_count == 0 || bin_width <= 0.0) {
    throw std::logic_error("histogram '" + name + "' needs bin_width > 0 and bin_count > 0");
  }
  if (!histograms_.emplace(name, HistogramState{Histogram(lo, bin_width, bin_count), Summary()})
           .second) {
    throw std::logic_error("histogram '" + name + "' declared twice");
  }
}

void MetricRecorder::AddHistogramSample(const std::string& name, double value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    throw std::logic_error("histogram '" + name + "' used before DeclareHistogram");
  }
  it->second.histogram.Add(value);
  it->second.summary.Add(value);
}

ReplicationRecord MetricRecorder::Finish(uint64_t replication,
                                         const ReplicationResult& returned) const {
  ReplicationRecord record;
  record.replication = replication;
  for (const auto& [name, value] : counters_) {
    EmitMetric(record.metrics, name, value);
  }
  for (const auto& [name, value] : scalars_) {
    EmitMetric(record.metrics, name, value);
  }
  for (const auto& [name, summary] : gauges_) {
    EmitMetric(record.metrics, name + "_count", static_cast<double>(summary.count()));
    EmitMetric(record.metrics, name + "_mean", summary.mean());
    EmitMetric(record.metrics, name + "_min", summary.min());
    EmitMetric(record.metrics, name + "_max", summary.max());
  }
  for (const auto& [name, state] : histograms_) {
    const Histogram& h = state.histogram;
    EmitMetric(record.metrics, name + "_p10", h.Quantile(0.10));
    EmitMetric(record.metrics, name + "_p50", h.Quantile(0.50));
    EmitMetric(record.metrics, name + "_p90", h.Quantile(0.90));
    EmitMetric(record.metrics, name + "_mean", state.summary.mean());
    EmitMetric(record.metrics, name + "_min", state.summary.min());
    EmitMetric(record.metrics, name + "_max", state.summary.max());

    DistributionSnapshot snapshot;
    snapshot.lo = h.bin_lower(0);
    snapshot.bin_width = h.bin_count() > 0 ? h.bin_lower(1) - h.bin_lower(0) : 1.0;
    snapshot.bins.reserve(h.bin_count());
    for (size_t i = 0; i < h.bin_count(); ++i) {
      snapshot.bins.push_back(h.bin(i));
    }
    snapshot.underflow = h.underflow();
    snapshot.overflow = h.overflow();
    snapshot.total = h.total();
    snapshot.min = state.summary.min();
    snapshot.max = state.summary.max();
    snapshot.mean = state.summary.mean();
    record.distributions.emplace(name, std::move(snapshot));
  }
  for (const auto& [name, value] : returned.metrics) {
    EmitMetric(record.metrics, name, value);
  }
  return record;
}

}  // namespace wlansim
