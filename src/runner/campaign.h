// The Campaign runner: executes N independent replications of a registered
// scenario across a std::thread worker pool. Each replication gets its own
// Simulator (built inside the scenario) and a substream-derived seed, so
// results are deterministic and byte-identical for any worker count.

#ifndef WLANSIM_RUNNER_CAMPAIGN_H_
#define WLANSIM_RUNNER_CAMPAIGN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "runner/result_sink.h"
#include "runner/scenario.h"

namespace wlansim {

class ScenarioRegistry;

struct CampaignOptions {
  std::string scenario;
  ScenarioParams params;
  uint64_t base_seed = 1;
  uint64_t replications = 1;
  // Worker threads; 0 = std::thread::hardware_concurrency().
  unsigned jobs = 1;
};

struct CampaignResult {
  std::string scenario;
  uint64_t base_seed = 1;
  std::vector<ReplicationResult> replications;  // indexed by replication number
  std::vector<MetricAggregate> aggregates;      // ordered by metric name
};

class Campaign {
 public:
  explicit Campaign(const Scenario& scenario) : scenario_(scenario) {}

  // Runs options.replications replications on options.jobs worker threads.
  // Replication i runs with seed SubstreamSeed(base_seed, scenario, i): the
  // assignment of replications to threads never affects any result.
  // Scenario exceptions are rethrown on the calling thread.
  CampaignResult Run(const CampaignOptions& options) const;

 private:
  const Scenario& scenario_;
};

// Looks `options.scenario` up in ScenarioRegistry::Global(), validates the
// params, and runs the campaign. Throws std::invalid_argument for an unknown
// scenario or parameter.
CampaignResult RunCampaign(const CampaignOptions& options);

}  // namespace wlansim

#endif  // WLANSIM_RUNNER_CAMPAIGN_H_
