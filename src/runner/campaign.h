// The Campaign runner: executes N independent replications of a registered
// scenario across a std::thread worker pool. Each replication gets its own
// Simulator (built inside the scenario) and a substream-derived seed, so
// results are deterministic and byte-identical for any worker count.

#ifndef WLANSIM_RUNNER_CAMPAIGN_H_
#define WLANSIM_RUNNER_CAMPAIGN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runner/result_consumer.h"
#include "runner/result_sink.h"
#include "runner/scenario.h"

namespace wlansim {

class ScenarioRegistry;

struct CampaignOptions {
  std::string scenario;
  ScenarioParams params;
  uint64_t base_seed = 1;
  uint64_t replications = 1;
  // Worker threads; 0 = std::thread::hardware_concurrency().
  unsigned jobs = 1;
  // Streaming mode: per-replication rows are not retained (CampaignResult::
  // replications stays empty) and aggregates come from the online path —
  // Welford summaries plus P-square p50/p95 in O(metrics) memory — so peak
  // memory is independent of the replication count. Off by default: exact
  // aggregation keeps the output byte-identical to the historical batch
  // collector.
  bool stream = false;
  // Extra consumers fanned out by the result pipeline (not owned, must
  // outlive Run). They see every ReplicationRecord in replication order, in
  // both modes — this is how rows stream to disk while the campaign runs.
  std::vector<ResultConsumer*> consumers;
};

struct CampaignResult {
  std::string scenario;
  uint64_t base_seed = 1;
  uint64_t replication_count = 0;
  // True when the campaign ran the online aggregation path: aggregates'
  // p50/p95 are P-square estimates and must be labeled approximate.
  bool streamed = false;
  std::vector<ReplicationResult> replications;  // indexed by replication number; empty if streamed
  std::vector<MetricAggregate> aggregates;      // ordered by metric name
};

// Runs `total` independent tasks (task(0) .. task(total-1)) on a pool of
// `jobs` worker threads (0 = hardware concurrency; the pool is clamped to
// `total` so no idle threads spin up). Tasks are claimed from one shared
// atomic counter, so any task can run on any thread — results must not
// depend on the assignment. If a task throws, remaining unclaimed tasks are
// skipped and the first exception is rethrown on the calling thread. Shared
// by Campaign (replications) and RunSweepCampaign ((point, rep) pairs).
void RunTaskPool(unsigned jobs, uint64_t total, const std::function<void(uint64_t)>& task);

class Campaign {
 public:
  explicit Campaign(const Scenario& scenario) : scenario_(scenario) {}

  // Runs options.replications replications on options.jobs worker threads.
  // Replication i runs with seed SubstreamSeed(base_seed, scenario, i): the
  // assignment of replications to threads never affects any result.
  // Scenario exceptions are rethrown on the calling thread.
  //
  // Each replication records through its own MetricRecorder (ctx.recorder)
  // and the resulting records flow through a ResultPipeline in replication
  // order to options.consumers plus the built-in aggregation consumer
  // (exact in-memory by default, online when options.stream is set).
  CampaignResult Run(const CampaignOptions& options) const;

 private:
  const Scenario& scenario_;
};

// Looks `options.scenario` up in ScenarioRegistry::Global(), validates the
// params, and runs the campaign. Throws std::invalid_argument for an unknown
// scenario or parameter.
CampaignResult RunCampaign(const CampaignOptions& options);

}  // namespace wlansim

#endif  // WLANSIM_RUNNER_CAMPAIGN_H_
