#include "runner/result_consumer.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace wlansim {

ResultPipeline::ResultPipeline(CampaignManifest manifest) : manifest_(std::move(manifest)) {}

void ResultPipeline::AddConsumer(ResultConsumer* consumer) {
  consumers_.push_back(consumer);
}

void ResultPipeline::Begin() {
  for (ResultConsumer* consumer : consumers_) {
    consumer->BeginCampaign(manifest_);
  }
}

void ResultPipeline::Deliver(ReplicationRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t index = record.replication;
  if (index >= manifest_.replications) {
    throw std::out_of_range("replication index " + std::to_string(index) +
                            " outside campaign of " + std::to_string(manifest_.replications));
  }
  if (index < next_ || pending_.count(index) != 0) {
    throw std::logic_error("replication " + std::to_string(index) +
                           " delivered twice (double-set replication index)");
  }
  pending_.emplace(index, std::move(record));
  max_pending_ = std::max(max_pending_, pending_.size());
  // Flush the in-order prefix. Consumers run under the lock: delivery is
  // serialized and ordered, which is exactly the contract they rely on.
  while (!pending_.empty() && pending_.begin()->first == next_) {
    const ReplicationRecord& head = pending_.begin()->second;
    for (ResultConsumer* consumer : consumers_) {
      consumer->OnRecord(head);
    }
    pending_.erase(pending_.begin());
    ++next_;
  }
}

void ResultPipeline::End() {
  std::lock_guard<std::mutex> lock(mu_);
  if (next_ != manifest_.replications) {
    throw std::logic_error("campaign ended with " + std::to_string(next_) + " of " +
                           std::to_string(manifest_.replications) + " replications delivered");
  }
  for (ResultConsumer* consumer : consumers_) {
    consumer->EndCampaign();
  }
}

size_t ResultPipeline::max_reorder_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_pending_;
}

void StreamingCsvWriter::BeginCampaign(const CampaignManifest& manifest) {
  (void)manifest;
  if (begun_) {
    throw std::logic_error(
        "StreamingCsvWriter attached to a second campaign: one writer, one stream");
  }
  begun_ = true;
}

void StreamingCsvWriter::OnRecord(const ReplicationRecord& record) {
  if (!wrote_header_) {
    columns_.reserve(record.metrics.size());
    std::string header = "replication";
    for (const auto& [name, value] : record.metrics) {
      columns_.push_back(name);
      header += ",";
      header += CsvField(name);
    }
    header += "\n";
    out_ << header;
    wrote_header_ = true;
  }
  // The header is already on disk, so a drifting metric set cannot be
  // accommodated — fail loudly instead of writing misaligned rows.
  if (record.metrics.size() != columns_.size()) {
    throw std::runtime_error("replication " + std::to_string(record.replication) + " reports " +
                             std::to_string(record.metrics.size()) + " metrics; the stream header"
                             " fixed " + std::to_string(columns_.size()));
  }
  std::string row = std::to_string(record.replication);
  auto it = record.metrics.begin();
  for (const std::string& column : columns_) {
    if (it->first != column) {
      throw std::runtime_error("replication " + std::to_string(record.replication) +
                               " reports metric '" + it->first +
                               "' where the stream header has '" + column + "'");
    }
    row += ",";
    row += CsvNum(it->second);
    ++it;
  }
  row += "\n";
  out_ << row;
}

void StreamingCsvWriter::EndCampaign() {
  out_.flush();
  if (!out_) {
    throw std::runtime_error("streaming CSV write failed");
  }
}

void OnlineAggregator::OnRecord(const ReplicationRecord& record) {
  for (const auto& [name, value] : record.metrics) {
    MetricState& state = metrics_.try_emplace(name).first->second;
    state.summary.Add(value);
    state.p50.Add(value);
    state.p95.Add(value);
  }
}

std::vector<MetricAggregate> OnlineAggregator::Aggregates() const {
  std::vector<MetricAggregate> out;
  out.reserve(metrics_.size());
  for (const auto& [name, state] : metrics_) {
    MetricAggregate agg;
    agg.metric = name;
    agg.count = state.summary.count();
    agg.mean = state.summary.mean();
    agg.stddev = state.summary.stddev();
    agg.ci95_half = state.summary.count() > 1
                        ? StudentT95(state.summary.count() - 1) * state.summary.stddev() /
                              std::sqrt(static_cast<double>(state.summary.count()))
                        : 0.0;
    agg.min = state.summary.min();
    agg.max = state.summary.max();
    agg.p50 = state.p50.Value();
    agg.p95 = state.p95.Value();
    out.push_back(std::move(agg));
  }
  return out;
}

std::vector<ReplicationResult> InMemoryConsumer::ToReplicationResults() const {
  std::vector<ReplicationResult> rows;
  rows.reserve(records_.size());
  for (const ReplicationRecord& record : records_) {
    ReplicationResult row;
    row.metrics = record.metrics;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<MetricAggregate> InMemoryConsumer::Aggregates() const {
  return ResultSink::AggregateReplications(ToReplicationResults());
}

}  // namespace wlansim
