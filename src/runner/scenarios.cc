// The built-in scenario table: every canonical topology from the paper's
// experiment set, registered by name so campaigns, benches and examples all
// run the same code. Each entry maps ScenarioParams onto the corresponding
// builder struct and flattens the result into named metrics.

#include <stdexcept>

#include "core/random.h"
#include "runner/builders.h"
#include "runner/metric_recorder.h"
#include "runner/scenario_registry.h"

namespace wlansim {
namespace {

PhyStandard ParseStandard(const std::string& s) {
  if (s == "11" || s == "802.11") {
    return PhyStandard::k80211;
  }
  if (s == "11b" || s == "802.11b") {
    return PhyStandard::k80211b;
  }
  if (s == "11a" || s == "802.11a") {
    return PhyStandard::k80211a;
  }
  if (s == "11g" || s == "802.11g") {
    return PhyStandard::k80211g;
  }
  throw std::invalid_argument("unknown PHY standard '" + s + "' (use 11/11b/11a/11g)");
}

CipherSuite ParseCipher(const std::string& s) {
  if (s == "open") {
    return CipherSuite::kOpen;
  }
  if (s == "wep") {
    return CipherSuite::kWep;
  }
  if (s == "tkip") {
    return CipherSuite::kTkip;
  }
  if (s == "ccmp") {
    return CipherSuite::kCcmp;
  }
  throw std::invalid_argument("unknown cipher '" + s + "' (use open/wep/tkip/ccmp)");
}

ReplicationResult FromRunResult(const RunResult& r) {
  ReplicationResult out;
  out.metrics["goodput_mbps"] = r.goodput_mbps;
  out.metrics["loss_rate"] = r.loss_rate;
  out.metrics["mean_delay_ms"] = r.mean_delay_ms;
  out.metrics["retries"] = static_cast<double>(r.retries);
  out.metrics["tx_attempts"] = static_cast<double>(r.tx_attempts);
  out.metrics["rx_ok"] = static_cast<double>(r.rx_ok);
  return out;
}

void RegisterSaturation(ScenarioRegistry& r) {
  r.Register(
      "saturation", "Saturated uplink BSS: n backlogged stations on a circle around one AP",
      {{"standard", "11b", "PHY standard: 11/11b/11a/11g"},
       {"n_stas", "1", "number of saturated stations"},
       {"payload", "1500", "MSDU payload bytes"},
       {"distance", "10", "station-AP distance in metres"},
       {"rts_threshold", "65535", "RTS/CTS threshold in bytes (65535 = off)"},
       {"cipher", "open", "link cipher: open/wep/tkip/ccmp"},
       {"rate_index", "-1", "fixed rate index into the standard's mode table (-1 = highest)"},
       {"sim_time_s", "6", "measured simulation seconds (after 1 s warmup)"}},
      [](const ScenarioParams& params, const ReplicationContext& ctx) {
        SaturationParams p;
        p.standard = ParseStandard(params.GetString("standard", "11b"));
        p.n_stas = static_cast<size_t>(params.GetUint("n_stas", 1));
        p.payload = static_cast<size_t>(params.GetUint("payload", 1500));
        p.distance = params.GetDouble("distance", 10.0);
        p.rts_threshold = static_cast<uint32_t>(params.GetUint("rts_threshold", 65535));
        p.cipher = ParseCipher(params.GetString("cipher", "open"));
        const int64_t rate_index = params.GetInt("rate_index", -1);
        p.rate_index = rate_index < 0 ? SIZE_MAX : static_cast<size_t>(rate_index);
        p.sim_time = Time::Seconds(params.GetDouble("sim_time_s", 6.0));
        p.seed = ctx.seed;
        return FromRunResult(RunSaturationScenario(p));
      });
}

void RegisterHiddenTerminal(ScenarioRegistry& r) {
  r.Register(
      "hidden_terminal",
      "Two senders that cannot hear each other sharing one receiver (matrix loss)",
      {{"hidden", "true", "remove the sender-sender link"},
       {"rtscts", "false", "enable the RTS/CTS handshake"},
       {"payload", "1500", "MSDU payload bytes"},
       {"sim_time_s", "6", "measured simulation seconds (after 1 s warmup)"}},
      [](const ScenarioParams& params, const ReplicationContext& ctx) {
        HiddenTerminalParams p;
        p.hidden = params.GetBool("hidden", true);
        p.rtscts = params.GetBool("rtscts", false);
        p.payload = static_cast<size_t>(params.GetUint("payload", 1500));
        p.sim_time = Time::Seconds(params.GetDouble("sim_time_s", 6.0));
        p.seed = ctx.seed;
        const HiddenTerminalResult res = RunHiddenTerminalScenario(p);
        ReplicationResult out;
        out.metrics["goodput_mbps"] = res.goodput_mbps;
        out.metrics["retry_rate"] = res.retry_rate;
        out.metrics["drop_rate"] = res.drop_rate;
        out.metrics["cts_timeouts"] = static_cast<double>(res.cts_timeouts);
        out.metrics["drops"] = static_cast<double>(res.drops);
        return out;
      });
}

void RegisterEdca(ScenarioRegistry& r) {
  r.Register(
      "edca", "A VoIP flow (AC_VO) vs k saturating bulk uploaders (AC_BK), QoS on or off",
      {{"qos", "true", "enable 802.11e EDCA"},
       {"bulk_stations", "3", "number of saturating AC_BK stations"},
       {"sim_time_s", "6", "measured simulation seconds (after 1 s warmup)"}},
      [](const ScenarioParams& params, const ReplicationContext& ctx) {
        EdcaQosParams p;
        p.qos = params.GetBool("qos", true);
        p.bulk_stations = static_cast<size_t>(params.GetUint("bulk_stations", 3));
        p.sim_time = Time::Seconds(params.GetDouble("sim_time_s", 6.0));
        p.seed = ctx.seed;
        const EdcaQosResult res = RunEdcaScenario(p);
        ReplicationResult out;
        out.metrics["voice_delay_ms"] = res.voice_delay_ms;
        out.metrics["voice_jitter_ms"] = res.voice_jitter_ms;
        out.metrics["voice_loss_rate"] = res.voice_loss;
        out.metrics["bulk_mbps"] = res.bulk_mbps;
        return out;
      });
}

void RegisterCityGrid(ScenarioRegistry& r) {
  r.Register(
      "city_grid",
      "City-scale co-channel BSS grid spread beyond one interference radius; "
      "exercises the channel's reception cutoff and spatial receiver index",
      {{"standard", "11b", "PHY standard: 11/11b/11a/11g"},
       {"n_bss", "9", "number of co-channel BSSs on a square grid"},
       {"stas_per_bss", "2", "saturated stations per BSS"},
       {"bss_spacing", "120", "AP grid spacing in metres"},
       {"sta_radius", "10", "station-AP distance in metres"},
       {"cutoff_dbm", "-100", "reception cutoff in dBm (applied on both channel paths)"},
       {"spatial", "false",
        "enable the spatial receiver index (results are identical either way; "
        "false leaves the WLANSIM_SPATIAL_INDEX env override in control)"},
       {"payload", "1000", "MSDU payload bytes"},
       {"sim_time_s", "2", "measured simulation seconds (after 1 s warmup)"}},
      [](const ScenarioParams& params, const ReplicationContext& ctx) {
        CityGridParams p;
        p.standard = ParseStandard(params.GetString("standard", "11b"));
        p.n_bss = static_cast<size_t>(params.GetUint("n_bss", 9));
        p.stas_per_bss = static_cast<size_t>(params.GetUint("stas_per_bss", 2));
        p.bss_spacing = params.GetDouble("bss_spacing", 120.0);
        p.sta_radius = params.GetDouble("sta_radius", 10.0);
        p.cutoff_dbm = params.GetDouble("cutoff_dbm", -100.0);
        p.spatial = params.GetBool("spatial", false);
        p.payload = static_cast<size_t>(params.GetUint("payload", 1000));
        p.sim_time = Time::Seconds(params.GetDouble("sim_time_s", 2.0));
        p.seed = ctx.seed;
        const CityGridResult res = RunCityGridScenario(p);
        ReplicationResult out = FromRunResult(res.run);
        // Only the path-invariant channel totals are CSV metrics: the
        // differential gate byte-compares spatial on vs off, so anything
        // that legitimately differs between the paths (candidates visited,
        // grid rebuilds) must stay out of the output.
        out.metrics["channel_sends"] = static_cast<double>(res.channel_sends);
        out.metrics["channel_offers"] = static_cast<double>(res.channel_offers);
        out.metrics["offers_per_send"] =
            res.channel_sends == 0
                ? 0.0
                : static_cast<double>(res.channel_offers) / static_cast<double>(res.channel_sends);
        return out;
      });
}

void RegisterRateVsDistance(ScenarioRegistry& r) {
  r.Register(
      "rate_vs_distance",
      "Single saturated link at a given distance, fixed rate or a rate-control algorithm",
      {{"standard", "11b", "PHY standard: 11/11b/11a/11g"},
       {"distance", "60", "link distance in metres"},
       {"controller", "", "rate controller: arf/aarf/onoe/samplerate/minstrel (empty = fixed)"},
       {"rate_index", "0", "fixed rate index (when controller is empty)"},
       {"fading", "false", "apply per-frame Rayleigh block fading"},
       {"payload", "1200", "MSDU payload bytes"},
       {"sim_time_s", "4", "measured simulation seconds (after 1 s warmup)"}},
      [](const ScenarioParams& params, const ReplicationContext& ctx) {
        LinkParams p;
        p.standard = ParseStandard(params.GetString("standard", "11b"));
        p.distance = params.GetDouble("distance", 60.0);
        p.controller = params.GetString("controller", "");
        p.rate_index = static_cast<size_t>(params.GetUint("rate_index", 0));
        p.rayleigh_fading = params.GetBool("fading", false);
        p.payload = static_cast<size_t>(params.GetUint("payload", 1200));
        p.sim_time = Time::Seconds(params.GetDouble("sim_time_s", 4.0));
        p.seed = ctx.seed;
        return FromRunResult(RunLinkScenario(p));
      });
}

void RegisterDenseMultiBss(ScenarioRegistry& r) {
  r.Register(
      "dense_multi_bss",
      "Dense co-channel multi-BSS grid: n APs with m saturated uplink stations each",
      {{"standard", "11b", "PHY standard: 11/11b/11a/11g"},
       {"n_bss", "3", "number of co-channel BSSs on a square grid"},
       {"stas_per_bss", "4", "saturated stations per BSS"},
       {"bss_spacing", "25", "AP grid spacing in metres"},
       {"sta_radius", "8", "station-AP distance in metres"},
       {"payload", "1000", "MSDU payload bytes"},
       {"sta_hist", "false",
        "record the per-station goodput histogram (adds per_sta_mbps_* fairness metrics)"},
       {"sta_hist_max", "8", "per-station histogram range upper bound in Mb/s (64 bins)"},
       {"sim_time_s", "4", "measured simulation seconds (after 1 s warmup)"}},
      [](const ScenarioParams& params, const ReplicationContext& ctx) {
        DenseMultiBssParams p;
        p.standard = ParseStandard(params.GetString("standard", "11b"));
        p.n_bss = static_cast<size_t>(params.GetUint("n_bss", 3));
        p.stas_per_bss = static_cast<size_t>(params.GetUint("stas_per_bss", 4));
        p.bss_spacing = params.GetDouble("bss_spacing", 25.0);
        p.sta_radius = params.GetDouble("sta_radius", 8.0);
        p.payload = static_cast<size_t>(params.GetUint("payload", 1000));
        p.sim_time = Time::Seconds(params.GetDouble("sim_time_s", 4.0));
        p.seed = ctx.seed;
        const DenseMultiBssResult res = RunDenseMultiBssScenario(p);
        // The fairness view of the dense grid: a histogram over each
        // station's achieved goodput, recorded through the richer metric
        // channel so consumers see the full distribution and the scalar
        // rows gain per_sta_mbps_{p10,p50,p90,mean,min,max}. Opt-in
        // (sta_hist=true) so the default column set — and therefore every
        // historical CSV — is unchanged.
        if (params.GetBool("sta_hist", false) && ctx.recorder != nullptr) {
          const double hist_max = params.GetDouble("sta_hist_max", 8.0);
          if (hist_max <= 0.0) {
            throw std::invalid_argument("sta_hist_max must be > 0");
          }
          ctx.recorder->DeclareHistogram("per_sta_mbps", 0.0, hist_max / 64.0, 64);
          for (const double mbps : res.per_sta_mbps) {
            ctx.recorder->AddHistogramSample("per_sta_mbps", mbps);
          }
        }
        return FromRunResult(res.run);
      });
}

void RegisterPipelineProbe(ScenarioRegistry& r) {
  r.Register(
      "pipeline_probe",
      "Synthetic microsecond-scale scenario: deterministic pseudo-random metrics, no simulation",
      {{"n_metrics", "3", "number of value_<k> metrics emitted per replication"},
       {"samples", "64", "uniform draws averaged into each metric"},
       {"gauge", "false", "also stream the draws through a recorder gauge (latency_us_*)"},
       {"counters", "0", "count-style count_<c> metrics: integral, ~1e7 base with a small "
                         "per-replication jitter (the shape packet/byte counters have)"},
       {"hist", "false", "also record the draws into a fixed-bin latency_hist histogram"}},
      [](const ScenarioParams& params, const ReplicationContext& ctx) {
        // Exists for the results pipeline itself: a 10^4..10^6-replication
        // campaign of it runs in seconds, so CI can gate streaming-mode
        // determinism and row counts at scale without burning minutes of
        // simulated airtime. Metrics are a pure function of ctx.seed.
        const uint64_t n_metrics = params.GetUint("n_metrics", 3);
        const uint64_t samples = params.GetUint("samples", 64);
        const bool gauge = params.GetBool("gauge", false);
        const uint64_t counters = params.GetUint("counters", 0);
        const bool hist = params.GetBool("hist", false);
        Rng rng(ctx.seed);
        ReplicationResult out;
        if (hist && ctx.recorder != nullptr) {
          ctx.recorder->DeclareHistogram("latency_hist", 0.0, 25.0, 40);
        }
        for (uint64_t k = 0; k < n_metrics; ++k) {
          double sum = 0.0;
          for (uint64_t s = 0; s < samples; ++s) {
            const double draw = rng.NextDouble();
            sum += draw;
            if (gauge && ctx.recorder != nullptr) {
              ctx.recorder->AddSample("latency_us", 1e3 * draw);
            }
            if (hist && ctx.recorder != nullptr) {
              ctx.recorder->AddHistogramSample("latency_hist", 1e3 * draw);
            }
          }
          out.metrics["value_" + std::to_string(k)] =
              samples > 0 ? sum / static_cast<double>(samples) : 0.0;
        }
        // Counter draws come after the value draws, so enabling them never
        // perturbs the value_<k> sequences existing gates pin down.
        for (uint64_t c = 0; c < counters; ++c) {
          const double jitter = std::floor(rng.NextDouble() * 31.0) - 15.0;
          out.metrics["count_" + std::to_string(c)] =
              1.0e7 + 100.0 * static_cast<double>(c) + jitter;
        }
        out.metrics["seed_mod"] = static_cast<double>(ctx.seed % 1000003);
        return out;
      });
}

void RegisterIsmInterference(ScenarioRegistry& r) {
  r.Register(
      "ism_interference",
      "A saturated 12 m link sharing the band with a microwave oven at a given distance",
      {{"standard", "11b", "PHY standard (11a moves to 5 GHz and is immune)"},
       {"oven_distance", "3", "oven-receiver distance in metres (0 = no oven)"},
       {"sim_time_s", "6", "measured simulation seconds (after 1 s warmup)"}},
      [](const ScenarioParams& params, const ReplicationContext& ctx) {
        IsmParams p;
        p.standard = ParseStandard(params.GetString("standard", "11b"));
        p.oven_distance = params.GetDouble("oven_distance", 3.0);
        p.sim_time = Time::Seconds(params.GetDouble("sim_time_s", 6.0));
        p.seed = ctx.seed;
        return FromRunResult(RunIsmInterferenceScenario(p));
      });
}

void RegisterSensorCoexistence(ScenarioRegistry& r) {
  r.Register(
      "sensor_coexistence",
      "Heterogeneous coexistence: a WiFi BSS, an 802.15.4-style sensor cluster and an "
      "optional LoRa-like jammer sharing one 2.4 GHz channel",
      {{"standard", "11b", "WiFi PHY standard: 11/11b/11a/11g"},
       {"n_stas", "1", "saturated WiFi uplink stations"},
       {"n_sensors", "4", "sensor radios reporting to the sink"},
       {"sensor_radius", "6", "reporter-sink distance in metres"},
       {"cluster_offset", "5", "sink's distance from the AP in metres"},
       {"report_interval_ms", "25", "sensor report period in milliseconds"},
       {"with_jammer", "false", "add a duty-cycled LoRa-like interferer to the cluster"},
       {"jammer_duty_pct", "5", "jammer on-air share in percent"},
       {"payload", "1000", "WiFi MSDU payload bytes"},
       {"sim_time_s", "4", "measured simulation seconds (after 1 s warmup)"}},
      [](const ScenarioParams& params, const ReplicationContext& ctx) {
        SensorCoexistenceParams p;
        p.standard = ParseStandard(params.GetString("standard", "11b"));
        p.n_stas = static_cast<size_t>(params.GetUint("n_stas", 1));
        p.n_sensors = static_cast<size_t>(params.GetUint("n_sensors", 4));
        p.sensor_radius = params.GetDouble("sensor_radius", 6.0);
        p.cluster_offset = params.GetDouble("cluster_offset", 5.0);
        p.report_interval = Time::Millis(
            static_cast<int64_t>(params.GetDouble("report_interval_ms", 25.0)));
        p.with_jammer = params.GetBool("with_jammer", false);
        p.jammer_duty_pct = params.GetDouble("jammer_duty_pct", 5.0);
        p.payload = static_cast<size_t>(params.GetUint("payload", 1000));
        p.sim_time = Time::Seconds(params.GetDouble("sim_time_s", 4.0));
        p.seed = ctx.seed;
        const SensorCoexistenceResult res = RunSensorCoexistenceScenario(p);
        ReplicationResult out = FromRunResult(res.wifi);
        out.metrics["sensor_reports_sent"] = static_cast<double>(res.sensor_reports_sent);
        out.metrics["sensor_rx_ok"] = static_cast<double>(res.sensor_rx_ok);
        out.metrics["sensor_rx_lost_sinr"] = static_cast<double>(res.sensor_rx_lost_sinr);
        out.metrics["sensor_csma_deferrals"] = static_cast<double>(res.sensor_csma_deferrals);
        out.metrics["sensor_csma_drops"] = static_cast<double>(res.sensor_csma_drops);
        out.metrics["sensor_delivery_ratio"] = res.sensor_delivery_ratio;
        out.metrics["jammer_chirps"] = static_cast<double>(res.jammer_chirps);
        return out;
      });
}

void RegisterLoraCoexistence(ScenarioRegistry& r) {
  r.Register(
      "lora_coexistence",
      "A saturated WiFi link sharing the channel with a duty-cycled LoRa-like "
      "narrowband interferer",
      {{"standard", "11b", "WiFi PHY standard: 11/11b/11a/11g"},
       {"jammer_distance", "5", "jammer-receiver distance in metres"},
       {"duty_pct", "1", "jammer on-air share in percent"},
       {"airtime_ms", "60", "airtime of one chirp frame in milliseconds"},
       {"sim_time_s", "6", "measured simulation seconds (after 1 s warmup)"}},
      [](const ScenarioParams& params, const ReplicationContext& ctx) {
        LoraCoexistenceParams p;
        p.standard = ParseStandard(params.GetString("standard", "11b"));
        p.jammer_distance = params.GetDouble("jammer_distance", 5.0);
        p.duty_pct = params.GetDouble("duty_pct", 1.0);
        p.airtime = Time::Millis(static_cast<int64_t>(params.GetDouble("airtime_ms", 60.0)));
        p.sim_time = Time::Seconds(params.GetDouble("sim_time_s", 6.0));
        p.seed = ctx.seed;
        const LoraCoexistenceResult res = RunLoraCoexistenceScenario(p);
        ReplicationResult out = FromRunResult(res.wifi);
        out.metrics["jammer_chirps"] = static_cast<double>(res.jammer_chirps);
        out.metrics["jammer_airtime_share"] = res.jammer_airtime_share;
        return out;
      });
}

void RegisterAdhocVsInfra(ScenarioRegistry& r) {
  r.Register(
      "adhoc_vs_infra", "n CBR pairs exchanging traffic peer-to-peer or relayed through an AP",
      {{"adhoc", "true", "true = IBSS peer-to-peer, false = relay through an AP"},
       {"n_pairs", "2", "number of CBR source/sink pairs"},
       {"sim_time_s", "8", "measured simulation seconds (after 1 s warmup)"}},
      [](const ScenarioParams& params, const ReplicationContext& ctx) {
        AdhocInfraParams p;
        p.adhoc = params.GetBool("adhoc", true);
        p.n_pairs = static_cast<size_t>(params.GetUint("n_pairs", 2));
        p.sim_time = Time::Seconds(params.GetDouble("sim_time_s", 8.0));
        p.seed = ctx.seed;
        const AdhocInfraResult res = RunAdhocInfraScenario(p);
        ReplicationResult out;
        out.metrics["offered_mbps"] = res.offered_mbps;
        out.metrics["delivered_mbps"] = res.delivered_mbps;
        out.metrics["mean_delay_ms"] = res.delay_ms;
        return out;
      });
}

void RegisterCoexistence(ScenarioRegistry& r) {
  r.Register(
      "coexistence",
      "802.11b/g coexistence: a saturated g STA with an optional legacy b STA and protection",
      {{"with_b_sta", "true", "admit a legacy 802.11b station"},
       {"protection", "false", "enable CTS-to-self protection"},
       {"sim_time_s", "6", "measured simulation seconds (after 1 s warmup)"}},
      [](const ScenarioParams& params, const ReplicationContext& ctx) {
        CoexistenceParams p;
        p.with_b_sta = params.GetBool("with_b_sta", true);
        p.protection = params.GetBool("protection", false);
        p.sim_time = Time::Seconds(params.GetDouble("sim_time_s", 6.0));
        p.seed = ctx.seed;
        const CoexistenceResult res = RunCoexistenceScenario(p);
        ReplicationResult out;
        out.metrics["g_sta_mbps"] = res.g_mbps;
        out.metrics["b_sta_mbps"] = res.b_mbps;
        out.metrics["agg_mbps"] = res.g_mbps + res.b_mbps;
        return out;
      });
}

void RegisterFragmentation(ScenarioRegistry& r) {
  r.Register(
      "fragmentation",
      "Fragmentation threshold sweep point under an optional hidden burst jammer",
      {{"jammed", "true", "add the hidden Poisson burst jammer"},
       {"frag_threshold", "1024", "fragmentation threshold in bytes (2346 = off)"},
       {"sim_time_s", "8", "measured simulation seconds (after 1 s warmup)"}},
      [](const ScenarioParams& params, const ReplicationContext& ctx) {
        FragmentationParams p;
        p.jammed = params.GetBool("jammed", true);
        p.frag_threshold = static_cast<uint32_t>(params.GetUint("frag_threshold", 1024));
        p.sim_time = Time::Seconds(params.GetDouble("sim_time_s", 8.0));
        p.seed = ctx.seed;
        const HiddenTerminalResult res = RunFragmentationScenario(p);
        ReplicationResult out;
        out.metrics["goodput_mbps"] = res.goodput_mbps;
        out.metrics["retry_rate"] = res.retry_rate;
        out.metrics["drop_rate"] = res.drop_rate;
        out.metrics["drops"] = static_cast<double>(res.drops);
        return out;
      });
}

void RegisterRoaming(ScenarioRegistry& r) {
  r.Register(
      "roaming",
      "ESS handoff: a station walking past 2-3 APs with a CBR uplink to the serving AP",
      {{"n_aps", "2", "number of APs (2 or 3), channels 1/6/11"},
       {"spacing", "160", "AP spacing in metres"},
       {"speed", "10", "station speed in m/s"},
       {"payload", "500", "uplink packet payload bytes"},
       {"use_arf", "false", "use ARF rate control instead of the default"},
       {"sim_time_s", "20", "total simulation seconds (traffic starts at 1 s)"}},
      [](const ScenarioParams& params, const ReplicationContext& ctx) {
        RoamingParams p;
        p.n_aps = static_cast<size_t>(params.GetUint("n_aps", 2));
        p.spacing = params.GetDouble("spacing", 160.0);
        p.speed = params.GetDouble("speed", 10.0);
        p.payload = static_cast<size_t>(params.GetUint("payload", 500));
        p.use_arf = params.GetBool("use_arf", false);
        p.sim_time = Time::Seconds(params.GetDouble("sim_time_s", 20.0));
        p.seed = ctx.seed;
        const RoamingResult res = RunRoamingScenario(p);
        ReplicationResult out;
        out.metrics["handoffs"] = static_cast<double>(res.handoffs);
        out.metrics["loss_rate"] = res.loss_rate;
        out.metrics["mean_delivered_kbps"] = res.mean_delivered_kbps;
        return out;
      });
}

}  // namespace

void RegisterBuiltinScenarios(ScenarioRegistry& registry) {
  RegisterSaturation(registry);
  RegisterHiddenTerminal(registry);
  RegisterEdca(registry);
  RegisterDenseMultiBss(registry);
  RegisterCityGrid(registry);
  RegisterRateVsDistance(registry);
  RegisterIsmInterference(registry);
  RegisterSensorCoexistence(registry);
  RegisterLoraCoexistence(registry);
  RegisterAdhocVsInfra(registry);
  RegisterCoexistence(registry);
  RegisterFragmentation(registry);
  RegisterRoaming(registry);
  RegisterPipelineProbe(registry);
}

}  // namespace wlansim
