#include "runner/builders.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <stdexcept>

#include "net/ism_interferer.h"
#include "net/network.h"
#include "net/radios.h"
#include "rate/arf.h"
#include "rate/minstrel.h"
#include "rate/onoe.h"
#include "rate/sample_rate.h"
#include "stats/time_series.h"

namespace wlansim {
namespace {

constexpr double kPi = 3.14159265358979;

double MeanDelayMs(const FlowStats& stats) {
  uint64_t delay_count = 0;
  double delay_sum = 0;
  for (const auto& [id, flow] : stats.flows()) {
    delay_sum += flow.delay_us.mean() * static_cast<double>(flow.delay_us.count());
    delay_count += flow.delay_us.count();
  }
  return delay_count ? delay_sum / static_cast<double>(delay_count) / 1000.0 : 0.0;
}

}  // namespace

std::unique_ptr<RateController> MakeRateController(const std::string& name,
                                                   PhyStandard standard, Rng rng) {
  if (name == "arf") {
    return std::make_unique<ArfController>(standard);
  }
  if (name == "aarf") {
    ArfController::Options o;
    o.adaptive = true;
    return std::make_unique<ArfController>(standard, o);
  }
  if (name == "onoe") {
    return std::make_unique<OnoeController>(standard);
  }
  if (name == "samplerate") {
    return std::make_unique<SampleRateController>(standard, rng);
  }
  if (name == "minstrel") {
    return std::make_unique<MinstrelController>(standard, rng);
  }
  return nullptr;
}

RunResult RunSaturationScenario(const SaturationParams& p) {
  Network net(Network::Params{.seed = p.seed});
  net.UseLogDistanceLoss(3.0);

  std::vector<uint8_t> key(16, 0x42);
  auto mac_tweak = [&](WifiMac::Config& c) {
    c.rts_threshold = p.rts_threshold;
    if (p.cipher != CipherSuite::kOpen) {
      c.cipher = p.cipher;
      c.cipher_key = p.cipher == CipherSuite::kWep ? std::vector<uint8_t>(13, 0x42) : key;
    }
  };

  Node* ap = net.AddNode(
      {.role = MacRole::kAp, .standard = p.standard, .ssid = "bench", .mac_tweak = mac_tweak});
  const auto modes = ModesFor(p.standard);
  if (p.rate_index != SIZE_MAX && p.rate_index >= modes.size()) {
    throw std::invalid_argument("rate_index " + std::to_string(p.rate_index) +
                                " out of range: " + ToString(p.standard) + " has " +
                                std::to_string(modes.size()) + " modes");
  }
  const WifiMode fixed = modes[p.rate_index == SIZE_MAX ? modes.size() - 1 : p.rate_index];

  std::vector<Node*> stas;
  for (size_t i = 0; i < p.n_stas; ++i) {
    // Stations on a circle around the AP.
    const double angle = 2.0 * kPi * static_cast<double>(i) /
                         static_cast<double>(std::max<size_t>(p.n_stas, 1));
    Node* sta = net.AddNode({.role = MacRole::kSta,
                             .standard = p.standard,
                             .ssid = "bench",
                             .position = {p.distance * std::cos(angle),
                                          p.distance * std::sin(angle), 0},
                             .mac_tweak = mac_tweak});
    sta->SetRateController(std::make_unique<FixedRateController>(fixed));
    stas.push_back(sta);
  }
  net.StartAll();

  for (size_t i = 0; i < stas.size(); ++i) {
    auto* app = stas[i]->AddTraffic<SaturatedTraffic>(ap->address(),
                                                      static_cast<uint32_t>(i + 1), p.payload);
    app->Start(p.warmup);
  }
  net.Run(p.warmup + p.sim_time);

  RunResult r;
  r.goodput_mbps = net.flow_stats().GoodputMbps();
  r.loss_rate = net.flow_stats().LossRate();
  r.mean_delay_ms = MeanDelayMs(net.flow_stats());
  for (auto& sta : stas) {
    r.retries += sta->mac().counters().retries;
    r.tx_attempts += sta->mac().counters().tx_data_attempts;
  }
  r.rx_ok = ap->mac().counters().rx_data;
  return r;
}

HiddenTerminalResult RunHiddenTerminalScenario(const HiddenTerminalParams& p) {
  Network net(Network::Params{.seed = p.seed});
  MatrixLossModel* loss = net.UseMatrixLoss(200.0);

  auto mac_tweak = [&](WifiMac::Config& c) {
    c.rts_threshold = p.rtscts ? 400 : 65535;
  };
  // Node ids are assigned in AddNode order: receiver 0, senders 1 and 2.
  Node* receiver = net.AddNode(
      {.role = MacRole::kAdhoc, .standard = PhyStandard::k80211b, .mac_tweak = mac_tweak});
  Node* a = net.AddNode({.role = MacRole::kAdhoc,
                         .standard = PhyStandard::k80211b,
                         .position = {50, 0, 0},
                         .mac_tweak = mac_tweak});
  Node* b = net.AddNode({.role = MacRole::kAdhoc,
                         .standard = PhyStandard::k80211b,
                         .position = {-50, 0, 0},
                         .mac_tweak = mac_tweak});
  loss->SetLoss(1, 0, 70.0);  // both senders hear the receiver fine
  loss->SetLoss(2, 0, 70.0);
  loss->SetLoss(1, 2, p.hidden ? 200.0 : 70.0);  // sender-sender link

  const WifiMode mode = ModesFor(PhyStandard::k80211b).back();
  a->SetRateController(std::make_unique<FixedRateController>(mode));
  b->SetRateController(std::make_unique<FixedRateController>(mode));
  net.StartAll();
  a->AddTraffic<SaturatedTraffic>(receiver->address(), 1, p.payload)->Start(Time::Seconds(1));
  b->AddTraffic<SaturatedTraffic>(receiver->address(), 2, p.payload)->Start(Time::Seconds(1));
  net.Run(Time::Seconds(1) + p.sim_time);

  HiddenTerminalResult r;
  r.goodput_mbps = net.flow_stats().GoodputMbps();
  uint64_t retries = 0;
  uint64_t attempts = 0;
  for (Node* s : {a, b}) {
    retries += s->mac().counters().retries;
    attempts += s->mac().counters().tx_data_attempts;
    r.cts_timeouts += s->mac().counters().cts_timeouts;
    r.drops += s->mac().counters().tx_data_dropped;
  }
  r.retry_rate = attempts ? static_cast<double>(retries) / static_cast<double>(attempts) : 0.0;
  r.drop_rate = attempts ? static_cast<double>(r.drops) / static_cast<double>(attempts) : 0.0;
  return r;
}

EdcaQosResult RunEdcaScenario(const EdcaQosParams& p) {
  Network net(Network::Params{.seed = p.seed});
  net.UseLogDistanceLoss(3.0);
  auto tweak = [&p](WifiMac::Config& c) { c.qos_enabled = p.qos; };
  Node* ap = net.AddNode(
      {.role = MacRole::kAp, .standard = PhyStandard::k80211b, .mac_tweak = tweak});
  const WifiMode m = ModesFor(PhyStandard::k80211b).back();

  Node* phone = net.AddNode({.role = MacRole::kSta,
                             .standard = PhyStandard::k80211b,
                             .position = {5, 5, 0},
                             .mac_tweak = tweak});
  phone->SetRateController(std::make_unique<FixedRateController>(m));

  std::vector<Node*> bulk;
  for (size_t i = 0; i < p.bulk_stations; ++i) {
    const double angle = 2.0 * kPi * static_cast<double>(i) /
                         static_cast<double>(std::max<size_t>(p.bulk_stations, 1));
    Node* sta = net.AddNode({.role = MacRole::kSta,
                             .standard = PhyStandard::k80211b,
                             .position = {10 * std::cos(angle), 10 * std::sin(angle), 0},
                             .mac_tweak = tweak});
    sta->SetRateController(std::make_unique<FixedRateController>(m));
    bulk.push_back(sta);
  }
  net.StartAll();

  auto* voice = phone->AddTraffic<CbrTraffic>(ap->address(), 1, 160, Time::Millis(20));
  voice->SetPriority(6);  // AC_VO
  voice->Start(Time::Seconds(1));
  for (size_t i = 0; i < bulk.size(); ++i) {
    auto* app =
        bulk[i]->AddTraffic<SaturatedTraffic>(ap->address(), static_cast<uint32_t>(i + 2), 1500);
    app->SetPriority(1);  // AC_BK
    app->Start(Time::Seconds(1));
  }
  net.Run(Time::Seconds(1) + p.sim_time);

  EdcaQosResult out{};
  const auto* flow = net.flow_stats().Find(1);
  out.voice_delay_ms = flow != nullptr ? flow->delay_us.mean() / 1000.0 : 0.0;
  out.voice_jitter_ms = flow != nullptr ? flow->jitter_us / 1000.0 : 0.0;
  out.voice_delivered = flow != nullptr ? flow->rx_packets : 0;
  out.voice_loss = net.flow_stats().LossRate(1);
  for (size_t i = 0; i < bulk.size(); ++i) {
    out.bulk_mbps += net.flow_stats().GoodputMbps(static_cast<uint32_t>(i + 2));
  }
  return out;
}

RunResult RunLinkScenario(const LinkParams& p) {
  Network net(Network::Params{.seed = p.seed});
  net.UseLogDistanceLoss(3.0);
  if (p.rayleigh_fading) {
    net.UseRayleighFading();
  }
  Node* ap = net.AddNode({.role = MacRole::kAp, .standard = p.standard, .ssid = "f1"});
  Node* sta = net.AddNode({.role = MacRole::kSta,
                           .standard = p.standard,
                           .ssid = "f1",
                           .position = {p.distance, 0, 0}});
  if (p.controller.empty()) {
    const auto modes = ModesFor(p.standard);
    if (p.rate_index >= modes.size()) {
      throw std::invalid_argument("rate_index " + std::to_string(p.rate_index) +
                                  " out of range: " + ToString(p.standard) + " has " +
                                  std::to_string(modes.size()) + " modes");
    }
    sta->SetRateController(std::make_unique<FixedRateController>(modes[p.rate_index]));
  } else {
    auto controller = MakeRateController(p.controller, p.standard, net.ForkRng("rate"));
    if (controller == nullptr) {
      throw std::invalid_argument("unknown rate controller '" + p.controller + "'");
    }
    sta->SetRateController(std::move(controller));
  }
  net.StartAll();
  auto* app = sta->AddTraffic<SaturatedTraffic>(ap->address(), 1, p.payload);
  app->Start(Time::Seconds(1));
  net.Run(Time::Seconds(1) + p.sim_time);
  RunResult r;
  r.goodput_mbps = net.flow_stats().GoodputMbps();
  r.loss_rate = net.flow_stats().LossRate();
  r.mean_delay_ms = MeanDelayMs(net.flow_stats());
  r.retries = sta->mac().counters().retries;
  r.tx_attempts = sta->mac().counters().tx_data_attempts;
  r.rx_ok = ap->mac().counters().rx_data;
  return r;
}

DenseMultiBssResult RunDenseMultiBssScenario(const DenseMultiBssParams& p) {
  Network net(Network::Params{.seed = p.seed});
  net.UseLogDistanceLoss(3.0);

  const auto modes = ModesFor(p.standard);
  const WifiMode fixed = modes.back();
  const size_t n_bss = std::max<size_t>(p.n_bss, 1);
  const size_t side = static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(n_bss))));

  struct Bss {
    Node* ap;
    std::vector<Node*> stas;
  };
  std::vector<Bss> bsss;
  for (size_t k = 0; k < n_bss; ++k) {
    const double ap_x = static_cast<double>(k % side) * p.bss_spacing;
    const double ap_y = static_cast<double>(k / side) * p.bss_spacing;
    const std::string ssid = "bss" + std::to_string(k);
    Bss bss;
    bss.ap = net.AddNode(
        {.role = MacRole::kAp, .standard = p.standard, .ssid = ssid, .position = {ap_x, ap_y, 0}});
    for (size_t i = 0; i < p.stas_per_bss; ++i) {
      const double angle = 2.0 * kPi * static_cast<double>(i) /
                           static_cast<double>(std::max<size_t>(p.stas_per_bss, 1));
      Node* sta = net.AddNode({.role = MacRole::kSta,
                               .standard = p.standard,
                               .ssid = ssid,
                               .position = {ap_x + p.sta_radius * std::cos(angle),
                                            ap_y + p.sta_radius * std::sin(angle), 0}});
      sta->SetRateController(std::make_unique<FixedRateController>(fixed));
      bss.stas.push_back(sta);
    }
    bsss.push_back(std::move(bss));
  }
  net.StartAll();

  uint32_t flow_id = 1;
  for (Bss& bss : bsss) {
    for (Node* sta : bss.stas) {
      sta->AddTraffic<SaturatedTraffic>(bss.ap->address(), flow_id++, p.payload)
          ->Start(p.warmup);
    }
  }
  net.Run(p.warmup + p.sim_time);

  DenseMultiBssResult result;
  RunResult& r = result.run;
  r.goodput_mbps = net.flow_stats().GoodputMbps();
  r.loss_rate = net.flow_stats().LossRate();
  r.mean_delay_ms = MeanDelayMs(net.flow_stats());
  for (const Bss& bss : bsss) {
    r.rx_ok += bss.ap->mac().counters().rx_data;
    for (Node* sta : bss.stas) {
      r.retries += sta->mac().counters().retries;
      r.tx_attempts += sta->mac().counters().tx_data_attempts;
    }
  }
  // Flow ids were assigned 1..N in station creation order, so per-flow
  // goodput doubles as per-station goodput in that same order.
  const uint32_t n_flows = flow_id;
  result.per_sta_mbps.reserve(n_flows - 1);
  for (uint32_t f = 1; f < n_flows; ++f) {
    result.per_sta_mbps.push_back(net.flow_stats().GoodputMbps(f));
  }
  return result;
}

CityGridResult RunCityGridScenario(const CityGridParams& p) {
  Network net(Network::Params{.seed = p.seed});
  net.UseLogDistanceLoss(3.0);  // no shadowing: the index needs a bounded radius
  net.SetRxCutoffDbm(p.cutoff_dbm);
  if (p.spatial) {
    net.EnableSpatialIndex(true);
  }

  const auto modes = ModesFor(p.standard);
  const WifiMode fixed = modes.back();
  const size_t n_bss = std::max<size_t>(p.n_bss, 1);
  const size_t side = static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(n_bss))));

  struct Bss {
    Node* ap;
    std::vector<Node*> stas;
  };
  std::vector<Bss> bsss;
  for (size_t k = 0; k < n_bss; ++k) {
    const double ap_x = static_cast<double>(k % side) * p.bss_spacing;
    const double ap_y = static_cast<double>(k / side) * p.bss_spacing;
    const std::string ssid = "bss" + std::to_string(k);
    Bss bss;
    bss.ap = net.AddNode(
        {.role = MacRole::kAp, .standard = p.standard, .ssid = ssid, .position = {ap_x, ap_y, 0}});
    for (size_t i = 0; i < p.stas_per_bss; ++i) {
      const double angle = 2.0 * kPi * static_cast<double>(i) /
                           static_cast<double>(std::max<size_t>(p.stas_per_bss, 1));
      Node* sta = net.AddNode({.role = MacRole::kSta,
                               .standard = p.standard,
                               .ssid = ssid,
                               .position = {ap_x + p.sta_radius * std::cos(angle),
                                            ap_y + p.sta_radius * std::sin(angle), 0}});
      sta->SetRateController(std::make_unique<FixedRateController>(fixed));
      bss.stas.push_back(sta);
    }
    bsss.push_back(std::move(bss));
  }
  net.StartAll();

  uint32_t flow_id = 1;
  for (Bss& bss : bsss) {
    for (Node* sta : bss.stas) {
      sta->AddTraffic<SaturatedTraffic>(bss.ap->address(), flow_id++, p.payload)
          ->Start(p.warmup);
    }
  }
  net.Run(p.warmup + p.sim_time);

  CityGridResult result;
  RunResult& r = result.run;
  r.goodput_mbps = net.flow_stats().GoodputMbps();
  r.loss_rate = net.flow_stats().LossRate();
  r.mean_delay_ms = MeanDelayMs(net.flow_stats());
  for (const Bss& bss : bsss) {
    r.rx_ok += bss.ap->mac().counters().rx_data;
    for (Node* sta : bss.stas) {
      r.retries += sta->mac().counters().retries;
      r.tx_attempts += sta->mac().counters().tx_data_attempts;
    }
  }
  const Channel::SendStats& cs = net.channel().send_stats();
  result.channel_sends = cs.sends;
  result.channel_offers = cs.offers;
  result.candidates_visited = cs.candidates_visited;
  result.cutoff_suppressed = cs.cutoff_suppressed;
  result.grid_queries = cs.grid_queries;
  result.grid_rebuilds = cs.grid_rebuilds;
  return result;
}

RunResult RunIsmInterferenceScenario(const IsmParams& p) {
  Network net(Network::Params{.seed = p.seed});
  net.UseLogDistanceLoss(3.0);
  Node* rx = net.AddNode({.role = MacRole::kAdhoc, .standard = p.standard});
  Node* tx =
      net.AddNode({.role = MacRole::kAdhoc, .standard = p.standard, .position = {12, 0, 0}});
  tx->SetRateController(std::make_unique<FixedRateController>(ModesFor(p.standard).back()));
  net.StartAll();

  std::unique_ptr<MicrowaveOven> oven;
  if (p.oven_distance > 0) {
    MicrowaveOven::Config oc;
    oc.position = {-p.oven_distance, 0, 0};
    oc.channel_number = 1;  // the oven lives in the 2.4 GHz band
    oven = std::make_unique<MicrowaveOven>(&net.sim(), &net.channel(), 99, oc);
    oven->Start(Time::Millis(500));
  }
  // 802.11a rides channel 36 (5 GHz): out of the oven's band.
  if (p.standard == PhyStandard::k80211a) {
    rx->phy().SetChannelNumber(36);
    tx->phy().SetChannelNumber(36);
  }

  tx->AddTraffic<SaturatedTraffic>(rx->address(), 1, 1200)->Start(Time::Seconds(1));
  net.Run(Time::Seconds(1) + p.sim_time);

  RunResult r;
  r.goodput_mbps = net.flow_stats().GoodputMbps(1);
  r.loss_rate = net.flow_stats().LossRate(1);
  r.retries = tx->mac().counters().retries;
  r.tx_attempts = tx->mac().counters().tx_data_attempts;
  r.rx_ok = rx->packets_received();
  return r;
}

SensorCoexistenceResult RunSensorCoexistenceScenario(const SensorCoexistenceParams& p) {
  Network net(Network::Params{.seed = p.seed});
  net.UseLogDistanceLoss(3.0);

  // The WiFi BSS: AP at the origin, saturated uplink stations on a circle.
  Node* ap = net.AddNode({.role = MacRole::kAp, .standard = p.standard, .ssid = "coex"});
  const WifiMode fixed = ModesFor(p.standard).back();
  std::vector<Node*> stas;
  for (size_t i = 0; i < p.n_stas; ++i) {
    const double angle = 2.0 * kPi * static_cast<double>(i) /
                         static_cast<double>(std::max<size_t>(p.n_stas, 1));
    Node* sta = net.AddNode({.role = MacRole::kSta,
                             .standard = p.standard,
                             .ssid = "coex",
                             .position = {p.sta_distance * std::cos(angle),
                                          p.sta_distance * std::sin(angle), 0}});
    sta->SetRateController(std::make_unique<FixedRateController>(fixed));
    stas.push_back(sta);
  }
  net.StartAll();

  // The sensor cluster: a silent sink offset from the AP, reporters on a
  // circle around it. Node ids start at 200 to stay clear of the BSS.
  SensorRadio::Config sink_cfg;
  sink_cfg.position = {p.cluster_offset, 0, 0};
  SensorRadio sink(&net.sim(), &net.channel(), 200, sink_cfg);
  std::vector<std::unique_ptr<SensorRadio>> sensors;
  for (size_t i = 0; i < p.n_sensors; ++i) {
    const double angle = 2.0 * kPi * static_cast<double>(i) /
                         static_cast<double>(std::max<size_t>(p.n_sensors, 1));
    SensorRadio::Config sc;
    sc.position = {p.cluster_offset + p.sensor_radius * std::cos(angle),
                   p.sensor_radius * std::sin(angle), 0};
    sensors.push_back(std::make_unique<SensorRadio>(&net.sim(), &net.channel(),
                                                    static_cast<uint32_t>(201 + i), sc));
    sensors.back()->StartReporting(p.warmup, p.report_interval);
  }

  std::unique_ptr<LoraInterferer> jammer;
  if (p.with_jammer) {
    LoraInterferer::Config jc;
    jc.position = {p.cluster_offset, p.sensor_radius, 0};  // inside the cluster
    jc.duty_pct = p.jammer_duty_pct;
    jammer = std::make_unique<LoraInterferer>(&net.sim(), &net.channel(), 250, jc);
    jammer->Start(p.warmup);
  }

  for (size_t i = 0; i < stas.size(); ++i) {
    stas[i]
        ->AddTraffic<SaturatedTraffic>(ap->address(), static_cast<uint32_t>(i + 1), p.payload)
        ->Start(p.warmup);
  }
  net.Run(p.warmup + p.sim_time);

  SensorCoexistenceResult r;
  r.wifi.goodput_mbps = net.flow_stats().GoodputMbps();
  r.wifi.loss_rate = net.flow_stats().LossRate();
  r.wifi.mean_delay_ms = MeanDelayMs(net.flow_stats());
  for (Node* sta : stas) {
    r.wifi.retries += sta->mac().counters().retries;
    r.wifi.tx_attempts += sta->mac().counters().tx_data_attempts;
  }
  r.wifi.rx_ok = ap->mac().counters().rx_data;
  for (const auto& s : sensors) {
    r.sensor_reports_sent += s->counters().reports_sent;
    r.sensor_csma_deferrals += s->counters().csma_deferrals;
    r.sensor_csma_drops += s->counters().csma_drops;
  }
  r.sensor_rx_ok = sink.counters().rx_ok;
  r.sensor_rx_lost_sinr = sink.counters().rx_lost_sinr;
  r.sensor_delivery_ratio =
      r.sensor_reports_sent == 0
          ? 0.0
          : static_cast<double>(r.sensor_rx_ok) / static_cast<double>(r.sensor_reports_sent);
  r.jammer_chirps = jammer ? jammer->chirps_emitted() : 0;
  return r;
}

LoraCoexistenceResult RunLoraCoexistenceScenario(const LoraCoexistenceParams& p) {
  Network net(Network::Params{.seed = p.seed});
  net.UseLogDistanceLoss(3.0);
  Node* rx = net.AddNode({.role = MacRole::kAdhoc, .standard = p.standard});
  Node* tx =
      net.AddNode({.role = MacRole::kAdhoc, .standard = p.standard, .position = {12, 0, 0}});
  tx->SetRateController(std::make_unique<FixedRateController>(ModesFor(p.standard).back()));
  net.StartAll();

  LoraInterferer::Config jc;
  jc.position = {-p.jammer_distance, 0, 0};
  jc.duty_pct = p.duty_pct;
  jc.airtime = p.airtime;
  LoraInterferer jammer(&net.sim(), &net.channel(), 99, jc);
  jammer.Start(Time::Millis(500));

  tx->AddTraffic<SaturatedTraffic>(rx->address(), 1, 1200)->Start(Time::Seconds(1));
  net.Run(Time::Seconds(1) + p.sim_time);

  LoraCoexistenceResult r;
  r.wifi.goodput_mbps = net.flow_stats().GoodputMbps(1);
  r.wifi.loss_rate = net.flow_stats().LossRate(1);
  r.wifi.retries = tx->mac().counters().retries;
  r.wifi.tx_attempts = tx->mac().counters().tx_data_attempts;
  r.wifi.rx_ok = rx->packets_received();
  r.jammer_chirps = jammer.chirps_emitted();
  r.jammer_airtime_share =
      static_cast<double>(jammer.chirps_emitted()) * p.airtime.seconds() / p.sim_time.seconds();
  return r;
}

AdhocInfraResult RunAdhocInfraScenario(const AdhocInfraParams& p) {
  Network net(Network::Params{.seed = p.seed});
  net.UseLogDistanceLoss(3.0);
  constexpr size_t kPayload = 1000;
  const Time interval = Time::Millis(4);  // 2 Mb/s offered per flow

  const WifiMode kFull = ModesFor(PhyStandard::k80211b).back();
  if (!p.adhoc) {
    Node* ap =
        net.AddNode({.role = MacRole::kAp, .standard = PhyStandard::k80211b, .ssid = "f6"});
    ap->SetRateController(std::make_unique<FixedRateController>(kFull));
  }
  std::vector<Node*> nodes;
  for (size_t i = 0; i < 2 * p.n_pairs; ++i) {
    const double angle =
        2.0 * kPi * static_cast<double>(i) / static_cast<double>(2 * p.n_pairs);
    nodes.push_back(net.AddNode({.role = p.adhoc ? MacRole::kAdhoc : MacRole::kSta,
                                 .standard = PhyStandard::k80211b,
                                 .ssid = "f6",
                                 .position = {12 * std::cos(angle), 12 * std::sin(angle), 0}}));
    nodes.back()->SetRateController(std::make_unique<FixedRateController>(kFull));
  }
  net.StartAll();
  for (size_t i = 0; i < p.n_pairs; ++i) {
    Node* src = nodes[2 * i];
    Node* dst = nodes[2 * i + 1];
    auto* app = src->AddTraffic<CbrTraffic>(dst->address(), static_cast<uint32_t>(i + 1),
                                            kPayload, interval);
    app->Start(Time::Seconds(1) + Time::Micros(static_cast<int64_t>(137 * i)));
  }
  net.Run(Time::Seconds(1) + p.sim_time);

  AdhocInfraResult r{};
  r.offered_mbps = static_cast<double>(p.n_pairs) * kPayload * 8.0 / interval.seconds() / 1e6;
  r.delivered_mbps = net.flow_stats().GoodputMbps();
  r.delay_ms = MeanDelayMs(net.flow_stats());
  return r;
}

CoexistenceResult RunCoexistenceScenario(const CoexistenceParams& p) {
  Network net(Network::Params{.seed = p.seed});
  net.UseLogDistanceLoss(3.0);
  auto g_tweak = [&p](WifiMac::Config& c) { c.cts_to_self_protection = p.protection; };

  Node* ap = net.AddNode({.role = MacRole::kAp,
                          .standard = PhyStandard::k80211g,
                          .ssid = "mix",
                          .mac_tweak = g_tweak});
  Node* g_sta = net.AddNode({.role = MacRole::kSta,
                             .standard = PhyStandard::k80211g,
                             .ssid = "mix",
                             .position = {8, 0, 0},
                             .mac_tweak = g_tweak});
  g_sta->SetRateController(
      std::make_unique<FixedRateController>(ModesFor(PhyStandard::k80211g).back()));

  Node* b_sta = nullptr;
  if (p.with_b_sta) {
    b_sta = net.AddNode({.role = MacRole::kSta,
                         .standard = PhyStandard::k80211b,
                         .ssid = "mix",
                         .position = {-35, 0, 0}});  // beyond ED range of the g STA
    b_sta->SetRateController(
        std::make_unique<FixedRateController>(ModesFor(PhyStandard::k80211b).back()));
  }
  net.StartAll();
  g_sta->AddTraffic<SaturatedTraffic>(ap->address(), 1, 1500)->Start(Time::Seconds(1));
  if (b_sta != nullptr) {
    b_sta->AddTraffic<SaturatedTraffic>(ap->address(), 2, 1500)->Start(Time::Seconds(1));
  }
  net.Run(Time::Seconds(1) + p.sim_time);
  return CoexistenceResult{net.flow_stats().GoodputMbps(1), net.flow_stats().GoodputMbps(2)};
}

HiddenTerminalResult RunFragmentationScenario(const FragmentationParams& p) {
  Network net(Network::Params{.seed = p.seed});
  MatrixLossModel* loss = net.UseMatrixLoss(200.0);

  auto frag = [&p](WifiMac::Config& c) {
    c.frag_threshold = p.frag_threshold;
    c.retry_limit = 7;
  };
  // DSSS receivers capture a ≥6 dB stronger frame during the preamble; the
  // data signal is 7.5 dB above the jammer, so a frame arriving while the
  // receiver is locked onto a jammer preamble can still win the receiver.
  auto capture = [](WifiPhy::Config& c) { c.capture_margin_db = 6.0; };
  // ids: 0 receiver, 1 sender, 2 jammer.
  Node* rx = net.AddNode({.role = MacRole::kAdhoc,
                          .standard = PhyStandard::k80211b,
                          .phy_tweak = capture,
                          .mac_tweak = frag});
  Node* tx = net.AddNode({.role = MacRole::kAdhoc,
                          .standard = PhyStandard::k80211b,
                          .position = {30, 0, 0},
                          .phy_tweak = capture,
                          .mac_tweak = frag});
  loss->SetLoss(1, 0, 75.0);  // signal at the receiver: -59 dBm
  Node* jammer = nullptr;
  if (p.jammed) {
    jammer = net.AddNode({.role = MacRole::kAdhoc,
                          .standard = PhyStandard::k80211b,
                          .position = {-30, 0, 0}});
    // Jammer reaches the receiver at -66.5 dBm → SINR ≈ 7.5 dB during a
    // burst: overlapped CCK-11 bits see BER ~2e-4, so short fragments often
    // survive a graze while 2000-byte MPDUs die. Sender cannot hear it.
    loss->SetLoss(2, 0, 82.5);
  }

  tx->SetRateController(
      std::make_unique<FixedRateController>(ModesFor(PhyStandard::k80211b).back()));
  net.StartAll();
  tx->AddTraffic<SaturatedTraffic>(rx->address(), 1, 2000)->Start(Time::Seconds(1));
  if (jammer != nullptr) {
    // Poisson bursts: 400 B broadcasts (~480 us air) at 250/s — ~12 % duty,
    // arrivals memoryless so fragment retries re-roll the overlap dice.
    jammer->SetRateController(
        std::make_unique<FixedRateController>(ModesFor(PhyStandard::k80211b).back()));
    jammer
        ->AddTraffic<PoissonTraffic>(MacAddress::Broadcast(), 99, 400, 250.0,
                                     net.ForkRng("jam"))
        ->Start(Time::Seconds(1));
  }
  net.Run(Time::Seconds(1) + p.sim_time);

  HiddenTerminalResult r;
  r.goodput_mbps = net.flow_stats().GoodputMbps(1);
  const uint64_t retries = tx->mac().counters().retries;
  const uint64_t attempts = tx->mac().counters().tx_data_attempts;
  r.drops = tx->mac().counters().tx_data_dropped;
  r.retry_rate = attempts ? static_cast<double>(retries) / static_cast<double>(attempts) : 0.0;
  r.drop_rate = attempts ? static_cast<double>(r.drops) / static_cast<double>(attempts) : 0.0;
  return r;
}

RoamingResult RunRoamingScenario(const RoamingParams& p) {
  Network net(Network::Params{.seed = p.seed});
  net.UseLogDistanceLoss(p.path_loss_exponent);

  const uint8_t kChannels[] = {1, 6, 11};
  const size_t n_aps = std::clamp<size_t>(p.n_aps, 2, 3);
  std::vector<uint8_t> used_channels;
  for (size_t i = 0; i < n_aps; ++i) {
    used_channels.push_back(kChannels[i % 3]);
  }
  auto sta_tweak = [&](WifiMac::Config& c) {
    c.scan_channels = used_channels;
    c.beacon_loss_limit = 3;
    if (!p.scan_dwell.IsZero()) {
      c.scan_dwell = p.scan_dwell;
    }
  };

  std::vector<Node*> aps;
  for (size_t i = 0; i < n_aps; ++i) {
    aps.push_back(net.AddNode({.role = MacRole::kAp,
                               .standard = PhyStandard::k80211b,
                               .ssid = "ess",
                               .position = {p.spacing * static_cast<double>(i), 0, 0},
                               .channel = used_channels[i]}));
  }
  Node* sta = net.AddNode({.role = MacRole::kSta,
                           .standard = PhyStandard::k80211b,
                           .ssid = "ess",
                           .position = {p.start_x, 0, 0},
                           .channel = used_channels[0],
                           .mac_tweak = sta_tweak});
  if (p.use_arf) {
    sta->SetRateController(std::make_unique<ArfController>(PhyStandard::k80211b));
  }
  sta->SetMobility(std::make_unique<ConstantVelocityMobility>(Vector3{p.start_x, 0, 0},
                                                              Vector3{p.speed, 0, 0}));
  if (p.log_associations) {
    sta->mac().SetAssociationCallback([&net](bool up, MacAddress bssid) {
      std::printf("[%8s] %s %s\n", net.sim().Now().ToString().c_str(),
                  up ? "associated to" : "lost", bssid.ToString().c_str());
    });
  }
  net.StartAll();

  // Uplink CBR addressed to the *serving* AP: because the serving AP changes
  // across handoffs, packets are enqueued toward the current BSSID by a pump.
  // The scheduled events hold only a weak_ptr: the pump (and the references
  // it captures into this stack frame) dies with this scope, not in a
  // shared_ptr cycle.
  TimeSeries delivered(Time::Millis(500));
  auto pump = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_pump = pump;
  Simulator& sim = net.sim();
  FlowStats& stats = net.flow_stats();
  const size_t payload = p.payload;
  const Time pump_interval = p.pump_interval;
  *pump = [&sim, sta, weak_pump, &stats, payload, pump_interval]() {
    if (sta->mac().IsAssociated()) {
      Packet pkt(payload);
      pkt.meta().flow_id = 1;
      pkt.meta().created = sim.Now();
      stats.RecordSent(1, payload, sim.Now());
      sta->mac().Enqueue(std::move(pkt), sta->mac().bssid());
    }
    sim.Schedule(pump_interval, [weak_pump] {
      if (auto p = weak_pump.lock()) {
        (*p)();
      }
    });
  };
  sim.Schedule(Time::Seconds(1), [weak_pump] {
    if (auto p = weak_pump.lock()) {
      (*p)();
    }
  });

  for (Node* ap : aps) {
    ap->SetRxCallback([&delivered, &sim](const Packet& pkt, MacAddress, MacAddress) {
      delivered.Add(sim.Now(), static_cast<double>(pkt.size()));
    });
  }

  net.Run(p.sim_time);

  RoamingResult r;
  r.handoffs = sta->mac().counters().handoffs;
  r.loss_rate = net.flow_stats().LossRate(1);
  double total_bytes = 0;
  for (const auto& bucket : delivered.buckets()) {
    r.delivered_buckets.emplace_back(bucket.start.seconds(), bucket.sum);
    total_bytes += bucket.sum;
  }
  const double elapsed = p.sim_time.seconds() - 1.0;
  r.mean_delivered_kbps = elapsed > 0 ? total_bytes * 8.0 / elapsed / 1000.0 : 0.0;
  return r;
}

}  // namespace wlansim
