// ONOE rate control (Atsushi Onoe's MadWifi algorithm): credit-based,
// window-driven. Each fixed window the controller examines retry/failure
// ratios; clean windows earn credits, and ten credits buy a rate increase,
// while windows with >50 % retries force an immediate decrease. Slow but
// stable — the classic contrast to ARF's per-packet agility.

#ifndef WLANSIM_RATE_ONOE_H_
#define WLANSIM_RATE_ONOE_H_

#include <unordered_map>
#include <vector>

#include "rate/rate_controller.h"

namespace wlansim {

class OnoeController final : public RateController {
 public:
  struct Options {
    Time window = Time::Millis(1000);
    uint32_t credits_for_raise = 10;
  };

  explicit OnoeController(PhyStandard standard) : OnoeController(standard, Options()) {}
  OnoeController(PhyStandard standard, Options options);

  std::string name() const override { return "onoe"; }
  WifiMode SelectMode(const MacAddress& dest, size_t bytes, uint8_t retry_count) override;
  void OnTxResult(const MacAddress& dest, const WifiMode& mode, bool success, Time now) override;

 private:
  struct State {
    size_t rate_index = 0;
    uint32_t credits = 0;
    uint32_t window_tx = 0;
    uint32_t window_fail = 0;
    Time window_start;
  };

  void RollWindow(State& s, Time now);

  std::vector<WifiMode> modes_;
  Options options_;
  std::unordered_map<MacAddress, State> states_;
};

}  // namespace wlansim

#endif  // WLANSIM_RATE_ONOE_H_
