// Driver-level rate adaptation interface.
//
// Controllers see exactly what a real driver sees: the outcome of each data
// transmission attempt (ACK received or not) and, optionally, the RSSI of
// received ACKs. They never peek at the channel model, so the algorithms
// reproduce genuine driver behaviour.

#ifndef WLANSIM_RATE_RATE_CONTROLLER_H_
#define WLANSIM_RATE_RATE_CONTROLLER_H_

#include <memory>
#include <string>

#include "core/mac_address.h"
#include "core/time.h"
#include "phy/wifi_mode.h"

namespace wlansim {

class RateController {
 public:
  virtual ~RateController() = default;

  virtual std::string name() const = 0;

  // Mode to use for the next transmission attempt of `bytes` to `dest`.
  // `retry_count` is the number of failed attempts for the current frame
  // (0 on the first try), letting algorithms run retry chains.
  virtual WifiMode SelectMode(const MacAddress& dest, size_t bytes, uint8_t retry_count) = 0;

  // Outcome of one data attempt: `success` means the ACK arrived.
  virtual void OnTxResult(const MacAddress& dest, const WifiMode& mode, bool success,
                          Time now) = 0;

  // Called when the frame is abandoned after the retry limit.
  virtual void OnFinalFailure(const MacAddress& /*dest*/) {}
};

// Always transmits at a fixed mode (the baseline, and the "oracle" when the
// experiment sweeps all fixed rates and takes the envelope).
class FixedRateController final : public RateController {
 public:
  explicit FixedRateController(const WifiMode& mode) : mode_(mode) {}
  std::string name() const override { return std::string("fixed-") + mode_.name; }
  WifiMode SelectMode(const MacAddress&, size_t, uint8_t) override { return mode_; }
  void OnTxResult(const MacAddress&, const WifiMode&, bool, Time) override {}

 private:
  WifiMode mode_;
};

}  // namespace wlansim

#endif  // WLANSIM_RATE_RATE_CONTROLLER_H_
