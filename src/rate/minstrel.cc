#include "rate/minstrel.h"

#include <algorithm>

namespace wlansim {

MinstrelController::MinstrelController(PhyStandard standard, Rng rng, Options options)
    : options_(options), rng_(rng) {
  const auto modes = ModesFor(standard);
  modes_.assign(modes.begin(), modes.end());
}

MinstrelController::State& MinstrelController::StateFor(const MacAddress& dest) {
  auto it = states_.find(dest);
  if (it == states_.end()) {
    State s;
    s.stats.resize(modes_.size());
    for (size_t i = 0; i < modes_.size(); ++i) {
      s.stats[i].airtime = FrameDuration(modes_[i], options_.reference_packet_bytes);
    }
    it = states_.emplace(dest, std::move(s)).first;
  }
  return it->second;
}

void MinstrelController::UpdateStats(State& s, Time now) {
  if (now - s.last_update < options_.update_interval) {
    return;
  }
  s.last_update = now;
  for (size_t i = 0; i < s.stats.size(); ++i) {
    RateStats& st = s.stats[i];
    if (st.interval_attempts > 0) {
      const double p = static_cast<double>(st.interval_successes) /
                       static_cast<double>(st.interval_attempts);
      st.ewma_prob = st.ewma_prob < 0
                         ? p
                         : options_.ewma_weight * st.ewma_prob + (1 - options_.ewma_weight) * p;
    }
    st.interval_attempts = 0;
    st.interval_successes = 0;
    const double prob = st.ewma_prob < 0 ? 0.0 : st.ewma_prob;
    st.throughput =
        prob * static_cast<double>(options_.reference_packet_bytes) * 8.0 / st.airtime.seconds();
  }
  // Rank by throughput. Untried rates keep throughput 0 and are reached via
  // look-around probes.
  size_t best = 0;
  size_t second = 0;
  double best_tp = -1.0;
  double second_tp = -1.0;
  for (size_t i = 0; i < s.stats.size(); ++i) {
    const double tp = s.stats[i].throughput;
    if (tp > best_tp) {
      second = best;
      second_tp = best_tp;
      best = i;
      best_tp = tp;
    } else if (tp > second_tp) {
      second = i;
      second_tp = tp;
    }
  }
  s.best = best;
  s.second_best = second;
}

size_t MinstrelController::BestRateIndex(const MacAddress& dest) {
  return StateFor(dest).best;
}

WifiMode MinstrelController::SelectMode(const MacAddress& dest, size_t /*bytes*/,
                                        uint8_t retry_count) {
  State& s = StateFor(dest);
  if (retry_count == 1) {
    return modes_[s.second_best];
  }
  if (retry_count >= 2) {
    return modes_[0];  // final fallback: the most robust rate
  }
  ++s.packets;
  if (rng_.NextDouble() < options_.lookaround_fraction) {
    const auto pick =
        static_cast<size_t>(rng_.UniformInt(0, static_cast<int64_t>(modes_.size()) - 1));
    return modes_[pick];
  }
  return modes_[s.best];
}

void MinstrelController::OnTxResult(const MacAddress& dest, const WifiMode& mode, bool success,
                                    Time now) {
  State& s = StateFor(dest);
  for (size_t i = 0; i < modes_.size(); ++i) {
    if (modes_[i] == mode) {
      ++s.stats[i].interval_attempts;
      if (success) {
        ++s.stats[i].interval_successes;
      }
      break;
    }
  }
  UpdateStats(s, now);
}

}  // namespace wlansim
