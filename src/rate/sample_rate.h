// SampleRate (John Bicket, MIT 2005): picks the rate with the lowest
// expected per-packet transmission time (airtime / success probability,
// with a backoff penalty per retry), and spends 10 % of packets sampling a
// randomly chosen other rate that could plausibly do better. Statistics
// decay over a sliding window so the controller tracks channel drift.

#ifndef WLANSIM_RATE_SAMPLE_RATE_H_
#define WLANSIM_RATE_SAMPLE_RATE_H_

#include <unordered_map>
#include <vector>

#include "core/random.h"
#include "rate/rate_controller.h"

namespace wlansim {

class SampleRateController final : public RateController {
 public:
  struct Options {
    double sample_fraction = 0.1;
    Time stats_window = Time::Seconds(10);
    size_t reference_packet_bytes = 1200;
  };

  SampleRateController(PhyStandard standard, Rng rng)
      : SampleRateController(standard, rng, Options()) {}
  SampleRateController(PhyStandard standard, Rng rng, Options options);

  std::string name() const override { return "samplerate"; }
  WifiMode SelectMode(const MacAddress& dest, size_t bytes, uint8_t retry_count) override;
  void OnTxResult(const MacAddress& dest, const WifiMode& mode, bool success, Time now) override;

 private:
  struct RateStats {
    uint64_t attempts = 0;
    uint64_t successes = 0;
    Time last_update;
    // Average transmission time per *successful* packet, microseconds.
    double AvgTxTimeUs(Time lossless_us) const;
    Time lossless_tx;  // airtime of a reference packet at this rate
  };

  struct State {
    std::vector<RateStats> stats;  // one per mode
    size_t current = 0;
    uint64_t packets = 0;
    size_t pending_sample = SIZE_MAX;  // rate index being sampled, if any
  };

  State& StateFor(const MacAddress& dest);
  size_t BestRate(const State& s) const;
  void DecayIfStale(State& s, Time now);

  std::vector<WifiMode> modes_;
  Options options_;
  Rng rng_;
  std::unordered_map<MacAddress, State> states_;
};

}  // namespace wlansim

#endif  // WLANSIM_RATE_SAMPLE_RATE_H_
