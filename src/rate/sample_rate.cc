#include "rate/sample_rate.h"

#include <algorithm>
#include <limits>

namespace wlansim {

double SampleRateController::RateStats::AvgTxTimeUs(Time lossless_us) const {
  if (attempts == 0) {
    return lossless_us.micros();  // optimistic prior: untried rates look attractive
  }
  if (successes == 0) {
    return std::numeric_limits<double>::infinity();
  }
  const double p = static_cast<double>(successes) / static_cast<double>(attempts);
  // Each failed attempt costs one airtime plus an average backoff penalty.
  const double retries_per_success = 1.0 / p;
  return lossless_us.micros() * retries_per_success;
}

SampleRateController::SampleRateController(PhyStandard standard, Rng rng, Options options)
    : options_(options), rng_(rng) {
  const auto modes = ModesFor(standard);
  modes_.assign(modes.begin(), modes.end());
}

SampleRateController::State& SampleRateController::StateFor(const MacAddress& dest) {
  auto it = states_.find(dest);
  if (it == states_.end()) {
    State s;
    s.stats.resize(modes_.size());
    for (size_t i = 0; i < modes_.size(); ++i) {
      s.stats[i].lossless_tx = FrameDuration(modes_[i], options_.reference_packet_bytes);
    }
    s.current = 0;
    it = states_.emplace(dest, std::move(s)).first;
  }
  return it->second;
}

size_t SampleRateController::BestRate(const State& s) const {
  size_t best = 0;
  double best_time = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < s.stats.size(); ++i) {
    const double t = s.stats[i].AvgTxTimeUs(s.stats[i].lossless_tx);
    if (t < best_time) {
      best_time = t;
      best = i;
    }
  }
  return best;
}

void SampleRateController::DecayIfStale(State& s, Time now) {
  for (RateStats& st : s.stats) {
    if (st.attempts > 0 && now - st.last_update > options_.stats_window) {
      // Forget stale statistics so the channel can be re-probed.
      st.attempts /= 2;
      st.successes /= 2;
      st.last_update = now;
    }
  }
}

WifiMode SampleRateController::SelectMode(const MacAddress& dest, size_t /*bytes*/,
                                          uint8_t retry_count) {
  State& s = StateFor(dest);
  if (retry_count > 0) {
    // Retries always use the best known rate (never burn retries sampling).
    s.pending_sample = SIZE_MAX;
    s.current = BestRate(s);
    return modes_[s.current];
  }
  ++s.packets;
  const size_t best = BestRate(s);
  s.current = best;
  if (rng_.NextDouble() < options_.sample_fraction) {
    // Sample a random different rate whose lossless airtime beats the
    // current average (Bicket's "could be better" filter).
    const double current_avg = s.stats[best].AvgTxTimeUs(s.stats[best].lossless_tx);
    std::vector<size_t> candidates;
    for (size_t i = 0; i < modes_.size(); ++i) {
      if (i != best && s.stats[i].lossless_tx.micros() < current_avg) {
        candidates.push_back(i);
      }
    }
    if (!candidates.empty()) {
      const size_t pick =
          candidates[static_cast<size_t>(rng_.UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
      s.pending_sample = pick;
      s.current = pick;
    }
  }
  return modes_[s.current];
}

void SampleRateController::OnTxResult(const MacAddress& dest, const WifiMode& mode, bool success,
                                      Time now) {
  State& s = StateFor(dest);
  DecayIfStale(s, now);
  for (size_t i = 0; i < modes_.size(); ++i) {
    if (modes_[i] == mode) {
      ++s.stats[i].attempts;
      if (success) {
        ++s.stats[i].successes;
      }
      s.stats[i].last_update = now;
      break;
    }
  }
  s.pending_sample = SIZE_MAX;
}

}  // namespace wlansim
