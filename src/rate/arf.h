// ARF (Auto Rate Fallback, Kamerman & Monteban 1997) and AARF (Adaptive ARF,
// Lacage et al. 2004).
//
// ARF: step up after `success_threshold` consecutive ACKs (or a probe timer),
// step down after 2 consecutive failures; a failure on the first packet
// after a rate increase falls back immediately.
//
// AARF: identical, except a failed probe doubles the success threshold
// (capped), so unsuccessful probing becomes exponentially rarer — curing
// ARF's oscillation on stable channels.

#ifndef WLANSIM_RATE_ARF_H_
#define WLANSIM_RATE_ARF_H_

#include <unordered_map>
#include <vector>

#include "rate/rate_controller.h"

namespace wlansim {

class ArfController : public RateController {
 public:
  struct Options {
    uint32_t success_threshold = 10;
    uint32_t probe_timer_packets = 15;  // retry the higher rate after this many packets
    bool adaptive = false;              // AARF behaviour
    uint32_t min_success_threshold = 10;
    uint32_t max_success_threshold = 60;
  };

  explicit ArfController(PhyStandard standard) : ArfController(standard, Options()) {}
  ArfController(PhyStandard standard, Options options);

  std::string name() const override { return options_.adaptive ? "aarf" : "arf"; }
  WifiMode SelectMode(const MacAddress& dest, size_t bytes, uint8_t retry_count) override;
  void OnTxResult(const MacAddress& dest, const WifiMode& mode, bool success, Time now) override;

  // Diagnostics.
  size_t CurrentRateIndex(const MacAddress& dest);

 private:
  struct State {
    size_t rate_index = 0;
    uint32_t consecutive_ok = 0;
    uint32_t consecutive_fail = 0;
    uint32_t packets_since_change = 0;
    bool just_stepped_up = false;
    uint32_t success_threshold;
    uint32_t probe_timer;
  };

  State& StateFor(const MacAddress& dest);

  std::vector<WifiMode> modes_;
  Options options_;
  std::unordered_map<MacAddress, State> states_;
};

inline ArfController MakeAarf(PhyStandard standard) {
  ArfController::Options o;
  o.adaptive = true;
  return ArfController(standard, o);
}

}  // namespace wlansim

#endif  // WLANSIM_RATE_ARF_H_
