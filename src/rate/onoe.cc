#include "rate/onoe.h"

namespace wlansim {

OnoeController::OnoeController(PhyStandard standard, Options options) : options_(options) {
  const auto modes = ModesFor(standard);
  modes_.assign(modes.begin(), modes.end());
}

WifiMode OnoeController::SelectMode(const MacAddress& dest, size_t /*bytes*/,
                                    uint8_t /*retry_count*/) {
  return modes_[states_[dest].rate_index];
}

void OnoeController::RollWindow(State& s, Time now) {
  if (now - s.window_start < options_.window) {
    return;
  }
  if (s.window_tx > 0) {
    const double fail_ratio =
        static_cast<double>(s.window_fail) / static_cast<double>(s.window_tx);
    if (fail_ratio > 0.5) {
      if (s.rate_index > 0) {
        --s.rate_index;
      }
      s.credits = 0;
    } else if (fail_ratio < 0.1) {
      ++s.credits;
      if (s.credits >= options_.credits_for_raise) {
        if (s.rate_index + 1 < modes_.size()) {
          ++s.rate_index;
        }
        s.credits = 0;
      }
    } else {
      // Mediocre window: slowly bleed credits.
      if (s.credits > 0) {
        --s.credits;
      }
    }
  }
  s.window_tx = 0;
  s.window_fail = 0;
  s.window_start = now;
}

void OnoeController::OnTxResult(const MacAddress& dest, const WifiMode& /*mode*/, bool success,
                                Time now) {
  State& s = states_[dest];
  ++s.window_tx;
  if (!success) {
    ++s.window_fail;
  }
  RollWindow(s, now);
}

}  // namespace wlansim
