// Minstrel (Derek Smithies & Felix Fietkau, the Linux mac80211 default):
// maintains an EWMA of per-rate delivery probability, recomputed every
// statistics interval, ranks rates by expected throughput
// (prob × payload / airtime), and spends a fixed fraction of frames on
// look-around probes of random rates. Retries fall back through the
// best → second-best → most-robust chain.

#ifndef WLANSIM_RATE_MINSTREL_H_
#define WLANSIM_RATE_MINSTREL_H_

#include <unordered_map>
#include <vector>

#include "core/random.h"
#include "rate/rate_controller.h"

namespace wlansim {

class MinstrelController final : public RateController {
 public:
  struct Options {
    Time update_interval = Time::Millis(100);
    double ewma_weight = 0.75;       // weight of history in the EWMA
    double lookaround_fraction = 0.1;
    size_t reference_packet_bytes = 1200;
  };

  MinstrelController(PhyStandard standard, Rng rng)
      : MinstrelController(standard, rng, Options()) {}
  MinstrelController(PhyStandard standard, Rng rng, Options options);

  std::string name() const override { return "minstrel"; }
  WifiMode SelectMode(const MacAddress& dest, size_t bytes, uint8_t retry_count) override;
  void OnTxResult(const MacAddress& dest, const WifiMode& mode, bool success, Time now) override;

  // Diagnostics for tests: current best-throughput rate index.
  size_t BestRateIndex(const MacAddress& dest);

 private:
  struct RateStats {
    uint32_t interval_attempts = 0;
    uint32_t interval_successes = 0;
    double ewma_prob = -1.0;  // <0 = no data yet
    double throughput = 0.0;  // bits/s estimate
    Time airtime;
  };

  struct State {
    std::vector<RateStats> stats;
    size_t best = 0;
    size_t second_best = 0;
    Time last_update;
    uint64_t packets = 0;
  };

  State& StateFor(const MacAddress& dest);
  void UpdateStats(State& s, Time now);

  std::vector<WifiMode> modes_;
  Options options_;
  Rng rng_;
  std::unordered_map<MacAddress, State> states_;
};

}  // namespace wlansim

#endif  // WLANSIM_RATE_MINSTREL_H_
