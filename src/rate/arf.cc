#include "rate/arf.h"

#include <algorithm>

namespace wlansim {

ArfController::ArfController(PhyStandard standard, Options options) : options_(options) {
  const auto modes = ModesFor(standard);
  modes_.assign(modes.begin(), modes.end());
}

ArfController::State& ArfController::StateFor(const MacAddress& dest) {
  auto it = states_.find(dest);
  if (it == states_.end()) {
    State s;
    s.rate_index = 0;  // start at the most robust rate
    s.success_threshold = options_.success_threshold;
    s.probe_timer = options_.probe_timer_packets;
    it = states_.emplace(dest, s).first;
  }
  return it->second;
}

WifiMode ArfController::SelectMode(const MacAddress& dest, size_t /*bytes*/,
                                   uint8_t /*retry_count*/) {
  return modes_[StateFor(dest).rate_index];
}

size_t ArfController::CurrentRateIndex(const MacAddress& dest) {
  return StateFor(dest).rate_index;
}

void ArfController::OnTxResult(const MacAddress& dest, const WifiMode& /*mode*/, bool success,
                               Time /*now*/) {
  State& s = StateFor(dest);
  ++s.packets_since_change;

  if (success) {
    ++s.consecutive_ok;
    s.consecutive_fail = 0;
    s.just_stepped_up = false;
    const bool timer_fired = s.packets_since_change >= s.probe_timer;
    if ((s.consecutive_ok >= s.success_threshold || timer_fired) &&
        s.rate_index + 1 < modes_.size()) {
      ++s.rate_index;
      s.consecutive_ok = 0;
      s.packets_since_change = 0;
      s.just_stepped_up = true;
    }
    return;
  }

  ++s.consecutive_fail;
  s.consecutive_ok = 0;
  if (s.just_stepped_up) {
    // Probe failed: immediate fallback.
    if (s.rate_index > 0) {
      --s.rate_index;
    }
    s.just_stepped_up = false;
    s.packets_since_change = 0;
    s.consecutive_fail = 0;
    if (options_.adaptive) {
      // AARF: both the success threshold and the probe timer double after a
      // failed probe, so repeated unsuccessful probing backs off.
      s.success_threshold =
          std::min(s.success_threshold * 2, options_.max_success_threshold);
      s.probe_timer = s.success_threshold + options_.probe_timer_packets;
    }
  } else if (s.consecutive_fail >= 2) {
    if (s.rate_index > 0) {
      --s.rate_index;
    }
    s.consecutive_fail = 0;
    s.packets_since_change = 0;
    if (options_.adaptive) {
      s.success_threshold = options_.min_success_threshold;
      s.probe_timer = options_.probe_timer_packets;
    }
  }
}

}  // namespace wlansim
