// Minimal leveled logging for simulator diagnostics.
//
// Logging is off by default (benchmarks must not pay for it); tests and
// examples can raise the level per component. The WLANSIM_LOG macro only
// evaluates its arguments when the level is enabled.

#ifndef WLANSIM_CORE_LOGGING_H_
#define WLANSIM_CORE_LOGGING_H_

#include <cstdio>
#include <string>

#include "core/time.h"

namespace wlansim {

enum class LogLevel : int {
  kOff = 0,
  kError = 1,
  kWarn = 2,
  kInfo = 3,
  kDebug = 4,
};

class Logger {
 public:
  static LogLevel level() { return level_; }
  static void set_level(LogLevel level) { level_ = level; }

  static bool Enabled(LogLevel level) { return static_cast<int>(level) <= static_cast<int>(level_); }

  // Emits one line: "[ 1.234ms] component: message".
  static void Write(LogLevel level, Time now, const char* component, const std::string& message);

 private:
  static LogLevel level_;
};

}  // namespace wlansim

// Usage: WLANSIM_LOG(kDebug, sim.Now(), "mac", "tx data seq=" + std::to_string(seq));
#define WLANSIM_LOG(level, now, component, message)                                     \
  do {                                                                                  \
    if (::wlansim::Logger::Enabled(::wlansim::LogLevel::level)) {                       \
      ::wlansim::Logger::Write(::wlansim::LogLevel::level, (now), (component), (message)); \
    }                                                                                   \
  } while (0)

#endif  // WLANSIM_CORE_LOGGING_H_
