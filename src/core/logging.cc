#include "core/logging.h"

namespace wlansim {

LogLevel Logger::level_ = LogLevel::kOff;

void Logger::Write(LogLevel level, Time now, const char* component, const std::string& message) {
  const char* tag = "?";
  switch (level) {
    case LogLevel::kError:
      tag = "E";
      break;
    case LogLevel::kWarn:
      tag = "W";
      break;
    case LogLevel::kInfo:
      tag = "I";
      break;
    case LogLevel::kDebug:
      tag = "D";
      break;
    case LogLevel::kOff:
      return;
  }
  std::fprintf(stderr, "%s [%12s] %-8s %s\n", tag, now.ToString().c_str(), component,
               message.c_str());
}

}  // namespace wlansim
