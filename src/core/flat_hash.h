// A minimal open-addressing hash map from uint64_t keys to a small value
// type, used for per-link state on the PHY hot path (shadowing draws, matrix
// losses). Compared to std::map, lookups are one hash + a short linear probe
// over a contiguous array instead of a pointer-chasing tree walk, and there
// is one allocation per doubling instead of one per node.

#ifndef WLANSIM_CORE_FLAT_HASH_H_
#define WLANSIM_CORE_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wlansim {

template <typename Value>
class FlatHash64 {
 public:
  // Pointer to the value for `key`, or nullptr when absent. Stable only
  // until the next insertion.
  Value* Find(uint64_t key) {
    if (size_ == 0) {
      return nullptr;
    }
    for (size_t i = Mix(key) & mask_;; i = (i + 1) & mask_) {
      Slot& slot = slots_[i];
      if (!slot.used) {
        return nullptr;
      }
      if (slot.key == key) {
        return &slot.value;
      }
    }
  }
  const Value* Find(uint64_t key) const {
    return const_cast<FlatHash64*>(this)->Find(key);
  }

  // Inserts or overwrites; returns the stored value. An overwrite of an
  // existing key never rehashes; inserting a new one invalidates pointers
  // previously returned by Find when the load threshold is crossed.
  Value& InsertOrAssign(uint64_t key, Value value) {
    if (Value* existing = Find(key)) {
      *existing = std::move(value);
      return *existing;
    }
    // Grow at 7/8 load so probe chains stay short.
    if (slots_.empty() || (size_ + 1) * 8 > slots_.size() * 7) {
      Grow();
    }
    return InsertAbsent(key, std::move(value));
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Drops every entry but keeps the slot array capacity, so a table that is
  // cleared and refilled to a similar size never reallocates.
  void Clear() {
    if (size_ == 0) {
      return;
    }
    for (Slot& slot : slots_) {
      slot = Slot{};
    }
    size_ = 0;
  }

 private:
  struct Slot {
    uint64_t key = 0;
    Value value{};
    bool used = false;
  };

  // splitmix64 finalizer: full-avalanche mixing so sequential node-id pairs
  // spread across the table.
  static size_t Mix(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(x ^ (x >> 31));
  }

  // Requires `key` to be absent and a free slot to exist.
  Value& InsertAbsent(uint64_t key, Value value) {
    for (size_t i = Mix(key) & mask_;; i = (i + 1) & mask_) {
      Slot& slot = slots_[i];
      if (!slot.used) {
        slot.used = true;
        slot.key = key;
        slot.value = std::move(value);
        ++size_;
        return slot.value;
      }
    }
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 16 : old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    size_ = 0;
    for (Slot& slot : old) {
      if (slot.used) {
        InsertAbsent(slot.key, std::move(slot.value));
      }
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace wlansim

#endif  // WLANSIM_CORE_FLAT_HASH_H_
