#include "core/mac_address.h"

#include <cstdio>

namespace wlansim {

std::string MacAddress::ToString() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes_[0], bytes_[1], bytes_[2],
                bytes_[3], bytes_[4], bytes_[5]);
  return buf;
}

}  // namespace wlansim
