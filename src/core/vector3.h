// 3-D position/velocity vector (metres, metres/second).

#ifndef WLANSIM_CORE_VECTOR3_H_
#define WLANSIM_CORE_VECTOR3_H_

#include <cmath>

namespace wlansim {

struct Vector3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vector3 operator+(const Vector3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vector3 operator-(const Vector3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vector3 operator*(double k) const { return {x * k, y * k, z * k}; }
  constexpr bool operator==(const Vector3&) const = default;

  double Length() const { return std::sqrt(x * x + y * y + z * z); }

  double DistanceTo(const Vector3& o) const { return (*this - o).Length(); }
};

constexpr Vector3 operator*(double k, const Vector3& v) {
  return v * k;
}

}  // namespace wlansim

#endif  // WLANSIM_CORE_VECTOR3_H_
