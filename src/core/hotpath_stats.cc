#include "core/hotpath_stats.h"

namespace wlansim {

std::atomic<uint64_t> HotPathStats::channel_bytes_copied{0};
std::atomic<uint64_t> HotPathStats::event_heap_fallbacks{0};

}  // namespace wlansim
