#include "core/packet.h"

#include <cassert>

namespace wlansim {

uint64_t Packet::next_uid_ = 1;

void Packet::AddHeader(std::span<const uint8_t> header) {
  if (header.size() > head_) {
    // Grow headroom: shift existing content right.
    const size_t grow = header.size() - head_ + kDefaultHeadroom;
    buf_.insert(buf_.begin(), grow, 0);
    head_ += grow;
  }
  head_ -= header.size();
  std::memcpy(buf_.data() + head_, header.data(), header.size());
}

void Packet::RemoveHeader(size_t n) {
  assert(n <= size());
  head_ += n;
}

void Packet::AddTrailer(std::span<const uint8_t> trailer) {
  buf_.insert(buf_.end(), trailer.begin(), trailer.end());
}

void Packet::RemoveTrailer(size_t n) {
  assert(n <= size());
  buf_.resize(buf_.size() - n);
}

void Packet::SetBytes(std::span<const uint8_t> content) {
  buf_.assign(content.begin(), content.end());
  head_ = 0;
}

}  // namespace wlansim
