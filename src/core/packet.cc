#include "core/packet.h"

#include <cassert>
#include <new>

namespace wlansim {

uint64_t Packet::next_uid_ = 1;
thread_local uint64_t Packet::cow_copied_bytes_ = 0;

Packet::Buf* Packet::NewBuf(size_t capacity, bool zero) {
  assert(capacity <= UINT32_MAX);
  void* raw = ::operator new(sizeof(Buf) + capacity);
  Buf* buf = static_cast<Buf*>(raw);
  buf->refs = 1;
  buf->capacity = static_cast<uint32_t>(capacity);
  if (zero && capacity > 0) {
    std::memset(DataOf(buf), 0, capacity);
  }
  return buf;
}

void Packet::Unref(Buf* buf) {
  if (--buf->refs == 0) {
    ::operator delete(static_cast<void*>(buf));
  }
}

Packet::Packet(size_t payload_size, size_t headroom)
    : buf_(NewBuf(headroom + payload_size, /*zero=*/true)),
      head_(static_cast<uint32_t>(headroom)),
      tail_(static_cast<uint32_t>(headroom + payload_size)),
      uid_(next_uid_++) {}

Packet::Packet(std::span<const uint8_t> payload, size_t headroom)
    : buf_(NewBuf(headroom + payload.size(), /*zero=*/false)),
      head_(static_cast<uint32_t>(headroom)),
      tail_(static_cast<uint32_t>(headroom + payload.size())),
      uid_(next_uid_++) {
  // memcpy from a null pointer is UB even for zero bytes: an empty span
  // (e.g. a NullData MSDU) has no storage to copy from.
  if (!payload.empty()) {
    std::memcpy(data() + head_, payload.data(), payload.size());
  }
}

Packet::Packet(const Packet& other)
    : buf_(other.buf_), head_(other.head_), tail_(other.tail_), uid_(other.uid_),
      meta_(other.meta_) {
  Ref(buf_);
}

Packet& Packet::operator=(const Packet& other) {
  if (this != &other) {
    Ref(other.buf_);  // ref before unref: safe under self-buffer aliasing
    Unref(buf_);
    buf_ = other.buf_;
    head_ = other.head_;
    tail_ = other.tail_;
    uid_ = other.uid_;
    meta_ = other.meta_;
  }
  return *this;
}

Packet::Buf* Packet::EmptyBuf() {
  // Shared zero-capacity buffer for moved-from packets. The baseline ref
  // is owned by the thread itself, so Unref never reaches zero and never
  // frees it. A move must genuinely steal the buffer — leaving the source
  // co-owning it would make the destination look shared and trigger a
  // phantom copy-on-write fault on its next mutation.
  thread_local Buf empty{/*refs=*/1, /*capacity=*/0};
  ++empty.refs;
  return &empty;
}

Packet::Packet(Packet&& other) noexcept
    : buf_(other.buf_), head_(other.head_), tail_(other.tail_), uid_(other.uid_),
      meta_(other.meta_) {
  other.buf_ = EmptyBuf();
  other.head_ = 0;
  other.tail_ = 0;
}

Packet& Packet::operator=(Packet&& other) noexcept {
  if (this != &other) {
    Unref(buf_);
    buf_ = other.buf_;
    head_ = other.head_;
    tail_ = other.tail_;
    uid_ = other.uid_;
    meta_ = other.meta_;
    other.buf_ = EmptyBuf();
    other.head_ = 0;
    other.tail_ = 0;
  }
  return *this;
}

Packet::~Packet() { Unref(buf_); }

void Packet::Reserve(size_t need_head, size_t need_tail) {
  const size_t n = size();
  if (buf_->refs == 1 && head_ >= need_head && buf_->capacity - tail_ >= need_tail) {
    return;
  }
  // Clone the visible window into a private buffer with the requested
  // slack. Shared-buffer clones are the copy-on-write faults the hot-path
  // counters account for; an exclusive-but-too-small buffer is ordinary
  // growth (the old flat-vector packet paid it too) and is not counted.
  const bool shared = buf_->refs > 1;
  Buf* fresh = NewBuf(need_head + n + need_tail, /*zero=*/false);
  if (n > 0) {
    std::memcpy(DataOf(fresh) + need_head, data() + head_, n);
  }
  if (shared) {
    cow_copied_bytes_ += n;
  }
  Unref(buf_);
  buf_ = fresh;
  head_ = static_cast<uint32_t>(need_head);
  tail_ = static_cast<uint32_t>(need_head + n);
}

std::span<uint8_t> Packet::mutable_bytes() {
  Reserve(head_, buf_->capacity - tail_);  // detach-in-place when shared
  return {data() + head_, size()};
}

void Packet::AddHeader(std::span<const uint8_t> header) {
  if (buf_->refs > 1 || head_ < header.size()) {
    Reserve(header.size() + kDefaultHeadroom, buf_->capacity - tail_);
  }
  head_ -= static_cast<uint32_t>(header.size());
  std::memcpy(data() + head_, header.data(), header.size());
}

void Packet::RemoveHeader(size_t n) {
  assert(n <= size());
  head_ += static_cast<uint32_t>(n);
}

void Packet::AddTrailer(std::span<const uint8_t> trailer) {
  if (buf_->refs > 1 || buf_->capacity - tail_ < trailer.size()) {
    Reserve(head_, trailer.size() + kDefaultHeadroom);
  }
  std::memcpy(data() + tail_, trailer.data(), trailer.size());
  tail_ += static_cast<uint32_t>(trailer.size());
}

void Packet::RemoveTrailer(size_t n) {
  assert(n <= size());
  tail_ -= static_cast<uint32_t>(n);
}

void Packet::SetBytes(std::span<const uint8_t> content) {
  Buf* fresh = NewBuf(content.size(), /*zero=*/false);
  if (!content.empty()) {
    std::memcpy(DataOf(fresh), content.data(), content.size());
  }
  Unref(buf_);
  buf_ = fresh;
  head_ = 0;
  tail_ = static_cast<uint32_t>(content.size());
}

}  // namespace wlansim
