// The discrete-event simulation kernel.
//
// A Simulator owns the event queue and the simulation clock. It is an
// explicit object (no global singleton) so tests can run many independent
// simulations in one process and scenarios can be constructed side by side.

#ifndef WLANSIM_CORE_SIMULATOR_H_
#define WLANSIM_CORE_SIMULATOR_H_

#include <cstdint>
#include <utility>

#include "core/event_queue.h"
#include "core/time.h"

namespace wlansim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulation time. Starts at zero.
  Time Now() const { return now_; }

  // Schedules `fn` (any nullary callable; forwarded into the event slab
  // without type erasure overhead) to run `delay` after Now(). Negative
  // delays are clamped to zero (run "immediately after" the current event,
  // preserving FIFO order).
  template <typename F>
  EventId Schedule(Time delay, F&& fn) {
    const Time at = delay.IsNegative() ? now_ : now_ + delay;
    return queue_.Schedule(at, std::forward<F>(fn));
  }

  // Schedules `fn` at absolute time `at` (clamped to Now()).
  template <typename F>
  EventId ScheduleAt(Time at, F&& fn) {
    if (at < now_) {
      at = now_;
    }
    return queue_.Schedule(at, std::forward<F>(fn));
  }

  // Runs events until the queue drains, Stop() is called, or the optional
  // horizon is reached (events at exactly the horizon still run).
  void Run() { RunUntil(Time::Max()); }
  void RunUntil(Time horizon);

  // Stops the run loop after the current event returns.
  void Stop() { stopped_ = true; }

  uint64_t EventsExecuted() const { return events_executed_; }

  // Scheduled closures that missed the event slab's inline buffer (see
  // EventQueue::HeapFallbacks) — the SBO-fit regression gauge used by the
  // fan-out bench and tests.
  uint64_t EventHeapFallbacks() const { return queue_.HeapFallbacks(); }

 private:
  EventQueue queue_;
  Time now_;
  bool stopped_ = false;
  uint64_t events_executed_ = 0;
};

}  // namespace wlansim

#endif  // WLANSIM_CORE_SIMULATOR_H_
