#include "core/random.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace wlansim {
namespace {

constexpr uint64_t RotL(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// SplitMix64 step; used for seeding and for hashing stream names.
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// FNV-1a over the stream name, to mix into the fork seed.
uint64_t HashName(std::string_view name) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) {
    word = SplitMix64(sm);
  }
}

uint64_t SubstreamSeed(uint64_t root_seed, std::string_view stream, uint64_t index) {
  // A short SplitMix64 sponge: absorb the stream name and the replication
  // index between squeezes so nearby (seed, index) pairs land far apart.
  uint64_t s = root_seed;
  s = SplitMix64(s) ^ HashName(stream);
  s = SplitMix64(s) ^ index;
  return SplitMix64(s);
}

Rng Rng::Substream(uint64_t root_seed, std::string_view stream, uint64_t index) {
  return Rng(SubstreamSeed(root_seed, stream, index));
}

Rng Rng::Fork(std::string_view stream_name) const {
  // Combine the current state (not advanced) with the stream name so forks
  // are independent of draw order on the parent.
  uint64_t mix = s_[0] ^ RotL(s_[1], 17) ^ RotL(s_[2], 31) ^ s_[3];
  return Rng(mix ^ HashName(stream_name));
}

uint64_t Rng::NextU64() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  const uint64_t result = RotL(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits → [0, 1) with full double precision.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<int64_t>(NextU64());
  }
  // Debiased modulo (rejection sampling on the tail).
  const uint64_t limit = ~uint64_t{0} - (~uint64_t{0} % range);
  uint64_t draw;
  do {
    draw = NextU64();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % range);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Exponential(double mean) {
  assert(mean > 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);  // avoid log(0)
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

bool Rng::Chance(double p) {
  return NextDouble() < p;
}

}  // namespace wlansim
