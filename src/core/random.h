// Deterministic pseudo-random number generation.
//
// The generator is xoshiro256** seeded through SplitMix64, the combination
// recommended by the xoshiro authors. Every stochastic component of the
// simulator (backoff, fading, traffic, placement) draws from an Rng derived
// from the scenario seed via a named stream, so runs are reproducible and
// individual noise sources can be decoupled (changing the traffic pattern
// does not perturb the fading process).

#ifndef WLANSIM_CORE_RANDOM_H_
#define WLANSIM_CORE_RANDOM_H_

#include <cstdint>
#include <string_view>

namespace wlansim {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Derives an independent child generator. Identical (seed, name) pairs
  // always produce the same stream.
  Rng Fork(std::string_view stream_name) const;

  // Stateless named-substream derivation for parallel replication: identical
  // (root_seed, stream, index) triples produce identical generators, no
  // matter which thread creates them or in which order. This is what makes
  // campaign results independent of the worker count.
  static Rng Substream(uint64_t root_seed, std::string_view stream, uint64_t index);

  // Raw 64 uniform bits.
  uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  // Exponential with the given mean (> 0).
  double Exponential(double mean);

  // Standard normal via Box-Muller (cached second variate).
  double Normal(double mean, double stddev);

  // Bernoulli trial.
  bool Chance(double p);

 private:
  Rng() = default;

  uint64_t s_[4] = {};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

// The seed underlying Rng::Substream, exposed so callers that need a plain
// integer seed (e.g. Network::Params) can derive it the same way.
uint64_t SubstreamSeed(uint64_t root_seed, std::string_view stream, uint64_t index);

}  // namespace wlansim

#endif  // WLANSIM_CORE_RANDOM_H_
