// Process-wide hot-path regression counters.
//
// Per-object counters (Channel::SendStats::bytes_copied, EventQueue's
// heap-fallback count) die with their owners — one per replication, many
// thousands per campaign. Each owner folds its totals into these atomics on
// destruction, so `wlansim_run --verbose` can print campaign-wide numbers
// after the fact and a fan-out copy or SBO-miss regression is visible
// without a profiler. Diagnostics only: nothing reads them on a hot path,
// and they never feed result artifacts (bit-exactness invariant #6).

#ifndef WLANSIM_CORE_HOTPATH_STATS_H_
#define WLANSIM_CORE_HOTPATH_STATS_H_

#include <atomic>
#include <cstdint>

namespace wlansim {

struct HotPathStats {
  // Bytes deep-copied by packet CoW faults inside Channel::Send fan-out
  // loops (steady state: zero — fan-out shares one immutable buffer).
  static std::atomic<uint64_t> channel_bytes_copied;
  // Scheduled closures too large for the event slab's inline buffer, each
  // costing a heap allocation (steady state: zero — delivery closures are
  // sized to fit).
  static std::atomic<uint64_t> event_heap_fallbacks;
};

}  // namespace wlansim

#endif  // WLANSIM_CORE_HOTPATH_STATS_H_
