// Build identity for the CLI --version flags: the git description and
// build type captured by CMake at configure time. Every wlansim binary
// prints the same line format so scripted environments can record exactly
// which build produced an artifact.

#ifndef WLANSIM_CORE_VERSION_H_
#define WLANSIM_CORE_VERSION_H_

#include <string>

namespace wlansim {

// `git describe --always --dirty` at configure time; "unknown" when the
// source tree was not a git checkout.
const char* BuildVersion();

// The CMake build type ("Release", "Debug", ...); "unspecified" for
// multi-config generators that defer the choice.
const char* BuildType();

// The line a `--version` invocation prints: "<tool> <version> (<type>)\n".
std::string VersionLine(const std::string& tool);

}  // namespace wlansim

#endif  // WLANSIM_CORE_VERSION_H_
