#include "core/time.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace wlansim {

std::string Time::ToString() const {
  char buf[64];
  const double abs_ps = std::fabs(static_cast<double>(ps_));
  if (ps_ % 1'000'000'000'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "s", ps_ / 1'000'000'000'000);
  } else if (abs_ps >= 1e12) {
    std::snprintf(buf, sizeof(buf), "%.6gs", seconds());
  } else if (abs_ps >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.6gms", millis());
  } else if (abs_ps >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.6gus", micros());
  } else if (abs_ps >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.6gns", nanos());
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRId64 "ps", ps_);
  }
  return buf;
}

}  // namespace wlansim
