// 48-bit IEEE 802 MAC address value type.

#ifndef WLANSIM_CORE_MAC_ADDRESS_H_
#define WLANSIM_CORE_MAC_ADDRESS_H_

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace wlansim {

class MacAddress {
 public:
  constexpr MacAddress() = default;
  explicit constexpr MacAddress(std::array<uint8_t, 6> bytes) : bytes_(bytes) {}

  // Builds a locally-administered unicast address from a small integer id:
  // 02:00:00:xx:xx:xx. Convenient for simulated nodes.
  static constexpr MacAddress FromId(uint32_t id) {
    return MacAddress({0x02, 0x00, 0x00, static_cast<uint8_t>(id >> 16),
                       static_cast<uint8_t>(id >> 8), static_cast<uint8_t>(id)});
  }

  static constexpr MacAddress Broadcast() {
    return MacAddress({0xff, 0xff, 0xff, 0xff, 0xff, 0xff});
  }

  constexpr const std::array<uint8_t, 6>& bytes() const { return bytes_; }

  constexpr bool IsBroadcast() const { return *this == Broadcast(); }
  constexpr bool IsGroup() const { return (bytes_[0] & 0x01) != 0; }

  friend constexpr auto operator<=>(const MacAddress&, const MacAddress&) = default;

  std::string ToString() const;

  // Packs the address into a uint64 (big-endian byte order) for hashing.
  constexpr uint64_t ToU64() const {
    uint64_t v = 0;
    for (uint8_t b : bytes_) {
      v = (v << 8) | b;
    }
    return v;
  }

 private:
  std::array<uint8_t, 6> bytes_ = {};
};

}  // namespace wlansim

template <>
struct std::hash<wlansim::MacAddress> {
  size_t operator()(const wlansim::MacAddress& a) const noexcept {
    return std::hash<uint64_t>{}(a.ToU64());
  }
};

#endif  // WLANSIM_CORE_MAC_ADDRESS_H_
