// Simulated packet: a copy-on-write view over a refcounted immutable byte
// buffer, with cheap header prepend/strip plus side-band metadata that
// models out-of-band driver state (flow ids, timestamps) without being
// serialized on the air.
//
// Copy semantics: copying a Packet shares the underlying buffer (one
// refcount bump, no byte copy) and duplicates only the per-instance view
// state — the [head, tail) window, the uid, and the PacketMeta. This is
// what makes the channel's per-receiver fan-out zero-copy: every receiver
// of a transmission holds a view of the same immutable buffer. Byte
// mutation (AddHeader / AddTrailer / SetBytes / mutable_bytes) detaches —
// clones the visible bytes into a private buffer — only when the buffer is
// shared, so a mutation through one view is never observable through a
// sibling. RemoveHeader / RemoveTrailer only move the per-instance window
// offsets and therefore never detach: the receive-side MPDU strip stays
// zero-copy even on a shared buffer.
//
// The refcount is intentionally non-atomic: a Packet never crosses thread
// boundaries (each campaign replication owns its Simulator, Network and
// every packet inside them), matching the threading model of the rest of
// the per-replication state.

#ifndef WLANSIM_CORE_PACKET_H_
#define WLANSIM_CORE_PACKET_H_

#include <cstdint>
#include <cstring>
#include <span>

#include "core/time.h"

namespace wlansim {

// Out-of-band metadata carried alongside the bytes. Not part of the frame,
// and per-view: each copy of a packet mutates its own meta (the MAC bumps
// `retries` on its instance without detaching or disturbing siblings).
struct PacketMeta {
  uint32_t flow_id = 0;     // application flow identifier
  uint32_t app_seq = 0;     // application-level sequence number
  Time created;             // when the application generated the payload
  Time mac_enqueued;        // when the MAC queue accepted the frame
  uint8_t retries = 0;      // MAC retransmission count (filled by the MAC)
  uint8_t priority = 0;     // 802.1D user priority (QoS class)
};

class Packet {
 public:
  Packet() : Packet(0) {}

  // Creates a packet with `payload_size` zero bytes of payload.
  explicit Packet(size_t payload_size, size_t headroom = kDefaultHeadroom);

  // Creates a packet holding a copy of `payload`.
  explicit Packet(std::span<const uint8_t> payload, size_t headroom = kDefaultHeadroom);

  // Copies share the buffer (refcount bump) and keep the source's uid and
  // meta; moves steal the view. Neither consumes a uid.
  Packet(const Packet& other);
  Packet& operator=(const Packet& other);
  Packet(Packet&& other) noexcept;
  Packet& operator=(Packet&& other) noexcept;
  ~Packet();

  size_t size() const { return tail_ - head_; }
  bool empty() const { return size() == 0; }

  std::span<const uint8_t> bytes() const { return {data() + head_, size()}; }

  // Mutable access to the visible bytes; detaches first when shared.
  std::span<uint8_t> mutable_bytes();

  // Prepends `header` (copies). Grows headroom if exhausted; detaches when
  // shared.
  void AddHeader(std::span<const uint8_t> header);

  // Strips `n` bytes from the front. Requires n <= size(). Offset-only:
  // never detaches or copies.
  void RemoveHeader(size_t n);

  // Appends `trailer` at the end. Grows tailroom if exhausted; detaches
  // when shared.
  void AddTrailer(std::span<const uint8_t> trailer);

  // Strips `n` bytes from the end. Requires n <= size(). Offset-only:
  // never detaches or copies.
  void RemoveTrailer(size_t n);

  // Replaces the whole content (used by ciphers that re-frame the body).
  // Always re-frames into a private exact-fit buffer.
  void SetBytes(std::span<const uint8_t> content);

  uint64_t uid() const { return uid_; }

  PacketMeta& meta() { return meta_; }
  const PacketMeta& meta() const { return meta_; }

  // --- CoW introspection (tests and hot-path counters) ----------------------

  // True when both packets view the same underlying buffer.
  bool SharesBufferWith(const Packet& other) const { return buf_ == other.buf_; }

  // Number of views holding this packet's buffer.
  uint32_t buffer_refcount() const { return buf_->refs; }

  // Bytes deep-copied on this thread because a *shared* buffer had to be
  // detached (CoW faults). Monotonic; callers measure deltas. A zero delta
  // across a region proves the region performed no copy-on-write work —
  // the channel uses this to account SendStats::bytes_copied per fan-out.
  static uint64_t CowCopiedBytes() { return cow_copied_bytes_; }

 private:
  static constexpr size_t kDefaultHeadroom = 64;

  // Intrusively refcounted buffer header; the bytes are co-allocated
  // immediately after it (one allocation per buffer).
  struct Buf {
    uint32_t refs;
    uint32_t capacity;
  };

  static Buf* NewBuf(size_t capacity, bool zero);
  static Buf* EmptyBuf();
  static void Ref(Buf* buf) { ++buf->refs; }
  static void Unref(Buf* buf);

  static uint8_t* DataOf(Buf* buf) { return reinterpret_cast<uint8_t*>(buf + 1); }
  uint8_t* data() const { return DataOf(buf_); }

  // Ensures exclusive ownership with at least `need_head` bytes of headroom
  // and `need_tail` bytes of tailroom around the visible window, cloning
  // the visible bytes when the buffer is shared or too small.
  void Reserve(size_t need_head, size_t need_tail);

  Buf* buf_;       // never null
  uint32_t head_;  // visible window [head_, tail_) within the buffer
  uint32_t tail_;
  uint64_t uid_;
  PacketMeta meta_;

  static uint64_t next_uid_;
  static thread_local uint64_t cow_copied_bytes_;
};

}  // namespace wlansim

#endif  // WLANSIM_CORE_PACKET_H_
