// Simulated packet: a byte buffer with cheap header prepend/strip plus
// side-band metadata that models out-of-band driver state (flow ids,
// timestamps) without being serialized on the air.

#ifndef WLANSIM_CORE_PACKET_H_
#define WLANSIM_CORE_PACKET_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "core/time.h"

namespace wlansim {

// Out-of-band metadata carried alongside the bytes. Not part of the frame.
struct PacketMeta {
  uint32_t flow_id = 0;     // application flow identifier
  uint32_t app_seq = 0;     // application-level sequence number
  Time created;             // when the application generated the payload
  Time mac_enqueued;        // when the MAC queue accepted the frame
  uint8_t retries = 0;      // MAC retransmission count (filled by the MAC)
  uint8_t priority = 0;     // 802.1D user priority (QoS class)
};

class Packet {
 public:
  Packet() : Packet(0) {}

  // Creates a packet with `payload_size` zero bytes of payload.
  explicit Packet(size_t payload_size, size_t headroom = kDefaultHeadroom)
      : buf_(headroom + payload_size), head_(headroom), uid_(next_uid_++) {}

  // Creates a packet holding a copy of `payload`.
  explicit Packet(std::span<const uint8_t> payload, size_t headroom = kDefaultHeadroom)
      : buf_(headroom + payload.size()), head_(headroom), uid_(next_uid_++) {
    std::memcpy(buf_.data() + head_, payload.data(), payload.size());
  }

  size_t size() const { return buf_.size() - head_; }
  bool empty() const { return size() == 0; }

  std::span<const uint8_t> bytes() const { return {buf_.data() + head_, size()}; }
  std::span<uint8_t> mutable_bytes() { return {buf_.data() + head_, size()}; }

  // Prepends `header` (copies). Grows headroom if exhausted.
  void AddHeader(std::span<const uint8_t> header);

  // Strips `n` bytes from the front. Requires n <= size().
  void RemoveHeader(size_t n);

  // Appends `trailer` at the end.
  void AddTrailer(std::span<const uint8_t> trailer);

  // Strips `n` bytes from the end. Requires n <= size().
  void RemoveTrailer(size_t n);

  // Replaces the whole content (used by ciphers that re-frame the body).
  void SetBytes(std::span<const uint8_t> content);

  uint64_t uid() const { return uid_; }

  PacketMeta& meta() { return meta_; }
  const PacketMeta& meta() const { return meta_; }

 private:
  static constexpr size_t kDefaultHeadroom = 64;

  std::vector<uint8_t> buf_;
  size_t head_ = 0;
  uint64_t uid_ = 0;
  PacketMeta meta_;

  static uint64_t next_uid_;
};

}  // namespace wlansim

#endif  // WLANSIM_CORE_PACKET_H_
