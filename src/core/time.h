// Simulation time: a strongly-typed count of integer picoseconds.
//
// 802.11 PLCP arithmetic involves byte durations such as 8/11 us (802.11b at
// 11 Mb/s) that are not integral in nanoseconds; picosecond resolution keeps
// whole-frame durations (computed in a single integer division) exact to
// < 1 ps, so event ordering never depends on floating-point rounding. An
// int64 count of picoseconds covers ~106 days, far beyond any simulated
// scenario.

#ifndef WLANSIM_CORE_TIME_H_
#define WLANSIM_CORE_TIME_H_

#include <compare>
#include <concepts>
#include <cstdint>
#include <limits>
#include <string>

namespace wlansim {

class Time {
 public:
  constexpr Time() = default;

  // Named constructors. Fractional inputs are rounded to the nearest
  // picosecond.
  static constexpr Time Picos(int64_t ps) { return Time(ps); }
  static constexpr Time Nanos(int64_t ns) { return Time(ns * 1'000); }
  static constexpr Time Micros(int64_t us) { return Time(us * 1'000'000); }
  static constexpr Time Millis(int64_t ms) { return Time(ms * 1'000'000'000); }
  static constexpr Time Seconds(int64_t s) { return Time(s * 1'000'000'000'000); }
  template <typename F>
    requires std::floating_point<F>
  static constexpr Time Seconds(F s) {
    return FromDouble(static_cast<double>(s) * 1e12);
  }
  template <typename F>
    requires std::floating_point<F>
  static constexpr Time Millis(F ms) {
    return FromDouble(static_cast<double>(ms) * 1e9);
  }
  template <typename F>
    requires std::floating_point<F>
  static constexpr Time Micros(F us) {
    return FromDouble(static_cast<double>(us) * 1e6);
  }
  template <typename F>
    requires std::floating_point<F>
  static constexpr Time Nanos(F ns) {
    return FromDouble(static_cast<double>(ns) * 1e3);
  }

  static constexpr Time Zero() { return Time(0); }
  static constexpr Time Max() { return Time(std::numeric_limits<int64_t>::max()); }

  constexpr int64_t picos() const { return ps_; }
  constexpr double nanos() const { return static_cast<double>(ps_) * 1e-3; }
  constexpr double micros() const { return static_cast<double>(ps_) * 1e-6; }
  constexpr double millis() const { return static_cast<double>(ps_) * 1e-9; }
  constexpr double seconds() const { return static_cast<double>(ps_) * 1e-12; }

  constexpr bool IsZero() const { return ps_ == 0; }
  constexpr bool IsNegative() const { return ps_ < 0; }
  constexpr bool IsStrictlyPositive() const { return ps_ > 0; }

  friend constexpr auto operator<=>(Time a, Time b) = default;

  constexpr Time operator+(Time other) const { return Time(ps_ + other.ps_); }
  constexpr Time operator-(Time other) const { return Time(ps_ - other.ps_); }
  constexpr Time operator-() const { return Time(-ps_); }
  constexpr Time& operator+=(Time other) {
    ps_ += other.ps_;
    return *this;
  }
  constexpr Time& operator-=(Time other) {
    ps_ -= other.ps_;
    return *this;
  }
  constexpr Time operator*(int64_t k) const { return Time(ps_ * k); }
  template <typename F>
    requires std::floating_point<F>
  constexpr Time operator*(F k) const {
    return FromDouble(static_cast<double>(ps_) * static_cast<double>(k));
  }
  constexpr Time operator/(int64_t k) const { return Time(ps_ / k); }
  // Ratio of two durations.
  constexpr double operator/(Time other) const {
    return static_cast<double>(ps_) / static_cast<double>(other.ps_);
  }

  // Human-readable rendering with an auto-selected unit, e.g. "12.5us".
  std::string ToString() const;

 private:
  explicit constexpr Time(int64_t ps) : ps_(ps) {}

  static constexpr Time FromDouble(double ps) {
    // Round half away from zero; constexpr-friendly (no std::llround).
    return Time(static_cast<int64_t>(ps < 0 ? ps - 0.5 : ps + 0.5));
  }

  int64_t ps_ = 0;
};

constexpr Time operator*(int64_t k, Time t) { return t * k; }
template <typename F>
  requires std::floating_point<F>
constexpr Time operator*(F k, Time t) {
  return t * k;
}

}  // namespace wlansim

#endif  // WLANSIM_CORE_TIME_H_
