// RF power/ratio unit conversions used throughout the PHY.

#ifndef WLANSIM_CORE_UNITS_H_
#define WLANSIM_CORE_UNITS_H_

#include <cmath>

namespace wlansim {

// Decibel-milliwatts → milliwatts.
inline double DbmToMw(double dbm) {
  return std::pow(10.0, dbm / 10.0);
}

// Milliwatts → decibel-milliwatts. mw must be > 0.
inline double MwToDbm(double mw) {
  return 10.0 * std::log10(mw);
}

// Linear power ratio → decibels.
inline double RatioToDb(double ratio) {
  return 10.0 * std::log10(ratio);
}

// Decibels → linear power ratio.
inline double DbToRatio(double db) {
  return std::pow(10.0, db / 10.0);
}

// Watts helpers (channel math is done in watts internally).
inline double DbmToW(double dbm) {
  return DbmToMw(dbm) * 1e-3;
}
inline double WToDbm(double w) {
  return MwToDbm(w * 1e3);
}

// Thermal noise floor in watts for a given bandwidth (Hz) and noise figure
// (dB): k*T0*B*F with T0 = 290 K.
inline double ThermalNoiseW(double bandwidth_hz, double noise_figure_db) {
  constexpr double kBoltzmann = 1.380649e-23;
  constexpr double kT0 = 290.0;
  return kBoltzmann * kT0 * bandwidth_hz * DbToRatio(noise_figure_db);
}

}  // namespace wlansim

#endif  // WLANSIM_CORE_UNITS_H_
