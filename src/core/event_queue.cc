#include "core/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace wlansim {

EventId EventQueue::Schedule(Time at, std::function<void()> fn) {
  auto state = std::make_shared<EventId::State>(EventId::State::kPending);
  heap_.push_back(Entry{at, next_seq_++, std::move(fn), state});
  std::push_heap(heap_.begin(), heap_.end());
  return EventId(std::move(state));
}

void EventQueue::DropCancelledHead() {
  while (!heap_.empty() && *heap_.front().state == EventId::State::kCancelled) {
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
  }
}

bool EventQueue::IsEmpty() {
  DropCancelledHead();
  return heap_.empty();
}

Time EventQueue::NextTime() {
  DropCancelledHead();
  assert(!heap_.empty());
  return heap_.front().at;
}

std::function<void()> EventQueue::PopNext(Time* at) {
  DropCancelledHead();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end());
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  *entry.state = EventId::State::kExecuted;
  if (at != nullptr) {
    *at = entry.at;
  }
  return std::move(entry.fn);
}

}  // namespace wlansim
