#include "core/event_queue.h"

#include <algorithm>

#include "core/hotpath_stats.h"

namespace wlansim {

EventQueue::~EventQueue() {
  HotPathStats::event_heap_fallbacks.fetch_add(heap_fallbacks_, std::memory_order_relaxed);
}

uint32_t EventQueue::AllocSlot() {
  if (free_head_ != kNoSlot) {
    const uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNoSlot;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void EventQueue::FreeSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.Reset();
  ++s.generation;  // invalidates every outstanding handle to this slot
  s.cancelled = false;
  s.next_free = free_head_;
  free_head_ = slot;
}

void EventQueue::CancelSlot(uint32_t slot, uint32_t generation) {
  if (!IsLive(slot, generation)) {
    return;
  }
  slots_[slot].cancelled = true;
  ++tombstones_;
  // Compact once tombstones outnumber live entries, so a mass cancel can
  // never keep more than half the heap dead. Waiting for tombstones to
  // surface at the head would let periodic cancel-heavy workloads (timer
  // churn) grow the heap without bound.
  if (tombstones_ * 2 > heap_.size()) {
    Compact();
  }
}

void EventQueue::DropCancelledHead() {
  while (!heap_.empty() && slots_[heap_.front().slot].cancelled) {
    FreeSlot(heap_.front().slot);
    --tombstones_;
    PopRoot();
  }
}

void EventQueue::Compact() {
  size_t kept = 0;
  for (const HeapEntry& entry : heap_) {
    if (slots_[entry.slot].cancelled) {
      FreeSlot(entry.slot);
    } else {
      heap_[kept++] = entry;
    }
  }
  heap_.resize(kept);
  tombstones_ = 0;
  // Floyd heap construction: sift down from the last parent. Keys carry
  // (time, seq), so the pop order — and therefore FIFO tie-breaking — is
  // unchanged by the rebuild.
  if (heap_.size() > 1) {
    for (size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;) {
      SiftDown(i);
    }
  }
}

void EventQueue::SiftUp(size_t index) {
  const HeapEntry entry = heap_[index];
  while (index > 0) {
    const size_t parent = (index - 1) / 4;
    if (!Earlier(entry, heap_[parent])) {
      break;
    }
    heap_[index] = heap_[parent];
    index = parent;
  }
  heap_[index] = entry;
}

void EventQueue::SiftDown(size_t index) {
  const size_t size = heap_.size();
  const HeapEntry entry = heap_[index];
  for (;;) {
    const size_t first_child = 4 * index + 1;
    if (first_child >= size) {
      break;
    }
    size_t best = first_child;
    const size_t last_child = std::min(first_child + 4, size);
    for (size_t child = first_child + 1; child < last_child; ++child) {
      if (Earlier(heap_[child], heap_[best])) {
        best = child;
      }
    }
    if (!Earlier(heap_[best], entry)) {
      break;
    }
    heap_[index] = heap_[best];
    index = best;
  }
  heap_[index] = entry;
}

void EventQueue::PopRoot() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    SiftDown(0);
  }
}

Time EventQueue::NextTime() {
  DropCancelledHead();
  assert(!heap_.empty());
  return heap_.front().at;
}

EventFn EventQueue::PopNext(Time* at) {
  DropCancelledHead();
  assert(!heap_.empty());
  const HeapEntry head = heap_.front();
  PopRoot();
  // Free the slot before running anything: a handle held by (or cancelling
  // from within) the event itself sees a bumped generation and is inert,
  // matching the old "executed" state.
  EventFn fn = std::move(slots_[head.slot].fn);
  FreeSlot(head.slot);
  if (at != nullptr) {
    *at = head.at;
  }
  return fn;
}

}  // namespace wlansim
