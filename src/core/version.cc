#include "core/version.h"

#ifndef WLANSIM_GIT_VERSION
#define WLANSIM_GIT_VERSION "unknown"
#endif
#ifndef WLANSIM_BUILD_TYPE
#define WLANSIM_BUILD_TYPE "unspecified"
#endif

namespace wlansim {

const char* BuildVersion() { return WLANSIM_GIT_VERSION; }

const char* BuildType() { return WLANSIM_BUILD_TYPE; }

std::string VersionLine(const std::string& tool) {
  return tool + " " + BuildVersion() + " (" + BuildType() + ")\n";
}

}  // namespace wlansim
