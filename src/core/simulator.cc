#include "core/simulator.h"

namespace wlansim {

void Simulator::RunUntil(Time horizon) {
  stopped_ = false;
  while (!stopped_ && !queue_.IsEmpty() && queue_.NextTime() <= horizon) {
    Time at;
    auto fn = queue_.PopNext(&at);
    now_ = at;
    ++events_executed_;
    fn();
  }
  if (now_ < horizon && horizon != Time::Max()) {
    now_ = horizon;
  }
}

}  // namespace wlansim
