// A cancellable future-event list for the discrete-event kernel.
//
// Events with equal timestamps execute in scheduling order (FIFO), which the
// MAC relies on for deterministic tie-breaking (e.g. two stations whose
// backoff counters expire in the same slot).
//
// Hot-path layout: events live in a free-listed slab of fixed-size records.
// The callable is stored in a small-buffer-optimized EventFn (heap fallback
// only for oversized closures such as per-receiver packet deliveries), so a
// typical `[this]` MAC timer schedules with zero allocations. The priority
// queue is a 4-ary heap of plain (time, seq, slot) keys — shallower than a
// binary heap and with cache-friendly 4-child sift steps — that never moves
// the callables themselves. EventId is a (slot, generation) handle:
// cancellation is O(1) tombstoning, and a stale handle whose slot was
// recycled simply sees a newer generation. Tombstones are dropped when they
// reach the heap head, and compacted in bulk whenever they outnumber live
// entries, so mass-cancel workloads cannot bloat the heap.
//
// Handles do not keep the queue alive: an EventId must not be used after
// its EventQueue is destroyed (in practice every handle owner sits inside a
// Network, which destroys nodes before the simulator).

#ifndef WLANSIM_CORE_EVENT_QUEUE_H_
#define WLANSIM_CORE_EVENT_QUEUE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/time.h"

namespace wlansim {

class EventQueue;

// Type-erased move-only nullary callable with inline small-buffer storage.
// Closures up to kInlineBytes (and nothrow-movable) are stored in place;
// larger ones fall back to a single heap allocation.
class EventFn {
 public:
  static constexpr size_t kInlineBytes = 48;

  // True when a (decayed) callable of type F is stored inline in the slab
  // record; false means every schedule of an F pays a heap allocation.
  // Exposed so EventQueue can count fallbacks and hot-path closures can
  // static_assert they fit.
  template <typename F>
  static constexpr bool kInlinable = sizeof(F) <= kInlineBytes &&
                                     alignof(F) <= alignof(std::max_align_t) &&
                                     std::is_nothrow_move_constructible_v<F>;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventFn>>>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor): callable wrapper
    using Decayed = std::decay_t<F>;
    if constexpr (kInlinable<Decayed>) {
      ::new (static_cast<void*>(storage_)) Decayed(std::forward<F>(fn));
      ops_ = &kInlineOps<Decayed>;
    } else {
      ::new (static_cast<void*>(storage_)) Decayed*(new Decayed(std::forward<F>(fn)));
      ops_ = &kHeapOps<Decayed>;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    assert(ops_ != nullptr);
    ops_->invoke(storage_);
  }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs dst's storage from src's and destroys src's.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* storage);
  };

  template <typename F>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*std::launder(reinterpret_cast<F*>(s)))(); },
      [](void* dst, void* src) {
        F* from = std::launder(reinterpret_cast<F*>(src));
        ::new (dst) F(std::move(*from));
        from->~F();
      },
      [](void* s) { std::launder(reinterpret_cast<F*>(s))->~F(); },
  };

  template <typename F>
  static constexpr Ops kHeapOps = {
      [](void* s) { (**std::launder(reinterpret_cast<F**>(s)))(); },
      [](void* dst, void* src) {
        ::new (dst) F*(*std::launder(reinterpret_cast<F**>(src)));
      },
      [](void* s) { delete *std::launder(reinterpret_cast<F**>(s)); },
  };

  void MoveFrom(EventFn& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

// Handle to a scheduled event: the owning queue plus a (slot, generation)
// pair. Copyable; all copies refer to the same event, and a handle whose
// event has executed (or whose slot was since recycled) is inert. A
// default-constructed EventId refers to no event.
class EventId {
 public:
  EventId() = default;

  // True if the event is still waiting to run (not cancelled, not executed).
  inline bool IsPending() const;

  // Cancels the event if it is still pending. Safe to call repeatedly and on
  // a default-constructed id.
  inline void Cancel();

 private:
  friend class EventQueue;

  EventId(EventQueue* queue, uint32_t slot, uint32_t generation)
      : queue_(queue), slot_(slot), generation_(generation) {}

  EventQueue* queue_ = nullptr;
  uint32_t slot_ = 0;
  uint32_t generation_ = 0;
};

class EventQueue {
 public:
  EventQueue() = default;
  ~EventQueue();
  // EventIds hold a pointer to their queue, so the queue is pinned.
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` (any nullary callable) to run at absolute time `at`.
  template <typename F>
  EventId Schedule(Time at, F&& fn) {
    if constexpr (!EventFn::kInlinable<std::decay_t<F>>) {
      ++heap_fallbacks_;
    }
    const uint32_t slot = AllocSlot();
    slots_[slot].fn = EventFn(std::forward<F>(fn));
    heap_.push_back(HeapEntry{at, next_seq_++, slot});
    SiftUp(heap_.size() - 1);
    return EventId(this, slot, slots_[slot].generation);
  }

  // True when no pending (non-cancelled) event remains.
  bool IsEmpty() const { return heap_.size() == tombstones_; }

  // Timestamp of the earliest pending event. Requires !IsEmpty().
  Time NextTime();

  // Removes the earliest pending event and returns its action. If `at` is
  // non-null it receives the event's timestamp. Requires !IsEmpty().
  EventFn PopNext(Time* at);

  // Entries currently held (including not-yet-compacted tombstones).
  size_t HeapSize() const { return heap_.size(); }

  // Cancelled entries still occupying the heap. Bounded: compaction runs as
  // soon as tombstones outnumber live entries.
  size_t TombstoneCount() const { return tombstones_; }

  // Total events ever scheduled (for engine microbenchmarks).
  uint64_t TotalScheduled() const { return next_seq_; }

  // Scheduled closures that exceeded EventFn's inline buffer and paid a
  // heap allocation. The hot-path delivery closures are sized to fit, so a
  // nonzero steady-state count is a regression signal (folded into
  // HotPathStats::event_heap_fallbacks at destruction).
  uint64_t HeapFallbacks() const { return heap_fallbacks_; }

 private:
  friend class EventId;

  static constexpr uint32_t kNoSlot = UINT32_MAX;

  // One slab record. `generation` increments every time the slot is freed,
  // invalidating outstanding handles in O(1).
  struct Slot {
    EventFn fn;
    uint32_t generation = 0;
    uint32_t next_free = kNoSlot;
    bool cancelled = false;
  };

  struct HeapEntry {
    Time at;
    uint64_t seq;  // tie-breaker: FIFO among equal timestamps
    uint32_t slot;
  };

  static bool Earlier(const HeapEntry& a, const HeapEntry& b) {
    return a.at != b.at ? a.at < b.at : a.seq < b.seq;
  }

  uint32_t AllocSlot();
  void FreeSlot(uint32_t slot);

  bool IsLive(uint32_t slot, uint32_t generation) const {
    return slot < slots_.size() && slots_[slot].generation == generation &&
           !slots_[slot].cancelled;
  }
  void CancelSlot(uint32_t slot, uint32_t generation);

  // Drops cancelled entries off the heap head so the root is live.
  void DropCancelledHead();
  // Removes every tombstone and re-heapifies; called when tombstones exceed
  // half the heap.
  void Compact();

  // 4-ary min-heap primitives over (at, seq).
  void SiftUp(size_t index);
  void SiftDown(size_t index);
  void PopRoot();

  std::vector<Slot> slots_;
  std::vector<HeapEntry> heap_;
  uint32_t free_head_ = kNoSlot;
  size_t tombstones_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t heap_fallbacks_ = 0;
};

inline bool EventId::IsPending() const {
  return queue_ != nullptr && queue_->IsLive(slot_, generation_);
}

inline void EventId::Cancel() {
  if (queue_ != nullptr) {
    queue_->CancelSlot(slot_, generation_);
  }
}

}  // namespace wlansim

#endif  // WLANSIM_CORE_EVENT_QUEUE_H_
