// A cancellable future-event list for the discrete-event kernel.
//
// Events with equal timestamps execute in scheduling order (FIFO), which the
// MAC relies on for deterministic tie-breaking (e.g. two stations whose
// backoff counters expire in the same slot). Cancellation is O(1): the heap
// entry is tombstoned and skipped when it reaches the head.

#ifndef WLANSIM_CORE_EVENT_QUEUE_H_
#define WLANSIM_CORE_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/time.h"

namespace wlansim {

// Handle to a scheduled event. Copyable; all copies refer to the same event.
// A default-constructed EventId refers to no event.
class EventId {
 public:
  EventId() = default;

  // True if the event is still waiting to run (not cancelled, not executed).
  bool IsPending() const { return state_ != nullptr && *state_ == State::kPending; }

  // Cancels the event if it is still pending. Safe to call repeatedly and on
  // a default-constructed id.
  void Cancel() {
    if (IsPending()) {
      *state_ = State::kCancelled;
    }
  }

 private:
  friend class EventQueue;
  enum class State : uint8_t { kPending, kCancelled, kExecuted };

  explicit EventId(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

class EventQueue {
 public:
  // Schedules `fn` to run at absolute time `at`.
  EventId Schedule(Time at, std::function<void()> fn);

  // True when no pending (non-cancelled) event remains.
  bool IsEmpty();

  // Timestamp of the earliest pending event. Requires !IsEmpty().
  Time NextTime();

  // Removes the earliest pending event and returns its action. If `at` is
  // non-null it receives the event's timestamp. Requires !IsEmpty().
  std::function<void()> PopNext(Time* at);

  // Entries currently held (including not-yet-purged tombstones).
  size_t HeapSize() const { return heap_.size(); }

  // Total events ever scheduled (for engine microbenchmarks).
  uint64_t TotalScheduled() const { return next_seq_; }

 private:
  struct Entry {
    Time at;
    uint64_t seq;  // tie-breaker: FIFO among equal timestamps
    std::function<void()> fn;
    std::shared_ptr<EventId::State> state;

    // std::push_heap builds a max-heap; invert so the earliest (time, seq)
    // pair wins.
    bool operator<(const Entry& other) const {
      if (at != other.at) {
        return at > other.at;
      }
      return seq > other.seq;
    }
  };

  void DropCancelledHead();

  std::vector<Entry> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace wlansim

#endif  // WLANSIM_CORE_EVENT_QUEUE_H_
