// Synthetic traffic generators, the workloads of every experiment:
//   CbrTraffic       — constant bit rate (periodic packets)
//   PoissonTraffic   — exponential inter-arrivals
//   OnOffTraffic     — bursty: exponential ON/OFF phases, CBR while ON
//   SaturatedTraffic — backlogged source keeping the MAC queue full
//                      (the saturation-throughput workload)

#ifndef WLANSIM_NET_TRAFFIC_H_
#define WLANSIM_NET_TRAFFIC_H_

#include <cstdint>

#include "core/random.h"
#include "core/simulator.h"
#include "mac/wifi_mac.h"
#include "stats/flow_stats.h"

namespace wlansim {

class TrafficGenerator {
 public:
  TrafficGenerator(Simulator* sim, WifiMac* mac, MacAddress dest, uint32_t flow_id,
                   size_t payload_bytes, FlowStats* stats)
      : sim_(sim),
        mac_(mac),
        dest_(dest),
        flow_id_(flow_id),
        payload_bytes_(payload_bytes),
        stats_(stats) {}
  virtual ~TrafficGenerator() = default;

  virtual void Start(Time at) = 0;
  void StopAt(Time at) { stop_at_ = at; }

  // Called by the node whenever the MAC finishes a transmit sequence
  // (used by SaturatedTraffic to top the queue back up).
  virtual void OnTxOpportunity() {}

  // Sets the 802.1D user priority stamped on generated packets (EDCA class).
  void SetPriority(uint8_t priority) { priority_ = priority; }

  uint32_t flow_id() const { return flow_id_; }
  uint64_t packets_sent() const { return packets_sent_; }

 protected:
  bool Stopped() const { return sim_->Now() >= stop_at_; }

  // Builds and enqueues one packet; records it in the flow stats.
  void SendOne();

  Simulator* sim_;
  WifiMac* mac_;
  MacAddress dest_;
  uint32_t flow_id_;
  size_t payload_bytes_;
  FlowStats* stats_;
  Time stop_at_ = Time::Max();
  uint8_t priority_ = 0;
  uint32_t next_seq_ = 0;
  uint64_t packets_sent_ = 0;
};

class CbrTraffic final : public TrafficGenerator {
 public:
  CbrTraffic(Simulator* sim, WifiMac* mac, MacAddress dest, uint32_t flow_id,
             size_t payload_bytes, FlowStats* stats, Time interval)
      : TrafficGenerator(sim, mac, dest, flow_id, payload_bytes, stats), interval_(interval) {}

  void Start(Time at) override;

 private:
  void Tick();
  Time interval_;
};

class PoissonTraffic final : public TrafficGenerator {
 public:
  PoissonTraffic(Simulator* sim, WifiMac* mac, MacAddress dest, uint32_t flow_id,
                 size_t payload_bytes, FlowStats* stats, double packets_per_second, Rng rng)
      : TrafficGenerator(sim, mac, dest, flow_id, payload_bytes, stats),
        mean_interval_(Time::Seconds(1.0 / packets_per_second)),
        rng_(rng) {}

  void Start(Time at) override;

 private:
  void Tick();
  Time mean_interval_;
  Rng rng_;
};

class OnOffTraffic final : public TrafficGenerator {
 public:
  OnOffTraffic(Simulator* sim, WifiMac* mac, MacAddress dest, uint32_t flow_id,
               size_t payload_bytes, FlowStats* stats, Time packet_interval, Time mean_on,
               Time mean_off, Rng rng)
      : TrafficGenerator(sim, mac, dest, flow_id, payload_bytes, stats),
        packet_interval_(packet_interval),
        mean_on_(mean_on),
        mean_off_(mean_off),
        rng_(rng) {}

  void Start(Time at) override;

 private:
  void BeginOn();
  void Tick();
  Time packet_interval_;
  Time mean_on_;
  Time mean_off_;
  Time on_until_;
  Rng rng_;
};

class SaturatedTraffic final : public TrafficGenerator {
 public:
  SaturatedTraffic(Simulator* sim, WifiMac* mac, MacAddress dest, uint32_t flow_id,
                   size_t payload_bytes, FlowStats* stats, size_t queue_target = 4)
      : TrafficGenerator(sim, mac, dest, flow_id, payload_bytes, stats),
        queue_target_(queue_target) {}

  void Start(Time at) override;
  void OnTxOpportunity() override { TopUp(); }

 private:
  void TopUp();
  size_t queue_target_;
  bool started_ = false;
};

}  // namespace wlansim

#endif  // WLANSIM_NET_TRAFFIC_H_
