// Non-WiFi RadioDevice implementations for heterogeneous coexistence
// scenarios: an 802.15.4-style narrowband sensor radio and a duty-cycled
// LoRa-like interferer. Both talk to the medium exclusively through the
// radio-ops seam (phy/radio_device.h) — no WifiPhy anywhere — which is the
// point: a new radio technology is this file plus a builder registration.
//
// Fidelity level: these model the coexistence-relevant behaviour (airtime,
// power, CSMA deferral, SINR-gated delivery), not the full protocol stacks.
// The sensor radio is one-hop unacknowledged reporting — 802.15.4
// unslotted CSMA/CA with the standard's timing constants, no MAC retries.
// The LoRa-like device is transmit-only: real LoRa demodulates below the
// noise floor of anything here, so within this simulator its only role is
// the long-airtime narrowband duty cycle it imposes on the band.

#ifndef WLANSIM_NET_RADIOS_H_
#define WLANSIM_NET_RADIOS_H_

#include <optional>

#include "core/packet.h"
#include "core/random.h"
#include "core/simulator.h"
#include "phy/channel.h"
#include "phy/interference.h"
#include "phy/mobility.h"
#include "phy/radio_device.h"

namespace wlansim {

// O-QPSK 250 kb/s narrowband sensor radio, in the 802.15.4 mould: periodic
// fixed-size reports, unslotted CSMA/CA (energy detect, random backoff, a
// bounded number of attempts), and SINR-gated reception at every listening
// sensor. A sensor is both transmitter and receiver; scenarios typically
// point a cluster of reporters at one silent sink.
class SensorRadio : public RadioDevice {
 public:
  struct Config {
    Vector3 position{};
    double tx_power_dbm = 0.0;           // typical 802.15.4 output
    double rx_sensitivity_dbm = -85.0;   // standard's minimum receiver sensitivity
    double cca_threshold_dbm = -75.0;    // energy-detect (sensitivity + 10 dB)
    double sinr_threshold_db = 2.0;      // payload survives above this mean SINR
    double noise_figure_db = 10.0;
    uint8_t channel_number = 1;
    size_t report_bytes = 32;            // MAC payload per report
    uint8_t max_csma_backoffs = 4;       // macMaxCSMABackoffs
  };

  SensorRadio(Simulator* sim, Channel* channel, uint32_t node_id, const Config& config);

  // Begins periodic reporting at `start` (plus a small per-node random
  // phase), one report every `interval`. A sensor that never starts
  // reporting is a pure sink.
  void StartReporting(Time start, Time interval);

  struct Counters {
    uint64_t reports_sent = 0;       // frames that made it onto the air
    uint64_t csma_deferrals = 0;     // backoffs taken before an attempt
    uint64_t csma_drops = 0;         // reports abandoned after max backoffs
    uint64_t rx_ok = 0;              // frames received above the SINR gate
    uint64_t rx_lost_sinr = 0;       // locked but degraded below the gate
    uint64_t rx_dropped_busy = 0;    // arrived while transmitting or locked
    uint64_t rx_below_sensitivity = 0;
  };
  const Counters& counters() const { return counters_; }

  // RadioDevice ops.
  RadioCapabilities capabilities() const override;
  uint8_t channel_number() const override { return config_.channel_number; }
  MobilityModel* mobility() const override { return &mobility_; }
  uint32_t node_id() const override { return node_id_; }
  void Deliver(Packet packet, const SignalParams& signal, double rx_power_dbm) override;

  // Airtime of an 802.15.4 frame carrying `payload_bytes`: 6-byte
  // SHR + PHR (192 us) plus the payload at 250 kb/s.
  static Time FrameAirtime(size_t payload_bytes);

 private:
  void AttemptReport(uint8_t backoffs_used);
  void EndReception();

  Simulator* sim_;
  Config config_;
  uint32_t node_id_;
  mutable ConstantPositionMobility mobility_;
  Rng rng_;
  InterferenceTracker interference_;
  double noise_w_;
  Time report_interval_;
  Time tx_until_;  // half-duplex: deaf to frames while on the air

  struct Reception {
    uint64_t signal_id;
    Time start;
    Time end;
  };
  std::optional<Reception> current_rx_;

  Counters counters_;
};

// Duty-cycled LoRa-like narrowband interferer: long fixed airtimes (chirp
// frames are 100x an 802.11 frame) at a configured duty cycle, transmit
// only. Everyone else on the channel sees each chirp as opaque energy for
// its full airtime — the coexistence pain is the duty cycle itself.
class LoraInterferer : public RadioDevice {
 public:
  struct Config {
    Vector3 position{};
    double tx_power_dbm = 14.0;         // typical LoRa output
    uint8_t channel_number = 1;
    Time airtime = Time::Millis(60);    // one chirp frame on the air
    double duty_pct = 1.0;              // on-air share; period = airtime / duty
  };

  LoraInterferer(Simulator* sim, Channel* channel, uint32_t node_id, const Config& config);

  // Starts chirping at `at` plus a per-node random phase inside one period.
  void Start(Time at);
  void Stop(Time at) { stop_at_ = at; }

  uint64_t chirps_emitted() const { return chirps_; }
  Time Period() const;

  // RadioDevice ops (transmit-only: can_receive = false, Deliver is never
  // called).
  RadioCapabilities capabilities() const override;
  uint8_t channel_number() const override { return config_.channel_number; }
  MobilityModel* mobility() const override { return &mobility_; }
  uint32_t node_id() const override { return node_id_; }
  void Deliver(Packet packet, const SignalParams& signal, double rx_power_dbm) override;

 private:
  void EmitChirp();

  Simulator* sim_;
  Config config_;
  uint32_t node_id_;
  mutable ConstantPositionMobility mobility_;
  Rng rng_;
  Time stop_at_ = Time::Max();
  uint64_t chirps_ = 0;
};

}  // namespace wlansim

#endif  // WLANSIM_NET_RADIOS_H_
