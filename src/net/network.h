// Scenario assembly: a Network owns the simulator, the radio channel, every
// node and the shared flow statistics — the one-stop public API used by the
// examples and benchmarks.
//
//   Network net(Network::Params{.seed = 42});
//   net.UseLogDistanceLoss(3.0);
//   Node* ap  = net.AddNode({.role = MacRole::kAp,  .standard = PhyStandard::k80211g});
//   Node* sta = net.AddNode({.role = MacRole::kSta, .standard = PhyStandard::k80211g,
//                            .position = {20, 0, 0}});
//   net.StartAll();
//   auto* app = sta->AddTraffic<SaturatedTraffic>(ap->address(), /*flow=*/1, 1500);
//   app->Start(Time::Seconds(1));
//   net.Run(Time::Seconds(11));
//   double mbps = net.flow_stats().GoodputMbps(1);

#ifndef WLANSIM_NET_NETWORK_H_
#define WLANSIM_NET_NETWORK_H_

#include <memory>
#include <vector>

#include "core/random.h"
#include "core/simulator.h"
#include "net/node.h"
#include "phy/channel.h"
#include "stats/flow_stats.h"

namespace wlansim {

class Network {
 public:
  struct Params {
    uint64_t seed = 1;
  };

  Network() : Network(Params{}) {}
  explicit Network(Params params);

  // Channel configuration — call one loss-model setter before AddNode.
  void UseFreeSpaceLoss();
  void UseLogDistanceLoss(double exponent, double shadowing_sigma_db = 0.0);
  // Returns the matrix for explicit per-link loss topologies.
  MatrixLossModel* UseMatrixLoss(double default_loss_db = 200.0);
  void UseRayleighFading();
  void UseNakagamiFading(double m);

  // Channel reception cutoff and spatial receiver index (see Channel).
  // These create the channel on demand, so pick the loss/fading models
  // first; after that they may be called at any point, even mid-run.
  void SetRxCutoffDbm(double dbm);
  void EnableSpatialIndex(bool on = true);

  Node* AddNode(const Node::Config& config);

  // Calls WifiMac::Start() on every node (APs beacon, STAs scan).
  void StartAll();

  // Runs the simulation until the given absolute time.
  void Run(Time until) { sim_.RunUntil(until); }

  Simulator& sim() { return sim_; }
  Channel& channel() { return *channel_; }
  FlowStats& flow_stats() { return flow_stats_; }
  const std::vector<std::unique_ptr<Node>>& nodes() const { return nodes_; }
  Rng ForkRng(std::string_view stream) const { return rng_.Fork(stream); }

 private:
  void EnsureChannel();

  Simulator sim_;
  Rng rng_;
  std::unique_ptr<Channel> channel_;
  FlowStats flow_stats_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<PropagationLossModel> pending_loss_;
  std::unique_ptr<FadingModel> pending_fading_;
};

}  // namespace wlansim

#endif  // WLANSIM_NET_NETWORK_H_
