#include "net/traffic.h"

namespace wlansim {

void TrafficGenerator::SendOne() {
  Packet packet(payload_bytes_);
  packet.meta().flow_id = flow_id_;
  packet.meta().app_seq = next_seq_++;
  packet.meta().created = sim_->Now();
  if (stats_ != nullptr) {
    stats_->RecordSent(flow_id_, payload_bytes_, sim_->Now());
  }
  ++packets_sent_;
  mac_->Enqueue(std::move(packet), dest_, priority_);
}

void CbrTraffic::Start(Time at) {
  sim_->ScheduleAt(at, [this] { Tick(); });
}

void CbrTraffic::Tick() {
  if (Stopped()) {
    return;
  }
  SendOne();
  sim_->Schedule(interval_, [this] { Tick(); });
}

void PoissonTraffic::Start(Time at) {
  sim_->ScheduleAt(at, [this] { Tick(); });
}

void PoissonTraffic::Tick() {
  if (Stopped()) {
    return;
  }
  SendOne();
  const Time gap = Time::Seconds(rng_.Exponential(mean_interval_.seconds()));
  sim_->Schedule(gap, [this] { Tick(); });
}

void OnOffTraffic::Start(Time at) {
  sim_->ScheduleAt(at, [this] { BeginOn(); });
}

void OnOffTraffic::BeginOn() {
  if (Stopped()) {
    return;
  }
  on_until_ = sim_->Now() + Time::Seconds(rng_.Exponential(mean_on_.seconds()));
  Tick();
}

void OnOffTraffic::Tick() {
  if (Stopped()) {
    return;
  }
  if (sim_->Now() >= on_until_) {
    const Time off = Time::Seconds(rng_.Exponential(mean_off_.seconds()));
    sim_->Schedule(off, [this] { BeginOn(); });
    return;
  }
  SendOne();
  sim_->Schedule(packet_interval_, [this] { Tick(); });
}

void SaturatedTraffic::Start(Time at) {
  sim_->ScheduleAt(at, [this] {
    started_ = true;
    TopUp();
  });
}

void SaturatedTraffic::TopUp() {
  if (!started_ || Stopped()) {
    return;
  }
  while (mac_->QueueSizeForPriority(priority_) < queue_target_) {
    SendOne();
  }
}

}  // namespace wlansim
