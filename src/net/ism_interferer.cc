#include "net/ism_interferer.h"

namespace wlansim {
namespace {

WifiPhy::Config OvenPhyConfig(const MicrowaveOven::Config& config) {
  WifiPhy::Config phy;
  phy.standard = PhyStandard::k80211b;  // 2.4 GHz band timing/frequency
  phy.tx_power_dbm = config.tx_power_dbm;
  phy.channel_number = config.channel_number;
  phy.transmissions_undecodable = true;
  return phy;
}

// Burst length is set by sending a "frame" whose airtime equals on_time at
// 1 Mb/s: bytes = on_time * 1 Mb/s / 8 minus the 192 us PLCP.
size_t BurstBytes(Time on_time) {
  const double payload_us = on_time.micros() - 192.0;
  return payload_us > 0 ? static_cast<size_t>(payload_us / 8.0) : 1;
}

}  // namespace

MicrowaveOven::MicrowaveOven(Simulator* sim, Channel* channel, uint32_t node_id,
                             const Config& config)
    : sim_(sim),
      config_(config),
      mobility_(config.position),
      phy_(sim, OvenPhyConfig(config), Rng(node_id * 7919 + 13)) {
  phy_.AttachChannel(channel, node_id, &mobility_);
}

void MicrowaveOven::Start(Time at) {
  sim_->ScheduleAt(at, [this] { EmitBurst(); });
}

void MicrowaveOven::EmitBurst() {
  if (sim_->Now() >= stop_at_) {
    return;
  }
  ++bursts_;
  Packet burst(BurstBytes(config_.on_time));
  phy_.StartTx(std::move(burst), BaseModeFor(PhyStandard::k80211b));
  sim_->Schedule(config_.on_time + config_.off_time, [this] { EmitBurst(); });
}

}  // namespace wlansim
