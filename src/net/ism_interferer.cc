#include "net/ism_interferer.h"

namespace wlansim {
namespace {

// Burst length mirrors the pre-seam implementation, which sent a "frame"
// whose airtime equals on_time at 1 Mb/s: bytes = on_time * 1 Mb/s / 8
// minus the 192 us PLCP. Keeping the arithmetic keeps burst airtimes (and
// therefore every ism_interference output) identical.
size_t BurstBytes(Time on_time) {
  const double payload_us = on_time.micros() - 192.0;
  return payload_us > 0 ? static_cast<size_t>(payload_us / 8.0) : 1;
}

}  // namespace

MicrowaveOven::MicrowaveOven(Simulator* sim, Channel* channel, uint32_t node_id,
                             const Config& config)
    : sim_(sim), config_(config), node_id_(node_id), mobility_(config.position) {
  channel->Attach(this);
}

RadioCapabilities MicrowaveOven::capabilities() const {
  RadioCapabilities caps;
  caps.technology = "microwave-oven";
  caps.protocol = RadioProtocol::kNoise;
  caps.tx_power_dbm = config_.tx_power_dbm;
  caps.frequency_hz = 2.412e9;  // 2.4 GHz ISM band, as the old WifiPhy reported
  caps.can_receive = false;
  return caps;
}

void MicrowaveOven::Deliver(Packet, const SignalParams&, double) {
  // Unreachable: can_receive = false means the channel never offers to us.
}

void MicrowaveOven::Start(Time at) {
  sim_->ScheduleAt(at, [this] { EmitBurst(); });
}

void MicrowaveOven::EmitBurst() {
  if (sim_->Now() >= stop_at_) {
    return;
  }
  ++bursts_;
  // Construct the burst packet exactly as before so the global packet uid
  // sequence — shared with the WiFi nodes — is unchanged by the port.
  Packet burst(BurstBytes(config_.on_time));
  SignalParams sig;
  sig.mode = BaseModeFor(PhyStandard::k80211b);
  sig.decodable = false;
  sig.protocol = RadioProtocol::kNoise;
  sig.duration = FrameDuration(sig.mode, burst.size(), /*short_preamble=*/false);
  channel()->Send(this, burst, sig);
  sim_->Schedule(config_.on_time + config_.off_time, [this] { EmitBurst(); });
}

}  // namespace wlansim
