// A simulated wireless node: mobility + PHY + MAC + rate controller +
// applications, wired together.

#ifndef WLANSIM_NET_NODE_H_
#define WLANSIM_NET_NODE_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/simulator.h"
#include "mac/wifi_mac.h"
#include "net/traffic.h"
#include "phy/channel.h"
#include "phy/mobility.h"
#include "phy/wifi_phy.h"
#include "rate/rate_controller.h"
#include "stats/flow_stats.h"

namespace wlansim {

class Node {
 public:
  struct Config {
    MacRole role = MacRole::kAdhoc;
    PhyStandard standard = PhyStandard::k80211b;
    std::string ssid = "wlansim";
    Vector3 position{};
    uint8_t channel = 1;
    // Optional fine-tuning hooks applied after defaults are filled in.
    std::function<void(WifiPhy::Config&)> phy_tweak = nullptr;
    std::function<void(WifiMac::Config&)> mac_tweak = nullptr;
  };

  Node(Simulator* sim, Channel* channel, uint32_t id, const Config& config, Rng rng,
       FlowStats* stats);

  uint32_t id() const { return id_; }
  MacAddress address() const { return mac_->address(); }
  WifiPhy& phy() { return *phy_; }
  WifiMac& mac() { return *mac_; }
  MobilityModel* mobility() { return mobility_.get(); }
  FlowStats* stats() { return stats_; }

  // Replaces the mobility model (default: constant position from config).
  void SetMobility(std::unique_ptr<MobilityModel> mobility);

  // Installs a rate controller (owned by the node).
  void SetRateController(std::unique_ptr<RateController> rate);
  RateController* rate_controller() { return rate_.get(); }

  // Adds a traffic source (owned). Start it via the returned pointer.
  template <typename T, typename... Args>
  T* AddTraffic(MacAddress dest, uint32_t flow_id, size_t payload_bytes, Args&&... args) {
    auto app = std::make_unique<T>(sim_, mac_.get(), dest, flow_id, payload_bytes, stats_,
                                   std::forward<Args>(args)...);
    T* raw = app.get();
    apps_.push_back(std::move(app));
    return raw;
  }

  // Packets delivered to this node (sink role) are recorded in `stats`;
  // an additional user callback can observe them.
  using RxCallback = std::function<void(const Packet&, MacAddress src, MacAddress dest)>;
  void SetRxCallback(RxCallback cb) { rx_cb_ = std::move(cb); }

  uint64_t packets_received() const { return packets_received_; }
  uint64_t bytes_received() const { return bytes_received_; }

 private:
  void OnForwardUp(Packet packet, MacAddress src, MacAddress dest);

  Simulator* sim_;
  uint32_t id_;
  FlowStats* stats_;
  std::unique_ptr<MobilityModel> mobility_;
  std::unique_ptr<WifiPhy> phy_;
  std::unique_ptr<WifiMac> mac_;
  std::unique_ptr<RateController> rate_;
  std::vector<std::unique_ptr<TrafficGenerator>> apps_;
  RxCallback rx_cb_;
  uint64_t packets_received_ = 0;
  uint64_t bytes_received_ = 0;
};

}  // namespace wlansim

#endif  // WLANSIM_NET_NODE_H_
