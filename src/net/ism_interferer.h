// Non-802.11 ISM-band interference sources.
//
// The survey's installation-problems section calls out "other sources of
// radio signals" in the 2.4 GHz band — microwave ovens foremost. A microwave
// oven radiates a strong, wideband-ish burst locked to the mains half-cycle:
// roughly 50 % duty at 50/60 Hz (8-10 ms on, 8-10 ms off) while the
// magnetron runs. This module emits such bursts through the normal channel
// as undecodable energy, so CCA defers and overlapping receptions degrade
// exactly as with any interference.
//
// The oven is a transmit-only RadioDevice (protocol kNoise,
// can_receive = false): the channel never offers arrivals to it, so a
// cooking oven costs one Send per burst and nothing else. Before the radio
// seam it carried a full WifiPhy just to reach Channel::Send.

#ifndef WLANSIM_NET_ISM_INTERFERER_H_
#define WLANSIM_NET_ISM_INTERFERER_H_

#include "core/simulator.h"
#include "phy/channel.h"
#include "phy/mobility.h"
#include "phy/radio_device.h"

namespace wlansim {

class MicrowaveOven : public RadioDevice {
 public:
  struct Config {
    Vector3 position{};
    double tx_power_dbm = 20.0;   // leakage power seen in-band
    Time on_time = Time::Millis(8);   // magnetron on per mains half-cycle
    Time off_time = Time::Millis(12); // (50 Hz mains: 20 ms period)
    uint8_t channel_number = 1;
  };

  MicrowaveOven(Simulator* sim, Channel* channel, uint32_t node_id, const Config& config);

  // Starts/stops the cooking cycle.
  void Start(Time at);
  void Stop(Time at) { stop_at_ = at; }

  uint64_t bursts_emitted() const { return bursts_; }

  // RadioDevice ops.
  RadioCapabilities capabilities() const override;
  uint8_t channel_number() const override { return config_.channel_number; }
  MobilityModel* mobility() const override { return &mobility_; }
  uint32_t node_id() const override { return node_id_; }
  void Deliver(Packet packet, const SignalParams& signal, double rx_power_dbm) override;

 private:
  void EmitBurst();

  Simulator* sim_;
  Config config_;
  uint32_t node_id_;
  mutable ConstantPositionMobility mobility_;
  Time stop_at_ = Time::Max();
  uint64_t bursts_ = 0;
};

}  // namespace wlansim

#endif  // WLANSIM_NET_ISM_INTERFERER_H_
