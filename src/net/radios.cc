#include "net/radios.h"

#include <cmath>

#include "core/units.h"

namespace wlansim {
namespace {

// 802.15.4 O-QPSK PHY constants (2.4 GHz band).
constexpr double kSensorBitRate = 250e3;
constexpr double kSensorChannelWidthHz = 2e6;
// aUnitBackoffPeriod = 20 symbols at 62.5 ksym/s.
const Time kUnitBackoff = Time::Micros(320);

}  // namespace

// ---------------------------------------------------------------------------
// SensorRadio

SensorRadio::SensorRadio(Simulator* sim, Channel* channel, uint32_t node_id,
                         const Config& config)
    : sim_(sim),
      config_(config),
      node_id_(node_id),
      mobility_(config.position),
      rng_(node_id * 7919 + 211),
      noise_w_(ThermalNoiseW(kSensorChannelWidthHz, config.noise_figure_db)) {
  channel->Attach(this);
}

Time SensorRadio::FrameAirtime(size_t payload_bytes) {
  // SHR (4-byte preamble + 1-byte SFD) + 1-byte PHR = 6 bytes of overhead,
  // all at the base rate: 192 us + payload.
  const double payload_us = static_cast<double>(payload_bytes) * 8.0 / kSensorBitRate * 1e6;
  return Time::Micros(192 + static_cast<int64_t>(payload_us));
}

RadioCapabilities SensorRadio::capabilities() const {
  RadioCapabilities caps;
  caps.technology = "sensor-802154";
  caps.protocol = RadioProtocol::kIeee802154;
  caps.tx_power_dbm = config_.tx_power_dbm;
  caps.frequency_hz = 2.412e9;  // 2.4 GHz ISM band, shared with the WiFi BSS
  caps.rx_sensitivity_dbm = config_.rx_sensitivity_dbm;
  caps.can_receive = true;
  return caps;
}

void SensorRadio::StartReporting(Time start, Time interval) {
  report_interval_ = interval;
  // Random phase inside one interval de-synchronizes a cluster of sensors
  // booted at the same instant.
  const Time phase = Time::Micros(
      static_cast<int64_t>(rng_.Uniform(0.0, static_cast<double>(interval.micros()))));
  sim_->ScheduleAt(start + phase, [this] { AttemptReport(0); });
}

void SensorRadio::AttemptReport(uint8_t backoffs_used) {
  const Time now = sim_->Now();
  const double busy_w = interference_.TotalPowerW(now);
  if (busy_w >= DbmToW(config_.cca_threshold_dbm) || now < tx_until_ ||
      current_rx_.has_value()) {
    if (backoffs_used >= config_.max_csma_backoffs) {
      ++counters_.csma_drops;
      sim_->Schedule(report_interval_, [this] { AttemptReport(0); });
      return;
    }
    // Unslotted CSMA/CA: random backoff in [0, 2^BE - 1] unit periods,
    // BE growing from 3 toward 5.
    ++counters_.csma_deferrals;
    const int be = std::min(3 + backoffs_used, 5);
    const int slots = static_cast<int>(rng_.Uniform(0.0, static_cast<double>(1 << be)));
    sim_->Schedule(kUnitBackoff * (slots + 1),
                   [this, next = static_cast<uint8_t>(backoffs_used + 1)] {
                     AttemptReport(next);
                   });
    return;
  }

  ++counters_.reports_sent;
  Packet report(config_.report_bytes);
  SignalParams sig;
  sig.protocol = RadioProtocol::kIeee802154;
  sig.decodable = true;
  sig.duration = FrameAirtime(report.size());
  tx_until_ = now + sig.duration;
  channel()->Send(this, report, sig);
  sim_->Schedule(report_interval_, [this] { AttemptReport(0); });
}

void SensorRadio::Deliver(Packet, const SignalParams& signal, double rx_power_dbm) {
  const Time now = sim_->Now();
  // Every arrival is energy first — foreign-protocol signals (WiFi frames,
  // LoRa chirps, oven bursts) degrade in-flight receptions and hold CCA
  // busy exactly like a co-technology frame would.
  const uint64_t signal_id =
      interference_.AddSignal(now, now + signal.duration, DbmToW(rx_power_dbm));
  if (signal.protocol != RadioProtocol::kIeee802154 || !signal.decodable) {
    return;
  }
  if (rx_power_dbm < config_.rx_sensitivity_dbm) {
    ++counters_.rx_below_sensitivity;
    return;
  }
  if (now < tx_until_ || current_rx_.has_value()) {
    ++counters_.rx_dropped_busy;
    return;
  }
  current_rx_ = Reception{signal_id, now, now + signal.duration};
  interference_.PinSignal(signal_id);
  sim_->Schedule(signal.duration, [this] { EndReception(); });
}

void SensorRadio::EndReception() {
  Reception rx = *current_rx_;
  current_rx_.reset();

  // SINR over the whole frame; the plan's modes are irrelevant to MeanSinr
  // (SINR is modulation-independent), only the window and noise matter.
  InterferenceTracker::ReceptionPlan plan;
  plan.signal_id = rx.signal_id;
  plan.start = rx.start;
  plan.payload_start = rx.start;
  plan.end = rx.end;
  plan.header_mode = BaseModeFor(PhyStandard::k80211b);
  plan.payload_mode = plan.header_mode;
  plan.header_bits = 0;
  plan.payload_bits = 8 * config_.report_bytes;
  plan.noise_w = noise_w_;
  const double sinr = interference_.MeanSinr(plan);
  interference_.UnpinSignal();

  if (RatioToDb(sinr) >= config_.sinr_threshold_db) {
    ++counters_.rx_ok;
  } else {
    ++counters_.rx_lost_sinr;
  }
}

// ---------------------------------------------------------------------------
// LoraInterferer

LoraInterferer::LoraInterferer(Simulator* sim, Channel* channel, uint32_t node_id,
                               const Config& config)
    : sim_(sim),
      config_(config),
      node_id_(node_id),
      mobility_(config.position),
      rng_(node_id * 7919 + 401) {
  channel->Attach(this);
}

Time LoraInterferer::Period() const {
  const double duty = std::max(config_.duty_pct, 0.01) / 100.0;
  return Time::Micros(static_cast<int64_t>(config_.airtime.micros() / duty));
}

RadioCapabilities LoraInterferer::capabilities() const {
  RadioCapabilities caps;
  caps.technology = "lora";
  caps.protocol = RadioProtocol::kLora;
  caps.tx_power_dbm = config_.tx_power_dbm;
  caps.frequency_hz = 2.412e9;  // 2.4 GHz LoRa (SX128x family)
  caps.can_receive = false;
  return caps;
}

void LoraInterferer::Deliver(Packet, const SignalParams&, double) {
  // Unreachable: can_receive = false means the channel never offers to us.
}

void LoraInterferer::Start(Time at) {
  const Time phase = Time::Micros(
      static_cast<int64_t>(rng_.Uniform(0.0, static_cast<double>(Period().micros()))));
  sim_->ScheduleAt(at + phase, [this] { EmitChirp(); });
}

void LoraInterferer::EmitChirp() {
  if (sim_->Now() >= stop_at_) {
    return;
  }
  ++chirps_;
  // Chirp payload size is cosmetic (nothing here demodulates LoRa); the
  // airtime is the authoritative on-air description.
  Packet chirp(32);
  SignalParams sig;
  sig.protocol = RadioProtocol::kLora;
  sig.decodable = true;
  sig.duration = config_.airtime;
  channel()->Send(this, chirp, sig);
  sim_->Schedule(Period(), [this] { EmitChirp(); });
}

}  // namespace wlansim
