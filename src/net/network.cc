#include "net/network.h"

#include <cassert>

namespace wlansim {

Network::Network(Params params) : rng_(params.seed) {}

void Network::UseFreeSpaceLoss() {
  assert(channel_ == nullptr && "configure the loss model before adding nodes");
  pending_loss_ = std::make_unique<FreeSpaceLossModel>();
}

void Network::UseLogDistanceLoss(double exponent, double shadowing_sigma_db) {
  assert(channel_ == nullptr && "configure the loss model before adding nodes");
  pending_loss_ = std::make_unique<LogDistanceLossModel>(exponent, shadowing_sigma_db,
                                                         rng_.Fork("shadowing").NextU64());
}

MatrixLossModel* Network::UseMatrixLoss(double default_loss_db) {
  assert(channel_ == nullptr && "configure the loss model before adding nodes");
  auto model = std::make_unique<MatrixLossModel>(default_loss_db);
  MatrixLossModel* raw = model.get();
  pending_loss_ = std::move(model);
  return raw;
}

void Network::UseRayleighFading() {
  assert(channel_ == nullptr && "configure fading before adding nodes");
  pending_fading_ = std::make_unique<RayleighFading>();
}

void Network::UseNakagamiFading(double m) {
  assert(channel_ == nullptr && "configure fading before adding nodes");
  pending_fading_ = std::make_unique<NakagamiFading>(m);
}

void Network::SetRxCutoffDbm(double dbm) {
  EnsureChannel();
  channel_->SetRxCutoffDbm(dbm);
}

void Network::EnableSpatialIndex(bool on) {
  EnsureChannel();
  channel_->EnableSpatialIndex(on);
}

void Network::EnsureChannel() {
  if (channel_ != nullptr) {
    return;
  }
  if (pending_loss_ == nullptr) {
    pending_loss_ = std::make_unique<LogDistanceLossModel>(3.0);
  }
  channel_ = std::make_unique<Channel>(&sim_, std::move(pending_loss_), rng_.Fork("channel"));
  if (pending_fading_ != nullptr) {
    channel_->SetFading(std::move(pending_fading_));
  }
}

Node* Network::AddNode(const Node::Config& config) {
  EnsureChannel();
  const auto id = static_cast<uint32_t>(nodes_.size());
  auto node = std::make_unique<Node>(&sim_, channel_.get(), id, config,
                                     rng_.Fork("node" + std::to_string(id)), &flow_stats_);
  Node* raw = node.get();
  nodes_.push_back(std::move(node));
  return raw;
}

void Network::StartAll() {
  for (auto& node : nodes_) {
    node->mac().Start();
  }
}

}  // namespace wlansim
