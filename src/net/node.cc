#include "net/node.h"

namespace wlansim {

Node::Node(Simulator* sim, Channel* channel, uint32_t id, const Config& config, Rng rng,
           FlowStats* stats)
    : sim_(sim), id_(id), stats_(stats) {
  mobility_ = std::make_unique<ConstantPositionMobility>(config.position);

  WifiPhy::Config phy_config;
  phy_config.standard = config.standard;
  phy_config.channel_number = config.channel;
  if (config.phy_tweak) {
    config.phy_tweak(phy_config);
  }
  phy_ = std::make_unique<WifiPhy>(sim, phy_config, rng.Fork("phy"));
  phy_->AttachChannel(channel, id, mobility_.get());

  WifiMac::Config mac_config;
  mac_config.role = config.role;
  mac_config.address = MacAddress::FromId(id + 1);
  mac_config.ssid = config.ssid;
  mac_config.scan_channels = {config.channel};
  if (config.mac_tweak) {
    config.mac_tweak(mac_config);
  }
  mac_ = std::make_unique<WifiMac>(sim, phy_.get(), mac_config, rng.Fork("mac"));
  mac_->SetForwardUpCallback([this](Packet packet, MacAddress src, MacAddress dest) {
    OnForwardUp(std::move(packet), src, dest);
  });
  mac_->SetTxDoneCallback([this] {
    for (auto& app : apps_) {
      app->OnTxOpportunity();
    }
  });
}

void Node::SetMobility(std::unique_ptr<MobilityModel> mobility) {
  mobility_ = std::move(mobility);
  phy_->SetMobility(mobility_.get());
}

void Node::SetRateController(std::unique_ptr<RateController> rate) {
  rate_ = std::move(rate);
  mac_->SetRateController(rate_.get());
}

void Node::OnForwardUp(Packet packet, MacAddress src, MacAddress dest) {
  ++packets_received_;
  bytes_received_ += packet.size();
  if (stats_ != nullptr) {
    stats_->RecordReceived(packet, sim_->Now());
  }
  if (rx_cb_) {
    rx_cb_(packet, src, dest);
  }
}

}  // namespace wlansim
