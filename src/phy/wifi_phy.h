// Half-duplex 802.11 PHY state machine.
//
// States: IDLE, CCA_BUSY (energy above threshold but no decodable frame),
// RX (locked onto a preamble), TX. The PHY reports state transitions to a
// listener (the MAC's channel-access manager) and delivers decoded frames —
// with a success flag from the interference/error model — to a receive
// callback. Preamble capture: a new frame arriving during the preamble of
// the current one steals the receiver if its SINR exceeds the capture
// margin.

#ifndef WLANSIM_PHY_WIFI_PHY_H_
#define WLANSIM_PHY_WIFI_PHY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "core/packet.h"
#include "core/random.h"
#include "core/simulator.h"
#include "phy/error_model.h"
#include "phy/interference.h"
#include "phy/mobility.h"
#include "phy/radio_device.h"
#include "phy/wifi_mode.h"

namespace wlansim {

class Channel;

// MAC-side observer of medium state. Durations are best-effort previews;
// the matching end notification is authoritative.
class PhyListener {
 public:
  virtual ~PhyListener() = default;
  virtual void NotifyRxStart(Time duration) = 0;
  virtual void NotifyRxEnd(bool success) = 0;
  virtual void NotifyTxStart(Time duration) = 0;
  virtual void NotifyCcaBusyStart(Time duration) = 0;
};

// Reception metadata handed to the MAC with each frame.
struct RxInfo {
  double rssi_dbm = 0.0;
  double sinr = 0.0;  // linear, payload average
  WifiMode mode = BaseModeFor(PhyStandard::k80211b);
  bool success = false;  // frame passed the PHY error model
};

// The reference RadioDevice implementation. The RadioDevice ops face the
// channel; everything else (listener, receive callback, sleep, state
// machine) is the MAC-facing API, unchanged by the radio seam.
class WifiPhy : public RadioDevice {
 public:
  struct Config {
    PhyStandard standard = PhyStandard::k80211b;
    double tx_power_dbm = 16.0;
    double noise_figure_db = 7.0;
    // Signals below this never lock the receiver (preamble detection).
    double preamble_detect_dbm = -95.0;
    // Energy-detect CCA threshold for non-decodable energy.
    double ed_threshold_dbm = -62.0;
    // SINR (dB) a newcomer needs over the in-progress frame to capture the
    // receiver during the preamble.
    double capture_margin_db = 10.0;
    uint8_t channel_number = 1;
    bool short_preamble = false;
    // Models a non-802.11 ISM-band device (microwave oven, analog video
    // sender): its emissions are pure energy at every receiver.
    bool transmissions_undecodable = false;
  };

  WifiPhy(Simulator* sim, Config config, Rng rng);

  // Wiring.
  void AttachChannel(Channel* channel, uint32_t node_id, MobilityModel* mobility);
  // Swaps the mobility model instance (Node::SetMobility). The channel is
  // notified so position-derived state (spatial index) tracks the new model.
  void SetMobility(MobilityModel* mobility);
  void SetListener(PhyListener* listener) { listener_ = listener; }
  using ReceiveCallback = std::function<void(Packet, const RxInfo&)>;
  void SetReceiveCallback(ReceiveCallback cb) { receive_cb_ = std::move(cb); }

  enum class State : uint8_t { kIdle, kCcaBusy, kRx, kTx, kSleep };
  State state() const { return state_; }

  // True when the medium is idle for MAC contention purposes (no RX/TX and
  // energy below the ED threshold).
  bool IsIdle() const { return state_ == State::kIdle; }

  // Starts transmitting `packet` at `mode`. The MAC must have won access;
  // transmitting while receiving aborts the reception (transmit overrides).
  void StartTx(Packet packet, const WifiMode& mode);

  // Called by the channel when a signal arrives. `decodable` is false for
  // emissions from non-802.11 devices (energy only).
  void StartRx(Packet packet, const WifiMode& mode, bool short_preamble, double rx_power_dbm,
               bool decodable = true);

  // Powers the radio down/up (802.11 power save). Sleeping aborts any
  // reception in progress; arriving signals are neither decoded nor counted
  // for CCA while asleep.
  void SetSleep(bool sleep);
  bool IsAsleep() const { return state_ == State::kSleep; }

  // Retunes the radio (roaming/scanning). Any in-flight reception is lost.
  void SetChannelNumber(uint8_t number);

  // RadioDevice ops (the channel-facing surface).
  RadioCapabilities capabilities() const override;
  uint8_t channel_number() const override { return config_.channel_number; }
  uint32_t node_id() const override { return node_id_; }
  MobilityModel* mobility() const override { return mobility_; }
  // Protocol-matched signals go through the 802.11 receive state machine
  // (StartRx); anything else lands as interference energy only.
  void Deliver(Packet packet, const SignalParams& signal, double rx_power_dbm) override;

  const Config& config() const { return config_; }
  PhyTiming timing() const { return TimingFor(config_.standard); }
  double noise_w() const { return noise_w_; }

  // Simple counters for diagnostics and tests.
  struct Counters {
    uint64_t tx_frames = 0;
    uint64_t rx_ok = 0;
    uint64_t rx_error = 0;
    uint64_t rx_dropped_busy = 0;    // arrived while TX or below detection
    uint64_t rx_captured = 0;        // receptions stolen by capture
    uint64_t rx_dropped_sleeping = 0;
  };
  const Counters& counters() const { return counters_; }

  // Interference-tracker work counters (signals scanned, chunks computed,
  // cleanup drops, timeline merges) — the cache_stats() analogue for the
  // SINR chunking hot path.
  const InterferenceTracker::Stats& interference_stats() const { return interference_.stats(); }

  // Radio power draw per state, watts. Defaults are the classic Feeney &
  // Nilsson WaveLAN measurements (2001).
  struct PowerProfile {
    double tx_w = 1.65;
    double rx_w = 1.40;
    double listen_w = 1.15;  // idle + CCA-busy listening
    double sleep_w = 0.045;
  };

  // Cumulative time spent in each radio state since construction, through
  // `now` (pass sim->Now()).
  struct StateTimes {
    Time tx;
    Time rx;
    Time listen;  // idle + CCA busy
    Time sleep;

    double EnergyJoules(const PowerProfile& p) const {
      return tx.seconds() * p.tx_w + rx.seconds() * p.rx_w + listen.seconds() * p.listen_w +
             sleep.seconds() * p.sleep_w;
    }
    double EnergyJoules() const { return EnergyJoules(PowerProfile{}); }
  };
  StateTimes GetStateTimes(Time now) const;

 private:
  struct Reception {
    uint64_t signal_id;
    Packet packet;
    WifiMode mode;
    Time start;
    Time payload_start;
    Time end;
    double rx_power_dbm;
    EventId end_event;
  };

  // PLCP header length in bits for the error model (SIGNAL/PLCP fields).
  static uint64_t HeaderBits(const WifiMode& mode);

  // Whether this receiver's PHY family can demodulate `mode` at all.
  bool CanDecode(const WifiMode& mode) const;

  void BeginReception(Packet packet, const WifiMode& mode, bool short_preamble,
                      double rx_power_dbm, uint64_t signal_id);
  // Cancels the in-flight reception (sleep, retune, transmit override or
  // capture): unpins its signal and notifies the listener of the failure.
  void AbortReception();
  void EndReception();
  void EndTx();
  void ReevaluateCca();
  void SetState(State next);

  Simulator* sim_;
  Config config_;
  Rng rng_;
  uint32_t node_id_ = 0;
  MobilityModel* mobility_ = nullptr;
  PhyListener* listener_ = nullptr;
  ReceiveCallback receive_cb_;

  DefaultErrorRateModel error_model_;
  InterferenceTracker interference_;
  double noise_w_;

  State state_ = State::kIdle;
  Time last_state_change_;
  StateTimes state_times_;
  std::optional<Reception> current_rx_;
  Time tx_end_;
  bool sleep_pending_ = false;  // sleep requested mid-TX; applied at EndTx
  Time cca_busy_until_;
  EventId cca_end_event_;
  Counters counters_;
};

}  // namespace wlansim

#endif  // WLANSIM_PHY_WIFI_PHY_H_
