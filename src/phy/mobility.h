// Node mobility models. The channel queries positions at transmission time,
// so movement continuously affects path loss without per-step events.

#ifndef WLANSIM_PHY_MOBILITY_H_
#define WLANSIM_PHY_MOBILITY_H_

#include <memory>
#include <vector>

#include "core/random.h"
#include "core/time.h"
#include "core/vector3.h"

namespace wlansim {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  virtual Vector3 PositionAt(Time now) = 0;

  // True when the position never changes on its own over simulated time.
  // The channel's link cache only memoizes propagation between two static
  // nodes; continuously moving models return false and bypass it.
  virtual bool IsStatic() const { return false; }

  // Bumped every time the position is changed externally (teleports,
  // scenario reconfiguration). Lets cache entries for static nodes go stale
  // without any explicit invalidation call — dirty-marking by comparison.
  virtual uint64_t PositionEpoch() const { return 0; }

  // The channel's spatial receiver index registers its topology-generation
  // counter here; NotifyPositionMutation() bumps it together with
  // PositionEpoch(), so position-derived state (grid cell assignments) can
  // detect a teleport with one integer compare per transmission instead of
  // scanning every node's epoch. A subclass that mutates its position
  // externally must call NotifyPositionMutation() alongside its epoch bump;
  // continuously moving models (IsStatic() == false) never need to — they
  // bypass position-derived caches entirely.
  void RegisterMutationCounter(uint64_t* counter) { mutation_counter_ = counter; }

 protected:
  void NotifyPositionMutation() {
    if (mutation_counter_ != nullptr) {
      ++*mutation_counter_;
    }
  }

 private:
  uint64_t* mutation_counter_ = nullptr;
};

class ConstantPositionMobility final : public MobilityModel {
 public:
  explicit ConstantPositionMobility(Vector3 position) : position_(position) {}
  Vector3 PositionAt(Time) override { return position_; }
  void SetPosition(Vector3 position) {
    position_ = position;
    ++epoch_;
    NotifyPositionMutation();
  }

  bool IsStatic() const override { return true; }
  uint64_t PositionEpoch() const override { return epoch_; }

 private:
  Vector3 position_;
  uint64_t epoch_ = 0;
};

// Straight-line motion from `start` at `velocity` (m/s) beginning at t=0.
class ConstantVelocityMobility final : public MobilityModel {
 public:
  ConstantVelocityMobility(Vector3 start, Vector3 velocity) : start_(start), velocity_(velocity) {}

  Vector3 PositionAt(Time now) override { return start_ + velocity_ * now.seconds(); }

 private:
  Vector3 start_;
  Vector3 velocity_;
};

// Random waypoint inside an axis-aligned rectangle [0,w]×[0,h] at z=0:
// pick a destination uniformly, travel at a uniform random speed, pause,
// repeat. Legs are generated lazily and deterministically from the rng.
class RandomWaypointMobility final : public MobilityModel {
 public:
  RandomWaypointMobility(double width, double height, double min_speed, double max_speed,
                         Time pause, Rng rng)
      : width_(width),
        height_(height),
        min_speed_(min_speed),
        max_speed_(max_speed),
        pause_(pause),
        rng_(rng) {
    legs_.push_back(Leg{Time::Zero(), Time::Zero(), RandomPoint(), RandomPoint()});
    FinishLeg(legs_.back());
  }

  Vector3 PositionAt(Time now) override {
    while (legs_.back().arrive + pause_ < now) {
      Leg next;
      next.depart = legs_.back().arrive + pause_;
      next.from = legs_.back().to;
      next.to = RandomPoint();
      FinishLeg(next);
      legs_.push_back(next);
    }
    // Binary search the containing leg.
    size_t lo = 0;
    size_t hi = legs_.size();
    while (lo + 1 < hi) {
      const size_t mid = (lo + hi) / 2;
      if (legs_[mid].depart <= now) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    const Leg& leg = legs_[lo];
    if (now >= leg.arrive) {
      return leg.to;  // pausing
    }
    const double f = (now - leg.depart) / (leg.arrive - leg.depart);
    return leg.from + (leg.to - leg.from) * f;
  }

 private:
  struct Leg {
    Time depart;
    Time arrive;
    Vector3 from;
    Vector3 to;
  };

  Vector3 RandomPoint() {
    return Vector3{rng_.Uniform(0.0, width_), rng_.Uniform(0.0, height_), 0.0};
  }

  void FinishLeg(Leg& leg) {
    const double speed = rng_.Uniform(min_speed_, max_speed_);
    const double distance = leg.from.DistanceTo(leg.to);
    leg.arrive = leg.depart + Time::Seconds(distance / std::max(speed, 0.01));
  }

  double width_;
  double height_;
  double min_speed_;
  double max_speed_;
  Time pause_;
  Rng rng_;
  std::vector<Leg> legs_;
};

}  // namespace wlansim

#endif  // WLANSIM_PHY_MOBILITY_H_
