#include "phy/channel.h"

#include <cassert>

#include "core/units.h"
#include "phy/propagation.h"
#include "phy/wifi_phy.h"

namespace wlansim {

Channel::Channel(Simulator* sim, std::unique_ptr<PropagationLossModel> loss, Rng rng)
    : sim_(sim), loss_(std::move(loss)), rng_(rng) {}

void Channel::Attach(WifiPhy* phy) {
  phys_.push_back(phy);
}

void Channel::Send(WifiPhy* sender, const Packet& packet, const WifiMode& mode,
                   bool short_preamble) {
  const Time now = sim_->Now();
  const Vector3 tx_pos = sender->mobility()->PositionAt(now);
  const double frequency = sender->timing().frequency_hz;

  for (WifiPhy* rx : phys_) {
    if (rx == sender || rx->channel_number() != sender->channel_number()) {
      continue;
    }
    const Vector3 rx_pos = rx->mobility()->PositionAt(now);
    const uint64_t link_id = MatrixLossModel::MakeLinkId(sender->node_id(), rx->node_id());
    double rx_dbm =
        loss_->RxPowerDbm(sender->config().tx_power_dbm, tx_pos, rx_pos, frequency, link_id);
    if (fading_ != nullptr) {
      rx_dbm += RatioToDb(fading_->SampleGain(rng_));
    }
    const Time delay = delay_model_.Delay(tx_pos, rx_pos);

    // Copy by value: each receiver owns an independent packet instance.
    Packet copy = packet;
    const bool decodable = !sender->config().transmissions_undecodable;
    sim_->Schedule(delay,
                   [rx, copy = std::move(copy), mode, short_preamble, rx_dbm, decodable]() mutable {
                     rx->StartRx(std::move(copy), mode, short_preamble, rx_dbm, decodable);
                   });
  }
}

}  // namespace wlansim
