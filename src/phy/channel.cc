#include "phy/channel.h"

#include <cassert>

#include "core/units.h"
#include "phy/mobility.h"
#include "phy/propagation.h"
#include "phy/wifi_phy.h"

namespace wlansim {

Channel::Channel(Simulator* sim, std::unique_ptr<PropagationLossModel> loss, Rng rng)
    : sim_(sim), loss_(std::move(loss)), rng_(rng) {}

void Channel::Attach(WifiPhy* phy) {
  phy_index_.InsertOrAssign(reinterpret_cast<uintptr_t>(phy),
                            static_cast<uint32_t>(phys_.size()));
  phys_.push_back(phy);
  // The cache is tx-major with stride phys_.size(): re-attach invalidates
  // everything (attachment only happens during scenario assembly).
  link_cache_.assign(phys_.size() * phys_.size(), LinkState{});
}

void Channel::Send(WifiPhy* sender, const Packet& packet, const WifiMode& mode,
                   bool short_preamble) {
  const Time now = sim_->Now();
  const double frequency = sender->timing().frequency_hz;
  MobilityModel* tx_mobility = sender->mobility();
  const bool tx_static = tx_mobility->IsStatic();
  const uint64_t tx_epoch = tx_mobility->PositionEpoch();
  const uint64_t loss_epoch = loss_->MutationEpoch();
  const uint32_t* tx_index = phy_index_.Find(reinterpret_cast<uintptr_t>(sender));
  assert(tx_index != nullptr);
  LinkState* tx_row = &link_cache_[*tx_index * phys_.size()];

  // Transmit position is only needed on a cache miss; when every receiver
  // row hits, the mobility model is never queried.
  Vector3 tx_pos;
  bool tx_pos_known = false;

  for (size_t i = 0; i < phys_.size(); ++i) {
    WifiPhy* rx = phys_[i];
    if (rx == sender || rx->channel_number() != sender->channel_number()) {
      continue;
    }
    MobilityModel* rx_mobility = rx->mobility();
    LinkState& entry = tx_row[i];
    const bool cacheable = tx_static && rx_mobility->IsStatic();
    double rx_dbm;
    Time delay;
    if (cacheable && entry.tx_mobility == tx_mobility && entry.rx_mobility == rx_mobility &&
        entry.tx_epoch == tx_epoch && entry.rx_epoch == rx_mobility->PositionEpoch() &&
        entry.loss_epoch == loss_epoch) {
      rx_dbm = entry.rx_dbm;
      delay = entry.delay;
      ++cache_stats_.hits;
    } else {
      if (!tx_pos_known) {
        tx_pos = tx_mobility->PositionAt(now);
        tx_pos_known = true;
      }
      const Vector3 rx_pos = rx_mobility->PositionAt(now);
      const uint64_t link_id = MatrixLossModel::MakeLinkId(sender->node_id(), rx->node_id());
      rx_dbm =
          loss_->RxPowerDbm(sender->config().tx_power_dbm, tx_pos, rx_pos, frequency, link_id);
      delay = delay_model_.Delay(tx_pos, rx_pos);
      ++cache_stats_.misses;
      if (cacheable) {
        entry = LinkState{rx_dbm,   delay,    tx_mobility, rx_mobility,
                          tx_epoch, rx_mobility->PositionEpoch(), loss_epoch};
      }
    }
    if (fading_ != nullptr) {
      rx_dbm += RatioToDb(fading_->SampleGain(rng_));
    }

    // Copy by value: each receiver owns an independent packet instance.
    Packet copy = packet;
    const bool decodable = !sender->config().transmissions_undecodable;
    sim_->Schedule(delay,
                   [rx, copy = std::move(copy), mode, short_preamble, rx_dbm, decodable]() mutable {
                     rx->StartRx(std::move(copy), mode, short_preamble, rx_dbm, decodable);
                   });
  }
}

}  // namespace wlansim
