#include "phy/channel.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "core/hotpath_stats.h"
#include "core/units.h"
#include "phy/mobility.h"
#include "phy/propagation.h"

namespace wlansim {

// Shared per-transmission delivery state. The packet is a CoW view of the
// sender's buffer (the copy at construction bumps a refcount, it moves no
// bytes); one record serves every receiver of one Send. Intrusively
// refcounted by the closures that carry it, so it lives exactly until the
// last delivery runs — or until an undrained event queue destroys the
// closures at teardown.
struct Channel::DeliveryRecord {
  Packet packet;
  SignalParams signal;
  uint32_t refs;

  static void Unref(DeliveryRecord* rec) {
    if (--rec->refs == 0) {
      delete rec;
    }
  }
};

// The per-receiver delivery closure: a record reference, the receiver, and
// its faded power — 24 bytes, comfortably inside EventFn::kInlineBytes, so
// scheduling an arrival never heap-allocates in the event kernel. Move-only
// RAII: the reference drops when the closure is destroyed, whether or not
// it ran.
struct Channel::DeliveryClosure {
  DeliveryRecord* rec;
  RadioDevice* rx;
  double rx_dbm;

  DeliveryClosure(DeliveryRecord* record, RadioDevice* receiver, double dbm)
      : rec(record), rx(receiver), rx_dbm(dbm) {
    ++rec->refs;
  }
  DeliveryClosure(DeliveryClosure&& other) noexcept
      : rec(other.rec), rx(other.rx), rx_dbm(other.rx_dbm) {
    other.rec = nullptr;
  }
  DeliveryClosure(const DeliveryClosure&) = delete;
  DeliveryClosure& operator=(const DeliveryClosure&) = delete;
  DeliveryClosure& operator=(DeliveryClosure&&) = delete;
  ~DeliveryClosure() {
    if (rec != nullptr) {
      DeliveryRecord::Unref(rec);
    }
  }

  void operator()() {
    // Each receiver gets its own Packet instance viewing the shared buffer
    // (refcount bump, no byte copy); uid and meta ride along unchanged.
    rx->Deliver(rec->packet, rec->signal, rx_dbm);
  }
};

Channel::Channel(Simulator* sim, std::unique_ptr<PropagationLossModel> loss, Rng rng)
    : sim_(sim), loss_(std::move(loss)), rng_(rng) {
  if (const char* env = std::getenv("WLANSIM_RX_CUTOFF_DBM")) {
    rx_cutoff_dbm_ = std::strtod(env, nullptr);
  }
  if (const char* env = std::getenv("WLANSIM_SPATIAL_INDEX")) {
    spatial_enabled_ = env[0] == '1';
  }
}

Channel::~Channel() {
  HotPathStats::channel_bytes_copied.fetch_add(send_stats_.bytes_copied,
                                               std::memory_order_relaxed);
}

void Channel::Attach(RadioDevice* device) {
  if (device_index_.Find(reinterpret_cast<uintptr_t>(device)) != nullptr) {
    throw std::invalid_argument("Channel::Attach: device already attached");
  }
  device_index_.InsertOrAssign(reinterpret_cast<uintptr_t>(device),
                               static_cast<uint32_t>(devices_.size()));
  devices_.push_back(device);
  device_can_rx_.push_back(device->capabilities().can_receive ? 1 : 0);
  device->channel_ = this;
  if (device->mobility() != nullptr) {
    device->mobility()->RegisterMutationCounter(&topology_generation_);
  }
  ++topology_generation_;
}

void Channel::OnDeviceMobilityReplaced(RadioDevice* device) {
  if (device->mobility() != nullptr) {
    device->mobility()->RegisterMutationCounter(&topology_generation_);
  }
  ++topology_generation_;
}

void Channel::Send(RadioDevice* sender, const Packet& packet, const SignalParams& signal) {
  ++send_stats_.sends;
  // Account CoW faults across the whole fan-out: any deep copy between
  // here and the epilogue (there should be none — receivers share one
  // immutable buffer) lands in bytes_copied.
  const uint64_t copied_before = Packet::CowCopiedBytes();

  TxContext ctx;
  ctx.sender = sender;
  ctx.packet = &packet;
  ctx.signal = &signal;
  ctx.now = sim_->Now();
  const RadioCapabilities caps = sender->capabilities();
  ctx.tx_power_dbm = caps.tx_power_dbm;
  ctx.frequency = caps.frequency_hz;
  ctx.tx_channel_number = sender->channel_number();
  ctx.tx_node_id = sender->node_id();
  ctx.tx_mobility = sender->mobility();
  ctx.tx_static = ctx.tx_mobility->IsStatic();
  ctx.tx_epoch = ctx.tx_mobility->PositionEpoch();
  ctx.loss_epoch = loss_->MutationEpoch();
  const uint32_t* tx_index = device_index_.Find(reinterpret_cast<uintptr_t>(sender));
  assert(tx_index != nullptr);
  ctx.tx_index = *tx_index;

  bool offered = false;
  if (spatial_enabled_) {
    if (!grid_built_ || !GridCurrent()) {
      RebuildGrid();
    }
    if (GridUsable()) {
      // Indexed path. Any receiver whose pre-fading power can reach the
      // cutoff lies within the sender's interference radius, and the radius
      // never exceeds cell_size_, so the 3x3 cell block around the sender
      // covers every candidate that OfferTo could deliver to. Receivers in
      // the block but outside the radius are visited anyway and fall to the
      // exact cutoff check — the grid only prunes, it never decides.
      ++send_stats_.grid_queries;
      ctx.tx_pos = ctx.tx_mobility->PositionAt(ctx.now);
      ctx.tx_pos_known = true;
      scratch_candidates_.clear();
      const int64_t cx = static_cast<int64_t>(std::floor(ctx.tx_pos.x / cell_size_));
      const int64_t cy = static_cast<int64_t>(std::floor(ctx.tx_pos.y / cell_size_));
      for (int64_t dy = -1; dy <= 1; ++dy) {
        for (int64_t dx = -1; dx <= 1; ++dx) {
          if (const std::vector<uint32_t>* cell = grid_cells_.Find(CellKey(cx + dx, cy + dy))) {
            scratch_candidates_.insert(scratch_candidates_.end(), cell->begin(), cell->end());
          }
        }
      }
      scratch_candidates_.insert(scratch_candidates_.end(), moving_.begin(), moving_.end());
      // Ascending index order = the dense loop's visit order, so the fading
      // draws below consume rng_ in exactly the same sequence.
      std::sort(scratch_candidates_.begin(), scratch_candidates_.end());
      for (const uint32_t i : scratch_candidates_) {
        OfferTo(i, ctx);
      }
      offered = true;
    }
  }

  if (!offered) {
    for (size_t i = 0; i < devices_.size(); ++i) {
      OfferTo(i, ctx);
    }
  }

  // Drop Send's reference; the scheduled closures keep the record (and the
  // shared buffer behind it) alive until the last delivery.
  if (ctx.record != nullptr) {
    DeliveryRecord::Unref(ctx.record);
  }
  send_stats_.bytes_copied += Packet::CowCopiedBytes() - copied_before;
}

void Channel::OfferTo(size_t rx_index, TxContext& ctx) {
  RadioDevice* rx = devices_[rx_index];
  if (rx == ctx.sender || !device_can_rx_[rx_index] ||
      rx->channel_number() != ctx.tx_channel_number) {
    return;
  }
  ++send_stats_.candidates_visited;
  MobilityModel* rx_mobility = rx->mobility();
  const bool cacheable = ctx.tx_static && rx_mobility->IsStatic();
  const uint64_t key = LinkKey(ctx.tx_index, static_cast<uint32_t>(rx_index));

  double rx_dbm;
  Time delay;
  bool hit = false;
  if (cacheable) {
    if (const LinkState* entry = link_cache_.Find(key);
        entry != nullptr && entry->tx_mobility == ctx.tx_mobility &&
        entry->rx_mobility == rx_mobility && entry->tx_epoch == ctx.tx_epoch &&
        entry->rx_epoch == rx_mobility->PositionEpoch() &&
        entry->loss_epoch == ctx.loss_epoch) {
      rx_dbm = entry->rx_dbm;
      delay = entry->delay;
      hit = true;
      ++cache_stats_.hits;
    }
  }
  if (!hit) {
    if (!ctx.tx_pos_known) {
      ctx.tx_pos = ctx.tx_mobility->PositionAt(ctx.now);
      ctx.tx_pos_known = true;
    }
    const Vector3 rx_pos = rx_mobility->PositionAt(ctx.now);
    const uint64_t link_id = MatrixLossModel::MakeLinkId(ctx.tx_node_id, rx->node_id());
    rx_dbm = loss_->RxPowerDbm(ctx.tx_power_dbm, ctx.tx_pos, rx_pos, ctx.frequency, link_id);
    delay = delay_model_.Delay(ctx.tx_pos, rx_pos);
    ++cache_stats_.misses;
    if (cacheable) {
      link_cache_.InsertOrAssign(key, LinkState{rx_dbm, delay, ctx.tx_mobility, rx_mobility,
                                                ctx.tx_epoch, rx_mobility->PositionEpoch(),
                                                ctx.loss_epoch});
    }
  }

  // The cutoff gates everything downstream — including the fading draw, so
  // a suppressed receiver consumes no RNG on either the dense or the
  // indexed path. Compared on the pre-fading power: the cutoff models
  // receiver-independent propagation reach, not fast-fading luck.
  if (rx_dbm < rx_cutoff_dbm_) {
    ++send_stats_.cutoff_suppressed;
    return;
  }
  ++send_stats_.offers;
  if (send_probe_) {
    send_probe_(ctx.sender, rx, rx_dbm, delay);
  }
  if (fading_ != nullptr) {
    rx_dbm += RatioToDb(fading_->SampleGain(rng_));
  }

  // Zero-copy fan-out: the first offer materializes ONE shared record (the
  // Packet copy inside it shares the sender's buffer — a refcount bump, no
  // bytes move) and every receiver's arrival is a 24-byte closure over it,
  // small enough that the event slab's inline buffer (SBO) path is taken.
  // The receive op sees the full on-air description (protocol, airtime,
  // mode) with its per-receiver power.
  if (ctx.record == nullptr) {
    ctx.record = new DeliveryRecord{*ctx.packet, *ctx.signal, /*refs=*/1};
  }
  static_assert(EventFn::kInlinable<DeliveryClosure>,
                "delivery closure must fit the event slab's inline buffer");
  sim_->Schedule(delay, DeliveryClosure(ctx.record, rx, rx_dbm));
}

void Channel::RebuildGrid() {
  ++send_stats_.grid_rebuilds;
  grid_built_ = true;
  grid_generation_ = topology_generation_;
  grid_loss_epoch_ = loss_->MutationEpoch();
  grid_cells_.Clear();
  moving_.clear();

  double radius = 0.0;
  for (const RadioDevice* dev : devices_) {
    const RadioCapabilities caps = dev->capabilities();
    radius = std::max(radius,
                      loss_->MaxRangeMeters(caps.tx_power_dbm, caps.frequency_hz, rx_cutoff_dbm_));
  }
  if (devices_.empty() || !std::isfinite(radius)) {
    // Unbounded radius (matrix/shadowing loss, or -inf cutoff): no cell
    // size can cover it, so Send stays on the dense loop.
    cell_size_ = 0.0;
    return;
  }
  // Cell size = the largest attached interference radius, padded so a
  // borderline receiver (floating-point rounding at exactly the radius)
  // still lands inside the 3x3 query block rather than being pruned.
  cell_size_ = radius * 1.001 + 1.0;

  const Time now = sim_->Now();
  for (uint32_t i = 0; i < devices_.size(); ++i) {
    MobilityModel* mobility = devices_[i]->mobility();
    if (mobility == nullptr || !mobility->IsStatic()) {
      moving_.push_back(i);  // ascending by construction
      continue;
    }
    const Vector3 pos = mobility->PositionAt(now);
    const uint64_t cell_key =
        CellKey(static_cast<int64_t>(std::floor(pos.x / cell_size_)),
                static_cast<int64_t>(std::floor(pos.y / cell_size_)));
    std::vector<uint32_t>* cell = grid_cells_.Find(cell_key);
    if (cell == nullptr) {
      cell = &grid_cells_.InsertOrAssign(cell_key, {});
    }
    cell->push_back(i);  // ascending within each cell by construction
  }
}

}  // namespace wlansim
