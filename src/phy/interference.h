// Per-receiver interference bookkeeping.
//
// Every signal arriving at a PHY (decodable or not) is recorded as a
// rectangular power pulse. For a candidate reception the tracker slices the
// frame at every interference change point, computes the SINR of each chunk,
// and multiplies per-chunk success probabilities — the additive-interference
// model with coherent chunking used by ns-3's InterferenceHelper.

#ifndef WLANSIM_PHY_INTERFERENCE_H_
#define WLANSIM_PHY_INTERFERENCE_H_

#include <cstdint>
#include <vector>

#include "core/time.h"
#include "phy/error_model.h"
#include "phy/wifi_mode.h"

namespace wlansim {

class InterferenceTracker {
 public:
  // Records an arriving signal [start, end) with received power `power_w`.
  // Returns an id usable to exclude the signal from its own interference.
  uint64_t AddSignal(Time start, Time end, double power_w);

  // Sum of all signal powers overlapping instant `t` (CCA energy detection).
  double TotalPowerW(Time t) const;

  // First instant >= t at which total power drops below `threshold_w`
  // considering only currently known signals.
  Time TimeWhenPowerBelow(Time t, double threshold_w) const;

  // Success probability of receiving signal `signal_id` given all other
  // recorded signals as interference plus `noise_w`:
  //   [start, payload_start): PLCP header chunk at `header_mode`
  //   [payload_start, end):   payload chunk at `payload_mode`
  struct ReceptionPlan {
    uint64_t signal_id;
    Time start;
    Time payload_start;
    Time end;
    WifiMode header_mode;
    WifiMode payload_mode;
    uint64_t header_bits;
    uint64_t payload_bits;
    double noise_w;
  };
  double SuccessProbability(const ReceptionPlan& plan, const ErrorRateModel& error_model) const;

  // SINR (linear) of signal `signal_id` over its payload window — the value
  // a driver would report as "signal quality". Averaged over chunks weighted
  // by duration.
  double MeanSinr(const ReceptionPlan& plan) const;

  // Drops signals that ended before `before` (call periodically).
  void Cleanup(Time before);

  size_t ActiveSignalCount() const { return signals_.size(); }

 private:
  struct Signal {
    uint64_t id;
    Time start;
    Time end;
    double power_w;
  };

  // Interference power from all signals other than `exclude_id` overlapping
  // instant `t`.
  double InterferenceAt(Time t, uint64_t exclude_id) const;

  // Change points of other signals within [from, to), sorted, including the
  // endpoints.
  std::vector<Time> ChangePoints(Time from, Time to, uint64_t exclude_id) const;

  std::vector<Signal> signals_;
  uint64_t next_id_ = 1;
};

}  // namespace wlansim

#endif  // WLANSIM_PHY_INTERFERENCE_H_
