// Per-receiver interference bookkeeping.
//
// Every signal arriving at a PHY (decodable or not) is recorded as a
// rectangular power pulse. For a candidate reception the tracker slices the
// frame at every interference change point, computes the SINR of each chunk,
// and multiplies per-chunk success probabilities — the additive-interference
// model with coherent chunking used by ns-3's InterferenceHelper.
//
// Sweep-line implementation. Signal starts and ends live in one time-sorted
// change-point timeline (new points buffer in a pending tail and are merged
// lazily before the next ordered query), so locating a reception window's
// chunk boundaries is an O(log n) lower_bound plus a walk over the k points
// inside the window, `TimeWhenPowerBelow` is a forward walk over end points
// from lower_bound, and `SuccessProbability`/`MeanSinr` share one
// chunk-iteration sweep per window instead of re-sorting and rescanning the
// signal list per chunk. (`EvaluateReception` computes both in a single
// sweep — the PHY's hot path.)
//
// Bit-exact reproducibility contract: every power total is accumulated over
// the active signals in ascending-id (arrival) order — the same left fold
// the pre-sweep-line tracker used — so all query results are bit-identical
// to ReferenceInterferenceTracker (interference_reference.h). During a
// window sweep the running sum is updated incrementally only where that is
// exactly the same fold (appending the newest-id signal); any other active-
// set change re-folds the (small) active array. The randomized differential
// tests in tests/phy_test.cc compare the two implementations with EXACT
// double equality; campaign results must not change by a ULP when only the
// lookup strategy changes.
//
// Expiry: the tracker self-prunes instead of relying on callers. To keep
// historical campaign outputs byte-identical, the policy reproduces the
// legacy WifiPhy purge bit-for-bit: after an AddSignal that leaves more
// than 64 tracked signals, signals with end <= (new signal's start) are
// dropped. That legacy drop set intentionally includes signals that ended
// inside a still-in-progress reception window — their chunks vanish from
// the eventual SuccessProbability — so a *correct* pin-protected horizon
// would change results (fragmentation CSVs diverge measurably). The pin
// (PinSignal) therefore only protects the reception's own signal record
// from the pathological same-instant drop, which the legacy code never
// survived either (it was a latent use-after-free behind an assert).

#ifndef WLANSIM_PHY_INTERFERENCE_H_
#define WLANSIM_PHY_INTERFERENCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/time.h"
#include "phy/error_model.h"
#include "phy/wifi_mode.h"

namespace wlansim {

class InterferenceTracker {
 public:
  // Records an arriving signal [start, end) with received power `power_w`.
  // Returns an id usable to exclude the signal from its own interference.
  // Triggers the legacy-compatible expiry described in the header comment;
  // callers no longer need periodic Cleanup calls.
  uint64_t AddSignal(Time start, Time end, double power_w);

  // Sum of all signal powers overlapping instant `t` (CCA energy detection).
  double TotalPowerW(Time t) const;

  // First signal-end instant >= t at which total power is below
  // `threshold_w` considering only currently known signals; `t` itself when
  // power is already below. Signals are half-open [start, end), so total
  // power is exactly zero at the latest known end — for any positive
  // threshold the walk always terminates there or earlier. For
  // threshold_w <= 0 no qualifying instant exists; the contract is to
  // return the first instant after every known signal has ended (that same
  // latest end), or `t` when no signal extends past `t`.
  Time TimeWhenPowerBelow(Time t, double threshold_w) const;

  // Success probability of receiving signal `signal_id` given all other
  // recorded signals as interference plus `noise_w`:
  //   [start, payload_start): PLCP header chunk at `header_mode`
  //   [payload_start, end):   payload chunk at `payload_mode`
  struct ReceptionPlan {
    uint64_t signal_id;
    Time start;
    Time payload_start;
    Time end;
    WifiMode header_mode;
    WifiMode payload_mode;
    uint64_t header_bits;
    uint64_t payload_bits;
    double noise_w;
  };
  double SuccessProbability(const ReceptionPlan& plan, const ErrorRateModel& error_model) const;

  // SINR (linear) of signal `signal_id` over its payload window — the value
  // a driver would report as "signal quality". Averaged over chunks weighted
  // by duration.
  double MeanSinr(const ReceptionPlan& plan) const;

  // SuccessProbability and MeanSinr from one shared payload-window sweep
  // (identical values, computed once) — what WifiPhy uses at EndReception.
  struct ReceptionStats {
    double success_probability = 1.0;
    double mean_sinr = 0.0;
  };
  ReceptionStats EvaluateReception(const ReceptionPlan& plan,
                                   const ErrorRateModel& error_model) const;

  // Protects the in-flight reception's own signal record from expiry until
  // UnpinSignal (see header comment); at most one signal is pinned.
  void PinSignal(uint64_t id) { pinned_id_ = id; }
  void UnpinSignal() { pinned_id_ = 0; }

  // Drops all signals that ended at or before `before`, pinned or not
  // (channel retune / tests; automatic expiry does not use this entry).
  void Cleanup(Time before);

  // Number of tracked signal records (live and recently ended, pending the
  // next expiry) — not the number overlapping any single instant.
  size_t ActiveSignalCount() const { return signals_.size(); }

  // Work counters, in the spirit of Channel::cache_stats(): how many signal
  // records power sums visited, how many SINR chunks were evaluated, how
  // many records expiry dropped, and how many lazy timeline merges ran.
  struct Stats {
    uint64_t signals_scanned = 0;
    uint64_t chunks_computed = 0;
    uint64_t cleanup_drops = 0;
    uint64_t timeline_merges = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Signal {
    uint64_t id;
    Time start;
    Time end;
    double power_w;
  };

  // One timeline entry: a signal's start (+power) or end (-power) instant.
  // Ordered by (t, id, start-before-end) so a zero-length signal is applied
  // and retired within the same boundary and never pollutes a chunk.
  struct Event {
    Time t;
    uint64_t id;
    double power_w;
    bool is_start;
  };

  static bool EventBefore(const Event& a, const Event& b);

  // Sorts the pending tail of `events_` and merges it into the sorted
  // prefix (amortized: one merge serves all queries since the last add).
  void EnsureSorted() const;

  // Binary search by id (ids ascend with arrival order).
  const Signal* FindSignal(uint64_t id) const;

  // Walks the chunks of [from, to): invokes fn(a, b, interference_w) for
  // each maximal sub-interval [a, b) over which the set of interfering
  // signals (everything but `exclude_id`) is constant. Interference sums
  // follow the bit-exact fold contract in the header comment.
  template <typename ChunkFn>
  void SweepWindow(Time from, Time to, uint64_t exclude_id, ChunkFn&& fn) const;

  // Shared expiry: drops signals with end <= before (optionally sparing the
  // pinned one) from both the signal list and the timeline.
  void ExpireInternal(Time before, bool respect_pin);

  std::vector<Signal> signals_;  // ascending id == arrival order
  mutable std::vector<Event> events_;
  mutable size_t sorted_count_ = 0;  // events_[0, sorted_count_) is sorted
  uint64_t next_id_ = 1;
  uint64_t pinned_id_ = 0;
  Time min_live_end_ = Time::Max();  // earliest end among tracked signals

  // Scratch for window sweeps (per-receiver tracker, single-threaded):
  // the interferers active at the sweep cursor, ascending id.
  struct ActiveSignal {
    uint64_t id;
    double power_w;
  };
  mutable std::vector<ActiveSignal> active_;
  std::vector<uint64_t> dropped_scratch_;  // ids dropped by the current expiry

  mutable Stats stats_;
};

}  // namespace wlansim

#endif  // WLANSIM_PHY_INTERFERENCE_H_
