#include "phy/fading.h"

#include <cmath>

namespace wlansim {
namespace {

// Marsaglia-Tsang gamma sampling for shape >= 1; shape < 1 uses the boost
// trick G(a) = G(a+1) * U^(1/a).
double SampleGamma(Rng& rng, double shape) {
  if (shape < 1.0) {
    const double u = rng.NextDouble();
    return SampleGamma(rng, shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = rng.Normal(0.0, 1.0);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) {
      return d * v;
    }
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

}  // namespace

double NakagamiFading::SampleGain(Rng& rng) {
  // Gamma(shape=m, scale=1/m) has mean 1.
  return SampleGamma(rng, m_) / m_;
}

}  // namespace wlansim
