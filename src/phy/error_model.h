// SINR → bit/packet error rate models.
//
// DSSS modes use classic non-coherent/differential detection formulas with
// the 11-chip Barker (1, 2 Mb/s) and CCK (5.5, 11 Mb/s) processing gains
// expressed through the Eb/N0 conversion Eb/N0 = SINR * (B / R).
//
// OFDM modes use coherent M-QAM bit-error formulas combined with the union
// bound over the IEEE 802.11 K=7 (133,171) convolutional code's distance
// spectrum (Haccoun & Bégin weights for the punctured rates) — the same
// construction as the widely used NIST error model.

#ifndef WLANSIM_PHY_ERROR_MODEL_H_
#define WLANSIM_PHY_ERROR_MODEL_H_

#include <cstdint>

#include "phy/wifi_mode.h"

namespace wlansim {

class ErrorRateModel {
 public:
  virtual ~ErrorRateModel() = default;

  // Probability that `bits` payload bits at linear SINR `sinr` are all
  // received correctly.
  virtual double ChunkSuccessProbability(const WifiMode& mode, double sinr,
                                         uint64_t bits) const = 0;
};

class DefaultErrorRateModel final : public ErrorRateModel {
 public:
  double ChunkSuccessProbability(const WifiMode& mode, double sinr, uint64_t bits) const override;

  // Exposed for tests/calibration: raw (uncoded) BER for a mode at `sinr`.
  static double RawBer(const WifiMode& mode, double sinr);

  // Coded BER after the convolutional union bound (OFDM modes only).
  static double CodedBer(const WifiMode& mode, double sinr);
};

// Utility: Gaussian tail function Q(x).
double QFunction(double x);

}  // namespace wlansim

#endif  // WLANSIM_PHY_ERROR_MODEL_H_
