#include "phy/error_model.h"

#include <algorithm>
#include <cmath>
#include <span>

namespace wlansim {

double QFunction(double x) {
  return 0.5 * std::erfc(x / std::numbers::sqrt2);
}

namespace {

// Bandwidth used in the Eb/N0 conversion for each PHY family.
double NoiseBandwidthHz(const WifiMode& mode) {
  return mode.IsOfdm() ? 20e6 : 22e6;
}

double EbNo(const WifiMode& mode, double sinr) {
  return sinr * NoiseBandwidthHz(mode) / static_cast<double>(mode.bit_rate_bps);
}

// --- DSSS family -----------------------------------------------------------

// 1 Mb/s DBPSK: Pb = 1/2 exp(-Eb/N0).
double BerDbpsk(double ebno) {
  return 0.5 * std::exp(-ebno);
}

// 2 Mb/s DQPSK: standard approximation for differential QPSK,
// Pb ≈ Q( sqrt(2 γ) · sin(π/8) · 2 / sqrt(2 - sqrt(2)) ) simplified to the
// half-energy exponential bound used by classic simulators.
double BerDqpsk(double ebno) {
  return 0.5 * std::exp(-ebno / std::numbers::sqrt2);
}

// CCK 5.5/11: modelled as coherent QPSK detection on the CCK codeword with
// a small union-bound multiplicity penalty. With Eb/N0 already including
// the (B/R) spreading factor this yields receiver sensitivities within
// ~1 dB of typical hardware (-89 / -86 dBm at 8 % PER, 1024 B).
double BerCck(double ebno, double multiplicity) {
  return std::min(0.5, multiplicity * QFunction(std::sqrt(2.0 * ebno)));
}

// --- OFDM family ------------------------------------------------------------

// Uncoded bit error rate per modulation (Gray mapping).
double BerOfdmUncoded(Modulation modulation, double ebno_coded, double code_rate) {
  // Energy per coded bit: Ec = Eb * R.
  const double ec = ebno_coded * code_rate;
  switch (modulation) {
    case Modulation::kBpsk:
    case Modulation::kQpsk:
      // QPSK with Gray mapping has BPSK's per-bit error rate.
      return QFunction(std::sqrt(2.0 * ec));
    case Modulation::kQam16:
      return 0.75 * QFunction(std::sqrt(0.8 * ec));
    case Modulation::kQam64:
      return (7.0 / 12.0) * QFunction(std::sqrt((2.0 / 7.0) * ec));
    default:
      return 0.5;
  }
}

struct DistanceSpectrum {
  int d_free;
  std::span<const double> c;  // information-bit weights c_d, d = d_free, d_free+1, ...
};

// K=7 (133,171) code and its standard punctured variants. Weights from the
// classic Haccoun & Bégin tables (rate 1/2 has only even-distance terms).
constexpr double kW12[] = {36, 0, 211, 0, 1404, 0, 11633, 0, 77433, 0};
constexpr double kW23[] = {3, 70, 285, 1276, 6160, 27128, 117019};
constexpr double kW34[] = {42, 201, 1492, 10469, 62935, 379644};

DistanceSpectrum SpectrumFor(CodeRate rate) {
  switch (rate) {
    case CodeRate::kHalf:
      return {10, kW12};
    case CodeRate::kTwoThirds:
      return {6, kW23};
    case CodeRate::kThreeQuarters:
      return {5, kW34};
    case CodeRate::kNone:
      break;
  }
  return {0, {}};
}

double CodeRateValue(CodeRate rate) {
  switch (rate) {
    case CodeRate::kHalf:
      return 0.5;
    case CodeRate::kTwoThirds:
      return 2.0 / 3.0;
    case CodeRate::kThreeQuarters:
      return 0.75;
    case CodeRate::kNone:
      break;
  }
  return 1.0;
}

// Pairwise error probability P2(d) for hard-decision Viterbi decoding with
// channel crossover probability p (Chernoff-free exact form).
double PairwiseErrorProbability(int d, double p) {
  if (p <= 0.0) {
    return 0.0;
  }
  if (p >= 0.5) {
    return 1.0;
  }
  double sum = 0.0;
  if (d % 2 == 0) {
    // Half of the tie term plus strictly-greater terms.
    const int half = d / 2;
    double binom = 1.0;  // C(d, half) computed iteratively below
    // Compute C(d, k) for k = half..d via logs to avoid overflow.
    for (int k = half; k <= d; ++k) {
      double log_c = std::lgamma(d + 1.0) - std::lgamma(k + 1.0) - std::lgamma(d - k + 1.0);
      double term = std::exp(log_c + k * std::log(p) + (d - k) * std::log1p(-p));
      sum += (k == half) ? 0.5 * term : term;
    }
    (void)binom;
  } else {
    for (int k = (d + 1) / 2; k <= d; ++k) {
      double log_c = std::lgamma(d + 1.0) - std::lgamma(k + 1.0) - std::lgamma(d - k + 1.0);
      sum += std::exp(log_c + k * std::log(p) + (d - k) * std::log1p(-p));
    }
  }
  return std::min(1.0, sum);
}

}  // namespace

double DefaultErrorRateModel::RawBer(const WifiMode& mode, double sinr) {
  if (sinr <= 0.0) {
    return 0.5;
  }
  const double ebno = EbNo(mode, sinr);
  switch (mode.modulation) {
    case Modulation::kDbpsk:
      return BerDbpsk(ebno);
    case Modulation::kDqpsk:
      return BerDqpsk(ebno);
    case Modulation::kCck5_5:
      return BerCck(ebno, 14.0);   // 2^4 codewords → 14 nearest neighbours
    case Modulation::kCck11:
      return BerCck(ebno, 128.0);  // 2^8 codewords
    default:
      return BerOfdmUncoded(mode.modulation, ebno, CodeRateValue(mode.code_rate));
  }
}

double DefaultErrorRateModel::CodedBer(const WifiMode& mode, double sinr) {
  const double p = RawBer(mode, sinr);
  if (!mode.IsOfdm()) {
    return p;
  }
  const DistanceSpectrum spectrum = SpectrumFor(mode.code_rate);
  double pb = 0.0;
  for (size_t i = 0; i < spectrum.c.size(); ++i) {
    if (spectrum.c[i] == 0.0) {
      continue;
    }
    pb += spectrum.c[i] * PairwiseErrorProbability(spectrum.d_free + static_cast<int>(i), p);
  }
  // Union bound normalization: weights are per punctured block; divide by
  // the puncturing period in information bits (1/2 → 1, 2/3 → 2, 3/4 → 3).
  const double k_info = mode.code_rate == CodeRate::kHalf ? 1.0
                        : mode.code_rate == CodeRate::kTwoThirds ? 2.0
                                                                 : 3.0;
  return std::min(0.5, pb / k_info);
}

double DefaultErrorRateModel::ChunkSuccessProbability(const WifiMode& mode, double sinr,
                                                      uint64_t bits) const {
  if (bits == 0) {
    return 1.0;
  }
  const double ber = CodedBer(mode, sinr);
  if (ber <= 0.0) {
    return 1.0;
  }
  // (1 - Pb)^bits computed in log space for numerical stability.
  return std::exp(static_cast<double>(bits) * std::log1p(-std::min(ber, 1.0 - 1e-12)));
}

}  // namespace wlansim
