// The pre-sweep-line interference tracker, preserved verbatim as an
// executable specification. `InterferenceTracker` (interference.h) must
// produce bit-identical doubles for every query — same chunk boundaries,
// same id-ordered power folds — so the randomized differential tests in
// tests/phy_test.cc compare the two with exact equality, and the m3 bench
// (bench/bench_m3_interference.cc) uses this class as its baseline.
//
// Complexity (the reason it was replaced): `ChangePoints` re-collects and
// re-sorts boundary points per window, `InterferenceAt` rescans the whole
// signal list per chunk (O(n) per chunk, O(n²) per reception), and
// `TimeWhenPowerBelow` re-evaluates the total power per candidate end
// (O(n²) per CCA check).

#ifndef WLANSIM_PHY_INTERFERENCE_REFERENCE_H_
#define WLANSIM_PHY_INTERFERENCE_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "core/time.h"
#include "phy/error_model.h"
#include "phy/interference.h"
#include "phy/wifi_mode.h"

namespace wlansim {

class ReferenceInterferenceTracker {
 public:
  // Shares the plan type with the production tracker so test and bench
  // drivers hand the identical struct to both implementations.
  using ReceptionPlan = InterferenceTracker::ReceptionPlan;

  uint64_t AddSignal(Time start, Time end, double power_w);
  double TotalPowerW(Time t) const;
  Time TimeWhenPowerBelow(Time t, double threshold_w) const;
  double SuccessProbability(const ReceptionPlan& plan, const ErrorRateModel& error_model) const;
  double MeanSinr(const ReceptionPlan& plan) const;
  void Cleanup(Time before);
  size_t ActiveSignalCount() const { return signals_.size(); }

 private:
  struct Signal {
    uint64_t id;
    Time start;
    Time end;
    double power_w;
  };

  double InterferenceAt(Time t, uint64_t exclude_id) const;
  std::vector<Time> ChangePoints(Time from, Time to, uint64_t exclude_id) const;

  std::vector<Signal> signals_;
  uint64_t next_id_ = 1;
};

}  // namespace wlansim

#endif  // WLANSIM_PHY_INTERFERENCE_REFERENCE_H_
