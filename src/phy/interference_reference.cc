#include "phy/interference_reference.h"

#include <algorithm>
#include <cassert>

namespace wlansim {

uint64_t ReferenceInterferenceTracker::AddSignal(Time start, Time end, double power_w) {
  const uint64_t id = next_id_++;
  signals_.push_back(Signal{id, start, end, power_w});
  return id;
}

double ReferenceInterferenceTracker::TotalPowerW(Time t) const {
  double total = 0.0;
  for (const Signal& s : signals_) {
    if (s.start <= t && t < s.end) {
      total += s.power_w;
    }
  }
  return total;
}

Time ReferenceInterferenceTracker::TimeWhenPowerBelow(Time t, double threshold_w) const {
  // Candidate instants where power can drop: signal end times > t.
  std::vector<Time> ends;
  for (const Signal& s : signals_) {
    if (s.end > t) {
      ends.push_back(s.end);
    }
  }
  std::sort(ends.begin(), ends.end());
  if (TotalPowerW(t) < threshold_w) {
    return t;
  }
  for (Time end : ends) {
    if (TotalPowerW(end) < threshold_w) {
      return end;
    }
  }
  return ends.empty() ? t : ends.back();
}

double ReferenceInterferenceTracker::InterferenceAt(Time t, uint64_t exclude_id) const {
  double total = 0.0;
  for (const Signal& s : signals_) {
    if (s.id != exclude_id && s.start <= t && t < s.end) {
      total += s.power_w;
    }
  }
  return total;
}

std::vector<Time> ReferenceInterferenceTracker::ChangePoints(Time from, Time to,
                                                             uint64_t exclude_id) const {
  std::vector<Time> points;
  points.push_back(from);
  for (const Signal& s : signals_) {
    if (s.id == exclude_id) {
      continue;
    }
    if (s.start > from && s.start < to) {
      points.push_back(s.start);
    }
    if (s.end > from && s.end < to) {
      points.push_back(s.end);
    }
  }
  points.push_back(to);
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  return points;
}

double ReferenceInterferenceTracker::SuccessProbability(const ReceptionPlan& plan,
                                                        const ErrorRateModel& error_model) const {
  const Signal* self = nullptr;
  for (const Signal& s : signals_) {
    if (s.id == plan.signal_id) {
      self = &s;
      break;
    }
  }
  assert(self != nullptr);

  double success = 1.0;
  auto process_window = [&](Time from, Time to, const WifiMode& mode, uint64_t window_bits) {
    if (to <= from || window_bits == 0) {
      return;
    }
    const Time window = to - from;
    const auto points = ChangePoints(from, to, plan.signal_id);
    for (size_t i = 0; i + 1 < points.size(); ++i) {
      const Time a = points[i];
      const Time b = points[i + 1];
      const double interference = InterferenceAt(a, plan.signal_id);
      const double sinr = self->power_w / (plan.noise_w + interference);
      const double frac = (b - a) / window;
      const auto bits = static_cast<uint64_t>(static_cast<double>(window_bits) * frac + 0.5);
      success *= error_model.ChunkSuccessProbability(mode, sinr, bits);
    }
  };

  process_window(plan.start, plan.payload_start, plan.header_mode, plan.header_bits);
  process_window(plan.payload_start, plan.end, plan.payload_mode, plan.payload_bits);
  return success;
}

double ReferenceInterferenceTracker::MeanSinr(const ReceptionPlan& plan) const {
  const Signal* self = nullptr;
  for (const Signal& s : signals_) {
    if (s.id == plan.signal_id) {
      self = &s;
      break;
    }
  }
  assert(self != nullptr);
  const Time from = plan.payload_start;
  const Time to = plan.end;
  if (to <= from) {
    return 0.0;
  }
  const auto points = ChangePoints(from, to, plan.signal_id);
  double weighted = 0.0;
  for (size_t i = 0; i + 1 < points.size(); ++i) {
    const double interference = InterferenceAt(points[i], plan.signal_id);
    const double sinr = self->power_w / (plan.noise_w + interference);
    weighted += sinr * ((points[i + 1] - points[i]) / (to - from));
  }
  return weighted;
}

void ReferenceInterferenceTracker::Cleanup(Time before) {
  std::erase_if(signals_, [before](const Signal& s) { return s.end <= before; });
}

}  // namespace wlansim
