#include "phy/wifi_mode.h"

#include <array>
#include <cassert>

namespace wlansim {
namespace {

constexpr std::array<WifiMode, 2> kDsssModes = {{
    {"DSSS-1", PhyStandard::k80211, Modulation::kDbpsk, CodeRate::kNone, 1'000'000},
    {"DSSS-2", PhyStandard::k80211, Modulation::kDqpsk, CodeRate::kNone, 2'000'000},
}};

constexpr std::array<WifiMode, 4> kHrDsssModes = {{
    {"DSSS-1", PhyStandard::k80211b, Modulation::kDbpsk, CodeRate::kNone, 1'000'000},
    {"DSSS-2", PhyStandard::k80211b, Modulation::kDqpsk, CodeRate::kNone, 2'000'000},
    {"CCK-5.5", PhyStandard::k80211b, Modulation::kCck5_5, CodeRate::kNone, 5'500'000},
    {"CCK-11", PhyStandard::k80211b, Modulation::kCck11, CodeRate::kNone, 11'000'000},
}};

constexpr std::array<WifiMode, 8> kOfdmModes = {{
    {"OFDM-6", PhyStandard::k80211a, Modulation::kBpsk, CodeRate::kHalf, 6'000'000},
    {"OFDM-9", PhyStandard::k80211a, Modulation::kBpsk, CodeRate::kThreeQuarters, 9'000'000},
    {"OFDM-12", PhyStandard::k80211a, Modulation::kQpsk, CodeRate::kHalf, 12'000'000},
    {"OFDM-18", PhyStandard::k80211a, Modulation::kQpsk, CodeRate::kThreeQuarters, 18'000'000},
    {"OFDM-24", PhyStandard::k80211a, Modulation::kQam16, CodeRate::kHalf, 24'000'000},
    {"OFDM-36", PhyStandard::k80211a, Modulation::kQam16, CodeRate::kThreeQuarters, 36'000'000},
    {"OFDM-48", PhyStandard::k80211a, Modulation::kQam64, CodeRate::kTwoThirds, 48'000'000},
    {"OFDM-54", PhyStandard::k80211a, Modulation::kQam64, CodeRate::kThreeQuarters, 54'000'000},
}};

constexpr std::array<WifiMode, 8> kErpOfdmModes = {{
    {"ERP-6", PhyStandard::k80211g, Modulation::kBpsk, CodeRate::kHalf, 6'000'000},
    {"ERP-9", PhyStandard::k80211g, Modulation::kBpsk, CodeRate::kThreeQuarters, 9'000'000},
    {"ERP-12", PhyStandard::k80211g, Modulation::kQpsk, CodeRate::kHalf, 12'000'000},
    {"ERP-18", PhyStandard::k80211g, Modulation::kQpsk, CodeRate::kThreeQuarters, 18'000'000},
    {"ERP-24", PhyStandard::k80211g, Modulation::kQam16, CodeRate::kHalf, 24'000'000},
    {"ERP-36", PhyStandard::k80211g, Modulation::kQam16, CodeRate::kThreeQuarters, 36'000'000},
    {"ERP-48", PhyStandard::k80211g, Modulation::kQam64, CodeRate::kTwoThirds, 48'000'000},
    {"ERP-54", PhyStandard::k80211g, Modulation::kQam64, CodeRate::kThreeQuarters, 54'000'000},
}};

}  // namespace

std::string ToString(PhyStandard standard) {
  switch (standard) {
    case PhyStandard::k80211:
      return "802.11";
    case PhyStandard::k80211b:
      return "802.11b";
    case PhyStandard::k80211a:
      return "802.11a";
    case PhyStandard::k80211g:
      return "802.11g";
  }
  return "?";
}

PhyTiming TimingFor(PhyStandard standard, bool protection_active) {
  switch (standard) {
    case PhyStandard::k80211:
    case PhyStandard::k80211b:
      return PhyTiming{.slot = Time::Micros(20),
                       .sifs = Time::Micros(10),
                       .cw_min = 31,
                       .cw_max = 1023,
                       .channel_width_hz = 22e6,
                       .frequency_hz = 2.412e9,
                       .max_propagation_delay = Time::Micros(1)};
    case PhyStandard::k80211a:
      return PhyTiming{.slot = Time::Micros(9),
                       .sifs = Time::Micros(16),
                       .cw_min = 15,
                       .cw_max = 1023,
                       .channel_width_hz = 20e6,
                       .frequency_hz = 5.18e9,
                       .max_propagation_delay = Time::Micros(1)};
    case PhyStandard::k80211g:
      if (protection_active) {
        // ERP STA in a BSS with non-ERP members: long slot, b-era CWmin.
        return PhyTiming{.slot = Time::Micros(20),
                         .sifs = Time::Micros(10),
                         .cw_min = 31,
                         .cw_max = 1023,
                         .channel_width_hz = 20e6,
                         .frequency_hz = 2.412e9,
                         .max_propagation_delay = Time::Micros(1)};
      }
      return PhyTiming{.slot = Time::Micros(9),
                       .sifs = Time::Micros(10),
                       .cw_min = 15,
                       .cw_max = 1023,
                       .channel_width_hz = 20e6,
                       .frequency_hz = 2.412e9,
                       .max_propagation_delay = Time::Micros(1)};
  }
  return {};
}

std::span<const WifiMode> ModesFor(PhyStandard standard) {
  switch (standard) {
    case PhyStandard::k80211:
      return kDsssModes;
    case PhyStandard::k80211b:
      return kHrDsssModes;
    case PhyStandard::k80211a:
      return kOfdmModes;
    case PhyStandard::k80211g:
      return kErpOfdmModes;
  }
  return {};
}

const WifiMode& BaseModeFor(PhyStandard standard) {
  return ModesFor(standard).front();
}

const WifiMode& ControlResponseMode(const WifiMode& mode) {
  // Mandatory basic-rate sets: DSSS {1, 2}; OFDM {6, 12, 24}.
  const auto candidates = ModesFor(mode.standard);
  const WifiMode* best = &candidates.front();
  for (const WifiMode& candidate : candidates) {
    const bool mandatory = candidate.IsOfdm()
                               ? (candidate.bit_rate_bps == 6'000'000 ||
                                  candidate.bit_rate_bps == 12'000'000 ||
                                  candidate.bit_rate_bps == 24'000'000)
                               : (candidate.bit_rate_bps == 1'000'000 ||
                                  candidate.bit_rate_bps == 2'000'000);
    if (mandatory && candidate.bit_rate_bps <= mode.bit_rate_bps) {
      best = &candidate;
    }
  }
  return *best;
}

Time PayloadDuration(const WifiMode& mode, size_t bytes) {
  if (mode.IsOfdm()) {
    // 16 SERVICE bits + payload + 6 tail bits, in 4 us symbols.
    const uint64_t data_bits = 16 + 8 * static_cast<uint64_t>(bytes) + 6;
    const uint64_t bits_per_symbol = mode.bit_rate_bps * 4 / 1'000'000;  // rate × 4 us
    const uint64_t symbols = (data_bits + bits_per_symbol - 1) / bits_per_symbol;
    return Time::Micros(static_cast<int64_t>(4 * symbols));
  }
  // DSSS: bits at the data rate, exact in picoseconds.
  const uint64_t bits = 8 * static_cast<uint64_t>(bytes);
  // ps per bit = 1e12 / rate; compute bits * 1e12 / rate without overflow for
  // realistic sizes (bits < 2^20, 1e12 fits in 64-bit headroom via __int128).
  const auto ps = static_cast<int64_t>((static_cast<__int128>(bits) * 1'000'000'000'000LL) /
                                       mode.bit_rate_bps);
  return Time::Picos(ps);
}

Time FrameDuration(const WifiMode& mode, size_t bytes, bool short_preamble) {
  if (mode.IsOfdm()) {
    // Preamble 16 us + SIGNAL 4 us (+ 6 us signal extension for ERP-OFDM).
    Time duration = Time::Micros(20) + PayloadDuration(mode, bytes);
    if (mode.standard == PhyStandard::k80211g) {
      duration += Time::Micros(6);
    }
    return duration;
  }
  // DSSS long preamble: 144 us sync+SFD + 48 us PLCP header (both at 1 Mb/s).
  // Short preamble: 72 us + 24 us (header at 2 Mb/s). 1 Mb/s frames must use
  // the long preamble.
  const bool use_short = short_preamble && mode.bit_rate_bps > 1'000'000;
  const Time plcp = use_short ? Time::Micros(96) : Time::Micros(192);
  return plcp + PayloadDuration(mode, bytes);
}

}  // namespace wlansim
