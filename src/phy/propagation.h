// Propagation loss and delay models.
//
// Loss models map (tx position, rx position, carrier frequency) to received
// power. They may be chained (e.g. log-distance + shadowing).

#ifndef WLANSIM_PHY_PROPAGATION_H_
#define WLANSIM_PHY_PROPAGATION_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <utility>

#include "core/flat_hash.h"
#include "core/random.h"
#include "core/time.h"
#include "core/vector3.h"

namespace wlansim {

class PropagationLossModel {
 public:
  virtual ~PropagationLossModel() = default;

  // Received power in dBm for a transmission at `tx_power_dbm`.
  // `link_id` identifies the (tx, rx) pair for models with per-link state
  // (shadowing); pass the same id for the same ordered pair.
  virtual double RxPowerDbm(double tx_power_dbm, const Vector3& tx_pos, const Vector3& rx_pos,
                            double frequency_hz, uint64_t link_id) = 0;

  // Conservative interference radius: a distance R such that RxPowerDbm is
  // guaranteed below `cutoff_dbm` for every receiver farther than R from the
  // transmitter. The channel's spatial receiver index prunes receivers
  // outside R; the exact per-receiver cutoff check still runs inside it, so
  // R only has to be an upper bound, never tight. The default (infinity)
  // means "no bound can be promised": position-independent models
  // (MatrixLossModel) and models with unbounded per-link terms (log-normal
  // shadowing) return it, which keeps the dense all-receivers path in use.
  virtual double MaxRangeMeters(double tx_power_dbm, double frequency_hz,
                                double cutoff_dbm) const {
    (void)tx_power_dbm;
    (void)frequency_hz;
    (void)cutoff_dbm;
    return std::numeric_limits<double>::infinity();
  }

  // Bumped by every mutation that changes future RxPowerDbm results for
  // unchanged inputs (e.g. MatrixLossModel::SetLoss). The channel's link
  // cache compares it like a mobility position epoch, so mid-run loss edits
  // invalidate memoized rows automatically. Internal first-use memoization
  // (a shadowing draw) is not a mutation: replaying the same inputs still
  // yields the same power.
  uint64_t MutationEpoch() const { return mutation_epoch_; }

 protected:
  void BumpMutationEpoch() { ++mutation_epoch_; }

 private:
  uint64_t mutation_epoch_ = 0;
};

// Friis free-space: Pr = Pt + 20log10(c / (4 pi f d)). Below 1 m the model
// clamps to the 1 m loss (near field).
class FreeSpaceLossModel final : public PropagationLossModel {
 public:
  double RxPowerDbm(double tx_power_dbm, const Vector3& tx_pos, const Vector3& rx_pos,
                    double frequency_hz, uint64_t link_id) override;
  double MaxRangeMeters(double tx_power_dbm, double frequency_hz,
                        double cutoff_dbm) const override;
};

// Log-distance: PL(d) = PL(d0) + 10 n log10(d/d0), PL(d0) from Friis at the
// reference distance, with optional log-normal shadowing (one static draw
// per link, the standard "quasi-static" model).
class LogDistanceLossModel final : public PropagationLossModel {
 public:
  explicit LogDistanceLossModel(double exponent, double shadowing_sigma_db = 0.0,
                                uint64_t shadowing_seed = 1);

  double RxPowerDbm(double tx_power_dbm, const Vector3& tx_pos, const Vector3& rx_pos,
                    double frequency_hz, uint64_t link_id) override;

  // Exact inversion of the deterministic log-distance curve. With shadowing
  // enabled (sigma > 0) the per-link Gaussian term is unbounded, so no
  // finite radius can be promised and the default (infinity) is returned.
  double MaxRangeMeters(double tx_power_dbm, double frequency_hz,
                        double cutoff_dbm) const override;

 private:
  double exponent_;
  double sigma_db_;
  Rng rng_;
  // Per-link quasi-static shadowing draws, keyed by link id. Flat hash: the
  // lookup sits on the per-transmission hot path.
  FlatHash64<double> link_shadowing_db_;
};

// Explicit per-link loss in dB; unlisted links get `default_loss_db`. The
// tool for constructing exact hidden-terminal topologies.
class MatrixLossModel final : public PropagationLossModel {
 public:
  explicit MatrixLossModel(double default_loss_db = 200.0) : default_loss_db_(default_loss_db) {}

  // Symmetric: sets loss for (a, b) and (b, a). Node ids are the caller's
  // (net-layer) ids, combined into link ids via MakeLinkId.
  void SetLoss(uint32_t node_a, uint32_t node_b, double loss_db);

  static uint64_t MakeLinkId(uint32_t tx_node, uint32_t rx_node) {
    return (static_cast<uint64_t>(tx_node) << 32) | rx_node;
  }

  double RxPowerDbm(double tx_power_dbm, const Vector3& tx_pos, const Vector3& rx_pos,
                    double frequency_hz, uint64_t link_id) override;

 private:
  double default_loss_db_;
  FlatHash64<double> loss_db_;
};

class PropagationDelayModel {
 public:
  virtual ~PropagationDelayModel() = default;
  virtual Time Delay(const Vector3& a, const Vector3& b) = 0;
};

// Speed-of-light delay.
class ConstantSpeedDelayModel final : public PropagationDelayModel {
 public:
  Time Delay(const Vector3& a, const Vector3& b) override {
    constexpr double kC = 299'792'458.0;
    return Time::Seconds(a.DistanceTo(b) / kC);
  }
};

}  // namespace wlansim

#endif  // WLANSIM_PHY_PROPAGATION_H_
