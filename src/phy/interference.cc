#include "phy/interference.h"

#include <algorithm>
#include <cassert>

namespace wlansim {

namespace {

// Legacy purge compatibility: the pre-sweep-line WifiPhy pruned the tracker
// whenever more than 64 signals were stored, dropping everything that had
// ended by the triggering arrival. Campaign byte-identity depends on the
// trigger and drop set staying exactly this (see the header comment).
constexpr size_t kCompatExpiryThreshold = 64;

}  // namespace

bool InterferenceTracker::EventBefore(const Event& a, const Event& b) {
  if (a.t != b.t) {
    return a.t < b.t;
  }
  if (a.id != b.id) {
    return a.id < b.id;
  }
  return a.is_start && !b.is_start;
}

void InterferenceTracker::EnsureSorted() const {
  if (sorted_count_ == events_.size()) {
    return;
  }
  const auto mid = events_.begin() + static_cast<ptrdiff_t>(sorted_count_);
  std::sort(mid, events_.end(), EventBefore);
  if (events_.size() - sorted_count_ <= 4) {
    // The common case: one arrival (two points) since the last ordered
    // query. Rotate each point into place instead of inplace_merge, whose
    // temporary-buffer allocation dwarfs the actual move.
    for (auto first = mid; first != events_.end(); ++first) {
      const auto pos = std::upper_bound(events_.begin(), first, *first, EventBefore);
      std::rotate(pos, first, first + 1);
    }
  } else {
    std::inplace_merge(events_.begin(), mid, events_.end(), EventBefore);
  }
  sorted_count_ = events_.size();
  ++stats_.timeline_merges;
}

const InterferenceTracker::Signal* InterferenceTracker::FindSignal(uint64_t id) const {
  const auto it = std::lower_bound(signals_.begin(), signals_.end(), id,
                                   [](const Signal& s, uint64_t v) { return s.id < v; });
  return (it != signals_.end() && it->id == id) ? &*it : nullptr;
}

uint64_t InterferenceTracker::AddSignal(Time start, Time end, double power_w) {
  const uint64_t id = next_id_++;
  signals_.push_back(Signal{id, start, end, power_w});
  events_.push_back(Event{start, id, power_w, true});
  events_.push_back(Event{end, id, power_w, false});
  if (end < min_live_end_) {
    min_live_end_ = end;
  }
  // Legacy-compatible expiry. The min_live_end_ guard only skips calls that
  // would drop nothing (a no-op in the legacy code too), so the observable
  // drop sequence is unchanged.
  if (signals_.size() > kCompatExpiryThreshold && min_live_end_ <= start) {
    ExpireInternal(start, /*respect_pin=*/true);
  }
  return id;
}

double InterferenceTracker::TotalPowerW(Time t) const {
  // Ascending-id fold over the tracked signals: the bit-exact operand order
  // (see header). Expiry keeps this list close to the true concurrency.
  double total = 0.0;
  for (const Signal& s : signals_) {
    if (s.start <= t && t < s.end) {
      total += s.power_w;
    }
  }
  stats_.signals_scanned += signals_.size();
  return total;
}

Time InterferenceTracker::TimeWhenPowerBelow(Time t, double threshold_w) const {
  if (TotalPowerW(t) < threshold_w) {
    return t;
  }
  EnsureSorted();
  // Power can only drop at a signal end: walk end points after t in order.
  auto it = std::upper_bound(events_.begin(), events_.end(), t,
                             [](Time value, const Event& e) { return value < e.t; });
  bool walked = false;
  Time candidate;
  for (; it != events_.end(); ++it) {
    if (it->is_start || (walked && it->t == candidate)) {
      continue;
    }
    walked = true;
    candidate = it->t;
    if (TotalPowerW(candidate) < threshold_w) {
      return candidate;
    }
  }
  // Unreachable for threshold_w > 0: power is exactly zero at the latest
  // end (half-open signals), so the walk returns there at the latest. For
  // threshold_w <= 0 there is no qualifying instant; per contract, return
  // the first instant after every known signal has ended.
  return walked ? candidate : t;
}

template <typename ChunkFn>
void InterferenceTracker::SweepWindow(Time from, Time to, uint64_t exclude_id,
                                      ChunkFn&& fn) const {
  EnsureSorted();

  // Active interferers at `from`, in ascending-id order, with the running
  // sum built as the same left fold the reference implementation performs.
  active_.clear();
  double sum = 0.0;
  for (const Signal& s : signals_) {
    if (s.id != exclude_id && s.start <= from && from < s.end) {
      active_.push_back(ActiveSignal{s.id, s.power_w});
      sum += s.power_w;
    }
  }
  stats_.signals_scanned += signals_.size();

  auto refold = [&] {
    sum = 0.0;
    for (const ActiveSignal& a : active_) {
      sum += a.power_w;
    }
    stats_.signals_scanned += active_.size();
  };
  const auto id_before = [](const ActiveSignal& a, uint64_t id) { return a.id < id; };

  size_t i = static_cast<size_t>(
      std::upper_bound(events_.begin(), events_.end(), from,
                       [](Time value, const Event& e) { return value < e.t; }) -
      events_.begin());
  const size_t n = events_.size();
  Time a = from;
  while (i < n && events_[i].t < to) {
    const Time b = events_[i].t;
    // Group every event at this instant; the boundary exists only if at
    // least one belongs to an interferer (self's points are not chunk
    // boundaries, exactly as the reference's ChangePoints excludes them).
    size_t j = i;
    bool any = false;
    while (j < n && events_[j].t == b) {
      any = any || events_[j].id != exclude_id;
      ++j;
    }
    if (!any) {
      i = j;
      continue;
    }
    fn(a, b, sum);
    ++stats_.chunks_computed;

    bool refold_needed = false;
    for (size_t k = i; k < j; ++k) {
      const Event& e = events_[k];
      if (e.id == exclude_id) {
        continue;
      }
      if (e.is_start) {
        if (active_.empty() || e.id > active_.back().id) {
          active_.push_back(ActiveSignal{e.id, e.power_w});
          sum += e.power_w;  // exact: appending the max id extends the fold
        } else {
          // Out-of-arrival-order start (only possible via direct API use):
          // keep the array id-sorted and re-fold.
          const auto pos = std::lower_bound(active_.begin(), active_.end(), e.id, id_before);
          active_.insert(pos, ActiveSignal{e.id, e.power_w});
          refold_needed = true;
        }
      } else {
        const auto pos = std::lower_bound(active_.begin(), active_.end(), e.id, id_before);
        if (pos != active_.end() && pos->id == e.id) {
          active_.erase(pos);
          refold_needed = true;
        }
      }
    }
    if (refold_needed) {
      refold();
    }
    a = b;
    i = j;
  }
  fn(a, to, sum);
  ++stats_.chunks_computed;
}

InterferenceTracker::ReceptionStats InterferenceTracker::EvaluateReception(
    const ReceptionPlan& plan, const ErrorRateModel& error_model) const {
  const Signal* self = FindSignal(plan.signal_id);
  assert(self != nullptr);
  if (self == nullptr) {
    return ReceptionStats{0.0, 0.0};
  }

  ReceptionStats out;
  const Time ps = plan.payload_start;
  const bool header_active = ps > plan.start && plan.header_bits != 0;
  const bool payload_active = plan.end > ps;
  const bool score_payload = plan.payload_bits != 0;

  auto header_chunk = [&](Time a, Time b, double interference) {
    const Time window = ps - plan.start;
    const double sinr = self->power_w / (plan.noise_w + interference);
    const double frac = (b - a) / window;
    const auto bits = static_cast<uint64_t>(static_cast<double>(plan.header_bits) * frac + 0.5);
    out.success_probability *= error_model.ChunkSuccessProbability(plan.header_mode, sinr, bits);
  };
  auto payload_chunk = [&](Time a, Time b, double interference) {
    const Time window = plan.end - ps;
    const double sinr = self->power_w / (plan.noise_w + interference);
    const double frac = (b - a) / window;
    if (score_payload) {
      const auto bits =
          static_cast<uint64_t>(static_cast<double>(plan.payload_bits) * frac + 0.5);
      out.success_probability *=
          error_model.ChunkSuccessProbability(plan.payload_mode, sinr, bits);
    }
    out.mean_sinr += sinr * frac;
  };

  if (header_active && payload_active) {
    // Both windows abut at payload_start: one continuous sweep over
    // [start, end), with any chunk straddling payload_start split there.
    // The running fold is the same value a fresh payload-window sweep
    // would rebuild at payload_start (no event lies strictly between the
    // straddling chunk's edges), so every chunk sum stays bit-identical to
    // the two-pass evaluation.
    SweepWindow(plan.start, plan.end, plan.signal_id, [&](Time a, Time b, double interference) {
      if (b <= ps) {
        header_chunk(a, b, interference);
      } else if (a >= ps) {
        payload_chunk(a, b, interference);
      } else {
        header_chunk(a, ps, interference);
        payload_chunk(ps, b, interference);
      }
    });
  } else if (header_active) {
    SweepWindow(plan.start, ps, plan.signal_id, header_chunk);
  } else if (payload_active) {
    SweepWindow(ps, plan.end, plan.signal_id, payload_chunk);
  }
  return out;
}

double InterferenceTracker::SuccessProbability(const ReceptionPlan& plan,
                                               const ErrorRateModel& error_model) const {
  return EvaluateReception(plan, error_model).success_probability;
}

double InterferenceTracker::MeanSinr(const ReceptionPlan& plan) const {
  const Signal* self = FindSignal(plan.signal_id);
  assert(self != nullptr);
  if (self == nullptr || plan.end <= plan.payload_start) {
    return 0.0;
  }
  const Time window = plan.end - plan.payload_start;
  double weighted = 0.0;
  SweepWindow(plan.payload_start, plan.end, plan.signal_id,
              [&](Time a, Time b, double interference) {
                const double sinr = self->power_w / (plan.noise_w + interference);
                weighted += sinr * ((b - a) / window);
              });
  return weighted;
}

void InterferenceTracker::ExpireInternal(Time before, bool respect_pin) {
  const uint64_t spared = respect_pin ? pinned_id_ : 0;
  dropped_scratch_.clear();
  Time min_end = Time::Max();
  std::erase_if(signals_, [&](const Signal& s) {
    if (s.end <= before && s.id != spared) {
      dropped_scratch_.push_back(s.id);  // ascending: signals_ is id-sorted
      return true;
    }
    if (s.end < min_end) {
      min_end = s.end;
    }
    return false;
  });
  min_live_end_ = min_end;
  stats_.cleanup_drops += dropped_scratch_.size();
  if (dropped_scratch_.empty()) {
    return;
  }

  // Prune the timeline to the surviving signals, preserving relative order
  // so the sorted prefix stays sorted and the pending tail stays pending.
  // Dropped events all have t <= before, so later events skip the id check.
  size_t kept = 0;
  size_t kept_sorted = 0;
  for (size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    if (e.t <= before &&
        std::binary_search(dropped_scratch_.begin(), dropped_scratch_.end(), e.id)) {
      continue;
    }
    events_[kept] = e;
    if (i < sorted_count_) {
      ++kept_sorted;
    }
    ++kept;
  }
  events_.resize(kept);
  sorted_count_ = kept_sorted;
}

void InterferenceTracker::Cleanup(Time before) {
  ExpireInternal(before, /*respect_pin=*/false);
}

}  // namespace wlansim
