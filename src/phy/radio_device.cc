#include "phy/radio_device.h"

#include "phy/channel.h"

namespace wlansim {

SignalParams MakeWifiSignal(const WifiMode& mode, size_t bytes, bool short_preamble,
                            bool decodable) {
  SignalParams sig;
  sig.mode = mode;
  sig.short_preamble = short_preamble;
  sig.decodable = decodable;
  sig.protocol = RadioProtocol::kWifi80211;
  sig.duration = FrameDuration(mode, bytes, short_preamble);
  return sig;
}

void RadioDevice::NotifyMobilityReplaced() {
  if (channel_ != nullptr) {
    channel_->OnDeviceMobilityReplaced(this);
  }
}

}  // namespace wlansim
