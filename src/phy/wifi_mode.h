// Transmission modes for 802.11 / 802.11b / 802.11a / 802.11g and the PLCP
// timing arithmetic that converts (mode, frame length) into on-air duration.
//
// Durations follow the standard exactly:
//  * DSSS/HR-DSSS (11, 11b): long preamble 144 us + PLCP header 48 us, both
//    at 1 Mb/s (short preamble: 72 us + 24 us with the header at 2 Mb/s);
//    payload bits at the data rate.
//  * OFDM (11a): 16 us preamble + 4 us SIGNAL + 4 us symbols covering
//    16 SERVICE bits + 8*length + 6 tail bits.
//  * ERP-OFDM (11g): as OFDM plus the 6 us signal extension.

#ifndef WLANSIM_PHY_WIFI_MODE_H_
#define WLANSIM_PHY_WIFI_MODE_H_

#include <cstdint>
#include <span>
#include <string>

#include "core/time.h"

namespace wlansim {

enum class PhyStandard : uint8_t {
  k80211,    // original DSSS/FHSS 1-2 Mb/s (we model the DSSS PHY)
  k80211b,   // HR-DSSS up to 11 Mb/s, 2.4 GHz
  k80211a,   // OFDM up to 54 Mb/s, 5 GHz
  k80211g,   // ERP-OFDM up to 54 Mb/s, 2.4 GHz (b-compatible)
};

std::string ToString(PhyStandard standard);

enum class Modulation : uint8_t {
  kDbpsk,   // DSSS 1 Mb/s
  kDqpsk,   // DSSS 2 Mb/s
  kCck5_5,  // HR-DSSS 5.5 Mb/s
  kCck11,   // HR-DSSS 11 Mb/s
  kBpsk,    // OFDM
  kQpsk,    // OFDM
  kQam16,   // OFDM
  kQam64,   // OFDM
};

// Convolutional-code rate for OFDM modes; kNone for DSSS.
enum class CodeRate : uint8_t { kNone, kHalf, kTwoThirds, kThreeQuarters };

struct WifiMode {
  const char* name;
  PhyStandard standard;
  Modulation modulation;
  CodeRate code_rate;
  uint32_t bit_rate_bps;  // MAC-visible data rate

  bool IsOfdm() const {
    return modulation == Modulation::kBpsk || modulation == Modulation::kQpsk ||
           modulation == Modulation::kQam16 || modulation == Modulation::kQam64;
  }

  bool operator==(const WifiMode& other) const { return bit_rate_bps == other.bit_rate_bps &&
                                                        standard == other.standard; }
};

// Channel/PHY-level constants for a standard.
struct PhyTiming {
  Time slot;
  Time sifs;
  uint32_t cw_min;
  uint32_t cw_max;
  double channel_width_hz;   // noise bandwidth
  double frequency_hz;       // carrier, for Friis
  Time max_propagation_delay;  // aCCATime guard baked into the slot; informational

  Time Difs() const { return sifs + 2 * slot; }
  // EIFS (no ACK info): SIFS + ACK at lowest mandatory rate + DIFS.
  Time Eifs(Time ack_duration) const { return sifs + ack_duration + Difs(); }
};

// Returns the timing constants of a standard. For 802.11g, `protection_active`
// selects the b-compatible long slot (20 us) over the short slot (9 us).
PhyTiming TimingFor(PhyStandard standard, bool protection_active = false);

// All modes of a standard, slowest first. 802.11g returns the ERP-OFDM set
// (6..54); its DSSS compatibility rates are available via ModesFor(k80211b).
std::span<const WifiMode> ModesFor(PhyStandard standard);

// The mandatory lowest mode, used for control responses and beacons.
const WifiMode& BaseModeFor(PhyStandard standard);

// The mode control frames (CTS/ACK) answering a frame sent at `mode` must
// use: the highest mandatory rate not exceeding the eliciting frame's rate.
const WifiMode& ControlResponseMode(const WifiMode& mode);

// On-air duration of `bytes` transmitted at `mode`, including preamble/PLCP.
Time FrameDuration(const WifiMode& mode, size_t bytes, bool short_preamble = false);

// Payload-only duration (no preamble), used for NAV arithmetic tests.
Time PayloadDuration(const WifiMode& mode, size_t bytes);

}  // namespace wlansim

#endif  // WLANSIM_PHY_WIFI_MODE_H_
