// The radio-ops HAL: the seam between the shared Channel and any physical
// emitter/receiver.
//
// Everything the channel does — the attach list, the per-link cache, the
// spatial receiver grid, the per-transmission offer loop — is written
// against this small vtable instead of a concrete PHY, in the spirit of the
// RIOT 802.15.4 radio HAL (radio_ops): MAC logic talks to its own PHY,
// the medium talks to RadioDevice, and a new radio technology is one small
// subclass plus a builder registration instead of a bespoke subsystem.
// WifiPhy is the first (and reference) implementation; net/radios.h holds
// the non-WiFi ones (802.15.4-style sensors, LoRa-like duty-cycled
// emitters, the microwave oven).
//
// The attach contract (one registration path):
//  * Channel::Attach(device) is the only way onto a channel. It indexes the
//    device, registers the device's mobility model with the channel's
//    topology generation counter, and installs the channel back-link on the
//    device. Attaching the same device twice throws.
//  * A device that swaps its MobilityModel instance mid-run calls the
//    inherited NotifyMobilityReplaced(); the channel re-registers the
//    counter and invalidates position-derived state. No caller-side
//    channel API is involved.
//  * Instrumentation attaches through the same front door:
//    Channel::AttachProbe observes every scheduled delivery.
//
// Signals on the air are described by SignalParams. The airtime `duration`
// is explicit and authoritative — receivers never need the transmitter's
// modulation tables to know how long the medium is occupied — which is what
// lets radios of different technologies share one channel: a WiFi PHY
// receiving a LoRa chirp sees opaque energy of the right duration, and vice
// versa. `protocol` says which receivers can attempt to decode the frame at
// all; `decodable` is the transmitter-side flag (false for pure-energy
// emitters like the microwave oven, whatever their protocol).

#ifndef WLANSIM_PHY_RADIO_DEVICE_H_
#define WLANSIM_PHY_RADIO_DEVICE_H_

#include <cstdint>
#include <limits>

#include "core/packet.h"
#include "core/time.h"
#include "phy/wifi_mode.h"

namespace wlansim {

class Channel;
class MobilityModel;

// Which receiver family can decode a signal. Receivers treat any
// non-matching protocol as pure energy (interference + CCA busy time).
enum class RadioProtocol : uint8_t {
  kWifi80211,   // IEEE 802.11 DSSS/OFDM frames
  kNoise,       // never decodable: microwave ovens, broadband jammers
  kIeee802154,  // narrowband O-QPSK sensor frames (802.15.4-style)
  kLora,        // LoRa-like chirp frames
};

// Static descriptor of a radio, read by the channel at attach time and per
// transmission. Values must not change over the device's lifetime (retuning
// the channel *number* is dynamic state, exposed separately).
struct RadioCapabilities {
  const char* technology = "wifi";  // human-readable family name
  RadioProtocol protocol = RadioProtocol::kWifi80211;
  double tx_power_dbm = 16.0;
  double frequency_hz = 2.412e9;  // carrier, for path loss
  // Weakest signal the radio can detect at all; informational for
  // transmit-only devices.
  double rx_sensitivity_dbm = -std::numeric_limits<double>::infinity();
  // Transmit-only emitters (jammers) set this false: the channel never
  // offers arrivals to them, saving the fan-out entirely.
  bool can_receive = true;
};

// Everything about an on-air signal except its per-receiver power: carried
// by the channel from the transmit op to every receive op.
struct SignalParams {
  WifiMode mode = BaseModeFor(PhyStandard::k80211b);  // meaningful iff kWifi80211
  bool short_preamble = false;
  // Transmitter-side decodability: false turns the frame into pure energy
  // even for protocol-matched receivers (WifiPhy's transmissions_undecodable).
  bool decodable = true;
  RadioProtocol protocol = RadioProtocol::kWifi80211;
  Time duration;  // authoritative airtime
};

// The SignalParams of an 802.11 frame of `bytes` at `mode` (duration from
// the standard's PLCP arithmetic).
SignalParams MakeWifiSignal(const WifiMode& mode, size_t bytes, bool short_preamble,
                            bool decodable = true);

// The radio-ops vtable. One instance per emitter/receiver on a channel.
class RadioDevice {
 public:
  virtual ~RadioDevice() = default;

  // Capability descriptor op (immutable; see RadioCapabilities).
  virtual RadioCapabilities capabilities() const = 0;

  // Occupancy key: devices tuned to different channel numbers never hear
  // each other. Dynamic — radios may retune mid-run.
  virtual uint8_t channel_number() const = 0;

  // Position op: the mobility model the channel samples at transmit time.
  virtual MobilityModel* mobility() const = 0;

  // Identity used by per-link loss models (MatrixLossModel link keys).
  virtual uint32_t node_id() const = 0;

  // Receive op: the channel delivers an arriving signal at its computed
  // received power. Called only on devices whose capabilities allow
  // reception; the receiver decides decodability from `signal.protocol`.
  //
  // Delivery contract: `packet` is a copy-on-write view — every receiver
  // of one transmission (and the transmitter itself) shares one immutable
  // byte buffer. The view is the receiver's to keep, copy, and mutate
  // freely: byte mutation detaches the buffer first, header/trailer strip
  // is offset-only, and `meta()` is per-view, so nothing a receiver does
  // is observable through any other device's view. Implementations should
  // pass the packet along by move/value as before; copies are refcount
  // bumps, not byte copies.
  virtual void Deliver(Packet packet, const SignalParams& signal, double rx_power_dbm) = 0;

  // The channel this device is attached to (nullptr before Attach).
  Channel* channel() const { return channel_; }

 protected:
  // Part of the attach contract: subclasses call this after replacing their
  // MobilityModel instance so the channel re-registers its topology counter
  // and rebuilds position-derived state. No-op before Attach.
  void NotifyMobilityReplaced();

 private:
  friend class Channel;  // sets channel_ in Attach
  Channel* channel_ = nullptr;
};

}  // namespace wlansim

#endif  // WLANSIM_PHY_RADIO_DEVICE_H_
