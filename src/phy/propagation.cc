#include "phy/propagation.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace wlansim {
namespace {

constexpr double kSpeedOfLight = 299'792'458.0;

// Free-space path loss in dB at distance d (>= some minimum) and frequency f.
double FriisLossDb(double distance_m, double frequency_hz) {
  const double lambda = kSpeedOfLight / frequency_hz;
  return 20.0 * std::log10(4.0 * std::numbers::pi * distance_m / lambda);
}

}  // namespace

double FreeSpaceLossModel::RxPowerDbm(double tx_power_dbm, const Vector3& tx_pos,
                                      const Vector3& rx_pos, double frequency_hz,
                                      uint64_t /*link_id*/) {
  const double d = std::max(tx_pos.DistanceTo(rx_pos), 1.0);
  return tx_power_dbm - FriisLossDb(d, frequency_hz);
}

double FreeSpaceLossModel::MaxRangeMeters(double tx_power_dbm, double frequency_hz,
                                          double cutoff_dbm) const {
  // Invert Friis: loss(d) = 20 log10(4 pi d / lambda), so the largest d with
  // rx >= cutoff is d = (lambda / 4 pi) * 10^((tx - cutoff) / 20). Clamp to
  // the 1 m near-field floor RxPowerDbm applies; the result may be +inf when
  // cutoff is -inf, which callers treat as "no pruning possible".
  const double lambda = kSpeedOfLight / frequency_hz;
  const double d = lambda / (4.0 * std::numbers::pi) *
                   std::pow(10.0, (tx_power_dbm - cutoff_dbm) / 20.0);
  return std::max(d, 1.0);
}

LogDistanceLossModel::LogDistanceLossModel(double exponent, double shadowing_sigma_db,
                                           uint64_t shadowing_seed)
    : exponent_(exponent), sigma_db_(shadowing_sigma_db), rng_(shadowing_seed) {}

double LogDistanceLossModel::RxPowerDbm(double tx_power_dbm, const Vector3& tx_pos,
                                        const Vector3& rx_pos, double frequency_hz,
                                        uint64_t link_id) {
  constexpr double kRefDistance = 1.0;
  const double d = std::max(tx_pos.DistanceTo(rx_pos), kRefDistance);
  double loss = FriisLossDb(kRefDistance, frequency_hz) +
                10.0 * exponent_ * std::log10(d / kRefDistance);
  if (sigma_db_ > 0.0) {
    const double* shadowing = link_shadowing_db_.Find(link_id);
    if (shadowing == nullptr) {
      // First transmission on this link: draw the quasi-static shadowing.
      shadowing = &link_shadowing_db_.InsertOrAssign(link_id, rng_.Normal(0.0, sigma_db_));
    }
    loss += *shadowing;
  }
  return tx_power_dbm - loss;
}

double LogDistanceLossModel::MaxRangeMeters(double tx_power_dbm, double frequency_hz,
                                            double cutoff_dbm) const {
  if (sigma_db_ > 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  // Invert rx = tx - PL(1m) - 10 n log10(d): the allowed excess loss beyond
  // the reference distance bounds d from above.
  const double allowed_db = tx_power_dbm - cutoff_dbm - FriisLossDb(1.0, frequency_hz);
  const double d = std::pow(10.0, allowed_db / (10.0 * exponent_));
  return std::max(d, 1.0);
}

void MatrixLossModel::SetLoss(uint32_t node_a, uint32_t node_b, double loss_db) {
  loss_db_.InsertOrAssign(MakeLinkId(node_a, node_b), loss_db);
  loss_db_.InsertOrAssign(MakeLinkId(node_b, node_a), loss_db);
  BumpMutationEpoch();
}

double MatrixLossModel::RxPowerDbm(double tx_power_dbm, const Vector3& /*tx_pos*/,
                                   const Vector3& /*rx_pos*/, double /*frequency_hz*/,
                                   uint64_t link_id) {
  const double* entry = loss_db_.Find(link_id);
  return tx_power_dbm - (entry == nullptr ? default_loss_db_ : *entry);
}

}  // namespace wlansim
