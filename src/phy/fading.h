// Small-scale fading models, applied as a per-frame power gain (block
// fading): each frame sees one i.i.d. channel realization, the standard
// fidelity level for MAC-layer simulation of rate-adaptation behaviour.

#ifndef WLANSIM_PHY_FADING_H_
#define WLANSIM_PHY_FADING_H_

#include <memory>

#include "core/random.h"

namespace wlansim {

class FadingModel {
 public:
  virtual ~FadingModel() = default;

  // Multiplicative power gain (linear, mean 1) for one frame on one link.
  virtual double SampleGain(Rng& rng) = 0;
};

class NoFading final : public FadingModel {
 public:
  double SampleGain(Rng&) override { return 1.0; }
};

// Rayleigh fading: power gain ~ Exponential(1).
class RayleighFading final : public FadingModel {
 public:
  double SampleGain(Rng& rng) override { return rng.Exponential(1.0); }
};

// Nakagami-m fading: power gain ~ Gamma(m, 1/m) (mean 1). m = 1 is Rayleigh;
// larger m approaches no fading; m < 1 is more severe.
class NakagamiFading final : public FadingModel {
 public:
  explicit NakagamiFading(double m) : m_(m) {}
  double SampleGain(Rng& rng) override;

 private:
  double m_;
};

}  // namespace wlansim

#endif  // WLANSIM_PHY_FADING_H_
