// The shared radio medium.
//
// Connects every attached RadioDevice (phy/radio_device.h — WifiPhy is one
// implementation among several); on each transmission it computes, per
// receiver, the propagation delay and received power (path loss model plus
// an optional per-frame fading draw) and schedules the arrival. Devices
// tuned to different channel numbers do not hear each other
// (adjacent-channel leakage is out of scope); devices of different radio
// technologies on the same channel number hear each other as energy.
//
// Hot paths, in layers:
//
//  - Link cache: received power and delay between two *static* nodes never
//    change, so they are memoized in a sparse per-(tx, rx) LinkState row
//    (FlatHash64 keyed by the index pair) instead of being recomputed
//    through the loss model on every transmission. Rows validate against
//    the endpoints' MobilityModel identity, their position epochs, and the
//    loss model's mutation epoch — a moving node (IsStatic() == false)
//    bypasses the cache, and a teleported static node (SetPosition bumps
//    its epoch) invalidates its rows on the next lookup, with no explicit
//    invalidation traffic. The cache holds only links that transmissions
//    actually touch, so it stays proportional to the live working set, not
//    to devices^2, and Attach is O(1).
//
//  - Reception cutoff: SetRxCutoffDbm installs a channel-wide floor —
//    a transmission whose pre-fading received power at a device is below
//    the cutoff is not delivered at all (no frame, no CCA energy, no
//    interference contribution). This is a *semantic* of the channel,
//    applied identically whether or not the spatial index is enabled; that
//    identity is what makes the indexed path bit-exact. Default: -infinity
//    (deliver everything, the historical behaviour).
//
//  - Spatial receiver index: with a finite cutoff and a loss model that can
//    bound its interference radius (PropagationLossModel::MaxRangeMeters),
//    EnableSpatialIndex makes Send visit only receivers inside the
//    transmitter's radius, found through a uniform grid over static node
//    positions (cell size = the largest attached radius). The grid is
//    rebuilt lazily when the topology generation moves — Attach, a static
//    node's SetPosition (via MobilityModel::RegisterMutationCounter), a
//    mobility-model swap, or a cutoff change all bump it. Moving nodes are
//    never indexed: they sit on a bypass list that every Send visits.
//    Candidates are visited in ascending attach order — the dense loop's
//    order — so the per-receiver fading draws consume the channel RNG in
//    exactly the same sequence and small-topology outputs stay
//    byte-identical to the dense path.
//
//  - Zero-copy fan-out: each Send materializes at most one refcounted
//    DeliveryRecord holding a CoW view of the sender's packet buffer plus
//    the SignalParams; every receiver arrival is a small closure over the
//    record (record pointer, receiver, faded power) that fits the event
//    slab's inline buffer. The old per-receiver cost — a deep buffer copy
//    plus a heap-allocated oversized closure — is gone entirely;
//    SendStats::bytes_copied and EventQueue::HeapFallbacks() both staying
//    at zero is the enforced evidence (bench_m6_fanout --check).
//
// Registration is the attach contract described in radio_device.h: Attach
// is the one entry point for devices (it indexes the device, registers its
// mobility model with the topology counter, and installs the back-link that
// powers RadioDevice::NotifyMobilityReplaced); AttachProbe is the one entry
// point for delivery instrumentation.

#ifndef WLANSIM_PHY_CHANNEL_H_
#define WLANSIM_PHY_CHANNEL_H_

#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "core/flat_hash.h"
#include "core/packet.h"
#include "core/random.h"
#include "core/simulator.h"
#include "phy/fading.h"
#include "phy/propagation.h"
#include "phy/radio_device.h"
#include "phy/wifi_mode.h"

namespace wlansim {

class MobilityModel;

class Channel {
 public:
  // Environment overrides (read once at construction, before any setter):
  // WLANSIM_SPATIAL_INDEX=1 enables the spatial index and
  // WLANSIM_RX_CUTOFF_DBM=<dbm> sets the reception cutoff. They exist so CI
  // can A/B an unmodified scenario binary against the dense path without
  // perturbing its parameters (and therefore its CSV output).
  Channel(Simulator* sim, std::unique_ptr<PropagationLossModel> loss, Rng rng);
  // Folds the fan-out copy counter into HotPathStats (see send_stats()).
  ~Channel();

  // Optional per-frame fading (applied on top of the loss model, never
  // cached). Setting it does not disturb the link cache.
  void SetFading(std::unique_ptr<FadingModel> fading) { fading_ = std::move(fading); }

  // Registers `device` on this medium (the attach contract, see the header
  // comment). Throws std::invalid_argument if the device is already
  // attached. The device must outlive the channel's last Send.
  void Attach(RadioDevice* device);

  // Broadcasts `packet` from `sender` (which must be attached). Called by
  // the transmit op of every RadioDevice implementation.
  void Send(RadioDevice* sender, const Packet& packet, const SignalParams& signal);

  // Channel-wide reception floor in dBm (see the header comment). Applies
  // to the pre-fading received power; receivers exactly at the cutoff are
  // still delivered (>= compare).
  void SetRxCutoffDbm(double dbm) {
    rx_cutoff_dbm_ = dbm;
    ++topology_generation_;
  }
  double rx_cutoff_dbm() const { return rx_cutoff_dbm_; }

  // Spatial receiver index on/off. Purely an acceleration structure: with
  // the cutoff semantics fixed, enabling it never changes which receivers
  // hear a transmission, their received powers, delays, or any RNG draw.
  void EnableSpatialIndex(bool on) { spatial_enabled_ = on; }
  bool spatial_index_enabled() const { return spatial_enabled_; }

  // Built-in loss models bump their MutationEpoch on mid-run edits (e.g.
  // MatrixLossModel::SetLoss), which invalidates memoized rows
  // automatically. A user-defined model that mutates without bumping must
  // call InvalidateLinkCache() instead.
  PropagationLossModel& loss_model() { return *loss_; }

  // Drops every memoized link row; the next transmission recomputes through
  // the loss model.
  void InvalidateLinkCache() { link_cache_.Clear(); }

  // Link-cache hit/miss counters (diagnostics and cache tests).
  struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;  // includes uncacheable (moving-endpoint) links
  };
  const CacheStats& cache_stats() const { return cache_stats_; }

  // Transmission fan-out counters. `offers` and `sends` are invariant
  // between the dense and indexed paths (the differential CI gate relies on
  // that); the remaining counters describe how much work each path did.
  struct SendStats {
    uint64_t sends = 0;               // Send() calls
    uint64_t offers = 0;              // receiver arrivals actually scheduled
    uint64_t candidates_visited = 0;  // receivers examined (incl. suppressed)
    uint64_t cutoff_suppressed = 0;   // visited but below the cutoff
    uint64_t grid_queries = 0;        // sends answered by the spatial index
    uint64_t grid_rebuilds = 0;
    // Packet bytes deep-copied (CoW faults) inside Send's fan-out loop.
    // The zero-copy contract: every receiver gets a view of one shared
    // immutable buffer, so this stays 0 on the steady-state path — the
    // m6 bench gates on it (folded into HotPathStats at destruction).
    uint64_t bytes_copied = 0;
  };
  const SendStats& send_stats() const { return send_stats_; }

  // Test/trace hook, attached through the same front door as devices:
  // observes every scheduled delivery with its *pre-fading* received power
  // and propagation delay (the deterministic link quantities the
  // differential tests compare). Null detaches; not a hot-path feature.
  using SendProbe = std::function<void(const RadioDevice* tx, const RadioDevice* rx,
                                       double rx_dbm, Time delay)>;
  void AttachProbe(SendProbe probe) { send_probe_ = std::move(probe); }

 private:
  friend class RadioDevice;  // NotifyMobilityReplaced -> OnDeviceMobilityReplaced

  // Shared per-transmission delivery state: ONE intrusively refcounted
  // record per Send holds the packet view (sharing the sender's buffer)
  // and the SignalParams; every receiver's delivery closure carries just a
  // record pointer + receiver + power, small enough for the event slab's
  // inline buffer. Both defined in channel.cc.
  struct DeliveryRecord;
  struct DeliveryClosure;

  // One memoized (tx, rx) link. Valid while both endpoints still use the
  // same MobilityModel instances and neither position epoch nor the loss
  // model's mutation epoch has moved.
  struct LinkState {
    double rx_dbm = 0.0;  // pre-fading received power
    Time delay;
    const MobilityModel* tx_mobility = nullptr;  // nullptr = never filled
    const MobilityModel* rx_mobility = nullptr;
    uint64_t tx_epoch = 0;
    uint64_t rx_epoch = 0;
    uint64_t loss_epoch = 0;
  };

  // Per-Send state shared by every receiver visit.
  struct TxContext {
    RadioDevice* sender = nullptr;
    const Packet* packet = nullptr;
    const SignalParams* signal = nullptr;
    Time now;
    double tx_power_dbm = 0.0;
    double frequency = 0.0;
    uint8_t tx_channel_number = 0;
    uint32_t tx_node_id = 0;
    MobilityModel* tx_mobility = nullptr;
    bool tx_static = false;
    uint64_t tx_epoch = 0;
    uint64_t loss_epoch = 0;
    uint32_t tx_index = 0;
    Vector3 tx_pos;
    bool tx_pos_known = false;
    // Created lazily by the first offer (a transmission nobody hears
    // allocates nothing); Send drops its reference after the fan-out.
    DeliveryRecord* record = nullptr;
  };

  static uint64_t LinkKey(uint32_t tx_index, uint32_t rx_index) {
    return (static_cast<uint64_t>(tx_index) << 32) | rx_index;
  }
  static uint64_t CellKey(int64_t cx, int64_t cy) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(cx)) << 32) |
           static_cast<uint32_t>(cy);
  }

  // Part of the attach contract, reached only through
  // RadioDevice::NotifyMobilityReplaced(): re-registers the topology
  // counter on the device's new mobility model and forces a grid rebuild.
  void OnDeviceMobilityReplaced(RadioDevice* device);

  // The shared per-receiver body of Send: cache lookup or loss-model
  // computation, the cutoff check, the fading draw, and arrival scheduling.
  // Both the dense loop and the indexed loop funnel through it, in the same
  // receiver order — that is the bit-exactness argument in one sentence.
  void OfferTo(size_t rx_index, TxContext& ctx);

  // True when Send may use the grid: index enabled, finite cutoff, and the
  // loss model bounded every attached transmitter's radius at last rebuild.
  bool GridUsable() const { return spatial_enabled_ && cell_size_ > 0.0; }
  bool GridCurrent() const {
    return grid_generation_ == topology_generation_ && grid_loss_epoch_ == loss_->MutationEpoch();
  }
  void RebuildGrid();

  Simulator* sim_;
  std::unique_ptr<PropagationLossModel> loss_;
  std::unique_ptr<FadingModel> fading_;
  ConstantSpeedDelayModel delay_model_;
  Rng rng_;
  std::vector<RadioDevice*> devices_;
  std::vector<uint8_t> device_can_rx_;  // capabilities().can_receive, cached at attach
  FlatHash64<uint32_t> device_index_;   // RadioDevice* -> index into devices_
  FlatHash64<LinkState> link_cache_;    // keyed by LinkKey(tx, rx); sparse
  CacheStats cache_stats_;

  double rx_cutoff_dbm_ = -std::numeric_limits<double>::infinity();
  bool spatial_enabled_ = false;

  // Spatial grid over static devices. cell_size_ <= 0 means "no usable
  // grid" (unbounded radius or nothing attached): Send stays on the dense
  // loop.
  double cell_size_ = 0.0;
  FlatHash64<std::vector<uint32_t>> grid_cells_;  // CellKey -> device indices (ascending)
  std::vector<uint32_t> moving_;                  // non-static devices, ascending
  uint64_t topology_generation_ = 0;  // bumped by Attach/teleports/swaps/cutoff
  uint64_t grid_generation_ = 0;      // topology generation the grid was built at
  uint64_t grid_loss_epoch_ = 0;      // loss MutationEpoch at build
  bool grid_built_ = false;
  std::vector<uint32_t> scratch_candidates_;

  SendStats send_stats_;
  SendProbe send_probe_;
};

}  // namespace wlansim

#endif  // WLANSIM_PHY_CHANNEL_H_
