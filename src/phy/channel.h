// The shared radio medium.
//
// Connects every attached PHY; on each transmission it computes, per
// receiver, the propagation delay and received power (path loss model plus
// an optional per-frame fading draw) and schedules the arrival. PHYs tuned
// to different channel numbers do not hear each other (adjacent-channel
// leakage is out of scope).
//
// Hot path: received power and delay between two *static* nodes never
// change, so they are memoized in a per-(tx, rx) LinkCache row instead of
// being recomputed through the loss model on every transmission. Rows
// validate against the endpoints' MobilityModel identity and position
// epoch — a moving node (IsStatic() == false) bypasses the cache, and a
// teleported static node (SetPosition bumps its epoch) invalidates its rows
// on the next lookup, with no explicit invalidation traffic.

#ifndef WLANSIM_PHY_CHANNEL_H_
#define WLANSIM_PHY_CHANNEL_H_

#include <memory>
#include <vector>

#include "core/flat_hash.h"
#include "core/packet.h"
#include "core/random.h"
#include "core/simulator.h"
#include "phy/fading.h"
#include "phy/propagation.h"
#include "phy/wifi_mode.h"

namespace wlansim {

class MobilityModel;
class WifiPhy;

class Channel {
 public:
  Channel(Simulator* sim, std::unique_ptr<PropagationLossModel> loss, Rng rng);

  // Optional per-frame fading (applied on top of the loss model, never
  // cached). Setting it does not disturb the link cache.
  void SetFading(std::unique_ptr<FadingModel> fading) { fading_ = std::move(fading); }

  void Attach(WifiPhy* phy);

  // Broadcasts `packet` from `sender`. Called by WifiPhy::StartTx.
  void Send(WifiPhy* sender, const Packet& packet, const WifiMode& mode, bool short_preamble);

  // Built-in loss models bump their MutationEpoch on mid-run edits (e.g.
  // MatrixLossModel::SetLoss), which invalidates memoized rows
  // automatically. A user-defined model that mutates without bumping must
  // call InvalidateLinkCache() instead.
  PropagationLossModel& loss_model() { return *loss_; }

  // Drops every memoized link row; the next transmission recomputes through
  // the loss model.
  void InvalidateLinkCache() {
    link_cache_.assign(link_cache_.size(), LinkState{});
  }

  // Link-cache hit/miss counters (diagnostics and cache tests).
  struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;  // includes uncacheable (moving-endpoint) links
  };
  const CacheStats& cache_stats() const { return cache_stats_; }

 private:
  // One memoized (tx, rx) link. Valid while both endpoints still use the
  // same MobilityModel instances and neither position epoch nor the loss
  // model's mutation epoch has moved.
  struct LinkState {
    double rx_dbm = 0.0;  // pre-fading received power
    Time delay;
    const MobilityModel* tx_mobility = nullptr;  // nullptr = never filled
    const MobilityModel* rx_mobility = nullptr;
    uint64_t tx_epoch = 0;
    uint64_t rx_epoch = 0;
    uint64_t loss_epoch = 0;
  };

  Simulator* sim_;
  std::unique_ptr<PropagationLossModel> loss_;
  std::unique_ptr<FadingModel> fading_;
  ConstantSpeedDelayModel delay_model_;
  Rng rng_;
  std::vector<WifiPhy*> phys_;
  FlatHash64<uint32_t> phy_index_;    // WifiPhy* -> index into phys_
  std::vector<LinkState> link_cache_;  // phys_.size()^2 rows, tx-major
  CacheStats cache_stats_;
};

}  // namespace wlansim

#endif  // WLANSIM_PHY_CHANNEL_H_
