// The shared radio medium.
//
// Connects every attached PHY; on each transmission it computes, per
// receiver, the propagation delay and received power (path loss model plus
// an optional per-frame fading draw) and schedules the arrival. PHYs tuned
// to different channel numbers do not hear each other (adjacent-channel
// leakage is out of scope).

#ifndef WLANSIM_PHY_CHANNEL_H_
#define WLANSIM_PHY_CHANNEL_H_

#include <memory>
#include <vector>

#include "core/packet.h"
#include "core/random.h"
#include "core/simulator.h"
#include "phy/fading.h"
#include "phy/propagation.h"
#include "phy/wifi_mode.h"

namespace wlansim {

class WifiPhy;

class Channel {
 public:
  Channel(Simulator* sim, std::unique_ptr<PropagationLossModel> loss, Rng rng);

  // Optional per-frame fading (applied on top of the loss model).
  void SetFading(std::unique_ptr<FadingModel> fading) { fading_ = std::move(fading); }

  void Attach(WifiPhy* phy);

  // Broadcasts `packet` from `sender`. Called by WifiPhy::StartTx.
  void Send(WifiPhy* sender, const Packet& packet, const WifiMode& mode, bool short_preamble);

  PropagationLossModel& loss_model() { return *loss_; }

 private:
  Simulator* sim_;
  std::unique_ptr<PropagationLossModel> loss_;
  std::unique_ptr<FadingModel> fading_;
  ConstantSpeedDelayModel delay_model_;
  Rng rng_;
  std::vector<WifiPhy*> phys_;
};

}  // namespace wlansim

#endif  // WLANSIM_PHY_CHANNEL_H_
