#include "phy/wifi_phy.h"

#include <cassert>
#include <utility>

#include "core/logging.h"
#include "core/units.h"
#include "phy/channel.h"

namespace wlansim {

WifiPhy::WifiPhy(Simulator* sim, Config config, Rng rng)
    : sim_(sim),
      config_(config),
      rng_(rng),
      noise_w_(ThermalNoiseW(TimingFor(config.standard).channel_width_hz,
                             config.noise_figure_db)) {}

void WifiPhy::AttachChannel(Channel* channel, uint32_t node_id, MobilityModel* mobility) {
  // Identity and position must be in place before Attach: the channel reads
  // mobility() and capabilities() while registering.
  node_id_ = node_id;
  mobility_ = mobility;
  channel->Attach(this);
}

void WifiPhy::SetMobility(MobilityModel* mobility) {
  mobility_ = mobility;
  NotifyMobilityReplaced();
}

RadioCapabilities WifiPhy::capabilities() const {
  RadioCapabilities caps;
  caps.technology = config_.transmissions_undecodable ? "ism-energy" : "wifi";
  caps.protocol = RadioProtocol::kWifi80211;
  caps.tx_power_dbm = config_.tx_power_dbm;
  caps.frequency_hz = timing().frequency_hz;
  caps.rx_sensitivity_dbm = config_.preamble_detect_dbm;
  caps.can_receive = true;
  return caps;
}

void WifiPhy::Deliver(Packet packet, const SignalParams& signal, double rx_power_dbm) {
  if (signal.protocol != RadioProtocol::kWifi80211) {
    // Foreign-technology signal: opaque energy for the signal's airtime.
    const Time now = sim_->Now();
    interference_.AddSignal(now, now + signal.duration, DbmToW(rx_power_dbm));
    ReevaluateCca();
    return;
  }
  StartRx(std::move(packet), signal.mode, signal.short_preamble, rx_power_dbm, signal.decodable);
}

uint64_t WifiPhy::HeaderBits(const WifiMode& mode) {
  // OFDM SIGNAL field: 24 bits. DSSS PLCP header: 48 bits.
  return mode.IsOfdm() ? 24 : 48;
}

void WifiPhy::SetState(State next) {
  // Account the time spent in the state we are leaving.
  const Time now = sim_->Now();
  const Time elapsed = now - last_state_change_;
  switch (state_) {
    case State::kTx:
      state_times_.tx += elapsed;
      break;
    case State::kRx:
      state_times_.rx += elapsed;
      break;
    case State::kIdle:
    case State::kCcaBusy:
      state_times_.listen += elapsed;
      break;
    case State::kSleep:
      state_times_.sleep += elapsed;
      break;
  }
  last_state_change_ = now;
  state_ = next;
}

WifiPhy::StateTimes WifiPhy::GetStateTimes(Time now) const {
  StateTimes t = state_times_;
  const Time elapsed = now - last_state_change_;
  switch (state_) {
    case State::kTx:
      t.tx += elapsed;
      break;
    case State::kRx:
      t.rx += elapsed;
      break;
    case State::kIdle:
    case State::kCcaBusy:
      t.listen += elapsed;
      break;
    case State::kSleep:
      t.sleep += elapsed;
      break;
  }
  return t;
}

void WifiPhy::SetSleep(bool sleep) {
  if (!sleep) {
    sleep_pending_ = false;
  }
  if (sleep == (state_ == State::kSleep)) {
    return;
  }
  if (sleep) {
    if (state_ == State::kTx) {
      // A transmission (typically the ACK for the frame that triggered the
      // doze decision) is still on the air: power down when it completes.
      sleep_pending_ = true;
      return;
    }
    if (current_rx_.has_value()) {
      AbortReception();
    }
    cca_end_event_.Cancel();
    SetState(State::kSleep);
  } else {
    SetState(State::kIdle);
    ReevaluateCca();
  }
}

void WifiPhy::StartTx(Packet packet, const WifiMode& mode) {
  assert(channel() != nullptr);
  assert(state_ != State::kSleep && "MAC must wake the radio before transmitting");
  sleep_pending_ = false;
  const Time now = sim_->Now();

  if (state_ == State::kRx && current_rx_.has_value()) {
    // Transmit overrides reception (the MAC should avoid this; control
    // responses are exempt from CCA by design, e.g. ACK after SIFS).
    AbortReception();
  }
  cca_end_event_.Cancel();

  const Time duration = FrameDuration(mode, packet.size(), config_.short_preamble);
  SetState(State::kTx);
  tx_end_ = now + duration;
  ++counters_.tx_frames;
  if (listener_ != nullptr) {
    listener_->NotifyTxStart(duration);
  }
  channel()->Send(this, packet,
                  MakeWifiSignal(mode, packet.size(), config_.short_preamble,
                                 !config_.transmissions_undecodable));
  sim_->Schedule(duration, [this] { EndTx(); });
}

void WifiPhy::EndTx() {
  if (sleep_pending_) {
    sleep_pending_ = false;
    SetState(State::kSleep);
    return;
  }
  SetState(State::kIdle);
  ReevaluateCca();
}

bool WifiPhy::CanDecode(const WifiMode& mode) const {
  // A DSSS-only receiver (802.11 / 802.11b) cannot demodulate OFDM: the
  // frame is pure energy to it. OFDM receivers in the 2.4 GHz band (11g) are
  // required to decode DSSS; 11a is 5 GHz-only but channel numbering already
  // isolates bands, so cross-family DSSS reception is allowed there too.
  if (mode.IsOfdm() && (config_.standard == PhyStandard::k80211 ||
                        config_.standard == PhyStandard::k80211b)) {
    return false;
  }
  return true;
}

void WifiPhy::StartRx(Packet packet, const WifiMode& mode, bool short_preamble,
                      double rx_power_dbm, bool decodable) {
  const Time now = sim_->Now();
  const Time duration = FrameDuration(mode, packet.size(), short_preamble);
  // The tracker expires ended signals itself (AddSignal triggers the
  // legacy-compatible purge); no periodic Cleanup call needed here.
  const uint64_t signal_id = interference_.AddSignal(now, now + duration, DbmToW(rx_power_dbm));

  if (!decodable || !CanDecode(mode)) {
    ReevaluateCca();  // energy-only: may hold CCA busy, never locks rx
    return;
  }

  switch (state_) {
    case State::kSleep:
      ++counters_.rx_dropped_sleeping;
      return;
    case State::kTx:
      ++counters_.rx_dropped_busy;  // half-duplex: deaf while transmitting
      return;
    case State::kRx: {
      assert(current_rx_.has_value());
      const bool in_preamble = now < current_rx_->payload_start;
      const double current_w = DbmToW(current_rx_->rx_power_dbm);
      const double newcomer_sinr = DbmToW(rx_power_dbm) / (noise_w_ + current_w);
      if (in_preamble && rx_power_dbm >= config_.preamble_detect_dbm &&
          RatioToDb(newcomer_sinr) >= config_.capture_margin_db) {
        // Capture: drop the current frame, lock onto the stronger one.
        ++counters_.rx_captured;
        AbortReception();
        BeginReception(std::move(packet), mode, short_preamble, rx_power_dbm, signal_id);
      } else {
        ++counters_.rx_dropped_busy;  // contributes interference only
      }
      return;
    }
    case State::kIdle:
    case State::kCcaBusy:
      if (rx_power_dbm >= config_.preamble_detect_dbm) {
        BeginReception(std::move(packet), mode, short_preamble, rx_power_dbm, signal_id);
      } else {
        ReevaluateCca();
      }
      return;
  }
}

void WifiPhy::BeginReception(Packet packet, const WifiMode& mode, bool short_preamble,
                             double rx_power_dbm, uint64_t signal_id) {
  const Time now = sim_->Now();
  const Time duration = FrameDuration(mode, packet.size(), short_preamble);
  const Time payload = PayloadDuration(mode, packet.size());

  cca_end_event_.Cancel();
  Reception rx;
  rx.signal_id = signal_id;
  rx.packet = std::move(packet);
  rx.mode = mode;
  rx.start = now;
  rx.payload_start = now + (duration - payload);
  rx.end = now + duration;
  rx.rx_power_dbm = rx_power_dbm;
  current_rx_ = std::move(rx);
  // Guard the reception's own signal record against tracker expiry for the
  // duration of the reception (EndReception still needs its power).
  interference_.PinSignal(signal_id);
  SetState(State::kRx);
  if (listener_ != nullptr) {
    listener_->NotifyRxStart(duration);
  }
  current_rx_->end_event = sim_->Schedule(duration, [this] { EndReception(); });
}

void WifiPhy::AbortReception() {
  assert(current_rx_.has_value());
  current_rx_->end_event.Cancel();
  current_rx_.reset();
  interference_.UnpinSignal();
  if (listener_ != nullptr) {
    listener_->NotifyRxEnd(false);
  }
}

void WifiPhy::EndReception() {
  assert(current_rx_.has_value());
  Reception rx = std::move(*current_rx_);
  current_rx_.reset();

  InterferenceTracker::ReceptionPlan plan;
  plan.signal_id = rx.signal_id;
  plan.start = rx.start;
  plan.payload_start = rx.payload_start;
  plan.end = rx.end;
  const WifiMode& base = BaseModeFor(rx.mode.standard);
  plan.header_mode = base;
  plan.payload_mode = rx.mode;
  plan.header_bits = HeaderBits(rx.mode);
  plan.payload_bits = rx.mode.IsOfdm() ? 16 + 8 * rx.packet.size() + 6 : 8 * rx.packet.size();
  plan.noise_w = noise_w_;

  // One shared chunk sweep yields both the success probability and the
  // payload-average SINR (bit-identical to evaluating them separately).
  const InterferenceTracker::ReceptionStats rx_stats =
      interference_.EvaluateReception(plan, error_model_);
  interference_.UnpinSignal();
  const bool ok = rng_.Chance(rx_stats.success_probability);

  RxInfo info;
  info.rssi_dbm = rx.rx_power_dbm;
  info.sinr = rx_stats.mean_sinr;
  info.mode = rx.mode;
  info.success = ok;

  if (ok) {
    ++counters_.rx_ok;
  } else {
    ++counters_.rx_error;
  }

  SetState(State::kIdle);
  ReevaluateCca();
  if (listener_ != nullptr) {
    listener_->NotifyRxEnd(ok);
  }
  if (receive_cb_) {
    receive_cb_(std::move(rx.packet), info);
  }
}

void WifiPhy::ReevaluateCca() {
  if (state_ == State::kRx || state_ == State::kTx || state_ == State::kSleep) {
    return;
  }
  const Time now = sim_->Now();
  const double threshold_w = DbmToW(config_.ed_threshold_dbm);
  const double total = interference_.TotalPowerW(now);
  if (total < threshold_w) {
    SetState(State::kIdle);
    return;
  }
  const Time until = interference_.TimeWhenPowerBelow(now, threshold_w);
  if (state_ == State::kCcaBusy && until <= cca_busy_until_) {
    return;  // already covered by an earlier notification
  }
  SetState(State::kCcaBusy);
  cca_busy_until_ = until;
  if (listener_ != nullptr) {
    listener_->NotifyCcaBusyStart(until - now);
  }
  cca_end_event_.Cancel();
  cca_end_event_ = sim_->Schedule(until - now, [this] { ReevaluateCca(); });
}

void WifiPhy::SetChannelNumber(uint8_t number) {
  if (number == config_.channel_number) {
    return;
  }
  if (current_rx_.has_value()) {
    AbortReception();
    SetState(State::kIdle);
  }
  cca_end_event_.Cancel();
  config_.channel_number = number;
  // Signals from the old channel are irrelevant now.
  interference_.Cleanup(Time::Max());
  if (state_ == State::kCcaBusy) {
    SetState(State::kIdle);
  }
}

}  // namespace wlansim
