// Thread-safe named latency tracking for long-running services: one
// fixed-bin Histogram plus an exact Welford Summary per operation name.
// The query server records per-query service latencies through this, so
// the serving layer measures itself with the same stats machinery the
// simulation results use (histogram bin quantiles + exact mean/min/max).

#ifndef WLANSIM_STATS_LATENCY_RECORDER_H_
#define WLANSIM_STATS_LATENCY_RECORDER_H_

#include <cstddef>
#include <map>
#include <mutex>
#include <string>

#include "stats/histogram.h"
#include "stats/summary.h"

namespace wlansim {

class LatencyRecorder {
 public:
  // Every tracked operation shares one bin geometry covering
  // [lo, lo + bin_count*bin_width) in the caller's unit (the query server
  // uses microseconds). Samples beyond the range still count exactly in
  // the summary; the histogram parks them in its overflow bucket.
  LatencyRecorder(double lo, double bin_width, size_t bin_count)
      : lo_(lo), bin_width_(bin_width), bin_count_(bin_count) {}

  // Records one sample under `name` (tracks are created on first use).
  void Record(const std::string& name, double value);

  // One line per tracked name, sorted:
  //   latency <name>: count=N mean=M min=.. max=.. p50=.. p90=.. p99=..
  // The quantiles are interpolated histogram-bin estimates; count/mean/
  // min/max are exact. Empty string when nothing was recorded.
  std::string Report() const;

  uint64_t TotalCount() const;

 private:
  struct Track {
    Histogram histogram;
    Summary summary;
  };

  double lo_;
  double bin_width_;
  size_t bin_count_;
  mutable std::mutex mu_;
  std::map<std::string, Track> tracks_;
};

}  // namespace wlansim

#endif  // WLANSIM_STATS_LATENCY_RECORDER_H_
