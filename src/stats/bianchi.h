// Bianchi's analytic model of DCF saturation throughput (G. Bianchi, "
// Performance Analysis of the IEEE 802.11 Distributed Coordination
// Function", JSAC 2000).
//
// Solves the two-equation fixed point
//     tau = 2(1-2p) / ((1-2p)(W+1) + p W (1 - (2p)^m))
//     p   = 1 - (1 - tau)^(n-1)
// and evaluates normalized/absolute saturation throughput for basic access
// and RTS/CTS given slot-level timing. Used by the F2 harness to print the
// analytic column next to the simulated one, and by tests as an independent
// oracle for the simulated MAC.

#ifndef WLANSIM_STATS_BIANCHI_H_
#define WLANSIM_STATS_BIANCHI_H_

#include <cstdint>

#include "core/time.h"

namespace wlansim {

struct BianchiParams {
  uint32_t n_stations = 10;
  uint32_t cw_min = 31;           // W - 1 (window of CWmin slots + 1)
  uint32_t max_backoff_stages = 5;  // m: CWmax = 2^m (CWmin+1) - 1
  Time slot;
  Time sifs;
  Time difs;
  // On-air durations for the payload exchange at the chosen rates.
  Time data_duration;   // PLCP + MAC header + payload
  Time ack_duration;
  Time rts_duration;    // only used for RTS/CTS mode
  Time cts_duration;
  double payload_bits = 8.0 * 1500.0;
  Time propagation = Time::Micros(1);
};

struct BianchiResult {
  double tau = 0.0;                 // per-station transmit probability/slot
  double collision_probability = 0.0;  // p
  double throughput_bps_basic = 0.0;
  double throughput_bps_rtscts = 0.0;
};

// Solves the fixed point by bisection on tau (monotone in p).
BianchiResult SolveBianchi(const BianchiParams& params);

}  // namespace wlansim

#endif  // WLANSIM_STATS_BIANCHI_H_
