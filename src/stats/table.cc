#include "stats/table.h"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace wlansim {

void Table::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::ToString() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    out << '\n';
  };

  emit_row(columns_);
  out << "|";
  for (size_t c = 0; c < columns_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

std::string Table::ToCsv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      return cell;
    }
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') {
        quoted += '"';
      }
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };

  std::ostringstream out;
  for (size_t c = 0; c < columns_.size(); ++c) {
    out << (c ? "," : "") << quote(columns_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c ? "," : "") << quote(row[c]);
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace wlansim
