#include "stats/bianchi.h"

#include <cmath>

namespace wlansim {
namespace {

// tau as a function of conditional collision probability p (Bianchi eq. 7).
double TauOfP(double p, uint32_t w_min_slots, uint32_t m) {
  const double w = static_cast<double>(w_min_slots) + 1.0;  // W = CWmin + 1
  const double two_p = 2.0 * p;
  const double num = 2.0 * (1.0 - two_p);
  const double den = (1.0 - two_p) * (w + 1.0) + p * w * (1.0 - std::pow(two_p, m));
  return num / den;
}

}  // namespace

BianchiResult SolveBianchi(const BianchiParams& params) {
  const auto n = static_cast<double>(params.n_stations);

  // Bisection on p in [0, 1): f(p) = p - (1 - (1 - tau(p))^(n-1)) is
  // monotone increasing through the unique root.
  double lo = 0.0;
  double hi = 0.999999;
  double p = 0.0;
  double tau = 0.0;
  for (int iter = 0; iter < 200; ++iter) {
    p = 0.5 * (lo + hi);
    tau = TauOfP(p, params.cw_min, params.max_backoff_stages);
    const double implied = 1.0 - std::pow(1.0 - tau, n - 1.0);
    if (implied > p) {
      lo = p;
    } else {
      hi = p;
    }
  }

  BianchiResult result;
  result.tau = tau;
  result.collision_probability = p;

  // Slot-type probabilities (Bianchi §4).
  const double p_tr = 1.0 - std::pow(1.0 - tau, n);            // some transmission
  const double p_s = n * tau * std::pow(1.0 - tau, n - 1.0) / p_tr;  // success | tx

  const double sigma = params.slot.seconds();
  const double sifs = params.sifs.seconds();
  const double difs = params.difs.seconds();
  const double delta = params.propagation.seconds();
  const double t_data = params.data_duration.seconds();
  const double t_ack = params.ack_duration.seconds();
  const double t_rts = params.rts_duration.seconds();
  const double t_cts = params.cts_duration.seconds();

  // Basic access: success = DATA + SIFS + ACK + DIFS; collision = DATA + DIFS
  // (the longest colliding frame holds the medium).
  const double ts_basic = t_data + sifs + t_ack + difs + 2 * delta;
  const double tc_basic = t_data + difs + delta;
  // RTS/CTS: success adds the handshake; collision costs only the RTS.
  const double ts_rts = t_rts + sifs + t_cts + sifs + t_data + sifs + t_ack + difs + 4 * delta;
  const double tc_rts = t_rts + difs + delta;

  auto throughput = [&](double ts, double tc) {
    const double numerator = p_s * p_tr * params.payload_bits;
    const double denominator =
        (1.0 - p_tr) * sigma + p_tr * p_s * ts + p_tr * (1.0 - p_s) * tc;
    return numerator / denominator;
  };

  result.throughput_bps_basic = throughput(ts_basic, tc_basic);
  result.throughput_bps_rtscts = throughput(ts_rts, tc_rts);
  return result;
}

}  // namespace wlansim
