// Console table / CSV writer shared by the benchmark harnesses so every
// experiment prints its rows in one uniform, diffable format.

#ifndef WLANSIM_STATS_TABLE_H_
#define WLANSIM_STATS_TABLE_H_

#include <string>
#include <vector>

namespace wlansim {

class Table {
 public:
  explicit Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

  // Adds a row; the cell count must equal the column count.
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);

  // Renders an aligned ASCII table.
  std::string ToString() const;

  // Renders RFC-4180-ish CSV (cells containing commas/quotes get quoted).
  std::string ToCsv() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wlansim

#endif  // WLANSIM_STATS_TABLE_H_
