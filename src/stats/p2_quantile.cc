#include "stats/p2_quantile.h"

#include <algorithm>
#include <cmath>

namespace wlansim {

P2Quantile::P2Quantile(double q) : q_(std::clamp(q, 0.0, 1.0)) {
  desired_inc_[0] = 0.0;
  desired_inc_[1] = q_ / 2.0;
  desired_inc_[2] = q_;
  desired_inc_[3] = (1.0 + q_) / 2.0;
  desired_inc_[4] = 1.0;
}

void P2Quantile::Add(double x) {
  if (count_ < 5) {
    height_[count_] = x;
    ++count_;
    std::sort(height_, height_ + count_);
    if (count_ == 5) {
      for (int i = 0; i < 5; ++i) {
        pos_[i] = static_cast<double>(i + 1);
        // Desired marker i position after n observations is 1 + (n-1) *
        // desired_inc_[i]; seeded here at n = 5.
        desired_[i] = 1.0 + 4.0 * desired_inc_[i];
      }
    }
    return;
  }

  // Locate the cell [height_[k], height_[k+1]) containing x, extending the
  // extreme markers when x falls outside the current range.
  int k;
  if (x < height_[0]) {
    height_[0] = x;
    k = 0;
  } else if (x >= height_[4]) {
    height_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= height_[k + 1]) {
      ++k;
    }
  }
  for (int i = k + 1; i < 5; ++i) {
    pos_[i] += 1.0;
  }
  for (int i = 0; i < 5; ++i) {
    desired_[i] += desired_inc_[i];
  }
  ++count_;

  // Nudge the three interior markers toward their desired positions, one
  // step at a time, with the P-square parabolic predictor; fall back to
  // linear interpolation when the parabola would leave (height_[i-1],
  // height_[i+1]) — the adjustment must preserve marker monotonicity.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      const double sign = d >= 0 ? 1.0 : -1.0;
      const double np = pos_[i + 1];
      const double nm = pos_[i - 1];
      const double n = pos_[i];
      const double hp = height_[i + 1];
      const double hm = height_[i - 1];
      const double h = height_[i];
      double candidate =
          h + sign / (np - nm) *
                  ((n - nm + sign) * (hp - h) / (np - n) + (np - n - sign) * (h - hm) / (n - nm));
      if (candidate <= hm || candidate >= hp) {
        // Linear step toward the neighbour in the direction of travel.
        const int j = sign > 0 ? i + 1 : i - 1;
        candidate = h + sign * (height_[j] - h) / (pos_[j] - n);
      }
      height_[i] = candidate;
      pos_[i] += sign;
    }
  }
}

double P2Quantile::Value() const {
  if (count_ == 0) {
    return 0.0;
  }
  if (count_ <= 5) {
    // Exact type-7 interpolated quantile of the sorted prefix, matching
    // ExactQuantile so small streams agree with batch aggregation.
    const double h = static_cast<double>(count_ - 1) * q_;
    const auto lo = static_cast<uint64_t>(h);
    if (lo + 1 >= count_) {
      return height_[count_ - 1];
    }
    const double frac = h - static_cast<double>(lo);
    return height_[lo] + frac * (height_[lo + 1] - height_[lo]);
  }
  return height_[2];
}

}  // namespace wlansim
