// Streaming quantile estimation with the P-square algorithm (Jain &
// Chlamtac, CACM 1985): five markers track the target quantile in O(1)
// memory and O(1) time per observation, so campaign quantiles survive
// result streaming where the sample itself is never materialized. The first
// five observations are stored and the estimate is exact; from the sixth on
// the markers are nudged with parabolic (falling back to linear)
// interpolation.

#ifndef WLANSIM_STATS_P2_QUANTILE_H_
#define WLANSIM_STATS_P2_QUANTILE_H_

#include <cstdint>

namespace wlansim {

class P2Quantile {
 public:
  // q in [0, 1]; e.g. 0.5 for the median, 0.95 for the 95th percentile.
  explicit P2Quantile(double q);

  void Add(double x);

  // Current estimate. Exact (type-7 interpolated, matching ExactQuantile)
  // while count() <= 5; the P-square marker estimate afterwards. 0 before
  // any observation.
  double Value() const;

  uint64_t count() const { return count_; }
  double quantile() const { return q_; }

 private:
  double q_;
  uint64_t count_ = 0;
  // Marker heights (estimated order statistics), actual integer positions,
  // and desired (fractional) positions, in marker order.
  double height_[5] = {};
  double pos_[5] = {};
  double desired_[5] = {};
  double desired_inc_[5] = {};
};

}  // namespace wlansim

#endif  // WLANSIM_STATS_P2_QUANTILE_H_
