// Time-bucketed series (e.g. throughput over time for the roaming figure).

#ifndef WLANSIM_STATS_TIME_SERIES_H_
#define WLANSIM_STATS_TIME_SERIES_H_

#include <cstdint>
#include <vector>

#include "core/time.h"

namespace wlansim {

class TimeSeries {
 public:
  explicit TimeSeries(Time bucket_width) : width_(bucket_width) {}

  // Accumulates `value` into the bucket containing `at`.
  void Add(Time at, double value);

  struct Bucket {
    Time start;
    double sum = 0.0;
    uint64_t count = 0;
  };

  const std::vector<Bucket>& buckets() const { return buckets_; }
  Time bucket_width() const { return width_; }

  // Sum-per-second in each bucket (e.g. bytes → rate).
  std::vector<double> RatePerSecond() const;

 private:
  Time width_;
  std::vector<Bucket> buckets_;
};

}  // namespace wlansim

#endif  // WLANSIM_STATS_TIME_SERIES_H_
