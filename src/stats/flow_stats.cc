#include "stats/flow_stats.h"

#include <cmath>

namespace wlansim {

void FlowStats::RecordSent(uint32_t flow_id, size_t bytes, Time now) {
  Flow& flow = flows_[flow_id];
  if (flow.tx_packets == 0) {
    flow.first_tx = now;
  }
  ++flow.tx_packets;
  flow.tx_bytes += bytes;
}

void FlowStats::RecordReceived(const Packet& packet, Time now) {
  Flow& flow = flows_[packet.meta().flow_id];
  ++flow.rx_packets;
  flow.rx_bytes += packet.size();
  flow.last_rx = now;

  const Time delay = now - packet.meta().created;
  flow.delay_us.Add(delay.micros());
  if (flow.have_prev_delay) {
    const double d = std::fabs((delay - flow.prev_delay).micros());
    flow.jitter_us += (d - flow.jitter_us) / 16.0;
  }
  flow.prev_delay = delay;
  flow.have_prev_delay = true;
}

const FlowStats::Flow* FlowStats::Find(uint32_t flow_id) const {
  auto it = flows_.find(flow_id);
  return it == flows_.end() ? nullptr : &it->second;
}

double FlowStats::GoodputMbps(uint32_t flow_id) const {
  uint64_t bytes = 0;
  Time first = Time::Max();
  Time last = Time::Zero();
  for (const auto& [id, flow] : flows_) {
    if (flow_id != kAllFlows && id != flow_id) {
      continue;
    }
    bytes += flow.rx_bytes;
    if (flow.tx_packets > 0 && flow.first_tx < first) {
      first = flow.first_tx;
    }
    if (flow.last_rx > last) {
      last = flow.last_rx;
    }
  }
  if (bytes == 0 || last <= first) {
    return 0.0;
  }
  return static_cast<double>(bytes) * 8.0 / (last - first).seconds() / 1e6;
}

double FlowStats::LossRate(uint32_t flow_id) const {
  uint64_t tx = 0;
  uint64_t rx = 0;
  for (const auto& [id, flow] : flows_) {
    if (flow_id != kAllFlows && id != flow_id) {
      continue;
    }
    tx += flow.tx_packets;
    rx += flow.rx_packets;
  }
  if (tx == 0) {
    return 0.0;
  }
  return 1.0 - static_cast<double>(rx) / static_cast<double>(tx);
}

uint64_t FlowStats::TotalRxBytes() const {
  uint64_t bytes = 0;
  for (const auto& [id, flow] : flows_) {
    bytes += flow.rx_bytes;
  }
  return bytes;
}

uint64_t FlowStats::TotalRxPackets() const {
  uint64_t packets = 0;
  for (const auto& [id, flow] : flows_) {
    packets += flow.rx_packets;
  }
  return packets;
}

}  // namespace wlansim
