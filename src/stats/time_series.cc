#include "stats/time_series.h"

namespace wlansim {

void TimeSeries::Add(Time at, double value) {
  const auto idx = static_cast<size_t>(at.picos() / width_.picos());
  while (buckets_.size() <= idx) {
    buckets_.push_back(Bucket{width_ * static_cast<int64_t>(buckets_.size()), 0.0, 0});
  }
  buckets_[idx].sum += value;
  ++buckets_[idx].count;
}

std::vector<double> TimeSeries::RatePerSecond() const {
  std::vector<double> rates;
  rates.reserve(buckets_.size());
  for (const auto& bucket : buckets_) {
    rates.push_back(bucket.sum / width_.seconds());
  }
  return rates;
}

}  // namespace wlansim
