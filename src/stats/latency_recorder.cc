#include "stats/latency_recorder.h"

#include <cstdio>

namespace wlansim {

void LatencyRecorder::Record(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tracks_.find(name);
  if (it == tracks_.end()) {
    it = tracks_.emplace(name, Track{Histogram(lo_, bin_width_, bin_count_), Summary{}}).first;
  }
  it->second.histogram.Add(value);
  it->second.summary.Add(value);
}

std::string LatencyRecorder::Report() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string text;
  for (const auto& [name, track] : tracks_) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "latency %s: count=%llu mean=%.1f min=%.1f max=%.1f p50=%.1f p90=%.1f "
                  "p99=%.1f\n",
                  name.c_str(), static_cast<unsigned long long>(track.summary.count()),
                  track.summary.mean(), track.summary.min(), track.summary.max(),
                  track.histogram.Quantile(0.50), track.histogram.Quantile(0.90),
                  track.histogram.Quantile(0.99));
    text += line;
  }
  return text;
}

uint64_t LatencyRecorder::TotalCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [name, track] : tracks_) {
    total += track.summary.count();
  }
  return total;
}

}  // namespace wlansim
