// Streaming summary statistics (Welford) — mean/variance/min/max without
// storing samples.

#ifndef WLANSIM_STATS_SUMMARY_H_
#define WLANSIM_STATS_SUMMARY_H_

#include <cmath>
#include <cstdint>
#include <limits>

namespace wlansim {

class Summary {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) {
      min_ = x;
    }
    if (x > max_) {
      max_ = x;
    }
    sum_ += x;
  }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace wlansim

#endif  // WLANSIM_STATS_SUMMARY_H_
