#include "stats/histogram.h"

namespace wlansim {

double Histogram::Quantile(double q) const {
  if (total_ == 0) {
    return lo_;
  }
  const double target = q * static_cast<double>(total_);
  double cumulative = static_cast<double>(underflow_);
  if (cumulative >= target) {
    return lo_;
  }
  for (size_t i = 0; i < bins_.size(); ++i) {
    const double next = cumulative + static_cast<double>(bins_[i]);
    if (next >= target && bins_[i] > 0) {
      const double frac = (target - cumulative) / static_cast<double>(bins_[i]);
      return bin_lower(i) + frac * width_;
    }
    cumulative = next;
  }
  return bin_lower(bins_.size());  // in the overflow bucket
}

}  // namespace wlansim
