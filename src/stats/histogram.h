// Fixed-width-bin histogram with overflow/underflow buckets and quantile
// estimation.

#ifndef WLANSIM_STATS_HISTOGRAM_H_
#define WLANSIM_STATS_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wlansim {

class Histogram {
 public:
  // Bins of width `bin_width` covering [lo, lo + bin_count*bin_width).
  Histogram(double lo, double bin_width, size_t bin_count)
      : lo_(lo), width_(bin_width), bins_(bin_count, 0) {}

  void Add(double x) {
    ++total_;
    if (x < lo_) {
      ++underflow_;
      return;
    }
    const auto idx = static_cast<size_t>((x - lo_) / width_);
    if (idx >= bins_.size()) {
      ++overflow_;
      return;
    }
    ++bins_[idx];
  }

  uint64_t total() const { return total_; }
  uint64_t underflow() const { return underflow_; }
  uint64_t overflow() const { return overflow_; }
  uint64_t bin(size_t i) const { return bins_[i]; }
  size_t bin_count() const { return bins_.size(); }
  double bin_lower(size_t i) const { return lo_ + static_cast<double>(i) * width_; }

  // Quantile estimate by linear interpolation inside the containing bin.
  // q in [0,1]. Returns the lower edge for q quantiles that land in the
  // under/overflow buckets.
  double Quantile(double q) const;

 private:
  double lo_;
  double width_;
  std::vector<uint64_t> bins_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t total_ = 0;
};

}  // namespace wlansim

#endif  // WLANSIM_STATS_HISTOGRAM_H_
