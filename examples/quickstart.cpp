// Quickstart: the smallest complete wlansim program.
//
// Builds one 802.11g BSS (an access point and a laptop 20 m away), runs a
// saturated upload for ten simulated seconds, and prints the goodput, loss
// and delay — about a dozen lines of scenario code.
//
//   $ ./quickstart
//   associated to 02:00:00:00:00:01 after 102.4ms
//   goodput: 25.1 Mb/s   loss: 0.0 %   mean delay: 1.8 ms

#include <cstdio>

#include "net/network.h"
#include "rate/minstrel.h"

using namespace wlansim;

int main() {
  // 1. A network owns the simulator, channel and statistics.
  Network net(Network::Params{.seed = 2026});
  net.UseLogDistanceLoss(3.0);  // indoor-ish path loss

  // 2. Two nodes: an AP and a station 20 m away.
  Node* ap = net.AddNode({.role = MacRole::kAp, .standard = PhyStandard::k80211g,
                          .ssid = "quickstart"});
  Node* laptop = net.AddNode({.role = MacRole::kSta, .standard = PhyStandard::k80211g,
                              .ssid = "quickstart", .position = {20, 0, 0}});

  // 3. A real driver rate-control algorithm.
  laptop->SetRateController(
      std::make_unique<MinstrelController>(PhyStandard::k80211g, net.ForkRng("minstrel")));

  // 4. Report association as it happens.
  laptop->mac().SetAssociationCallback([&](bool up, MacAddress bssid) {
    if (up) {
      std::printf("associated to %s after %s\n", bssid.ToString().c_str(),
                  net.sim().Now().ToString().c_str());
    }
  });

  // 5. Beacons, scanning, association.
  net.StartAll();

  // 6. A backlogged upload from the laptop to the AP.
  auto* upload = laptop->AddTraffic<SaturatedTraffic>(ap->address(), /*flow_id=*/1,
                                                      /*payload_bytes=*/1500);
  upload->Start(Time::Seconds(1));

  // 7. Run and report.
  net.Run(Time::Seconds(11));
  const auto* flow = net.flow_stats().Find(1);
  std::printf("goodput: %.1f Mb/s   loss: %.1f %%   mean delay: %.1f ms\n",
              net.flow_stats().GoodputMbps(1), 100.0 * net.flow_stats().LossRate(1),
              flow != nullptr ? flow->delay_us.mean() / 1000.0 : 0.0);
  return 0;
}
