// Quickstart: the smallest complete wlansim program, twice.
//
// Part 1 builds one 802.11g BSS by hand (an access point and a laptop 20 m
// away) and runs a saturated upload — the library API in a dozen lines.
// Part 2 runs the same experiment through the campaign engine: the
// registered "saturation" scenario, four independent replications on all
// cores, aggregated into mean ± 95 % CI. Everything `wlansim_run` can do is
// available in-process like this.

#include <cstdio>

#include "net/network.h"
#include "rate/minstrel.h"
#include "runner/campaign.h"

using namespace wlansim;

int main() {
  // --- Part 1: the library API -------------------------------------------
  Network net(Network::Params{.seed = 2026});
  net.UseLogDistanceLoss(3.0);  // indoor-ish path loss

  Node* ap = net.AddNode({.role = MacRole::kAp, .standard = PhyStandard::k80211g,
                          .ssid = "quickstart"});
  Node* laptop = net.AddNode({.role = MacRole::kSta, .standard = PhyStandard::k80211g,
                              .ssid = "quickstart", .position = {20, 0, 0}});
  laptop->SetRateController(
      std::make_unique<MinstrelController>(PhyStandard::k80211g, net.ForkRng("minstrel")));
  laptop->mac().SetAssociationCallback([&](bool up, MacAddress bssid) {
    if (up) {
      std::printf("associated to %s after %s\n", bssid.ToString().c_str(),
                  net.sim().Now().ToString().c_str());
    }
  });
  net.StartAll();
  laptop->AddTraffic<SaturatedTraffic>(ap->address(), /*flow_id=*/1, /*payload_bytes=*/1500)
      ->Start(Time::Seconds(1));
  net.Run(Time::Seconds(11));
  const auto* flow = net.flow_stats().Find(1);
  std::printf("goodput: %.1f Mb/s   loss: %.1f %%   mean delay: %.1f ms\n\n",
              net.flow_stats().GoodputMbps(1), 100.0 * net.flow_stats().LossRate(1),
              flow != nullptr ? flow->delay_us.mean() / 1000.0 : 0.0);

  // --- Part 2: the same experiment as a campaign -------------------------
  CampaignOptions options;
  options.scenario = "saturation";
  options.params.Set("standard", "11g");
  options.params.Set("distance", "20");
  options.replications = 4;
  options.jobs = 0;  // all hardware threads
  const CampaignResult campaign = RunCampaign(options);
  std::printf("campaign: %llu replications of '%s'\n",
              static_cast<unsigned long long>(campaign.replications.size()),
              campaign.scenario.c_str());
  for (const MetricAggregate& a : campaign.aggregates) {
    std::printf("  %-14s %.3f ± %.3f\n", a.metric.c_str(), a.mean, a.ci95_half);
  }
  return 0;
}
