// Hidden-terminal demo: builds the two-senders-one-receiver topology with an
// explicit loss matrix, runs it with RTS/CTS disabled and then enabled, and
// prints the side-by-side comparison plus the MAC counters that explain it
// (retries, CTS timeouts, duplicates).
//
// This is the scenario every 802.11 textbook uses to motivate virtual
// carrier sensing: A and B cannot hear each other, so physical carrier
// sense never defers, and their frames collide at R.

#include <cstdio>

#include "net/network.h"
#include "stats/table.h"

using namespace wlansim;

namespace {

struct Outcome {
  double goodput_mbps;
  double retry_pct;
  uint64_t cts_timeouts;
  uint64_t drops;
};

Outcome RunOnce(bool use_rts) {
  Network net(Network::Params{.seed = 99});
  MatrixLossModel* loss = net.UseMatrixLoss(200.0);  // default: no link at all

  auto mac_tweak = [use_rts](WifiMac::Config& c) {
    c.rts_threshold = use_rts ? 0 : 65535;  // 0: RTS before every data frame
  };
  Node* r = net.AddNode(
      {.role = MacRole::kAdhoc, .standard = PhyStandard::k80211b, .mac_tweak = mac_tweak});
  Node* a = net.AddNode({.role = MacRole::kAdhoc,
                         .standard = PhyStandard::k80211b,
                         .position = {60, 0, 0},
                         .mac_tweak = mac_tweak});
  Node* b = net.AddNode({.role = MacRole::kAdhoc,
                         .standard = PhyStandard::k80211b,
                         .position = {-60, 0, 0},
                         .mac_tweak = mac_tweak});

  // A—R and B—R are good links; A—B stays at the 200 dB default: hidden.
  loss->SetLoss(/*a=*/1, /*r=*/0, 70.0);
  loss->SetLoss(/*b=*/2, /*r=*/0, 70.0);

  const WifiMode mode = ModesFor(PhyStandard::k80211b).back();  // 11 Mb/s
  a->SetRateController(std::make_unique<FixedRateController>(mode));
  b->SetRateController(std::make_unique<FixedRateController>(mode));
  net.StartAll();

  a->AddTraffic<SaturatedTraffic>(r->address(), 1, 1500)->Start(Time::Seconds(1));
  b->AddTraffic<SaturatedTraffic>(r->address(), 2, 1500)->Start(Time::Seconds(1));
  net.Run(Time::Seconds(9));

  Outcome out{};
  out.goodput_mbps = net.flow_stats().GoodputMbps();
  uint64_t attempts = 0;
  uint64_t retries = 0;
  for (Node* s : {a, b}) {
    attempts += s->mac().counters().tx_data_attempts;
    retries += s->mac().counters().retries;
    out.cts_timeouts += s->mac().counters().cts_timeouts;
    out.drops += s->mac().counters().tx_data_dropped;
  }
  out.retry_pct = attempts ? 100.0 * static_cast<double>(retries) / static_cast<double>(attempts)
                           : 0.0;
  return out;
}

}  // namespace

int main() {
  std::printf("topology:  A (x=+60) --70dB-->  R (x=0)  <--70dB-- B (x=-60)\n");
  std::printf("           A and B share no link: each is hidden from the other.\n\n");

  const Outcome basic = RunOnce(false);
  const Outcome rts = RunOnce(true);

  Table table({"access", "agg_goodput_mbps", "retry_%", "cts_timeouts", "frames_dropped"});
  table.AddRow({"basic (CSMA only)", Table::Num(basic.goodput_mbps, 2),
                Table::Num(basic.retry_pct, 1), std::to_string(basic.cts_timeouts),
                std::to_string(basic.drops)});
  table.AddRow({"RTS/CTS", Table::Num(rts.goodput_mbps, 2), Table::Num(rts.retry_pct, 1),
                std::to_string(rts.cts_timeouts), std::to_string(rts.drops)});
  std::fputs(table.ToString().c_str(), stdout);

  std::printf(
      "\nWith CSMA alone, A and B sense an idle medium and collide at R\n"
      "(high retry rate, dropped frames). The RTS/CTS handshake lets R's CTS\n"
      "silence the hidden sender for the whole exchange: collisions shrink to\n"
      "the cheap RTS frames (visible as CTS timeouts instead of data retries).\n");
  return 0;
}
