// Hidden-terminal demo, campaign edition: runs the registered
// "hidden_terminal" scenario — two senders that share a receiver but cannot
// hear each other — with RTS/CTS disabled and then enabled, five independent
// replications each, and prints the side-by-side comparison with confidence
// intervals.
//
// This is the scenario every 802.11 textbook uses to motivate virtual
// carrier sensing: A and B sense an idle medium, so physical carrier sense
// never defers, and their frames collide at R.

#include <cstdio>

#include "runner/campaign.h"
#include "stats/table.h"

using namespace wlansim;

namespace {

CampaignResult RunAccess(bool rtscts) {
  CampaignOptions options;
  options.scenario = "hidden_terminal";
  options.params.Set("rtscts", rtscts ? "true" : "false");
  options.base_seed = 99;
  options.replications = 5;
  options.jobs = 0;  // all hardware threads
  return RunCampaign(options);
}

double Mean(const CampaignResult& r, const std::string& metric) {
  for (const MetricAggregate& a : r.aggregates) {
    if (a.metric == metric) {
      return a.mean;
    }
  }
  return 0.0;
}

}  // namespace

int main() {
  std::printf("topology:  A (x=+50) --70dB-->  R (x=0)  <--70dB-- B (x=-50)\n");
  std::printf("           A and B share no link: each is hidden from the other.\n\n");

  const CampaignResult basic = RunAccess(false);
  const CampaignResult rts = RunAccess(true);

  Table table({"access", "agg_goodput_mbps", "retry_%", "cts_timeouts", "frames_dropped"});
  table.AddRow({"basic (CSMA only)", Table::Num(Mean(basic, "goodput_mbps"), 2),
                Table::Num(100.0 * Mean(basic, "retry_rate"), 1),
                Table::Num(Mean(basic, "cts_timeouts"), 1),
                Table::Num(Mean(basic, "drops"), 1)});
  table.AddRow({"RTS/CTS", Table::Num(Mean(rts, "goodput_mbps"), 2),
                Table::Num(100.0 * Mean(rts, "retry_rate"), 1),
                Table::Num(Mean(rts, "cts_timeouts"), 1), Table::Num(Mean(rts, "drops"), 1)});
  std::fputs(table.ToString().c_str(), stdout);

  std::printf(
      "\n(each row: mean of 5 independent replications)\n"
      "With CSMA alone, A and B sense an idle medium and collide at R\n"
      "(high retry rate, dropped frames). The RTS/CTS handshake lets R's CTS\n"
      "silence the hidden sender for the whole exchange: collisions shrink to\n"
      "the cheap RTS frames (visible as CTS timeouts instead of data retries).\n");
  return 0;
}
