// Home WLAN (the survey's Figure 1.6 scenario): one 802.11g router serving a
// mix of devices — a laptop streaming video (CBR down-link), a phone browsing
// (on/off bursts), a smart camera uploading (CBR up-link), and a legacy
// 802.11b printer that occasionally receives jobs — all under WPA2 (CCMP).
//
// Demonstrates: AP bridging, mixed b/g coexistence with CTS-to-self
// protection, per-flow statistics, and link-layer security.

#include <cstdio>

#include "net/network.h"
#include "rate/minstrel.h"
#include "stats/table.h"

using namespace wlansim;

int main() {
  Network net(Network::Params{.seed = 7});
  net.UseLogDistanceLoss(3.2, /*shadowing_sigma_db=*/4.0);

  const std::vector<uint8_t> psk(16, 0x6B);  // the "WPA2 passphrase"
  auto secured = [&psk](WifiMac::Config& c) {
    c.cipher = CipherSuite::kCcmp;
    c.cipher_key = psk;
    c.cts_to_self_protection = true;  // a legacy 11b device is present
  };
  auto secured_b = [&psk](WifiMac::Config& c) {
    c.cipher = CipherSuite::kCcmp;
    c.cipher_key = psk;
  };

  Node* router = net.AddNode({.role = MacRole::kAp,
                              .standard = PhyStandard::k80211g,
                              .ssid = "home",
                              .mac_tweak = secured});
  Node* laptop = net.AddNode({.role = MacRole::kSta,
                              .standard = PhyStandard::k80211g,
                              .ssid = "home",
                              .position = {8, 3, 0},
                              .mac_tweak = secured});
  Node* phone = net.AddNode({.role = MacRole::kSta,
                             .standard = PhyStandard::k80211g,
                             .ssid = "home",
                             .position = {-5, 6, 0},
                             .mac_tweak = secured});
  Node* camera = net.AddNode({.role = MacRole::kSta,
                              .standard = PhyStandard::k80211g,
                              .ssid = "home",
                              .position = {12, -9, 0},
                              .mac_tweak = secured});
  Node* printer = net.AddNode({.role = MacRole::kSta,
                               .standard = PhyStandard::k80211b,  // legacy!
                               .ssid = "home",
                               .position = {-15, -4, 0},
                               .mac_tweak = secured_b});

  for (Node* n : {router, laptop, phone, camera}) {
    n->SetRateController(
        std::make_unique<MinstrelController>(PhyStandard::k80211g, net.ForkRng("rc")));
  }
  net.StartAll();

  // Video stream to the laptop: 3 Mb/s CBR of 1400 B frames via the router.
  auto* video = router->AddTraffic<CbrTraffic>(laptop->address(), 1, 1400,
                                               Time::Micros(1400 * 8 / 3.0));
  video->Start(Time::Seconds(1));

  // Phone browsing: bursty on/off download.
  auto* browsing = router->AddTraffic<OnOffTraffic>(phone->address(), 2, 1200,
                                                    Time::Millis(8), Time::Millis(500),
                                                    Time::Millis(1500), net.ForkRng("onoff"));
  browsing->Start(Time::Seconds(1));

  // Camera upload: 2 Mb/s CBR to the router.
  auto* cam = camera->AddTraffic<CbrTraffic>(router->address(), 3, 1000,
                                             Time::Micros(1000 * 8 / 2.0));
  cam->Start(Time::Seconds(1));

  // A print job every few seconds (small bursts to the printer).
  auto* print = router->AddTraffic<PoissonTraffic>(printer->address(), 4, 800, 20.0,
                                                   net.ForkRng("print"));
  print->Start(Time::Seconds(2));

  net.Run(Time::Seconds(12));

  Table table({"flow", "device", "goodput_mbps", "loss_%", "delay_ms", "jitter_ms"});
  const char* names[] = {"video->laptop", "web->phone", "camera->router", "jobs->printer"};
  for (uint32_t flow = 1; flow <= 4; ++flow) {
    const auto* f = net.flow_stats().Find(flow);
    table.AddRow({std::to_string(flow), names[flow - 1],
                  Table::Num(net.flow_stats().GoodputMbps(flow), 2),
                  Table::Num(100 * net.flow_stats().LossRate(flow), 1),
                  Table::Num(f != nullptr ? f->delay_us.mean() / 1000 : 0, 2),
                  Table::Num(f != nullptr ? f->jitter_us / 1000 : 0, 2)});
  }
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\nrouter bridged %llu MSDUs; printer associated as 802.11b legacy device\n",
              static_cast<unsigned long long>(router->mac().counters().rx_data));
  return 0;
}
