// Home WLAN (the survey's Figure 1.6 scenario): one 802.11g router serving a
// mix of devices — a laptop streaming video (CBR down-link), a phone browsing
// (on/off bursts), a smart camera uploading (CBR up-link), and a legacy
// 802.11b printer that occasionally receives jobs — all under WPA2 (CCMP).
//
// Demonstrates how to register a custom topology as a Scenario at runtime
// and run it as a campaign: five independent replications across all cores,
// per-flow metrics aggregated into mean ± 95 % CI. The same registration
// pattern is how new workloads become `wlansim_run` scenarios.

#include <cstdio>

#include "net/network.h"
#include "rate/minstrel.h"
#include "runner/campaign.h"
#include "runner/scenario_registry.h"
#include "stats/table.h"

using namespace wlansim;

namespace {

ReplicationResult RunHomeWlan(const ScenarioParams&, const ReplicationContext& ctx) {
  Network net(Network::Params{.seed = ctx.seed});
  net.UseLogDistanceLoss(3.2, /*shadowing_sigma_db=*/4.0);

  const std::vector<uint8_t> psk(16, 0x6B);  // the "WPA2 passphrase"
  auto secured = [&psk](WifiMac::Config& c) {
    c.cipher = CipherSuite::kCcmp;
    c.cipher_key = psk;
    c.cts_to_self_protection = true;  // a legacy 11b device is present
  };
  auto secured_b = [&psk](WifiMac::Config& c) {
    c.cipher = CipherSuite::kCcmp;
    c.cipher_key = psk;
  };

  Node* router = net.AddNode({.role = MacRole::kAp,
                              .standard = PhyStandard::k80211g,
                              .ssid = "home",
                              .mac_tweak = secured});
  Node* laptop = net.AddNode({.role = MacRole::kSta,
                              .standard = PhyStandard::k80211g,
                              .ssid = "home",
                              .position = {8, 3, 0},
                              .mac_tweak = secured});
  Node* phone = net.AddNode({.role = MacRole::kSta,
                             .standard = PhyStandard::k80211g,
                             .ssid = "home",
                             .position = {-5, 6, 0},
                             .mac_tweak = secured});
  Node* camera = net.AddNode({.role = MacRole::kSta,
                              .standard = PhyStandard::k80211g,
                              .ssid = "home",
                              .position = {12, -9, 0},
                              .mac_tweak = secured});
  Node* printer = net.AddNode({.role = MacRole::kSta,
                               .standard = PhyStandard::k80211b,  // legacy!
                               .ssid = "home",
                               .position = {-15, -4, 0},
                               .mac_tweak = secured_b});

  for (Node* n : {router, laptop, phone, camera}) {
    n->SetRateController(
        std::make_unique<MinstrelController>(PhyStandard::k80211g, net.ForkRng("rc")));
  }
  net.StartAll();

  // Video stream to the laptop: 3 Mb/s CBR of 1400 B frames via the router.
  router->AddTraffic<CbrTraffic>(laptop->address(), 1, 1400, Time::Micros(1400 * 8 / 3.0))
      ->Start(Time::Seconds(1));
  // Phone browsing: bursty on/off download.
  router
      ->AddTraffic<OnOffTraffic>(phone->address(), 2, 1200, Time::Millis(8), Time::Millis(500),
                                 Time::Millis(1500), net.ForkRng("onoff"))
      ->Start(Time::Seconds(1));
  // Camera upload: 2 Mb/s CBR to the router.
  camera->AddTraffic<CbrTraffic>(router->address(), 3, 1000, Time::Micros(1000 * 8 / 2.0))
      ->Start(Time::Seconds(1));
  // A print job every few seconds (small bursts to the printer).
  router->AddTraffic<PoissonTraffic>(printer->address(), 4, 800, 20.0, net.ForkRng("print"))
      ->Start(Time::Seconds(2));

  net.Run(Time::Seconds(12));

  const char* names[] = {"video", "web", "camera", "printer"};
  ReplicationResult out;
  for (uint32_t flow = 1; flow <= 4; ++flow) {
    out.metrics[std::string(names[flow - 1]) + "_mbps"] = net.flow_stats().GoodputMbps(flow);
    out.metrics[std::string(names[flow - 1]) + "_loss_rate"] = net.flow_stats().LossRate(flow);
  }
  out.metrics["router_bridged_msdus"] =
      static_cast<double>(router->mac().counters().rx_data);
  return out;
}

}  // namespace

int main() {
  ScenarioRegistry::Global().Register(
      "home_wlan", "One WPA2 802.11g router serving four mixed-traffic home devices",
      /*param_specs=*/{}, RunHomeWlan);

  CampaignOptions options;
  options.scenario = "home_wlan";
  options.base_seed = 7;
  options.replications = 5;
  options.jobs = 0;  // all hardware threads

  const CampaignResult result = RunCampaign(options);

  Table table({"metric", "mean", "ci95_half", "min", "max"});
  for (const MetricAggregate& a : result.aggregates) {
    table.AddRow({a.metric, Table::Num(a.mean, 3), Table::Num(a.ci95_half, 3),
                  Table::Num(a.min, 3), Table::Num(a.max, 3)});
  }
  std::fputs(table.ToString().c_str(), stdout);
  std::printf("\n%llu replications; printer associated as 802.11b legacy device\n",
              static_cast<unsigned long long>(result.replications.size()));
  return 0;
}
