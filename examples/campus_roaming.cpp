// Campus roaming: an extended service set of three access points along a
// corridor, all broadcasting the same SSID on channels 1/6/11, and a tablet
// riding past all three while running a constant-rate uplink.
//
// The topology is the library's canonical roaming builder (the same code
// `wlansim_run --scenario=roaming --param n_aps=3` executes); this example
// turns on association logging and plots the delivered-rate time series,
// the survey's "seamless roaming" story including its distinctly
// non-seamless gaps.

#include <cstdio>
#include <string>

#include "runner/builders.h"

using namespace wlansim;

int main() {
  RoamingParams p;
  p.n_aps = 3;
  p.spacing = 120.0;  // channels 1 / 6 / 11 along the corridor
  p.speed = 12.0;     // a brisk campus bicycle
  p.path_loss_exponent = 3.3;
  p.start_x = 5.0;
  p.payload = 750;
  p.scan_dwell = Time::Millis(120);  // > beacon interval
  p.sim_time = Time::Seconds(22);
  p.seed = 11;
  p.use_arf = true;
  p.log_associations = true;

  const RoamingResult r = RunRoamingScenario(p);

  std::printf("\ntime  delivered uplink rate\n");
  for (const auto& [start_s, bytes] : r.delivered_buckets) {
    const double kbps = bytes * 8.0 / r.bucket_seconds / 1000.0;
    std::printf("%4.1fs  %6.0f kb/s  %s\n", start_s, kbps,
                std::string(static_cast<size_t>(kbps / 40.0), '#').c_str());
  }
  std::printf("\nhandoffs: %llu   packet loss: %.1f%%   mean delivered: %.0f kb/s\n",
              static_cast<unsigned long long>(r.handoffs), 100.0 * r.loss_rate,
              r.mean_delivered_kbps);
  return 0;
}
