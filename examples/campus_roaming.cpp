// Campus roaming: an extended service set of three access points along a
// corridor, all broadcasting the same SSID on different channels, and a
// tablet walking past all three while running a constant-rate uplink.
//
// Demonstrates: multi-AP ESS construction, passive scanning across
// channels, beacon-loss detection, reassociation (handoff), and
// throughput-over-time reporting — the survey's "seamless roaming" story,
// including its distinctly non-seamless gaps.

#include <cstdio>

#include "net/network.h"
#include "rate/arf.h"
#include "stats/time_series.h"

using namespace wlansim;

int main() {
  Network net(Network::Params{.seed = 11});
  net.UseLogDistanceLoss(3.3);

  // Three APs, 120 m apart, channels 1/6/11 (the classic non-overlapping set).
  struct ApSpec {
    double x;
    uint8_t channel;
  };
  const ApSpec specs[] = {{0, 1}, {120, 6}, {240, 11}};
  std::vector<Node*> aps;
  for (const ApSpec& spec : specs) {
    aps.push_back(net.AddNode({.role = MacRole::kAp,
                               .standard = PhyStandard::k80211b,
                               .ssid = "campus",
                               .position = {spec.x, 0, 0},
                               .channel = spec.channel}));
  }

  Node* tablet = net.AddNode({.role = MacRole::kSta,
                              .standard = PhyStandard::k80211b,
                              .ssid = "campus",
                              .position = {5, 0, 0},
                              .channel = 1,
                              .mac_tweak = [](WifiMac::Config& c) {
                                c.scan_channels = {1, 6, 11};
                                c.beacon_loss_limit = 3;
                                c.scan_dwell = Time::Millis(120);  // > beacon interval
                              }});
  tablet->SetRateController(std::make_unique<ArfController>(PhyStandard::k80211b));
  // Walk the corridor at 12 m/s (a brisk campus bicycle).
  tablet->SetMobility(std::make_unique<ConstantVelocityMobility>(Vector3{5, 0, 0},
                                                                 Vector3{12, 0, 0}));

  // Log association events as they happen.
  tablet->mac().SetAssociationCallback([&](bool up, MacAddress bssid) {
    std::printf("[%8s] %s %s\n", net.sim().Now().ToString().c_str(),
                up ? "associated to" : "lost", bssid.ToString().c_str());
  });

  net.StartAll();

  // Uplink: 600 kb/s CBR of 750 B packets to the serving AP. Because the
  // serving AP changes, packets are addressed to the current BSSID.
  TimeSeries delivered(Time::Millis(1000));
  for (Node* ap : aps) {
    ap->SetRxCallback([&](const Packet& p, MacAddress, MacAddress) {
      delivered.Add(net.sim().Now(), static_cast<double>(p.size()));
    });
  }
  auto pump = std::make_shared<std::function<void()>>();
  *pump = [&net, tablet, pump] {
    if (tablet->mac().IsAssociated()) {
      Packet p(750);
      p.meta().flow_id = 1;
      p.meta().created = net.sim().Now();
      net.flow_stats().RecordSent(1, 750, net.sim().Now());
      tablet->mac().Enqueue(std::move(p), tablet->mac().bssid());
    }
    net.sim().Schedule(Time::Millis(10), [pump] { (*pump)(); });
  };
  net.sim().Schedule(Time::Seconds(1), [pump] { (*pump)(); });

  net.Run(Time::Seconds(22));

  std::printf("\ntime  delivered uplink rate\n");
  for (const auto& bucket : delivered.buckets()) {
    const double kbps = bucket.sum * 8.0 / 1000.0;
    std::printf("%4.0fs  %6.0f kb/s  %s\n", bucket.start.seconds(), kbps,
                std::string(static_cast<size_t>(kbps / 20.0), '#').c_str());
  }
  std::printf("\nhandoffs: %llu   packet loss: %.1f%%\n",
              static_cast<unsigned long long>(tablet->mac().counters().handoffs),
              100.0 * net.flow_stats().LossRate(1));
  return 0;
}
