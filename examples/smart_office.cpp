// Smart office: the extension features working together.
//
//  * An 802.11e (EDCA) BSS where a VoIP handset (AC_VO) keeps low latency
//    while two laptops saturate the uplink with bulk transfers (AC_BK).
//  * A battery-powered sensor uses 802.11 power save: it dozes between
//    beacons, wakes on the TIM to fetch its configuration updates, and its
//    radio energy is reported from the PHY's per-state accounting.
//
//  Run it and compare: voice delay (should be ~1-2 ms despite saturation),
//  sensor energy vs what an always-on radio would have burned.

#include <cstdio>

#include "net/network.h"
#include "stats/table.h"

using namespace wlansim;

int main() {
  Network net(Network::Params{.seed = 42});
  net.UseLogDistanceLoss(3.0);

  auto qos = [](WifiMac::Config& c) { c.qos_enabled = true; };
  auto qos_ps = [](WifiMac::Config& c) {
    c.qos_enabled = true;
    c.power_save = true;
    c.listen_interval = 2;
  };

  Node* ap = net.AddNode({.role = MacRole::kAp,
                          .standard = PhyStandard::k80211b,
                          .ssid = "office",
                          .mac_tweak = qos});
  Node* handset = net.AddNode({.role = MacRole::kSta,
                               .standard = PhyStandard::k80211b,
                               .ssid = "office",
                               .position = {6, 2, 0},
                               .mac_tweak = qos});
  Node* laptop1 = net.AddNode({.role = MacRole::kSta,
                               .standard = PhyStandard::k80211b,
                               .ssid = "office",
                               .position = {-7, 4, 0},
                               .mac_tweak = qos});
  Node* laptop2 = net.AddNode({.role = MacRole::kSta,
                               .standard = PhyStandard::k80211b,
                               .ssid = "office",
                               .position = {3, -9, 0},
                               .mac_tweak = qos});
  Node* sensor = net.AddNode({.role = MacRole::kSta,
                              .standard = PhyStandard::k80211b,
                              .ssid = "office",
                              .position = {12, 12, 0},
                              .mac_tweak = qos_ps});

  const WifiMode full = ModesFor(PhyStandard::k80211b).back();
  for (Node* n : {ap, handset, laptop1, laptop2}) {
    n->SetRateController(std::make_unique<FixedRateController>(full));
  }
  net.StartAll();

  // VoIP both ways: 50 pps × 160 B at priority 6 (AC_VO).
  auto* voice_up = handset->AddTraffic<CbrTraffic>(ap->address(), 1, 160, Time::Millis(20));
  voice_up->SetPriority(6);
  voice_up->Start(Time::Seconds(1));

  // Bulk uploads at priority 1 (AC_BK).
  for (auto [laptop, flow] : {std::pair{laptop1, 2u}, std::pair{laptop2, 3u}}) {
    auto* bulk = laptop->AddTraffic<SaturatedTraffic>(ap->address(), flow, 1500);
    bulk->SetPriority(1);
    bulk->Start(Time::Seconds(1));
  }

  // Config pushes to the dozing sensor: 200 B every 700 ms.
  auto* config_push = ap->AddTraffic<CbrTraffic>(sensor->address(), 4, 200, Time::Millis(700));
  config_push->SetPriority(0);
  config_push->Start(Time::Seconds(2));

  net.Run(Time::Seconds(12));

  Table table({"flow", "what", "goodput_kbps", "loss_%", "mean_delay_ms"});
  const char* names[] = {"voice (AC_VO)", "bulk laptop1 (AC_BK)", "bulk laptop2 (AC_BK)",
                         "sensor config push"};
  for (uint32_t flow = 1; flow <= 4; ++flow) {
    const auto* f = net.flow_stats().Find(flow);
    table.AddRow({std::to_string(flow), names[flow - 1],
                  Table::Num(net.flow_stats().GoodputMbps(flow) * 1000, 1),
                  Table::Num(100 * net.flow_stats().LossRate(flow), 1),
                  Table::Num(f != nullptr ? f->delay_us.mean() / 1000 : 0, 2)});
  }
  std::fputs(table.ToString().c_str(), stdout);

  const auto sensor_times = sensor->phy().GetStateTimes(net.sim().Now());
  const auto handset_times = handset->phy().GetStateTimes(net.sim().Now());
  std::printf(
      "\nsensor radio:  %.2f J (asleep %.0f%% of the time, %llu PS-polls)\n"
      "handset radio: %.2f J (always on, for comparison)\n",
      sensor_times.EnergyJoules(),
      100.0 * sensor_times.sleep.seconds() /
          (sensor_times.sleep + sensor_times.listen + sensor_times.rx + sensor_times.tx)
              .seconds(),
      static_cast<unsigned long long>(sensor->mac().counters().ps_polls),
      handset_times.EnergyJoules());
  std::printf("internal EDCA collisions at the AP: %llu\n",
              static_cast<unsigned long long>(ap->mac().counters().internal_collisions));
  return 0;
}
