// Smart office: the extension features working together, campaign edition.
//
//  * An 802.11e (EDCA) BSS where a VoIP handset (AC_VO) keeps low latency
//    while two laptops saturate the uplink with bulk transfers (AC_BK).
//  * A battery-powered sensor uses 802.11 power save: it dozes between
//    beacons, wakes on the TIM to fetch its configuration updates, and its
//    radio energy is reported from the PHY's per-state accounting.
//
// The topology is registered as a runtime scenario and run as a campaign of
// five replications, so every number below carries a confidence interval:
// voice delay should stay in the low milliseconds despite saturation, and
// the sensor's radio energy should be a fraction of the always-on handset's.

#include <cstdio>

#include "net/network.h"
#include "runner/campaign.h"
#include "runner/scenario_registry.h"
#include "stats/table.h"

using namespace wlansim;

namespace {

ReplicationResult RunSmartOffice(const ScenarioParams&, const ReplicationContext& ctx) {
  Network net(Network::Params{.seed = ctx.seed});
  net.UseLogDistanceLoss(3.0);

  auto qos = [](WifiMac::Config& c) { c.qos_enabled = true; };
  auto qos_ps = [](WifiMac::Config& c) {
    c.qos_enabled = true;
    c.power_save = true;
    c.listen_interval = 2;
  };

  Node* ap = net.AddNode({.role = MacRole::kAp,
                          .standard = PhyStandard::k80211b,
                          .ssid = "office",
                          .mac_tweak = qos});
  Node* handset = net.AddNode({.role = MacRole::kSta,
                               .standard = PhyStandard::k80211b,
                               .ssid = "office",
                               .position = {6, 2, 0},
                               .mac_tweak = qos});
  Node* laptop1 = net.AddNode({.role = MacRole::kSta,
                               .standard = PhyStandard::k80211b,
                               .ssid = "office",
                               .position = {-7, 4, 0},
                               .mac_tweak = qos});
  Node* laptop2 = net.AddNode({.role = MacRole::kSta,
                               .standard = PhyStandard::k80211b,
                               .ssid = "office",
                               .position = {3, -9, 0},
                               .mac_tweak = qos});
  Node* sensor = net.AddNode({.role = MacRole::kSta,
                              .standard = PhyStandard::k80211b,
                              .ssid = "office",
                              .position = {12, 12, 0},
                              .mac_tweak = qos_ps});

  const WifiMode full = ModesFor(PhyStandard::k80211b).back();
  for (Node* n : {ap, handset, laptop1, laptop2}) {
    n->SetRateController(std::make_unique<FixedRateController>(full));
  }
  net.StartAll();

  // VoIP: 50 pps × 160 B at priority 6 (AC_VO).
  auto* voice_up = handset->AddTraffic<CbrTraffic>(ap->address(), 1, 160, Time::Millis(20));
  voice_up->SetPriority(6);
  voice_up->Start(Time::Seconds(1));

  // Bulk uploads at priority 1 (AC_BK).
  for (auto [laptop, flow] : {std::pair{laptop1, 2u}, std::pair{laptop2, 3u}}) {
    auto* bulk = laptop->AddTraffic<SaturatedTraffic>(ap->address(), flow, 1500);
    bulk->SetPriority(1);
    bulk->Start(Time::Seconds(1));
  }

  // Config pushes to the dozing sensor: 200 B every 700 ms.
  auto* config_push = ap->AddTraffic<CbrTraffic>(sensor->address(), 4, 200, Time::Millis(700));
  config_push->SetPriority(0);
  config_push->Start(Time::Seconds(2));

  net.Run(Time::Seconds(12));

  ReplicationResult out;
  const auto* voice = net.flow_stats().Find(1);
  out.metrics["voice_delay_ms"] = voice != nullptr ? voice->delay_us.mean() / 1000.0 : 0.0;
  out.metrics["voice_loss_rate"] = net.flow_stats().LossRate(1);
  out.metrics["bulk_mbps"] =
      net.flow_stats().GoodputMbps(2) + net.flow_stats().GoodputMbps(3);
  out.metrics["sensor_push_loss_rate"] = net.flow_stats().LossRate(4);

  const auto sensor_times = sensor->phy().GetStateTimes(net.sim().Now());
  const auto handset_times = handset->phy().GetStateTimes(net.sim().Now());
  out.metrics["sensor_energy_j"] = sensor_times.EnergyJoules();
  out.metrics["sensor_sleep_pct"] =
      100.0 * sensor_times.sleep.seconds() /
      (sensor_times.sleep + sensor_times.listen + sensor_times.rx + sensor_times.tx).seconds();
  out.metrics["handset_energy_j"] = handset_times.EnergyJoules();
  out.metrics["ap_internal_collisions"] =
      static_cast<double>(ap->mac().counters().internal_collisions);
  return out;
}

}  // namespace

int main() {
  ScenarioRegistry::Global().Register(
      "smart_office",
      "EDCA voice + bulk contention plus a power-saving sensor with energy accounting",
      /*param_specs=*/{}, RunSmartOffice);

  CampaignOptions options;
  options.scenario = "smart_office";
  options.base_seed = 42;
  options.replications = 5;
  options.jobs = 0;  // all hardware threads

  const CampaignResult result = RunCampaign(options);

  Table table({"metric", "mean", "ci95_half", "min", "max"});
  for (const MetricAggregate& a : result.aggregates) {
    table.AddRow({a.metric, Table::Num(a.mean, 3), Table::Num(a.ci95_half, 3),
                  Table::Num(a.min, 3), Table::Num(a.max, 3)});
  }
  std::fputs(table.ToString().c_str(), stdout);
  std::printf(
      "\n%llu replications. The sensor dozes between beacons (sleep %% above)\n"
      "while the always-on handset burns several times the radio energy.\n",
      static_cast<unsigned long long>(result.replications.size()));
  return 0;
}
