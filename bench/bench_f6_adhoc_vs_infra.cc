// F6 — Ad-hoc vs infrastructure scaling.
//
// The survey claims ad-hoc "performance suffers while the number of devices
// grows" whereas infrastructure provides "much more scalability and
// stability". We pair up n nodes exchanging CBR flows either peer-to-peer
// (IBSS) or relayed through an AP. Expected shape: ad-hoc wins at small n
// (no relay double-hop), but its per-flow delivery degrades faster with n;
// the AP serializes traffic at the cost of relaying every frame twice.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

Table g_table({"mode", "n_nodes", "offered_mbps", "delivered_mbps", "delivery_%",
               "mean_delay_ms"});

struct Result {
  double offered_mbps;
  double delivered_mbps;
  double delay_ms;
};

Result RunScenario(bool adhoc, size_t n_pairs, uint64_t seed) {
  Network net(Network::Params{.seed = seed});
  net.UseLogDistanceLoss(3.0);
  constexpr size_t kPayload = 1000;
  const Time interval = Time::Millis(4);  // 2 Mb/s offered per flow

  const WifiMode kFull = ModesFor(PhyStandard::k80211b).back();
  Node* ap = nullptr;
  if (!adhoc) {
    ap = net.AddNode({.role = MacRole::kAp, .standard = PhyStandard::k80211b, .ssid = "f6"});
    ap->SetRateController(std::make_unique<FixedRateController>(kFull));
  }
  std::vector<Node*> nodes;
  for (size_t i = 0; i < 2 * n_pairs; ++i) {
    const double angle = 2.0 * 3.14159265358979 * static_cast<double>(i) /
                         static_cast<double>(2 * n_pairs);
    nodes.push_back(net.AddNode({.role = adhoc ? MacRole::kAdhoc : MacRole::kSta,
                                 .standard = PhyStandard::k80211b,
                                 .ssid = "f6",
                                 .position = {12 * std::cos(angle), 12 * std::sin(angle), 0}}));
    nodes.back()->SetRateController(std::make_unique<FixedRateController>(kFull));
  }
  net.StartAll();
  for (size_t i = 0; i < n_pairs; ++i) {
    Node* src = nodes[2 * i];
    Node* dst = nodes[2 * i + 1];
    auto* app = src->AddTraffic<CbrTraffic>(dst->address(), static_cast<uint32_t>(i + 1),
                                            kPayload, interval);
    app->Start(Time::Seconds(1) + Time::Micros(static_cast<int64_t>(137 * i)));
  }
  net.Run(Time::Seconds(9));
  (void)ap;

  Result r{};
  r.offered_mbps = static_cast<double>(n_pairs) * kPayload * 8.0 / interval.seconds() / 1e6;
  r.delivered_mbps = net.flow_stats().GoodputMbps();
  double delay_sum = 0;
  uint64_t delay_n = 0;
  for (const auto& [id, flow] : net.flow_stats().flows()) {
    delay_sum += flow.delay_us.mean() * static_cast<double>(flow.delay_us.count());
    delay_n += flow.delay_us.count();
  }
  r.delay_ms = delay_n ? delay_sum / static_cast<double>(delay_n) / 1000.0 : 0;
  return r;
}

const size_t kPairCounts[] = {1, 2, 4, 8};

void Run(benchmark::State& state, bool adhoc) {
  const size_t pairs = kPairCounts[state.range(0)];
  Result r{};
  for (auto _ : state) {
    r = RunScenario(adhoc, pairs, 55 + pairs);
  }
  state.counters["delivered_mbps"] = r.delivered_mbps;
  state.counters["delay_ms"] = r.delay_ms;
  g_table.AddRow({adhoc ? "adhoc" : "infrastructure", std::to_string(2 * pairs),
                  Table::Num(r.offered_mbps, 2), Table::Num(r.delivered_mbps, 2),
                  Table::Num(100.0 * r.delivered_mbps / r.offered_mbps, 1),
                  Table::Num(r.delay_ms, 1)});
}

void BM_Adhoc(benchmark::State& s) {
  Run(s, true);
}
void BM_Infrastructure(benchmark::State& s) {
  Run(s, false);
}

BENCHMARK(BM_Adhoc)->DenseRange(0, 3)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Infrastructure)->DenseRange(0, 3)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  wlansim::PrintTable("F6: ad-hoc vs infrastructure scaling (2 Mb/s CBR per pair, 11 Mb/s PHY)",
                      wlansim::g_table, argc, argv);
  return 0;
}
