// F6 — Ad-hoc vs infrastructure scaling.
//
// The survey claims ad-hoc "performance suffers while the number of devices
// grows" whereas infrastructure provides "much more scalability and
// stability". We pair up n nodes exchanging CBR flows either peer-to-peer
// (IBSS) or relayed through an AP. Expected shape: ad-hoc wins at small n
// (no relay double-hop), but its per-flow delivery degrades faster with n;
// the AP serializes traffic at the cost of relaying every frame twice.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

Table g_table({"mode", "n_nodes", "offered_mbps", "delivered_mbps", "delivery_%",
               "mean_delay_ms"});

const size_t kPairCounts[] = {1, 2, 4, 8};

void Run(benchmark::State& state, bool adhoc) {
  const size_t pairs = kPairCounts[state.range(0)];
  AdhocInfraParams p;
  p.adhoc = adhoc;
  p.n_pairs = pairs;
  p.seed = 55 + pairs;
  AdhocInfraResult r{};
  for (auto _ : state) {
    r = RunAdhocInfraScenario(p);
  }
  state.counters["delivered_mbps"] = r.delivered_mbps;
  state.counters["delay_ms"] = r.delay_ms;
  g_table.AddRow({adhoc ? "adhoc" : "infrastructure", std::to_string(2 * pairs),
                  Table::Num(r.offered_mbps, 2), Table::Num(r.delivered_mbps, 2),
                  Table::Num(100.0 * r.delivered_mbps / r.offered_mbps, 1),
                  Table::Num(r.delay_ms, 1)});
}

void BM_Adhoc(benchmark::State& s) {
  Run(s, true);
}
void BM_Infrastructure(benchmark::State& s) {
  Run(s, false);
}

BENCHMARK(BM_Adhoc)->DenseRange(0, 3)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Infrastructure)->DenseRange(0, 3)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  wlansim::PrintTable("F6: ad-hoc vs infrastructure scaling (2 Mb/s CBR per pair, 11 Mb/s PHY)",
                      wlansim::g_table, argc, argv);
  return 0;
}
