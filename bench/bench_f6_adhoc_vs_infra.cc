// F6 — Ad-hoc vs infrastructure scaling, on the in-tree perf harness.
//
// The survey claims ad-hoc "performance suffers while the number of devices
// grows" whereas infrastructure provides "much more scalability and
// stability". We pair up n nodes exchanging CBR flows either peer-to-peer
// (IBSS) or relayed through an AP. Expected shape: ad-hoc wins at small n
// (no relay double-hop), but its per-flow delivery degrades faster with n;
// the AP serializes traffic at the cost of relaying every frame twice.
//
// The harness times each whole-simulation point (items = delivered payload
// bytes, so items/s gauges simulator speed); the figure table itself is
// printed from the scenario results afterwards.

#include <cstddef>
#include <string>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

const size_t kPairCounts[] = {1, 2, 4, 8};

int Run(int argc, char** argv) {
  PerfArgs args = ParsePerfArgs(argc, argv, "bench_f6_adhoc_vs_infra", /*default_reps=*/1);
  if (!args.ok) {
    return 1;
  }
  args.warmup = false;  // one rep of a deterministic simulation needs no cache warming

  PerfHarness harness("F6: ad-hoc vs infrastructure harness (items = delivered bytes)", args);
  Table table({"mode", "n_nodes", "offered_mbps", "delivered_mbps", "delivery_%",
               "mean_delay_ms"});
  for (const bool adhoc : {true, false}) {
    for (const size_t pairs : kPairCounts) {
      const std::string name =
          std::string(adhoc ? "adhoc" : "infra") + "/pairs=" + std::to_string(pairs);
      if (!args.filter.empty() && name.find(args.filter) == std::string::npos) {
        continue;  // keep the figure table aligned with the benches that ran
      }
      AdhocInfraResult r{};
      AdhocInfraParams p;
      p.adhoc = adhoc;
      p.n_pairs = pairs;
      p.seed = 55 + pairs;
      harness.Bench(name, [&p, &r] {
        r = RunAdhocInfraScenario(p);
        const double sim_secs = p.sim_time.seconds();
        return static_cast<uint64_t>(r.delivered_mbps * 1e6 / 8.0 * sim_secs);
      });
      table.AddRow({adhoc ? "adhoc" : "infrastructure", std::to_string(2 * pairs),
                    Table::Num(r.offered_mbps, 2), Table::Num(r.delivered_mbps, 2),
                    Table::Num(100.0 * r.delivered_mbps / r.offered_mbps, 1),
                    Table::Num(r.delay_ms, 1)});
    }
  }
  const int rc = harness.Finish();
  std::printf("=== F6: ad-hoc vs infrastructure scaling (2 Mb/s CBR per pair, 11 Mb/s PHY) ===\n%s\n",
              table.ToString().c_str());
  return rc;
}

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  return wlansim::Run(argc, argv);
}
