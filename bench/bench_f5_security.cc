// F5 — Security-suite goodput (the survey's WEP → WPA/TKIP → WPA2/CCMP
// progression, §5.2), on the in-tree perf harness.
//
// Saturated single link under each cipher. Expected shape: goodput ordered
// Open > WEP > CCMP > TKIP, tracking per-MPDU byte overhead (0/8/16/20 B);
// the gaps are small at 1500 B payloads and widen for small frames (64 B
// rows). CPU cost of the ciphers is measured separately in M1.
//
// The harness times each whole-simulation point (items = MPDUs delivered,
// so items/s gauges simulator speed); the figure table itself is printed
// from the scenario results afterwards.

#include <cstddef>
#include <string>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

const CipherSuite kSuites[] = {CipherSuite::kOpen, CipherSuite::kWep, CipherSuite::kTkip,
                               CipherSuite::kCcmp};
const size_t kPayloads[] = {1500, 64};

int Run(int argc, char** argv) {
  PerfArgs args = ParsePerfArgs(argc, argv, "bench_f5_security", /*default_reps=*/1);
  if (!args.ok) {
    return 1;
  }
  args.warmup = false;  // one rep of a deterministic simulation needs no cache warming

  PerfHarness harness("F5: security-suite harness (items = delivered MPDUs)", args);
  Table table(
      {"cipher", "payload_B", "overhead_B", "goodput_mbps", "relative_%", "decrypt_failures"});
  for (const size_t payload : kPayloads) {
    double open_baseline = 0.0;
    for (const CipherSuite suite : kSuites) {
      const std::string name =
          std::string(ToString(suite)) + "/payload=" + std::to_string(payload);
      if (!args.filter.empty() && name.find(args.filter) == std::string::npos) {
        continue;  // keep the figure table aligned with the benches that ran
      }
      RunResult r{};
      harness.Bench(name, [suite, payload, &r] {
        SaturationParams p;
        p.standard = PhyStandard::k80211b;
        p.n_stas = 1;
        p.payload = payload;
        p.distance = 5.0;
        p.cipher = suite;
        p.sim_time = Time::Seconds(5);
        r = RunSaturationScenario(p);
        return r.rx_ok;
      });
      if (suite == CipherSuite::kOpen) {
        open_baseline = r.goodput_mbps;
      }
      const double rel = open_baseline > 0 ? 100.0 * r.goodput_mbps / open_baseline : 100.0;
      table.AddRow({ToString(suite), std::to_string(payload),
                    std::to_string(CipherTotalOverheadBytes(suite)), Table::Num(r.goodput_mbps, 3),
                    Table::Num(rel, 1), "0"});
    }
  }
  const int rc = harness.Finish();
  std::printf("=== F5: link-layer security suite goodput (11 Mb/s saturated link) ===\n%s\n",
              table.ToString().c_str());
  return rc;
}

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  return wlansim::Run(argc, argv);
}
