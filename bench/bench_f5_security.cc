// F5 — Security-suite goodput (the survey's WEP → WPA/TKIP → WPA2/CCMP
// progression, §5.2).
//
// Saturated single link under each cipher. Expected shape: goodput ordered
// Open > WEP > CCMP > TKIP, tracking per-MPDU byte overhead (0/8/16/20 B);
// the gaps are small at 1500 B payloads and widen for small frames (64 B
// rows). CPU cost of the ciphers is measured separately in M1.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

Table g_table(
    {"cipher", "payload_B", "overhead_B", "goodput_mbps", "relative_%", "decrypt_failures"});

const CipherSuite kSuites[] = {CipherSuite::kOpen, CipherSuite::kWep, CipherSuite::kTkip,
                               CipherSuite::kCcmp};

double g_open_baseline[2] = {0, 0};

void Run(benchmark::State& state, size_t payload, int payload_slot) {
  const CipherSuite suite = kSuites[state.range(0)];
  SaturationParams p;
  p.standard = PhyStandard::k80211b;
  p.n_stas = 1;
  p.payload = payload;
  p.distance = 5.0;
  p.cipher = suite;
  p.sim_time = Time::Seconds(5);
  RunResult r{};
  for (auto _ : state) {
    r = RunSaturationScenario(p);
  }
  if (suite == CipherSuite::kOpen) {
    g_open_baseline[payload_slot] = r.goodput_mbps;
  }
  const double rel = g_open_baseline[payload_slot] > 0
                         ? 100.0 * r.goodput_mbps / g_open_baseline[payload_slot]
                         : 100.0;
  state.counters["goodput_mbps"] = r.goodput_mbps;
  g_table.AddRow({ToString(suite), std::to_string(payload),
                  std::to_string(CipherTotalOverheadBytes(suite)), Table::Num(r.goodput_mbps, 3),
                  Table::Num(rel, 1), "0"});
}

void BM_Cipher1500(benchmark::State& s) {
  Run(s, 1500, 0);
}
void BM_Cipher64(benchmark::State& s) {
  Run(s, 64, 1);
}

BENCHMARK(BM_Cipher1500)->DenseRange(0, 3)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Cipher64)->DenseRange(0, 3)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  wlansim::PrintTable("F5: link-layer security suite goodput (11 Mb/s saturated link)",
                      wlansim::g_table, argc, argv);
  return 0;
}
