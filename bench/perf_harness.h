// A small in-tree perf harness for the engine microbenchmarks, replacing the
// google-benchmark dependency on the hot-path benches. Each benchmark is a
// callable that performs one timed batch of work and returns the number of
// items it processed; the harness repeats it, stores per-repetition metrics
// in a ResultSink, and emits the same aggregate statistics (mean / stddev /
// CI / P50 / P95) and long-format CSV the campaign engine produces — so the
// repo measures its own speedups with its own reporting machinery.

#ifndef WLANSIM_BENCH_PERF_HARNESS_H_
#define WLANSIM_BENCH_PERF_HARNESS_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "runner/result_sink.h"
#include "stats/table.h"

namespace wlansim {

// Digits-only uint64 flag parsing shared by the bench CLIs (sweep and perf
// harnesses): a typo'd value must be a usage error, not a silently
// different run. Prints the error itself; returns false on failure.
inline bool ParseBenchU64(const char* flag, const char* v, uint64_t* out) {
  if (*v == '\0' || std::strspn(v, "0123456789") != std::strlen(v)) {
    std::fprintf(stderr, "%s expects a non-negative integer, got '%s'\n", flag, v);
    return false;
  }
  *out = std::strtoull(v, nullptr, 10);
  return true;
}

// CLI of a perf-harness bench: repetitions per benchmark, an optional
// warmup toggle, a substring filter, and an optional CSV output path.
struct PerfArgs {
  uint64_t reps = 5;
  std::string filter;
  std::string csv;
  bool warmup = true;
  bool ok = true;
};

// `default_reps` seeds --reps for benches whose single repetition is already
// expensive (whole-simulation benches like t1); the flag still overrides.
inline PerfArgs ParsePerfArgs(int argc, char** argv, const char* bench_name,
                              uint64_t default_reps = 5) {
  PerfArgs args;
  args.reps = default_reps;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--reps=", 7) == 0) {
      if (!ParseBenchU64("--reps", arg + 7, &args.reps)) {
        args.ok = false;
        return args;
      }
    } else if (std::strncmp(arg, "--filter=", 9) == 0) {
      args.filter = arg + 9;
    } else if (std::strncmp(arg, "--csv=", 6) == 0) {
      args.csv = arg + 6;
    } else if (std::strcmp(arg, "--no-warmup") == 0) {
      args.warmup = false;
    } else {
      std::fprintf(stderr, "usage: %s [--reps=N] [--filter=SUBSTR] [--csv=PATH] [--no-warmup]\n",
                   bench_name);
      args.ok = false;
      return args;
    }
  }
  if (args.ok && args.reps == 0) {
    std::fprintf(stderr, "--reps must be at least 1\n");
    args.ok = false;
  }
  return args;
}

class PerfHarness {
 public:
  PerfHarness(std::string title, PerfArgs args) : title_(std::move(title)), args_(args) {}

  // Runs one benchmark: `fn` performs a timed batch and returns the number
  // of items it processed (events popped, packets built, RNG draws, ...).
  // Skipped when the name does not contain the --filter substring.
  void Bench(const std::string& name, const std::function<uint64_t()>& fn) {
    if (!args_.filter.empty() && name.find(args_.filter) == std::string::npos) {
      return;
    }
    if (args_.warmup) {
      (void)fn();  // touch caches and lazy allocations outside the timing
    }
    ResultSink sink(args_.reps);
    for (uint64_t rep = 0; rep < args_.reps; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      const uint64_t items = fn();
      const auto end = std::chrono::steady_clock::now();
      const double secs = std::chrono::duration<double>(end - start).count();
      ReplicationResult r;
      r.metrics["wall_ms"] = secs * 1e3;
      if (items > 0) {
        r.metrics["ns_per_item"] = secs * 1e9 / static_cast<double>(items);
        r.metrics["items_per_sec"] = static_cast<double>(items) / secs;
      }
      sink.Store(rep, std::move(r));
    }
    SweepRow row;
    row.param_values = {name};
    row.aggregates = sink.Aggregate();
    rows_.push_back(std::move(row));
  }

  // Prints the summary table and writes the long-format CSV; returns the
  // process exit code.
  int Finish() {
    std::printf("=== %s (%llu rep(s)/bench) ===\n", title_.c_str(),
                static_cast<unsigned long long>(args_.reps));
    Table table({"bench", "items/s", "ns/item", "p50_ns", "p95_ns", "wall_ms"});
    for (const SweepRow& row : rows_) {
      const MetricAggregate* per_item = nullptr;
      const MetricAggregate* per_sec = nullptr;
      const MetricAggregate* wall = nullptr;
      for (const MetricAggregate& a : row.aggregates) {
        if (a.metric == "ns_per_item") {
          per_item = &a;
        } else if (a.metric == "items_per_sec") {
          per_sec = &a;
        } else if (a.metric == "wall_ms") {
          wall = &a;
        }
      }
      table.AddRow({row.param_values[0],
                    per_sec != nullptr ? Table::Num(per_sec->mean, 0) : "-",
                    per_item != nullptr ? Table::Num(per_item->mean, 1) : "-",
                    per_item != nullptr ? Table::Num(per_item->p50, 1) : "-",
                    per_item != nullptr ? Table::Num(per_item->p95, 1) : "-",
                    wall != nullptr ? Table::Num(wall->mean, 2) : "-"});
    }
    std::fputs(table.ToString().c_str(), stdout);
    if (!args_.csv.empty()) {
      std::ofstream out(args_.csv, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", args_.csv.c_str());
        return 1;
      }
      out << ResultSink::SweepLongCsv({"bench"}, rows_);
      std::printf("wrote %s\n", args_.csv.c_str());
    }
    return 0;
  }

 private:
  std::string title_;
  PerfArgs args_;
  std::vector<SweepRow> rows_;
};

}  // namespace wlansim

#endif  // WLANSIM_BENCH_PERF_HARNESS_H_
