// M1 — Crypto microbenchmarks, on the in-tree perf harness.
//
// Per-byte / per-packet cost of every primitive and of full MPDU
// encapsulation per suite. Expected shape: CRC32 ≫ RC4 ≫ AES (software)
// in byte rate; CCM costs ~2 AES passes per block; Michael is cheap but
// dominates TKIP's non-RC4 overhead; TKIP per-packet mixing shows up at
// small packets.
//
// Byte-oriented benches return bytes processed, so ns/item reads as
// nanoseconds per byte; the per-packet mixing benches return operations.

#include <cstdint>
#include <vector>

#include "bench/perf_harness.h"
#include "crypto/aes.h"
#include "crypto/ccm.h"
#include "crypto/cipher_suite.h"
#include "crypto/crc32.h"
#include "crypto/michael.h"
#include "crypto/rc4.h"
#include "crypto/tkip.h"

namespace wlansim {
namespace {

std::vector<uint8_t> MakeBuffer(size_t n) {
  std::vector<uint8_t> buf(n);
  for (size_t i = 0; i < n; ++i) {
    buf[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  return buf;
}

// Folding every result into a sink defeats dead-code elimination the way
// benchmark::DoNotOptimize used to; the sink is printed at exit, so the
// compiler cannot discard the work.
uint64_t g_sink = 0;

void BenchCrc32(PerfHarness& harness, size_t bytes) {
  harness.Bench("crc32/" + std::to_string(bytes) + "B", [bytes] {
    const auto buf = MakeBuffer(bytes);
    const uint64_t iters = bytes >= 1024 ? 4096 : 65536;
    for (uint64_t i = 0; i < iters; ++i) {
      g_sink += Crc32(buf);
    }
    return iters * bytes;
  });
}

void BenchRc4(PerfHarness& harness, size_t bytes) {
  harness.Bench("rc4/" + std::to_string(bytes) + "B", [bytes] {
    auto buf = MakeBuffer(bytes);
    const std::vector<uint8_t> key(16, 0x5C);
    const uint64_t iters = bytes >= 1024 ? 2048 : 16384;
    for (uint64_t i = 0; i < iters; ++i) {
      Rc4 rc4(key);
      rc4.Process(buf);
      g_sink += buf[0];
    }
    return iters * bytes;
  });
}

void BenchAesBlock(PerfHarness& harness) {
  harness.Bench("aes_block", [] {
    const auto key = MakeBuffer(16);
    Aes128 aes(std::span<const uint8_t, 16>(key.data(), 16));
    uint8_t block[16] = {};
    const uint64_t iters = 262144;
    for (uint64_t i = 0; i < iters; ++i) {
      aes.EncryptBlock(std::span<const uint8_t, 16>(block, 16),
                       std::span<uint8_t, 16>(block, 16));
    }
    g_sink += block[0];
    return iters * 16;
  });
}

void BenchCcm(PerfHarness& harness, size_t bytes) {
  harness.Bench("ccm_encrypt/" + std::to_string(bytes) + "B", [bytes] {
    const auto key = MakeBuffer(16);
    Ccm ccm(std::span<const uint8_t, 16>(key.data(), 16), 8, 2);
    auto payload = MakeBuffer(bytes);
    const auto nonce = MakeBuffer(13);
    const auto aad = MakeBuffer(22);
    const uint64_t iters = bytes >= 1024 ? 512 : 8192;
    for (uint64_t i = 0; i < iters; ++i) {
      g_sink += ccm.Encrypt(nonce, aad, payload).size();
    }
    return iters * bytes;
  });
}

void BenchMichael(PerfHarness& harness, size_t bytes) {
  harness.Bench("michael_mic/" + std::to_string(bytes) + "B", [bytes] {
    const auto key = MakeBuffer(8);
    const auto payload = MakeBuffer(bytes);
    const uint64_t iters = bytes >= 1024 ? 8192 : 65536;
    for (uint64_t i = 0; i < iters; ++i) {
      g_sink += Michael::Compute(std::span<const uint8_t, 8>(key.data(), 8), payload)[0];
    }
    return iters * bytes;
  });
}

void BenchTkipMixing(PerfHarness& harness) {
  harness.Bench("tkip_phase1", [] {
    const auto tk = MakeBuffer(16);
    const MacAddress ta = MacAddress::FromId(7);
    const uint64_t iters = 262144;
    for (uint64_t i = 0; i < iters; ++i) {
      g_sink += TkipMixer::Phase1(std::span<const uint8_t, 16>(tk.data(), 16), ta,
                                  static_cast<uint32_t>(i))[0];
    }
    return iters;
  });
  harness.Bench("tkip_phase2", [] {
    const auto tk = MakeBuffer(16);
    const auto ttak =
        TkipMixer::Phase1(std::span<const uint8_t, 16>(tk.data(), 16), MacAddress::FromId(7), 1);
    const uint64_t iters = 262144;
    for (uint64_t i = 0; i < iters; ++i) {
      g_sink += TkipMixer::Phase2(ttak, std::span<const uint8_t, 16>(tk.data(), 16),
                                  static_cast<uint16_t>(i))[0];
    }
    return iters;
  });
}

void BenchSuiteProtect(PerfHarness& harness, CipherSuite suite, size_t payload) {
  harness.Bench(std::string("protect_") + ToString(suite) + "/" + std::to_string(payload) + "B",
                [suite, payload] {
                  std::vector<uint8_t> key(suite == CipherSuite::kWep ? 13 : 16, 0x42);
                  auto cipher = CreateCipher(suite, key);
                  FrameCryptoContext ctx;
                  ctx.ta = MacAddress::FromId(1);
                  ctx.da = MacAddress::FromId(2);
                  ctx.sa = MacAddress::FromId(1);
                  const auto original = MakeBuffer(payload);
                  const uint64_t iters = payload >= 1024 ? 1024 : 8192;
                  for (uint64_t i = 0; i < iters; ++i) {
                    std::vector<uint8_t> body = original;
                    cipher->Protect(ctx, body);
                    g_sink += body.size();
                  }
                  return iters * payload;
                });
}

int Run(int argc, char** argv) {
  PerfArgs args = ParsePerfArgs(argc, argv, "wlansim_bench_m1");
  if (!args.ok) {
    return 1;
  }
  PerfHarness harness("M1: crypto primitives (ns/item = ns/byte for *B benches)", args);
  for (size_t bytes : {size_t{64}, size_t{1500}}) {
    BenchCrc32(harness, bytes);
    BenchRc4(harness, bytes);
    BenchCcm(harness, bytes);
    BenchMichael(harness, bytes);
  }
  BenchAesBlock(harness);
  BenchTkipMixing(harness);
  for (CipherSuite suite : {CipherSuite::kOpen, CipherSuite::kWep, CipherSuite::kTkip,
                            CipherSuite::kCcmp}) {
    for (size_t payload : {size_t{64}, size_t{1500}}) {
      BenchSuiteProtect(harness, suite, payload);
    }
  }
  const int rc = harness.Finish();
  std::printf("(checksum %llu)\n", static_cast<unsigned long long>(g_sink));
  return rc;
}

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  return wlansim::Run(argc, argv);
}
