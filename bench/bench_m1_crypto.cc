// M1 — Crypto microbenchmarks.
//
// Per-byte / per-packet cost of every primitive and of full MPDU
// encapsulation per suite. Expected shape: CRC32 ≫ RC4 ≫ AES (software)
// in byte rate; CCM costs ~2 AES passes per block; Michael is cheap but
// dominates TKIP's non-RC4 overhead; TKIP per-packet mixing shows up at
// small packets.

#include <benchmark/benchmark.h>

#include <vector>

#include "crypto/aes.h"
#include "crypto/ccm.h"
#include "crypto/cipher_suite.h"
#include "crypto/crc32.h"
#include "crypto/michael.h"
#include "crypto/rc4.h"
#include "crypto/tkip.h"

namespace wlansim {
namespace {

std::vector<uint8_t> MakeBuffer(size_t n) {
  std::vector<uint8_t> buf(n);
  for (size_t i = 0; i < n; ++i) {
    buf[i] = static_cast<uint8_t>(i * 31 + 7);
  }
  return buf;
}

void BM_Crc32(benchmark::State& state) {
  const auto buf = MakeBuffer(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32(buf));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(1500);

void BM_Rc4Stream(benchmark::State& state) {
  auto buf = MakeBuffer(static_cast<size_t>(state.range(0)));
  const std::vector<uint8_t> key(16, 0x5C);
  for (auto _ : state) {
    Rc4 rc4(key);
    rc4.Process(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Rc4Stream)->Arg(64)->Arg(1500);

void BM_AesBlock(benchmark::State& state) {
  const auto key = MakeBuffer(16);
  Aes128 aes(std::span<const uint8_t, 16>(key.data(), 16));
  uint8_t block[16] = {};
  for (auto _ : state) {
    aes.EncryptBlock(std::span<const uint8_t, 16>(block, 16), std::span<uint8_t, 16>(block, 16));
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AesBlock);

void BM_CcmEncrypt(benchmark::State& state) {
  const auto key = MakeBuffer(16);
  Ccm ccm(std::span<const uint8_t, 16>(key.data(), 16), 8, 2);
  auto payload = MakeBuffer(static_cast<size_t>(state.range(0)));
  const auto nonce = MakeBuffer(13);
  const auto aad = MakeBuffer(22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ccm.Encrypt(nonce, aad, payload));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_CcmEncrypt)->Arg(64)->Arg(1500);

void BM_MichaelMic(benchmark::State& state) {
  const auto key = MakeBuffer(8);
  const auto payload = MakeBuffer(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Michael::Compute(std::span<const uint8_t, 8>(key.data(), 8), payload));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_MichaelMic)->Arg(64)->Arg(1500);

void BM_TkipPhase1(benchmark::State& state) {
  const auto tk = MakeBuffer(16);
  const MacAddress ta = MacAddress::FromId(7);
  uint32_t iv32 = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TkipMixer::Phase1(std::span<const uint8_t, 16>(tk.data(), 16), ta, iv32++));
  }
}
BENCHMARK(BM_TkipPhase1);

void BM_TkipPhase2(benchmark::State& state) {
  const auto tk = MakeBuffer(16);
  const auto ttak = TkipMixer::Phase1(std::span<const uint8_t, 16>(tk.data(), 16),
                                      MacAddress::FromId(7), 1);
  uint16_t iv16 = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TkipMixer::Phase2(ttak, std::span<const uint8_t, 16>(tk.data(), 16), iv16++));
  }
}
BENCHMARK(BM_TkipPhase2);

void BM_SuiteProtect(benchmark::State& state) {
  const CipherSuite suite = static_cast<CipherSuite>(state.range(0));
  const size_t payload = static_cast<size_t>(state.range(1));
  std::vector<uint8_t> key(suite == CipherSuite::kWep ? 13 : 16, 0x42);
  auto cipher = CreateCipher(suite, key);
  FrameCryptoContext ctx;
  ctx.ta = MacAddress::FromId(1);
  ctx.da = MacAddress::FromId(2);
  ctx.sa = MacAddress::FromId(1);
  const auto original = MakeBuffer(payload);
  for (auto _ : state) {
    std::vector<uint8_t> body = original;
    cipher->Protect(ctx, body);
    benchmark::DoNotOptimize(body.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload));
  state.SetLabel(ToString(suite));
}
BENCHMARK(BM_SuiteProtect)
    ->ArgsProduct({{static_cast<int>(CipherSuite::kOpen), static_cast<int>(CipherSuite::kWep),
                    static_cast<int>(CipherSuite::kTkip), static_cast<int>(CipherSuite::kCcmp)},
                   {64, 1500}});

}  // namespace
}  // namespace wlansim

BENCHMARK_MAIN();
