// Shared helpers for the experiment harnesses. The canonical scenario
// builders live in the library (runner/builders.h) so the campaign runner,
// the benches and the examples execute identical scenario code; this header
// only re-exports them plus the table-printing glue the bench mains use.

#ifndef WLANSIM_BENCH_BENCH_UTIL_H_
#define WLANSIM_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "bench/perf_harness.h"
#include "net/network.h"
#include "rate/arf.h"
#include "rate/minstrel.h"
#include "rate/onoe.h"
#include "rate/sample_rate.h"
#include "runner/builders.h"
#include "runner/sweep.h"
#include "stats/table.h"

namespace wlansim {

// Creates the requested rate controller by name; nullptr for "fixed".
inline std::unique_ptr<RateController> MakeController(const std::string& name,
                                                      PhyStandard standard, Rng rng) {
  return MakeRateController(name, standard, rng);
}

inline void PrintTable(const std::string& title, const Table& table, int argc, char** argv) {
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--csv") {
      csv = true;
    }
  }
  std::printf("=== %s ===\n", title.c_str());
  std::fputs(csv ? table.ToCsv().c_str() : table.ToString().c_str(), stdout);
  std::printf("\n");
}

// --- Helpers for the sweep-engine figure benches (f1/f4/f11) -----------------

// CLI of a sweep-driven bench: replications, worker threads, base seed, and
// an optional CSV output path (a prefix when the bench writes several files).
struct SweepBenchArgs {
  uint64_t reps = 1;
  unsigned jobs = 0;  // all hardware threads; results are jobs-independent
  uint64_t seed = 1;
  std::string csv;
  bool ok = true;
};

inline SweepBenchArgs ParseSweepBenchArgs(int argc, char** argv, const char* bench_name) {
  SweepBenchArgs args;
  // Digits-only, like wlansim_run: a typo'd flag value must be a usage
  // error, not a silently different campaign.
  auto parse_u64 = [&args](const char* flag, const char* v, uint64_t* out) {
    if (!ParseBenchU64(flag, v, out)) {
      args.ok = false;
    }
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    uint64_t jobs = 0;
    if (std::strncmp(arg, "--reps=", 7) == 0) {
      parse_u64("--reps", arg + 7, &args.reps);
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      parse_u64("--jobs", arg + 7, &jobs);
      args.jobs = static_cast<unsigned>(jobs);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      parse_u64("--seed", arg + 7, &args.seed);
    } else if (std::strncmp(arg, "--csv=", 6) == 0) {
      args.csv = arg + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--reps=N] [--jobs=N] [--seed=N] [--csv=PATH]\n",
                   bench_name);
      args.ok = false;
      return args;
    }
  }
  if (args.ok && args.reps == 0) {
    std::fprintf(stderr, "--reps must be at least 1\n");
    args.ok = false;
  }
  return args;
}

// Mean of one metric at a grid point; 0 when the metric is absent.
inline double MetricMean(const SweepPointResult& point, const std::string& metric) {
  for (const MetricAggregate& a : point.aggregates) {
    if (a.metric == metric) {
      return a.mean;
    }
  }
  return 0.0;
}

// The value a grid point assigned to a swept key ("" when not swept).
inline std::string PointValue(const SweepPointResult& point, const std::string& key) {
  for (const auto& [k, v] : point.point) {
    if (k == key) {
      return v;
    }
  }
  return std::string();
}

inline bool WriteSweepCsv(const std::string& path, const SweepResult& result) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << SweepResultToCsv(result);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace wlansim

#endif  // WLANSIM_BENCH_BENCH_UTIL_H_
