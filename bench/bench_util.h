// Shared helpers for the experiment harnesses: canonical scenario builders
// and result rows. Every bench binary prints an aligned table (and CSV when
// --csv is passed) with the series the corresponding figure/table reports.

#ifndef WLANSIM_BENCH_BENCH_UTIL_H_
#define WLANSIM_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

#include "net/network.h"
#include "rate/arf.h"
#include "rate/minstrel.h"
#include "rate/onoe.h"
#include "rate/sample_rate.h"
#include "stats/table.h"

namespace wlansim {

// Result of one scenario run.
struct RunResult {
  double goodput_mbps = 0.0;
  double loss_rate = 0.0;
  double mean_delay_ms = 0.0;
  uint64_t retries = 0;
  uint64_t tx_attempts = 0;
  uint64_t rx_ok = 0;
  uint64_t handoffs = 0;
};

// Saturated uplink BSS: `n_stas` stations at `distance` m from the AP, all
// backlogged toward the AP with `payload` bytes. Returns aggregate results.
struct SaturationParams {
  PhyStandard standard = PhyStandard::k80211b;
  size_t n_stas = 1;
  size_t payload = 1500;
  double distance = 10.0;
  uint32_t rts_threshold = 65535;  // off by default
  Time sim_time = Time::Seconds(6);
  Time warmup = Time::Seconds(1);
  uint64_t seed = 1;
  CipherSuite cipher = CipherSuite::kOpen;
  // Fixed rate index into ModesFor(standard); SIZE_MAX = highest.
  size_t rate_index = SIZE_MAX;
};

inline RunResult RunSaturationScenario(const SaturationParams& p) {
  Network net(Network::Params{.seed = p.seed});
  net.UseLogDistanceLoss(3.0);

  std::vector<uint8_t> key(16, 0x42);
  auto mac_tweak = [&](WifiMac::Config& c) {
    c.rts_threshold = p.rts_threshold;
    if (p.cipher != CipherSuite::kOpen) {
      c.cipher = p.cipher;
      c.cipher_key = p.cipher == CipherSuite::kWep ? std::vector<uint8_t>(13, 0x42) : key;
    }
  };

  Node* ap = net.AddNode(
      {.role = MacRole::kAp, .standard = p.standard, .ssid = "bench", .mac_tweak = mac_tweak});
  const auto modes = ModesFor(p.standard);
  const WifiMode fixed =
      modes[p.rate_index == SIZE_MAX ? modes.size() - 1 : p.rate_index];

  std::vector<Node*> stas;
  for (size_t i = 0; i < p.n_stas; ++i) {
    // Stations on a circle around the AP.
    const double angle = 2.0 * 3.14159265358979 * static_cast<double>(i) /
                         static_cast<double>(std::max<size_t>(p.n_stas, 1));
    Node* sta = net.AddNode({.role = MacRole::kSta,
                             .standard = p.standard,
                             .ssid = "bench",
                             .position = {p.distance * std::cos(angle),
                                          p.distance * std::sin(angle), 0},
                             .mac_tweak = mac_tweak});
    sta->SetRateController(std::make_unique<FixedRateController>(fixed));
    stas.push_back(sta);
  }
  net.StartAll();

  for (size_t i = 0; i < stas.size(); ++i) {
    auto* app = stas[i]->AddTraffic<SaturatedTraffic>(ap->address(),
                                                      static_cast<uint32_t>(i + 1), p.payload);
    app->Start(p.warmup);
  }
  net.Run(p.warmup + p.sim_time);

  RunResult r;
  r.goodput_mbps = net.flow_stats().GoodputMbps();
  r.loss_rate = net.flow_stats().LossRate();
  uint64_t delay_count = 0;
  double delay_sum = 0;
  for (const auto& [id, flow] : net.flow_stats().flows()) {
    delay_sum += flow.delay_us.mean() * static_cast<double>(flow.delay_us.count());
    delay_count += flow.delay_us.count();
  }
  r.mean_delay_ms = delay_count ? delay_sum / static_cast<double>(delay_count) / 1000.0 : 0.0;
  for (auto& sta : stas) {
    r.retries += sta->mac().counters().retries;
    r.tx_attempts += sta->mac().counters().tx_data_attempts;
  }
  r.rx_ok = ap->mac().counters().rx_data;
  return r;
}

// Creates the requested rate controller by name; nullptr for "fixed".
inline std::unique_ptr<RateController> MakeController(const std::string& name,
                                                      PhyStandard standard, Rng rng) {
  if (name == "arf") {
    return std::make_unique<ArfController>(standard);
  }
  if (name == "aarf") {
    ArfController::Options o;
    o.adaptive = true;
    return std::make_unique<ArfController>(standard, o);
  }
  if (name == "onoe") {
    return std::make_unique<OnoeController>(standard);
  }
  if (name == "samplerate") {
    return std::make_unique<SampleRateController>(standard, rng);
  }
  if (name == "minstrel") {
    return std::make_unique<MinstrelController>(standard, rng);
  }
  return nullptr;
}

inline void PrintTable(const std::string& title, const Table& table, int argc, char** argv) {
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--csv") {
      csv = true;
    }
  }
  std::printf("=== %s ===\n", title.c_str());
  std::fputs(csv ? table.ToCsv().c_str() : table.ToString().c_str(), stdout);
  std::printf("\n");
}

}  // namespace wlansim

#endif  // WLANSIM_BENCH_BENCH_UTIL_H_
