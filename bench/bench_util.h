// Shared helpers for the experiment harnesses. The canonical scenario
// builders live in the library (runner/builders.h) so the campaign runner,
// the benches and the examples execute identical scenario code; this header
// only re-exports them plus the table-printing glue the bench mains use.

#ifndef WLANSIM_BENCH_BENCH_UTIL_H_
#define WLANSIM_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

#include "net/network.h"
#include "rate/arf.h"
#include "rate/minstrel.h"
#include "rate/onoe.h"
#include "rate/sample_rate.h"
#include "runner/builders.h"
#include "stats/table.h"

namespace wlansim {

// Creates the requested rate controller by name; nullptr for "fixed".
inline std::unique_ptr<RateController> MakeController(const std::string& name,
                                                      PhyStandard standard, Rng rng) {
  return MakeRateController(name, standard, rng);
}

inline void PrintTable(const std::string& title, const Table& table, int argc, char** argv) {
  bool csv = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--csv") {
      csv = true;
    }
  }
  std::printf("=== %s ===\n", title.c_str());
  std::fputs(csv ? table.ToCsv().c_str() : table.ToString().c_str(), stdout);
  std::printf("\n");
}

}  // namespace wlansim

#endif  // WLANSIM_BENCH_BENCH_UTIL_H_
