// F2 — DCF saturation throughput vs number of stations (Bianchi's figure),
// on the in-tree perf harness.
//
// n backlogged stations, basic access vs RTS/CTS, for 802.11b @ 11 Mb/s and
// 802.11a @ 54 Mb/s, each simulated point set beside the analytic Bianchi
// prediction for the same configuration. Expected shape: aggregate
// throughput decays slowly as n grows (collision cost); RTS/CTS is flatter
// in n and overtakes basic access once collisions are expensive (large
// payloads, many stations).
//
// The harness times each whole-simulation point (items = MPDUs delivered,
// so items/s gauges simulator speed); the figure table itself is printed
// from the scenario results afterwards.

#include <cstdint>
#include <string>

#include "bench/bench_util.h"
#include "mac/frames.h"
#include "stats/bianchi.h"

namespace wlansim {
namespace {

// Analytic Bianchi prediction for the same configuration.
double AnalyticMbps(PhyStandard standard, uint32_t n, size_t payload, bool rtscts) {
  const PhyTiming t = TimingFor(standard);
  const WifiMode& data_mode = ModesFor(standard).back();
  const WifiMode& ctl_mode = ControlResponseMode(data_mode);
  BianchiParams p;
  p.n_stations = n;
  p.cw_min = t.cw_min;
  p.max_backoff_stages = 5;
  p.slot = t.slot;
  p.sifs = t.sifs;
  p.difs = t.Difs();
  p.data_duration = FrameDuration(data_mode, payload + kDataHeaderSize + kFcsSize);
  p.ack_duration = AckDuration(ctl_mode);
  p.rts_duration = RtsDuration(ctl_mode);
  p.cts_duration = CtsDuration(ctl_mode);
  p.payload_bits = 8.0 * static_cast<double>(payload);
  const BianchiResult r = SolveBianchi(p);
  return (rtscts ? r.throughput_bps_rtscts : r.throughput_bps_basic) / 1e6;
}

const size_t kStaCounts[] = {1, 2, 5, 10, 20, 35};
constexpr size_t kPayload = 1500;

int Run(int argc, char** argv) {
  PerfArgs args = ParsePerfArgs(argc, argv, "bench_f2_saturation", /*default_reps=*/1);
  if (!args.ok) {
    return 1;
  }
  args.warmup = false;  // one rep of a deterministic simulation needs no cache warming

  PerfHarness harness("F2: DCF saturation harness (items = delivered MPDUs)", args);
  Table table({"standard", "n_stas", "access", "agg_goodput_mbps", "bianchi_mbps",
               "retry_rate_%", "mean_delay_ms"});
  for (const PhyStandard standard : {PhyStandard::k80211b, PhyStandard::k80211a}) {
    for (const bool rtscts : {false, true}) {
      for (const size_t n : kStaCounts) {
        const std::string name = std::string(ToString(standard)) +
                                 (rtscts ? "/rtscts/n=" : "/basic/n=") + std::to_string(n);
        if (!args.filter.empty() && name.find(args.filter) == std::string::npos) {
          continue;  // keep the figure table aligned with the benches that ran
        }
        RunResult r{};
        harness.Bench(name, [standard, rtscts, n, &r] {
          SaturationParams p;
          p.standard = standard;
          p.n_stas = n;
          p.payload = kPayload;
          p.distance = 10.0;
          p.rts_threshold = rtscts ? 400 : 65535;
          p.sim_time = Time::Seconds(5);
          p.seed = 100 + n;
          r = RunSaturationScenario(p);
          return r.rx_ok;
        });
        const double retry_rate =
            r.tx_attempts
                ? 100.0 * static_cast<double>(r.retries) / static_cast<double>(r.tx_attempts)
                : 0.0;
        table.AddRow(
            {ToString(standard), std::to_string(n), rtscts ? "rts/cts" : "basic",
             Table::Num(r.goodput_mbps, 2),
             Table::Num(AnalyticMbps(standard, static_cast<uint32_t>(n), kPayload, rtscts), 2),
             Table::Num(retry_rate, 1), Table::Num(r.mean_delay_ms, 1)});
      }
    }
  }
  const int rc = harness.Finish();
  std::printf("=== F2: DCF saturation throughput vs station count (1500 B) ===\n%s\n",
              table.ToString().c_str());
  return rc;
}

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  return wlansim::Run(argc, argv);
}
