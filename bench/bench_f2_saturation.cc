// F2 — DCF saturation throughput vs number of stations (Bianchi's figure).
//
// n backlogged stations, basic access vs RTS/CTS, for 802.11b @ 11 Mb/s and
// 802.11a @ 54 Mb/s. Expected shape: aggregate throughput decays slowly as n
// grows (collision cost); RTS/CTS is flatter in n and overtakes basic access
// once collisions are expensive (large payloads, many stations).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "mac/frames.h"
#include "stats/bianchi.h"

namespace wlansim {
namespace {

Table g_table({"standard", "n_stas", "access", "agg_goodput_mbps", "bianchi_mbps",
               "retry_rate_%", "mean_delay_ms"});

// Analytic Bianchi prediction for the same configuration.
double AnalyticMbps(PhyStandard standard, uint32_t n, size_t payload, bool rtscts) {
  const PhyTiming t = TimingFor(standard);
  const WifiMode& data_mode = ModesFor(standard).back();
  const WifiMode& ctl_mode = ControlResponseMode(data_mode);
  BianchiParams p;
  p.n_stations = n;
  p.cw_min = t.cw_min;
  p.max_backoff_stages = 5;
  p.slot = t.slot;
  p.sifs = t.sifs;
  p.difs = t.Difs();
  p.data_duration = FrameDuration(data_mode, payload + kDataHeaderSize + kFcsSize);
  p.ack_duration = AckDuration(ctl_mode);
  p.rts_duration = RtsDuration(ctl_mode);
  p.cts_duration = CtsDuration(ctl_mode);
  p.payload_bits = 8.0 * static_cast<double>(payload);
  const BianchiResult r = SolveBianchi(p);
  return (rtscts ? r.throughput_bps_rtscts : r.throughput_bps_basic) / 1e6;
}

const size_t kStaCounts[] = {1, 2, 5, 10, 20, 35};

void Run(benchmark::State& state, PhyStandard standard, bool rtscts) {
  const size_t n = kStaCounts[state.range(0)];
  SaturationParams p;
  p.standard = standard;
  p.n_stas = n;
  p.payload = 1500;
  p.distance = 10.0;
  p.rts_threshold = rtscts ? 400 : 65535;
  p.sim_time = Time::Seconds(5);
  p.seed = 100 + n;
  RunResult r{};
  for (auto _ : state) {
    r = RunSaturationScenario(p);
  }
  const double retry_rate =
      r.tx_attempts ? 100.0 * static_cast<double>(r.retries) / static_cast<double>(r.tx_attempts)
                    : 0.0;
  state.counters["goodput_mbps"] = r.goodput_mbps;
  state.counters["retry_pct"] = retry_rate;
  g_table.AddRow({ToString(standard), std::to_string(n), rtscts ? "rts/cts" : "basic",
                  Table::Num(r.goodput_mbps, 2),
                  Table::Num(AnalyticMbps(standard, static_cast<uint32_t>(n), p.payload, rtscts), 2),
                  Table::Num(retry_rate, 1), Table::Num(r.mean_delay_ms, 1)});
}

void BM_Dcf11bBasic(benchmark::State& state) {
  Run(state, PhyStandard::k80211b, false);
}
void BM_Dcf11bRtsCts(benchmark::State& state) {
  Run(state, PhyStandard::k80211b, true);
}
void BM_Dcf11aBasic(benchmark::State& state) {
  Run(state, PhyStandard::k80211a, false);
}
void BM_Dcf11aRtsCts(benchmark::State& state) {
  Run(state, PhyStandard::k80211a, true);
}

BENCHMARK(BM_Dcf11bBasic)->DenseRange(0, 5)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Dcf11bRtsCts)->DenseRange(0, 5)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Dcf11aBasic)->DenseRange(0, 5)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Dcf11aRtsCts)->DenseRange(0, 5)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  wlansim::PrintTable("F2: DCF saturation throughput vs station count (1500 B)",
                      wlansim::g_table, argc, argv);
  return 0;
}
