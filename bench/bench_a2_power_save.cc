// A2 (ablation) — power-save energy/latency trade, on the in-tree perf
// harness.
//
// A station receives light downlink CBR (5 packets/s). Sweep: PS off
// (constantly awake) vs PS on with listen interval ∈ {1, 3, 10} beacons.
// Expected shape: station energy collapses by an order of magnitude with
// PS (idle listening dominates an idle radio's budget), while mean delivery
// delay grows ≈ listen_interval × beacon_interval / 2 — the classic duty-
// cycling trade-off curve.
//
// The harness times each whole-simulation point (items = packets delivered
// to the station); the figure table is printed from the scenario results.

#include <cstdint>
#include <string>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

struct Outcome {
  double energy_j = 0.0;
  double energy_per_packet_mj = 0.0;
  double delay_ms = 0.0;
  double loss = 0.0;
  double sleep_fraction = 0.0;
  uint64_t delivered = 0;
};

Outcome RunPs(bool ps, uint8_t listen_interval, uint64_t seed) {
  Network net(Network::Params{.seed = seed});
  net.UseLogDistanceLoss(3.0);
  Node* ap = net.AddNode({.role = MacRole::kAp, .standard = PhyStandard::k80211b, .ssid = "a2"});
  Node* sta = net.AddNode({.role = MacRole::kSta,
                           .standard = PhyStandard::k80211b,
                           .ssid = "a2",
                           .position = {10, 0, 0},
                           .mac_tweak = [ps, listen_interval](WifiMac::Config& c) {
                             c.power_save = ps;
                             c.listen_interval = listen_interval;
                           }});
  net.StartAll();
  auto* app = ap->AddTraffic<CbrTraffic>(sta->address(), 1, 400, Time::Millis(200));
  app->Start(Time::Seconds(1));
  net.Run(Time::Seconds(21));

  Outcome out{};
  const auto times = sta->phy().GetStateTimes(net.sim().Now());
  out.energy_j = times.EnergyJoules();
  out.delivered = sta->packets_received();
  out.energy_per_packet_mj =
      out.delivered ? 1000.0 * out.energy_j / static_cast<double>(out.delivered) : 0.0;
  const auto* flow = net.flow_stats().Find(1);
  out.delay_ms = flow != nullptr ? flow->delay_us.mean() / 1000.0 : 0.0;
  out.loss = net.flow_stats().LossRate(1);
  const double total = (times.tx + times.rx + times.listen + times.sleep).seconds();
  out.sleep_fraction = total > 0 ? times.sleep.seconds() / total : 0.0;
  return out;
}

int Run(int argc, char** argv) {
  PerfArgs args = ParsePerfArgs(argc, argv, "bench_a2_power_save", /*default_reps=*/1);
  if (!args.ok) {
    return 1;
  }
  args.warmup = false;  // one rep of a deterministic simulation needs no cache warming

  PerfHarness harness("A2: power-save ablation harness (items = packets delivered)", args);
  Table table({"mode", "listen_interval", "sta_energy_J", "energy_per_pkt_mJ", "mean_delay_ms",
               "loss_%", "sleep_fraction_%"});
  struct Point {
    bool ps;
    uint8_t listen_interval;
    const char* name;
  };
  const Point kPoints[] = {{false, 1, "always-on"},
                           {true, 1, "ps/listen=1"},
                           {true, 3, "ps/listen=3"},
                           {true, 10, "ps/listen=10"}};
  for (const Point& pt : kPoints) {
    if (!args.filter.empty() && std::string(pt.name).find(args.filter) == std::string::npos) {
      continue;  // keep the figure table aligned with the benches that ran
    }
    Outcome o{};
    harness.Bench(pt.name, [&pt, &o] {
      o = RunPs(pt.ps, pt.listen_interval, 321);
      return o.delivered;
    });
    table.AddRow({pt.ps ? "power-save" : "always-on",
                  pt.ps ? std::to_string(pt.listen_interval) : "-", Table::Num(o.energy_j, 2),
                  Table::Num(o.energy_per_packet_mj, 1), Table::Num(o.delay_ms, 1),
                  Table::Num(100 * o.loss, 1), Table::Num(100 * o.sleep_fraction, 1)});
  }
  const int rc = harness.Finish();
  std::printf("=== A2: power-save energy vs latency (400 B CBR downlink @ 5 pkt/s, 20 s) ===\n%s\n",
              table.ToString().c_str());
  return rc;
}

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  return wlansim::Run(argc, argv);
}
