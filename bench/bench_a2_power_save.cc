// A2 (ablation) — power-save energy/latency trade.
//
// A station receives light downlink CBR (5 packets/s). Sweep: PS off
// (constantly awake) vs PS on with listen interval ∈ {1, 3, 10} beacons.
// Expected shape: station energy collapses by an order of magnitude with
// PS (idle listening dominates an idle radio's budget), while mean delivery
// delay grows ≈ listen_interval × beacon_interval / 2 — the classic duty-
// cycling trade-off curve.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

Table g_table({"mode", "listen_interval", "sta_energy_J", "energy_per_pkt_mJ", "mean_delay_ms",
               "loss_%", "sleep_fraction_%"});

struct Outcome {
  double energy_j;
  double energy_per_packet_mj;
  double delay_ms;
  double loss;
  double sleep_fraction;
};

Outcome RunPs(bool ps, uint8_t listen_interval, uint64_t seed) {
  Network net(Network::Params{.seed = seed});
  net.UseLogDistanceLoss(3.0);
  Node* ap = net.AddNode({.role = MacRole::kAp, .standard = PhyStandard::k80211b, .ssid = "a2"});
  Node* sta = net.AddNode({.role = MacRole::kSta,
                           .standard = PhyStandard::k80211b,
                           .ssid = "a2",
                           .position = {10, 0, 0},
                           .mac_tweak = [ps, listen_interval](WifiMac::Config& c) {
                             c.power_save = ps;
                             c.listen_interval = listen_interval;
                           }});
  net.StartAll();
  auto* app = ap->AddTraffic<CbrTraffic>(sta->address(), 1, 400, Time::Millis(200));
  app->Start(Time::Seconds(1));
  net.Run(Time::Seconds(21));

  Outcome out{};
  const auto times = sta->phy().GetStateTimes(net.sim().Now());
  out.energy_j = times.EnergyJoules();
  const auto delivered = sta->packets_received();
  out.energy_per_packet_mj = delivered ? 1000.0 * out.energy_j / static_cast<double>(delivered)
                                       : 0.0;
  const auto* flow = net.flow_stats().Find(1);
  out.delay_ms = flow != nullptr ? flow->delay_us.mean() / 1000.0 : 0.0;
  out.loss = net.flow_stats().LossRate(1);
  const double total = (times.tx + times.rx + times.listen + times.sleep).seconds();
  out.sleep_fraction = total > 0 ? times.sleep.seconds() / total : 0.0;
  return out;
}

void Run(benchmark::State& state, bool ps, uint8_t listen_interval) {
  Outcome o{};
  for (auto _ : state) {
    o = RunPs(ps, listen_interval, 321);
  }
  state.counters["energy_j"] = o.energy_j;
  state.counters["delay_ms"] = o.delay_ms;
  g_table.AddRow({ps ? "power-save" : "always-on",
                  ps ? std::to_string(listen_interval) : "-", Table::Num(o.energy_j, 2),
                  Table::Num(o.energy_per_packet_mj, 1), Table::Num(o.delay_ms, 1),
                  Table::Num(100 * o.loss, 1), Table::Num(100 * o.sleep_fraction, 1)});
}

void BM_AlwaysOn(benchmark::State& s) {
  Run(s, false, 1);
}
void BM_PsListen1(benchmark::State& s) {
  Run(s, true, 1);
}
void BM_PsListen3(benchmark::State& s) {
  Run(s, true, 3);
}
void BM_PsListen10(benchmark::State& s) {
  Run(s, true, 10);
}

BENCHMARK(BM_AlwaysOn)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PsListen1)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PsListen3)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PsListen10)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  wlansim::PrintTable(
      "A2: power-save energy vs latency (400 B CBR downlink @ 5 pkt/s, 20 s)",
      wlansim::g_table, argc, argv);
  return 0;
}
