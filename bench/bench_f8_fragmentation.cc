// F8 — Fragmentation threshold sweep under hidden burst interference.
//
// On a clean, strong channel fragmentation only adds PLCP/ACK overhead, so
// goodput falls monotonically as the threshold shrinks. Under a *hidden*
// burst interferer (out of the sender's carrier-sense range, Poisson burst
// arrivals so retransmissions cannot phase-lock onto the burst pattern),
// long MPDUs almost always overlap a burst and die, while fragments confine
// the damage to the overlapped fragment. Expected shape: clean channel —
// "off" wins; jammed channel — an intermediate threshold beats both
// extremes (classic overhead-vs-vulnerability trade).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

Table g_table({"channel", "frag_threshold_B", "goodput_mbps", "drop_rate_%", "retry_rate_%"});

const uint32_t kThresholds[] = {256, 512, 1024, 2346};

void Run(benchmark::State& state, bool jammed) {
  const uint32_t threshold = kThresholds[state.range(0)];
  HiddenTerminalResult r{};
  for (auto _ : state) {
    // Average 3 seeds: the jammed scenario has high run-to-run variance.
    HiddenTerminalResult acc{};
    constexpr int kSeeds = 3;
    for (int s_i = 0; s_i < kSeeds; ++s_i) {
      FragmentationParams p;
      p.jammed = jammed;
      p.frag_threshold = threshold;
      p.seed = 31 + 17 * static_cast<uint64_t>(s_i);
      const HiddenTerminalResult one = RunFragmentationScenario(p);
      acc.goodput_mbps += one.goodput_mbps / kSeeds;
      acc.retry_rate += one.retry_rate / kSeeds;
      acc.drop_rate += one.drop_rate / kSeeds;
    }
    r = acc;
  }
  state.counters["goodput_mbps"] = r.goodput_mbps;
  g_table.AddRow({jammed ? "hidden-jammer" : "clean",
                  threshold >= 2346 ? "off" : std::to_string(threshold),
                  Table::Num(r.goodput_mbps, 3), Table::Num(100.0 * r.drop_rate, 2),
                  Table::Num(100.0 * r.retry_rate, 1)});
}

void BM_Clean(benchmark::State& s) {
  Run(s, false);
}
void BM_Jammed(benchmark::State& s) {
  Run(s, true);
}

BENCHMARK(BM_Clean)->DenseRange(0, 3)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Jammed)->DenseRange(0, 3)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  wlansim::PrintTable("F8: fragmentation threshold sweep (2000 B MSDUs, 11 Mb/s)",
                      wlansim::g_table, argc, argv);
  return 0;
}
