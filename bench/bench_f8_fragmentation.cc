// F8 — Fragmentation threshold sweep under hidden burst interference.
//
// On a clean, strong channel fragmentation only adds PLCP/ACK overhead, so
// goodput falls monotonically as the threshold shrinks. Under a *hidden*
// burst interferer (out of the sender's carrier-sense range, Poisson burst
// arrivals so retransmissions cannot phase-lock onto the burst pattern),
// long MPDUs almost always overlap a burst and die, while fragments confine
// the damage to the overlapped fragment. Expected shape: clean channel —
// "off" wins; jammed channel — an intermediate threshold beats both
// extremes (classic overhead-vs-vulnerability trade).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

Table g_table({"channel", "frag_threshold_B", "goodput_mbps", "drop_rate_%", "retry_rate_%"});

RunResult RunFrag(bool jammed, uint32_t threshold, uint64_t seed) {
  Network net(Network::Params{.seed = seed});
  MatrixLossModel* loss = net.UseMatrixLoss(200.0);

  auto frag = [&](WifiMac::Config& c) {
    c.frag_threshold = threshold;
    c.retry_limit = 7;
  };
  // DSSS receivers capture a ≥6 dB stronger frame during the preamble; the
  // data signal is 7.5 dB above the jammer, so a frame arriving while the
  // receiver is locked onto a jammer preamble can still win the receiver.
  auto capture = [](WifiPhy::Config& c) { c.capture_margin_db = 6.0; };
  // ids: 0 receiver, 1 sender, 2 jammer.
  Node* rx = net.AddNode({.role = MacRole::kAdhoc,
                          .standard = PhyStandard::k80211b,
                          .phy_tweak = capture,
                          .mac_tweak = frag});
  Node* tx = net.AddNode({.role = MacRole::kAdhoc,
                          .standard = PhyStandard::k80211b,
                          .position = {30, 0, 0},
                          .phy_tweak = capture,
                          .mac_tweak = frag});
  loss->SetLoss(1, 0, 75.0);  // signal at the receiver: -59 dBm
  Node* jammer = nullptr;
  if (jammed) {
    jammer = net.AddNode({.role = MacRole::kAdhoc,
                          .standard = PhyStandard::k80211b,
                          .position = {-30, 0, 0}});
    // Jammer reaches the receiver at -66.5 dBm → SINR ≈ 7.5 dB during a
    // burst: overlapped CCK-11 bits see BER ~2e-4, so short fragments often
    // survive a graze while 2000-byte MPDUs die. Sender cannot hear it.
    loss->SetLoss(2, 0, 82.5);
  }

  tx->SetRateController(
      std::make_unique<FixedRateController>(ModesFor(PhyStandard::k80211b).back()));
  net.StartAll();
  tx->AddTraffic<SaturatedTraffic>(rx->address(), 1, 2000)->Start(Time::Seconds(1));
  if (jammer != nullptr) {
    // Poisson bursts: 400 B broadcasts (~480 us air) at 250/s — ~12 % duty,
    // arrivals memoryless so fragment retries re-roll the overlap dice.
    jammer->SetRateController(
        std::make_unique<FixedRateController>(ModesFor(PhyStandard::k80211b).back()));
    jammer
        ->AddTraffic<PoissonTraffic>(MacAddress::Broadcast(), 99, 400, 250.0,
                                     net.ForkRng("jam"))
        ->Start(Time::Seconds(1));
  }
  net.Run(Time::Seconds(9));

  RunResult r;
  r.goodput_mbps = net.flow_stats().GoodputMbps(1);
  r.retries = tx->mac().counters().retries;
  r.tx_attempts = tx->mac().counters().tx_data_attempts;
  r.loss_rate = static_cast<double>(tx->mac().counters().tx_data_dropped);
  return r;
}

const uint32_t kThresholds[] = {256, 512, 1024, 2346};

void Run(benchmark::State& state, bool jammed) {
  const uint32_t threshold = kThresholds[state.range(0)];
  RunResult r{};
  for (auto _ : state) {
    // Average 3 seeds: the jammed scenario has high run-to-run variance.
    RunResult acc{};
    constexpr int kSeeds = 3;
    for (int s_i = 0; s_i < kSeeds; ++s_i) {
      const RunResult one = RunFrag(jammed, threshold, 31 + 17 * s_i);
      acc.goodput_mbps += one.goodput_mbps / kSeeds;
      acc.retries += one.retries;
      acc.tx_attempts += one.tx_attempts;
      acc.loss_rate += one.loss_rate;
    }
    r = acc;
  }
  const double retry_rate =
      r.tx_attempts ? 100.0 * static_cast<double>(r.retries) / static_cast<double>(r.tx_attempts)
                    : 0.0;
  const double drop_rate =
      r.tx_attempts ? 100.0 * r.loss_rate / static_cast<double>(r.tx_attempts) : 0.0;
  state.counters["goodput_mbps"] = r.goodput_mbps;
  g_table.AddRow({jammed ? "hidden-jammer" : "clean",
                  threshold >= 2346 ? "off" : std::to_string(threshold),
                  Table::Num(r.goodput_mbps, 3), Table::Num(drop_rate, 2),
                  Table::Num(retry_rate, 1)});
}

void BM_Clean(benchmark::State& s) {
  Run(s, false);
}
void BM_Jammed(benchmark::State& s) {
  Run(s, true);
}

BENCHMARK(BM_Clean)->DenseRange(0, 3)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Jammed)->DenseRange(0, 3)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  wlansim::PrintTable("F8: fragmentation threshold sweep (2000 B MSDUs, 11 Mb/s)",
                      wlansim::g_table, argc, argv);
  return 0;
}
