// F8 — Fragmentation threshold sweep under hidden burst interference, on
// the in-tree perf harness.
//
// On a clean, strong channel fragmentation only adds PLCP/ACK overhead, so
// goodput falls monotonically as the threshold shrinks. Under a *hidden*
// burst interferer (out of the sender's carrier-sense range, Poisson burst
// arrivals so retransmissions cannot phase-lock onto the burst pattern),
// long MPDUs almost always overlap a burst and die, while fragments confine
// the damage to the overlapped fragment. Expected shape: clean channel —
// "off" wins; jammed channel — an intermediate threshold beats both
// extremes (classic overhead-vs-vulnerability trade).
//
// The harness times each threshold point (all 3 seeds per batch; items =
// delivered payload bytes); the figure table is printed afterwards.

#include <cstdint>
#include <string>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

const uint32_t kThresholds[] = {256, 512, 1024, 2346};

int Run(int argc, char** argv) {
  PerfArgs args = ParsePerfArgs(argc, argv, "bench_f8_fragmentation", /*default_reps=*/1);
  if (!args.ok) {
    return 1;
  }
  args.warmup = false;  // one rep of a deterministic simulation needs no cache warming

  PerfHarness harness("F8: fragmentation harness (items = delivered bytes)", args);
  Table table({"channel", "frag_threshold_B", "goodput_mbps", "drop_rate_%", "retry_rate_%"});
  for (const bool jammed : {false, true}) {
    for (const uint32_t threshold : kThresholds) {
      const std::string name = std::string(jammed ? "jammed" : "clean") +
                               "/threshold=" + std::to_string(threshold);
      if (!args.filter.empty() && name.find(args.filter) == std::string::npos) {
        continue;  // keep the figure table aligned with the benches that ran
      }
      HiddenTerminalResult r{};
      harness.Bench(name, [jammed, threshold, &r] {
        // Average 3 seeds: the jammed scenario has high run-to-run variance.
        HiddenTerminalResult acc{};
        constexpr int kSeeds = 3;
        double sim_secs = 0.0;
        for (int s_i = 0; s_i < kSeeds; ++s_i) {
          FragmentationParams p;
          p.jammed = jammed;
          p.frag_threshold = threshold;
          p.seed = 31 + 17 * static_cast<uint64_t>(s_i);
          sim_secs = p.sim_time.seconds();
          const HiddenTerminalResult one = RunFragmentationScenario(p);
          acc.goodput_mbps += one.goodput_mbps / kSeeds;
          acc.retry_rate += one.retry_rate / kSeeds;
          acc.drop_rate += one.drop_rate / kSeeds;
        }
        r = acc;
        return static_cast<uint64_t>(kSeeds * r.goodput_mbps * 1e6 / 8.0 * sim_secs);
      });
      table.AddRow({jammed ? "hidden-jammer" : "clean",
                    threshold >= 2346 ? "off" : std::to_string(threshold),
                    Table::Num(r.goodput_mbps, 3), Table::Num(100.0 * r.drop_rate, 2),
                    Table::Num(100.0 * r.retry_rate, 1)});
    }
  }
  const int rc = harness.Finish();
  std::printf("=== F8: fragmentation threshold sweep (2000 B MSDUs, 11 Mb/s) ===\n%s\n",
              table.ToString().c_str());
  return rc;
}

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  return wlansim::Run(argc, argv);
}
