// F3 — The hidden-terminal problem and the RTS/CTS rescue.
//
// Two senders A and B cannot hear each other (matrix loss puts them out of
// carrier-sense range) but share receiver R. Expected shape: with basic
// access both flows collapse under collisions (aggregate well below a single
// unimpeded sender); enabling RTS/CTS restores most of the channel because
// the short RTS collisions are cheap and the CTS silences the hidden peer.
// A control row with A and B in CS range shows normal CSMA sharing.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

Table g_table({"topology", "access", "agg_goodput_mbps", "retry_rate_%", "drop_rate_%"});

RunResult RunHidden(bool hidden, bool rtscts, uint64_t seed) {
  Network net(Network::Params{.seed = seed});
  MatrixLossModel* loss = net.UseMatrixLoss(200.0);

  auto mac_tweak = [&](WifiMac::Config& c) {
    c.rts_threshold = rtscts ? 400 : 65535;
  };
  // Node ids are assigned in AddNode order: receiver 0, senders 1 and 2.
  Node* receiver = net.AddNode(
      {.role = MacRole::kAdhoc, .standard = PhyStandard::k80211b, .mac_tweak = mac_tweak});
  Node* a = net.AddNode({.role = MacRole::kAdhoc,
                         .standard = PhyStandard::k80211b,
                         .position = {50, 0, 0},
                         .mac_tweak = mac_tweak});
  Node* b = net.AddNode({.role = MacRole::kAdhoc,
                         .standard = PhyStandard::k80211b,
                         .position = {-50, 0, 0},
                         .mac_tweak = mac_tweak});
  loss->SetLoss(1, 0, 70.0);  // both senders hear the receiver fine
  loss->SetLoss(2, 0, 70.0);
  loss->SetLoss(1, 2, hidden ? 200.0 : 70.0);  // sender-sender link

  const WifiMode mode = ModesFor(PhyStandard::k80211b).back();
  a->SetRateController(std::make_unique<FixedRateController>(mode));
  b->SetRateController(std::make_unique<FixedRateController>(mode));
  net.StartAll();
  a->AddTraffic<SaturatedTraffic>(receiver->address(), 1, 1500)->Start(Time::Seconds(1));
  b->AddTraffic<SaturatedTraffic>(receiver->address(), 2, 1500)->Start(Time::Seconds(1));
  net.Run(Time::Seconds(7));

  RunResult r;
  r.goodput_mbps = net.flow_stats().GoodputMbps();
  for (Node* s : {a, b}) {
    r.retries += s->mac().counters().retries;
    r.tx_attempts += s->mac().counters().tx_data_attempts;
  }
  r.loss_rate = static_cast<double>(a->mac().counters().tx_data_dropped +
                                    b->mac().counters().tx_data_dropped);
  return r;
}

void Run(benchmark::State& state, bool hidden, bool rtscts) {
  RunResult r{};
  for (auto _ : state) {
    r = RunHidden(hidden, rtscts, 42);
  }
  const double retry_rate =
      r.tx_attempts ? 100.0 * static_cast<double>(r.retries) / static_cast<double>(r.tx_attempts)
                    : 0.0;
  const double drop_rate =
      r.tx_attempts ? 100.0 * r.loss_rate / static_cast<double>(r.tx_attempts) : 0.0;
  state.counters["goodput_mbps"] = r.goodput_mbps;
  state.counters["retry_pct"] = retry_rate;
  g_table.AddRow({hidden ? "hidden" : "cs-range", rtscts ? "rts/cts" : "basic",
                  Table::Num(r.goodput_mbps, 2), Table::Num(retry_rate, 1),
                  Table::Num(drop_rate, 2)});
}

void BM_CsRangeBasic(benchmark::State& s) {
  Run(s, false, false);
}
void BM_CsRangeRts(benchmark::State& s) {
  Run(s, false, true);
}
void BM_HiddenBasic(benchmark::State& s) {
  Run(s, true, false);
}
void BM_HiddenRts(benchmark::State& s) {
  Run(s, true, true);
}

BENCHMARK(BM_CsRangeBasic)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CsRangeRts)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HiddenBasic)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HiddenRts)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  wlansim::PrintTable("F3: hidden terminal, basic vs RTS/CTS (2 senders, 11 Mb/s, 1500 B)",
                      wlansim::g_table, argc, argv);
  return 0;
}
