// F3 — The hidden-terminal problem and the RTS/CTS rescue, as a thin client
// of the sweep engine (no google-benchmark).
//
// Two senders A and B cannot hear each other (matrix loss puts them out of
// carrier-sense range) but share receiver R. Expected shape: with basic
// access both flows collapse under collisions (aggregate well below a single
// unimpeded sender); enabling RTS/CTS restores most of the channel because
// the short RTS collisions are cheap and the CTS silences the hidden peer.
// The control rows with A and B in CS range show normal CSMA sharing. The
// same grid regenerates from the CLI alone:
//   wlansim_run --scenario=hidden_terminal --sweep hidden=false,true \
//       --sweep rtscts=false,true

#include <string>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

int Run(int argc, char** argv) {
  const SweepBenchArgs args = ParseSweepBenchArgs(argc, argv, "bench_f3_hidden_terminal");
  if (!args.ok) {
    return 1;
  }

  SweepOptions options;
  options.scenario = "hidden_terminal";
  options.base_seed = args.seed;
  options.replications = args.reps;
  options.jobs = args.jobs;
  options.grid.AddAxis(ParseSweepAxis("hidden=false,true"));
  options.grid.AddAxis(ParseSweepAxis("rtscts=false,true"));
  const SweepResult result = RunSweepCampaign(options);
  if (!args.csv.empty() && !WriteSweepCsv(args.csv, result)) {
    return 1;
  }

  Table table({"topology", "access", "agg_goodput_mbps", "retry_rate_%", "drop_rate_%"});
  for (const SweepPointResult& point : result.points) {
    const bool hidden = PointValue(point, "hidden") == "true";
    const bool rtscts = PointValue(point, "rtscts") == "true";
    table.AddRow({hidden ? "hidden" : "cs-range", rtscts ? "rts/cts" : "basic",
                  Table::Num(MetricMean(point, "goodput_mbps"), 2),
                  Table::Num(100.0 * MetricMean(point, "retry_rate"), 1),
                  Table::Num(100.0 * MetricMean(point, "drop_rate"), 2)});
  }
  std::printf("=== F3: hidden terminal, basic vs RTS/CTS (2 senders, 11 Mb/s, 1500 B, "
              "%llu rep(s)/point) ===\n",
              static_cast<unsigned long long>(args.reps));
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  return wlansim::Run(argc, argv);
}
