// F3 — The hidden-terminal problem and the RTS/CTS rescue.
//
// Two senders A and B cannot hear each other (matrix loss puts them out of
// carrier-sense range) but share receiver R. Expected shape: with basic
// access both flows collapse under collisions (aggregate well below a single
// unimpeded sender); enabling RTS/CTS restores most of the channel because
// the short RTS collisions are cheap and the CTS silences the hidden peer.
// A control row with A and B in CS range shows normal CSMA sharing.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

Table g_table({"topology", "access", "agg_goodput_mbps", "retry_rate_%", "drop_rate_%"});

void Run(benchmark::State& state, bool hidden, bool rtscts) {
  HiddenTerminalParams p;
  p.hidden = hidden;
  p.rtscts = rtscts;
  p.seed = 42;
  HiddenTerminalResult r{};
  for (auto _ : state) {
    r = RunHiddenTerminalScenario(p);
  }
  state.counters["goodput_mbps"] = r.goodput_mbps;
  state.counters["retry_pct"] = 100.0 * r.retry_rate;
  g_table.AddRow({hidden ? "hidden" : "cs-range", rtscts ? "rts/cts" : "basic",
                  Table::Num(r.goodput_mbps, 2), Table::Num(100.0 * r.retry_rate, 1),
                  Table::Num(100.0 * r.drop_rate, 2)});
}

void BM_CsRangeBasic(benchmark::State& s) {
  Run(s, false, false);
}
void BM_CsRangeRts(benchmark::State& s) {
  Run(s, false, true);
}
void BM_HiddenBasic(benchmark::State& s) {
  Run(s, true, false);
}
void BM_HiddenRts(benchmark::State& s) {
  Run(s, true, true);
}

BENCHMARK(BM_CsRangeBasic)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CsRangeRts)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HiddenBasic)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HiddenRts)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  wlansim::PrintTable("F3: hidden terminal, basic vs RTS/CTS (2 senders, 11 Mb/s, 1500 B)",
                      wlansim::g_table, argc, argv);
  return 0;
}
