// M7 — query-engine column analytics: cold vs warm extent-cache fetches,
// on the in-tree perf harness.
//
// A synthetic WLSR campaign file (the M5 "counters" record mix, whose
// delta-varint integer columns make decoding genuinely expensive) is
// registered in a query catalog at 10^4, 10^5 and 10^6 rows. The core pair
// of benches fetches three scalar columns through the ExtentCache and folds
// them: *cold* clears the cache first (every fetch decodes the extents),
// *warm* hits the decoded columns left by the previous pass. The fold sums
// must match bitwise between the two — the cache can change when work
// happens, never what is computed (invariant #8).
//
// A second, informational pair runs the full `AGGREGATE` query cold vs
// warm; its exact-quantile sort dominates both sides, so it is reported
// for scale but not gated.
//
// With --check the bench hard-fails unless, at 10^6 rows, the warm column
// fetch is >= 2x faster than the cold one and the fold sums agree.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/perf_harness.h"
#include "core/random.h"
#include "query/catalog.h"
#include "query/engine.h"
#include "query/extent_cache.h"
#include "results/binary_writer.h"
#include "runner/metric_recorder.h"
#include "runner/result_consumer.h"
#include "stats/table.h"

namespace wlansim {
namespace {

constexpr int kCounters = 20;
const char* const kFetchColumns[] = {"count_0", "count_7", "value_0"};

// The M5 "counters" record mix: twenty near-constant integer counters (the
// delta-varint codec's home turf, so decoding them back is real work) plus
// one full-entropy value column.
void FillRecord(ReplicationRecord& r, uint64_t rep, Rng& rng) {
  r.replication = rep;
  r.metrics["value_0"] = rng.NextDouble();
  for (int c = 0; c < kCounters; ++c) {
    const double jitter = std::floor(rng.NextDouble() * 31.0) - 15.0;
    r.metrics["count_" + std::to_string(c)] = 1.0e7 + 100.0 * c + jitter;
  }
}

// Writes a campaign WLSR file of `rows` records. Scenario names carry the
// row count so each size forms its own catalog collection.
bool WriteCampaignFile(const std::string& path, const std::string& scenario, uint64_t rows) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  BinaryCampaignWriter writer(out, /*streamed=*/true);
  writer.BeginCampaign({scenario, 1, rows});
  Rng rng(42);
  ReplicationRecord record;
  for (uint64_t rep = 0; rep < rows; ++rep) {
    FillRecord(record, rep, rng);
    writer.OnRecord(record);
  }
  writer.EndCampaign();
  return static_cast<bool>(out);
}

size_t ColumnIndex(const BinaryGroup& group, const char* name) {
  for (size_t c = 0; c < group.header.scalar_names.size(); ++c) {
    if (group.header.scalar_names[c] == name) {
      return c;
    }
  }
  std::fprintf(stderr, "column %s missing from the generated file\n", name);
  std::exit(1);
}

// Fetches the three bench columns through the cache and folds them to one
// sum — the arithmetic a served aggregate would run after the fetch.
double FetchAndFold(ExtentCache& cache, const GroupRef& ref) {
  double sum = 0.0;
  for (const char* name : kFetchColumns) {
    const ColumnPtr values = cache.GetScalarColumn(ref, ColumnIndex(ref.group(), name));
    for (double v : *values) {
      sum += v;
    }
  }
  return sum;
}

struct TimedRun {
  double secs = 0.0;
  double fold_sum = 0.0;
};

int Run(int argc, char** argv) {
  bool check = false;
  std::vector<char*> filtered{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      filtered.push_back(argv[i]);
    }
  }
  PerfArgs args = ParsePerfArgs(static_cast<int>(filtered.size()), filtered.data(),
                                "bench_m7_query [--check]", /*default_reps=*/3);
  if (!args.ok) {
    return 1;
  }
  args.warmup = false;  // cold/warm is the measurement itself

  PerfHarness harness("M7: query column fetch, cold vs warm extent cache (items = rows)", args);
  Table table({"rows", "cold_Mrows_s", "warm_Mrows_s", "warm_speedup", "query_cold_ms",
               "query_warm_ms", "fold_match"});

  double speedup_at_largest = 0.0;
  bool folds_match = true;
  for (const uint64_t rows : {uint64_t{10000}, uint64_t{100000}, uint64_t{1000000}}) {
    const std::string scenario = "bench_m7_" + std::to_string(rows);
    const std::string path = "/tmp/" + scenario + ".wlsr";
    char name[64];
    std::snprintf(name, sizeof(name), "colfetch_cold_%llu",
                  static_cast<unsigned long long>(rows));
    if (!args.filter.empty() && std::string(name).find(args.filter) == std::string::npos) {
      continue;  // keep the figure table aligned with the benches that ran
    }
    if (!WriteCampaignFile(path, scenario, rows)) {
      return 1;
    }
    Catalog catalog;
    const CatalogFile& file = catalog.RegisterFile(path);
    const GroupRef ref{&file, 0};
    ExtentCache cache(64u << 20);
    QueryEngine engine(&catalog, &cache);

    TimedRun cold{}, warm{};
    harness.Bench(name, [&cache, &ref, &cold] {
      cache.Clear();
      const auto start = std::chrono::steady_clock::now();
      cold.fold_sum = FetchAndFold(cache, ref);
      cold.secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      return static_cast<uint64_t>(3 * ref.group().header.n_rows);
    });
    // The cold pass left the columns resident; every warm fetch hits.
    std::snprintf(name, sizeof(name), "colfetch_warm_%llu",
                  static_cast<unsigned long long>(rows));
    harness.Bench(name, [&cache, &ref, &warm] {
      const auto start = std::chrono::steady_clock::now();
      warm.fold_sum = FetchAndFold(cache, ref);
      warm.secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      return static_cast<uint64_t>(3 * ref.group().header.n_rows);
    });

    const std::string query = "AGGREGATE " + scenario + ":campaign";
    TimedRun query_cold{}, query_warm{};
    std::snprintf(name, sizeof(name), "query_cold_%llu", static_cast<unsigned long long>(rows));
    harness.Bench(name, [&cache, &engine, &query, &query_cold] {
      cache.Clear();
      const auto start = std::chrono::steady_clock::now();
      const std::string body = engine.Execute(query);
      query_cold.secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      return static_cast<uint64_t>(body.size());
    });
    std::snprintf(name, sizeof(name), "query_warm_%llu", static_cast<unsigned long long>(rows));
    harness.Bench(name, [&cache, &engine, &query, &query_warm] {
      const auto start = std::chrono::steady_clock::now();
      const std::string body = engine.Execute(query);
      query_warm.secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      return static_cast<uint64_t>(body.size());
    });
    std::remove(path.c_str());

    // The fold must not merely be close — a cache hit returns the decoded
    // column verbatim, so the sums are the same doubles in the same order.
    const bool match = cold.fold_sum == warm.fold_sum;
    folds_match = folds_match && match;
    const double speedup = cold.secs / warm.secs;
    const double n = static_cast<double>(3 * rows);
    table.AddRow({std::to_string(rows), Table::Num(n / cold.secs / 1e6, 2),
                  Table::Num(n / warm.secs / 1e6, 2), Table::Num(speedup, 2),
                  Table::Num(query_cold.secs * 1e3, 2), Table::Num(query_warm.secs * 1e3, 2),
                  match ? "yes" : "NO"});
    if (rows == 1000000) {
      speedup_at_largest = speedup;
    }
  }

  const int rc = harness.Finish();
  std::printf("=== M7: cold vs warm query column fetch ===\n%s\n", table.ToString().c_str());
  if (check) {
    if (!folds_match) {
      std::fprintf(stderr, "cold and warm fold sums differ: the cache changed an answer\n");
      return 1;
    }
    if (speedup_at_largest < 2.0) {
      std::fprintf(stderr, "warm column fetch at 10^6 rows is %.2fx cold, expected >= 2x\n",
                   speedup_at_largest);
      return 1;
    }
    std::printf("check passed: warm fetch %.2fx faster than cold at 10^6 rows, folds identical\n",
                speedup_at_largest);
  }
  return rc;
}

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  return wlansim::Run(argc, argv);
}
