// T1 — Standards comparison table.
//
// Reproduces the survey's "comparison of wireless network types" row set for
// the WLAN family: for each PHY standard, the nominal (PHY) maximum bit rate
// versus the MAC-layer goodput a saturated single link actually achieves.
// Expected shape: goodput ordering 802.11 < 802.11b < 802.11g ≈ 802.11a, with
// MAC efficiency falling as the PHY rate grows (fixed-overhead dominance).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

struct Row {
  PhyStandard standard;
};

const Row kRows[] = {
    {PhyStandard::k80211},
    {PhyStandard::k80211b},
    {PhyStandard::k80211a},
    {PhyStandard::k80211g},
};

Table g_table({"standard", "phy_rate_mbps", "mac_goodput_mbps", "mac_efficiency_%",
               "mean_delay_ms"});

void BM_StandardGoodput(benchmark::State& state) {
  const Row& row = kRows[state.range(0)];
  SaturationParams p;
  p.standard = row.standard;
  p.n_stas = 1;
  p.payload = 1500;
  p.distance = 5.0;
  p.sim_time = Time::Seconds(6);
  RunResult r{};
  for (auto _ : state) {
    r = RunSaturationScenario(p);
  }
  const double phy_mbps =
      static_cast<double>(ModesFor(row.standard).back().bit_rate_bps) / 1e6;
  state.counters["phy_mbps"] = phy_mbps;
  state.counters["goodput_mbps"] = r.goodput_mbps;
  state.counters["efficiency_pct"] = 100.0 * r.goodput_mbps / phy_mbps;
  g_table.AddRow({ToString(row.standard), Table::Num(phy_mbps, 0), Table::Num(r.goodput_mbps, 2),
                  Table::Num(100.0 * r.goodput_mbps / phy_mbps, 1),
                  Table::Num(r.mean_delay_ms, 2)});
}

BENCHMARK(BM_StandardGoodput)
    ->DenseRange(0, 3)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  wlansim::PrintTable("T1: standards comparison (saturated 1500 B UDP, 5 m link)",
                      wlansim::g_table, argc, argv);
  return 0;
}
