// T1 — Standards comparison table, on the in-tree perf harness.
//
// Reproduces the survey's "comparison of wireless network types" row set for
// the WLAN family: for each PHY standard, the nominal (PHY) maximum bit rate
// versus the MAC-layer goodput a saturated single link actually achieves.
// Expected shape: goodput ordering 802.11 < 802.11b < 802.11g ≈ 802.11a, with
// MAC efficiency falling as the PHY rate grows (fixed-overhead dominance).
//
// The harness times each whole-simulation run (items = MPDUs delivered, so
// items/s gauges simulator speed); the standards table itself is printed
// from the scenario results afterwards.

#include <cstdint>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

int Run(int argc, char** argv) {
  PerfArgs args = ParsePerfArgs(argc, argv, "wlansim_bench_t1", /*default_reps=*/1);
  if (!args.ok) {
    return 1;
  }
  args.warmup = false;  // one rep of a deterministic simulation needs no cache warming

  PerfHarness harness("T1: standards comparison harness (items = delivered MPDUs)", args);
  Table table({"standard", "phy_rate_mbps", "mac_goodput_mbps", "mac_efficiency_%",
               "mean_delay_ms"});
  for (const PhyStandard standard :
       {PhyStandard::k80211, PhyStandard::k80211b, PhyStandard::k80211a, PhyStandard::k80211g}) {
    const std::string name = ToString(standard);
    if (!args.filter.empty() && name.find(args.filter) == std::string::npos) {
      continue;  // keep the comparison table aligned with the benches that ran
    }
    RunResult r{};
    harness.Bench(name, [standard, &r] {
      SaturationParams p;
      p.standard = standard;
      p.n_stas = 1;
      p.payload = 1500;
      p.distance = 5.0;
      p.sim_time = Time::Seconds(6);
      r = RunSaturationScenario(p);
      return r.rx_ok;
    });
    const double phy_mbps = static_cast<double>(ModesFor(standard).back().bit_rate_bps) / 1e6;
    table.AddRow({ToString(standard), Table::Num(phy_mbps, 0), Table::Num(r.goodput_mbps, 2),
                  Table::Num(100.0 * r.goodput_mbps / phy_mbps, 1),
                  Table::Num(r.mean_delay_ms, 2)});
  }
  const int rc = harness.Finish();
  std::printf("=== T1: standards comparison (saturated 1500 B UDP, 5 m link) ===\n%s\n",
              table.ToString().c_str());
  return rc;
}

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  return wlansim::Run(argc, argv);
}
