// F11 — ISM-band interference ("you may suffer interference if others in the
// same building also use wireless technology", §6), as a thin client of the
// sweep engine.
//
// A single link shares the kitchen with a microwave oven at varying distance
// from the receiver; the oven blasts undecodable energy at ~40 % duty
// (8 ms on / 12 ms off, mains-locked). One sweep over the `ism_interference`
// scenario's {standard} × {oven_distance} grid reproduces the figure
// (oven_distance=0 is the clean baseline). Expected shape: with the oven
// close, 802.11b goodput collapses toward the oven's off-fraction; as the
// oven moves away goodput recovers, while 802.11a (5 GHz) is immune by
// construction. The same grid regenerates from the CLI alone:
//   wlansim_run --scenario=ism_interference --sweep standard=11b,11a \
//       --sweep oven_distance=0,3,10,30,100 --reps=8 --csv=f11.csv

#include <map>
#include <string>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

int Run(int argc, char** argv) {
  const SweepBenchArgs args = ParseSweepBenchArgs(argc, argv, "bench_f11_ism_interference");
  if (!args.ok) {
    return 1;
  }

  SweepOptions options;
  options.scenario = "ism_interference";
  options.base_seed = args.seed;
  options.replications = args.reps;
  options.jobs = args.jobs;
  options.grid.AddAxis(ParseSweepAxis("standard=11b,11a"));
  options.grid.AddAxis(ParseSweepAxis("oven_distance=0,3,10,30,100"));
  const SweepResult result = RunSweepCampaign(options);
  if (!args.csv.empty() && !WriteSweepCsv(args.csv, result)) {
    return 1;
  }

  // Clean baseline per standard: the oven_distance=0 grid point.
  std::map<std::string, double> clean;
  for (const SweepPointResult& point : result.points) {
    if (PointValue(point, "oven_distance") == "0") {
      clean[PointValue(point, "standard")] = MetricMean(point, "goodput_mbps");
    }
  }

  Table table({"standard", "oven_distance_m", "goodput_mbps", "retry_rate_%", "vs_clean_%"});
  for (const SweepPointResult& point : result.points) {
    const std::string standard = PointValue(point, "standard");
    const std::string distance = PointValue(point, "oven_distance");
    const double goodput = MetricMean(point, "goodput_mbps");
    const double attempts = MetricMean(point, "tx_attempts");
    const double retry_rate =
        attempts > 0 ? 100.0 * MetricMean(point, "retries") / attempts : 0.0;
    table.AddRow({standard == "11b" ? "802.11b" : "802.11a",
                  distance == "0" ? "no oven" : distance, Table::Num(goodput, 2),
                  Table::Num(retry_rate, 1),
                  Table::Num(clean[standard] > 0 ? 100.0 * goodput / clean[standard] : 100.0, 1)});
  }
  std::printf("=== F11: microwave-oven interference vs distance (saturated 12 m link, "
              "%llu rep(s)/point) ===\n",
              static_cast<unsigned long long>(args.reps));
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  return wlansim::Run(argc, argv);
}
