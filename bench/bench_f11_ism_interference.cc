// F11 — ISM-band interference ("you may suffer interference if others in the
// same building also use wireless technology", §6).
//
// A single 802.11b link shares the kitchen with a microwave oven at varying
// distance from the receiver. The oven blasts undecodable energy at ~40 %
// duty (8 ms on / 12 ms off, mains-locked). Expected shape: with the oven
// close, goodput collapses toward the oven's off-fraction (CCA defers and
// overlapped frames die); as the oven moves away it first stops corrupting
// frames (below SINR relevance) and then stops triggering CCA entirely,
// restoring full goodput. 802.11a (5 GHz) is immune by construction —
// exactly the survey's "cleaner signal" argument for OFDM at 5 GHz.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "net/ism_interferer.h"

namespace wlansim {
namespace {

Table g_table({"standard", "oven_distance_m", "goodput_mbps", "retry_rate_%", "vs_clean_%"});

double g_clean[2] = {0, 0};

RunResult RunOven(PhyStandard standard, double oven_distance, uint64_t seed) {
  IsmParams p;
  p.standard = standard;
  p.oven_distance = oven_distance;
  p.seed = seed;
  return RunIsmInterferenceScenario(p);
}

const double kOvenDistances[] = {0 /* no oven */, 3, 10, 30, 100};

void Run(benchmark::State& state, PhyStandard standard, int clean_slot) {
  const double d = kOvenDistances[state.range(0)];
  RunResult r{};
  for (auto _ : state) {
    r = RunOven(standard, d, 77);
  }
  if (d == 0) {
    g_clean[clean_slot] = r.goodput_mbps;
  }
  const double retry_rate =
      r.tx_attempts ? 100.0 * static_cast<double>(r.retries) / static_cast<double>(r.tx_attempts)
                    : 0.0;
  state.counters["goodput_mbps"] = r.goodput_mbps;
  g_table.AddRow({ToString(standard), d == 0 ? "no oven" : Table::Num(d, 0),
                  Table::Num(r.goodput_mbps, 2), Table::Num(retry_rate, 1),
                  Table::Num(g_clean[clean_slot] > 0 ? 100.0 * r.goodput_mbps / g_clean[clean_slot]
                                                     : 100.0,
                             1)});
}

void BM_Oven11b(benchmark::State& s) {
  Run(s, PhyStandard::k80211b, 0);
}
void BM_Oven11a(benchmark::State& s) {
  Run(s, PhyStandard::k80211a, 1);
}

BENCHMARK(BM_Oven11b)->DenseRange(0, 4)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Oven11a)->DenseRange(0, 4)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  wlansim::PrintTable(
      "F11: microwave-oven interference vs distance (saturated 12 m link)",
      wlansim::g_table, argc, argv);
  return 0;
}
