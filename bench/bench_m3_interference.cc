// M3 — Interference-tracker microbenchmarks on the in-tree perf harness:
// reception evaluation (per-chunk SINR integration over a frame window) and
// CCA evaluation (total power + busy-until walk) as a function of signal
// density, for the sweep-line tracker vs the preserved pre-sweep-line
// reference implementation. Both replay the identical discrete-event
// workload — signals arrive in time order, each signal's reception is
// evaluated when it ends, and the reference applies the legacy >64 purge
// the old WifiPhy performed — and the driver cross-checks that both
// trackers produce the same result checksum, so the speedup column always
// compares equal work. The long-format CSV (--csv=) is what the CI
// perf-smoke job uploads.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <queue>
#include <type_traits>
#include <vector>

#include "bench/perf_harness.h"
#include "core/random.h"
#include "core/units.h"
#include "phy/error_model.h"
#include "phy/interference.h"
#include "phy/interference_reference.h"
#include "phy/wifi_mode.h"

namespace wlansim {
namespace {

struct SignalSpec {
  Time start;
  Time end;
  double power_w;
};

// Poisson-ish arrivals with ~`density` concurrently active signals: spacing
// is the mean duration divided by the target density.
std::vector<SignalSpec> MakeWorkload(size_t count, size_t density, uint64_t seed) {
  Rng rng(seed);
  std::vector<SignalSpec> signals;
  signals.reserve(count);
  Time now = Time::Zero();
  const int64_t mean_duration_us = 1000;
  const int64_t spacing_us = std::max<int64_t>(1, mean_duration_us / static_cast<int64_t>(density));
  for (size_t i = 0; i < count; ++i) {
    now += Time::Micros(rng.UniformInt(1, 2 * spacing_us));
    const Time duration = Time::Micros(rng.UniformInt(mean_duration_us / 2, 3 * mean_duration_us / 2));
    signals.push_back({now, now + duration, DbmToW(rng.Uniform(-90.0, -50.0))});
  }
  return signals;
}

InterferenceTracker::ReceptionPlan PlanFor(uint64_t id, const SignalSpec& s, double noise_w) {
  InterferenceTracker::ReceptionPlan plan;
  plan.signal_id = id;
  plan.start = s.start;
  plan.payload_start = std::min(s.start + Time::Micros(192), s.end);
  plan.end = s.end;
  plan.header_mode = BaseModeFor(PhyStandard::k80211b);
  plan.payload_mode = ModesFor(PhyStandard::k80211b).back();
  plan.header_bits = 48;
  plan.payload_bits = 8000;
  plan.noise_w = noise_w;
  return plan;
}

// Replays the workload through either tracker: signals are added in arrival
// order and every signal's reception is evaluated at its end instant, while
// its interferers are still tracked. `checksum` accumulates the success
// probabilities and mean SINRs so the two implementations can be compared.
template <typename Tracker, typename EvalFn>
uint64_t ReplayReceptions(const std::vector<SignalSpec>& signals, const EvalFn& eval,
                          double* checksum) {
  Tracker tracker;
  const double noise_w = DbmToW(-94.0);
  // (end, id, spec index) of signals whose reception is still pending,
  // evaluated in end order once arrivals pass their end time (durations
  // vary, so ends are not in arrival order — a min-heap keeps evaluation
  // ahead of the tracker's expiry of ended signals).
  struct Pending {
    Time end;
    uint64_t id;
    size_t index;
    bool operator>(const Pending& other) const {
      return end != other.end ? end > other.end : id > other.id;
    }
  };
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>> pending;
  uint64_t evaluated = 0;
  auto drain = [&](Time upto) {
    while (!pending.empty() && pending.top().end <= upto) {
      const Pending p = pending.top();
      pending.pop();
      *checksum += eval(tracker, PlanFor(p.id, signals[p.index], noise_w));
      ++evaluated;
    }
  };
  for (size_t i = 0; i < signals.size(); ++i) {
    drain(signals[i].start);
    const uint64_t id = tracker.AddSignal(signals[i].start, signals[i].end, signals[i].power_w);
    // The legacy caller-side purge, at the same trigger and with the same
    // drop set the sweep tracker applies internally — both replays must
    // track the identical live set.
    if constexpr (std::is_same_v<Tracker, ReferenceInterferenceTracker>) {
      if (tracker.ActiveSignalCount() > 64) {
        tracker.Cleanup(signals[i].start);
      }
    }
    pending.push({signals[i].end, id, i});
  }
  drain(Time::Max());
  return evaluated;
}

double EvalSweep(InterferenceTracker& t, const InterferenceTracker::ReceptionPlan& plan) {
  static const DefaultErrorRateModel model;
  const auto stats = t.EvaluateReception(plan, model);
  return stats.success_probability + stats.mean_sinr;
}

double EvalReference(ReferenceInterferenceTracker& t,
                     const InterferenceTracker::ReceptionPlan& plan) {
  static const DefaultErrorRateModel model;
  // The legacy WifiPhy pattern: two independent chunk passes per reception.
  return t.SuccessProbability(plan, model) + t.MeanSinr(plan);
}

// CCA churn: TotalPowerW + TimeWhenPowerBelow per arrival (the
// ReevaluateCca pattern), replayed over the same workload.
template <typename Tracker>
uint64_t ReplayCca(const std::vector<SignalSpec>& signals, bool legacy_purge, double* checksum) {
  Tracker tracker;
  const double threshold_w = DbmToW(-62.0);
  uint64_t evaluated = 0;
  for (const SignalSpec& s : signals) {
    tracker.AddSignal(s.start, s.end, s.power_w);
    if constexpr (std::is_same_v<Tracker, ReferenceInterferenceTracker>) {
      if (legacy_purge && tracker.ActiveSignalCount() > 64) {
        tracker.Cleanup(s.start);
      }
    }
    *checksum += tracker.TotalPowerW(s.start);
    *checksum += tracker.TimeWhenPowerBelow(s.start, threshold_w).seconds();
    ++evaluated;
  }
  return evaluated;
}

int Run(int argc, char** argv) {
  const PerfArgs args = ParsePerfArgs(argc, argv, "bench_m3_interference");
  if (!args.ok) {
    return 1;
  }
  PerfHarness harness("M3: interference-tracker microbenchmarks", args);

  constexpr size_t kReceptions = 2000;
  for (const size_t density : {8u, 32u, 64u, 96u}) {
    const auto signals = MakeWorkload(kReceptions, density, 1000 + density);
    // Cross-check once per density: both implementations must agree bit-for-bit.
    double sweep_sum = 0.0;
    double ref_sum = 0.0;
    ReplayReceptions<InterferenceTracker>(signals, EvalSweep, &sweep_sum);
    ReplayReceptions<ReferenceInterferenceTracker>(signals, EvalReference, &ref_sum);
    if (sweep_sum != ref_sum) {
      std::fprintf(stderr, "tracker mismatch at density %zu: %.17g vs %.17g\n", density,
                   sweep_sum, ref_sum);
      return 1;
    }
    char name[64];
    std::snprintf(name, sizeof(name), "rx_eval_sweep_d%zu", density);
    harness.Bench(name, [&signals] {
      double sum = 0.0;
      return ReplayReceptions<InterferenceTracker>(signals, EvalSweep, &sum);
    });
    std::snprintf(name, sizeof(name), "rx_eval_ref_d%zu", density);
    harness.Bench(name, [&signals] {
      double sum = 0.0;
      return ReplayReceptions<ReferenceInterferenceTracker>(signals, EvalReference, &sum);
    });
  }

  const auto cca_signals = MakeWorkload(4000, 64, 77);
  {
    // Same hard cross-check for the CCA path: TotalPowerW and
    // TimeWhenPowerBelow must agree bit-for-bit across implementations.
    double sweep_sum = 0.0;
    double ref_sum = 0.0;
    ReplayCca<InterferenceTracker>(cca_signals, false, &sweep_sum);
    ReplayCca<ReferenceInterferenceTracker>(cca_signals, true, &ref_sum);
    if (sweep_sum != ref_sum) {
      std::fprintf(stderr, "CCA tracker mismatch: %.17g vs %.17g\n", sweep_sum, ref_sum);
      return 1;
    }
  }
  harness.Bench("cca_eval_sweep_d64", [&cca_signals] {
    double sum = 0.0;
    return ReplayCca<InterferenceTracker>(cca_signals, false, &sum);
  });
  harness.Bench("cca_eval_ref_d64", [&cca_signals] {
    double sum = 0.0;
    return ReplayCca<ReferenceInterferenceTracker>(cca_signals, true, &sum);
  });
  return harness.Finish();
}

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  return wlansim::Run(argc, argv);
}
