// F9 — Rate-adaptation shoot-out (the headline driver-level mechanism), as a
// thin client of the sweep engine (no google-benchmark).
//
// Single 802.11a link under Rayleigh block fading, distance sweep, saturated
// traffic. Two campaigns over the `rate_vs_distance` scenario:
//   (a) distance × rate_index at fixed rates — the oracle envelope is the
//       best fixed rate per distance, read off the long-format aggregates;
//   (b) distance × controller for ARF, AARF, ONOE, SampleRate and Minstrel.
// Expected shape: statistics-based controllers (Minstrel, SampleRate) ≥
// AARF ≥ ARF ≥ ONOE at mid range; nothing beats the oracle; ARF oscillates
// under fading because any 2-failure run knocks it down and 10 successes
// send it probing. The same grids regenerate from the CLI alone, e.g.:
//   wlansim_run --scenario=rate_vs_distance --param standard=11a \
//       --param fading=true --param sim_time_s=8 \
//       --sweep distance=15,40,70,100 --sweep controller=arf,minstrel

#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

const char* kDistances = "distance=15,40,70,100";

SweepOptions BaseOptions(const SweepBenchArgs& args) {
  SweepOptions options;
  options.scenario = "rate_vs_distance";
  options.base_params.Set("standard", "11a");
  options.base_params.Set("fading", "true");
  options.base_params.Set("sim_time_s", "8");
  options.base_seed = args.seed;
  options.replications = args.reps;
  options.jobs = args.jobs;
  options.grid.AddAxis(ParseSweepAxis(kDistances));
  return options;
}

int Run(int argc, char** argv) {
  const SweepBenchArgs args = ParseSweepBenchArgs(argc, argv, "bench_f9_rate_adaptation");
  if (!args.ok) {
    return 1;
  }

  SweepOptions fixed_options = BaseOptions(args);
  const size_t n_modes = ModesFor(PhyStandard::k80211a).size();
  fixed_options.grid.AddAxis(
      ParseSweepAxis("rate_index=0:" + std::to_string(n_modes - 1) + ":1"));
  const SweepResult fixed = RunSweepCampaign(fixed_options);

  SweepOptions adaptive_options = BaseOptions(args);
  adaptive_options.grid.AddAxis(ParseSweepAxis("controller=arf,aarf,onoe,samplerate,minstrel"));
  const SweepResult adaptive = RunSweepCampaign(adaptive_options);

  if (!args.csv.empty() && (!WriteSweepCsv(args.csv + ".fixed.csv", fixed) ||
                            !WriteSweepCsv(args.csv + ".adaptive.csv", adaptive))) {
    return 1;
  }

  // Oracle envelope: per distance, the fixed rate with the best mean goodput.
  std::map<double, double> oracle;  // distance -> mbps, numerically ordered
  for (const SweepPointResult& point : fixed.points) {
    const double mbps = MetricMean(point, "goodput_mbps");
    auto [it, inserted] = oracle.try_emplace(std::stod(PointValue(point, "distance")), mbps);
    if (!inserted && mbps > it->second) {
      it->second = mbps;
    }
  }

  Table table({"controller", "distance_m", "goodput_mbps", "retry_rate_%", "vs_oracle_%"});
  for (const auto& [distance, mbps] : oracle) {
    table.AddRow({"oracle-fixed", Table::Num(distance, 0), Table::Num(mbps, 2), "-", "100.0"});
  }
  for (const SweepPointResult& point : adaptive.points) {
    const std::string distance = PointValue(point, "distance");
    const double mbps = MetricMean(point, "goodput_mbps");
    const double attempts = MetricMean(point, "tx_attempts");
    const double retry_rate = attempts > 0 ? 100.0 * MetricMean(point, "retries") / attempts : 0;
    const double best = oracle[std::stod(distance)];
    const double vs_oracle = best > 0 ? 100.0 * mbps / best : 100.0;
    table.AddRow({PointValue(point, "controller"), distance, Table::Num(mbps, 2),
                  Table::Num(retry_rate, 1), Table::Num(vs_oracle, 1)});
  }
  std::printf("=== F9: rate adaptation under Rayleigh fading (802.11a, 1200 B saturated, "
              "%llu rep(s)/point) ===\n",
              static_cast<unsigned long long>(args.reps));
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  return wlansim::Run(argc, argv);
}
