// F9 — Rate-adaptation shoot-out (the headline driver-level mechanism).
//
// Single 802.11a link under Rayleigh block fading, distance sweep, saturated
// traffic. Controllers: ARF, AARF, ONOE, SampleRate, Minstrel, and the best
// fixed rate per distance (the oracle envelope). Expected shape:
// statistics-based controllers (Minstrel, SampleRate) ≥ AARF ≥ ARF ≥ ONOE at
// mid range; nothing beats the oracle; ARF oscillates under fading because
// any 2-failure run knocks it down and 10 successes send it probing.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

Table g_table({"controller", "distance_m", "goodput_mbps", "retry_rate_%", "vs_oracle_%"});

const double kDistances[] = {15, 40, 70, 100};
const char* const kControllers[] = {"oracle-fixed", "arf", "aarf", "onoe", "samplerate",
                                    "minstrel"};

double g_oracle[4] = {0, 0, 0, 0};

RunResult RunFading(const std::string& controller, double distance, size_t fixed_index,
                    uint64_t seed) {
  Network net(Network::Params{.seed = seed});
  net.UseLogDistanceLoss(3.0);
  net.UseRayleighFading();
  Node* ap = net.AddNode({.role = MacRole::kAp, .standard = PhyStandard::k80211a, .ssid = "f9"});
  Node* sta = net.AddNode({.role = MacRole::kSta,
                           .standard = PhyStandard::k80211a,
                           .ssid = "f9",
                           .position = {distance, 0, 0}});
  if (controller == "oracle-fixed") {
    sta->SetRateController(
        std::make_unique<FixedRateController>(ModesFor(PhyStandard::k80211a)[fixed_index]));
  } else {
    sta->SetRateController(MakeController(controller, PhyStandard::k80211a, net.ForkRng("rc")));
  }
  net.StartAll();
  sta->AddTraffic<SaturatedTraffic>(ap->address(), 1, 1200)->Start(Time::Seconds(1));
  net.Run(Time::Seconds(9));
  RunResult r;
  r.goodput_mbps = net.flow_stats().GoodputMbps();
  r.retries = sta->mac().counters().retries;
  r.tx_attempts = sta->mac().counters().tx_data_attempts;
  return r;
}

void Run(benchmark::State& state, const std::string& controller) {
  const size_t d_idx = static_cast<size_t>(state.range(0));
  const double distance = kDistances[d_idx];
  RunResult r{};
  for (auto _ : state) {
    if (controller == "oracle-fixed") {
      // Envelope over all fixed rates.
      for (size_t i = 0; i < ModesFor(PhyStandard::k80211a).size(); ++i) {
        const RunResult cand = RunFading(controller, distance, i, 900 + d_idx);
        if (cand.goodput_mbps > r.goodput_mbps) {
          r = cand;
        }
      }
      g_oracle[d_idx] = r.goodput_mbps;
    } else {
      r = RunFading(controller, distance, 0, 900 + d_idx);
    }
  }
  const double retry_rate =
      r.tx_attempts ? 100.0 * static_cast<double>(r.retries) / static_cast<double>(r.tx_attempts)
                    : 0.0;
  const double vs_oracle =
      g_oracle[d_idx] > 0 ? 100.0 * r.goodput_mbps / g_oracle[d_idx] : 100.0;
  state.counters["goodput_mbps"] = r.goodput_mbps;
  g_table.AddRow({controller, Table::Num(distance, 0), Table::Num(r.goodput_mbps, 2),
                  Table::Num(retry_rate, 1), Table::Num(vs_oracle, 1)});
}

void BM_Oracle(benchmark::State& s) {
  Run(s, "oracle-fixed");
}
void BM_Arf(benchmark::State& s) {
  Run(s, "arf");
}
void BM_Aarf(benchmark::State& s) {
  Run(s, "aarf");
}
void BM_Onoe(benchmark::State& s) {
  Run(s, "onoe");
}
void BM_SampleRate(benchmark::State& s) {
  Run(s, "samplerate");
}
void BM_Minstrel(benchmark::State& s) {
  Run(s, "minstrel");
}

BENCHMARK(BM_Oracle)->DenseRange(0, 3)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Arf)->DenseRange(0, 3)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Aarf)->DenseRange(0, 3)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Onoe)->DenseRange(0, 3)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SampleRate)->DenseRange(0, 3)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Minstrel)->DenseRange(0, 3)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  wlansim::PrintTable(
      "F9: rate adaptation under Rayleigh fading (802.11a, 1200 B saturated)",
      wlansim::g_table, argc, argv);
  return 0;
}
