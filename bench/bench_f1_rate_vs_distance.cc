// F1 — Rate-vs-distance staircase.
//
// The survey states every 802.11 PHY "automatically backs down from the peak
// rate when the radio signal is weak". For a distance sweep this harness
// reports (a) the best fixed rate (oracle envelope) and (b) what ARF actually
// selects, for both 802.11b and 802.11a. Expected shape: a monotone staircase
// down through the standard's rate set, with 802.11b usable farther out than
// 802.11a (lower rates + 2.4 GHz advantage under equal loss exponent).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

Table g_table({"standard", "distance_m", "best_fixed", "best_fixed_mbps", "arf_mbps"});

struct Point {
  PhyStandard standard;
  double distance;
};

std::vector<Point> MakePoints() {
  std::vector<Point> points;
  for (PhyStandard s : {PhyStandard::k80211b, PhyStandard::k80211a}) {
    for (double d : {10, 30, 60, 90, 120, 160, 200, 250}) {
      points.push_back({s, static_cast<double>(d)});
    }
  }
  return points;
}

const std::vector<Point>& Points() {
  static const std::vector<Point> points = MakePoints();
  return points;
}

RunResult RunLink(PhyStandard standard, double distance, size_t rate_index,
                  const std::string& controller) {
  LinkParams p;
  p.standard = standard;
  p.distance = distance;
  p.rate_index = rate_index;
  p.controller = controller;
  p.seed = 7;
  return RunLinkScenario(p);
}

void BM_RateVsDistance(benchmark::State& state) {
  const Point& pt = Points()[static_cast<size_t>(state.range(0))];
  double best_mbps = 0;
  std::string best_name = "none";
  double arf_mbps = 0;
  for (auto _ : state) {
    const auto modes = ModesFor(pt.standard);
    for (size_t i = 0; i < modes.size(); ++i) {
      const double g = RunLink(pt.standard, pt.distance, i, "").goodput_mbps;
      if (g > best_mbps) {
        best_mbps = g;
        best_name = modes[i].name;
      }
    }
    arf_mbps = RunLink(pt.standard, pt.distance, 0, "arf").goodput_mbps;
  }
  state.counters["best_fixed_mbps"] = best_mbps;
  state.counters["arf_mbps"] = arf_mbps;
  g_table.AddRow({ToString(pt.standard), Table::Num(pt.distance, 0), best_name,
                  Table::Num(best_mbps, 2), Table::Num(arf_mbps, 2)});
}

BENCHMARK(BM_RateVsDistance)
    ->DenseRange(0, 15)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  wlansim::PrintTable("F1: rate-vs-distance staircase (log-distance n=3, 1200 B saturated)",
                      wlansim::g_table, argc, argv);
  return 0;
}
