// F1 — Rate-vs-distance staircase, as a thin client of the sweep engine.
//
// The survey states every 802.11 PHY "automatically backs down from the peak
// rate when the radio signal is weak". For each standard this harness runs
// two sweep campaigns over the `rate_vs_distance` scenario:
//   (a) distance × rate_index at fixed rates — the oracle envelope is the
//       best fixed rate per distance, read off the long-format aggregates;
//   (b) distance under ARF — what the driver algorithm actually achieves.
// Expected shape: a monotone staircase down through the standard's rate set,
// with 802.11b usable farther out than 802.11a. The same grids regenerate
// from the CLI alone, e.g.:
//   wlansim_run --scenario=rate_vs_distance --param standard=11b \
//       --sweep distance=10,30,60,90,120,160,200,250 --sweep rate_index=0:3:1

#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

const char* kDistances = "distance=10,30,60,90,120,160,200,250";

SweepResult RunFigureSweep(const SweepBenchArgs& args, const std::string& standard,
                           bool fixed_rates) {
  SweepOptions options;
  options.scenario = "rate_vs_distance";
  options.base_params.Set("standard", standard);
  options.base_seed = args.seed;
  options.replications = args.reps;
  options.jobs = args.jobs;
  options.grid.AddAxis(ParseSweepAxis(kDistances));
  if (fixed_rates) {
    const size_t n_modes = ModesFor(standard == "11a" ? PhyStandard::k80211a
                                                      : PhyStandard::k80211b)
                               .size();
    options.grid.AddAxis(ParseSweepAxis("rate_index=0:" + std::to_string(n_modes - 1) + ":1"));
  } else {
    options.base_params.Set("controller", "arf");
  }
  return RunSweepCampaign(options);
}

int Run(int argc, char** argv) {
  const SweepBenchArgs args = ParseSweepBenchArgs(argc, argv, "bench_f1_rate_vs_distance");
  if (!args.ok) {
    return 1;
  }

  Table table({"standard", "distance_m", "best_fixed", "best_fixed_mbps", "arf_mbps"});
  for (const std::string standard : {"11b", "11a"}) {
    const SweepResult fixed = RunFigureSweep(args, standard, /*fixed_rates=*/true);
    const SweepResult arf = RunFigureSweep(args, standard, /*fixed_rates=*/false);
    if (!args.csv.empty() &&
        (!WriteSweepCsv(args.csv + "." + standard + ".fixed.csv", fixed) ||
         !WriteSweepCsv(args.csv + "." + standard + ".arf.csv", arf))) {
      return 1;
    }

    // Oracle envelope: per distance, the fixed rate with the best mean goodput.
    const auto modes = ModesFor(standard == "11a" ? PhyStandard::k80211a : PhyStandard::k80211b);
    std::map<std::string, std::pair<double, std::string>> best;  // distance -> (mbps, mode)
    for (const SweepPointResult& point : fixed.points) {
      const double mbps = MetricMean(point, "goodput_mbps");
      const size_t rate_index = std::stoul(PointValue(point, "rate_index"));
      auto& slot = best[PointValue(point, "distance")];
      if (slot.second.empty() || mbps > slot.first) {
        slot = {mbps, mbps > 0 ? modes[rate_index].name : "none"};
      }
    }
    for (const SweepPointResult& point : arf.points) {
      const std::string distance = PointValue(point, "distance");
      table.AddRow({standard, distance, best[distance].second,
                    Table::Num(best[distance].first, 2),
                    Table::Num(MetricMean(point, "goodput_mbps"), 2)});
    }
  }
  std::printf("=== F1: rate-vs-distance staircase (log-distance n=3, 1200 B saturated, "
              "%llu rep(s)/point) ===\n",
              static_cast<unsigned long long>(args.reps));
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  return wlansim::Run(argc, argv);
}
