// M5 — results-sink cost: the WLSR binary columnar writer vs the streaming
// CSV writer, on the in-tree perf harness.
//
// One synthetic record stream is pushed through both sinks at 10^4, 10^5
// and 10^6 replications. The "counters" mix mirrors the CI size gate
// (pipeline_probe --param counters=20 --param n_metrics=1): twenty
// count-style metrics near 1e7 with a small per-replication jitter plus one
// full-entropy value — the shape where delta+varint columns beat %.9g text
// decisively. The "histogram" mix adds a 40-bin DistributionSnapshot per
// record; the CSV writer cannot carry histograms at all, so that pair is
// reported for scale but excluded from the thresholds.
//
// With --check the bench hard-fails unless, at the largest replication
// count on the counters mix, the binary artifact is >= 5x smaller and the
// binary sink >= 3x faster (rows/s) than the CSV sink. Sinks write into a
// counting stream (bytes tallied, not stored) so the 10^6-row points don't
// hold a few hundred MB of CSV text in memory.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

#include "bench/perf_harness.h"
#include "core/random.h"
#include "results/binary_writer.h"
#include "runner/metric_recorder.h"
#include "runner/result_consumer.h"
#include "stats/table.h"

namespace wlansim {
namespace {

// Discards everything written to it, keeping only the byte count.
class CountingBuf final : public std::streambuf {
 public:
  uint64_t bytes() const { return bytes_; }

 protected:
  int_type overflow(int_type ch) override {
    if (ch != traits_type::eof()) {
      ++bytes_;
    }
    return ch;
  }
  std::streamsize xsputn(const char* /*s*/, std::streamsize n) override {
    bytes_ += static_cast<uint64_t>(n);
    return n;
  }

 private:
  uint64_t bytes_ = 0;
};

constexpr int kCounters = 20;

// Rewrites the template record in place for replication `rep`. Reusing the
// map nodes keeps generation cost small next to the sink cost being
// measured, and both sinks see the identical stream.
void FillRecord(ReplicationRecord& r, uint64_t rep, Rng& rng, bool with_hist) {
  r.replication = rep;
  r.metrics["value_0"] = rng.NextDouble();
  for (int c = 0; c < kCounters; ++c) {
    const double jitter = std::floor(rng.NextDouble() * 31.0) - 15.0;
    r.metrics["count_" + std::to_string(c)] = 1.0e7 + 100.0 * c + jitter;
  }
  if (with_hist) {
    DistributionSnapshot& d = r.distributions["latency_hist"];
    d.lo = 0.0;
    d.bin_width = 25.0;
    d.bins.assign(40, 0);
    // A narrow occupied band that drifts with the replication index: a few
    // nonzero bins amid zero runs, the shape the RLE bins codec targets.
    uint64_t total = 0;
    for (uint64_t j = 0; j < 5; ++j) {
      const uint64_t count = 10 + ((rep + j) % 17);
      d.bins[(rep / 64 + j) % 40] += count;
      total += count;
    }
    d.underflow = rep % 3;
    d.overflow = 0;
    d.total = total + d.underflow;
    d.min = 1.0;
    d.max = 990.0;
    d.mean = 480.0 + static_cast<double>(rep % 32);
  }
}

struct SinkRun {
  uint64_t bytes = 0;
  double secs = 0.0;
};

// Streams `rows` freshly generated records through `consumer`, timing the
// whole Begin/OnRecord/End span.
template <typename MakeConsumer>
SinkRun RunSink(uint64_t rows, bool with_hist, const MakeConsumer& make_consumer) {
  CountingBuf buf;
  std::ostream out(&buf);
  auto consumer = make_consumer(out);
  Rng rng(42);
  ReplicationRecord record;
  const auto start = std::chrono::steady_clock::now();
  consumer->BeginCampaign({"bench_m5", 1, rows});
  for (uint64_t rep = 0; rep < rows; ++rep) {
    FillRecord(record, rep, rng, with_hist);
    consumer->OnRecord(record);
  }
  consumer->EndCampaign();
  const auto end = std::chrono::steady_clock::now();
  return {buf.bytes(), std::chrono::duration<double>(end - start).count()};
}

int Run(int argc, char** argv) {
  bool check = false;
  std::vector<char*> filtered{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      filtered.push_back(argv[i]);
    }
  }
  PerfArgs args = ParsePerfArgs(static_cast<int>(filtered.size()), filtered.data(),
                                "bench_m5_results [--check]", /*default_reps=*/2);
  if (!args.ok) {
    return 1;
  }
  args.warmup = false;  // the first timed pass over 10^4+ rows is its own warmup

  PerfHarness harness("M5: results sink, CSV vs WLSR binary (items = rows)", args);
  Table table({"mix", "rows", "csv_B_per_row", "bin_B_per_row", "size_ratio", "csv_Mrows_s",
               "bin_Mrows_s", "sink_speedup"});

  double size_ratio_at_largest = 0.0;
  double speed_ratio_at_largest = 0.0;
  for (const bool with_hist : {false, true}) {
    const char* mix = with_hist ? "histogram" : "counters";
    for (const uint64_t rows : {uint64_t{10000}, uint64_t{100000}, uint64_t{1000000}}) {
      char name[64];
      std::snprintf(name, sizeof(name), "%s_csv_%llu", mix,
                    static_cast<unsigned long long>(rows));
      if (!args.filter.empty() && std::string(name).find(args.filter) == std::string::npos) {
        continue;  // keep the figure table aligned with the benches that ran
      }

      SinkRun csv{};
      harness.Bench(name, [rows, with_hist, &csv] {
        csv = RunSink(rows, with_hist,
                      [](std::ostream& out) { return std::make_unique<StreamingCsvWriter>(out); });
        return rows;
      });
      std::snprintf(name, sizeof(name), "%s_binary_%llu", mix,
                    static_cast<unsigned long long>(rows));
      SinkRun bin{};
      harness.Bench(name, [rows, with_hist, &bin] {
        bin = RunSink(rows, with_hist, [](std::ostream& out) {
          return std::make_unique<BinaryCampaignWriter>(out, /*streamed=*/true);
        });
        return rows;
      });

      const double size_ratio = static_cast<double>(csv.bytes) / static_cast<double>(bin.bytes);
      const double csv_mrows = static_cast<double>(rows) / csv.secs / 1e6;
      const double bin_mrows = static_cast<double>(rows) / bin.secs / 1e6;
      table.AddRow({mix, std::to_string(rows),
                    Table::Num(static_cast<double>(csv.bytes) / static_cast<double>(rows), 1),
                    Table::Num(static_cast<double>(bin.bytes) / static_cast<double>(rows), 1),
                    Table::Num(size_ratio, 2), Table::Num(csv_mrows, 2), Table::Num(bin_mrows, 2),
                    Table::Num(csv.secs / bin.secs, 2)});
      if (!with_hist && rows == 1000000) {
        size_ratio_at_largest = size_ratio;
        speed_ratio_at_largest = csv.secs / bin.secs;
      }
    }
  }

  const int rc = harness.Finish();
  std::printf("=== M5: results artifact size and sink throughput, CSV vs binary ===\n%s\n",
              table.ToString().c_str());
  if (check) {
    if (size_ratio_at_largest < 5.0) {
      std::fprintf(stderr, "binary/CSV size ratio at 10^6 rows is %.2fx, expected >= 5x\n",
                   size_ratio_at_largest);
      return 1;
    }
    if (speed_ratio_at_largest < 3.0) {
      std::fprintf(stderr, "binary sink speedup at 10^6 rows is %.2fx, expected >= 3x\n",
                   speed_ratio_at_largest);
      return 1;
    }
    std::printf("check passed: %.2fx smaller, %.2fx faster sink at 10^6 rows\n",
                size_ratio_at_largest, speed_ratio_at_largest);
  }
  return rc;
}

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  return wlansim::Run(argc, argv);
}
