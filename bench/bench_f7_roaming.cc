// F7 — ESS roaming handoff.
//
// The survey's ESS mobility story: "as a mobile device moves out of the
// range of one access point, it moves into the range of another … and still
// maintains seamless network connection." Two APs on different channels, a
// station walking between them with a CBR uplink. Expected shape: throughput
// holds near the offered rate under each AP, dips to zero during the
// scan + auth + associate gap, then recovers; exactly one handoff occurs.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

Table g_series({"time_s", "delivered_kbps"});
Table g_summary({"metric", "value"});

void BM_Roam(benchmark::State& state) {
  RoamingResult r{};
  for (auto _ : state) {
    RoamingParams p;
    p.n_aps = 2;
    p.spacing = 160.0;
    p.speed = 10.0;
    p.start_x = 10.0;
    p.payload = 500;
    p.sim_time = Time::Seconds(20);
    p.seed = 77;
    r = RunRoamingScenario(p);
    for (const auto& [start_s, bytes] : r.delivered_buckets) {
      g_series.AddRow(
          {Table::Num(start_s, 1), Table::Num(bytes * 8.0 / r.bucket_seconds / 1000.0, 0)});
    }
    g_summary.AddRow({"handoffs", std::to_string(r.handoffs)});
    g_summary.AddRow({"packet_loss_%", Table::Num(100.0 * r.loss_rate, 2)});
  }
  state.counters["handoffs"] = static_cast<double>(r.handoffs);
  state.counters["loss_pct"] = 100.0 * r.loss_rate;
}

BENCHMARK(BM_Roam)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  wlansim::PrintTable("F7: ESS roaming — delivered uplink rate over time (STA walks AP1→AP2)",
                      wlansim::g_series, argc, argv);
  wlansim::PrintTable("F7: summary", wlansim::g_summary, argc, argv);
  return 0;
}
