// F7 — ESS roaming handoff, on the in-tree perf harness.
//
// The survey's ESS mobility story: "as a mobile device moves out of the
// range of one access point, it moves into the range of another … and still
// maintains seamless network connection." Two APs on different channels, a
// station walking between them with a CBR uplink. Expected shape: throughput
// holds near the offered rate under each AP, dips to zero during the
// scan + auth + associate gap, then recovers; exactly one handoff occurs.
//
// The harness times the whole walk (items = delivered payload bytes); the
// time series and the handoff summary are printed afterwards.

#include <cstdint>
#include <string>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

int Run(int argc, char** argv) {
  PerfArgs args = ParsePerfArgs(argc, argv, "bench_f7_roaming", /*default_reps=*/1);
  if (!args.ok) {
    return 1;
  }
  args.warmup = false;  // one rep of a deterministic simulation needs no cache warming

  PerfHarness harness("F7: ESS roaming harness (items = delivered bytes)", args);
  Table series({"time_s", "delivered_kbps"});
  Table summary({"metric", "value"});
  RoamingResult r{};
  harness.Bench("roam/aps=2", [&r] {
    RoamingParams p;
    p.n_aps = 2;
    p.spacing = 160.0;
    p.speed = 10.0;
    p.start_x = 10.0;
    p.payload = 500;
    p.sim_time = Time::Seconds(20);
    p.seed = 77;
    r = RunRoamingScenario(p);
    double delivered_bytes = 0.0;
    for (const auto& [start_s, bytes] : r.delivered_buckets) {
      delivered_bytes += bytes;
    }
    return static_cast<uint64_t>(delivered_bytes);
  });
  for (const auto& [start_s, bytes] : r.delivered_buckets) {
    series.AddRow(
        {Table::Num(start_s, 1), Table::Num(bytes * 8.0 / r.bucket_seconds / 1000.0, 0)});
  }
  summary.AddRow({"handoffs", std::to_string(r.handoffs)});
  summary.AddRow({"packet_loss_%", Table::Num(100.0 * r.loss_rate, 2)});

  const int rc = harness.Finish();
  std::printf("=== F7: ESS roaming — delivered uplink rate over time (STA walks AP1→AP2) ===\n%s\n",
              series.ToString().c_str());
  std::printf("=== F7: summary ===\n%s\n", summary.ToString().c_str());
  return rc;
}

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  return wlansim::Run(argc, argv);
}
