// F7 — ESS roaming handoff.
//
// The survey's ESS mobility story: "as a mobile device moves out of the
// range of one access point, it moves into the range of another … and still
// maintains seamless network connection." Two APs on different channels, a
// station walking between them with a CBR uplink. Expected shape: throughput
// holds near the offered rate under each AP, dips to zero during the
// scan + auth + associate gap, then recovers; exactly one handoff occurs.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "stats/time_series.h"

namespace wlansim {
namespace {

Table g_series({"time_s", "delivered_kbps"});
Table g_summary({"metric", "value"});

void BM_Roam(benchmark::State& state) {
  uint64_t handoffs = 0;
  double loss = 0;
  for (auto _ : state) {
    Network net(Network::Params{.seed = 77});
    net.UseLogDistanceLoss(3.2);

    auto scan_both = [](WifiMac::Config& c) {
      c.scan_channels = {1, 6};
      c.beacon_loss_limit = 3;
    };
    Node* ap1 = net.AddNode({.role = MacRole::kAp,
                             .standard = PhyStandard::k80211b,
                             .ssid = "ess",
                             .position = {0, 0, 0},
                             .channel = 1});
    Node* ap2 = net.AddNode({.role = MacRole::kAp,
                             .standard = PhyStandard::k80211b,
                             .ssid = "ess",
                             .position = {160, 0, 0},
                             .channel = 6});
    Node* sta = net.AddNode({.role = MacRole::kSta,
                             .standard = PhyStandard::k80211b,
                             .ssid = "ess",
                             .position = {10, 0, 0},
                             .channel = 1,
                             .mac_tweak = scan_both});
    // Walk from x=10 toward x=150 at 10 m/s starting after association.
    sta->SetMobility(std::make_unique<ConstantVelocityMobility>(Vector3{10, 0, 0},
                                                                Vector3{10, 0, 0}));
    net.StartAll();

    // Uplink CBR 400 kb/s to whichever AP is current (send to AP1's address;
    // the bridge delivers locally at each AP — use broadcast? No: address the
    // *serving* AP). We send to the BSSID dynamically via a small pump.
    TimeSeries delivered(Time::Millis(500));
    auto pump = std::make_shared<std::function<void()>>();
    Simulator& sim = net.sim();
    FlowStats& stats = net.flow_stats();
    *pump = [&sim, sta, pump, &stats]() {
      if (sta->mac().IsAssociated()) {
        Packet p(500);
        p.meta().flow_id = 1;
        p.meta().created = sim.Now();
        stats.RecordSent(1, 500, sim.Now());
        sta->mac().Enqueue(std::move(p), sta->mac().bssid());
      }
      sim.Schedule(Time::Millis(10), [pump] { (*pump)(); });
    };
    sim.Schedule(Time::Seconds(1), [pump] { (*pump)(); });

    ap1->SetRxCallback([&](const Packet& p, MacAddress, MacAddress) {
      delivered.Add(net.sim().Now(), static_cast<double>(p.size()));
    });
    ap2->SetRxCallback([&](const Packet& p, MacAddress, MacAddress) {
      delivered.Add(net.sim().Now(), static_cast<double>(p.size()));
    });

    net.Run(Time::Seconds(20));

    handoffs = sta->mac().counters().handoffs;
    loss = net.flow_stats().LossRate(1);
    for (const auto& bucket : delivered.buckets()) {
      g_series.AddRow({Table::Num(bucket.start.seconds(), 1),
                       Table::Num(bucket.sum * 8.0 / 0.5 / 1000.0, 0)});
    }
    g_summary.AddRow({"handoffs", std::to_string(handoffs)});
    g_summary.AddRow({"packet_loss_%", Table::Num(100.0 * loss, 2)});
  }
  state.counters["handoffs"] = static_cast<double>(handoffs);
  state.counters["loss_pct"] = 100.0 * loss;
}

BENCHMARK(BM_Roam)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  wlansim::PrintTable("F7: ESS roaming — delivered uplink rate over time (STA walks AP1→AP2)",
                      wlansim::g_series, argc, argv);
  wlansim::PrintTable("F7: summary", wlansim::g_summary, argc, argv);
  return 0;
}
