// M2 — Simulation-engine microbenchmarks: event queue throughput, packet
// header operations, RNG draw rate, and end-to-end simulated-seconds-per-
// wall-second for a canonical saturated BSS.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

void BM_EventScheduleAndPop(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  for (auto _ : state) {
    EventQueue q;
    int64_t executed = 0;
    for (int64_t i = 0; i < n; ++i) {
      q.Schedule(Time::Nanos(rng.UniformInt(0, 1'000'000)), [&executed] { ++executed; });
    }
    while (!q.IsEmpty()) {
      q.PopNext(nullptr)();
    }
    benchmark::DoNotOptimize(executed);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventScheduleAndPop)->Arg(1000)->Arg(100000);

void BM_EventCancelHalf(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    EventQueue q;
    std::vector<EventId> ids;
    for (int i = 0; i < 10000; ++i) {
      ids.push_back(q.Schedule(Time::Nanos(rng.UniformInt(0, 1'000'000)), [] {}));
    }
    for (size_t i = 0; i < ids.size(); i += 2) {
      ids[i].Cancel();
    }
    while (!q.IsEmpty()) {
      q.PopNext(nullptr)();
    }
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventCancelHalf);

void BM_PacketHeaderCycle(benchmark::State& state) {
  const std::vector<uint8_t> header(24, 0xAA);
  for (auto _ : state) {
    Packet p(1500);
    p.AddHeader(header);
    p.RemoveHeader(24);
    benchmark::DoNotOptimize(p.size());
  }
}
BENCHMARK(BM_PacketHeaderCycle);

void BM_RngDraws(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextU64());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngDraws);

void BM_FrameCodecRoundTrip(benchmark::State& state) {
  MacHeader h;
  h.type = FrameType::kData;
  h.addr1 = MacAddress::FromId(1);
  h.addr2 = MacAddress::FromId(2);
  h.addr3 = MacAddress::FromId(3);
  const std::vector<uint8_t> body(1500, 0x77);
  for (auto _ : state) {
    Packet mpdu = BuildMpdu(h, body);
    auto parsed = ParseMpdu(mpdu);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameCodecRoundTrip);

// End-to-end engine speed: how many simulated seconds of a 5-station
// saturated BSS fit in one wall second.
void BM_SimulatedSecondsPerWallSecond(benchmark::State& state) {
  for (auto _ : state) {
    SaturationParams p;
    p.n_stas = 5;
    p.sim_time = Time::Seconds(2);
    p.warmup = Time::Millis(500);
    benchmark::DoNotOptimize(RunSaturationScenario(p));
  }
  state.counters["sim_seconds"] =
      benchmark::Counter(2.0 * static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatedSecondsPerWallSecond)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wlansim

BENCHMARK_MAIN();
