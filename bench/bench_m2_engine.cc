// M2 — Simulation-engine microbenchmarks on the in-tree perf harness: event
// queue throughput (schedule/pop, cancellation, MAC-style timer churn),
// packet header operations, frame codec round-trips, RNG draw rate, and
// end-to-end simulated-seconds-per-wall-second for a canonical saturated
// BSS. The long-format CSV (--csv=) is what the CI perf-smoke job uploads,
// and the before/after table in the README came from this binary.

#include <vector>

#include "bench/bench_util.h"
#include "bench/perf_harness.h"
#include "core/event_queue.h"
#include "mac/frames.h"

namespace wlansim {
namespace {

// One fill-and-drain cycle of `n` events at uniformly random timestamps,
// repeated until ~`target_items` events have been processed.
uint64_t ScheduleAndPop(int64_t n, uint64_t target_items) {
  Rng rng(1);
  uint64_t executed = 0;
  while (executed < target_items) {
    EventQueue q;
    uint64_t batch = 0;
    for (int64_t i = 0; i < n; ++i) {
      q.Schedule(Time::Nanos(rng.UniformInt(0, 1'000'000)), [&batch] { ++batch; });
    }
    while (!q.IsEmpty()) {
      q.PopNext(nullptr)();
    }
    executed += batch;
  }
  return executed;
}

// Schedule `n`, cancel every other one, drain: the tombstone path.
uint64_t CancelHalf(uint64_t rounds) {
  Rng rng(2);
  constexpr int kN = 10000;
  uint64_t processed = 0;
  for (uint64_t round = 0; round < rounds; ++round) {
    EventQueue q;
    std::vector<EventId> ids;
    ids.reserve(kN);
    for (int i = 0; i < kN; ++i) {
      ids.push_back(q.Schedule(Time::Nanos(rng.UniformInt(0, 1'000'000)), [] {}));
    }
    for (size_t i = 0; i < ids.size(); i += 2) {
      ids[i].Cancel();
    }
    while (!q.IsEmpty()) {
      q.PopNext(nullptr)();
    }
    processed += kN;
  }
  return processed;
}

// The MAC hot pattern: a block of stations each keeping one pending timeout
// that is cancelled and rescheduled on every "frame exchange". Exercises
// cancel + generation reuse rather than straight drains.
uint64_t TimerChurn(uint64_t exchanges) {
  constexpr size_t kStations = 64;
  Rng rng(3);
  EventQueue q;
  std::vector<EventId> timeout(kStations);
  Time now;
  for (uint64_t i = 0; i < exchanges; ++i) {
    const size_t sta = static_cast<size_t>(rng.UniformInt(0, kStations - 1));
    timeout[sta].Cancel();
    timeout[sta] = q.Schedule(now + Time::Nanos(rng.UniformInt(1, 100'000)), [] {});
    // Run the queue forward a little so executed and cancelled slots recycle.
    if ((i & 15u) == 0 && !q.IsEmpty()) {
      Time at;
      q.PopNext(&at)();
      now = at;
    }
  }
  while (!q.IsEmpty()) {
    q.PopNext(nullptr)();
  }
  return exchanges;
}

uint64_t PacketHeaderCycle(uint64_t rounds) {
  const std::vector<uint8_t> header(24, 0xAA);
  uint64_t total_size = 0;
  for (uint64_t i = 0; i < rounds; ++i) {
    Packet p(1500);
    p.AddHeader(header);
    p.RemoveHeader(24);
    total_size += p.size();
  }
  // Defeats dead-code elimination; total_size is data-dependent on the work.
  return total_size > 0 ? rounds : 0;
}

uint64_t FrameCodecRoundTrip(uint64_t rounds) {
  MacHeader h;
  h.type = FrameType::kData;
  h.addr1 = MacAddress::FromId(1);
  h.addr2 = MacAddress::FromId(2);
  h.addr3 = MacAddress::FromId(3);
  const std::vector<uint8_t> body(1500, 0x77);
  uint64_t parsed_ok = 0;
  for (uint64_t i = 0; i < rounds; ++i) {
    Packet mpdu = BuildMpdu(h, body);
    auto parsed = ParseMpdu(mpdu);
    parsed_ok += parsed.has_value() ? 1 : 0;
  }
  return parsed_ok == rounds ? rounds : 0;
}

uint64_t RngDraws(uint64_t draws) {
  Rng rng(4);
  uint64_t acc = 0;
  for (uint64_t i = 0; i < draws; ++i) {
    acc ^= rng.NextU64();
  }
  return acc != 0 ? draws : draws + 1;
}

// End-to-end engine speed: items are simulated microseconds of a 5-station
// saturated BSS, so items/s reads as simulated-us per wall-second.
uint64_t SaturatedBss(uint64_t sim_seconds) {
  SaturationParams p;
  p.n_stas = 5;
  p.sim_time = Time::Seconds(static_cast<int64_t>(sim_seconds));
  p.warmup = Time::Millis(500);
  const RunResult r = RunSaturationScenario(p);
  return r.goodput_mbps > 0 ? sim_seconds * 1'000'000 : 0;
}

int Run(int argc, char** argv) {
  const PerfArgs args = ParsePerfArgs(argc, argv, "bench_m2_engine");
  if (!args.ok) {
    return 1;
  }
  PerfHarness harness("M2: simulation-engine microbenchmarks", args);
  harness.Bench("event_schedule_pop_1k", [] { return ScheduleAndPop(1000, 400'000); });
  harness.Bench("event_schedule_pop_100k", [] { return ScheduleAndPop(100'000, 400'000); });
  harness.Bench("event_cancel_half", [] { return CancelHalf(40); });
  harness.Bench("event_timer_churn", [] { return TimerChurn(400'000); });
  harness.Bench("packet_header_cycle", [] { return PacketHeaderCycle(200'000); });
  harness.Bench("frame_codec_roundtrip", [] { return FrameCodecRoundTrip(100'000); });
  harness.Bench("rng_draws", [] { return RngDraws(10'000'000); });
  harness.Bench("saturated_bss_5sta", [] { return SaturatedBss(2); });
  return harness.Finish();
}

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  return wlansim::Run(argc, argv);
}
