// M6 — zero-copy delivery fan-out: the CoW shared-buffer path vs an
// emulation of the legacy per-receiver copy, on the in-tree perf harness.
//
// Each benchmark point broadcasts kSends 1500-byte frames to d attached
// receivers and drains the event queue. Two modes:
//
//  * legacy_d<N>: what Channel::Send did before the CoW packet — one deep
//    byte copy per receiver (Packet built from the frame's bytes) captured
//    by a closure that also carries the SignalParams and the received
//    power. That closure is far over the event slab's 48-byte inline
//    buffer, so every arrival also pays a heap allocation (the bench
//    asserts the fallback counter actually moved — the emulation must hit
//    the path it claims to emulate).
//
//  * zerocopy_d<N>: the real Channel::Send fan-out — one refcounted
//    DeliveryRecord per transmission, per-receiver closures that fit the
//    slab inline. Note this path does strictly MORE semantic work than the
//    emulation (link cache lookups, the cutoff check, probe dispatch), so
//    the speedup gate below is conservative.
//
// With --check the bench hard-fails unless, at every fan-out d >= 32, the
// zero-copy path delivers >= 2x the offers/second of the legacy emulation,
// with Channel::SendStats::bytes_copied == 0 (no CoW fault anywhere in the
// steady-state fan-out) and zero event-slab heap fallbacks.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/perf_harness.h"
#include "core/packet.h"
#include "core/random.h"
#include "core/simulator.h"
#include "core/time.h"
#include "phy/channel.h"
#include "phy/mobility.h"
#include "phy/propagation.h"
#include "phy/radio_device.h"
#include "stats/table.h"

namespace wlansim {
namespace {

constexpr uint64_t kSends = 2000;
constexpr size_t kFrameBytes = 1500;

// A receiver that only counts and checksums what arrives: the cheapest
// possible Deliver, so the measured cost is the fan-out machinery itself.
class SinkDevice final : public RadioDevice {
 public:
  SinkDevice(uint32_t id, Vector3 pos) : id_(id), mobility_(pos) {}

  RadioCapabilities capabilities() const override { return {}; }
  uint8_t channel_number() const override { return 1; }
  MobilityModel* mobility() const override { return &mobility_; }
  uint32_t node_id() const override { return id_; }
  void Deliver(Packet packet, const SignalParams& /*signal*/, double rx_dbm) override {
    ++delivered_;
    checksum_ += packet.bytes().size() + static_cast<uint64_t>(-rx_dbm);
  }

  uint64_t delivered() const { return delivered_; }
  uint64_t checksum() const { return checksum_; }

 private:
  uint32_t id_;
  mutable ConstantPositionMobility mobility_;
  uint64_t delivered_ = 0;
  uint64_t checksum_ = 0;
};

struct FanoutRun {
  double secs = 0.0;
  uint64_t delivered = 0;
  uint64_t bytes_copied = 0;
  uint64_t heap_fallbacks = 0;
};

// One benchmark batch: fresh simulator + channel + 1 transmitter + d sinks,
// kSends broadcasts, queue drained. `legacy` replays the pre-CoW fan-out
// (deep copy + oversized closure per receiver) outside the channel; the
// zero-copy mode goes through Channel::Send itself.
FanoutRun RunFanout(uint64_t d, bool legacy) {
  Simulator sim;
  Channel channel(&sim, std::make_unique<LogDistanceLossModel>(3.0), Rng(7));

  SinkDevice tx(0, {0, 0, 0});
  channel.Attach(&tx);
  std::vector<std::unique_ptr<SinkDevice>> sinks;
  sinks.reserve(d);
  for (uint64_t i = 0; i < d; ++i) {
    sinks.push_back(std::make_unique<SinkDevice>(static_cast<uint32_t>(i + 1),
                                                 Vector3{1.0 + static_cast<double>(i), 0, 0}));
    channel.Attach(sinks.back().get());
  }

  Packet frame(kFrameBytes);
  const SignalParams signal = MakeWifiSignal(BaseModeFor(PhyStandard::k80211g),
                                             kFrameBytes, /*short_preamble=*/false);
  const uint64_t fallbacks_before = sim.EventHeapFallbacks();

  const auto start = std::chrono::steady_clock::now();
  for (uint64_t s = 0; s < kSends; ++s) {
    if (legacy) {
      // The old fan-out, verbatim in shape: per receiver, a Packet deep
      // copy (built from the byte span, exactly one allocation + memcpy
      // like the pre-CoW copy constructor) moved into a closure that also
      // drags the SignalParams and the power along — too big for the
      // slab's inline buffer, so Schedule heap-allocates it.
      for (auto& rx : sinks) {
        Packet copy{frame.bytes()};
        SinkDevice* dev = rx.get();
        sim.Schedule(Time::Micros(1),
                     [dev, p = std::move(copy), sig = signal, dbm = -60.0]() mutable {
                       dev->Deliver(std::move(p), sig, dbm);
                     });
      }
    } else {
      channel.Send(&tx, frame, signal);
    }
    sim.Run();
  }
  const auto end = std::chrono::steady_clock::now();

  FanoutRun run;
  run.secs = std::chrono::duration<double>(end - start).count();
  for (const auto& rx : sinks) {
    run.delivered += rx->delivered();
  }
  run.bytes_copied = channel.send_stats().bytes_copied;
  run.heap_fallbacks = sim.EventHeapFallbacks() - fallbacks_before;
  return run;
}

int Run(int argc, char** argv) {
  bool check = false;
  std::vector<char*> filtered{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      filtered.push_back(argv[i]);
    }
  }
  PerfArgs args = ParsePerfArgs(static_cast<int>(filtered.size()), filtered.data(),
                                "bench_m6_fanout [--check]", /*default_reps=*/3);
  if (!args.ok) {
    return 1;
  }

  PerfHarness harness("M6: delivery fan-out, legacy copy vs zero-copy (items = offers)", args);
  Table table({"fanout", "legacy_Moffers_s", "zerocopy_Moffers_s", "speedup", "zc_bytes_copied",
               "zc_heap_fallbacks"});

  bool gate_ok = true;
  char reason[256] = {0};
  for (const uint64_t d : {uint64_t{8}, uint64_t{32}, uint64_t{64}}) {
    char name[64];
    std::snprintf(name, sizeof(name), "legacy_d%llu", static_cast<unsigned long long>(d));
    if (!args.filter.empty() && std::string(name).find(args.filter) == std::string::npos) {
      continue;  // keep the figure table aligned with the benches that ran
    }

    FanoutRun legacy{};
    harness.Bench(name, [d, &legacy] {
      legacy = RunFanout(d, /*legacy=*/true);
      return legacy.delivered;
    });
    std::snprintf(name, sizeof(name), "zerocopy_d%llu", static_cast<unsigned long long>(d));
    FanoutRun zc{};
    harness.Bench(name, [d, &zc] {
      zc = RunFanout(d, /*legacy=*/false);
      return zc.delivered;
    });

    if (legacy.delivered != kSends * d || zc.delivered != kSends * d) {
      std::fprintf(stderr, "delivery miscount at d=%llu: legacy %llu, zerocopy %llu, want %llu\n",
                   static_cast<unsigned long long>(d),
                   static_cast<unsigned long long>(legacy.delivered),
                   static_cast<unsigned long long>(zc.delivered),
                   static_cast<unsigned long long>(kSends * d));
      return 1;
    }
    if (legacy.heap_fallbacks == 0) {
      std::fprintf(stderr, "legacy emulation at d=%llu never hit the heap-fallback path it "
                           "claims to emulate\n",
                   static_cast<unsigned long long>(d));
      return 1;
    }

    const double legacy_rate = static_cast<double>(legacy.delivered) / legacy.secs;
    const double zc_rate = static_cast<double>(zc.delivered) / zc.secs;
    const double speedup = zc_rate / legacy_rate;
    table.AddRow({std::to_string(d), Table::Num(legacy_rate / 1e6, 2),
                  Table::Num(zc_rate / 1e6, 2), Table::Num(speedup, 2),
                  std::to_string(zc.bytes_copied), std::to_string(zc.heap_fallbacks)});

    if (d >= 32 && speedup < 2.0 && gate_ok) {
      gate_ok = false;
      std::snprintf(reason, sizeof(reason), "zero-copy speedup at d=%llu is %.2fx, expected >= 2x",
                    static_cast<unsigned long long>(d), speedup);
    }
    if (zc.bytes_copied != 0 && gate_ok) {
      gate_ok = false;
      std::snprintf(reason, sizeof(reason), "zero-copy path deep-copied %llu bytes at d=%llu",
                    static_cast<unsigned long long>(zc.bytes_copied),
                    static_cast<unsigned long long>(d));
    }
    if (zc.heap_fallbacks != 0 && gate_ok) {
      gate_ok = false;
      std::snprintf(reason, sizeof(reason),
                    "zero-copy path heap-allocated %llu closures at d=%llu",
                    static_cast<unsigned long long>(zc.heap_fallbacks),
                    static_cast<unsigned long long>(d));
    }
  }

  const int rc = harness.Finish();
  std::printf("=== M6: fan-out delivery throughput, legacy copy vs zero-copy ===\n%s\n",
              table.ToString().c_str());
  if (check) {
    if (!gate_ok) {
      std::fprintf(stderr, "%s\n", reason);
      return 1;
    }
    std::printf("check passed: >= 2x at every fan-out >= 32, zero copies, zero heap fallbacks\n");
  }
  return rc;
}

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  return wlansim::Run(argc, argv);
}
