// M4 — Transmission fan-out cost at city scale: Channel::Send over 10^2,
// 10^3 and 10^4 static nodes scattered at constant density, for three
// channel configurations per size:
//
//   dense_nocut   — the historical behaviour: no cutoff, every send offers
//                   the frame to every other node (the O(n) fan-out).
//   dense_cut     — the -100 dBm reception cutoff on the dense loop:
//                   receivers beyond the interference radius are computed
//                   and then suppressed (saves the arrival events, not the
//                   per-receiver visit).
//   spatial_cut   — the same cutoff with the spatial receiver index: only
//                   the 3x3 grid neighbourhood is visited at all.
//
// Offers per send saturate at (node density x pi r^2) once the city
// outgrows the interference radius, so fan-out cost grows sublinearly in
// node count on the indexed path while dense_nocut stays O(n). The driver
// cross-checks, per size, that dense_cut and spatial_cut deliver the exact
// same offer stream (count and per-offer power/delay checksums — the bench
// restates the differential gate before timing anything), and hard-fails if
// the 10^4-node point shows less than a 5x offer reduction. The long-format
// CSV (--csv=) is what the CI perf-smoke job uploads.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/perf_harness.h"
#include "core/packet.h"
#include "core/random.h"
#include "core/simulator.h"
#include "phy/channel.h"
#include "phy/mobility.h"
#include "phy/propagation.h"
#include "phy/wifi_mode.h"
#include "phy/wifi_phy.h"

namespace wlansim {
namespace {

constexpr double kCutoffDbm = -100.0;
constexpr double kNodeSpacing = 25.0;  // metres between nodes on average
constexpr size_t kSendsPerBatch = 32;

// A city of `n` bare PHYs (no MAC above them) at uniform random positions
// in a square sized for constant density, on one shared channel.
struct City {
  Simulator sim;
  Channel channel;
  std::vector<std::unique_ptr<ConstantPositionMobility>> mobility;
  std::vector<std::unique_ptr<WifiPhy>> phys;

  City(size_t n, bool spatial, double cutoff_dbm, uint64_t seed)
      : channel(&sim, std::make_unique<LogDistanceLossModel>(3.0), Rng(seed)) {
    // Explicit on every config: the bench must measure what it says it
    // measures even when CI sets the WLANSIM_* channel overrides.
    channel.SetRxCutoffDbm(cutoff_dbm);
    channel.EnableSpatialIndex(spatial);
    Rng rng(seed + 1);
    const double side = kNodeSpacing * std::sqrt(static_cast<double>(n));
    mobility.reserve(n);
    phys.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      mobility.push_back(std::make_unique<ConstantPositionMobility>(
          Vector3{rng.Uniform(0.0, side), rng.Uniform(0.0, side), 0.0}));
      phys.push_back(std::make_unique<WifiPhy>(&sim, WifiPhy::Config{}, Rng(seed + 2 + i)));
      phys.back()->AttachChannel(&channel, static_cast<uint32_t>(i), mobility[i].get());
    }
  }

  // One batch: kSendsPerBatch transmissions from senders spread across the
  // city, spaced 2 ms apart so frames don't overlap, then a full drain of
  // the arrival events they scheduled. Returns the number of sends.
  uint64_t RunBatch() {
    const Packet packet(1000);
    const WifiMode mode = ModesFor(PhyStandard::k80211b).back();
    const Time start = sim.Now();
    for (size_t k = 0; k < kSendsPerBatch; ++k) {
      WifiPhy* sender = phys[(k * 2654435761u) % phys.size()].get();
      sim.Schedule(start + Time::Millis(2 * static_cast<int64_t>(k + 1)) - sim.Now(),
                   [this, sender, packet, mode] {
                     channel.Send(sender, packet, MakeWifiSignal(mode, packet.size(), false));
                   });
    }
    sim.RunUntil(start + Time::Millis(2 * (kSendsPerBatch + 2)));
    return kSendsPerBatch;
  }
};

// Offer count plus order-sensitive checksums over the offer stream, via the
// channel's probe hook. Equality across configs means the two paths visited
// the same receivers with the same powers and delays in the same order.
struct OfferTrace {
  uint64_t offers = 0;
  double power_sum = 0.0;
  double delay_sum = 0.0;

  bool operator==(const OfferTrace& other) const = default;
};

OfferTrace TraceBatch(City& city) {
  OfferTrace trace;
  city.channel.AttachProbe(
      [&trace](const RadioDevice*, const RadioDevice*, double rx_dbm, Time delay) {
        ++trace.offers;
        trace.power_sum += rx_dbm;
        trace.delay_sum += delay.seconds();
      });
  city.RunBatch();
  city.channel.AttachProbe(nullptr);
  return trace;
}

int Run(int argc, char** argv) {
  const PerfArgs args = ParsePerfArgs(argc, argv, "bench_m4_spatial");
  if (!args.ok) {
    return 1;
  }
  PerfHarness harness("M4: spatial channel index, tx fan-out at city scale", args);

  double reduction_at_largest = 0.0;
  for (const size_t n : {100u, 1000u, 10000u}) {
    const uint64_t seed = 9000 + n;
    City dense_nocut(n, false, -std::numeric_limits<double>::infinity(), seed);
    City dense_cut(n, false, kCutoffDbm, seed);
    City spatial_cut(n, true, kCutoffDbm, seed);

    // Differential cross-check before timing: same seeds, same sends — the
    // cutoff paths must produce the identical offer stream.
    const OfferTrace nocut = TraceBatch(dense_nocut);
    const OfferTrace dense_trace = TraceBatch(dense_cut);
    const OfferTrace spatial_trace = TraceBatch(spatial_cut);
    if (!(dense_trace == spatial_trace)) {
      std::fprintf(stderr,
                   "offer stream mismatch at n=%zu: dense %llu offers (%.17g, %.17g) "
                   "vs spatial %llu offers (%.17g, %.17g)\n",
                   n, static_cast<unsigned long long>(dense_trace.offers), dense_trace.power_sum,
                   dense_trace.delay_sum, static_cast<unsigned long long>(spatial_trace.offers),
                   spatial_trace.power_sum, spatial_trace.delay_sum);
      return 1;
    }
    std::printf("n=%-6zu offers/send: dense_nocut %.1f, with cutoff %.1f (%.1fx reduction)\n", n,
                static_cast<double>(nocut.offers) / kSendsPerBatch,
                static_cast<double>(spatial_trace.offers) / kSendsPerBatch,
                spatial_trace.offers > 0
                    ? static_cast<double>(nocut.offers) / static_cast<double>(spatial_trace.offers)
                    : 0.0);
    if (n == 10000 && spatial_trace.offers > 0) {
      reduction_at_largest =
          static_cast<double>(nocut.offers) / static_cast<double>(spatial_trace.offers);
    }

    char name[64];
    std::snprintf(name, sizeof(name), "send_dense_nocut_n%zu", n);
    harness.Bench(name, [&dense_nocut] { return dense_nocut.RunBatch(); });
    std::snprintf(name, sizeof(name), "send_dense_cut_n%zu", n);
    harness.Bench(name, [&dense_cut] { return dense_cut.RunBatch(); });
    std::snprintf(name, sizeof(name), "send_spatial_cut_n%zu", n);
    harness.Bench(name, [&spatial_cut] { return spatial_cut.RunBatch(); });
  }

  if (reduction_at_largest < 5.0) {
    std::fprintf(stderr, "offer reduction at n=10000 is %.2fx, expected >= 5x\n",
                 reduction_at_largest);
    return 1;
  }
  return harness.Finish();
}

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  return wlansim::Run(argc, argv);
}
