// F4 — 802.11b/g coexistence penalty.
//
// The survey notes an 802.11g AP "will support 802.11b and 802.11g clients"
// because both share 2.4 GHz. The cost: a pure-g BSS runs with short slots
// and no protection; admitting one b station forces long slots and (when
// enabled) CTS-to-self protection before every OFDM frame. Expected shape:
// pure-g ≫ mixed; protection trades goodput for reliability alongside
// legacy stations.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

Table g_table({"scenario", "g_sta_goodput_mbps", "b_sta_goodput_mbps", "agg_mbps"});

void Run(benchmark::State& state, const char* label, bool with_b, bool protection) {
  CoexistenceParams p;
  p.with_b_sta = with_b;
  p.protection = protection;
  p.seed = 23;
  CoexistenceResult r{};
  for (auto _ : state) {
    r = RunCoexistenceScenario(p);
  }
  state.counters["g_mbps"] = r.g_mbps;
  state.counters["b_mbps"] = r.b_mbps;
  g_table.AddRow({label, Table::Num(r.g_mbps, 2), Table::Num(r.b_mbps, 2),
                  Table::Num(r.g_mbps + r.b_mbps, 2)});
}

void BM_PureG(benchmark::State& s) {
  Run(s, "pure-g (short slot)", false, false);
}
void BM_MixedNoProtection(benchmark::State& s) {
  Run(s, "g + b sta, no protection", true, false);
}
void BM_MixedProtection(benchmark::State& s) {
  Run(s, "g + b sta, cts-to-self", true, true);
}

BENCHMARK(BM_PureG)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MixedNoProtection)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MixedProtection)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  wlansim::PrintTable("F4: 802.11b/g coexistence (saturated uplinks, 1500 B)", wlansim::g_table,
                      argc, argv);
  return 0;
}
