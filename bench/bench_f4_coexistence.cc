// F4 — 802.11b/g coexistence penalty.
//
// The survey notes an 802.11g AP "will support 802.11b and 802.11g clients"
// because both share 2.4 GHz. The cost: a pure-g BSS runs with short slots
// and no protection; admitting one b station forces long slots and (when
// enabled) CTS-to-self protection before every OFDM frame. Expected shape:
// pure-g ≫ mixed; protection trades goodput for reliability alongside
// legacy stations.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

Table g_table({"scenario", "g_sta_goodput_mbps", "b_sta_goodput_mbps", "agg_mbps"});

struct Result {
  double g_mbps;
  double b_mbps;
};

Result RunCoexistence(bool with_b_sta, bool protection, uint64_t seed) {
  Network net(Network::Params{.seed = seed});
  net.UseLogDistanceLoss(3.0);
  auto g_tweak = [&](WifiMac::Config& c) { c.cts_to_self_protection = protection; };

  Node* ap = net.AddNode({.role = MacRole::kAp,
                          .standard = PhyStandard::k80211g,
                          .ssid = "mix",
                          .mac_tweak = g_tweak});
  Node* g_sta = net.AddNode({.role = MacRole::kSta,
                             .standard = PhyStandard::k80211g,
                             .ssid = "mix",
                             .position = {8, 0, 0},
                             .mac_tweak = g_tweak});
  g_sta->SetRateController(
      std::make_unique<FixedRateController>(ModesFor(PhyStandard::k80211g).back()));

  Node* b_sta = nullptr;
  if (with_b_sta) {
    b_sta = net.AddNode({.role = MacRole::kSta,
                         .standard = PhyStandard::k80211b,
                         .ssid = "mix",
                         .position = {-35, 0, 0}});  // beyond ED range of the g STA: protection matters
    b_sta->SetRateController(
        std::make_unique<FixedRateController>(ModesFor(PhyStandard::k80211b).back()));
  }
  net.StartAll();
  g_sta->AddTraffic<SaturatedTraffic>(ap->address(), 1, 1500)->Start(Time::Seconds(1));
  if (b_sta != nullptr) {
    b_sta->AddTraffic<SaturatedTraffic>(ap->address(), 2, 1500)->Start(Time::Seconds(1));
  }
  net.Run(Time::Seconds(7));
  return Result{net.flow_stats().GoodputMbps(1), net.flow_stats().GoodputMbps(2)};
}

void Run(benchmark::State& state, const char* label, bool with_b, bool protection) {
  Result r{};
  for (auto _ : state) {
    r = RunCoexistence(with_b, protection, 23);
  }
  state.counters["g_mbps"] = r.g_mbps;
  state.counters["b_mbps"] = r.b_mbps;
  g_table.AddRow({label, Table::Num(r.g_mbps, 2), Table::Num(r.b_mbps, 2),
                  Table::Num(r.g_mbps + r.b_mbps, 2)});
}

void BM_PureG(benchmark::State& s) {
  Run(s, "pure-g (short slot)", false, false);
}
void BM_MixedNoProtection(benchmark::State& s) {
  Run(s, "g + b sta, no protection", true, false);
}
void BM_MixedProtection(benchmark::State& s) {
  Run(s, "g + b sta, cts-to-self", true, true);
}

BENCHMARK(BM_PureG)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MixedNoProtection)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MixedProtection)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  wlansim::PrintTable("F4: 802.11b/g coexistence (saturated uplinks, 1500 B)", wlansim::g_table,
                      argc, argv);
  return 0;
}
