// F4 — 802.11b/g coexistence penalty, as a thin client of the sweep engine.
//
// The survey notes an 802.11g AP "will support 802.11b and 802.11g clients"
// because both share 2.4 GHz. The cost: a pure-g BSS runs with short slots
// and no protection; admitting one b station forces long slots and (when
// enabled) CTS-to-self protection before every OFDM frame. One sweep over
// the `coexistence` scenario's {with_b_sta} × {protection} grid reproduces
// the figure; the same grid regenerates from the CLI alone:
//   wlansim_run --scenario=coexistence --sweep with_b_sta=false,true \
//       --sweep protection=false,true --reps=8 --csv=f4.csv

#include <string>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

int Run(int argc, char** argv) {
  const SweepBenchArgs args = ParseSweepBenchArgs(argc, argv, "bench_f4_coexistence");
  if (!args.ok) {
    return 1;
  }

  SweepOptions options;
  options.scenario = "coexistence";
  options.base_seed = args.seed;
  options.replications = args.reps;
  options.jobs = args.jobs;
  options.grid.AddAxis(ParseSweepAxis("with_b_sta=false,true"));
  options.grid.AddAxis(ParseSweepAxis("protection=false,true"));
  const SweepResult result = RunSweepCampaign(options);
  if (!args.csv.empty() && !WriteSweepCsv(args.csv, result)) {
    return 1;
  }

  Table table({"scenario", "g_sta_goodput_mbps", "b_sta_goodput_mbps", "agg_mbps"});
  for (const SweepPointResult& point : result.points) {
    const bool with_b = PointValue(point, "with_b_sta") == "true";
    const bool protection = PointValue(point, "protection") == "true";
    const std::string label = !with_b ? (protection ? "pure-g, cts-to-self" : "pure-g (short slot)")
                                      : (protection ? "g + b sta, cts-to-self"
                                                    : "g + b sta, no protection");
    table.AddRow({label, Table::Num(MetricMean(point, "g_sta_mbps"), 2),
                  Table::Num(MetricMean(point, "b_sta_mbps"), 2),
                  Table::Num(MetricMean(point, "agg_mbps"), 2)});
  }
  std::printf("=== F4: 802.11b/g coexistence (saturated uplinks, 1500 B, %llu rep(s)/point) ===\n",
              static_cast<unsigned long long>(args.reps));
  std::fputs(table.ToString().c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  return wlansim::Run(argc, argv);
}
