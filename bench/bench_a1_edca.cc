// A1 (ablation) — EDCA QoS differentiation.
//
// A VoIP flow (50 pps × 160 B, AC_VO) shares a BSS with k saturating bulk
// uploaders (AC_BK). Sweep k with QoS off (plain DCF, everyone equal) and
// on (802.11e EDCA). Expected shape: under DCF the voice delay explodes
// with k (the voice station waits behind every bulk frame + collision);
// under EDCA the voice delay stays in the low milliseconds across the
// sweep while bulk throughput drops only by the (tiny) airtime the voice
// flow actually uses.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

Table g_table({"qos", "bulk_stations", "voice_delay_ms", "voice_p99_ms(jitter_ms)",
               "voice_loss_%", "bulk_mbps"});

const size_t kBulkCounts[] = {1, 3, 6, 10};

void Run(benchmark::State& state, bool qos) {
  const size_t k = kBulkCounts[state.range(0)];
  EdcaQosParams p;
  p.qos = qos;
  p.bulk_stations = k;
  p.seed = 500 + k;
  EdcaQosResult o{};
  for (auto _ : state) {
    o = RunEdcaScenario(p);
  }
  state.counters["voice_delay_ms"] = o.voice_delay_ms;
  state.counters["bulk_mbps"] = o.bulk_mbps;
  g_table.AddRow({qos ? "edca" : "dcf", std::to_string(k), Table::Num(o.voice_delay_ms, 2),
                  Table::Num(o.voice_jitter_ms, 2), Table::Num(100 * o.voice_loss, 1),
                  Table::Num(o.bulk_mbps, 2)});
}

void BM_Dcf(benchmark::State& s) {
  Run(s, false);
}
void BM_Edca(benchmark::State& s) {
  Run(s, true);
}

BENCHMARK(BM_Dcf)->DenseRange(0, 3)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Edca)->DenseRange(0, 3)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  wlansim::PrintTable("A1: EDCA voice protection vs bulk contention (802.11b)", wlansim::g_table,
                      argc, argv);
  return 0;
}
