// A1 (ablation) — EDCA QoS differentiation, on the in-tree perf harness.
//
// A VoIP flow (50 pps × 160 B, AC_VO) shares a BSS with k saturating bulk
// uploaders (AC_BK). Sweep k with QoS off (plain DCF, everyone equal) and
// on (802.11e EDCA). Expected shape: under DCF the voice delay explodes
// with k (the voice station waits behind every bulk frame + collision);
// under EDCA the voice delay stays in the low milliseconds across the
// sweep while bulk throughput drops only by the (tiny) airtime the voice
// flow actually uses.
//
// The harness times each whole-simulation point (items = voice packets
// delivered); the figure table is printed from the scenario results.

#include <cstdint>
#include <string>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

const size_t kBulkCounts[] = {1, 3, 6, 10};

int Run(int argc, char** argv) {
  PerfArgs args = ParsePerfArgs(argc, argv, "bench_a1_edca", /*default_reps=*/1);
  if (!args.ok) {
    return 1;
  }
  args.warmup = false;  // one rep of a deterministic simulation needs no cache warming

  PerfHarness harness("A1: EDCA ablation harness (items = voice packets delivered)", args);
  Table table({"qos", "bulk_stations", "voice_delay_ms", "voice_p99_ms(jitter_ms)",
               "voice_loss_%", "bulk_mbps"});
  for (const bool qos : {false, true}) {
    for (const size_t k : kBulkCounts) {
      const std::string name = std::string(qos ? "edca" : "dcf") + "/k=" + std::to_string(k);
      if (!args.filter.empty() && name.find(args.filter) == std::string::npos) {
        continue;  // keep the figure table aligned with the benches that ran
      }
      EdcaQosParams p;
      p.qos = qos;
      p.bulk_stations = k;
      p.seed = 500 + k;
      EdcaQosResult o{};
      harness.Bench(name, [&p, &o] {
        o = RunEdcaScenario(p);
        return o.voice_delivered;
      });
      table.AddRow({qos ? "edca" : "dcf", std::to_string(k), Table::Num(o.voice_delay_ms, 2),
                    Table::Num(o.voice_jitter_ms, 2), Table::Num(100 * o.voice_loss, 1),
                    Table::Num(o.bulk_mbps, 2)});
    }
  }
  const int rc = harness.Finish();
  std::printf("=== A1: EDCA voice protection vs bulk contention (802.11b) ===\n%s\n",
              table.ToString().c_str());
  return rc;
}

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  return wlansim::Run(argc, argv);
}
