// A1 (ablation) — EDCA QoS differentiation.
//
// A VoIP flow (50 pps × 160 B, AC_VO) shares a BSS with k saturating bulk
// uploaders (AC_BK). Sweep k with QoS off (plain DCF, everyone equal) and
// on (802.11e EDCA). Expected shape: under DCF the voice delay explodes
// with k (the voice station waits behind every bulk frame + collision);
// under EDCA the voice delay stays in the low milliseconds across the
// sweep while bulk throughput drops only by the (tiny) airtime the voice
// flow actually uses.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

Table g_table({"qos", "bulk_stations", "voice_delay_ms", "voice_p99_ms(jitter_ms)",
               "voice_loss_%", "bulk_mbps"});

struct Outcome {
  double voice_delay_ms;
  double voice_jitter_ms;
  double voice_loss;
  double bulk_mbps;
};

Outcome RunQos(bool qos, size_t bulk_stations, uint64_t seed) {
  Network net(Network::Params{.seed = seed});
  net.UseLogDistanceLoss(3.0);
  auto tweak = [qos](WifiMac::Config& c) { c.qos_enabled = qos; };
  Node* ap = net.AddNode(
      {.role = MacRole::kAp, .standard = PhyStandard::k80211b, .mac_tweak = tweak});
  const WifiMode m = ModesFor(PhyStandard::k80211b).back();

  Node* phone = net.AddNode({.role = MacRole::kSta,
                             .standard = PhyStandard::k80211b,
                             .position = {5, 5, 0},
                             .mac_tweak = tweak});
  phone->SetRateController(std::make_unique<FixedRateController>(m));

  std::vector<Node*> bulk;
  for (size_t i = 0; i < bulk_stations; ++i) {
    const double angle = 2.0 * 3.14159265358979 * static_cast<double>(i) /
                         static_cast<double>(std::max<size_t>(bulk_stations, 1));
    Node* sta = net.AddNode({.role = MacRole::kSta,
                             .standard = PhyStandard::k80211b,
                             .position = {10 * std::cos(angle), 10 * std::sin(angle), 0},
                             .mac_tweak = tweak});
    sta->SetRateController(std::make_unique<FixedRateController>(m));
    bulk.push_back(sta);
  }
  net.StartAll();

  auto* voice = phone->AddTraffic<CbrTraffic>(ap->address(), 1, 160, Time::Millis(20));
  voice->SetPriority(6);  // AC_VO
  voice->Start(Time::Seconds(1));
  for (size_t i = 0; i < bulk.size(); ++i) {
    auto* app =
        bulk[i]->AddTraffic<SaturatedTraffic>(ap->address(), static_cast<uint32_t>(i + 2), 1500);
    app->SetPriority(1);  // AC_BK
    app->Start(Time::Seconds(1));
  }
  net.Run(Time::Seconds(7));

  Outcome out{};
  const auto* flow = net.flow_stats().Find(1);
  out.voice_delay_ms = flow != nullptr ? flow->delay_us.mean() / 1000.0 : 0.0;
  out.voice_jitter_ms = flow != nullptr ? flow->jitter_us / 1000.0 : 0.0;
  out.voice_loss = net.flow_stats().LossRate(1);
  double bulk_mbps = 0;
  for (size_t i = 0; i < bulk.size(); ++i) {
    bulk_mbps += net.flow_stats().GoodputMbps(static_cast<uint32_t>(i + 2));
  }
  out.bulk_mbps = bulk_mbps;
  return out;
}

const size_t kBulkCounts[] = {1, 3, 6, 10};

void Run(benchmark::State& state, bool qos) {
  const size_t k = kBulkCounts[state.range(0)];
  Outcome o{};
  for (auto _ : state) {
    o = RunQos(qos, k, 500 + k);
  }
  state.counters["voice_delay_ms"] = o.voice_delay_ms;
  state.counters["bulk_mbps"] = o.bulk_mbps;
  g_table.AddRow({qos ? "edca" : "dcf", std::to_string(k), Table::Num(o.voice_delay_ms, 2),
                  Table::Num(o.voice_jitter_ms, 2), Table::Num(100 * o.voice_loss, 1),
                  Table::Num(o.bulk_mbps, 2)});
}

void BM_Dcf(benchmark::State& s) {
  Run(s, false);
}
void BM_Edca(benchmark::State& s) {
  Run(s, true);
}

BENCHMARK(BM_Dcf)->DenseRange(0, 3)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Edca)->DenseRange(0, 3)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  wlansim::PrintTable("A1: EDCA voice protection vs bulk contention (802.11b)", wlansim::g_table,
                      argc, argv);
  return 0;
}
