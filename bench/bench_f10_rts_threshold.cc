// F10 — RTS/CTS threshold crossover.
//
// Basic access wastes a whole data frame on every collision; RTS/CTS wastes
// only the short RTS but pays the handshake on every frame. The crossover
// therefore moves with payload size and contention level. Sweep payload ×
// station count with RTS always-on vs always-off. Expected shape: basic
// wins for small payloads / low contention; RTS/CTS wins for large payloads
// with many stations.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

Table g_table({"payload_B", "n_stas", "basic_mbps", "rtscts_mbps", "winner"});

const size_t kPayloads[] = {200, 1000, 2304};
const size_t kStas[] = {2, 15, 50};

void BM_Crossover(benchmark::State& state) {
  const size_t payload = kPayloads[state.range(0)];
  const size_t n = kStas[state.range(1)];
  double basic = 0;
  double rts = 0;
  for (auto _ : state) {
    SaturationParams p;
    p.standard = PhyStandard::k80211b;
    p.n_stas = n;
    p.payload = payload;
    p.distance = 10.0;
    p.sim_time = Time::Seconds(4);
    p.seed = 7000 + n * 10 + payload;
    p.rts_threshold = 65535;
    basic = RunSaturationScenario(p).goodput_mbps;
    p.rts_threshold = 0;  // RTS for everything
    rts = RunSaturationScenario(p).goodput_mbps;
  }
  state.counters["basic_mbps"] = basic;
  state.counters["rtscts_mbps"] = rts;
  g_table.AddRow({std::to_string(payload), std::to_string(n), Table::Num(basic, 2),
                  Table::Num(rts, 2), basic >= rts ? "basic" : "rts/cts"});
}

BENCHMARK(BM_Crossover)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  wlansim::PrintTable("F10: RTS/CTS threshold crossover (802.11b, saturated uplinks)",
                      wlansim::g_table, argc, argv);
  return 0;
}
