// F10 — RTS/CTS threshold crossover, on the in-tree perf harness.
//
// Basic access wastes a whole data frame on every collision; RTS/CTS wastes
// only the short RTS but pays the handshake on every frame. The crossover
// therefore moves with payload size and contention level. Sweep payload ×
// station count with RTS always-on vs always-off. Expected shape: basic
// wins for small payloads / low contention; RTS/CTS wins for large payloads
// with many stations.
//
// The harness times each whole-simulation point (items = MPDUs delivered,
// so items/s gauges simulator speed); the figure table itself is printed
// from the scenario results afterwards.

#include <cstddef>
#include <string>

#include "bench/bench_util.h"

namespace wlansim {
namespace {

const size_t kPayloads[] = {200, 1000, 2304};
const size_t kStas[] = {2, 15, 50};

int Run(int argc, char** argv) {
  PerfArgs args = ParsePerfArgs(argc, argv, "bench_f10_rts_threshold", /*default_reps=*/1);
  if (!args.ok) {
    return 1;
  }
  args.warmup = false;  // one rep of a deterministic simulation needs no cache warming

  PerfHarness harness("F10: RTS/CTS crossover harness (items = delivered MPDUs)", args);
  Table table({"payload_B", "n_stas", "basic_mbps", "rtscts_mbps", "winner"});
  for (const size_t payload : kPayloads) {
    for (const size_t n : kStas) {
      double goodput[2] = {0.0, 0.0};  // [0] = basic, [1] = rts/cts
      bool ran = false;
      for (const bool rtscts : {false, true}) {
        const std::string name = std::string(rtscts ? "rtscts" : "basic") +
                                 "/payload=" + std::to_string(payload) +
                                 "/n=" + std::to_string(n);
        if (!args.filter.empty() && name.find(args.filter) == std::string::npos) {
          continue;  // keep the figure table aligned with the benches that ran
        }
        ran = true;
        RunResult r{};
        harness.Bench(name, [payload, n, rtscts, &r] {
          SaturationParams p;
          p.standard = PhyStandard::k80211b;
          p.n_stas = n;
          p.payload = payload;
          p.distance = 10.0;
          p.sim_time = Time::Seconds(4);
          p.seed = 7000 + n * 10 + payload;
          p.rts_threshold = rtscts ? 0 : 65535;  // 0 = RTS for everything
          r = RunSaturationScenario(p);
          return r.rx_ok;
        });
        goodput[rtscts ? 1 : 0] = r.goodput_mbps;
      }
      if (ran) {
        table.AddRow({std::to_string(payload), std::to_string(n), Table::Num(goodput[0], 2),
                      Table::Num(goodput[1], 2), goodput[0] >= goodput[1] ? "basic" : "rts/cts"});
      }
    }
  }
  const int rc = harness.Finish();
  std::printf("=== F10: RTS/CTS threshold crossover (802.11b, saturated uplinks) ===\n%s\n",
              table.ToString().c_str());
  return rc;
}

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  return wlansim::Run(argc, argv);
}
