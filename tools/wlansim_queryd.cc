// wlansim_queryd — the campaign query server. Registers WLSR binary result
// files (validating schema and CRCs at the door), groups them into
// collections, and serves column-level analytics over a local Unix socket
// to wlansim_query clients. Served answers are byte-identical to the
// offline `wlansim_results aggregate` output over the same files — see
// docs/queries.md for the protocol, grammar, and determinism contract.
//
//   wlansim_queryd --socket=/tmp/q.sock --register=results/ --threads=4
//   wlansim_queryd --socket=/tmp/q.sock --register=a.wlsr --register=b.wlsr

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/version.h"
#include "query/catalog.h"
#include "query/server.h"

namespace wlansim {
namespace {

constexpr size_t kMaxThreads = 1024;
constexpr size_t kMaxCacheMb = std::numeric_limits<size_t>::max() >> 20;

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true); }

int Usage() {
  std::fprintf(stderr,
               "usage: wlansim_queryd --socket=PATH --register=FILE_OR_DIR [options]\n"
               "\n"
               "options:\n"
               "  --socket=PATH       Unix socket path to listen on (required)\n"
               "  --register=PATH     WLSR file, or directory of *.wlsr files, to serve\n"
               "                      (repeatable; files are validated and grouped into\n"
               "                      collections at startup)\n"
               "  --threads=N         worker threads serving connections (default 2);\n"
               "                      answers are byte-identical for any N\n"
               "  --cache-mb=N        decoded-column cache budget in MiB (default 64)\n"
               "  --version           print the build version and exit\n");
  return 1;
}

int Main(int argc, char** argv) {
  std::string socket_path;
  std::vector<std::string> register_paths;
  int threads = 2;
  size_t cache_mb = 64;

  auto value_of = [](const char* arg, const char* flag) -> const char* {
    const size_t n = std::strlen(flag);
    return std::strncmp(arg, flag, n) == 0 && arg[n] == '=' ? arg + n + 1 : nullptr;
  };
  auto parse_positive = [](const char* flag, const char* v, size_t max, size_t* out) {
    if (*v == '\0' || std::strspn(v, "0123456789") != std::strlen(v)) {
      std::fprintf(stderr, "%s expects a positive integer, got '%s'\n", flag, v);
      return false;
    }
    unsigned long long n = 0;
    try {
      n = std::stoull(v);
    } catch (const std::out_of_range&) {
      n = max + 1;  // rejected below with the same message
    }
    if (n == 0 || n > max) {
      std::fprintf(stderr, "%s must be between 1 and %zu, got '%s'\n", flag, max, v);
      return false;
    }
    *out = static_cast<size_t>(n);
    return true;
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* v = nullptr;
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      Usage();
      return 0;
    } else if (std::strcmp(arg, "--version") == 0) {
      std::fputs(VersionLine("wlansim_queryd").c_str(), stdout);
      return 0;
    } else if ((v = value_of(arg, "--socket")) != nullptr) {
      socket_path = v;
    } else if ((v = value_of(arg, "--register")) != nullptr) {
      register_paths.emplace_back(v);
    } else if ((v = value_of(arg, "--threads")) != nullptr) {
      size_t n = 0;
      if (!parse_positive("--threads", v, kMaxThreads, &n)) {
        return 1;
      }
      threads = static_cast<int>(n);
    } else if ((v = value_of(arg, "--cache-mb")) != nullptr) {
      // Bounded so cache_mb << 20 below cannot overflow size_t.
      if (!parse_positive("--cache-mb", v, kMaxCacheMb, &cache_mb)) {
        return 1;
      }
    } else {
      std::fprintf(stderr, "unknown option '%s'\n\n", arg);
      return Usage();
    }
  }
  if (socket_path.empty() || register_paths.empty()) {
    std::fprintf(stderr, "--socket and at least one --register are required\n\n");
    return Usage();
  }

  Catalog catalog;
  try {
    for (const std::string& path : register_paths) {
      if (std::filesystem::is_directory(path)) {
        catalog.RegisterDirectory(path);
      } else {
        catalog.RegisterFile(path);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (catalog.file_count() == 0) {
    std::fprintf(stderr, "error: no .wlsr files found under the --register paths\n");
    return 1;
  }

  QueryServerOptions options;
  options.socket_path = socket_path;
  options.threads = threads;
  options.cache_bytes = cache_mb << 20;
  QueryServer server(&catalog, options);
  try {
    server.Start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("wlansim_queryd listening on %s: %zu file(s), %zu collection(s), %d worker(s)\n",
              socket_path.c_str(), catalog.file_count(), catalog.CollectionNames().size(),
              threads);
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();
  std::printf("%s", server.StatsReport().c_str());
  return 0;
}

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  return wlansim::Main(argc, argv);
}
