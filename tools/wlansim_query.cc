// wlansim_query — line-mode client for wlansim_queryd. Connects to the
// server's Unix socket and either runs one query (--once, the CI/batch
// mode: result on stdout or --out, nonzero exit on a server-side error) or
// reads queries line by line from stdin, printing each response as it
// arrives. The query grammar is documented in docs/queries.md.
//
//   wlansim_query --socket=/tmp/q.sock --once "AGGREGATE saturation:campaign"
//   echo "LIST" | wlansim_query --socket=/tmp/q.sock

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/version.h"
#include "query/protocol.h"

namespace wlansim {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: wlansim_query --socket=PATH [--once QUERY] [--out=FILE]\n"
               "\n"
               "options:\n"
               "  --socket=PATH   the wlansim_queryd Unix socket to connect to (required)\n"
               "  --once QUERY    send one query and exit: the result goes to stdout (or\n"
               "                  --out), a server-side error to stderr with exit 1\n"
               "  --out=FILE      write the --once result to FILE instead of stdout\n"
               "  --version       print the build version and exit\n"
               "\n"
               "Without --once, queries are read line by line from stdin and each\n"
               "response is printed as it arrives (server errors go to stderr; the\n"
               "exit status is 1 when any query failed).\n");
  return 1;
}

int Connect(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "socket path '%s' is empty or too long\n", socket_path.c_str());
    return -1;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "socket() failed: %s\n", std::strerror(errno));
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::fprintf(stderr, "cannot connect to '%s': %s\n", socket_path.c_str(),
                 std::strerror(errno));
    ::close(fd);
    return -1;
  }
  return fd;
}

// Sends one query and splits the response. Returns the status byte, or
// throws on a transport failure.
uint8_t RoundTrip(int fd, const std::string& query, std::string* body) {
  WriteFrame(fd, query);
  std::string payload;
  if (!ReadFrame(fd, &payload)) {
    throw std::runtime_error("server closed the connection");
  }
  return DecodeResponse(payload, body);
}

int Main(int argc, char** argv) {
  std::string socket_path;
  std::string once_query;
  bool once = false;
  std::string out_path;

  auto value_of = [](const char* arg, const char* flag) -> const char* {
    const size_t n = std::strlen(flag);
    return std::strncmp(arg, flag, n) == 0 && arg[n] == '=' ? arg + n + 1 : nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* v = nullptr;
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      Usage();
      return 0;
    } else if (std::strcmp(arg, "--version") == 0) {
      std::fputs(VersionLine("wlansim_query").c_str(), stdout);
      return 0;
    } else if ((v = value_of(arg, "--socket")) != nullptr) {
      socket_path = v;
    } else if ((v = value_of(arg, "--once")) != nullptr ||
               (std::strcmp(arg, "--once") == 0 && i + 1 < argc && (v = argv[++i]) != nullptr)) {
      once_query = v;
      once = true;
    } else if ((v = value_of(arg, "--out")) != nullptr) {
      out_path = v;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n\n", arg);
      return Usage();
    }
  }
  if (socket_path.empty()) {
    std::fprintf(stderr, "--socket is required\n\n");
    return Usage();
  }
  if (!out_path.empty() && !once) {
    std::fprintf(stderr, "--out only applies to --once\n");
    return 1;
  }

  const int fd = Connect(socket_path);
  if (fd < 0) {
    return 1;
  }

  int exit_code = 0;
  try {
    if (once) {
      std::string body;
      if (RoundTrip(fd, once_query, &body) != kStatusOk) {
        std::fprintf(stderr, "error: %s", body.c_str());
        exit_code = 1;
      } else if (out_path.empty()) {
        std::fwrite(body.data(), 1, body.size(), stdout);
      } else {
        std::ofstream out(out_path, std::ios::binary);
        out << body;
        if (!out) {
          std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
          exit_code = 1;
        }
      }
    } else {
      std::string line;
      while (std::getline(std::cin, line)) {
        if (line.empty()) {
          continue;
        }
        std::string body;
        if (RoundTrip(fd, line, &body) != kStatusOk) {
          std::fprintf(stderr, "error: %s", body.c_str());
          exit_code = 1;
        } else {
          std::fwrite(body.data(), 1, body.size(), stdout);
          std::fflush(stdout);
        }
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    exit_code = 1;
  }
  ::close(fd);
  return exit_code;
}

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  return wlansim::Main(argc, argv);
}
