#!/usr/bin/env bash
# Docs gate: fails when the architecture/scenario docs drift from the tree.
#
#   1. Every relative markdown link in docs/*.md and README.md must resolve
#      to an existing file or directory (anchors and external URLs skipped).
#   2. Every src/ subdirectory must be mentioned somewhere in docs/ — a new
#      layer cannot land without a place in the architecture map.
#   3. Every scenario registered in src/runner/scenarios.cc must be
#      mentioned somewhere in docs/ — the catalogue in scenarios.md cannot
#      silently fall behind the registry.
#   4. Every CLI binary under tools/*.cc must be mentioned in docs/ or
#      README.md — a new tool cannot land undocumented.
#
# Pure grep/awk over the source: no build needed, so CI runs it in seconds.

set -euo pipefail
cd "$(dirname "$0")/.."

errors=0
complain() {
  echo "check_docs: $*" >&2
  errors=1
}

# --- 1. relative links resolve -------------------------------------------
for f in docs/*.md README.md; do
  dir=$(dirname "$f")
  # Extract (...) targets of inline markdown links, one per line.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*) continue ;;
      *' '*) continue ;;  # C++ lambdas in code blocks look like [](args)
    esac
    path="${target%%#*}"        # strip any anchor
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      complain "broken link in $f: ($target)"
    fi
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed -e 's/^](//' -e 's/)$//')
done

# --- 2. every src/ subdir is documented ----------------------------------
for d in src/*/; do
  name=$(basename "$d")
  if ! grep -rq "src/$name" docs/; then
    complain "src/$name is not mentioned anywhere in docs/"
  fi
done

# --- 3. every registered scenario is documented --------------------------
scenarios=$(awk '
  pending && match($0, /"[a-z0-9_]+"/) {
    print substr($0, RSTART + 1, RLENGTH - 2); pending = 0
  }
  /r\.Register\(/ { pending = 1 }
' src/runner/scenarios.cc)
if [ -z "$scenarios" ]; then
  complain "could not extract any scenario names from src/runner/scenarios.cc"
fi
for s in $scenarios; do
  if ! grep -rqw "$s" docs/; then
    complain "registered scenario '$s' is not mentioned anywhere in docs/"
  fi
done

# --- 4. every CLI tool is documented -------------------------------------
for t in tools/*.cc; do
  name=$(basename "$t" .cc)
  if ! grep -rqw "$name" docs/ README.md; then
    complain "tool '$name' (tools/$name.cc) is not mentioned in docs/ or README.md"
  fi
done

if [ "$errors" -ne 0 ]; then
  exit 1
fi
echo "check_docs: OK (links resolve; $(ls -d src/*/ | wc -l) src dirs and $(echo "$scenarios" | wc -l) scenarios covered)"
