// wlansim_results — the shard-merge/query CLI for WLSR binary result files
// (the --binary-out output of wlansim_run; format spec in docs/results.md).
//
//   wlansim_results inspect FILE             schema + per-group summary
//   wlansim_results merge OUT IN...          join sweep shard files into one,
//                                            byte-identical to the unsharded
//                                            file when the shards cover the grid
//   wlansim_results export FILE [--out=CSV]  back to the exact long-format CSV
//                                            the run itself would have written
//   wlansim_results aggregate FILE... [--out=CSV]
//                                            Welford mean/stddev/CI + exact
//                                            quantiles, column at a time —
//                                            rows are never materialized

#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/version.h"
#include "results/binary_reader.h"

namespace wlansim {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: wlansim_results COMMAND ...\n"
               "\n"
               "commands:\n"
               "  inspect FILE            print the file's schema header and groups\n"
               "  merge OUT IN [IN...]    merge sweep shard files into OUT, groups\n"
               "                          ordered by grid point index; byte-identical\n"
               "                          to the unsharded file when the shards cover\n"
               "                          the whole grid\n"
               "  export FILE [--out=F]   re-emit the run's CSV byte-for-byte: the\n"
               "                          per-replication CSV for a campaign file, the\n"
               "                          long-format CSV for a sweep file (stdout\n"
               "                          unless --out)\n"
               "  aggregate FILE [FILE...] [--out=F]\n"
               "                          exact aggregates (Welford mean/stddev/CI +\n"
               "                          exact quantiles) over all inputs, decoding\n"
               "                          one column at a time\n"
               "\n"
               "  --version               print the build version and exit\n");
  return 1;
}

// Positional-only commands (inspect/merge) still reject flag-looking
// arguments: `inspect --foo` is a usage error, not a filename.
bool RejectFlags(const std::vector<std::string>& args) {
  for (const std::string& arg : args) {
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

// Splits trailing --out=PATH off an argument list; returns false on any
// other flag-looking argument.
bool SplitOutFlag(std::vector<std::string>& args, std::string* out_path) {
  std::vector<std::string> kept;
  for (const std::string& arg : args) {
    if (arg.rfind("--out=", 0) == 0) {
      *out_path = arg.substr(6);
      if (out_path->empty()) {
        std::fprintf(stderr, "--out needs a path\n");
        return false;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return false;
    } else {
      kept.push_back(arg);
    }
  }
  args = std::move(kept);
  return true;
}

int WriteOutput(const std::string& content, const std::string& out_path) {
  if (out_path.empty()) {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return 0;
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << content;
  return out ? 0 : 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "--version") {
      if (!args.empty()) {
        std::fprintf(stderr, "--version takes no arguments\n");
        return 1;
      }
      std::fputs(VersionLine("wlansim_results").c_str(), stdout);
      return 0;
    }
    if (command == "inspect") {
      if (!RejectFlags(args)) {
        return 1;
      }
      if (args.size() != 1) {
        std::fprintf(stderr, "inspect takes exactly one file\n");
        return 1;
      }
      std::fputs(InspectBinary(ReadBinaryResultsFile(args[0])).c_str(), stdout);
      return 0;
    }
    if (command == "merge") {
      if (!RejectFlags(args)) {
        return 1;
      }
      if (args.size() < 2) {
        std::fprintf(stderr, "merge takes an output file and at least one input\n");
        return 1;
      }
      const std::string out_path = args[0];
      std::ofstream out(out_path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
      }
      MergeBinaryFiles({args.begin() + 1, args.end()}, out);
      return 0;
    }
    if (command == "export") {
      std::string out_path;
      if (!SplitOutFlag(args, &out_path)) {
        return 1;
      }
      if (args.size() != 1) {
        std::fprintf(stderr, "export takes exactly one file (plus optional --out=F)\n");
        return 1;
      }
      return WriteOutput(ExportBinaryCsv(ReadBinaryResultsFile(args[0])), out_path);
    }
    if (command == "aggregate") {
      std::string out_path;
      if (!SplitOutFlag(args, &out_path)) {
        return 1;
      }
      if (args.empty()) {
        std::fprintf(stderr, "aggregate takes at least one file\n");
        return 1;
      }
      std::vector<BinaryResultsFile> files;
      files.reserve(args.size());
      for (const std::string& path : args) {
        files.push_back(ReadBinaryResultsFile(path));
      }
      return WriteOutput(AggregateBinary(files), out_path);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n\n", command.c_str());
  return Usage();
}

}  // namespace
}  // namespace wlansim

int main(int argc, char** argv) {
  return wlansim::Main(argc, argv);
}
