#!/usr/bin/env bash
# Produces the canonical scenario output set used by the radio-seam
# byte-identity differential (tools/diff_vs_ref.sh): for every scenario
# named on stdin (or every registered scenario when stdin is a tty), one
# short campaign (aggregate CSV + per-replication CSV) and one two-point
# sweep CSV, with fixed seeds and shortened simulated time so the whole
# matrix runs in well under a minute.
#
# Usage: scenario_outputs.sh <wlansim_run binary> <output dir> [scenario...]
#
# The per-scenario extra parameters only shorten runtimes — they are normal
# scenario parameters, so they appear in the sweep CSVs identically for any
# binary and never mask a behavioural difference.

set -euo pipefail

BIN=$1
OUT=$2
shift 2
mkdir -p "$OUT"

if [ $# -gt 0 ]; then
  scenarios="$*"
else
  scenarios=$("$BIN" --list | awk '{print $2}' | grep -E '^[a-z0-9_]+$' | grep -vx scenario)
fi

# short_params <scenario>  -> --param flags that shrink simulated time
short_params() {
  case "$1" in
    roaming) echo "--param sim_time_s=6" ;;
    pipeline_probe) echo "" ;;
    dense_multi_bss) echo "--param sim_time_s=1 --param n_bss=2" ;;
    city_grid) echo "--param sim_time_s=1 --param n_bss=4" ;;
    *) echo "--param sim_time_s=1" ;;
  esac
}

# sweep_axis <scenario> -> the two-point sweep axis
sweep_axis() {
  case "$1" in
    saturation) echo "n_stas=1,2" ;;
    hidden_terminal) echo "rtscts=false,true" ;;
    edca) echo "qos=false,true" ;;
    dense_multi_bss) echo "stas_per_bss=1,2" ;;
    city_grid) echo "stas_per_bss=1,2" ;;
    rate_vs_distance) echo "distance=30,60" ;;
    ism_interference) echo "oven_distance=0,3" ;;
    adhoc_vs_infra) echo "adhoc=true,false" ;;
    coexistence) echo "protection=false,true" ;;
    fragmentation) echo "frag_threshold=512,2346" ;;
    roaming) echo "speed=10,20" ;;
    pipeline_probe) echo "n_metrics=1,2" ;;
    sensor_coexistence) echo "n_sensors=2,4" ;;
    lora_coexistence) echo "duty_pct=1,10" ;;
    *) echo "" ;;
  esac
}

for s in $scenarios; do
  extra=$(short_params "$s")
  # shellcheck disable=SC2086
  "$BIN" --scenario="$s" $extra --reps=2 --seed=5 --quiet \
    --csv="$OUT/$s-campaign.csv" --reps-csv="$OUT/$s-reps.csv"
  axis=$(sweep_axis "$s")
  if [ -n "$axis" ]; then
    # shellcheck disable=SC2086
    "$BIN" --scenario="$s" $extra --sweep "$axis" --reps=2 --seed=5 --jobs=0 \
      --quiet --csv="$OUT/$s-sweep.csv"
  fi
done

echo "scenario_outputs: wrote $(ls "$OUT" | wc -l) CSVs to $OUT"
