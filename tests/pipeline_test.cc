// Results-pipeline tests: P-square accuracy against exact sample quantiles,
// ordered fan-out through the reorder buffer (out-of-order completion,
// double-set detection), MetricRecorder flush rules, golden streamed-vs-batch
// CSV byte-identity in exact mode (campaign and sharded sweep), and
// streaming-mode determinism across worker counts.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/random.h"
#include "runner/campaign.h"
#include "runner/metric_recorder.h"
#include "runner/result_consumer.h"
#include "runner/result_sink.h"
#include "runner/scenario_registry.h"
#include "runner/sweep.h"
#include "stats/p2_quantile.h"

namespace wlansim {
namespace {

// --- P-square quantile estimation ----------------------------------------------

TEST(P2QuantileTest, ExactForFiveOrFewerSamples) {
  P2Quantile p50(0.5);
  EXPECT_DOUBLE_EQ(p50.Value(), 0.0);
  for (double x : {3.0, 1.0, 2.0}) {
    p50.Add(x);
  }
  EXPECT_DOUBLE_EQ(p50.Value(), ExactQuantile({3.0, 1.0, 2.0}, 0.5));

  P2Quantile p95(0.95);
  const std::vector<double> five = {5.0, 1.0, 4.0, 2.0, 3.0};
  for (double x : five) {
    p95.Add(x);
  }
  EXPECT_DOUBLE_EQ(p95.Value(), ExactQuantile(five, 0.95));
}

TEST(P2QuantileTest, AccuracyWithinBoundsOnUniformStream) {
  Rng rng(1234);
  P2Quantile p50(0.5);
  P2Quantile p95(0.95);
  std::vector<double> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.NextDouble();
    values.push_back(x);
    p50.Add(x);
    p95.Add(x);
  }
  // The sample spans ~[0, 1]; P-square on 2*10^4 i.i.d. uniforms lands well
  // within 1% of the range of the exact order statistic.
  EXPECT_NEAR(p50.Value(), ExactQuantile(values, 0.50), 0.01);
  EXPECT_NEAR(p95.Value(), ExactQuantile(values, 0.95), 0.01);
}

TEST(P2QuantileTest, AccuracyWithinBoundsOnSkewedStream) {
  Rng rng(77);
  P2Quantile p50(0.5);
  P2Quantile p95(0.95);
  std::vector<double> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.Exponential(2.0);  // heavy right tail
    values.push_back(x);
    p50.Add(x);
    p95.Add(x);
  }
  const double exact50 = ExactQuantile(values, 0.50);
  const double exact95 = ExactQuantile(values, 0.95);
  // Relative bounds for the skewed case: the tail marker moves through a
  // much wider range than the uniform test's.
  EXPECT_NEAR(p50.Value(), exact50, 0.03 * exact50);
  EXPECT_NEAR(p95.Value(), exact95, 0.03 * exact95);
}

TEST(P2QuantileTest, MonotoneMarkersSurviveConstantStream) {
  P2Quantile p50(0.5);
  for (int i = 0; i < 1000; ++i) {
    p50.Add(42.0);
  }
  EXPECT_DOUBLE_EQ(p50.Value(), 42.0);
}

// --- ResultPipeline ordering and double-set detection --------------------------

ReplicationRecord MakeRecord(uint64_t replication, double value) {
  ReplicationRecord record;
  record.replication = replication;
  record.metrics["x"] = value;
  return record;
}

class OrderSpy final : public ResultConsumer {
 public:
  void BeginCampaign(const CampaignManifest& manifest) override {
    begun_scenario = manifest.scenario;
  }
  void OnRecord(const ReplicationRecord& record) override {
    seen.push_back(record.replication);
  }
  void EndCampaign() override { ended = true; }

  std::string begun_scenario;
  std::vector<uint64_t> seen;
  bool ended = false;
};

CampaignManifest TestManifest(uint64_t replications) {
  CampaignManifest manifest;
  manifest.scenario = "probe";
  manifest.replications = replications;
  return manifest;
}

TEST(ResultPipelineTest, ReordersOutOfOrderCompletions) {
  ResultPipeline pipeline(TestManifest(5));
  OrderSpy spy;
  pipeline.AddConsumer(&spy);
  pipeline.Begin();
  EXPECT_EQ(spy.begun_scenario, "probe");
  for (uint64_t index : {3u, 1u, 0u, 4u, 2u}) {
    pipeline.Deliver(MakeRecord(index, 1.0));
  }
  pipeline.End();
  EXPECT_EQ(spy.seen, (std::vector<uint64_t>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(spy.ended);
  // {3, 1} waited for 0; with 0 delivered the buffer drains, then {4}
  // waits for 2: high-water mark is the 3 records present just after 0
  // arrives (and before the drain pops them).
  EXPECT_EQ(pipeline.max_reorder_depth(), 3u);
}

TEST(ResultPipelineTest, DoubleDeliveryThrows) {
  ResultPipeline pipeline(TestManifest(3));
  pipeline.Begin();
  pipeline.Deliver(MakeRecord(1, 1.0));
  // Both flavours: an index still buffered, and one already dispatched.
  EXPECT_THROW(pipeline.Deliver(MakeRecord(1, 2.0)), std::logic_error);
  pipeline.Deliver(MakeRecord(0, 1.0));
  EXPECT_THROW(pipeline.Deliver(MakeRecord(0, 2.0)), std::logic_error);
  EXPECT_THROW(pipeline.Deliver(MakeRecord(1, 2.0)), std::logic_error);
}

TEST(ResultPipelineTest, OutOfRangeIndexThrows) {
  ResultPipeline pipeline(TestManifest(2));
  pipeline.Begin();
  EXPECT_THROW(pipeline.Deliver(MakeRecord(2, 1.0)), std::out_of_range);
}

TEST(ResultPipelineTest, EndWithMissingReplicationsThrows) {
  ResultPipeline pipeline(TestManifest(2));
  pipeline.Begin();
  pipeline.Deliver(MakeRecord(1, 1.0));  // 0 never arrives
  EXPECT_THROW(pipeline.End(), std::logic_error);
}

TEST(ResultSinkTest, DoubleStoreThrows) {
  ResultSink sink(2);
  ReplicationResult r;
  r.metrics["x"] = 1.0;
  sink.Store(0, r);
  EXPECT_THROW(sink.Store(0, r), std::logic_error);
  EXPECT_THROW(sink.Store(2, r), std::out_of_range);
  sink.Store(1, r);  // the other index is still fine
}

// --- MetricRecorder flush rules ------------------------------------------------

TEST(MetricRecorderTest, FlushesCountersScalarsGaugesHistograms) {
  MetricRecorder recorder;
  recorder.AddCount("collisions");
  recorder.AddCount("collisions", 2.0);
  recorder.SetScalar("offered_mbps", 4.0);
  recorder.SetScalar("offered_mbps", 5.0);  // last set wins
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    recorder.AddSample("delay_ms", v);
  }
  recorder.DeclareHistogram("per_sta", 0.0, 1.0, 4);
  for (double v : {0.5, 1.5, 1.6, 2.5, 9.0}) {
    recorder.AddHistogramSample("per_sta", v);
  }

  ReplicationResult returned;
  returned.metrics["goodput"] = 7.0;
  const ReplicationRecord record = recorder.Finish(3, returned);

  EXPECT_EQ(record.replication, 3u);
  EXPECT_DOUBLE_EQ(record.metrics.at("collisions"), 3.0);
  EXPECT_DOUBLE_EQ(record.metrics.at("offered_mbps"), 5.0);
  EXPECT_DOUBLE_EQ(record.metrics.at("goodput"), 7.0);
  EXPECT_DOUBLE_EQ(record.metrics.at("delay_ms_count"), 4.0);
  EXPECT_DOUBLE_EQ(record.metrics.at("delay_ms_mean"), 2.5);
  EXPECT_DOUBLE_EQ(record.metrics.at("delay_ms_min"), 1.0);
  EXPECT_DOUBLE_EQ(record.metrics.at("delay_ms_max"), 4.0);
  EXPECT_DOUBLE_EQ(record.metrics.at("per_sta_min"), 0.5);
  EXPECT_DOUBLE_EQ(record.metrics.at("per_sta_max"), 9.0);
  EXPECT_GT(record.metrics.at("per_sta_p90"), record.metrics.at("per_sta_p10"));

  const DistributionSnapshot& dist = record.distributions.at("per_sta");
  EXPECT_EQ(dist.total, 5u);
  EXPECT_EQ(dist.overflow, 1u);  // the 9.0
  EXPECT_EQ(dist.bins, (std::vector<uint64_t>{1, 2, 1, 0}));
  EXPECT_DOUBLE_EQ(dist.mean, (0.5 + 1.5 + 1.6 + 2.5 + 9.0) / 5.0);
}

TEST(MetricRecorderTest, NameCollisionsThrow) {
  {
    MetricRecorder recorder;
    recorder.AddCount("goodput");
    ReplicationResult returned;
    returned.metrics["goodput"] = 1.0;  // collides with the counter
    EXPECT_THROW(recorder.Finish(0, returned), std::logic_error);
  }
  {
    MetricRecorder recorder;
    recorder.AddSample("x", 1.0);     // flushes x_mean
    recorder.SetScalar("x_mean", 2.0);  // collides with the gauge derivation
    EXPECT_THROW(recorder.Finish(0, {}), std::logic_error);
  }
}

TEST(MetricRecorderTest, HistogramMisuseThrows) {
  MetricRecorder recorder;
  EXPECT_THROW(recorder.AddHistogramSample("undeclared", 1.0), std::logic_error);
  recorder.DeclareHistogram("h", 0.0, 1.0, 4);
  EXPECT_THROW(recorder.DeclareHistogram("h", 0.0, 1.0, 4), std::logic_error);
  EXPECT_THROW(recorder.DeclareHistogram("bad", 0.0, 0.0, 4), std::logic_error);
  EXPECT_THROW(recorder.DeclareHistogram("bad", 0.0, 1.0, 0), std::logic_error);
}

// --- Golden test: streamed CSV == batch CSV in exact mode ----------------------

CampaignOptions ProbeCampaign(unsigned jobs, uint64_t reps) {
  CampaignOptions options;
  options.scenario = "pipeline_probe";
  options.base_seed = 99;
  options.replications = reps;
  options.jobs = jobs;
  return options;
}

TEST(StreamingGolden, StreamedRowsMatchBatchCsvByteForByte) {
  // Exact mode with a streaming writer riding the pipeline: rows hit the
  // stream as replications complete (out of order across 8 workers), yet
  // the bytes must equal the batch writer applied to the buffered rows.
  std::ostringstream streamed;
  StreamingCsvWriter writer(streamed);
  CampaignOptions options = ProbeCampaign(8, 64);
  options.consumers.push_back(&writer);
  const CampaignResult result = RunCampaign(options);
  EXPECT_EQ(streamed.str(), ResultSink::ReplicationsToCsv(result.replications));
  EXPECT_FALSE(result.streamed);
  EXPECT_EQ(result.replication_count, 64u);
}

TEST(StreamingGolden, StreamModeMatchesExactModeEverywhereButQuantiles) {
  const CampaignResult exact = RunCampaign(ProbeCampaign(1, 200));
  CampaignOptions options = ProbeCampaign(4, 200);
  options.stream = true;
  const CampaignResult streamed = RunCampaign(options);

  EXPECT_TRUE(streamed.streamed);
  EXPECT_TRUE(streamed.replications.empty());  // nothing buffered
  ASSERT_EQ(exact.aggregates.size(), streamed.aggregates.size());
  for (size_t i = 0; i < exact.aggregates.size(); ++i) {
    const MetricAggregate& e = exact.aggregates[i];
    const MetricAggregate& s = streamed.aggregates[i];
    EXPECT_EQ(e.metric, s.metric);
    EXPECT_EQ(e.count, s.count);
    // Welford summaries fold in the same (replication) order in both modes:
    // identical doubles, not merely close.
    EXPECT_DOUBLE_EQ(e.mean, s.mean);
    EXPECT_DOUBLE_EQ(e.stddev, s.stddev);
    EXPECT_DOUBLE_EQ(e.min, s.min);
    EXPECT_DOUBLE_EQ(e.max, s.max);
    // P-square estimates track the exact quantiles.
    EXPECT_NEAR(e.p50, s.p50, 0.05 * (e.max - e.min + 1e-12));
    EXPECT_NEAR(e.p95, s.p95, 0.05 * (e.max - e.min + 1e-12));
  }
}

TEST(StreamingGolden, StreamModeDeterministicAcrossJobs) {
  CampaignOptions serial = ProbeCampaign(1, 300);
  serial.stream = true;
  CampaignOptions parallel = ProbeCampaign(8, 300);
  parallel.stream = true;
  EXPECT_EQ(ResultSink::AggregatesToCsv(RunCampaign(serial).aggregates, true),
            ResultSink::AggregatesToCsv(RunCampaign(parallel).aggregates, true));
}

TEST(StreamingGolden, StreamingWriterRejectsDriftingMetricSet) {
  std::ostringstream out;
  StreamingCsvWriter writer(out);
  writer.OnRecord(MakeRecord(0, 1.0));
  ReplicationRecord drifted = MakeRecord(1, 1.0);
  drifted.metrics["extra"] = 2.0;
  EXPECT_THROW(writer.OnRecord(drifted), std::runtime_error);
}

TEST(StreamingGolden, StreamingWriterRejectsSecondCampaign) {
  // Reusing one writer across campaigns would append replication-0 rows
  // with no fresh header to the same stream — refuse, loudly.
  std::ostringstream out;
  StreamingCsvWriter writer(out);
  CampaignOptions options = ProbeCampaign(2, 4);
  options.consumers.push_back(&writer);
  RunCampaign(options);
  EXPECT_THROW(RunCampaign(options), std::logic_error);
}

// --- Sweep: exact-mode shard golden + stream mode ------------------------------

SweepOptions ProbeSweep(unsigned jobs, unsigned shard_index, unsigned shard_count) {
  SweepOptions options;
  options.scenario = "pipeline_probe";
  options.grid.AddAxis(ParseSweepAxis("n_metrics=1,2,3"));
  options.grid.AddAxis(ParseSweepAxis("samples=8,32"));
  options.base_seed = 5;
  options.replications = 6;
  options.jobs = jobs;
  options.shard_index = shard_index;
  options.shard_count = shard_count;
  return options;
}

TEST(StreamingGolden, ShardedSweepCsvMergesByteForByte) {
  const std::string full = SweepResultToCsv(RunSweepCampaign(ProbeSweep(4, 0, 1)));
  std::string merged;
  for (unsigned shard = 0; shard < 3; ++shard) {
    const std::string part = SweepResultToCsv(RunSweepCampaign(ProbeSweep(4, shard, 3)));
    merged += shard == 0 ? part : part.substr(part.find('\n') + 1);
  }
  EXPECT_EQ(full, merged);
}

TEST(SweepStream, DeterministicAcrossJobsAndLabeledApproximate) {
  SweepOptions serial = ProbeSweep(1, 0, 1);
  serial.stream = true;
  SweepOptions parallel = ProbeSweep(8, 0, 1);
  parallel.stream = true;
  const std::string csv_serial = SweepResultToCsv(RunSweepCampaign(serial));
  const std::string csv_parallel = SweepResultToCsv(RunSweepCampaign(parallel));
  EXPECT_EQ(csv_serial, csv_parallel);
  EXPECT_NE(csv_serial.find("p50_approx,p95_approx\n"), std::string::npos);

  // Same campaign in exact mode: identical everywhere except the quantile
  // columns' values and labels — count that the headers really diverge.
  const std::string csv_exact = SweepResultToCsv(RunSweepCampaign(ProbeSweep(1, 0, 1)));
  EXPECT_NE(csv_exact.find("p50,p95\n"), std::string::npos);
}

// --- Writer header stability ---------------------------------------------------

TEST(WriterHeaders, ApproxQuantileColumnsAreLabeled) {
  EXPECT_EQ(ResultSink::AggregatesToCsv({}, false),
            "metric,count,mean,stddev,ci95_half,min,max,p50,p95\n");
  EXPECT_EQ(ResultSink::AggregatesToCsv({}, true),
            "metric,count,mean,stddev,ci95_half,min,max,p50_approx,p95_approx\n");
  EXPECT_EQ(ResultSink::SweepLongCsv({"a"}, {}, true),
            "a,metric,count,mean,stddev,ci95_half,min,max,p50_approx,p95_approx\n");
  const std::string json = ResultSink::AggregatesToJson("s", 1, {MetricAggregate{}}, true);
  EXPECT_NE(json.find("\"p50_approx\""), std::string::npos);
  EXPECT_NE(json.find("\"p95_approx\""), std::string::npos);
}

// --- dense_multi_bss per-station histogram through the recorder ----------------

class DistributionSpy final : public ResultConsumer {
 public:
  void OnRecord(const ReplicationRecord& record) override { records.push_back(record); }
  std::vector<ReplicationRecord> records;
};

TEST(DenseMultiBssHistogram, PerStationThroughputRecorded) {
  DistributionSpy spy;
  CampaignOptions options;
  options.scenario = "dense_multi_bss";
  options.replications = 1;
  options.jobs = 1;
  options.params.Set("n_bss", "2");
  options.params.Set("stas_per_bss", "3");
  options.params.Set("sim_time_s", "0.3");
  options.params.Set("sta_hist", "true");
  options.consumers.push_back(&spy);
  const CampaignResult result = RunCampaign(options);

  bool saw_p50 = false;
  for (const MetricAggregate& a : result.aggregates) {
    if (a.metric == "per_sta_mbps_p50") {
      saw_p50 = true;
    }
  }
  EXPECT_TRUE(saw_p50);

  ASSERT_EQ(spy.records.size(), 1u);
  const DistributionSnapshot& dist = spy.records[0].distributions.at("per_sta_mbps");
  EXPECT_EQ(dist.total, 6u);  // 2 BSS x 3 stations
  EXPECT_GE(dist.min, 0.0);
  const auto& m = spy.records[0].metrics;
  EXPECT_LE(m.at("per_sta_mbps_p10"), m.at("per_sta_mbps_p90"));
  EXPECT_LE(m.at("per_sta_mbps_min"), m.at("per_sta_mbps_mean"));
}

TEST(DenseMultiBssHistogram, OffByDefaultKeepsColumnSetUnchanged) {
  CampaignOptions options;
  options.scenario = "dense_multi_bss";
  options.replications = 1;
  options.jobs = 1;
  options.params.Set("n_bss", "1");
  options.params.Set("stas_per_bss", "2");
  options.params.Set("sim_time_s", "0.3");
  const CampaignResult result = RunCampaign(options);
  for (const MetricAggregate& a : result.aggregates) {
    EXPECT_EQ(a.metric.find("per_sta_mbps"), std::string::npos) << a.metric;
  }
}

}  // namespace
}  // namespace wlansim
