// WLSR binary results format tests: primitive/chunk codec round-trips, the
// schema header round-trip, writer determinism across worker counts, shard
// merge byte-identity against the unsharded file, CSV export byte-identity
// against the text writers (batch and streamed, campaign and sweep),
// histogram (DistributionSnapshot) fidelity, schema-drift rejection, and
// corrupted/truncated-file rejection.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "results/binary_format.h"
#include "results/binary_reader.h"
#include "results/binary_writer.h"
#include "runner/campaign.h"
#include "runner/metric_recorder.h"
#include "runner/result_consumer.h"
#include "runner/result_sink.h"
#include "runner/sweep.h"

namespace wlansim {
namespace {

// --- primitive + chunk codecs --------------------------------------------------

TEST(BinaryCodec, VarintRoundTripsAcrossWidths) {
  for (const uint64_t v :
       {uint64_t{0}, uint64_t{1}, uint64_t{127}, uint64_t{128}, uint64_t{300},
        uint64_t{1} << 32, std::numeric_limits<uint64_t>::max()}) {
    std::string out;
    PutVarint(out, v);
    ByteReader in(out);
    EXPECT_EQ(in.GetVarint(), v);
    EXPECT_EQ(in.remaining(), 0u);
  }
}

TEST(BinaryCodec, ZigzagIsAnInvolutionOnExtremes) {
  for (const int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1},
                          std::numeric_limits<int64_t>::min(),
                          std::numeric_limits<int64_t>::max()}) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v);
  }
}

void RoundTripScalars(const std::vector<double>& values, ChunkEncoding expected) {
  std::string out;
  EncodeScalarChunk(out, values.data(), values.size());
  EXPECT_EQ(static_cast<ChunkEncoding>(static_cast<uint8_t>(out[0])), expected);
  ByteReader in(out);
  std::vector<double> decoded;
  DecodeScalarChunk(in, values.size(), &decoded);
  ASSERT_EQ(decoded.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    // Bitwise, not numeric: the format must preserve -0.0 and NaN payloads.
    EXPECT_EQ(std::memcmp(&decoded[i], &values[i], sizeof(double)), 0) << "row " << i;
  }
  EXPECT_EQ(in.remaining(), 0u);
}

TEST(BinaryCodec, ScalarChunkPicksConstantDeltaOrRaw) {
  RoundTripScalars({3.25, 3.25, 3.25, 3.25}, ChunkEncoding::kConstant);
  RoundTripScalars({1e7, 1e7 + 3, 1e7 - 12, 1e7 + 100}, ChunkEncoding::kIntDelta);
  RoundTripScalars({0.1, 0.2, 0.30000000000000004}, ChunkEncoding::kRaw64);
  RoundTripScalars({-0.0, 0.0, 5.0, -9007199254740992.0, 9007199254740992.0},
                   ChunkEncoding::kRaw64);  // -0.0 is not integral bitwise
}

TEST(BinaryCodec, U64ChunkIsExactForAllMagnitudes) {
  const std::vector<uint64_t> hard = {0, std::numeric_limits<uint64_t>::max(), 1,
                                      uint64_t{1} << 63, 12345};
  std::string out;
  EncodeU64Chunk(out, hard.data(), hard.size());
  ByteReader in(out);
  std::vector<uint64_t> decoded;
  DecodeU64Chunk(in, hard.size(), &decoded);
  EXPECT_EQ(decoded, hard);
  EXPECT_EQ(in.remaining(), 0u);
}

TEST(BinaryCodec, BinsRoundTripAndCompressZeroRuns) {
  std::vector<uint64_t> bins(64, 0);
  bins[10] = 7;
  bins[11] = 1;
  bins[40] = 123456;
  std::string out;
  EncodeBins(out, bins.data(), bins.size());
  EXPECT_LT(out.size(), 16u);  // three varints + two zero runs, not 64 values
  ByteReader in(out);
  std::vector<uint64_t> decoded;
  DecodeBins(in, bins.size(), &decoded);
  EXPECT_EQ(decoded, bins);
}

// --- schema header round-trip ---------------------------------------------------

TEST(BinaryHeaders, FileAndGroupHeadersRoundTrip) {
  BinaryFileHeader fh;
  fh.kind = BinaryFileKind::kSweep;
  fh.streamed = true;
  fh.n_groups = 6;
  fh.base_seed = 99;
  fh.replications = 1000;
  fh.scenario = "pipeline_probe";
  fh.param_keys = {"n_metrics", "samples"};
  std::string bytes;
  EncodeFileHeader(bytes, fh);
  ByteReader in(bytes);
  const BinaryFileHeader fh2 = DecodeFileHeader(in);
  EXPECT_EQ(fh2.kind, fh.kind);
  EXPECT_EQ(fh2.streamed, fh.streamed);
  EXPECT_EQ(fh2.n_groups, fh.n_groups);
  EXPECT_EQ(fh2.base_seed, fh.base_seed);
  EXPECT_EQ(fh2.replications, fh.replications);
  EXPECT_EQ(fh2.scenario, fh.scenario);
  EXPECT_EQ(fh2.param_keys, fh.param_keys);
  EXPECT_EQ(in.remaining(), 0u);

  BinaryGroupHeader gh;
  gh.point_index = 3;
  gh.point_seed = 777;
  gh.param_values = {"2", "8"};
  gh.n_rows = 1000;
  gh.scalar_names = {"count_0", "value_0"};
  gh.dist_names = {"latency_hist"};
  gh.dist_geometries = {{0.0, 25.0, 40}};
  std::string gbytes;
  EncodeGroupHeader(gbytes, gh);
  ByteReader gin(gbytes);
  const BinaryGroupHeader gh2 = DecodeGroupHeader(gin);
  EXPECT_EQ(gh2.point_index, gh.point_index);
  EXPECT_EQ(gh2.point_seed, gh.point_seed);
  EXPECT_EQ(gh2.param_values, gh.param_values);
  EXPECT_EQ(gh2.n_rows, gh.n_rows);
  EXPECT_EQ(gh2.scalar_names, gh.scalar_names);
  EXPECT_EQ(gh2.dist_names, gh.dist_names);
  ASSERT_EQ(gh2.dist_geometries.size(), 1u);
  EXPECT_EQ(gh2.dist_geometries[0].lo, 0.0);
  EXPECT_EQ(gh2.dist_geometries[0].bin_width, 25.0);
  EXPECT_EQ(gh2.dist_geometries[0].n_bins, 40u);
  EXPECT_EQ(gin.remaining(), 0u);
}

// --- end-to-end campaign/sweep fixtures ----------------------------------------

CampaignOptions ProbeCampaign(unsigned jobs, uint64_t reps) {
  CampaignOptions options;
  options.scenario = "pipeline_probe";
  options.base_seed = 99;
  options.replications = reps;
  options.jobs = jobs;
  options.params.Set("counters", "3");
  options.params.Set("hist", "true");
  options.params.Set("gauge", "true");
  return options;
}

// Runs a campaign with a binary writer attached; returns the file bytes.
std::string CampaignBinary(unsigned jobs, uint64_t reps, bool stream,
                           CampaignResult* result_out = nullptr) {
  std::ostringstream bin;
  BinaryCampaignWriter writer(bin, stream);
  CampaignOptions options = ProbeCampaign(jobs, reps);
  options.stream = stream;
  options.consumers.push_back(&writer);
  CampaignResult result = RunCampaign(options);
  if (result_out != nullptr) {
    *result_out = std::move(result);
  }
  return bin.str();
}

SweepOptions ProbeSweep(unsigned jobs, unsigned shard_index, unsigned shard_count) {
  SweepOptions options;
  options.scenario = "pipeline_probe";
  options.grid.AddAxis(ParseSweepAxis("n_metrics=1,2,3"));
  options.grid.AddAxis(ParseSweepAxis("samples=8,32"));
  options.base_seed = 5;
  options.replications = 6;
  options.jobs = jobs;
  options.shard_index = shard_index;
  options.shard_count = shard_count;
  return options;
}

std::string SweepBinary(unsigned jobs, unsigned shard_index, unsigned shard_count,
                        SweepResult* result_out = nullptr) {
  std::ostringstream bin;
  BinarySweepWriter writer(bin);
  SweepOptions options = ProbeSweep(jobs, shard_index, shard_count);
  options.point_sinks.push_back(&writer);
  SweepResult result = RunSweepCampaign(options);
  if (result_out != nullptr) {
    *result_out = std::move(result);
  }
  return bin.str();
}

TEST(BinaryWriter, CampaignBytesIdenticalAcrossWorkerCounts) {
  EXPECT_EQ(CampaignBinary(1, 64, false), CampaignBinary(8, 64, false));
}

TEST(BinaryWriter, SweepBytesIdenticalAcrossWorkerCounts) {
  EXPECT_EQ(SweepBinary(1, 0, 1), SweepBinary(8, 0, 1));
}

TEST(BinaryWriter, ShardMergeIsByteIdenticalToUnshardedFile) {
  const std::string full = SweepBinary(4, 0, 1);
  std::vector<std::string> shard_paths;
  for (unsigned shard = 0; shard < 3; ++shard) {
    const std::string path =
        testing::TempDir() + "wlsr_shard_" + std::to_string(shard) + ".bin";
    std::ofstream out(path, std::ios::binary);
    out << SweepBinary(4, shard, 3);
    ASSERT_TRUE(out.good());
    shard_paths.push_back(path);
  }
  std::ostringstream merged;
  MergeBinaryFiles(shard_paths, merged);
  EXPECT_EQ(merged.str(), full);
}

TEST(BinaryReader, CampaignExportMatchesCsvWritersByteForByte) {
  std::ostringstream streamed_csv;
  StreamingCsvWriter csv_writer(streamed_csv);
  std::ostringstream bin;
  BinaryCampaignWriter bin_writer(bin, /*streamed=*/false);
  CampaignOptions options = ProbeCampaign(8, 64);
  options.consumers.push_back(&csv_writer);
  options.consumers.push_back(&bin_writer);
  const CampaignResult result = RunCampaign(options);

  const std::string exported = ExportBinaryCsv(ParseBinaryResults(bin.str()));
  EXPECT_EQ(exported, streamed_csv.str());
  EXPECT_EQ(exported, ResultSink::ReplicationsToCsv(result.replications));
}

TEST(BinaryReader, SweepExportMatchesLongCsvByteForByte) {
  SweepResult result;
  const std::string bytes = SweepBinary(4, 0, 1, &result);
  EXPECT_EQ(ExportBinaryCsv(ParseBinaryResults(bytes)), SweepResultToCsv(result));
}

TEST(BinaryReader, StreamedSweepExportReplaysOnlineAggregationByteForByte) {
  std::ostringstream bin;
  BinarySweepWriter bin_writer(bin);
  std::ostringstream streamed_csv;
  StreamingSweepCsvWriter csv_writer(streamed_csv);
  SweepOptions options = ProbeSweep(4, 0, 1);
  options.stream = true;
  options.point_sinks.push_back(&bin_writer);
  options.point_sinks.push_back(&csv_writer);
  RunSweepCampaign(options);
  EXPECT_EQ(ExportBinaryCsv(ParseBinaryResults(bin.str())), streamed_csv.str());
}

TEST(BinaryReader, StreamedCampaignExportReplaysOnlineRowsByteForByte) {
  // In stream mode nothing is buffered, yet the binary file still holds the
  // full record stream: export reproduces the streaming CSV exactly.
  std::ostringstream streamed_csv;
  StreamingCsvWriter csv_writer(streamed_csv);
  std::ostringstream bin;
  BinaryCampaignWriter bin_writer(bin, /*streamed=*/true);
  CampaignOptions options = ProbeCampaign(4, 128);
  options.stream = true;
  options.consumers.push_back(&csv_writer);
  options.consumers.push_back(&bin_writer);
  RunCampaign(options);
  EXPECT_EQ(ExportBinaryCsv(ParseBinaryResults(bin.str())), streamed_csv.str());
}

TEST(BinaryReader, HistogramSnapshotsSurviveTheRoundTrip) {
  InMemoryConsumer memory;
  std::ostringstream bin;
  BinaryCampaignWriter bin_writer(bin, /*streamed=*/false);
  CampaignOptions options = ProbeCampaign(4, 48);
  options.consumers.push_back(&memory);
  options.consumers.push_back(&bin_writer);
  RunCampaign(options);

  const BinaryResultsFile file = ParseBinaryResults(bin.str());
  ASSERT_EQ(file.groups.size(), 1u);
  const BinaryGroupHeader& header = file.groups[0].header;
  ASSERT_EQ(header.dist_names.size(), 1u);
  EXPECT_EQ(header.dist_names[0], "latency_hist");

  std::vector<DistributionSnapshot> decoded;
  ReadDistColumn(file.groups[0], 0, &decoded);
  ASSERT_EQ(decoded.size(), memory.records().size());
  for (size_t i = 0; i < decoded.size(); ++i) {
    const DistributionSnapshot& want = memory.records()[i].distributions.at("latency_hist");
    EXPECT_EQ(decoded[i].bins, want.bins) << "row " << i;
    EXPECT_EQ(decoded[i].underflow, want.underflow);
    EXPECT_EQ(decoded[i].overflow, want.overflow);
    EXPECT_EQ(decoded[i].total, want.total);
    EXPECT_DOUBLE_EQ(decoded[i].min, want.min);
    EXPECT_DOUBLE_EQ(decoded[i].max, want.max);
    EXPECT_DOUBLE_EQ(decoded[i].mean, want.mean);
    EXPECT_DOUBLE_EQ(decoded[i].lo, want.lo);
    EXPECT_DOUBLE_EQ(decoded[i].bin_width, want.bin_width);
  }
}

TEST(BinaryReader, AggregateMatchesExactCampaignAggregates) {
  CampaignResult result;
  const std::string bytes = CampaignBinary(4, 64, false, &result);
  EXPECT_EQ(AggregateBinary({ParseBinaryResults(bytes)}),
            ResultSink::AggregatesToCsv(result.aggregates, false));
}

// --- rejection paths ------------------------------------------------------------

TEST(BinaryReader, RejectsForeignAndDamagedFiles) {
  EXPECT_THROW(
      {
        try {
          ParseBinaryResults("replication,value_0\n0,0.5\n");
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("not a wlansim binary results file"),
                    std::string::npos);
          throw;
        }
      },
      std::runtime_error);

  const std::string good = CampaignBinary(1, 32, false);

  // Cut off mid-group: every prefix must fail loudly, never mis-parse.
  EXPECT_THROW(
      {
        try {
          ParseBinaryResults(good.substr(0, good.size() - 7));
        } catch (const std::runtime_error& e) {
          EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
          throw;
        }
      },
      std::runtime_error);

  // Flip one body byte: the group CRC must catch it.
  std::string corrupt = good;
  corrupt[corrupt.size() / 2] ^= 0x40;
  EXPECT_THROW(ParseBinaryResults(corrupt), std::runtime_error);

  // Trailing garbage after the last group is damage too, not slack.
  EXPECT_THROW(ParseBinaryResults(good + "x"), std::runtime_error);
}

TEST(BinaryWriter, RejectsSchemaDriftLikeTheCsvWriter) {
  GroupEncoder encoder;
  ReplicationRecord first;
  first.replication = 0;
  first.metrics["a"] = 1.0;
  encoder.AddRecord(first);

  ReplicationRecord drifted;
  drifted.replication = 1;
  drifted.metrics["a"] = 2.0;
  drifted.metrics["extra"] = 3.0;
  EXPECT_THROW(encoder.AddRecord(drifted), std::runtime_error);
}

TEST(BinaryWriter, RejectsSecondCampaignLikeTheCsvWriter) {
  std::ostringstream bin;
  BinaryCampaignWriter writer(bin, /*streamed=*/false);
  CampaignOptions options = ProbeCampaign(2, 4);
  options.consumers.push_back(&writer);
  RunCampaign(options);
  EXPECT_THROW(RunCampaign(options), std::logic_error);
}

// --- streamed sweep CSV (satellite: reorder-buffered long-format streaming) -----

TEST(SweepStreamCsv, StreamedLongCsvMatchesBatchByteForByte) {
  // Exact mode, streaming writer riding the point sinks: rows hit the
  // stream in grid order as points complete out of order across 8 workers.
  std::ostringstream streamed;
  StreamingSweepCsvWriter writer(streamed);
  SweepOptions options = ProbeSweep(8, 0, 1);
  options.point_sinks.push_back(&writer);
  const SweepResult result = RunSweepCampaign(options);
  EXPECT_EQ(streamed.str(), SweepResultToCsv(result));
}

TEST(SweepStreamCsv, WorksWithoutRetainedPoints) {
  // retain_points=false is the at-scale configuration: the sinks are the
  // only output. The streamed CSV must still be byte-identical to what a
  // retaining run produces.
  const std::string retained = SweepResultToCsv(RunSweepCampaign(ProbeSweep(4, 0, 1)));
  std::ostringstream streamed;
  StreamingSweepCsvWriter writer(streamed);
  SweepOptions options = ProbeSweep(4, 0, 1);
  options.point_sinks.push_back(&writer);
  options.retain_points = false;
  const SweepResult result = RunSweepCampaign(options);
  EXPECT_TRUE(result.points.empty());
  EXPECT_EQ(streamed.str(), retained);
}

}  // namespace
}  // namespace wlansim
