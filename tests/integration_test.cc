// Full-stack integration tests: association, single-link throughput against
// the analytic DCF bound, RTS/CTS, fragmentation, ciphers over the air,
// ad-hoc mode, and AP bridging.

#include <gtest/gtest.h>

#include "net/network.h"
#include "rate/arf.h"

namespace wlansim {
namespace {

// Analytic saturation goodput of a single 802.11b link at 11 Mb/s with long
// preamble, basic access and payload L bytes:
//   T_cycle = DIFS + E[backoff] + T_data + SIFS + T_ack
//   E[backoff] = CWmin/2 * slot  (single contender, no collisions)
double AnalyticSingleLinkGoodputMbps(size_t payload, size_t overhead_bytes) {
  const PhyTiming t = TimingFor(PhyStandard::k80211b);
  const WifiMode& mode = ModesFor(PhyStandard::k80211b).back();  // 11 Mb/s
  const WifiMode& ack_mode = ControlResponseMode(mode);          // 2 Mb/s
  const double difs = t.Difs().seconds();
  const double backoff = (t.cw_min / 2.0) * t.slot.seconds();
  const double data = FrameDuration(mode, payload + overhead_bytes + 28).seconds();
  const double sifs = t.sifs.seconds();
  const double ack = AckDuration(ack_mode).seconds();
  const double cycle = difs + backoff + data + sifs + ack;
  return static_cast<double>(payload) * 8.0 / cycle / 1e6;
}

TEST(Integration, StaAssociatesWithAp) {
  Network net(Network::Params{.seed = 7});
  net.UseLogDistanceLoss(3.0);
  Node* ap = net.AddNode({.role = MacRole::kAp, .standard = PhyStandard::k80211b});
  Node* sta = net.AddNode(
      {.role = MacRole::kSta, .standard = PhyStandard::k80211b, .position = {10, 0, 0}});
  net.StartAll();
  net.Run(Time::Seconds(2));
  EXPECT_TRUE(sta->mac().IsAssociated());
  EXPECT_EQ(sta->mac().bssid(), ap->address());
  EXPECT_GT(sta->mac().counters().beacons_received, 5u);
}

TEST(Integration, SingleLinkSaturationMatchesAnalyticBound) {
  Network net(Network::Params{.seed = 11});
  net.UseLogDistanceLoss(3.0);
  Node* ap = net.AddNode({.role = MacRole::kAp, .standard = PhyStandard::k80211b});
  Node* sta = net.AddNode(
      {.role = MacRole::kSta, .standard = PhyStandard::k80211b, .position = {5, 0, 0}});
  // Fixed 11 Mb/s: the link is short and clean.
  sta->SetRateController(std::make_unique<FixedRateController>(
      ModesFor(PhyStandard::k80211b).back()));
  net.StartAll();

  constexpr size_t kPayload = 1500;
  auto* app = sta->AddTraffic<SaturatedTraffic>(ap->address(), 1, kPayload);
  app->Start(Time::Seconds(1));
  net.Run(Time::Seconds(11));

  const double measured = net.flow_stats().GoodputMbps(1);
  const double analytic = AnalyticSingleLinkGoodputMbps(kPayload, 0);
  EXPECT_GT(measured, 0.9 * analytic);
  EXPECT_LT(measured, 1.05 * analytic);
  EXPECT_NEAR(net.flow_stats().LossRate(1), 0.0, 0.02);
}

TEST(Integration, AdhocPeersExchangeTraffic) {
  Network net(Network::Params{.seed = 3});
  net.UseLogDistanceLoss(3.0);
  Node* a = net.AddNode({.role = MacRole::kAdhoc, .standard = PhyStandard::k80211g});
  Node* b = net.AddNode(
      {.role = MacRole::kAdhoc, .standard = PhyStandard::k80211g, .position = {15, 0, 0}});
  net.StartAll();
  auto* app =
      a->AddTraffic<CbrTraffic>(b->address(), 1, 1000, Time::Millis(10));
  app->Start(Time::Millis(100));
  net.Run(Time::Seconds(2));
  EXPECT_GT(b->packets_received(), 150u);
  EXPECT_NEAR(net.flow_stats().LossRate(1), 0.0, 0.02);
}

TEST(Integration, ApBridgesBetweenStations) {
  Network net(Network::Params{.seed = 5});
  net.UseLogDistanceLoss(3.0);
  Node* ap = net.AddNode({.role = MacRole::kAp, .standard = PhyStandard::k80211b});
  Node* sta1 = net.AddNode(
      {.role = MacRole::kSta, .standard = PhyStandard::k80211b, .position = {10, 0, 0}});
  Node* sta2 = net.AddNode(
      {.role = MacRole::kSta, .standard = PhyStandard::k80211b, .position = {-10, 0, 0}});
  net.StartAll();
  auto* app = sta1->AddTraffic<CbrTraffic>(sta2->address(), 9, 500, Time::Millis(20));
  app->Start(Time::Seconds(1));
  net.Run(Time::Seconds(3));
  // STA1 → AP → STA2 relay delivers most packets.
  EXPECT_GT(sta2->packets_received(), 80u);
}

TEST(Integration, CcmpCipherWorksOverTheAir) {
  Network net(Network::Params{.seed = 13});
  net.UseLogDistanceLoss(3.0);
  std::vector<uint8_t> key(16, 0xAB);
  auto secure = [&key](WifiMac::Config& c) {
    c.cipher = CipherSuite::kCcmp;
    c.cipher_key = key;
  };
  Node* ap = net.AddNode(
      {.role = MacRole::kAp, .standard = PhyStandard::k80211b, .mac_tweak = secure});
  Node* sta = net.AddNode({.role = MacRole::kSta,
                           .standard = PhyStandard::k80211b,
                           .position = {10, 0, 0},
                           .mac_tweak = secure});
  net.StartAll();
  auto* app = sta->AddTraffic<CbrTraffic>(ap->address(), 2, 800, Time::Millis(10));
  app->Start(Time::Seconds(1));
  net.Run(Time::Seconds(3));
  EXPECT_GT(ap->packets_received(), 150u);
  EXPECT_EQ(ap->mac().counters().rx_decrypt_failures, 0u);
}

TEST(Integration, FragmentationDeliversLargeMsdus) {
  Network net(Network::Params{.seed = 17});
  net.UseLogDistanceLoss(3.0);
  auto frag = [](WifiMac::Config& c) { c.frag_threshold = 600; };
  Node* ap = net.AddNode(
      {.role = MacRole::kAp, .standard = PhyStandard::k80211b, .mac_tweak = frag});
  Node* sta = net.AddNode({.role = MacRole::kSta,
                           .standard = PhyStandard::k80211b,
                           .position = {10, 0, 0},
                           .mac_tweak = frag});
  net.StartAll();
  auto* app = sta->AddTraffic<CbrTraffic>(ap->address(), 4, 2000, Time::Millis(20));
  app->Start(Time::Seconds(1));
  net.Run(Time::Seconds(3));
  EXPECT_GT(ap->packets_received(), 80u);
  // Each delivered MSDU must arrive intact despite spanning 4 fragments.
  EXPECT_GE(ap->bytes_received(), ap->packets_received() * 2000);
}

TEST(Integration, RtsCtsExchangeUsedAboveThreshold) {
  Network net(Network::Params{.seed = 19});
  net.UseLogDistanceLoss(3.0);
  auto rts = [](WifiMac::Config& c) { c.rts_threshold = 500; };
  Node* ap = net.AddNode(
      {.role = MacRole::kAp, .standard = PhyStandard::k80211b, .mac_tweak = rts});
  Node* sta = net.AddNode({.role = MacRole::kSta,
                           .standard = PhyStandard::k80211b,
                           .position = {10, 0, 0},
                           .mac_tweak = rts});
  net.StartAll();
  auto* app = sta->AddTraffic<CbrTraffic>(ap->address(), 6, 1000, Time::Millis(10));
  app->Start(Time::Seconds(1));
  net.Run(Time::Seconds(2));
  EXPECT_GT(sta->mac().counters().tx_rts, 80u);
  EXPECT_GT(ap->packets_received(), 80u);
}

}  // namespace
}  // namespace wlansim
