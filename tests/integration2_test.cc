// Second wave of full-stack integration tests: roaming, hidden terminals,
// NAV protection, coexistence/ERP behaviour, ciphers over the air (WEP/TKIP),
// duplicate suppression, queue overflow, broadcast, and mobility.

#include <gtest/gtest.h>

#include "net/network.h"
#include "rate/arf.h"

namespace wlansim {
namespace {

TEST(Roaming, StaHandsOffBetweenAps) {
  Network net(Network::Params{.seed = 77});
  net.UseLogDistanceLoss(3.2);
  auto scan_both = [](WifiMac::Config& c) {
    c.scan_channels = {1, 6};
    c.beacon_loss_limit = 3;
  };
  Node* ap1 = net.AddNode({.role = MacRole::kAp,
                           .standard = PhyStandard::k80211b,
                           .ssid = "ess",
                           .position = {0, 0, 0},
                           .channel = 1});
  Node* ap2 = net.AddNode({.role = MacRole::kAp,
                           .standard = PhyStandard::k80211b,
                           .ssid = "ess",
                           .position = {160, 0, 0},
                           .channel = 6});
  Node* sta = net.AddNode({.role = MacRole::kSta,
                           .standard = PhyStandard::k80211b,
                           .ssid = "ess",
                           .position = {10, 0, 0},
                           .channel = 1,
                           .mac_tweak = scan_both});
  sta->SetMobility(
      std::make_unique<ConstantVelocityMobility>(Vector3{10, 0, 0}, Vector3{10, 0, 0}));
  net.StartAll();
  net.Run(Time::Seconds(20));
  EXPECT_EQ(sta->mac().counters().handoffs, 1u);
  EXPECT_TRUE(sta->mac().IsAssociated());
  EXPECT_EQ(sta->mac().bssid(), ap2->address());
  (void)ap1;
}

TEST(Roaming, StaPrefersStrongerApAfterScan) {
  Network net(Network::Params{.seed = 5});
  net.UseLogDistanceLoss(3.0);
  Node* near_ap = net.AddNode({.role = MacRole::kAp,
                               .standard = PhyStandard::k80211b,
                               .ssid = "pick",
                               .position = {20, 0, 0},
                               .channel = 1});
  Node* far_ap = net.AddNode({.role = MacRole::kAp,
                              .standard = PhyStandard::k80211b,
                              .ssid = "pick",
                              .position = {200, 0, 0},
                              .channel = 6});
  Node* sta = net.AddNode({.role = MacRole::kSta,
                           .standard = PhyStandard::k80211b,
                           .ssid = "pick",
                           .position = {0, 0, 0},
                           .mac_tweak = [](WifiMac::Config& c) {
                             c.scan_channels = {1, 6};
                           }});
  net.StartAll();
  net.Run(Time::Seconds(2));
  EXPECT_TRUE(sta->mac().IsAssociated());
  EXPECT_EQ(sta->mac().bssid(), near_ap->address());
  (void)far_ap;
}

TEST(Roaming, WrongSsidIsIgnored) {
  Network net(Network::Params{.seed = 6});
  net.UseLogDistanceLoss(3.0);
  net.AddNode({.role = MacRole::kAp,
               .standard = PhyStandard::k80211b,
               .ssid = "other-network",
               .position = {10, 0, 0}});
  Node* sta = net.AddNode({.role = MacRole::kSta,
                           .standard = PhyStandard::k80211b,
                           .ssid = "my-network",
                           .position = {0, 0, 0}});
  net.StartAll();
  net.Run(Time::Seconds(2));
  EXPECT_FALSE(sta->mac().IsAssociated());
}

TEST(HiddenTerminal, RtsCtsReducesRetries) {
  auto run = [](bool rts) {
    Network net(Network::Params{.seed = 42});
    MatrixLossModel* loss = net.UseMatrixLoss(200.0);
    auto tweak = [rts](WifiMac::Config& c) { c.rts_threshold = rts ? 0 : 65535; };
    Node* r = net.AddNode(
        {.role = MacRole::kAdhoc, .standard = PhyStandard::k80211b, .mac_tweak = tweak});
    Node* a = net.AddNode({.role = MacRole::kAdhoc,
                           .standard = PhyStandard::k80211b,
                           .position = {50, 0, 0},
                           .mac_tweak = tweak});
    Node* b = net.AddNode({.role = MacRole::kAdhoc,
                           .standard = PhyStandard::k80211b,
                           .position = {-50, 0, 0},
                           .mac_tweak = tweak});
    loss->SetLoss(1, 0, 70.0);
    loss->SetLoss(2, 0, 70.0);
    const WifiMode m = ModesFor(PhyStandard::k80211b).back();
    a->SetRateController(std::make_unique<FixedRateController>(m));
    b->SetRateController(std::make_unique<FixedRateController>(m));
    net.StartAll();
    a->AddTraffic<SaturatedTraffic>(r->address(), 1, 1500)->Start(Time::Seconds(1));
    b->AddTraffic<SaturatedTraffic>(r->address(), 2, 1500)->Start(Time::Seconds(1));
    net.Run(Time::Seconds(5));
    const auto& ca = a->mac().counters();
    const auto& cb = b->mac().counters();
    const double attempts = static_cast<double>(ca.tx_data_attempts + cb.tx_data_attempts);
    return attempts > 0 ? static_cast<double>(ca.retries + cb.retries) / attempts : 0.0;
  };
  const double basic_retry = run(false);
  const double rts_retry = run(true);
  EXPECT_GT(basic_retry, 0.25);           // collisions rampant without RTS
  EXPECT_LT(rts_retry, basic_retry / 2);  // RTS/CTS cuts data retries sharply
}

TEST(Nav, ThirdPartyDefersDuringExchange) {
  // C overhears A→B data frames and must not transmit during the NAV
  // window even though its backoff would expire.
  Network net(Network::Params{.seed = 9});
  net.UseLogDistanceLoss(3.0);
  Node* a = net.AddNode({.role = MacRole::kAdhoc, .standard = PhyStandard::k80211b});
  Node* b = net.AddNode(
      {.role = MacRole::kAdhoc, .standard = PhyStandard::k80211b, .position = {10, 0, 0}});
  Node* c = net.AddNode(
      {.role = MacRole::kAdhoc, .standard = PhyStandard::k80211b, .position = {5, 8, 0}});
  const WifiMode m = ModesFor(PhyStandard::k80211b).back();
  for (Node* n : {a, b, c}) {
    n->SetRateController(std::make_unique<FixedRateController>(m));
  }
  net.StartAll();
  a->AddTraffic<SaturatedTraffic>(b->address(), 1, 1500)->Start(Time::Millis(100));
  c->AddTraffic<SaturatedTraffic>(b->address(), 2, 1500)->Start(Time::Millis(100));
  net.Run(Time::Seconds(4));
  // Both flows deliver; collisions (retries) stay low because carrier sense
  // plus NAV keep the senders apart.
  EXPECT_GT(net.flow_stats().GoodputMbps(1), 1.0);
  EXPECT_GT(net.flow_stats().GoodputMbps(2), 1.0);
  const auto& ca = a->mac().counters();
  const auto& cc = c->mac().counters();
  const double retry_rate = static_cast<double>(ca.retries + cc.retries) /
                            static_cast<double>(ca.tx_data_attempts + cc.tx_data_attempts);
  EXPECT_LT(retry_rate, 0.1);
}

TEST(Coexistence, LegacyStationCannotDecodeOfdm) {
  // An 802.11b PHY must treat ERP-OFDM frames as pure energy.
  Network net(Network::Params{.seed = 3});
  net.UseLogDistanceLoss(3.0);
  Node* g_node = net.AddNode({.role = MacRole::kAdhoc, .standard = PhyStandard::k80211g});
  Node* b_node = net.AddNode(
      {.role = MacRole::kAdhoc, .standard = PhyStandard::k80211b, .position = {5, 0, 0}});
  g_node->SetRateController(
      std::make_unique<FixedRateController>(ModesFor(PhyStandard::k80211g).back()));
  net.StartAll();
  g_node->AddTraffic<CbrTraffic>(b_node->address(), 1, 500, Time::Millis(5))
      ->Start(Time::Millis(10));
  net.Run(Time::Seconds(2));
  EXPECT_EQ(b_node->packets_received(), 0u);
  EXPECT_EQ(b_node->phy().counters().rx_ok, 0u);
}

TEST(Coexistence, ApClampsRateForLegacyStation) {
  // A g AP with a b client must deliver downlink traffic (DSSS clamp).
  Network net(Network::Params{.seed = 8});
  net.UseLogDistanceLoss(3.0);
  Node* ap = net.AddNode({.role = MacRole::kAp, .standard = PhyStandard::k80211g, .ssid = "x"});
  Node* printer = net.AddNode({.role = MacRole::kSta,
                               .standard = PhyStandard::k80211b,
                               .ssid = "x",
                               .position = {10, 0, 0}});
  // AP deliberately uses an OFDM-only fixed controller; the clamp must
  // override it for the legacy peer.
  ap->SetRateController(
      std::make_unique<FixedRateController>(ModesFor(PhyStandard::k80211g).back()));
  net.StartAll();
  ap->AddTraffic<CbrTraffic>(printer->address(), 1, 500, Time::Millis(10))
      ->Start(Time::Seconds(1));
  net.Run(Time::Seconds(3));
  EXPECT_GT(printer->packets_received(), 150u);
}

class CipherOverAir : public ::testing::TestWithParam<CipherSuite> {};

TEST_P(CipherOverAir, TrafficFlowsEncrypted) {
  const CipherSuite suite = GetParam();
  Network net(Network::Params{.seed = 21});
  net.UseLogDistanceLoss(3.0);
  auto secure = [suite](WifiMac::Config& c) {
    c.cipher = suite;
    c.cipher_key = std::vector<uint8_t>(suite == CipherSuite::kWep ? 13 : 16, 0x77);
  };
  Node* ap = net.AddNode(
      {.role = MacRole::kAp, .standard = PhyStandard::k80211b, .mac_tweak = secure});
  Node* sta = net.AddNode({.role = MacRole::kSta,
                           .standard = PhyStandard::k80211b,
                           .position = {10, 0, 0},
                           .mac_tweak = secure});
  net.StartAll();
  sta->AddTraffic<CbrTraffic>(ap->address(), 1, 700, Time::Millis(10))->Start(Time::Seconds(1));
  net.Run(Time::Seconds(3));
  EXPECT_GT(ap->packets_received(), 150u);
  EXPECT_EQ(ap->mac().counters().rx_decrypt_failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSuites, CipherOverAir,
                         ::testing::Values(CipherSuite::kWep, CipherSuite::kTkip,
                                           CipherSuite::kCcmp),
                         [](const auto& info) { return ToString(info.param); });

TEST(Security, MismatchedKeysDropEverything) {
  Network net(Network::Params{.seed = 22});
  net.UseLogDistanceLoss(3.0);
  Node* ap = net.AddNode({.role = MacRole::kAp,
                          .standard = PhyStandard::k80211b,
                          .mac_tweak = [](WifiMac::Config& c) {
                            c.cipher = CipherSuite::kCcmp;
                            c.cipher_key = std::vector<uint8_t>(16, 0x01);
                          }});
  Node* sta = net.AddNode({.role = MacRole::kSta,
                           .standard = PhyStandard::k80211b,
                           .position = {10, 0, 0},
                           .mac_tweak = [](WifiMac::Config& c) {
                             c.cipher = CipherSuite::kCcmp;
                             c.cipher_key = std::vector<uint8_t>(16, 0x02);  // wrong key
                           }});
  net.StartAll();
  sta->AddTraffic<CbrTraffic>(ap->address(), 1, 700, Time::Millis(10))->Start(Time::Seconds(1));
  net.Run(Time::Seconds(3));
  EXPECT_EQ(ap->packets_received(), 0u);
  EXPECT_GT(ap->mac().counters().rx_decrypt_failures, 100u);
}

TEST(Mac, BroadcastReachesAllPeersWithoutAcks) {
  Network net(Network::Params{.seed = 14});
  net.UseLogDistanceLoss(3.0);
  Node* src = net.AddNode({.role = MacRole::kAdhoc, .standard = PhyStandard::k80211b});
  Node* p1 = net.AddNode(
      {.role = MacRole::kAdhoc, .standard = PhyStandard::k80211b, .position = {10, 0, 0}});
  Node* p2 = net.AddNode(
      {.role = MacRole::kAdhoc, .standard = PhyStandard::k80211b, .position = {-10, 0, 0}});
  net.StartAll();
  src->AddTraffic<CbrTraffic>(MacAddress::Broadcast(), 1, 300, Time::Millis(10))
      ->Start(Time::Millis(50));
  net.Run(Time::Seconds(2));
  EXPECT_GT(p1->packets_received(), 150u);
  EXPECT_GT(p2->packets_received(), 150u);
  // Nobody ACKs broadcast frames.
  EXPECT_EQ(p1->mac().counters().tx_acks, 0u);
  EXPECT_EQ(p2->mac().counters().tx_acks, 0u);
  EXPECT_EQ(src->mac().counters().ack_timeouts, 0u);
}

TEST(Mac, QueueOverflowDropsNotCrashes) {
  Network net(Network::Params{.seed = 15});
  net.UseLogDistanceLoss(3.0);
  Node* a = net.AddNode({.role = MacRole::kAdhoc,
                         .standard = PhyStandard::k80211b,
                         .mac_tweak = [](WifiMac::Config& c) { c.queue_limit = 8; }});
  Node* b = net.AddNode(
      {.role = MacRole::kAdhoc, .standard = PhyStandard::k80211b, .position = {10, 0, 0}});
  net.StartAll();
  // Offered load far beyond 1 Mb/s base-rate capacity with a tiny queue.
  a->AddTraffic<CbrTraffic>(b->address(), 1, 1400, Time::Micros(500))->Start(Time::Millis(10));
  net.Run(Time::Seconds(2));
  EXPECT_GT(net.flow_stats().LossRate(1), 0.5);  // drops happened
  EXPECT_GT(b->packets_received(), 100u);        // but traffic still flows
}

TEST(Mac, DuplicatesSuppressedWhenAcksLost) {
  // Asymmetric link: data gets through, ACKs are destroyed by a jammer near
  // the sender — the receiver must suppress the retransmitted duplicates.
  Network net(Network::Params{.seed = 16});
  MatrixLossModel* loss = net.UseMatrixLoss(200.0);
  Node* rx = net.AddNode({.role = MacRole::kAdhoc, .standard = PhyStandard::k80211b});
  Node* tx = net.AddNode(
      {.role = MacRole::kAdhoc, .standard = PhyStandard::k80211b, .position = {30, 0, 0}});
  Node* jam = net.AddNode(
      {.role = MacRole::kAdhoc, .standard = PhyStandard::k80211b, .position = {35, 0, 0}});
  loss->SetLoss(1, 0, 70.0);   // tx → rx clean
  loss->SetLoss(2, 1, 68.0);   // jammer booms right over the sender
  // jammer ↔ rx stays dark: rx's data reception is clean.
  const WifiMode fast = ModesFor(PhyStandard::k80211b).back();
  tx->SetRateController(std::make_unique<FixedRateController>(fast));
  jam->SetRateController(std::make_unique<FixedRateController>(fast));
  net.StartAll();
  tx->AddTraffic<CbrTraffic>(rx->address(), 1, 800, Time::Millis(20))->Start(Time::Seconds(1));
  jam->AddTraffic<CbrTraffic>(MacAddress::Broadcast(), 9, 600, Time::Millis(3))
      ->Start(Time::Seconds(1));
  net.Run(Time::Seconds(4));
  // Some ACKs died → sender retried → receiver saw duplicates and dropped
  // them rather than delivering twice.
  EXPECT_GT(rx->mac().counters().rx_duplicates, 0u);
  // Despite the retransmissions, no MSDU is delivered twice: unique
  // deliveries cannot exceed the number generated.
  EXPECT_LE(rx->packets_received(), 150u);
}

TEST(Mobility, WaypointStaysInBounds) {
  RandomWaypointMobility model(100.0, 50.0, 1.0, 5.0, Time::Seconds(1), Rng(4));
  for (int i = 0; i <= 2000; ++i) {
    const Vector3 p = model.PositionAt(Time::Millis(i * 100));
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 100.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 50.0);
  }
}

TEST(Mobility, WaypointIsContinuous) {
  RandomWaypointMobility model(100.0, 100.0, 2.0, 8.0, Time::Millis(500), Rng(5));
  Vector3 prev = model.PositionAt(Time::Zero());
  for (int i = 1; i <= 1000; ++i) {
    const Vector3 p = model.PositionAt(Time::Millis(i * 10));
    // Max speed 8 m/s → at most 0.08 m per 10 ms step.
    EXPECT_LE(prev.DistanceTo(p), 0.09);
    prev = p;
  }
}

TEST(Mobility, ConstantVelocityPath) {
  ConstantVelocityMobility model({10, 0, 0}, {2, 1, 0});
  const Vector3 p = model.PositionAt(Time::Seconds(5));
  EXPECT_DOUBLE_EQ(p.x, 20.0);
  EXPECT_DOUBLE_EQ(p.y, 5.0);
}

TEST(RateAdaptationIntegration, ArfTracksWalkAwayLink) {
  // A station walking away from the AP: ARF must end at a lower rate than
  // it used close-in, and goodput must decrease.
  Network net(Network::Params{.seed = 33});
  net.UseLogDistanceLoss(3.0);
  Node* ap = net.AddNode({.role = MacRole::kAp, .standard = PhyStandard::k80211b});
  Node* sta = net.AddNode(
      {.role = MacRole::kSta, .standard = PhyStandard::k80211b, .position = {5, 0, 0}});
  auto arf = std::make_unique<ArfController>(PhyStandard::k80211b);
  ArfController* arf_raw = arf.get();
  sta->SetRateController(std::move(arf));
  sta->SetMobility(
      std::make_unique<ConstantVelocityMobility>(Vector3{5, 0, 0}, Vector3{15, 0, 0}));
  net.StartAll();
  sta->AddTraffic<SaturatedTraffic>(ap->address(), 1, 1000)->Start(Time::Millis(200));

  size_t rate_close = 0;
  net.sim().Schedule(Time::Seconds(3), [&] {
    rate_close = arf_raw->CurrentRateIndex(ap->address());
  });
  net.Run(Time::Seconds(13));  // ends ~200 m out
  const size_t rate_far = arf_raw->CurrentRateIndex(ap->address());
  EXPECT_GE(rate_close, 2u);  // at 5-50 m ARF reaches CCK rates
  EXPECT_LE(rate_far, 1u);    // at ~200 m it must be down at DSSS 1-2 Mb/s
}

}  // namespace
}  // namespace wlansim

// Appended: ISM interferer behaviour (microwave-oven model).
#include "net/ism_interferer.h"

namespace wlansim {
namespace {

TEST(IsmInterference, OvenDegrades24GhzLink) {
  auto run = [](bool with_oven) {
    Network net(Network::Params{.seed = 71});
    net.UseLogDistanceLoss(3.0);
    Node* rx = net.AddNode({.role = MacRole::kAdhoc, .standard = PhyStandard::k80211b});
    Node* tx = net.AddNode(
        {.role = MacRole::kAdhoc, .standard = PhyStandard::k80211b, .position = {12, 0, 0}});
    tx->SetRateController(
        std::make_unique<FixedRateController>(ModesFor(PhyStandard::k80211b).back()));
    net.StartAll();
    std::unique_ptr<MicrowaveOven> oven;
    if (with_oven) {
      MicrowaveOven::Config oc;
      oc.position = {-5, 0, 0};
      oven = std::make_unique<MicrowaveOven>(&net.sim(), &net.channel(), 99, oc);
      oven->Start(Time::Millis(500));
    }
    tx->AddTraffic<SaturatedTraffic>(rx->address(), 1, 1200)->Start(Time::Seconds(1));
    net.Run(Time::Seconds(4));
    return net.flow_stats().GoodputMbps(1);
  };
  const double clean = run(false);
  const double jammed = run(true);
  // ~40 % duty cycle oven: goodput lands near the off-fraction.
  EXPECT_LT(jammed, 0.75 * clean);
  EXPECT_GT(jammed, 0.30 * clean);
}

TEST(IsmInterference, OvenEmissionsAreNeverDecoded) {
  Network net(Network::Params{.seed = 72});
  net.UseLogDistanceLoss(3.0);
  Node* rx = net.AddNode({.role = MacRole::kAdhoc, .standard = PhyStandard::k80211b});
  MicrowaveOven::Config oc;
  oc.position = {3, 0, 0};
  MicrowaveOven oven(&net.sim(), &net.channel(), 99, oc);
  oven.Start(Time::Millis(10));
  net.Run(Time::Seconds(2));
  EXPECT_GT(oven.bursts_emitted(), 90u);  // ~50 bursts/s
  EXPECT_EQ(rx->phy().counters().rx_ok, 0u);
  EXPECT_EQ(rx->phy().counters().rx_error, 0u);  // never even locked
  EXPECT_EQ(rx->packets_received(), 0u);
}

}  // namespace
}  // namespace wlansim
