// The radio-ops seam: the attach contract (double-attach throws, back-link
// install, mobility re-registration through NotifyMobilityReplaced), cross-
// technology energy coupling between RadioDevice implementations, the
// transmit-only fan-out guarantee, and determinism of the heterogeneous
// coexistence scenarios across sweep parallelism.

#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/random.h"
#include "core/simulator.h"
#include "net/ism_interferer.h"
#include "net/radios.h"
#include "phy/channel.h"
#include "phy/mobility.h"
#include "phy/propagation.h"
#include "phy/wifi_phy.h"
#include "runner/builders.h"
#include "runner/campaign.h"
#include "runner/scenario_registry.h"

namespace wlansim {
namespace {

std::unique_ptr<Channel> MakeChannel(Simulator* sim) {
  return std::make_unique<Channel>(sim, std::make_unique<LogDistanceLossModel>(3.0), Rng(1));
}

// --- Attach contract -----------------------------------------------------------

TEST(RadioSeam, DoubleAttachThrows) {
  Simulator sim;
  auto channel = MakeChannel(&sim);
  ConstantPositionMobility pos{{0, 0, 0}};
  WifiPhy phy{&sim, {}, Rng(2)};
  phy.AttachChannel(channel.get(), 0, &pos);
  EXPECT_THROW(channel->Attach(&phy), std::invalid_argument);
}

TEST(RadioSeam, AttachInstallsChannelBackLink) {
  Simulator sim;
  auto channel = MakeChannel(&sim);
  ConstantPositionMobility pos{{0, 0, 0}};
  WifiPhy phy{&sim, {}, Rng(2)};
  EXPECT_EQ(phy.channel(), nullptr);
  phy.AttachChannel(channel.get(), 0, &pos);
  EXPECT_EQ(phy.channel(), channel.get());

  MicrowaveOven::Config oc;
  MicrowaveOven oven(&sim, channel.get(), 1, oc);
  EXPECT_EQ(oven.channel(), channel.get());
}

TEST(RadioSeam, SameDeviceOnTwoChannelsThrowsOnSecond) {
  // One device, one medium: the back-link is single-valued, so a second
  // channel must refuse rather than silently corrupt the first's index.
  Simulator sim;
  auto first = MakeChannel(&sim);
  auto second = MakeChannel(&sim);
  ConstantPositionMobility pos{{0, 0, 0}};
  WifiPhy phy{&sim, {}, Rng(2)};
  phy.AttachChannel(first.get(), 0, &pos);
  // Not double-attach on `second` (it has never seen this device), but the
  // first channel still throws if asked again.
  EXPECT_THROW(first->Attach(&phy), std::invalid_argument);
  (void)second;
}

// --- Capabilities --------------------------------------------------------------

TEST(RadioSeam, CapabilitiesDescribeEachTechnology) {
  Simulator sim;
  auto channel = MakeChannel(&sim);

  WifiPhy wifi{&sim, {.tx_power_dbm = 18.0}, Rng(2)};
  const RadioCapabilities wc = wifi.capabilities();
  EXPECT_STREQ(wc.technology, "wifi");
  EXPECT_EQ(wc.protocol, RadioProtocol::kWifi80211);
  EXPECT_DOUBLE_EQ(wc.tx_power_dbm, 18.0);
  EXPECT_TRUE(wc.can_receive);

  SensorRadio sensor(&sim, channel.get(), 7, {});
  const RadioCapabilities sc = sensor.capabilities();
  EXPECT_EQ(sc.protocol, RadioProtocol::kIeee802154);
  EXPECT_TRUE(sc.can_receive);
  EXPECT_DOUBLE_EQ(sc.rx_sensitivity_dbm, -85.0);

  LoraInterferer lora(&sim, channel.get(), 8, {});
  EXPECT_EQ(lora.capabilities().protocol, RadioProtocol::kLora);
  EXPECT_FALSE(lora.capabilities().can_receive);

  MicrowaveOven oven(&sim, channel.get(), 9, {});
  EXPECT_EQ(oven.capabilities().protocol, RadioProtocol::kNoise);
  EXPECT_FALSE(oven.capabilities().can_receive);
}

// --- Cross-technology coupling -------------------------------------------------

// A LoRa chirp lands on a WifiPhy as CCA-busy energy for its full airtime:
// the foreign protocol is opaque but the occupancy is real.
TEST(RadioSeam, ForeignProtocolHoldsWifiCcaBusy) {
  Simulator sim;
  auto channel = MakeChannel(&sim);
  ConstantPositionMobility wifi_pos{{0, 0, 0}};
  WifiPhy wifi{&sim, {}, Rng(2)};
  wifi.AttachChannel(channel.get(), 0, &wifi_pos);

  LoraInterferer::Config jc;
  jc.position = {3, 0, 0};  // close enough to sit well above the ED threshold
  jc.airtime = Time::Millis(10);
  jc.duty_pct = 100.0;  // degenerate: solid occupancy after Start
  LoraInterferer jammer(&sim, channel.get(), 1, jc);

  sim.ScheduleAt(Time::Millis(1), [&] { EXPECT_TRUE(wifi.IsIdle()); });
  jammer.Start(Time::Zero());
  bool saw_busy = false;
  sim.ScheduleAt(Time::Millis(200), [&] {
    saw_busy = wifi.state() == WifiPhy::State::kCcaBusy;
  });
  sim.RunUntil(Time::Millis(250));
  EXPECT_GT(jammer.chirps_emitted(), 0u);
  EXPECT_TRUE(saw_busy);
}

// And the reverse: a WiFi frame arriving at a sensor defers its CSMA.
TEST(RadioSeam, SensorsDeliverReportsToTheSink) {
  Simulator sim;
  auto channel = MakeChannel(&sim);
  SensorRadio::Config sink_cfg;
  SensorRadio sink(&sim, channel.get(), 0, sink_cfg);
  SensorRadio::Config rep_cfg;
  rep_cfg.position = {5, 0, 0};
  SensorRadio reporter(&sim, channel.get(), 1, rep_cfg);
  reporter.StartReporting(Time::Millis(10), Time::Millis(20));
  sim.RunUntil(Time::Seconds(2));

  EXPECT_GT(reporter.counters().reports_sent, 50u);
  // Clean channel, 5 m: every report arrives intact.
  EXPECT_EQ(sink.counters().rx_ok, reporter.counters().reports_sent);
  EXPECT_EQ(sink.counters().rx_lost_sinr, 0u);
}

// A jammer parked on top of the sink degrades the sensor link: the chirps
// are audible at the reporter too, so CSMA defers and eventually abandons
// reports during each 60 ms chirp — fewer reports make it onto the air
// than the schedule offered.
TEST(RadioSeam, JammerDegradesSensorDelivery) {
  Simulator sim;
  auto channel = MakeChannel(&sim);
  SensorRadio sink(&sim, channel.get(), 0, {});
  SensorRadio::Config rep_cfg;
  rep_cfg.position = {8, 0, 0};
  SensorRadio reporter(&sim, channel.get(), 1, rep_cfg);
  LoraInterferer::Config jc;
  jc.position = {0.5, 0, 0};  // on top of the sink
  jc.duty_pct = 50.0;
  LoraInterferer jammer(&sim, channel.get(), 2, jc);
  reporter.StartReporting(Time::Millis(10), Time::Millis(20));
  jammer.Start(Time::Zero());
  sim.RunUntil(Time::Seconds(4));

  EXPECT_GT(jammer.chirps_emitted(), 0u);
  EXPECT_GT(reporter.counters().csma_drops, 0u);
  // ~200 report opportunities in 4 s at 20 ms; the 50 % duty jammer must
  // have cost a visible share of them.
  EXPECT_LT(reporter.counters().reports_sent, 150u);
  EXPECT_LE(sink.counters().rx_ok, reporter.counters().reports_sent);
}

// Transmit-only devices are never offered arrivals: a cooking oven beside a
// chatty BSS costs zero delivery fan-out toward the oven.
TEST(RadioSeam, TransmitOnlyDevicesReceiveNoOffers) {
  Simulator sim;
  auto channel = MakeChannel(&sim);
  ConstantPositionMobility pos_a{{0, 0, 0}};
  ConstantPositionMobility pos_b{{5, 0, 0}};
  WifiPhy a{&sim, {}, Rng(2)};
  WifiPhy b{&sim, {}, Rng(3)};
  a.AttachChannel(channel.get(), 0, &pos_a);
  b.AttachChannel(channel.get(), 1, &pos_b);
  MicrowaveOven::Config oc;
  oc.position = {2, 0, 0};
  MicrowaveOven oven(&sim, channel.get(), 2, oc);

  uint64_t offers_to_oven = 0;
  channel->AttachProbe([&](const RadioDevice*, const RadioDevice* rx, double, Time) {
    if (rx == &oven) {
      ++offers_to_oven;
    }
  });
  const Packet p(500);
  channel->Send(&a, p, MakeWifiSignal(ModesFor(PhyStandard::k80211b).back(), p.size(), false));
  sim.RunUntil(Time::Seconds(1));
  EXPECT_EQ(offers_to_oven, 0u);
  EXPECT_EQ(channel->send_stats().offers, 1u);  // b only
}

// --- Zero-copy fan-out ---------------------------------------------------------

// A sink that keeps every delivered packet view, so the test can inspect
// buffer sharing after the fan-out.
class CapturingSink final : public RadioDevice {
 public:
  CapturingSink(uint32_t id, Vector3 pos) : id_(id), mobility_(pos) {}
  RadioCapabilities capabilities() const override { return {}; }
  uint8_t channel_number() const override { return 1; }
  MobilityModel* mobility() const override { return &mobility_; }
  uint32_t node_id() const override { return id_; }
  void Deliver(Packet packet, const SignalParams& /*signal*/, double /*rx_dbm*/) override {
    received_.push_back(std::move(packet));
  }
  std::vector<Packet>& received() { return received_; }

 private:
  uint32_t id_;
  mutable ConstantPositionMobility mobility_;
  std::vector<Packet> received_;
};

TEST(RadioSeam, FanOutSharesOneBufferAcrossReceivers) {
  Simulator sim;
  auto channel = MakeChannel(&sim);
  CapturingSink tx(0, {0, 0, 0});
  CapturingSink r1(1, {1, 0, 0});
  CapturingSink r2(2, {2, 0, 0});
  CapturingSink r3(3, {3, 0, 0});
  for (RadioDevice* d : {static_cast<RadioDevice*>(&tx), static_cast<RadioDevice*>(&r1),
                         static_cast<RadioDevice*>(&r2), static_cast<RadioDevice*>(&r3)}) {
    channel->Attach(d);
  }

  const Packet frame(std::vector<uint8_t>{10, 20, 30, 40});
  channel->Send(&tx, frame, MakeWifiSignal(ModesFor(PhyStandard::k80211b).back(), frame.size(),
                                           false));
  sim.Run();

  // Every receiver holds a view of the sender's buffer — same uid, same
  // bytes, no deep copy anywhere in the fan-out.
  ASSERT_EQ(r1.received().size(), 1u);
  ASSERT_EQ(r2.received().size(), 1u);
  ASSERT_EQ(r3.received().size(), 1u);
  for (CapturingSink* rx : {&r1, &r2, &r3}) {
    EXPECT_TRUE(rx->received()[0].SharesBufferWith(frame));
    EXPECT_EQ(rx->received()[0].uid(), frame.uid());
    EXPECT_EQ(rx->received()[0].bytes()[1], 20);
  }
  EXPECT_EQ(frame.buffer_refcount(), 4u);  // the original + three views
  EXPECT_EQ(channel->send_stats().bytes_copied, 0u);
  EXPECT_EQ(sim.EventHeapFallbacks(), 0u);  // delivery closures fit the slab inline

  // One receiver mutating its view detaches only that view.
  r2.received()[0].mutable_bytes()[1] = 99;
  EXPECT_FALSE(r2.received()[0].SharesBufferWith(frame));
  EXPECT_EQ(r1.received()[0].bytes()[1], 20);
  EXPECT_EQ(frame.bytes()[1], 20);
  EXPECT_EQ(frame.buffer_refcount(), 3u);
}

// --- Scenario-level determinism ------------------------------------------------

// The heterogeneous scenarios are registered and replicable: same seed,
// same numbers, independent of everything that ran before.
TEST(RadioSeam, CoexistenceBuildersAreDeterministic) {
  SensorCoexistenceParams sp;
  sp.sim_time = Time::Seconds(1);
  sp.with_jammer = true;
  const SensorCoexistenceResult a = RunSensorCoexistenceScenario(sp);
  const SensorCoexistenceResult b = RunSensorCoexistenceScenario(sp);
  EXPECT_GT(a.sensor_reports_sent, 0u);
  EXPECT_GT(a.jammer_chirps, 0u);
  EXPECT_GT(a.wifi.goodput_mbps, 0.0);
  EXPECT_EQ(a.sensor_reports_sent, b.sensor_reports_sent);
  EXPECT_EQ(a.sensor_rx_ok, b.sensor_rx_ok);
  EXPECT_DOUBLE_EQ(a.wifi.goodput_mbps, b.wifi.goodput_mbps);

  LoraCoexistenceParams lp;
  lp.sim_time = Time::Seconds(1);
  lp.duty_pct = 10.0;  // 600 ms period: several chirps inside one second
  const LoraCoexistenceResult c = RunLoraCoexistenceScenario(lp);
  const LoraCoexistenceResult d = RunLoraCoexistenceScenario(lp);
  EXPECT_GT(c.jammer_chirps, 0u);
  EXPECT_GT(c.wifi.goodput_mbps, 0.0);
  EXPECT_DOUBLE_EQ(c.wifi.goodput_mbps, d.wifi.goodput_mbps);
}

// Campaign determinism across --jobs for a heterogeneous scenario: per-
// replication results must not depend on worker parallelism.
TEST(RadioSeam, SensorCoexistenceCampaignIdenticalAcrossJobs) {
  CampaignOptions options;
  options.scenario = "sensor_coexistence";
  options.params.Set("sim_time_s", "1");
  options.params.Set("with_jammer", "true");
  options.replications = 3;
  options.base_seed = 99;

  options.jobs = 1;
  const CampaignResult serial = RunCampaign(options);
  options.jobs = 0;  // auto parallelism
  const CampaignResult parallel = RunCampaign(options);

  ASSERT_EQ(serial.replications.size(), parallel.replications.size());
  for (size_t i = 0; i < serial.replications.size(); ++i) {
    for (const auto& [name, value] : serial.replications[i].metrics) {
      const auto it = parallel.replications[i].metrics.find(name);
      ASSERT_NE(it, parallel.replications[i].metrics.end()) << name;
      EXPECT_DOUBLE_EQ(value, it->second) << name << " rep " << i;
    }
  }
}

}  // namespace
}  // namespace wlansim
