// Sweep engine tests: axis spec parsing (lists, ranges, malformed specs),
// cartesian grid expansion and ordering, shard partition properties, RFC 4180
// CSV escaping, and the end-to-end determinism guarantee — sweep results are
// byte-identical for any --jobs value and any --shard=i/n recombination.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "runner/result_sink.h"
#include "runner/scenario_registry.h"
#include "runner/sweep.h"

namespace wlansim {
namespace {

// --- ParseSweepAxis ------------------------------------------------------------

TEST(ParseSweepAxis, ValueList) {
  const SweepAxis axis = ParseSweepAxis("n_stas=1,5,10,20");
  EXPECT_EQ(axis.key, "n_stas");
  EXPECT_EQ(axis.values, (std::vector<std::string>{"1", "5", "10", "20"}));
}

TEST(ParseSweepAxis, SingleValue) {
  const SweepAxis axis = ParseSweepAxis("controller=arf");
  EXPECT_EQ(axis.key, "controller");
  EXPECT_EQ(axis.values, (std::vector<std::string>{"arf"}));
}

TEST(ParseSweepAxis, IntegerRange) {
  const SweepAxis axis = ParseSweepAxis("distance=10:100:10");
  EXPECT_EQ(axis.key, "distance");
  EXPECT_EQ(axis.values, (std::vector<std::string>{"10", "20", "30", "40", "50", "60", "70",
                                                   "80", "90", "100"}));
}

TEST(ParseSweepAxis, FractionalRangeIncludesUpperBound) {
  const SweepAxis axis = ParseSweepAxis("x=0.5:2:0.5");
  EXPECT_EQ(axis.values, (std::vector<std::string>{"0.5", "1", "1.5", "2"}));
}

TEST(ParseSweepAxis, RangeUpperBoundNotOnLattice) {
  const SweepAxis axis = ParseSweepAxis("x=1:10:4");
  EXPECT_EQ(axis.values, (std::vector<std::string>{"1", "5", "9"}));
}

TEST(ParseSweepAxis, MalformedSpecsRejected) {
  for (const char* spec : {
           "no_equals",        // no '='
           "=1,2",             // empty key
           "k=",               // empty value list
           "k=1,,2",           // empty element
           "k=1,2,",           // trailing comma
           "k=1:10",           // range needs three fields
           "k=1:10:2:3",       // too many fields
           "k=1:10:0",         // zero step
           "k=1:10:-2",        // negative step
           "k=10:1:2",         // hi < lo
           "k=a:10:2",         // non-numeric bound
           "k=1:10:x",         // non-numeric step
       }) {
    EXPECT_THROW(ParseSweepAxis(spec), std::invalid_argument) << spec;
  }
}

// --- SweepGrid -----------------------------------------------------------------

TEST(SweepGrid, CartesianExpansionRowMajor) {
  SweepGrid grid;
  grid.AddAxis(ParseSweepAxis("a=1,2"));
  grid.AddAxis(ParseSweepAxis("b=x,y,z"));
  ASSERT_EQ(grid.NumPoints(), 6u);
  EXPECT_EQ(grid.Keys(), (std::vector<std::string>{"a", "b"}));
  // First axis slowest, last axis fastest: nested-loop order.
  const std::vector<std::pair<std::string, std::string>> expected[] = {
      {{"a", "1"}, {"b", "x"}}, {{"a", "1"}, {"b", "y"}}, {{"a", "1"}, {"b", "z"}},
      {{"a", "2"}, {"b", "x"}}, {{"a", "2"}, {"b", "y"}}, {{"a", "2"}, {"b", "z"}},
  };
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(grid.Point(i), expected[i]) << i;
  }
}

TEST(SweepGrid, EmptyGridHasOnePoint) {
  SweepGrid grid;
  EXPECT_TRUE(grid.empty());
  EXPECT_EQ(grid.NumPoints(), 1u);
  EXPECT_TRUE(grid.Point(0).empty());
}

TEST(SweepGrid, DuplicateKeyRejected) {
  SweepGrid grid;
  grid.AddAxis(ParseSweepAxis("a=1,2"));
  EXPECT_THROW(grid.AddAxis(ParseSweepAxis("a=3,4")), std::invalid_argument);
}

// --- ShardRange ----------------------------------------------------------------

TEST(ShardRange, DisjointExhaustiveStable) {
  for (size_t total : {0u, 1u, 5u, 16u, 17u, 100u}) {
    for (unsigned count : {1u, 2u, 3u, 7u, 16u}) {
      size_t expected_begin = 0;
      for (unsigned index = 0; index < count; ++index) {
        const auto [begin, end] = ShardRange(total, index, count);
        // Contiguous with the previous shard: together disjoint + exhaustive.
        EXPECT_EQ(begin, expected_begin) << total << " " << index << "/" << count;
        EXPECT_LE(begin, end);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, total);
    }
  }
}

TEST(ShardRange, BalancedWithinOne) {
  const size_t total = 17;
  const unsigned count = 5;
  for (unsigned index = 0; index < count; ++index) {
    const auto [begin, end] = ShardRange(total, index, count);
    const size_t size = end - begin;
    EXPECT_GE(size, total / count);
    EXPECT_LE(size, total / count + 1);
  }
}

TEST(ShardRange, MoreShardsThanPointsLeavesSomeEmpty) {
  size_t covered = 0;
  for (unsigned index = 0; index < 8; ++index) {
    const auto [begin, end] = ShardRange(3, index, 8);
    covered += end - begin;
  }
  EXPECT_EQ(covered, 3u);
}

TEST(ShardRange, InvalidSpecRejected) {
  EXPECT_THROW(ShardRange(10, 0, 0), std::invalid_argument);
  EXPECT_THROW(ShardRange(10, 2, 2), std::invalid_argument);
  EXPECT_THROW(ShardRange(10, 5, 3), std::invalid_argument);
}

// --- RFC 4180 CSV escaping -----------------------------------------------------

TEST(CsvEscaping, PlainFieldsPassThrough) {
  EXPECT_EQ(CsvField("goodput_mbps"), "goodput_mbps");
  EXPECT_EQ(CsvField(""), "");
  EXPECT_EQ(CsvField("1.5"), "1.5");
}

TEST(CsvEscaping, SpecialFieldsQuoted) {
  EXPECT_EQ(CsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvField("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvField("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(CsvField("cr\rhere"), "\"cr\rhere\"");
}

TEST(CsvEscaping, MetricNamesEscapedInWriters) {
  ResultSink sink(1);
  ReplicationResult rep;
  rep.metrics["throughput, up"] = 1.0;
  rep.metrics["plain"] = 2.0;
  sink.Store(0, rep);
  const std::string agg_csv = ResultSink::AggregatesToCsv(sink.Aggregate());
  EXPECT_NE(agg_csv.find("\"throughput, up\",1,1"), std::string::npos) << agg_csv;
  const std::string reps_csv = ResultSink::ReplicationsToCsv(sink.replications());
  EXPECT_NE(reps_csv.find("\"throughput, up\""), std::string::npos) << reps_csv;
}

TEST(CsvEscaping, SweepLongCsvEscapesKeysAndValues) {
  MetricAggregate agg;
  agg.metric = "x,y";
  agg.count = 1;
  SweepRow row;
  row.param_values = {"va\"lue"};
  row.aggregates = {agg};
  const std::string csv = ResultSink::SweepLongCsv({"weird,key"}, {row});
  EXPECT_NE(csv.find("\"weird,key\",metric,"), std::string::npos) << csv;
  EXPECT_NE(csv.find("\"va\"\"lue\",\"x,y\",1,"), std::string::npos) << csv;
}

// --- Sweep campaign determinism ------------------------------------------------

// Registered once into the global registry: reports its seed and parameters
// so any dependence on grid index, shard layout or worker count is visible.
void RegisterProbeScenario() {
  static bool registered = false;
  if (registered) {
    return;
  }
  registered = true;
  ScenarioRegistry::Global().Register(
      "sweep_probe_test", "sweep determinism probe",
      {{"a", "0", "axis a"}, {"b", "0", "axis b"}, {"base", "0", "base param"}},
      [](const ScenarioParams& params, const ReplicationContext& ctx) {
        ReplicationResult r;
        r.metrics["seed_mod"] = static_cast<double>(ctx.seed % 1000003);
        r.metrics["a"] = params.GetDouble("a", 0);
        r.metrics["b"] = params.GetDouble("b", 0);
        r.metrics["base"] = params.GetDouble("base", 0);
        return r;
      });
}

SweepOptions ProbeOptions(unsigned jobs, unsigned shard_index, unsigned shard_count) {
  RegisterProbeScenario();
  SweepOptions options;
  options.scenario = "sweep_probe_test";
  options.base_params.Set("base", "7");
  options.grid.AddAxis(ParseSweepAxis("a=1:3:1"));
  options.grid.AddAxis(ParseSweepAxis("b=10,20"));
  options.base_seed = 99;
  options.replications = 4;
  options.jobs = jobs;
  options.shard_index = shard_index;
  options.shard_count = shard_count;
  return options;
}

TEST(SweepCampaign, RunsEveryPointWithMergedParams) {
  const SweepResult result = RunSweepCampaign(ProbeOptions(1, 0, 1));
  ASSERT_EQ(result.points.size(), 6u);
  EXPECT_EQ(result.param_keys, (std::vector<std::string>{"a", "b"}));
  // Row-major order, base param present everywhere.
  EXPECT_EQ(result.points[0].point,
            (std::vector<std::pair<std::string, std::string>>{{"a", "1"}, {"b", "10"}}));
  EXPECT_EQ(result.points[5].point,
            (std::vector<std::pair<std::string, std::string>>{{"a", "3"}, {"b", "20"}}));
  for (const SweepPointResult& point : result.points) {
    for (const MetricAggregate& a : point.aggregates) {
      if (a.metric == "base") {
        EXPECT_DOUBLE_EQ(a.mean, 7.0);
      }
    }
  }
}

TEST(SweepCampaign, CsvIdenticalAcrossJobs) {
  const std::string serial = SweepResultToCsv(RunSweepCampaign(ProbeOptions(1, 0, 1)));
  const std::string parallel = SweepResultToCsv(RunSweepCampaign(ProbeOptions(8, 0, 1)));
  EXPECT_EQ(serial, parallel);
}

TEST(SweepCampaign, CrossPointWorkQueueSaturatesAndStaysDeterministic) {
  // One replication per point used to clamp the pool to a single worker;
  // the global (point, rep) queue now spreads the 6 points across all 8
  // workers — and the CSV must not change, because seeds are keyed by the
  // parameter assignment, never by the executing worker.
  SweepOptions serial_options = ProbeOptions(1, 0, 1);
  serial_options.replications = 1;
  SweepOptions pooled_options = ProbeOptions(8, 0, 1);
  pooled_options.replications = 1;
  EXPECT_EQ(SweepResultToCsv(RunSweepCampaign(serial_options)),
            SweepResultToCsv(RunSweepCampaign(pooled_options)));
}

TEST(SweepCampaign, CsvIdenticalAcrossShardRecombination) {
  const std::string full = SweepResultToCsv(RunSweepCampaign(ProbeOptions(2, 0, 1)));
  for (unsigned count : {2u, 3u, 6u}) {
    std::string merged;
    for (unsigned index = 0; index < count; ++index) {
      const std::string shard = SweepResultToCsv(RunSweepCampaign(ProbeOptions(2, index, count)));
      const size_t header_end = shard.find('\n') + 1;
      merged += index == 0 ? shard : shard.substr(header_end);
    }
    EXPECT_EQ(full, merged) << count << " shards";
  }
}

TEST(SweepCampaign, PointSeedIndependentOfAxisOrderAndShard) {
  const uint64_t forward = SweepPointSeed(5, {{"a", "1"}, {"b", "2"}});
  const uint64_t reversed = SweepPointSeed(5, {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(forward, reversed);
  EXPECT_NE(forward, SweepPointSeed(5, {{"a", "1"}, {"b", "3"}}));
  EXPECT_NE(forward, SweepPointSeed(6, {{"a", "1"}, {"b", "2"}}));
}

TEST(SweepCampaign, PointSeedEncodingInjective) {
  // Values containing the encoding's separator characters must not make two
  // distinct assignments collide.
  EXPECT_NE(SweepPointSeed(5, {{"a", "1|b=2"}}),
            SweepPointSeed(5, {{"a", "1"}, {"b", "2"}}));
  EXPECT_NE(SweepPointSeed(5, {{"a", "1="}, {"b", ""}}),
            SweepPointSeed(5, {{"a", "1"}, {"=b", ""}}));
  EXPECT_NE(SweepPointSeed(5, {{"ab", "c"}}), SweepPointSeed(5, {{"a", "bc"}}));
}

TEST(SweepCampaign, ParamAndSweepKeyConflictRejected) {
  SweepOptions options = ProbeOptions(1, 0, 1);
  options.base_params.Set("a", "9");
  EXPECT_THROW(RunSweepCampaign(options), std::invalid_argument);
}

TEST(SweepCampaign, UnknownSweepKeyRejected) {
  SweepOptions options = ProbeOptions(1, 0, 1);
  options.grid.AddAxis(ParseSweepAxis("not_a_param=1,2"));
  EXPECT_THROW(RunSweepCampaign(options), std::invalid_argument);
}

TEST(SweepCampaign, UnknownKeyRejectedEvenOnEmptyShardSlice) {
  // 6 points over 8 shards: the last shard's slice is empty, but validation
  // still runs so a multi-host launch fails everywhere, not just on hosts
  // that happened to get work.
  SweepOptions options = ProbeOptions(1, 7, 8);
  options.grid.AddAxis(ParseSweepAxis("not_a_param=1,2"));
  EXPECT_THROW(RunSweepCampaign(options), std::invalid_argument);
}

// The acceptance-criteria case, on a real scenario: a rate_vs_distance
// distance sweep whose long-format CSV is byte-identical across jobs values
// and across a two-way shard recombination.
TEST(SweepCampaign, RateVsDistanceDeterministicAcrossJobsAndShards) {
  auto make_options = [](unsigned jobs, unsigned shard_index, unsigned shard_count) {
    SweepOptions options;
    options.scenario = "rate_vs_distance";
    options.base_params.Set("sim_time_s", "0.3");
    options.grid.AddAxis(ParseSweepAxis("distance=10:100:30"));
    options.base_seed = 42;
    options.replications = 3;
    options.jobs = jobs;
    options.shard_index = shard_index;
    options.shard_count = shard_count;
    return options;
  };

  const std::string serial = SweepResultToCsv(RunSweepCampaign(make_options(1, 0, 1)));
  const std::string parallel = SweepResultToCsv(RunSweepCampaign(make_options(0, 0, 1)));
  EXPECT_EQ(serial, parallel);

  const std::string half0 = SweepResultToCsv(RunSweepCampaign(make_options(2, 0, 2)));
  const std::string half1 = SweepResultToCsv(RunSweepCampaign(make_options(2, 1, 2)));
  EXPECT_EQ(serial, half0 + half1.substr(half1.find('\n') + 1));
}

}  // namespace
}  // namespace wlansim
