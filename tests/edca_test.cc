// 802.11e EDCA tests: parameter-set derivation, priority→AC mapping, and
// end-to-end prioritization (voice beats saturating background traffic on
// both delay and delivery when QoS is enabled, and doesn't when disabled).

#include <gtest/gtest.h>

#include "mac/edca.h"
#include "net/network.h"

namespace wlansim {
namespace {

TEST(Edca, DefaultParameterOrdering) {
  // With aCWmin=31, aCWmax=1023 (DSSS):
  const auto bk = DefaultEdcaParams(AccessCategory::kBackground, 31, 1023);
  const auto be = DefaultEdcaParams(AccessCategory::kBestEffort, 31, 1023);
  const auto vi = DefaultEdcaParams(AccessCategory::kVideo, 31, 1023);
  const auto vo = DefaultEdcaParams(AccessCategory::kVoice, 31, 1023);

  // AIFSN: VO = VI < BE < BK.
  EXPECT_EQ(vo.aifsn, 2);
  EXPECT_EQ(vi.aifsn, 2);
  EXPECT_EQ(be.aifsn, 3);
  EXPECT_EQ(bk.aifsn, 7);

  // CWmin: VO < VI < BE = BK.
  EXPECT_EQ(vo.cw_min, 7u);
  EXPECT_EQ(vi.cw_min, 15u);
  EXPECT_EQ(be.cw_min, 31u);
  EXPECT_EQ(bk.cw_min, 31u);

  // CWmax: VO < VI < BE = BK.
  EXPECT_EQ(vo.cw_max, 15u);
  EXPECT_EQ(vi.cw_max, 31u);
  EXPECT_EQ(be.cw_max, 1023u);
}

TEST(Edca, PriorityToAcMapping) {
  EXPECT_EQ(AcForPriority(0), AccessCategory::kBestEffort);
  EXPECT_EQ(AcForPriority(1), AccessCategory::kBackground);
  EXPECT_EQ(AcForPriority(2), AccessCategory::kBackground);
  EXPECT_EQ(AcForPriority(3), AccessCategory::kBestEffort);
  EXPECT_EQ(AcForPriority(4), AccessCategory::kVideo);
  EXPECT_EQ(AcForPriority(5), AccessCategory::kVideo);
  EXPECT_EQ(AcForPriority(6), AccessCategory::kVoice);
  EXPECT_EQ(AcForPriority(7), AccessCategory::kVoice);
}

struct QosOutcome {
  double voice_delay_ms;
  double voice_loss;
  double background_mbps;
};

QosOutcome RunVoiceVsBackground(bool qos) {
  // Six saturating bulk stations: enough contention that plain DCF queues
  // the voice packets behind tens of milliseconds of bulk airtime.
  Network net(Network::Params{.seed = 61});
  net.UseLogDistanceLoss(3.0);
  auto tweak = [qos](WifiMac::Config& c) { c.qos_enabled = qos; };
  Node* ap = net.AddNode(
      {.role = MacRole::kAp, .standard = PhyStandard::k80211b, .mac_tweak = tweak});
  const WifiMode m = ModesFor(PhyStandard::k80211b).back();
  Node* phone = net.AddNode({.role = MacRole::kSta,
                             .standard = PhyStandard::k80211b,
                             .position = {8, 0, 0},
                             .mac_tweak = tweak});
  phone->SetRateController(std::make_unique<FixedRateController>(m));
  std::vector<Node*> bulk;
  for (int i = 0; i < 6; ++i) {
    Node* sta = net.AddNode({.role = MacRole::kSta,
                             .standard = PhyStandard::k80211b,
                             .position = {-8.0 - i, 0, 0},
                             .mac_tweak = tweak});
    sta->SetRateController(std::make_unique<FixedRateController>(m));
    bulk.push_back(sta);
  }
  net.StartAll();

  // Voice: 50 packets/s of 160 B (G.711-ish) at priority 6.
  auto* voice = phone->AddTraffic<CbrTraffic>(ap->address(), 1, 160, Time::Millis(20));
  voice->SetPriority(6);
  voice->Start(Time::Seconds(1));
  for (size_t i = 0; i < bulk.size(); ++i) {
    auto* background = bulk[i]->AddTraffic<SaturatedTraffic>(
        ap->address(), static_cast<uint32_t>(i + 2), 1500);
    background->SetPriority(1);
    background->Start(Time::Seconds(1));
  }

  net.Run(Time::Seconds(7));
  QosOutcome out{};
  const auto* flow = net.flow_stats().Find(1);
  out.voice_delay_ms = flow != nullptr ? flow->delay_us.mean() / 1000.0 : 1e9;
  out.voice_loss = net.flow_stats().LossRate(1);
  out.background_mbps = 0;
  for (size_t i = 0; i < bulk.size(); ++i) {
    out.background_mbps += net.flow_stats().GoodputMbps(static_cast<uint32_t>(i + 2));
  }
  return out;
}

TEST(Edca, VoiceBeatsBackgroundOnlyWithQos) {
  const QosOutcome without = RunVoiceVsBackground(false);
  const QosOutcome with = RunVoiceVsBackground(true);

  // With EDCA the voice flow's delay collapses (an order of magnitude or
  // more) while background traffic still moves.
  EXPECT_LT(with.voice_delay_ms, without.voice_delay_ms / 5.0)
      << "qos=" << with.voice_delay_ms << "ms, dcf=" << without.voice_delay_ms << "ms";
  EXPECT_LT(with.voice_delay_ms, 5.0);
  EXPECT_NEAR(with.voice_loss, 0.0, 0.02);
  EXPECT_GT(with.background_mbps, 1.0);
}

TEST(Edca, InternalCollisionsAreCountedAndResolved) {
  // One QoS station saturating AC_VO and AC_VI simultaneously. The two ACs
  // share AIFSN=2, so their countdowns resume together and collide whenever
  // the backoff draws tie — the internal-collision path must fire, resolve
  // in favour of the higher AC, and still let the lower AC through.
  Network net(Network::Params{.seed = 62});
  net.UseLogDistanceLoss(3.0);
  auto tweak = [](WifiMac::Config& c) { c.qos_enabled = true; };
  Node* ap = net.AddNode(
      {.role = MacRole::kAp, .standard = PhyStandard::k80211b, .mac_tweak = tweak});
  Node* sta = net.AddNode({.role = MacRole::kSta,
                           .standard = PhyStandard::k80211b,
                           .position = {8, 0, 0},
                           .mac_tweak = tweak});
  sta->SetRateController(
      std::make_unique<FixedRateController>(ModesFor(PhyStandard::k80211b).back()));
  net.StartAll();
  auto* hi = sta->AddTraffic<SaturatedTraffic>(ap->address(), 1, 800);
  hi->SetPriority(6);  // AC_VO: CWmin 7
  hi->Start(Time::Seconds(1));
  auto* lo = sta->AddTraffic<SaturatedTraffic>(ap->address(), 2, 800);
  lo->SetPriority(4);  // AC_VI: same AIFSN, CWmin 15
  lo->Start(Time::Seconds(1));
  net.Run(Time::Seconds(5));

  EXPECT_GT(sta->mac().counters().internal_collisions, 0u);
  EXPECT_GT(net.flow_stats().GoodputMbps(1), 0.5);
  EXPECT_GT(net.flow_stats().GoodputMbps(2), 0.05);
  // The voice AC must carry more than the video AC.
  EXPECT_GT(net.flow_stats().GoodputMbps(1), net.flow_stats().GoodputMbps(2));
}

TEST(Edca, LegacyModeUnaffected) {
  // qos_enabled=false must behave exactly like the original DCF: priority
  // argument is ignored for queue selection.
  Network net(Network::Params{.seed = 63});
  net.UseLogDistanceLoss(3.0);
  Node* ap = net.AddNode({.role = MacRole::kAp, .standard = PhyStandard::k80211b});
  Node* sta = net.AddNode(
      {.role = MacRole::kSta, .standard = PhyStandard::k80211b, .position = {8, 0, 0}});
  net.StartAll();
  auto* app = sta->AddTraffic<CbrTraffic>(ap->address(), 1, 500, Time::Millis(10));
  app->SetPriority(6);  // must be harmless
  app->Start(Time::Seconds(1));
  net.Run(Time::Seconds(3));
  EXPECT_GT(ap->packets_received(), 150u);
  EXPECT_EQ(sta->mac().counters().internal_collisions, 0u);
}

}  // namespace
}  // namespace wlansim
